(* liability: §3.1's argument as a fault-injection demo.

   Kills the Parallax storage domain under the VMM, then the block driver
   server under the microkernel, and prints who died with them. The
   paper's point: the blast radii are the same — "we fail to see the
   difference between a VMM and a microkernel in this respect."

     dune exec examples/liability.exe *)

module Exp_e6 = Vmk_core.Exp_e6
module Table = Vmk_stats.Table

let show title fates =
  let table =
    Table.create ~header:[ "participant"; "role"; "completed"; "errors"; "fate" ]
  in
  List.iter
    (fun (f : Exp_e6.fate) ->
      Table.add_row table
        [
          f.Exp_e6.participant;
          f.Exp_e6.role;
          string_of_int f.Exp_e6.completed;
          string_of_int f.Exp_e6.errors;
          (if f.Exp_e6.failed then "FAILED" else "survived");
        ])
    fates;
  Format.printf "%s@.%a@." title Table.pp table

module Exp_e13 = Vmk_core.Exp_e13

let show_recovery title (m : Exp_e13.metrics) =
  Format.printf "%s@." title;
  Format.printf
    "  %d/%d ops completed, %d retried, %d recoveries, recovery latency %s@.@."
    m.Exp_e13.completed
    (m.Exp_e13.completed + m.Exp_e13.lost)
    m.Exp_e13.retries m.Exp_e13.recoveries
    (match m.Exp_e13.recovery_latency with
    | Some l -> Printf.sprintf "%Ld cycles" l
    | None -> "-")

let () =
  show "VMM stack — Parallax storage domain killed mid-run:"
    (Exp_e6.vmm_blast_radius ~quick:true ~kill:`Parallax);
  show "Microkernel stack — block driver server killed mid-run:"
    (Exp_e6.l4_blast_radius ~quick:true ~kill:`Blk_server);
  show "VMM stack — Dom0 (the super-VM) killed mid-run:"
    (Exp_e6.vmm_blast_radius ~quick:true ~kill:`Dom0);
  Format.printf
    "Killing the disaggregated service hurts exactly its clients in both@.";
  Format.printf
    "systems; killing the consolidated Dom0 takes every I/O path down —@.";
  Format.printf "the 'single point of failure' §2.2 warns about.@.@.";
  (* Act two: the same kills, but with the recovery machinery armed
     (E13). A watchdog respawns the microkernel's driver server; a
     supervisor restarts the VMM's driver domain and the frontend
     reconnects. Both stacks ride out the crash. *)
  show_recovery
    "Microkernel stack — same kill, watchdog armed (respawn + IPC retry):"
    (Exp_e13.run_one ~stack:`L4 ~rate:15 ~quick:true);
  show_recovery
    "VMM stack — same kill, supervisor armed (restart + reconnect):"
    (Exp_e13.run_one ~stack:`Vmm ~rate:15 ~quick:true);
  Format.printf
    "Both structures can also bring the service *back*: drivers are@.";
  Format.printf
    "restartable user-level components under either system — the crash@.";
  Format.printf "costs a latency blip, not the workload.@."
