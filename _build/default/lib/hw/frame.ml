type kind = Ram | Device_buffer | Page_table_frame

type frame = {
  index : int;
  mutable owner : string;
  mutable kind : kind;
  mutable tag : int;
  mutable generation : int;
  mutable allocated : bool;
}

type t = { frames : frame array; mutable free : int list }

exception Out_of_frames

let create ~frames =
  if frames < 1 then invalid_arg "Frame.create: need at least one frame";
  let table =
    Array.init frames (fun index ->
        {
          index;
          owner = "";
          kind = Ram;
          tag = 0;
          generation = 0;
          allocated = false;
        })
  in
  { frames = table; free = List.init frames (fun i -> i) }

let total t = Array.length t.frames
let free_count t = List.length t.free

let alloc t ~owner ?(kind = Ram) () =
  match t.free with
  | [] -> raise Out_of_frames
  | index :: rest ->
      t.free <- rest;
      let f = t.frames.(index) in
      f.owner <- owner;
      f.kind <- kind;
      f.tag <- 0;
      f.allocated <- true;
      f

let alloc_many t ~owner ?kind n = List.init n (fun _ -> alloc t ~owner ?kind ())

let release t f =
  if not f.allocated then invalid_arg "Frame.release: frame already free";
  f.allocated <- false;
  f.owner <- "";
  f.tag <- 0;
  f.kind <- Ram;
  t.free <- f.index :: t.free

let transfer _t f ~to_ =
  if not f.allocated then invalid_arg "Frame.transfer: frame is free";
  f.owner <- to_;
  f.generation <- f.generation + 1

let get t index =
  if index < 0 || index >= Array.length t.frames then
    invalid_arg "Frame.get: physical frame number out of range";
  t.frames.(index)

let set_tag f tag = f.tag <- tag

let owned_by t owner =
  Array.to_list t.frames
  |> List.filter (fun f -> f.allocated && f.owner = owner)

let count_owned_by t owner = List.length (owned_by t owner)

let reclaim_owner t owner =
  let victims = owned_by t owner in
  List.iter (release t) victims;
  List.length victims
