type slot = { asid : int; vpn : int; pte : Page_table.pte }

type t = {
  capacity : int;
  tagged : bool;
  mutable slots : slot list; (* most-recently-used first *)
  mutable context : int;
  mutable hits : int;
  mutable misses : int;
  mutable flushes : int;
}

let create ~entries ~tagged =
  if entries < 1 then invalid_arg "Tlb.create: entries < 1";
  {
    capacity = entries;
    tagged;
    slots = [];
    context = 0;
    hits = 0;
    misses = 0;
    flushes = 0;
  }

let of_profile (p : Arch.profile) =
  create ~entries:p.Arch.tlb_entries ~tagged:p.Arch.tlb_tagged

let tagged t = t.tagged
let capacity t = t.capacity

let lookup t ~asid ~vpn =
  let matches s =
    s.vpn = vpn && (if t.tagged then s.asid = asid else asid = t.context)
    && s.asid = asid
  in
  let rec split acc = function
    | [] -> None
    | s :: rest when matches s -> Some (s, List.rev_append acc rest)
    | s :: rest -> split (s :: acc) rest
  in
  match split [] t.slots with
  | Some (s, rest) ->
      t.hits <- t.hits + 1;
      t.slots <- s :: rest;
      Some s.pte
  | None ->
      t.misses <- t.misses + 1;
      None

let truncate n xs =
  let rec take i = function
    | [] -> []
    | _ when i = 0 -> []
    | x :: rest -> x :: take (i - 1) rest
  in
  take n xs

let insert t ~asid ~vpn pte =
  let others = List.filter (fun s -> not (s.asid = asid && s.vpn = vpn)) t.slots in
  t.slots <- truncate t.capacity ({ asid; vpn; pte } :: others)

let invalidate t ~asid ~vpn =
  t.slots <- List.filter (fun s -> not (s.asid = asid && s.vpn = vpn)) t.slots

let flush_all t =
  t.slots <- [];
  t.flushes <- t.flushes + 1

let flush_asid t ~asid = t.slots <- List.filter (fun s -> s.asid <> asid) t.slots

let set_context t ~asid =
  if (not t.tagged) && asid <> t.context then flush_all t;
  t.context <- asid

let hits t = t.hits
let misses t = t.misses
let flushes t = t.flushes
let live_entries t = List.length t.slots

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.flushes <- 0
