(** Memory-management unit: TLB-filtered translation with cost charging.

    The one place where page-table walks are priced. Kernels translate
    through here so that TLB hits are free, misses cost a full walk
    ([pt_levels · tlb_refill_cost]), and permission violations surface as
    faults for the pager / exception-virtualisation paths. *)

type fault =
  | Not_mapped  (** No translation for the page. *)
  | Write_to_readonly
  | Kernel_only  (** User access to a supervisor mapping. *)
  | Stale_mapping
      (** The mapped frame was transferred (page-flipped) away after
          mapping; touching it is a protection violation. *)

val translate :
  Machine.t ->
  Page_table.t ->
  vpn:int ->
  write:bool ->
  user:bool ->
  (Page_table.pte, fault) result
(** Translate an access to [vpn] in the given address space. Charges walk
    cycles on a TLB miss and fills the TLB on success; charges nothing on
    a hit. Fault detection also invalidates any stale TLB entry. *)

val touch_range :
  Machine.t ->
  Page_table.t ->
  start:int ->
  len:int ->
  write:bool ->
  user:bool ->
  (int, int * fault) result
(** Translate every page of the byte range [\[start, start+len)]. Returns
    [Ok pages] or [Error (vpn, fault)] for the first faulting page. *)

val switch_space : Machine.t -> Page_table.t -> unit
(** Make the given address space current: TLB context switch (full flush
    on untagged TLBs) plus the profile's address-space-switch cycles. *)

val pp_fault : Format.formatter -> fault -> unit
