type op = Read | Write

type request = {
  id : int;
  op : op;
  sector : int;
  frame : Frame.frame;
  bytes : int;
}

type t = {
  engine : Vmk_sim.Engine.t;
  irq_ctrl : Irq.t;
  irq_line : int;
  base_latency : int64;
  per_byte_c100 : int;
  store : (int, int) Hashtbl.t;
  done_queue : request Queue.t;
  mutable next_id : int;
  mutable in_flight : int;
  mutable reads : int;
  mutable writes : int;
  mutable bytes : int;
}

let create engine irq_ctrl ~irq_line ?(base_latency = 40_000L)
    ?(per_byte_c100 = 800) () =
  {
    engine;
    irq_ctrl;
    irq_line;
    base_latency;
    per_byte_c100;
    store = Hashtbl.create 256;
    done_queue = Queue.create ();
    next_id = 0;
    in_flight = 0;
    reads = 0;
    writes = 0;
    bytes = 0;
  }

let irq_line t = t.irq_line

let submit t op ~sector ~frame ~bytes =
  if sector < 0 then invalid_arg "Disk.submit: negative sector";
  if bytes < 0 || bytes > Addr.page_size then
    invalid_arg "Disk.submit: size out of range";
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  let request = { id; op; sector; frame; bytes } in
  t.in_flight <- t.in_flight + 1;
  let latency =
    Int64.add t.base_latency (Int64.of_int (bytes * t.per_byte_c100 / 100))
  in
  Vmk_sim.Engine.after t.engine latency (fun () ->
      begin
        match op with
        | Read ->
            let tag =
              match Hashtbl.find_opt t.store sector with Some v -> v | None -> 0
            in
            Frame.set_tag frame tag;
            t.reads <- t.reads + 1
        | Write ->
            Hashtbl.replace t.store sector frame.Frame.tag;
            t.writes <- t.writes + 1
      end;
      t.bytes <- t.bytes + bytes;
      t.in_flight <- t.in_flight - 1;
      Queue.add request t.done_queue;
      Irq.raise_line t.irq_ctrl t.irq_line);
  id

let completed t = Queue.take_opt t.done_queue
let completions_pending t = Queue.length t.done_queue
let in_flight t = t.in_flight

let sector_tag t sector =
  match Hashtbl.find_opt t.store sector with Some v -> v | None -> 0

let preload t ~sector ~tag = Hashtbl.replace t.store sector tag
let reads_total t = t.reads
let writes_total t = t.writes
let bytes_total t = t.bytes
