type selector = Cs | Ss | Ds | Es | Fs | Gs
type descriptor = { base : int; limit : int }

type t = {
  mutable cs : descriptor;
  mutable ss : descriptor;
  mutable ds : descriptor;
  mutable es : descriptor;
  mutable fs : descriptor;
  mutable gs : descriptor;
  mutable reloads : int;
}

let create ~user_limit =
  let flat = { base = 0; limit = user_limit } in
  { cs = flat; ss = flat; ds = flat; es = flat; fs = flat; gs = flat; reloads = 0 }

let load t sel d =
  t.reloads <- t.reloads + 1;
  match sel with
  | Cs -> t.cs <- d
  | Ss -> t.ss <- d
  | Ds -> t.ds <- d
  | Es -> t.es <- d
  | Fs -> t.fs <- d
  | Gs -> t.gs <- d

let get t = function
  | Cs -> t.cs
  | Ss -> t.ss
  | Ds -> t.ds
  | Es -> t.es
  | Fs -> t.fs
  | Gs -> t.gs

let reload_count t = t.reloads
let trap_reloaded = [ Cs; Ss ]

let descriptor_excludes d range =
  not (Addr.ranges_overlap (Addr.range ~start:d.base ~len:d.limit) range)

let live_segments_exclude t range =
  List.for_all
    (fun sel -> descriptor_excludes (get t sel) range)
    [ Ds; Es; Fs; Gs ]

let pp_selector ppf sel =
  Format.pp_print_string ppf
    (match sel with
    | Cs -> "cs"
    | Ss -> "ss"
    | Ds -> "ds"
    | Es -> "es"
    | Fs -> "fs"
    | Gs -> "gs")
