type fault = Not_mapped | Write_to_readonly | Kernel_only | Stale_mapping

let check_pte pte ~write ~user =
  if Page_table.stale pte then Error Stale_mapping
  else if write && not pte.Page_table.writable then Error Write_to_readonly
  else if user && not pte.Page_table.user then Error Kernel_only
  else Ok pte

let translate (m : Machine.t) space ~vpn ~write ~user =
  let asid = Page_table.asid space in
  match Tlb.lookup m.tlb ~asid ~vpn with
  | Some pte -> begin
      match check_pte pte ~write ~user with
      | Ok _ as ok -> ok
      | Error _ as e ->
          (* A fault through a cached entry (e.g. stale after a page flip)
             must drop the entry, as a real shootdown would. *)
          Tlb.invalidate m.tlb ~asid ~vpn;
          e
    end
  | None -> begin
      Machine.burn m (Arch.walk_cost m.arch);
      match Page_table.lookup space ~vpn with
      | None -> Error Not_mapped
      | Some pte -> begin
          match check_pte pte ~write ~user with
          | Ok pte ->
              Tlb.insert m.tlb ~asid ~vpn pte;
              Ok pte
          | Error _ as e -> e
        end
    end

let touch_range m space ~start ~len ~write ~user =
  if len < 0 then invalid_arg "Mmu.touch_range: negative length";
  let first = Addr.vpn start in
  let last = if len = 0 then first else Addr.vpn (start + len - 1) in
  let rec loop vpn =
    if vpn > last then Ok (last - first + 1)
    else
      match translate m space ~vpn ~write ~user with
      | Ok _ -> loop (vpn + 1)
      | Error fault -> Error (vpn, fault)
  in
  loop first

let switch_space (m : Machine.t) space =
  Tlb.set_context m.tlb ~asid:(Page_table.asid space);
  Machine.burn m m.arch.Arch.addr_space_switch_cost

let pp_fault ppf fault =
  Format.pp_print_string ppf
    (match fault with
    | Not_mapped -> "not-mapped"
    | Write_to_readonly -> "write-to-readonly"
    | Kernel_only -> "kernel-only"
    | Stale_mapping -> "stale-mapping")
