(** Instruction-cache footprint model.

    Experiment E9 tests the paper's §2.2 claim that a single combined IPC
    primitive has a smaller cache footprint than a set of dedicated VMM
    primitives. We model a fully-associative LRU cache of line identifiers;
    each kernel path declares the code lines it touches ("ipc.path",
    [n] lines) and the model yields hit/miss counts and the extra refill
    cycles caused by competing paths evicting each other. *)

type t

val create : lines:int -> line_bytes:int -> refill_cost:int -> t
(** @raise Invalid_argument if any parameter is [< 1]. *)

val of_profile : Arch.profile -> t
(** Cache dimensioned from a platform profile; refill cost approximated by
    the profile's TLB refill (an L2 hit, roughly). *)

val touch : t -> region:string -> lines:int -> int
(** [touch t ~region ~lines] simulates executing [lines] cache lines of the
    code region named [region]; returns the cycles spent on misses. Lines
    are addressed as [(region, 0) … (region, lines-1)], so re-running a
    resident path is free. *)

val footprint_bytes : t -> region:string -> int
(** Bytes of the region currently resident. *)

val resident_lines : t -> int
val hits : t -> int
val misses : t -> int
val miss_cycles : t -> int
val flush : t -> unit
val reset_stats : t -> unit
