(** Per-address-space page tables.

    Maps virtual page numbers to {!Frame.frame}s with permission bits. The
    representation is a hash table; walk *cost* is charged separately by the
    MMU from the architecture profile ([pt_levels]·[tlb_refill_cost]), which
    keeps cost modelling orthogonal to the data structure. *)

type pte = {
  frame : Frame.frame;
  writable : bool;
  user : bool;  (** Accessible at user privilege. *)
  frame_generation : int;
      (** {!Frame.frame.generation} at map time; if the frame was
          transferred since, the PTE is stale. *)
}

type t

val create : asid:int -> t
(** Empty page table for address-space id [asid]. *)

val asid : t -> int

val map : t -> vpn:int -> Frame.frame -> writable:bool -> user:bool -> unit
(** Install or replace the translation for [vpn]. *)

val unmap : t -> vpn:int -> pte option
(** Remove and return the translation, if present. *)

val lookup : t -> vpn:int -> pte option

val stale : pte -> bool
(** The mapped frame changed ownership (page flip) after mapping. *)

val mapped_count : t -> int
val iter : t -> f:(vpn:int -> pte -> unit) -> unit
val clear : t -> unit

val find_vpn_of_frame : t -> Frame.frame -> int option
(** Reverse lookup: some virtual page currently mapping the frame. *)
