type t = {
  pending : bool array;
  masked : bool array;
  raised : int array;
  serviced : int array;
}

let create ~lines =
  if lines < 1 then invalid_arg "Irq.create: lines < 1";
  {
    pending = Array.make lines false;
    masked = Array.make lines false;
    raised = Array.make lines 0;
    serviced = Array.make lines 0;
  }

let lines t = Array.length t.pending

let check t n =
  if n < 0 || n >= lines t then invalid_arg "Irq: line out of range"

let raise_line t n =
  check t n;
  t.pending.(n) <- true;
  t.raised.(n) <- t.raised.(n) + 1

let is_pending t n =
  check t n;
  t.pending.(n)

let next_pending t =
  let rec scan i =
    if i >= lines t then None
    else if t.pending.(i) && not t.masked.(i) then Some i
    else scan (i + 1)
  in
  scan 0

let any_pending t = next_pending t <> None

let ack t n =
  check t n;
  if t.pending.(n) then begin
    t.pending.(n) <- false;
    t.serviced.(n) <- t.serviced.(n) + 1
  end

let mask t n =
  check t n;
  t.masked.(n) <- true

let unmask t n =
  check t n;
  t.masked.(n) <- false

let is_masked t n =
  check t n;
  t.masked.(n)

let raised_total t n =
  check t n;
  t.raised.(n)

let serviced_total t n =
  check t n;
  t.serviced.(n)
