lib/hw/tlb.ml: Arch List Page_table
