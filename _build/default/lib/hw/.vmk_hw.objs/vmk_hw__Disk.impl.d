lib/hw/disk.ml: Addr Frame Hashtbl Int64 Irq Queue Vmk_sim
