lib/hw/page_table.ml: Frame Hashtbl
