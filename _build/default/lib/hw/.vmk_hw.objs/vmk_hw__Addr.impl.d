lib/hw/addr.ml:
