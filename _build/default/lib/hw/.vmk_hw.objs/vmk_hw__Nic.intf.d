lib/hw/nic.mli: Frame Irq Vmk_sim
