lib/hw/machine.ml: Arch Cache Disk Frame Int64 Irq Nic Tlb Vmk_sim Vmk_trace
