lib/hw/irq.mli:
