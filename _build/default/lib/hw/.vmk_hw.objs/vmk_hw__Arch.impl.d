lib/hw/arch.ml: Format List String
