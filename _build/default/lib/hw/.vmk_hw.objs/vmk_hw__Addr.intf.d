lib/hw/addr.mli:
