lib/hw/disk.mli: Frame Irq Vmk_sim
