lib/hw/frame.mli:
