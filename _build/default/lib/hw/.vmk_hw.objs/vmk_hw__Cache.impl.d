lib/hw/cache.ml: Arch List
