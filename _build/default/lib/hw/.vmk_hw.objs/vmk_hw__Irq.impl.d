lib/hw/irq.ml: Array
