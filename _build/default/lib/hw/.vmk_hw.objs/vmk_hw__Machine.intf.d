lib/hw/machine.mli: Arch Cache Disk Frame Irq Nic Tlb Vmk_sim Vmk_trace
