lib/hw/nic.ml: Addr Frame Irq Queue Vmk_sim
