lib/hw/mmu.ml: Addr Arch Format Machine Page_table Tlb
