lib/hw/tlb.mli: Arch Page_table
