lib/hw/segments.mli: Addr Format
