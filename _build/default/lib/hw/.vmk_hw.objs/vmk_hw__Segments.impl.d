lib/hw/segments.ml: Addr Format List
