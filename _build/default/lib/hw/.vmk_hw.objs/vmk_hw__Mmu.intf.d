lib/hw/mmu.mli: Format Machine Page_table
