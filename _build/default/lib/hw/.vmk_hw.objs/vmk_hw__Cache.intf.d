lib/hw/cache.mli: Arch
