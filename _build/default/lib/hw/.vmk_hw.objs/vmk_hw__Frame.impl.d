lib/hw/frame.ml: Array List
