let page_shift = 12
let page_size = 1 lsl page_shift
let page_mask = page_size - 1
let vpn addr = addr lsr page_shift
let base addr = addr land lnot page_mask
let offset addr = addr land page_mask
let of_vpn n = n lsl page_shift

let pages_for bytes =
  if bytes < 0 then invalid_arg "Addr.pages_for: negative size";
  (bytes + page_size - 1) lsr page_shift

let is_page_aligned addr = addr land page_mask = 0

type range = { start : int; len : int }

let range ~start ~len =
  if len < 0 then invalid_arg "Addr.range: negative length";
  { start; len }

let range_end r = r.start + r.len

let ranges_overlap a b =
  a.len > 0 && b.len > 0 && a.start < range_end b && b.start < range_end a

let contains r addr = addr >= r.start && addr < range_end r
