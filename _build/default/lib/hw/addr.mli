(** Address arithmetic.

    One simulator-wide page size keeps frame accounting uniform across the
    nine architecture profiles; page-size effects are outside the paper's
    claims. Virtual and physical addresses are plain [int]s. *)

val page_size : int
(** 4096 bytes. *)

val page_shift : int
val page_mask : int

val vpn : int -> int
(** Virtual page number of an address. *)

val base : int -> int
(** Address of the start of the enclosing page. *)

val offset : int -> int
(** Offset within the page. *)

val of_vpn : int -> int
(** First address of virtual page [n]. *)

val pages_for : int -> int
(** Number of pages needed to hold [bytes] ([0] for [0]).

    @raise Invalid_argument on a negative size. *)

val is_page_aligned : int -> bool

type range = { start : int; len : int }
(** A byte range [\[start, start+len)]. *)

val range : start:int -> len:int -> range
(** @raise Invalid_argument if [len < 0]. *)

val range_end : range -> int
val ranges_overlap : range -> range -> bool
val contains : range -> int -> bool
