(** x86 segment registers — the machinery behind Xen's syscall shortcut.

    Xen's trap-gate shortcut (§3.2) lets a guest's [int 0x80] enter the
    guest kernel directly, skipping the VMM. It is only safe if every
    segment that stays live across the trap excludes the VMM's reserved
    address range: hardware reloads just two of the six selectors (CS, SS)
    through the gate, so the other four (DS, ES, FS, GS) keep whatever the
    application loaded. The paper notes that glibc's TLS support loads GS
    with a descriptor reaching the whole address space, violating the
    assumption and "rendering the shortcut useless" — experiment E4
    reproduces exactly that. *)

type selector = Cs | Ss | Ds | Es | Fs | Gs

type descriptor = { base : int; limit : int }
(** A flat segment covering bytes [\[base, base+limit)]. *)

type t
(** One hardware thread's segment-register file. *)

val create : user_limit:int -> t
(** Fresh register file with all six selectors covering
    [\[0, user_limit)] — the classic paravirtualised guest layout that
    leaves the VMM hole above [user_limit] unreachable. *)

val load : t -> selector -> descriptor -> unit
(** Load a selector (counts as one segment-register reload). *)

val get : t -> selector -> descriptor
val reload_count : t -> int

val trap_reloaded : selector list
(** Selectors the trap gate reloads: [\[Cs; Ss\]]. *)

val descriptor_excludes : descriptor -> Addr.range -> bool
(** The descriptor's reachable bytes do not intersect the range. *)

val live_segments_exclude : t -> Addr.range -> bool
(** True iff every selector {e not} in {!trap_reloaded} excludes the range
    — the precondition for the trap-gate shortcut to be safe. *)

val pp_selector : Format.formatter -> selector -> unit
