type pte = {
  frame : Frame.frame;
  writable : bool;
  user : bool;
  frame_generation : int;
}

type t = { asid : int; entries : (int, pte) Hashtbl.t }

let create ~asid = { asid; entries = Hashtbl.create 64 }
let asid t = t.asid

let map t ~vpn frame ~writable ~user =
  Hashtbl.replace t.entries vpn
    { frame; writable; user; frame_generation = frame.Frame.generation }

let unmap t ~vpn =
  match Hashtbl.find_opt t.entries vpn with
  | Some pte ->
      Hashtbl.remove t.entries vpn;
      Some pte
  | None -> None

let lookup t ~vpn = Hashtbl.find_opt t.entries vpn
let stale pte = pte.frame.Frame.generation <> pte.frame_generation
let mapped_count t = Hashtbl.length t.entries
let iter t ~f = Hashtbl.iter (fun vpn pte -> f ~vpn pte) t.entries
let clear t = Hashtbl.reset t.entries

let find_vpn_of_frame t frame =
  let found = ref None in
  Hashtbl.iter
    (fun vpn pte ->
      if !found = None && pte.frame == frame then found := Some vpn)
    t.entries;
  !found
