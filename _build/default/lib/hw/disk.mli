(** Block device model.

    A simple latency-modelled disk: requests complete after
    [base_latency + bytes·per_byte] cycles and raise the disk's interrupt
    line. Sector contents are content tags (see {!Frame}), persisted in a
    sector store so reads after writes verify data integrity across the
    block stack (native driver, blkfront/blkback, Parallax, L4 driver
    server). *)

type op = Read | Write

type request = {
  id : int;  (** Ticket returned by {!submit}. *)
  op : op;
  sector : int;
  frame : Frame.frame;  (** DMA target/source buffer. *)
  bytes : int;
}

type t

val create :
  Vmk_sim.Engine.t ->
  Irq.t ->
  irq_line:int ->
  ?base_latency:int64 ->
  ?per_byte_c100:int ->
  unit ->
  t
(** Default latency: 40_000 cycles + 8 c/B (a fast 2005 disk with cache). *)

val irq_line : t -> int

val submit : t -> op -> sector:int -> frame:Frame.frame -> bytes:int -> int
(** Queue a request; returns its id. On completion the IRQ line is raised:
    a [Read] deposits the stored sector tag into the frame; a [Write]
    persists the frame's tag into the sector store.

    @raise Invalid_argument on negative sector or size out of
    [\[0, page_size\]]. *)

val completed : t -> request option
(** Pop the oldest finished request. *)

val completions_pending : t -> int
val in_flight : t -> int

val sector_tag : t -> int -> int
(** Stored tag of a sector; [0] if never written. *)

val preload : t -> sector:int -> tag:int -> unit
(** Seed the sector store (build a test image without I/O). *)

val reads_total : t -> int
val writes_total : t -> int
val bytes_total : t -> int
