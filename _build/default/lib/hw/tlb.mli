(** Translation lookaside buffer model.

    A small fully-associative LRU cache of [(asid, vpn)] translations.
    Untagged TLBs (x86-32, ARMv5 profiles) must be flushed on address-space
    switch — the dominant cost of cross-domain IPC and of VMM world
    switches on those platforms; tagged TLBs only invalidate selectively.
    Hit/miss/flush statistics feed experiments E2 and E4. *)

type t

val create : entries:int -> tagged:bool -> t
(** @raise Invalid_argument if [entries < 1]. *)

val of_profile : Arch.profile -> t
(** TLB dimensioned from a platform profile. *)

val tagged : t -> bool
val capacity : t -> int

val lookup : t -> asid:int -> vpn:int -> Page_table.pte option
(** Probe; updates hit/miss counters and LRU order. On untagged TLBs the
    [asid] must match the last {!set_context}; stale entries never hit. *)

val insert : t -> asid:int -> vpn:int -> Page_table.pte -> unit
(** Fill after a page-table walk; evicts the LRU entry when full. *)

val invalidate : t -> asid:int -> vpn:int -> unit
(** Single-entry shootdown (after unmap or permission downgrade). *)

val set_context : t -> asid:int -> unit
(** Make [asid] current. On an untagged TLB this flushes everything —
    the "address-space switch tax"; on a tagged TLB it is free. *)

val flush_all : t -> unit
val flush_asid : t -> asid:int -> unit

val hits : t -> int
val misses : t -> int
val flushes : t -> int
(** Number of full flushes performed. *)

val live_entries : t -> int
val reset_stats : t -> unit
