type line = { region : string; index : int }

type t = {
  capacity : int;
  line_bytes : int;
  refill_cost : int;
  mutable lines : line list; (* most-recently-used first *)
  mutable hits : int;
  mutable misses : int;
  mutable miss_cycles : int;
}

let create ~lines ~line_bytes ~refill_cost =
  if lines < 1 || line_bytes < 1 || refill_cost < 1 then
    invalid_arg "Cache.create: parameters must be >= 1";
  {
    capacity = lines;
    line_bytes;
    refill_cost;
    lines = [];
    hits = 0;
    misses = 0;
    miss_cycles = 0;
  }

let of_profile (p : Arch.profile) =
  create ~lines:p.Arch.icache_lines ~line_bytes:p.Arch.cacheline_bytes
    ~refill_cost:p.Arch.tlb_refill_cost

let truncate n xs =
  let rec take i = function
    | [] -> []
    | _ when i = 0 -> []
    | x :: rest -> x :: take (i - 1) rest
  in
  take n xs

let touch_line t line =
  let rec split acc = function
    | [] -> None
    | l :: rest when l = line -> Some (List.rev_append acc rest)
    | l :: rest -> split (l :: acc) rest
  in
  match split [] t.lines with
  | Some rest ->
      t.hits <- t.hits + 1;
      t.lines <- line :: rest;
      0
  | None ->
      t.misses <- t.misses + 1;
      t.miss_cycles <- t.miss_cycles + t.refill_cost;
      t.lines <- truncate t.capacity (line :: t.lines);
      t.refill_cost

let touch t ~region ~lines =
  let cost = ref 0 in
  for index = 0 to lines - 1 do
    cost := !cost + touch_line t { region; index }
  done;
  !cost

let footprint_bytes t ~region =
  t.line_bytes
  * List.length (List.filter (fun l -> l.region = region) t.lines)

let resident_lines t = List.length t.lines
let hits t = t.hits
let misses t = t.misses
let miss_cycles t = t.miss_cycles
let flush t = t.lines <- []

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.miss_cycles <- 0
