(** Interrupt controller (PIC-style).

    Devices raise lines; the hosting kernel polls {!next_pending} at its
    preemption points (the simulator has no true asynchrony) and
    acknowledges lines it services. Lower line numbers have higher
    priority, as on the 8259. *)

type t

val create : lines:int -> t
(** @raise Invalid_argument if [lines < 1]. *)

val lines : t -> int

val raise_line : t -> int -> unit
(** Latch line [n] pending (edge-triggered; re-raising a pending line
    coalesces, which the raised/serviced counters expose).

    @raise Invalid_argument on an out-of-range line. *)

val is_pending : t -> int -> bool
(** The line's pending latch is set (masked or not). *)

val next_pending : t -> int option
(** Highest-priority pending unmasked line, without acknowledging it. *)

val any_pending : t -> bool

val ack : t -> int -> unit
(** Clear the pending latch for line [n] (start of service). *)

val mask : t -> int -> unit
val unmask : t -> int -> unit
val is_masked : t -> int -> bool

val raised_total : t -> int -> int
(** How many times the line was raised (including coalesced raises). *)

val serviced_total : t -> int -> int
(** How many times the line was acknowledged. *)
