(** Physical memory as a table of owned frames.

    Frames carry an owner (a protection-domain name), a kind, and a content
    [tag] standing in for the actual bytes: copies and page flips propagate
    tags, so tests can verify data integrity end-to-end without storing
    payloads. Ownership transfer is the primitive behind Xen-style page
    flipping; the paper's E3 experiment counts exactly these transfers. *)

type kind =
  | Ram
  | Device_buffer  (** Target of device DMA. *)
  | Page_table_frame  (** Pinned as a page table; never remapped writable. *)

type frame = private {
  index : int;  (** Physical frame number, stable for the frame's life. *)
  mutable owner : string;
  mutable kind : kind;
  mutable tag : int;  (** Content stand-in; [0] means "zeroed". *)
  mutable generation : int;
      (** Bumped on every ownership transfer; mappings record the
          generation they were created under so stale mappings are
          detectable. *)
  mutable allocated : bool;
}

type t
(** A machine's frame table plus free list. *)

exception Out_of_frames

val create : frames:int -> t
(** [create ~frames] is a table of [frames] free frames.

    @raise Invalid_argument if [frames < 1]. *)

val total : t -> int
val free_count : t -> int

val alloc : t -> owner:string -> ?kind:kind -> unit -> frame
(** Allocate a zeroed frame to [owner].

    @raise Out_of_frames when exhausted. *)

val alloc_many : t -> owner:string -> ?kind:kind -> int -> frame list

val release : t -> frame -> unit
(** Return a frame to the free list (tag cleared).

    @raise Invalid_argument if the frame is already free. *)

val transfer : t -> frame -> to_:string -> unit
(** Move ownership (the page-flip primitive). Bumps [generation]; the tag —
    i.e. the content — travels with the frame.

    @raise Invalid_argument on a free frame. *)

val get : t -> int -> frame
(** Frame by physical number.

    @raise Invalid_argument if out of range. *)

val set_tag : frame -> int -> unit
val owned_by : t -> string -> frame list
val count_owned_by : t -> string -> int

val reclaim_owner : t -> string -> int
(** Free every frame owned by the given domain (used when a domain is
    destroyed or killed by fault injection); returns how many frames were
    reclaimed. *)
