type t = {
  arch : Arch.profile;
  engine : Vmk_sim.Engine.t;
  frames : Frame.t;
  irq : Irq.t;
  nic : Nic.t;
  disk : Disk.t;
  tlb : Tlb.t;
  icache : Cache.t;
  counters : Vmk_trace.Counter.set;
  accounts : Vmk_trace.Accounts.t;
  rng : Vmk_sim.Rng.t;
  timer_on : bool ref;
}

let timer_irq = 0
let nic_irq = 1
let disk_irq = 2

let create ?(arch = Arch.default) ?(frames = 4096) ?seed () =
  let engine = Vmk_sim.Engine.create () in
  let irq = Irq.create ~lines:8 in
  {
    arch;
    engine;
    frames = Frame.create ~frames;
    irq;
    nic = Nic.create engine irq ~irq_line:nic_irq ();
    disk = Disk.create engine irq ~irq_line:disk_irq ();
    tlb = Tlb.of_profile arch;
    icache = Cache.of_profile arch;
    counters = Vmk_trace.Counter.create_set ();
    accounts = Vmk_trace.Accounts.create ();
    rng = Vmk_sim.Rng.create ?seed ();
    timer_on = ref false;
  }

let now t = Vmk_sim.Engine.now t.engine

let burn t cycles =
  if cycles < 0 then invalid_arg "Machine.burn: negative cycles";
  let c = Int64.of_int cycles in
  Vmk_trace.Accounts.charge_current t.accounts c;
  Vmk_sim.Engine.burn t.engine c

let burn_copy t ~bytes = burn t (Arch.copy_cost t.arch ~bytes)

let start_timer t ~period =
  if not !(t.timer_on) then begin
    t.timer_on := true;
    let flag = t.timer_on in
    Vmk_sim.Engine.every t.engine period (fun () ->
        if !flag then Irq.raise_line t.irq timer_irq;
        !flag)
  end

let stop_timer t = t.timer_on := false
let timer_running t = !(t.timer_on)
