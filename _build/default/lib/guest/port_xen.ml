module Machine = Vmk_hw.Machine
module Segments = Vmk_hw.Segments
module Counter = Vmk_trace.Counter
module Hcall = Vmk_vmm.Hcall
module Netfront = Vmk_vmm.Netfront
module Blkfront = Vmk_vmm.Blkfront
module Evt_mux = Vmk_vmm.Evt_mux

let io_timeout = 50_000_000L

type state = {
  mach : Machine.t;
  mux : Evt_mux.t;
  net : Netfront.t option;
  blk : Blkfront.t option;
  mutable fs : Minifs.t option;
}

let net_exn st =
  match st.net with
  | Some front -> front
  | None -> raise (Sys.Sys_error "no network device")

let blk_exn st =
  match st.blk with
  | Some front -> front
  | None -> raise (Sys.Sys_error "no block device")

let make_fs st =
  let front = blk_exn st in
  let read ~sector =
    Blkfront.read front ~mux:st.mux ~sector ~bytes:Sys.block_size
      ~timeout:io_timeout ()
  in
  let write ~sector ~tag =
    Blkfront.write front ~mux:st.mux ~sector ~bytes:Sys.block_size ~tag
      ~timeout:io_timeout ()
  in
  Minifs.create ~read ~write ()

let get_fs st =
  match st.fs with
  | Some fs -> fs
  | None ->
      let fs = make_fs st in
      st.fs <- Some fs;
      fs

let do_net_send st ~len ~tag =
  let front = net_exn st in
  (* Retry while transmit resources are exhausted (ring back-pressure). *)
  let rec attempt tries =
    if Netfront.send front ~len ~tag then Sys.G_unit
    else if Netfront.backend_dead front then Sys.G_error "network backend dead"
    else if tries = 0 then Sys.G_error "transmit ring saturated"
    else begin
      (match Hcall.block ~timeout:100_000L () with
      | Hcall.Events ports -> Evt_mux.dispatch st.mux ports
      | Hcall.Timed_out -> ());
      attempt (tries - 1)
    end
  in
  attempt 32

let do_net_recv st =
  let front = net_exn st in
  let got = ref None in
  let arrived () =
    Netfront.pump front;
    (match !got with
    | None -> got := Netfront.try_recv front
    | Some _ -> ());
    !got <> None || Netfront.backend_dead front
  in
  let ok = Evt_mux.wait st.mux ~timeout:io_timeout ~until:arrived () in
  match (!got, ok) with
  | Some (len, tag), _ -> Sys.G_data { len; tag }
  | None, _ -> Sys.G_error "network receive failed"

let do_blk st op ~sector ~len ~tag =
  let front = blk_exn st in
  match op with
  | `Write ->
      if Blkfront.write front ~mux:st.mux ~sector ~bytes:len ~tag
           ~timeout:io_timeout ()
      then Sys.G_unit
      else Sys.G_error "block write failed"
  | `Read -> begin
      match Blkfront.read front ~mux:st.mux ~sector ~bytes:len ~timeout:io_timeout () with
      | Some tag -> Sys.G_data { len; tag }
      | None -> Sys.G_error "block read failed"
    end

let handler st call =
  match call with
  | Sys.G_burn n ->
      Hcall.burn n;
      Sys.G_unit
  | _ -> begin
      Counter.incr st.mach.Machine.counters "gsys.count";
      (* The user→kernel transition, fast or bounced. *)
      ignore (Hcall.syscall_trap ());
      Hcall.burn (Sys.kernel_work call);
      match call with
      | Sys.G_burn _ -> assert false
      | Sys.G_getpid -> Sys.G_int 1
      | Sys.G_yield ->
          Hcall.yield ();
          Sys.G_unit
      | Sys.G_net_send { len; tag } -> do_net_send st ~len ~tag
      | Sys.G_net_recv -> do_net_recv st
      | Sys.G_blk_write { sector; len; tag } -> do_blk st `Write ~sector ~len ~tag
      | Sys.G_blk_read { sector; len } -> do_blk st `Read ~sector ~len ~tag:0
      | Sys.G_fs_create name -> Sys.G_int (Minifs.open_or_create (get_fs st) name)
      | Sys.G_fs_append { fd; tag } ->
          Sys.G_bool (Minifs.append (get_fs st) ~fd ~tag)
      | Sys.G_fs_read { fd; index } -> begin
          match Minifs.read_block (get_fs st) ~fd ~index with
          | Some tag -> Sys.G_int tag
          | None -> Sys.G_error "fs read failed"
        end
      | Sys.G_exit -> Sys.G_unit
    end

let guest_body mach ?net ?blk ?(fast_syscall = true) ?(glibc_tls = false)
    ?(on_ready = fun () -> ()) ~app () =
  Hcall.set_trap_table ~int80_direct:fast_syscall;
  if glibc_tls then
    (* glibc's TLS setup: GS reaches the whole address space, so the live
       segments no longer exclude the VMM hole. *)
    Hcall.load_segment Segments.Gs { Segments.base = 0; limit = 0xFFFF_FFFF };
  let mux = Evt_mux.create () in
  let net_front =
    Option.map
      (fun (chan, backend) ->
        let front =
          Netfront.connect chan ~backend ~arch:mach.Machine.arch ()
        in
        Evt_mux.on mux (Netfront.port front) (fun () -> Netfront.pump front);
        front)
      net
  in
  let blk_front =
    Option.map
      (fun (chan, backend) ->
        let front = Blkfront.connect chan ~backend ~arch:mach.Machine.arch () in
        Evt_mux.on mux (Blkfront.port front) (fun () -> Blkfront.pump front);
        front)
      blk
  in
  let st = { mach; mux; net = net_front; blk = blk_front; fs = None } in
  on_ready ();
  Sys.run_with_handler ~handler:(handler st) app
