(** Xen port: the mini-OS as a paravirtualised domain.

    Every system call enters through {!Vmk_vmm.Hcall.syscall_trap} — the
    trap-gate shortcut when valid, the VMM bounce otherwise (§3.2, E4) —
    then runs the same guest-kernel work as the other ports. I/O goes
    through netfront/blkfront to Dom0's backends.

    Returns a domain body for {!Vmk_vmm.Hypervisor.create_domain}. *)

val guest_body :
  Vmk_hw.Machine.t ->
  ?net:Vmk_vmm.Net_channel.t * Vmk_vmm.Hcall.domid ->
  ?blk:Vmk_vmm.Blk_channel.t * Vmk_vmm.Hcall.domid ->
  ?fast_syscall:bool ->
  ?glibc_tls:bool ->
  ?on_ready:(unit -> unit) ->
  app:(unit -> unit) ->
  unit ->
  unit
(** [guest_body mach ~net:(chan, backend) ~blk:(chan, backend) ~app ()].
    [on_ready] fires after the frontends are connected, before the app
    starts — scenarios use it to open the traffic gate.
    [fast_syscall] (default true) registers the int80 trap-gate shortcut;
    [glibc_tls] (default false) loads a full-address-space GS descriptor
    before the app starts, invalidating the shortcut exactly as the
    paper's glibc observation describes. The I/O timeout is 50M cycles;
    beyond it the app sees [Sys_error]. *)
