(** Tiny block-backed file system.

    A flat namespace of append-only files, each a list of 512-byte blocks,
    stored through whatever block layer the hosting port provides (native
    driver, blkfront, L4 driver server, Parallax virtual disk). Metadata
    lives in memory — the point is to exercise the block path with a
    file-level workload, not to survive reboots. *)

type t

val create :
  read:(sector:int -> int option) ->
  write:(sector:int -> tag:int -> bool) ->
  ?first_sector:int ->
  unit ->
  t
(** A file system writing through the given block callbacks, allocating
    sectors upward from [first_sector] (default 0). *)

val open_or_create : t -> string -> int
(** File descriptor for [name], creating the file if needed. *)

val append : t -> fd:int -> tag:int -> bool
(** Append one block with the given content tag; [false] if the block
    layer failed (dead backend) or the fd is stale. *)

val read_block : t -> fd:int -> index:int -> int option
(** Content tag of the file's [index]-th block; [None] out of range, on a
    stale fd, or on block-layer failure. *)

val size_blocks : t -> fd:int -> int option
val file_count : t -> int
val sectors_used : t -> int
