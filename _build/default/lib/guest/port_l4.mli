(** L4 port: the mini-OS as a microkernel server (L4Linux analog).

    The guest kernel is an ordinary thread; applications are threads in
    their own address spaces whose system calls are IPC calls to the
    guest-kernel server — exactly the structure of [HHL+97]. Device
    access goes through the user-level driver servers, adding one more
    IPC round trip per I/O, and the same guest-kernel work is charged as
    on the other ports.

    Wiring (see {!Vmk_core} scenarios): spawn {!Net_server}/{!Blk_server}
    threads, spawn {!guest_kernel_body} with their tids, then spawn each
    application with {!app_body}. *)

val gk_account : string
(** ["guestk"] — the guest-kernel server's cycle account. *)

val guest_kernel_body :
  net:Vmk_ukernel.Sysif.tid option ->
  blk:Vmk_ukernel.Sysif.tid option ->
  unit ->
  unit
(** Server loop translating the mini-OS syscall protocol into driver
    RPC. A dead driver server surfaces as error replies to the
    application, not as a server crash. *)

val app_body :
  Vmk_hw.Machine.t ->
  gk:Vmk_ukernel.Sysif.tid ->
  (unit -> unit) ->
  unit ->
  unit
(** Wrap an application: every {!Sys} syscall becomes
    [Sysif.call gk …]. Raises {!Sys.Sys_error} into the app when the
    guest kernel has died (E6's microkernel-side blast radius). *)
