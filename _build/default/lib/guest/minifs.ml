type file = { name : string; mutable blocks : int list (* sectors, reversed *) }

type t = {
  read : sector:int -> int option;
  write : sector:int -> tag:int -> bool;
  files : (int, file) Hashtbl.t;
  by_name : (string, int) Hashtbl.t;
  mutable next_fd : int;
  mutable next_sector : int;
}

let create ~read ~write ?(first_sector = 0) () =
  {
    read;
    write;
    files = Hashtbl.create 16;
    by_name = Hashtbl.create 16;
    next_fd = 3; (* tradition *)
    next_sector = first_sector;
  }

let open_or_create t name =
  match Hashtbl.find_opt t.by_name name with
  | Some fd -> fd
  | None ->
      let fd = t.next_fd in
      t.next_fd <- t.next_fd + 1;
      Hashtbl.add t.files fd { name; blocks = [] };
      Hashtbl.add t.by_name name fd;
      fd

let append t ~fd ~tag =
  match Hashtbl.find_opt t.files fd with
  | None -> false
  | Some file ->
      let sector = t.next_sector in
      t.next_sector <- t.next_sector + 1;
      if t.write ~sector ~tag then begin
        file.blocks <- sector :: file.blocks;
        true
      end
      else false

let read_block t ~fd ~index =
  match Hashtbl.find_opt t.files fd with
  | None -> None
  | Some file ->
      let blocks = List.rev file.blocks in
      if index < 0 || index >= List.length blocks then None
      else t.read ~sector:(List.nth blocks index)

let size_blocks t ~fd =
  Option.map
    (fun file -> List.length file.blocks)
    (Hashtbl.find_opt t.files fd)

let file_count t = Hashtbl.length t.files

let sectors_used t =
  Hashtbl.fold (fun _ file acc -> acc + List.length file.blocks) t.files 0
