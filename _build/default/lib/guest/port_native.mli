(** Native port: the mini-OS on bare (simulated) hardware.

    The monolithic baseline every experiment compares against: system
    calls cost one hardware kernel entry, drivers talk to the devices
    directly, nothing else runs on the machine. All cycles are charged to
    the ["native"] account. *)

val account : string

val run : Vmk_hw.Machine.t -> ?nic_buffers:int -> (unit -> unit) -> unit
(** Run an application to completion on a fresh machine. Device waits
    idle the virtual clock forward; [Sys_error] is raised into the app on
    device failure (e.g. blocking receive with no traffic left). *)
