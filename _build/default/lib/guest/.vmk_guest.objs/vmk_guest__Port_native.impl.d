lib/guest/port_native.ml: List Minifs Queue Sys Vmk_hw Vmk_sim Vmk_trace
