lib/guest/port_l4.ml: Array Hashtbl Minifs Option Sys Vmk_hw Vmk_trace Vmk_ukernel
