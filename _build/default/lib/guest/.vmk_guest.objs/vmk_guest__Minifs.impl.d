lib/guest/minifs.ml: Hashtbl List Option
