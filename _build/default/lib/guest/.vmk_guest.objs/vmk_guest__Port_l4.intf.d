lib/guest/port_l4.mli: Vmk_hw Vmk_ukernel
