lib/guest/sys.ml: Effect
