lib/guest/sys.mli: Effect
