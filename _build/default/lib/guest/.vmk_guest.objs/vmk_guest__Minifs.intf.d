lib/guest/minifs.mli:
