lib/guest/port_native.mli: Vmk_hw
