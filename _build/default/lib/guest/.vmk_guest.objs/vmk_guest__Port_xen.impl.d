lib/guest/port_xen.ml: Minifs Option Sys Vmk_hw Vmk_trace Vmk_vmm
