lib/guest/port_xen.mli: Vmk_hw Vmk_vmm
