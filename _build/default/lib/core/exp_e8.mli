(** E8 — macro performance of the hosted OS ([HHL+97] analog).

    §3.3: "L4 has demonstrated many years ago that it is perfectly
    suitable as a VMM supporting a paravirtualised Linux system with
    excellent performance" — Härtig et al. measured L4Linux within a few
    percent of native on macrobenchmarks, with larger gaps on
    syscall-bound microbenchmarks. The same two workload mixes run on
    native, L4 and Xen hosting. *)

val experiment : Experiment.t

type row = {
  structure : string;
  workload : string;
  busy_cycles : int64;
  relative : float;  (** Slowdown vs native on the same workload. *)
}

val measure : quick:bool -> row list
