(** E6 — liability inversion and failure blast radius.

    §3.1: Hand et al. accuse microkernels of "liability inversion"; the
    rebuttal observes Xen has it identically — Parallax "provid[es] a
    critical system service for a set of VMs", and "a failure of the
    Parallax server only affects its clients — exactly the same situation
    as if a server fails in an L4-based system". We kill components
    mid-workload in both stacks and measure which clients fail and which
    bystanders keep running. *)

val experiment : Experiment.t

val ablation : Experiment.t
(** A3 — consolidated Dom0 ("super-VM") vs disaggregated service domain:
    killing Dom0 takes every I/O path with it, killing Parallax only its
    storage clients — §2.2's "single point of failure" warning
    quantified. *)

type fate = {
  participant : string;
  role : string;
  completed : int;
  errors : int;
  failed : bool;  (** Stopped early with errors. *)
}

val vmm_blast_radius :
  quick:bool -> kill:[ `Parallax | `Dom0 ] -> fate list
(** Two Parallax storage clients, one Dom0-network client, one pure
    compute guest; the named component is killed mid-run. Exposed for
    tests. *)

val l4_blast_radius :
  quick:bool -> kill:[ `Blk_server | `Pager ] -> fate list
