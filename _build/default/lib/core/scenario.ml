module Machine = Vmk_hw.Machine
module Nic = Vmk_hw.Nic
module Accounts = Vmk_trace.Accounts
module Counter = Vmk_trace.Counter
module Kernel = Vmk_ukernel.Kernel
module Hypervisor = Vmk_vmm.Hypervisor
module Net_channel = Vmk_vmm.Net_channel
module Blk_channel = Vmk_vmm.Blk_channel
module Dom0 = Vmk_vmm.Dom0
module Port_native = Vmk_guest.Port_native
module Port_xen = Vmk_guest.Port_xen
module Port_l4 = Vmk_guest.Port_l4
module Net_server = Vmk_ukernel.Net_server
module Blk_server = Vmk_ukernel.Blk_server
module Traffic = Vmk_workloads.Traffic

type outcome = {
  cycles : int64;
  busy_cycles : int64;
  accounts : (string * int64) list;
  counters : (string * int) list;
  counter_set : Counter.set;
  completed : bool;
  icache_misses : int;
  icache_miss_cycles : int;
}

type traffic_spec = Machine.t -> gate:(unit -> bool) -> Traffic.t

let account_cycles outcome name =
  match List.assoc_opt name outcome.accounts with Some v -> v | None -> 0L

let counter outcome name =
  match List.assoc_opt name outcome.counters with Some v -> v | None -> 0

let outcome_of mach ~completed =
  {
    cycles = Machine.now mach;
    busy_cycles = Accounts.busy_total mach.Machine.accounts;
    accounts = Accounts.to_list mach.Machine.accounts;
    counters = Counter.to_list mach.Machine.counters;
    counter_set = mach.Machine.counters;
    completed;
    icache_misses = Vmk_hw.Cache.misses mach.Machine.icache;
    icache_miss_cycles = Vmk_hw.Cache.miss_cycles mach.Machine.icache;
  }

let run_native ?arch ?seed ?traffic ~app () =
  let mach = Machine.create ?arch ?seed () in
  let _source =
    Option.map
      (fun spec ->
        spec mach ~gate:(fun () -> Nic.rx_buffers_posted mach.Machine.nic > 0))
      traffic
  in
  let completed = ref false in
  Port_native.run mach (fun () ->
      app ();
      completed := true);
  outcome_of mach ~completed:!completed

let run_xen ?arch ?seed ?(rx_mode = Net_channel.Flip) ?(net = true) ?(blk = true)
    ?(fast_syscall = true) ?(glibc_tls = false) ?traffic ~app () =
  let mach = Machine.create ?arch ?seed () in
  let h = Hypervisor.create mach in
  let net_chan =
    if net then Some (Net_channel.create ~mode:rx_mode ~demux_key:1 ()) else None
  in
  let blk_chan = if blk then Some (Blk_channel.create ()) else None in
  let dom0 =
    Hypervisor.create_domain h ~name:Dom0.name ~privileged:true
      (Dom0.body mach
         ?net:(Option.map (fun c -> [ c ]) net_chan)
         ?blk:(Option.map (fun c -> [ c ]) blk_chan))
  in
  let ready = ref false in
  let completed = ref false in
  let _guest =
    Hypervisor.create_domain h ~name:"guest1"
      (Port_xen.guest_body mach
         ?net:(Option.map (fun c -> (c, dom0)) net_chan)
         ?blk:(Option.map (fun c -> (c, dom0)) blk_chan)
         ~fast_syscall ~glibc_tls
         ~on_ready:(fun () -> ready := true)
         ~app:(fun () ->
           app ();
           completed := true))
  in
  let _source =
    Option.map (fun spec -> spec mach ~gate:(fun () -> !ready)) traffic
  in
  ignore (Hypervisor.run h ~until:(fun () -> !completed));
  (* Let in-flight I/O drain so device counters settle. *)
  ignore (Hypervisor.run h ~max_dispatches:100_000);
  outcome_of mach ~completed:!completed

let run_l4 ?arch ?seed ?(net = true) ?(blk = true) ?traffic ~app () =
  let mach = Machine.create ?arch ?seed () in
  let k = Kernel.create mach in
  let net_tid =
    if net then
      Some
        (Kernel.spawn k ~name:"net-server" ~priority:2
           ~account:Net_server.account (fun () -> Net_server.body mach ()))
    else None
  in
  let blk_tid =
    if blk then
      Some
        (Kernel.spawn k ~name:"blk-server" ~priority:2
           ~account:Blk_server.account (fun () -> Blk_server.body mach ()))
    else None
  in
  let gk =
    Kernel.spawn k ~name:"guest-kernel" ~priority:3 ~account:Port_l4.gk_account
      (Port_l4.guest_kernel_body ~net:net_tid ~blk:blk_tid)
  in
  let completed = ref false in
  let _app_tid =
    Kernel.spawn k ~name:"app" ~priority:4 ~account:"app"
      (Port_l4.app_body mach ~gk (fun () ->
           app ();
           completed := true))
  in
  let _source =
    Option.map
      (fun spec ->
        spec mach ~gate:(fun () -> Nic.rx_buffers_posted mach.Machine.nic > 0))
      traffic
  in
  ignore (Kernel.run k ~until:(fun () -> !completed));
  ignore (Kernel.run k ~max_dispatches:100_000);
  outcome_of mach ~completed:!completed
