module Machine = Vmk_hw.Machine
module Table = Vmk_stats.Table
module Hypervisor = Vmk_vmm.Hypervisor
module Blk_channel = Vmk_vmm.Blk_channel
module Dom0 = Vmk_vmm.Dom0
module Parallax = Vmk_vmm.Parallax
module Port_xen = Vmk_guest.Port_xen
module Apps = Vmk_workloads.Apps

(* Literature size estimates (kLoC) for the component classes, mid-2000s:
   L4-class microkernel ~10 kLoC [Lie96 era]; Xen 2 core ~70 kLoC
   [BDF+03]; a Linux driver domain or guest kernel ~2 MLoC class
   [CYC+01 studied exactly this code base]; single-purpose servers a few
   kLoC. The defect column applies a uniform density (5 defects/kLoC,
   conservative within [CYC+01]'s 1–16.6 range) — only the RATIOS are
   meaningful. *)
let kloc_of = function
  | "vmm" -> 70
  | "dom0" -> 2_000
  | "parallax" -> 15
  | "ukernel" -> 10
  | "drv.blk" -> 8
  | "drv.net" -> 10
  | "guestk" -> 2_000 (* the client's own OS personality, L4Linux-class *)
  | "guest-os" -> 2_000 (* the client's own paravirtualised kernel *)
  | _ -> 0

let defects_per_kloc = 5

(* Reliance set: infrastructure accounts that burned cycles while serving
   a lone storage client. The client's own account (and its own guest OS,
   which it trusts under every structure) is reported separately. *)
let reliance accounts ~client_accounts =
  accounts
  |> List.filter (fun (name, cycles) ->
         Int64.compare cycles 0L > 0
         && (not (List.mem name client_accounts))
         && name <> "idle")
  |> List.map fst

let storage_app ~quick () =
  let ops = if quick then 20 else 60 in
  Apps.blk_mix ~ops ~span:16 ~seed:7 () ()

let run_l4 ~quick =
  let outcome =
    Scenario.run_l4 ~net:false ~app:(storage_app ~quick) ()
  in
  (* "app" is the client; "guestk" is its own OS personality. *)
  (reliance outcome.Scenario.accounts ~client_accounts:[ "app"; "guestk" ],
   [ "guestk" ])

let run_xen_direct ~quick =
  let outcome = Scenario.run_xen ~net:false ~app:(storage_app ~quick) () in
  (* guest1 bundles the client and its paravirtualised kernel. *)
  (reliance outcome.Scenario.accounts ~client_accounts:[ "guest1" ],
   [ "guest-os" ])

let run_xen_parallax ~quick =
  let mach = Machine.create ~seed:51L () in
  let h = Hypervisor.create mach in
  let upstream = Blk_channel.create () in
  let chan = Blk_channel.create () in
  let dom0 =
    Hypervisor.create_domain h ~name:Dom0.name ~privileged:true
      (Dom0.body mach ~blk:[ upstream ])
  in
  let parallax =
    Hypervisor.create_domain h ~name:Parallax.name
      (Parallax.body mach ~clients:[ chan ] ~upstream ~dom0)
  in
  let done_ = ref false in
  let _client =
    Hypervisor.create_domain h ~name:"client"
      (Port_xen.guest_body mach ~blk:(chan, parallax)
         ~app:(fun () ->
           storage_app ~quick ();
           done_ := true))
  in
  ignore (Hypervisor.run h ~until:(fun () -> !done_));
  let accounts = Vmk_trace.Accounts.to_list mach.Machine.accounts in
  (reliance accounts ~client_accounts:[ "client" ], [ "guest-os" ])

let tcb_rows ~structure (infra, own_os) =
  let weigh names =
    List.fold_left (fun acc name -> acc + kloc_of name) 0 names
  in
  let infra_kloc = weigh infra in
  ( structure,
    infra,
    own_os,
    infra_kloc,
    infra_kloc * defects_per_kloc )

let run ~quick =
  let rows =
    [
      tcb_rows ~structure:"l4 (driver server)" (run_l4 ~quick);
      tcb_rows ~structure:"xen (dom0 storage)" (run_xen_direct ~quick);
      tcb_rows ~structure:"xen (parallax service)" (run_xen_parallax ~quick);
    ]
  in
  let table =
    Table.create
      ~header:
        [
          "structure";
          "measured reliance set (I/O path)";
          "infra kLoC (lit.)";
          "est. defects";
        ]
  in
  List.iter
    (fun (structure, infra, _own, kloc, defects) ->
      Table.add_row table
        [
          structure;
          String.concat " + " (List.sort compare infra);
          string_of_int kloc;
          string_of_int defects;
        ])
    rows;
  let kloc_of_row name =
    let _, _, _, kloc, _ =
      List.find (fun (s, _, _, _, _) -> s = name) rows
    in
    kloc
  in
  let l4_kloc = kloc_of_row "l4 (driver server)" in
  let dom0_kloc = kloc_of_row "xen (dom0 storage)" in
  let parallax_kloc = kloc_of_row "xen (parallax service)" in
  let infra_of name =
    let _, infra, _, _, _ = List.find (fun (s, _, _, _, _) -> s = name) rows in
    List.sort compare infra
  in
  {
    Experiment.tables =
      [ ("Per-client I/O-path TCB (own guest OS excluded — trusted under \
          every structure)", table) ];
    verdicts =
      [
        Experiment.verdict
          ~claim:
            "the super-VM re-introduces a legacy OS into every client's TCB \
             (§2.2, [CYC+01])"
          ~expected:
            "both VMM structures' I/O paths include dom0; the microkernel \
             path replaces it with a single-purpose driver server"
          ~measured:
            (Printf.sprintf "xen: {%s}; l4: {%s}"
               (String.concat ", " (infra_of "xen (dom0 storage)"))
               (String.concat ", " (infra_of "l4 (driver server)")))
          (List.mem "dom0" (infra_of "xen (dom0 storage)")
          && List.mem "dom0" (infra_of "xen (parallax service)")
          && (not (List.mem "dom0" (infra_of "l4 (driver server)")))
          && List.mem "drv.blk" (infra_of "l4 (driver server)"));
        Experiment.verdict
          ~claim:"small kernels shrink the TCB ([HPHS04])"
          ~expected:
            "the microkernel I/O-path TCB is at least 10x smaller (literature \
             kLoC) than either VMM structure's"
          ~measured:
            (Printf.sprintf "l4 %d kLoC vs dom0-direct %d vs parallax %d"
               l4_kloc dom0_kloc parallax_kloc)
          (l4_kloc * 10 <= dom0_kloc && l4_kloc * 10 <= parallax_kloc);
        Experiment.verdict
          ~claim:"disaggregation does not shrink the TCB while dom0 stays \
                  on the path"
          ~expected:
            "the parallax structure's TCB is not smaller than dom0-direct \
             (it adds a component; dom0 remains)"
          ~measured:
            (Printf.sprintf "parallax %d kLoC vs direct %d kLoC" parallax_kloc
               dom0_kloc)
          (parallax_kloc >= dom0_kloc);
      ];
  }

let experiment =
  {
    Experiment.id = "e10";
    title = "Per-client TCB: reliance sets and their size";
    paper_claim =
      "§2.2: a super-VM running 'a legacy operating system … re-introduces \
       a large number of software bugs [CYC+01]'; conclusion cites [HPHS04] \
       on reducing TCB size with small kernels.";
    run;
  }
