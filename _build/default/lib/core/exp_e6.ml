module Machine = Vmk_hw.Machine
module Addr = Vmk_hw.Addr
module Table = Vmk_stats.Table
module Kernel = Vmk_ukernel.Kernel
module Sysif = Vmk_ukernel.Sysif
module Net_server = Vmk_ukernel.Net_server
module Blk_server = Vmk_ukernel.Blk_server
module Pager = Vmk_ukernel.Pager
module Hypervisor = Vmk_vmm.Hypervisor
module Net_channel = Vmk_vmm.Net_channel
module Blk_channel = Vmk_vmm.Blk_channel
module Dom0 = Vmk_vmm.Dom0
module Parallax = Vmk_vmm.Parallax
module Port_xen = Vmk_guest.Port_xen
module Port_l4 = Vmk_guest.Port_l4
module Apps = Vmk_workloads.Apps
module Traffic = Vmk_workloads.Traffic
module Engine = Vmk_sim.Engine

type fate = {
  participant : string;
  role : string;
  completed : int;
  errors : int;
  failed : bool;
}

let fate_of ~participant ~role ~goal (stats : Apps.stats) =
  {
    participant;
    role;
    completed = stats.Apps.completed;
    errors = stats.Apps.errors;
    failed = stats.Apps.errors > 0 || stats.Apps.completed < goal;
  }

(* --- VMM side: Dom0 + Parallax + three kinds of client --- *)

let vmm_blast_radius ~quick ~kill =
  let ops = if quick then 24 else 60 in
  (* The network client must still be running when the kill fires, well
     after the storage clients have made visible progress. *)
  let packets = if quick then 160 else 280 in
  let mach = Machine.create ~seed:21L () in
  let h = Hypervisor.create mach in
  let upstream = Blk_channel.create () in
  let storage_chans = [ Blk_channel.create (); Blk_channel.create () ] in
  let net_chan = Net_channel.create ~mode:Net_channel.Flip ~demux_key:1 () in
  let dom0 =
    Hypervisor.create_domain h ~name:Dom0.name ~privileged:true
      (Dom0.body mach ~net:[ net_chan ] ~blk:[ upstream ])
  in
  let parallax =
    Hypervisor.create_domain h ~name:Parallax.name
      (Parallax.body mach ~clients:storage_chans ~upstream ~dom0)
  in
  let storage_stats = [ Apps.stats (); Apps.stats () ] in
  List.iteri
    (fun i (chan, stats) ->
      ignore
        (Hypervisor.create_domain h
           ~name:(Printf.sprintf "storage%d" i)
           (Port_xen.guest_body mach ~blk:(chan, parallax)
              ~app:(Apps.blk_mix ~stats ~ops ~span:24 ~seed:(100 + i) ()))))
    (List.combine storage_chans storage_stats);
  let net_stats = Apps.stats () in
  let net_ready = ref false in
  let _net_client =
    Hypervisor.create_domain h ~name:"netuser"
      (Port_xen.guest_body mach ~net:(net_chan, dom0)
         ~on_ready:(fun () -> net_ready := true)
         ~app:(Apps.net_rx_stream ~stats:net_stats ~packets ()))
  in
  let compute_stats = Apps.stats () in
  let _compute =
    Hypervisor.create_domain h ~name:"cruncher"
      (Port_xen.guest_body mach
         ~app:(Apps.compute ~stats:compute_stats ~iterations:(ops * 4) ~work:40_000 ()))
  in
  let _traffic =
    (* Offer twice the goal: an occasional wire drop must not look like a
       backend failure to the receiver. *)
    Traffic.constant_rate mach
      ~gate:(fun () -> !net_ready)
      ~period:150_000L ~len:512 ~count:(packets * 2) ()
  in
  (* Let everyone make progress, then pull the trigger. *)
  let progressed () =
    List.for_all (fun (s : Apps.stats) -> s.Apps.completed >= 6) storage_stats
    && net_stats.Apps.completed >= 4
  in
  ignore (Hypervisor.run h ~until:progressed);
  (match kill with
  | `Parallax -> Hypervisor.kill_domain h parallax
  | `Dom0 -> Hypervisor.kill_domain h dom0);
  ignore (Hypervisor.run h);
  List.mapi
    (fun i stats ->
      fate_of
        ~participant:(Printf.sprintf "storage%d" i)
        ~role:"parallax storage client" ~goal:ops stats)
    storage_stats
  @ [
      fate_of ~participant:"netuser" ~role:"dom0 network client" ~goal:packets
        net_stats;
      fate_of ~participant:"cruncher" ~role:"compute-only guest"
        ~goal:(ops * 4) compute_stats;
      {
        participant = Dom0.name;
        role = "driver super-VM";
        completed = 0;
        errors = 0;
        failed = not (Hypervisor.is_alive h dom0);
      };
      {
        participant = Parallax.name;
        role = "storage service VM";
        completed = 0;
        errors = 0;
        failed = not (Hypervisor.is_alive h parallax);
      };
    ]

(* --- microkernel side: driver servers, pager, clients --- *)

let l4_blast_radius ~quick ~kill =
  let ops = if quick then 24 else 60 in
  let packets = if quick then 160 else 280 in
  let mach = Machine.create ~seed:22L () in
  let k = Kernel.create mach in
  let net_tid =
    Kernel.spawn k ~name:"net-server" ~priority:2 ~account:Net_server.account
      (fun () -> Net_server.body mach ())
  in
  let blk_tid =
    Kernel.spawn k ~name:"blk-server" ~priority:2 ~account:Blk_server.account
      (fun () -> Blk_server.body mach ())
  in
  let pager_tid =
    (* Pool sized past the faulter's total demand: exhaustion is not the
       failure mode under test here. *)
    Kernel.spawn k ~name:"pager" ~priority:2
      (Pager.body ~pool_pages:((ops * 8) + 32))
  in
  let gk =
    Kernel.spawn k ~name:"guest-kernel" ~priority:3 ~account:Port_l4.gk_account
      (Port_l4.guest_kernel_body ~net:(Some net_tid) ~blk:(Some blk_tid))
  in
  let storage_stats = [ Apps.stats (); Apps.stats () ] in
  List.iteri
    (fun i stats ->
      ignore
        (Kernel.spawn k
           ~name:(Printf.sprintf "storage%d" i)
           ~account:(Printf.sprintf "storage%d" i)
           (Port_l4.app_body mach ~gk
              (Apps.blk_mix ~stats ~base:(i * 4096) ~ops ~span:24
                 ~seed:(100 + i) ()))))
    storage_stats;
  let net_stats = Apps.stats () in
  let _net_app =
    Kernel.spawn k ~name:"netuser" ~account:"netuser"
      (Port_l4.app_body mach ~gk
         (Apps.net_rx_stream ~stats:net_stats ~packets ()))
  in
  let compute_stats = Apps.stats () in
  let _compute =
    Kernel.spawn k ~name:"cruncher" ~account:"cruncher"
      (Port_l4.app_body mach ~gk
         (Apps.compute ~stats:compute_stats ~iterations:(ops * 4) ~work:40_000 ()))
  in
  (* A client of the pager: touches fresh pages, faulting on each. *)
  let pager_client_completed = ref 0 and pager_client_errors = ref 0 in
  let _pager_client =
    (* Paced so it is still faulting when the kill fires. *)
    Kernel.spawn k ~name:"faulter" ~pager:pager_tid ~account:"faulter" (fun () ->
        for i = 0 to (ops * 8) - 1 do
          Sysif.burn 20_000;
          match
            Sysif.touch ~addr:(Addr.of_vpn (0x4000 + i)) ~len:8 ~write:true
          with
          | () -> incr pager_client_completed
          | exception Sysif.Ipc_error _ -> incr pager_client_errors
        done)
  in
  let _traffic =
    Traffic.constant_rate mach
      ~gate:(fun () -> Vmk_hw.Nic.rx_buffers_posted mach.Machine.nic > 0)
      ~period:150_000L ~len:512 ~count:(packets * 2) ()
  in
  let progressed () =
    List.for_all (fun (s : Apps.stats) -> s.Apps.completed >= 6) storage_stats
    && net_stats.Apps.completed >= 4
    && !pager_client_completed >= 6
  in
  ignore (Kernel.run k ~until:progressed);
  (match kill with
  | `Blk_server -> Kernel.kill k blk_tid
  | `Pager -> Kernel.kill k pager_tid);
  ignore (Kernel.run k);
  List.mapi
    (fun i stats ->
      fate_of
        ~participant:(Printf.sprintf "storage%d" i)
        ~role:"blk-server client" ~goal:ops stats)
    storage_stats
  @ [
      fate_of ~participant:"netuser" ~role:"net-server client" ~goal:packets
        net_stats;
      fate_of ~participant:"cruncher" ~role:"compute-only thread"
        ~goal:(ops * 4) compute_stats;
      {
        participant = "faulter";
        role = "pager client";
        completed = !pager_client_completed;
        errors = !pager_client_errors;
        failed = !pager_client_errors > 0;
      };
      {
        participant = "guest-kernel";
        role = "OS server";
        completed = 0;
        errors = 0;
        failed = not (Kernel.is_alive k gk);
      };
      {
        participant = "net-server";
        role = "driver server";
        completed = 0;
        errors = 0;
        failed = not (Kernel.is_alive k net_tid);
      };
    ]

(* --- reporting --- *)

let fate_table title fates =
  let table =
    Table.create ~header:[ "participant"; "role"; "completed"; "errors"; "fate" ]
  in
  List.iter
    (fun f ->
      Table.add_row table
        [
          f.participant;
          f.role;
          string_of_int f.completed;
          string_of_int f.errors;
          (if f.failed then "FAILED" else "survived");
        ])
    fates;
  (title, table)

let failed_set fates =
  List.filter_map (fun f -> if f.failed then Some f.participant else None) fates

let run ~quick =
  let parallax_kill = vmm_blast_radius ~quick ~kill:`Parallax in
  let blk_kill = l4_blast_radius ~quick ~kill:`Blk_server in
  let pager_kill = l4_blast_radius ~quick ~kill:`Pager in
  let vmm_failed = failed_set parallax_kill in
  let l4_failed = failed_set blk_kill in
  let pager_failed = failed_set pager_kill in
  {
    Experiment.tables =
      [
        fate_table "VMM stack: Parallax killed mid-run" parallax_kill;
        fate_table "Microkernel stack: blk server killed mid-run" blk_kill;
        fate_table "Microkernel stack: pager killed mid-run" pager_kill;
      ];
    verdicts =
      [
        Experiment.verdict
          ~claim:"a Parallax failure only affects its clients (§3.1)"
          ~expected:
            "exactly {storage0, storage1, parallax} fail; network, compute \
             and Dom0 survive"
          ~measured:(String.concat ", " vmm_failed)
          (List.sort compare vmm_failed
          = [ "parallax"; "storage0"; "storage1" ]);
        Experiment.verdict
          ~claim:
            "exactly the same situation as if a server fails in an L4-based \
             system (§3.1)"
          ~expected:"the same blast-radius pattern: storage clients only"
          ~measured:(String.concat ", " l4_failed)
          (List.sort compare l4_failed = [ "storage0"; "storage1" ]);
        Experiment.verdict
          ~claim:"external pagers confine their failures the same way"
          ~expected:"killing the pager fails only its faulting client"
          ~measured:(String.concat ", " pager_failed)
          (pager_failed = [ "faulter" ]);
      ];
  }

let experiment =
  {
    Experiment.id = "e6";
    title = "Liability inversion: failure blast radius in both stacks";
    paper_claim =
      "§3.1: 'a failure of the Parallax server only affects its clients — \
       exactly the same situation as if a server fails in an L4-based \
       system. Hence, we fail to see the difference between a VMM and a \
       microkernel in this respect.'";
    run;
  }

let run_ablation ~quick =
  let parallax_kill = vmm_blast_radius ~quick ~kill:`Parallax in
  let dom0_kill = vmm_blast_radius ~quick ~kill:`Dom0 in
  let clients = [ "storage0"; "storage1"; "netuser"; "cruncher" ] in
  let failed_clients fates =
    List.filter (fun name -> List.mem name (failed_set fates)) clients
  in
  let parallax_radius = failed_clients parallax_kill in
  let dom0_radius = failed_clients dom0_kill in
  {
    Experiment.tables =
      [
        fate_table "Disaggregated service (Parallax) killed" parallax_kill;
        fate_table "Consolidated super-VM (Dom0) killed" dom0_kill;
      ];
    verdicts =
      [
        Experiment.verdict
          ~claim:
            "a consolidated super-VM 'poses the risk of a single point of \
             failure' (§2.2)"
          ~expected:
            "killing Dom0 fails every I/O client (storage via the parallax \
             chain and network), strictly more than killing Parallax"
          ~measured:
            (Printf.sprintf "dom0 kill: {%s}; parallax kill: {%s}"
               (String.concat ", " dom0_radius)
               (String.concat ", " parallax_radius))
          (List.length dom0_radius > List.length parallax_radius
          && List.mem "netuser" dom0_radius
          && List.mem "storage0" dom0_radius
          && not (List.mem "cruncher" dom0_radius));
      ];
  }

let ablation =
  {
    Experiment.id = "a3";
    title = "Ablation: consolidated Dom0 vs disaggregated service domain";
    paper_claim =
      "§2.2: 'centralized super-VMs that combine and colocate significant \
       critical system functionality … potentially decreases overall \
       reliability and poses the risk of a single point of failure.'";
    run = run_ablation;
  }
