(** E2 — IPC primitive microbenchmarks.

    §2.2: "An obvious key requirement for any microkernel is a
    low-overhead IPC primitive", contrasted with the VMM's heavier
    dedicated mechanisms. Ping-pong round trips over L4 IPC (register,
    string, map variants; same- and cross-address-space) versus VMM
    event-channel notification, grant map/unmap and page-flip
    operations. *)

val experiment : Experiment.t

val ablation : Experiment.t
(** A2 — synchronous IPC versus asynchronous event-channel + shared ring
    under batching: notification coalescing amortises the async path's
    cost as batch size grows, while synchronous IPC stays constant per
    message. *)
