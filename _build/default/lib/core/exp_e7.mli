(** E7 — portability across the nine processor platforms.

    §2.2: "software that is written for an L4 microkernel naturally runs
    on nine different processor platforms", while software developed
    against a VMM's interface "is inherently unportable across
    architectures" because the VMM resembles one architecture's hardware.
    The same client/server/pager component binary (the same OCaml
    closures, no architecture conditionals) runs on all nine profiles;
    the VMM's flagship x86 optimisation — the trap-gate syscall shortcut —
    is probed on each platform. *)

val experiment : Experiment.t

val ablation : Experiment.t
(** A4 — tagged vs untagged TLBs: the cross-address-space IPC penalty the
    microkernel pays on x86-class hardware largely vanishes on
    tagged-TLB platforms, while the VMM world switch keeps its fixed
    save/restore cost everywhere. *)
