type role = Control_transfer | Data_transfer | Resource_delegation
type system = Microkernel | Vmm

let all_roles = [ Control_transfer; Data_transfer; Resource_delegation ]

let microkernel_map =
  [
    ("uk.ipc.rendezvous", [ Control_transfer ]);
    ("uk.ipc.words", [ Data_transfer ]);
    ("uk.ipc.bytes", [ Data_transfer ]);
    ("uk.ipc.map_pages", [ Resource_delegation ]);
    ("uk.unmap.pages", [ Resource_delegation ]);
    ("uk.irq.delivered", [ Control_transfer ]);
    ("uk.fault.ipc", [ Control_transfer ]);
    ("uk.space_switch", []);
    ("uk.syscall", []);
  ]

let vmm_map =
  [
    ("vmm.syscall_bounce", [ Control_transfer ]);
    ("vmm.syscall_fast", [ Control_transfer ]);
    ("vmm.evtchn_send", [ Control_transfer ]);
    ("vmm.upcall", [ Control_transfer ]);
    ("vmm.irq", [ Control_transfer ]);
    ("vmm.page_flip", [ Data_transfer; Resource_delegation ]);
    ("vmm.grant_map", [ Resource_delegation ]);
    ("vmm.grant_unmap", [ Resource_delegation ]);
    ("vmm.pt_update", [ Resource_delegation ]);
    ("vmm.world_switch", []);
    ("vmm.hypercall", []);
  ]

let roles_of_counter system name =
  let table = match system with Microkernel -> microkernel_map | Vmm -> vmm_map in
  match List.assoc_opt name table with Some roles -> roles | None -> []

let role_counts system counters =
  let totals =
    List.map
      (fun role ->
        let count =
          Vmk_trace.Counter.fold counters ~init:0 ~f:(fun acc name v ->
              if List.mem role (roles_of_counter system name) then acc + v
              else acc)
        in
        (role, count))
      all_roles
  in
  totals

let pp_role ppf role =
  Format.pp_print_string ppf
    (match role with
    | Control_transfer -> "control-transfer"
    | Data_transfer -> "data-transfer"
    | Resource_delegation -> "resource-delegation")

let pp_system ppf system =
  Format.pp_print_string ppf
    (match system with Microkernel -> "microkernel" | Vmm -> "vmm")
