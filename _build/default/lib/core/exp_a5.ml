module Machine = Vmk_hw.Machine
module Nic = Vmk_hw.Nic
module Table = Vmk_stats.Table
module Hypervisor = Vmk_vmm.Hypervisor
module Net_channel = Vmk_vmm.Net_channel
module Dom0 = Vmk_vmm.Dom0
module Port_xen = Vmk_guest.Port_xen
module Apps = Vmk_workloads.Apps
module Traffic = Vmk_workloads.Traffic

type sample = {
  weight : int;
  delivered : int;
  dropped : int;
  dom0_share : float;
}

let contended_run ~quick ~dom0_weight =
  let packets = if quick then 120 else 400 in
  let mach = Machine.create ~seed:41L () in
  let h = Hypervisor.create mach in
  let chan = Net_channel.create ~mode:Net_channel.Flip ~demux_key:1 () in
  let dom0 =
    Hypervisor.create_domain h ~name:Dom0.name ~privileged:true
      ~weight:dom0_weight
      (Dom0.body mach ~net:[ chan ])
  in
  let stats = Apps.stats () in
  let ready = ref false in
  let _guest =
    Hypervisor.create_domain h ~name:"guest1"
      (Port_xen.guest_body mach ~net:(chan, dom0)
         ~on_ready:(fun () -> ready := true)
         ~app:(Apps.net_rx_stream ~stats ~packets ()))
  in
  (* The contender: an endless compute-bound domain at default weight. *)
  let _cruncher =
    Hypervisor.create_domain h ~name:"cruncher"
      (Port_xen.guest_body mach
         ~app:(Apps.compute ~iterations:max_int ~work:40_000 ()))
  in
  let traffic =
    (* Saturating rate: just above what an unboosted Dom0 can service. *)
    Traffic.constant_rate mach
      ~gate:(fun () -> !ready)
      ~period:10_000L ~len:512 ~count:packets ()
  in
  ignore
    (Hypervisor.run h ~until:(fun () ->
         Traffic.done_ traffic
         && (stats.Apps.errors > 0
            || stats.Apps.completed + Nic.rx_dropped mach.Machine.nic
               + Nic.rx_pending mach.Machine.nic
               >= packets)));
  let dom0_cycles = Vmk_trace.Accounts.balance mach.Machine.accounts Dom0.name in
  let busy = Vmk_trace.Accounts.busy_total mach.Machine.accounts in
  {
    weight = dom0_weight;
    delivered = stats.Apps.completed;
    dropped = Nic.rx_dropped mach.Machine.nic;
    dom0_share =
      (if Int64.compare busy 0L = 0 then 0.0
       else Int64.to_float dom0_cycles /. Int64.to_float busy);
  }

let run ~quick =
  let base = contended_run ~quick ~dom0_weight:256 in
  let boosted = contended_run ~quick ~dom0_weight:1024 in
  let table =
    Table.create
      ~header:[ "dom0 weight"; "delivered"; "dropped"; "dom0 CPU share" ]
  in
  List.iter
    (fun s ->
      Table.add_row table
        [
          string_of_int s.weight;
          string_of_int s.delivered;
          string_of_int s.dropped;
          Table.cellf "%.1f%%" (100.0 *. s.dom0_share);
        ])
    [ base; boosted ];
  {
    Experiment.tables =
      [ ("Saturated receive stream vs a compute-bound neighbour", table) ];
    verdicts =
      [
        Experiment.verdict
          ~claim:
            "the driver domain is on every I/O path and needs scheduler \
             share to match (Xen credit-scheduler boost)"
          ~expected:
            "boosting Dom0's weight 4x delivers more packets and drops fewer"
          ~measured:
            (Printf.sprintf
               "weight 256: %d delivered/%d dropped; weight 1024: %d/%d"
               base.delivered base.dropped boosted.delivered boosted.dropped)
          (boosted.delivered >= base.delivered && boosted.dropped < base.dropped);
        Experiment.verdict
          ~claim:"a fair share starves the driver domain under contention"
          ~expected:
            "at default weight the NIC overruns: more than 10% of offered              packets drop"
          ~measured:
            (Printf.sprintf "%d of %d offered dropped" base.dropped
               (base.delivered + base.dropped))
          (base.dropped * 10 > base.delivered + base.dropped);
      ];
  }

let experiment =
  {
    Experiment.id = "a5";
    title = "Ablation: scheduler weight for the driver domain";
    paper_claim =
      "Corollary of E3: if Dom0's CPU time is the cost of every I/O \
       operation, the scheduler must give the driver domain enough share \
       under contention — the problem Xen's credit scheduler boost \
       addresses.";
    run;
  }
