(** IPC-equivalence counting (experiment E5).

    §3.2's closing claim: "a Xen-based system performs essentially the
    same number of IPC operations as a comparable microkernel-based
    system". The counting rules below map each system's runtime counters
    onto "IPC-equivalent operations": kernel-mediated transfers of
    control, data or resources between protection domains. Pure
    bookkeeping (world switches, hypercall entries that implement one of
    the counted operations) is excluded to avoid double counting. *)

type breakdown = {
  control : int;
  data : int;
  delegation : int;
  total : int;  (** Not the row sum: an op with several roles counts once. *)
  detail : (string * int) list;  (** Counter-level contributions. *)
}

val of_microkernel_run : Vmk_trace.Counter.set -> breakdown
(** Rendezvous + interrupt deliveries + fault IPC; map pages as
    delegation ops; string bytes are data volume, not extra ops. *)

val of_vmm_run : Vmk_trace.Counter.set -> breakdown
(** Bounced syscalls + event-channel sends + upcalls + routed IRQs as
    control transfers; page flips as data ops; grant maps and validated
    PT updates as delegation ops. *)

val per_unit : breakdown -> units:int -> float
(** Total IPC-equivalent operations per workload unit (e.g. per round or
    per guest syscall). *)

val pp : Format.formatter -> breakdown -> unit
