module Table = Vmk_stats.Table
module Arch = Vmk_hw.Arch
module Apps = Vmk_workloads.Apps

let run ~quick =
  let rounds = if quick then 60 else 300 in
  let app () = Apps.mixed ~rounds ~net_every:2 ~blk_every:5 () () in
  let xen = Scenario.run_xen ~glibc_tls:true ~app () in
  let l4 = Scenario.run_l4 ~app () in
  let line_bytes = Arch.default.Arch.cacheline_bytes in
  let uk_lines = Audit.total_icache_lines Audit.microkernel in
  let vmm_lines = Audit.total_icache_lines Audit.vmm in
  let static_table =
    Table.create
      ~header:[ "system"; "primitive paths"; "i$ lines"; "bytes" ]
  in
  Table.add_row static_table
    [
      "microkernel";
      string_of_int (List.length Audit.microkernel);
      string_of_int uk_lines;
      string_of_int (uk_lines * line_bytes);
    ];
  Table.add_row static_table
    [
      "vmm";
      string_of_int (List.length Audit.vmm);
      string_of_int vmm_lines;
      string_of_int (vmm_lines * line_bytes);
    ];
  let syscalls_l4 = max 1 (Scenario.counter l4 "gsys.count") in
  let syscalls_xen = max 1 (Scenario.counter xen "gsys.count") in
  let dyn_table =
    Table.create
      ~header:
        [ "system"; "syscalls"; "i$ misses"; "miss cycles"; "miss cyc/syscall" ]
  in
  let dyn name outcome syscalls =
    Table.add_row dyn_table
      [
        name;
        string_of_int syscalls;
        string_of_int outcome.Scenario.icache_misses;
        string_of_int outcome.Scenario.icache_miss_cycles;
        Table.cellf "%.1f"
          (float_of_int outcome.Scenario.icache_miss_cycles
          /. float_of_int syscalls);
      ]
  in
  dyn "microkernel (l4 stack)" l4 syscalls_l4;
  dyn "vmm (xen stack)" xen syscalls_xen;
  let l4_per =
    float_of_int l4.Scenario.icache_miss_cycles /. float_of_int syscalls_l4
  in
  let xen_per =
    float_of_int xen.Scenario.icache_miss_cycles /. float_of_int syscalls_xen
  in
  {
    Experiment.tables =
      [
        ("Static footprint of the privileged primitive paths", static_table);
        ("Dynamic i-cache behaviour, identical mixed workload", dyn_table);
      ];
    verdicts =
      [
        Experiment.verdict
          ~claim:"one combined primitive has a smaller code base (§2.2)"
          ~expected:"VMM primitive paths occupy > 3x the microkernel's lines"
          ~measured:(Printf.sprintf "vmm %d vs uk %d lines" vmm_lines uk_lines)
          (vmm_lines > 3 * uk_lines);
        Experiment.verdict
          ~claim:"…reducing the cache footprint (§2.2)"
          ~expected:
            "the VMM stack spends more i-cache refill cycles per syscall than \
             the microkernel stack on the same workload"
          ~measured:
            (Printf.sprintf "xen %.1f vs l4 %.1f miss-cycles/syscall" xen_per
               l4_per)
          (xen_per > l4_per);
      ];
  }

let experiment =
  {
    Experiment.id = "e9";
    title = "Kernel code size and i-cache footprint";
    paper_claim =
      "§2.2: combining the three roles in one primitive 'reduces the code \
       size. A smaller code base reduces the number of errors in the \
       privileged kernel, as well as reducing the cache footprint.'";
    run;
  }
