(** E5 — IPC-operation parity between Xen-style and L4-style stacks.

    §3.2's conclusion: "A Xen-based system performs essentially the same
    number of IPC operations as a comparable microkernel-based system
    (such as L4Linux)." The identical mixed workload runs on both stacks;
    runtime counters are mapped to IPC-equivalent operations by
    {!Ipc_equiv} and compared per workload round. *)

val experiment : Experiment.t
