(** E12 — first-generation vs second-generation IPC.

    The performance half of the microkernel debate the paper inherits:
    §3.1 notes that Hand et al. generalise "a particular design fault of
    Mach … onto a whole class of systems", and the literature the
    rebuttal stands on ([Lie96], [HHL+97]) showed that Mach-style
    asynchronous, kernel-buffered, port-based IPC is several times more
    expensive than L4's synchronous single-copy rendezvous. We race the
    two kernels ({!Vmk_ukernel.Mach_kernel} vs {!Vmk_ukernel.Kernel}) on
    identical ping-pong RPC. *)

val experiment : Experiment.t
