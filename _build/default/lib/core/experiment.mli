(** Experiment framework.

    Every claim-reproduction (E1–E9) and ablation (A1–A4) is an
    {!t}: it runs scenarios, renders result tables, and checks explicit
    verdicts — "the paper expects X, we measured Y, does the shape
    hold?". [vmk run <id>] and the EXPERIMENTS.md generator both consume
    this interface. *)

type verdict = {
  claim : string;  (** What the paper asserts. *)
  expected : string;  (** The testable shape. *)
  measured : string;  (** What this run produced. *)
  holds : bool;
}

type report = {
  tables : (string * Vmk_stats.Table.t) list;  (** Titled result tables. *)
  verdicts : verdict list;
}

type t = {
  id : string;  (** "e1" … "e9", "a1" … *)
  title : string;
  paper_claim : string;  (** Section reference + quoted claim. *)
  run : quick:bool -> report;
      (** [quick] shrinks iteration counts for test-suite use. *)
}

val verdict : claim:string -> expected:string -> measured:string -> bool -> verdict
val all_hold : report -> bool
val pp_report : Format.formatter -> t * report -> unit

val pp_report_markdown : Format.formatter -> t * report -> unit
(** Render the report as a markdown section — the format EXPERIMENTS.md
    is built from ([vmk report]). *)
