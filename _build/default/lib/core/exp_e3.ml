module Table = Vmk_stats.Table
module Regression = Vmk_stats.Regression
module Net_channel = Vmk_vmm.Net_channel
module Apps = Vmk_workloads.Apps
module Traffic = Vmk_workloads.Traffic

type point = {
  packet_len : int;
  packets : int;
  flips : int;
  dom0_cycles : int64;
  guest_cycles : int64;
  vmm_cycles : int64;
  dom0_share : float;
}

let run_one ~mode ~packets ~period ~packet_len =
  let stats = Apps.stats () in
  let outcome =
    Scenario.run_xen ~rx_mode:mode ~blk:false
      ~traffic:(fun mach ~gate ->
        Traffic.constant_rate mach ~gate ~period ~len:packet_len ~count:packets ())
      ~app:(Apps.net_rx_stream ~stats ~packets ())
      ()
  in
  let dom0 = Scenario.account_cycles outcome "dom0" in
  let guest = Scenario.account_cycles outcome "guest1" in
  let vmm = Scenario.account_cycles outcome "vmm" in
  {
    packet_len;
    packets = stats.Apps.completed;
    flips = Scenario.counter outcome "vmm.page_flip";
    dom0_cycles = dom0;
    guest_cycles = guest;
    vmm_cycles = vmm;
    dom0_share =
      (let both = Int64.add dom0 guest in
       if Int64.compare both 0L = 0 then 0.0
       else Int64.to_float dom0 /. Int64.to_float both);
  }

let sweep ~mode ~packets ~period ~sizes =
  List.map (fun packet_len -> run_one ~mode ~packets ~period ~packet_len) sizes

let per_packet cycles packets =
  if packets = 0 then 0.0 else Int64.to_float cycles /. float_of_int packets

let table_of_points title points =
  let table =
    Table.create
      ~header:
        [
          "packet B";
          "packets";
          "flips";
          "dom0 cyc/pkt";
          "guest cyc/pkt";
          "vmm cyc/pkt";
          "dom0/(d0+gu)";
        ]
  in
  List.iter
    (fun p ->
      Table.add_row table
        [
          string_of_int p.packet_len;
          string_of_int p.packets;
          string_of_int p.flips;
          Table.cellf "%.0f" (per_packet p.dom0_cycles p.packets);
          Table.cellf "%.0f" (per_packet p.guest_cycles p.packets);
          Table.cellf "%.0f" (per_packet p.vmm_cycles p.packets);
          Table.cellf "%.1f%%" (100.0 *. p.dom0_share);
        ])
    points;
  (title, table)

let sizes = [ 64; 256; 512; 1024; 1460 ]

let run ~quick =
  let packets = if quick then 60 else 400 in
  let period = 15_000L in
  let flip_points = sweep ~mode:Net_channel.Flip ~packets ~period ~sizes in
  (* Vary the load (packet count) at fixed size to regress CPU vs flips
     with real variance in the x-axis. *)
  let load_points =
    List.map
      (fun n -> run_one ~mode:Net_channel.Flip ~packets:n ~period ~packet_len:512)
      (if quick then [ 30; 60; 90; 120 ] else [ 100; 200; 300; 400; 500 ])
  in
  let flips_vs_cycles =
    Regression.fit
      (List.map
         (fun p -> (float_of_int p.flips, Int64.to_float p.dom0_cycles))
         load_points)
  in
  let small = List.hd flip_points in
  let large = List.nth flip_points (List.length flip_points - 1) in
  let small_pp = per_packet small.dom0_cycles small.packets in
  let large_pp = per_packet large.dom0_cycles large.packets in
  let reg_table = Table.create ~header:[ "regression"; "value" ] in
  Table.add_row reg_table
    [ "dom0 cycles vs page flips (load sweep)";
      Table.cellf "%a" Regression.pp flips_vs_cycles ];
  Table.add_row reg_table
    [ "dom0 cyc/pkt at 64 B vs 1460 B";
      Table.cellf "%.0f vs %.0f" small_pp large_pp ];
  let max_share =
    List.fold_left (fun acc p -> max acc p.dom0_share) 0.0 flip_points
  in
  {
    Experiment.tables =
      [
        table_of_points "Packet-size sweep (page-flip receive path)" flip_points;
        ("Proportionality", reg_table);
      ];
    verdicts =
      [
        Experiment.verdict
          ~claim:"Dom0 CPU time proportional to page flips [CG05]"
          ~expected:"r² of dom0-cycles vs flips > 0.99 across load levels"
          ~measured:(Printf.sprintf "r² = %.4f" flips_vs_cycles.Regression.r2)
          (flips_vs_cycles.Regression.r2 > 0.99);
        Experiment.verdict
          ~claim:"…irrespective of the message size [CG05]"
          ~expected:"per-packet Dom0 cost at 1460 B within 15% of 64 B"
          ~measured:(Printf.sprintf "%.0f vs %.0f cycles/pkt" large_pp small_pp)
          (large_pp < small_pp *. 1.15);
        Experiment.verdict
          ~claim:"Dom0 accounts for a large share of system CPU under I/O load"
          ~expected:
            "Dom0 uses at least as much CPU as the guest consuming the \
             traffic (share of dom0+guest > 50% at some sweep point)"
          ~measured:(Printf.sprintf "max share %.1f%%" (100.0 *. max_share))
          (max_share > 0.50);
      ];
  }

let experiment =
  {
    Experiment.id = "e3";
    title = "Dom0 I/O overhead: CPU vs page flips (CG05)";
    paper_claim =
      "§3.2: 'Dom0 CPU time is proportional to the number of Xen's \
       page-flipping operations, that is, message transfers, irrespective \
       of the message size' — IPC costs dominate Xen driver overhead under \
       high I/O load.";
    run;
  }

let run_ablation ~quick =
  let packets = if quick then 60 else 300 in
  let period = 15_000L in
  let flip_points = sweep ~mode:Net_channel.Flip ~packets ~period ~sizes in
  let copy_points = sweep ~mode:Net_channel.Copy ~packets ~period ~sizes in
  (* Per-packet Dom0 cost as a function of packet size: the slope (in
     cycles per byte) isolates the data-movement component. Batching
     effects (larger packets slow the guest, letting Dom0 coalesce more
     work per wakeup) push both slopes down equally, so the cross-mode
     difference is the copy cost. *)
  let slope points =
    Regression.fit
      (List.map
         (fun p ->
           (float_of_int p.packet_len, per_packet p.dom0_cycles p.packets))
         points)
  in
  let flip_slope = (slope flip_points).Regression.slope in
  let copy_slope = (slope copy_points).Regression.slope in
  {
    Experiment.tables =
      [
        table_of_points "Page-flip receive path" flip_points;
        table_of_points "Copy receive path" copy_points;
      ];
    verdicts =
      [
        Experiment.verdict
          ~claim:"copying makes Dom0 cost grow with message size"
          ~expected:"copy-path slope of dom0 cycles/packet vs bytes > 0.4 c/B"
          ~measured:(Printf.sprintf "slope %.2f cycles/byte" copy_slope)
          (copy_slope > 0.4);
        Experiment.verdict
          ~claim:"flipping keeps Dom0 cost size-independent"
          ~expected:"flip-path slope below 0.25 c/B in magnitude"
          ~measured:(Printf.sprintf "slope %.2f cycles/byte" flip_slope)
          (abs_float flip_slope < 0.25);
        Experiment.verdict
          ~claim:"at full-size packets the copy path costs Dom0 more"
          ~expected:"dom0 cycles/packet at 1460 B: copy > flip"
          ~measured:
            (let at m =
               let p = List.nth m (List.length m - 1) in
               per_packet p.dom0_cycles p.packets
             in
             Printf.sprintf "copy %.0f vs flip %.0f" (at copy_points)
               (at flip_points))
          (let at m =
             let p = List.nth m (List.length m - 1) in
             per_packet p.dom0_cycles p.packets
           in
           at copy_points > at flip_points);
      ];
  }

let ablation =
  {
    Experiment.id = "a1";
    title = "Ablation: page-flip vs copy receive path";
    paper_claim =
      "[CG05]'s proportionality result is a property of the page-flipping \
       design; a copying backend trades map-table churn for per-byte CPU, \
       changing the cost shape.";
    run = run_ablation;
  }
