module Table = Vmk_stats.Table
module Apps = Vmk_workloads.Apps

let run ~quick =
  let rounds = if quick then 60 else 300 in
  let app () = Apps.mixed ~rounds ~net_every:2 ~blk_every:5 () () in
  let xen = Scenario.run_xen ~glibc_tls:true ~app () in
  let l4 = Scenario.run_l4 ~app () in
  let xe = Ipc_equiv.of_vmm_run xen.Scenario.counter_set in
  let le = Ipc_equiv.of_microkernel_run l4.Scenario.counter_set in
  let syscalls_xen = Scenario.counter xen "gsys.count" in
  let syscalls_l4 = Scenario.counter l4 "gsys.count" in
  let table =
    Table.create
      ~header:
        [ "stack"; "syscalls"; "control"; "data"; "delegation"; "total";
          "ops/syscall" ]
  in
  let row name (b : Ipc_equiv.breakdown) syscalls =
    Table.add_row table
      [
        name;
        string_of_int syscalls;
        string_of_int b.Ipc_equiv.control;
        string_of_int b.Ipc_equiv.data;
        string_of_int b.Ipc_equiv.delegation;
        string_of_int b.Ipc_equiv.total;
        Table.cellf "%.2f" (Ipc_equiv.per_unit b ~units:syscalls);
      ]
  in
  row "xen-style" xe syscalls_xen;
  row "l4-style" le syscalls_l4;
  let detail_table =
    let t = Table.create ~header:[ "stack"; "counter"; "count" ] in
    List.iter
      (fun (name, v) -> Table.add_row t [ "xen"; name; string_of_int v ])
      xe.Ipc_equiv.detail;
    Table.add_separator t;
    List.iter
      (fun (name, v) -> Table.add_row t [ "l4"; name; string_of_int v ])
      le.Ipc_equiv.detail;
    t
  in
  let per_xen = Ipc_equiv.per_unit xe ~units:syscalls_xen in
  let per_l4 = Ipc_equiv.per_unit le ~units:syscalls_l4 in
  let ratio =
    if per_l4 = 0.0 then infinity else Float.max per_xen per_l4 /. Float.min per_xen per_l4
  in
  {
    Experiment.tables =
      [
        ("IPC-equivalent operations, identical mixed workload", table);
        ("Counter-level detail", detail_table);
      ];
    verdicts =
      [
        Experiment.verdict
          ~claim:
            "Xen performs essentially the same number of IPC operations as \
             L4Linux (§3.2)"
          ~expected:"IPC-equivalent ops per syscall within a factor of 2"
          ~measured:
            (Printf.sprintf "xen %.2f vs l4 %.2f ops/syscall (ratio %.2f)"
               per_xen per_l4 ratio)
          (ratio <= 2.0);
        Experiment.verdict
          ~claim:"both workloads did the same application work"
          ~expected:"equal guest syscall counts on both stacks"
          ~measured:(Printf.sprintf "xen %d vs l4 %d" syscalls_xen syscalls_l4)
          (syscalls_xen = syscalls_l4 && syscalls_xen > 0);
      ];
  }

let experiment =
  {
    Experiment.id = "e5";
    title = "IPC-operation parity: Xen-style vs L4-style";
    paper_claim =
      "§3.2: 'A Xen-based system performs essentially the same number of \
       IPC operations as a comparable microkernel-based system (such as \
       L4Linux).'";
    run;
  }
