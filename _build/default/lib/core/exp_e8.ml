module Table = Vmk_stats.Table
module Apps = Vmk_workloads.Apps

type row = {
  structure : string;
  workload : string;
  busy_cycles : int64;
  relative : float;
}

(* Two workload mixes:
   - "compile-like": dominated by user computation, sparse kernel
     interaction — where [HHL+97] saw L4Linux within 5-10% of native;
   - "server-like": syscall- and I/O-bound — where structure overheads
     show (the lmbench end of their table). *)
let compile_like ~quick () =
  let rounds = if quick then 30 else 120 in
  Apps.mixed ~rounds ~syscalls_per_round:4 ~work_per_round:400_000 ~net_every:10
    ~packet_len:256 ~blk_every:15 () ()

let server_like ~quick () =
  let rounds = if quick then 60 else 300 in
  Apps.mixed ~rounds ~syscalls_per_round:30 ~work_per_round:3_000 ~net_every:3
    ~packet_len:512 ~blk_every:8 () ()

let measure ~quick =
  let structures =
    [
      ("native", fun app -> Scenario.run_native ~app ());
      ("l4linux", fun app -> Scenario.run_l4 ~app ());
      ( "xen (shortcut valid)",
        fun app -> Scenario.run_xen ~glibc_tls:false ~app () );
      ("xen (glibc TLS)", fun app -> Scenario.run_xen ~glibc_tls:true ~app ());
    ]
  in
  let workloads =
    [
      ("compile-like", fun () -> compile_like ~quick ());
      ("server-like", fun () -> server_like ~quick ());
    ]
  in
  List.concat_map
    (fun (workload, app) ->
      let runs =
        List.map
          (fun (structure, runner) -> (structure, runner app))
          structures
      in
      let native_cycles =
        (List.assoc "native" runs).Scenario.busy_cycles
      in
      List.map
        (fun (structure, outcome) ->
          {
            structure;
            workload;
            busy_cycles = outcome.Scenario.busy_cycles;
            relative =
              Int64.to_float outcome.Scenario.busy_cycles
              /. Int64.to_float native_cycles;
          })
        runs)
    workloads

let run ~quick =
  let rows = measure ~quick in
  let table =
    Table.create ~header:[ "workload"; "structure"; "busy cycles"; "vs native" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.workload;
          r.structure;
          Int64.to_string r.busy_cycles;
          Table.cellf "%.2fx" r.relative;
        ])
    rows;
  let find workload structure =
    List.find (fun r -> r.workload = workload && r.structure = structure) rows
  in
  let l4_compile = find "compile-like" "l4linux" in
  let l4_server = find "server-like" "l4linux" in
  let xen_server = find "server-like" "xen (glibc TLS)" in
  {
    Experiment.tables = [ ("Macro workload cost by hosting structure", table) ];
    verdicts =
      [
        Experiment.verdict
          ~claim:
            "paravirtualised OS on L4 runs with excellent performance \
             ([HHL+97], §3.3)"
          ~expected:"l4linux within 15% of native on the compile-like mix"
          ~measured:(Printf.sprintf "%.2fx native" l4_compile.relative)
          (l4_compile.relative < 1.15);
        Experiment.verdict
          ~claim:"structure overheads surface on syscall-bound work"
          ~expected:"server-like slowdown exceeds compile-like slowdown on L4"
          ~measured:
            (Printf.sprintf "server %.2fx vs compile %.2fx" l4_server.relative
               l4_compile.relative)
          (l4_server.relative > l4_compile.relative);
        Experiment.verdict
          ~claim:
            "the microkernel hosting is in the same class as the VMM hosting \
             (§3.3: no 'significant difference')"
          ~expected:"l4linux within 1.6x of xen-with-TLS on server-like work"
          ~measured:
            (Printf.sprintf "l4 %.2fx vs xen %.2fx" l4_server.relative
               xen_server.relative)
          (l4_server.relative < 1.6 *. xen_server.relative
          && xen_server.relative < 1.6 *. l4_server.relative);
      ];
  }

let experiment =
  {
    Experiment.id = "e8";
    title = "Hosted-OS macro performance (HHL+97 analog)";
    paper_claim =
      "§3.3: 'L4 has demonstrated many years ago that it is perfectly \
       suitable as a VMM supporting a paravirtualised Linux system with \
       excellent performance [HHL+97]'.";
    run;
  }
