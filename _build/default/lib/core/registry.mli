(** Experiment registry: all claim-reproductions and ablations. *)

val all : Experiment.t list
(** E1–E11 then A1–A5, in id order. *)

val find : string -> Experiment.t option
(** Case-insensitive lookup by id ("e3", "A1", …). *)

val ids : unit -> string list
