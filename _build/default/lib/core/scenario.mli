(** Uniform system-under-test construction.

    Builds the three hosting structures around the same application body
    and returns a comparable outcome: total virtual cycles, per-account
    cycle balances and all runtime counters. One fresh machine per run;
    nothing leaks between scenarios.

    Traffic sources are attached through a callback receiving the machine
    and a readiness gate that opens once the I/O stack is up. *)

type outcome = {
  cycles : int64;  (** Virtual time at workload completion. *)
  busy_cycles : int64;  (** Sum of all non-idle accounts. *)
  accounts : (string * int64) list;
  counters : (string * int) list;
  counter_set : Vmk_trace.Counter.set;  (** For {!Ipc_equiv}/{!Audit}. *)
  completed : bool;  (** The application body ran to completion. *)
  icache_misses : int;  (** Kernel-path i-cache misses (experiment E9). *)
  icache_miss_cycles : int;
}

type traffic_spec =
  Vmk_hw.Machine.t -> gate:(unit -> bool) -> Vmk_workloads.Traffic.t

val account_cycles : outcome -> string -> int64
val counter : outcome -> string -> int

val run_native :
  ?arch:Vmk_hw.Arch.profile ->
  ?seed:int64 ->
  ?traffic:traffic_spec ->
  app:(unit -> unit) ->
  unit ->
  outcome
(** Mini-OS directly on the machine ({!Vmk_guest.Port_native}). *)

val run_xen :
  ?arch:Vmk_hw.Arch.profile ->
  ?seed:int64 ->
  ?rx_mode:Vmk_vmm.Net_channel.rx_mode ->
  ?net:bool ->
  ?blk:bool ->
  ?fast_syscall:bool ->
  ?glibc_tls:bool ->
  ?traffic:traffic_spec ->
  app:(unit -> unit) ->
  unit ->
  outcome
(** Hypervisor + Dom0 (with the requested backends) + one guest domain
    running the app ({!Vmk_guest.Port_xen}). Defaults: net and blk on,
    page-flip receive, trap-gate shortcut registered, no TLS. *)

val run_l4 :
  ?arch:Vmk_hw.Arch.profile ->
  ?seed:int64 ->
  ?net:bool ->
  ?blk:bool ->
  ?traffic:traffic_spec ->
  app:(unit -> unit) ->
  unit ->
  outcome
(** Microkernel + user-level driver servers + guest-kernel server + one
    application thread ({!Vmk_guest.Port_l4}). *)
