module Machine = Vmk_hw.Machine
module Table = Vmk_stats.Table
module Hypervisor = Vmk_vmm.Hypervisor
module Hcall = Vmk_vmm.Hcall

(* Map/unmap churn: the page-table traffic of process creation, fork and
   mmap-heavy guests. *)
let churn_run ~pt_mode ~updates =
  let mach = Machine.create ~seed:71L ~frames:8192 () in
  let h = Hypervisor.create mach in
  let measured = ref 0.0 in
  let _guest =
    Hypervisor.create_domain h ~name:"guest" ~pt_mode (fun () ->
        let frames = Hcall.alloc_frames 64 in
        let arr = Array.of_list frames in
        let t0 = Machine.now mach in
        (* The guest OS naturally generates updates in batches (fork,
           exec, mmap): 8 map/unmap pairs per flush. *)
        let i = ref 0 in
        while !i < updates do
          let batch = ref [] in
          for _ = 1 to min 8 (updates - !i) do
            let frame = arr.(!i mod Array.length arr) in
            let vpn = 0x400 + (!i mod 64) in
            batch := Hcall.Pt_unmap vpn
                     :: Hcall.Pt_map { bframe = frame; bvpn = vpn; bwritable = true }
                     :: !batch;
            incr i
          done;
          Hcall.pt_batch (List.rev !batch)
        done;
        measured :=
          Int64.to_float (Int64.sub (Machine.now mach) t0)
          /. float_of_int (2 * updates);
        Hcall.exit ())
  in
  ignore (Hypervisor.run h ~until:(fun () -> !measured > 0.0));
  let counters = mach.Machine.counters in
  ( !measured,
    Vmk_trace.Counter.get counters "vmm.shadow_sync",
    Vmk_trace.Counter.get counters "vmm.hypercall" )

let run ~quick =
  let updates = if quick then 100 else 600 in
  let pv_cost, pv_shadow, pv_hcalls =
    churn_run ~pt_mode:Hypervisor.Paravirt ~updates
  in
  let sh_cost, sh_shadow, sh_hcalls =
    churn_run ~pt_mode:Hypervisor.Shadow ~updates
  in
  let table =
    Table.create
      ~header:
        [ "PT mode"; "cycles/update"; "shadow syncs"; "hypercalls" ]
  in
  Table.add_row table
    [ "paravirt (validated hypercalls)"; Table.cellf "%.0f" pv_cost;
      string_of_int pv_shadow; string_of_int pv_hcalls ];
  Table.add_row table
    [ "shadow (trap-and-sync)"; Table.cellf "%.0f" sh_cost;
      string_of_int sh_shadow; string_of_int sh_hcalls ];
  {
    Experiment.tables = [ ("Page-table update churn", table) ];
    verdicts =
      [
        Experiment.verdict
          ~claim:
            "paravirtualising the memory interface beats shadowing it \
             (§2.2's drift, Xen's design bet)"
          ~expected:
            "shadow-mode updates cost at least 2.5x batched-paravirt's"
          ~measured:
            (Printf.sprintf "shadow %.0f vs paravirt %.0f cycles/update"
               sh_cost pv_cost)
          (sh_cost >= 2.5 *. pv_cost);
        Experiment.verdict
          ~claim:"the mechanisms differ, not just the prices"
          ~expected:
            "paravirt performs zero shadow syncs; shadow mode performs one \
             per update and zero PT hypercalls"
          ~measured:
            (Printf.sprintf "pv: %d syncs; shadow: %d syncs" pv_shadow
               sh_shadow)
          (pv_shadow = 0 && sh_shadow = 2 * updates);
      ];
  }

let experiment =
  {
    Experiment.id = "a6";
    title = "Ablation: paravirt vs shadow page tables";
    paper_claim =
      "§2.2: VMMs diverge 'from pure virtualisation (faithful \
       representation of the underlying hardware) to paravirtualisation \
       (representation of modified hardware that lends itself better to \
       efficient support of legacy OSen)'.";
    run;
  }
