(** E1 — primitive and mechanism audit.

    §2.2: the microkernel combines control transfer, data transfer and
    resource delegation into one IPC primitive, "reducing the number of
    security mechanisms, the code complexity, and the code size"; the VMM
    "offers a rich variety of primitives", each with "a dedicated set of
    security mechanisms, resources, and kernel code". Static inventory of
    both implementations plus a dynamic coverage run proving every listed
    VMM primitive actually executes. *)

val experiment : Experiment.t
