module Machine = Vmk_hw.Machine
module Arch = Vmk_hw.Arch
module Table = Vmk_stats.Table
module Kernel = Vmk_ukernel.Kernel
module Sysif = Vmk_ukernel.Sysif
module Hypervisor = Vmk_vmm.Hypervisor
module Hcall = Vmk_vmm.Hcall

(* --- L4 ping-pong --- *)

(* Cycles per round trip for [rounds] Call/Reply_wait exchanges carrying
   [items]. [map_pool] provides a fresh page per round for map-item
   benchmarks (identity-window maps need unoccupied destinations). *)
let l4_round_trip ?arch ~rounds ~same_space ~items () =
  let mach = Machine.create ?arch ~seed:11L () in
  let k = Kernel.create mach in
  let measured = ref 0.0 in
  let warmup = 10 in
  let server_body () =
    let rec loop (client, _m) = loop (Sysif.reply_wait client (Sysif.msg 0)) in
    loop (Sysif.recv Sysif.Any)
  in
  let client_body server () =
    let items = items () in
    for _ = 1 to warmup do
      ignore (Sysif.call server (Sysif.msg 1 ~items:(items ())))
    done;
    let t0 = Machine.now mach in
    for _ = 1 to rounds do
      ignore (Sysif.call server (Sysif.msg 1 ~items:(items ())))
    done;
    measured := Int64.to_float (Int64.sub (Machine.now mach) t0) /. float_of_int rounds
  in
  if same_space then begin
    let _pair =
      Kernel.spawn k ~name:"pair" (fun () ->
          let server =
            Sysif.spawn
              {
                Sysif.name = "server";
                priority = Kernel.default_priority;
                same_space = true;
                pager = None;
                body = server_body;
              }
          in
          client_body server ())
    in
    ()
  end
  else begin
    let server = Kernel.spawn k ~name:"server" server_body in
    let _client = Kernel.spawn k ~name:"client" (client_body server) in
    ()
  end;
  ignore (Kernel.run k);
  !measured

let words n = Array.make n 7

let l4_map_round_trip ?arch ~rounds () =
  (* Each round delegates a fresh page; the pool is allocated up front so
     only the map-item transfer is on the measured path. *)
  let mach = Machine.create ?arch ~frames:8192 ~seed:11L () in
  let k = Kernel.create mach in
  let measured = ref 0.0 in
  let server_body () =
    let rec loop (client, _m) = loop (Sysif.reply_wait client (Sysif.msg 0)) in
    loop (Sysif.recv Sysif.Any)
  in
  let server = Kernel.spawn k ~name:"server" server_body in
  let _client =
    Kernel.spawn k ~name:"client" (fun () ->
        let pool = Sysif.alloc_pages rounds in
        let t0 = Machine.now mach in
        for i = 0 to rounds - 1 do
          let fpage =
            { Sysif.base_vpn = pool.Sysif.base_vpn + i; pages = 1; writable = true }
          in
          ignore
            (Sysif.call server
               (Sysif.msg 1 ~items:[ Sysif.Map { fpage; grant = false } ]))
        done;
        measured :=
          Int64.to_float (Int64.sub (Machine.now mach) t0) /. float_of_int rounds)
  in
  ignore (Kernel.run k);
  !measured

(* --- context/world switches --- *)

(* Two entities alternating via yield: cycles per switch. *)
let l4_switch_cost ?arch ~rounds ~same_space () =
  let mach = Machine.create ?arch ~seed:12L () in
  let k = Kernel.create mach in
  let measured = ref 0.0 in
  let yielder n () =
    for _ = 1 to n do
      Sysif.yield ()
    done
  in
  if same_space then begin
    let _parent =
      Kernel.spawn k ~name:"pair" (fun () ->
          ignore
            (Sysif.spawn
               {
                 Sysif.name = "peer";
                 priority = Kernel.default_priority;
                 same_space = true;
                 pager = None;
                 body = yielder (rounds + 10);
               });
          let t0 = Machine.now mach in
          yielder rounds ();
          measured :=
            Int64.to_float (Int64.sub (Machine.now mach) t0)
            /. float_of_int (2 * rounds))
    in
    ()
  end
  else begin
    let _a = Kernel.spawn k ~name:"a" (yielder (rounds + 10)) in
    let _b =
      Kernel.spawn k ~name:"b" (fun () ->
          let t0 = Machine.now mach in
          yielder rounds ();
          measured :=
            Int64.to_float (Int64.sub (Machine.now mach) t0)
            /. float_of_int (2 * rounds))
    in
    ()
  end;
  ignore (Kernel.run k);
  !measured

let vmm_switch_cost ?arch ~rounds () =
  let mach = Machine.create ?arch ~seed:12L () in
  let h = Hypervisor.create mach in
  let measured = ref 0.0 in
  let yielder n () =
    for _ = 1 to n do
      Hcall.yield ()
    done
  in
  let _a = Hypervisor.create_domain h ~name:"a" (yielder (rounds + 10)) in
  let _b =
    Hypervisor.create_domain h ~name:"b" (fun () ->
        let t0 = Machine.now mach in
        yielder rounds ();
        measured :=
          Int64.to_float (Int64.sub (Machine.now mach) t0)
          /. float_of_int (2 * rounds);
        Hcall.exit ())
  in
  ignore (Hypervisor.run h);
  !measured

(* --- VMM event-channel ping-pong --- *)

let vmm_evtchn_round_trip ?arch ~rounds () =
  let mach = Machine.create ?arch ~seed:11L () in
  let h = Hypervisor.create mach in
  let offer = ref None in
  let measured = ref 0.0 in
  let warmup = 10 in
  let _pong =
    Hypervisor.create_domain h ~name:"pong" (fun () ->
        let port = Hcall.evtchn_alloc_unbound 1 in
        offer := Some port;
        let rec loop () =
          match Hcall.block () with
          | Hcall.Events _ ->
              Hcall.evtchn_send port;
              loop ()
          | Hcall.Timed_out -> loop ()
        in
        loop ())
  in
  let _ping =
    Hypervisor.create_domain h ~name:"ping" (fun () ->
        let rec wait () =
          match !offer with
          | Some p -> p
          | None ->
              Hcall.yield ();
              wait ()
        in
        let remote_port = wait () in
        let port = Hcall.evtchn_bind ~remote_dom:0 ~remote_port in
        let round () =
          Hcall.evtchn_send port;
          match Hcall.block () with
          | Hcall.Events _ -> ()
          | Hcall.Timed_out -> ()
        in
        for _ = 1 to warmup do
          round ()
        done;
        let t0 = Machine.now mach in
        for _ = 1 to rounds do
          round ()
        done;
        measured :=
          Int64.to_float (Int64.sub (Machine.now mach) t0) /. float_of_int rounds;
        Hcall.exit ())
  in
  ignore (Hypervisor.run h);
  !measured

(* Per-operation cost of grant map+unmap and of a one-way page flip,
   measured inside one domain pair. *)
let vmm_grant_costs ?arch ~rounds () =
  let mach = Machine.create ?arch ~frames:8192 ~seed:11L () in
  let h = Hypervisor.create mach in
  let gref_box = ref None in
  let map_cost = ref 0.0 and flip_cost = ref 0.0 in
  let _granter =
    Hypervisor.create_domain h ~name:"granter" (fun () ->
        let frame = List.hd (Hcall.alloc_frames 1) in
        gref_box := Some (Hcall.grant ~to_dom:1 ~frame ~readonly:false);
        ignore (Hcall.block ~timeout:100_000_000L ()))
  in
  let _worker =
    Hypervisor.create_domain h ~name:"worker" (fun () ->
        let rec wait () =
          match !gref_box with
          | Some g -> g
          | None ->
              Hcall.yield ();
              wait ()
        in
        let gref = wait () in
        let t0 = Machine.now mach in
        for _ = 1 to rounds do
          ignore (Hcall.grant_map ~dom:0 ~gref);
          Hcall.grant_unmap ~dom:0 ~gref
        done;
        map_cost :=
          Int64.to_float (Int64.sub (Machine.now mach) t0) /. float_of_int rounds;
        let frames = Hcall.alloc_frames rounds in
        let t1 = Machine.now mach in
        List.iter (fun frame -> Hcall.grant_transfer ~to_dom:0 ~frame) frames;
        flip_cost :=
          Int64.to_float (Int64.sub (Machine.now mach) t1) /. float_of_int rounds;
        Hcall.exit ())
  in
  ignore (Hypervisor.run h);
  (!map_cost, !flip_cost)

let run ~quick =
  let rounds = if quick then 50 else 500 in
  let empty () = [] in
  let l4_short_same =
    l4_round_trip ~rounds ~same_space:true ~items:(fun () -> empty) ()
  in
  let l4_short_cross =
    l4_round_trip ~rounds ~same_space:false ~items:(fun () -> empty) ()
  in
  let l4_words64 =
    l4_round_trip ~rounds ~same_space:false
      ~items:(fun () -> fun () -> [ Sysif.Words (words 64) ])
      ()
  in
  let l4_str1k =
    l4_round_trip ~rounds ~same_space:false
      ~items:(fun () -> fun () -> [ Sysif.Str { bytes = 1024; tag = 1 } ])
      ()
  in
  let l4_str4k =
    l4_round_trip ~rounds ~same_space:false
      ~items:(fun () -> fun () -> [ Sysif.Str { bytes = 4096; tag = 1 } ])
      ()
  in
  let l4_map = l4_map_round_trip ~rounds () in
  let l4_switch_same = l4_switch_cost ~rounds ~same_space:true () in
  let l4_switch_cross = l4_switch_cost ~rounds ~same_space:false () in
  let world_switch = vmm_switch_cost ~rounds () in
  let evtchn = vmm_evtchn_round_trip ~rounds () in
  let grant_map, flip = vmm_grant_costs ~rounds () in
  let table = Table.create ~header:[ "mechanism"; "payload"; "cycles/op" ] in
  let row name payload v = Table.add_row table [ name; payload; Table.cellf "%.0f" v ] in
  row "L4 IPC round trip (same space)" "0 B" l4_short_same;
  row "L4 IPC round trip (cross space)" "0 B" l4_short_cross;
  row "L4 IPC round trip (cross space)" "64 words" l4_words64;
  row "L4 IPC round trip (cross space)" "1 KiB string" l4_str1k;
  row "L4 IPC round trip (cross space)" "4 KiB string" l4_str4k;
  row "L4 IPC round trip (1-page map item)" "4 KiB page" l4_map;
  row "L4 thread switch (same space)" "yield" l4_switch_same;
  row "L4 thread switch (cross space)" "yield" l4_switch_cross;
  Table.add_separator table;
  row "VMM world switch" "yield" world_switch;
  row "VMM event-channel round trip" "notification" evtchn;
  row "VMM grant map+unmap" "4 KiB page" grant_map;
  row "VMM page flip (one way)" "4 KiB page" flip;
  {
    Experiment.tables = [ ("Cross-domain operation costs (x86-32)", table) ];
    verdicts =
      [
        Experiment.verdict
          ~claim:"low-overhead IPC is achievable (§2.2)"
          ~expected:
            "L4 cross-space round trip beats the VMM event-channel round trip"
          ~measured:
            (Printf.sprintf "L4 %.0f vs evtchn %.0f cycles/RT" l4_short_cross
               evtchn)
          (l4_short_cross < evtchn);
        Experiment.verdict
          ~claim:"string data rides the same primitive at copy cost"
          ~expected:"4 KiB string RT > 1 KiB string RT > 0 B RT"
          ~measured:
            (Printf.sprintf "%.0f > %.0f > %.0f" l4_str4k l4_str1k
               l4_short_cross)
          (l4_str4k > l4_str1k && l4_str1k > l4_short_cross);
        Experiment.verdict
          ~claim:"delegation rides the same primitive"
          ~expected:"map-item RT within 2x of plain cross-space RT"
          ~measured:
            (Printf.sprintf "map %.0f vs plain %.0f" l4_map l4_short_cross)
          (l4_map < 2.0 *. l4_short_cross);
        Experiment.verdict
          ~claim:"scheduling complete OSes costs a world switch (§3.2)"
          ~expected:
            "the VMM's domain switch is dearer than the microkernel's              cross-space thread switch"
          ~measured:
            (Printf.sprintf "world %.0f vs thread %.0f cycles/switch"
               world_switch l4_switch_cross)
          (world_switch > l4_switch_cross);
      ];
  }

let experiment =
  {
    Experiment.id = "e2";
    title = "IPC primitive vs VMM mechanism microbenchmarks";
    paper_claim =
      "§2.2: a single low-overhead IPC primitive covers control transfer, \
       data transfer and resource delegation; VMMs use dedicated, heavier \
       mechanisms (event channels, grant tables, page flipping).";
    run;
  }

(* --- A2: synchronous IPC vs asynchronous notification under batching --- *)

let l4_batch_cost ~messages () =
  let mach = Machine.create ~seed:13L () in
  let k = Kernel.create mach in
  let measured = ref 0.0 in
  let server = Kernel.spawn k ~name:"server" (fun () ->
      let rec loop (c, _) = loop (Sysif.reply_wait c (Sysif.msg 0)) in
      loop (Sysif.recv Sysif.Any))
  in
  let _client =
    Kernel.spawn k ~name:"client" (fun () ->
        let t0 = Machine.now mach in
        for _ = 1 to messages do
          ignore (Sysif.call server (Sysif.msg 1))
        done;
        measured :=
          Int64.to_float (Int64.sub (Machine.now mach) t0)
          /. float_of_int messages)
  in
  ignore (Kernel.run k);
  !measured

let vmm_batched_cost ~batches ~batch () =
  let mach = Machine.create ~seed:13L () in
  let h = Hypervisor.create mach in
  let ring : int Queue.t = Queue.create () in
  let total = batches * batch in
  let consumed = ref 0 in
  let offer = ref None in
  let started = ref None in
  let measured = ref 0.0 in
  let _consumer =
    Hypervisor.create_domain h ~name:"consumer" (fun () ->
        let port = Hcall.evtchn_alloc_unbound 1 in
        offer := Some port;
        let rec loop () =
          if !consumed < total then begin
            match Hcall.block ~timeout:10_000_000L () with
            | Hcall.Events _ ->
                let rec drain () =
                  match Queue.take_opt ring with
                  | Some _ ->
                      Hcall.burn 80; (* per-message work *)
                      incr consumed;
                      drain ()
                  | None -> ()
                in
                drain ();
                loop ()
            | Hcall.Timed_out -> ()
          end
        in
        loop ();
        (match !started with
        | Some t0 ->
            measured :=
              Int64.to_float (Int64.sub (Machine.now mach) t0)
              /. float_of_int total
        | None -> ());
        Hcall.exit ())
  in
  let _producer =
    Hypervisor.create_domain h ~name:"producer" (fun () ->
        let rec wait () =
          match !offer with
          | Some p -> p
          | None ->
              Hcall.yield ();
              wait ()
        in
        let remote_port = wait () in
        let port = Hcall.evtchn_bind ~remote_dom:0 ~remote_port in
        started := Some (Machine.now mach);
        for _ = 1 to batches do
          for i = 1 to batch do
            Queue.add i ring;
            Hcall.burn 40 (* ring producer work *)
          done;
          (* One notification per batch: coalescing in action. *)
          Hcall.evtchn_send port;
          Hcall.yield ()
        done;
        Hcall.exit ())
  in
  ignore (Hypervisor.run h ~until:(fun () -> !measured > 0.0));
  !measured

let run_ablation ~quick =
  let messages = if quick then 64 else 512 in
  let sync = l4_batch_cost ~messages () in
  let async1 = vmm_batched_cost ~batches:(messages / 1) ~batch:1 () in
  let async8 = vmm_batched_cost ~batches:(messages / 8) ~batch:8 () in
  let async32 = vmm_batched_cost ~batches:(messages / 32) ~batch:32 () in
  let table = Table.create ~header:[ "mechanism"; "batch"; "cycles/message" ] in
  Table.add_row table [ "sync IPC (call/reply)"; "1"; Table.cellf "%.0f" sync ];
  Table.add_row table [ "evtchn + shared ring"; "1"; Table.cellf "%.0f" async1 ];
  Table.add_row table [ "evtchn + shared ring"; "8"; Table.cellf "%.0f" async8 ];
  Table.add_row table [ "evtchn + shared ring"; "32"; Table.cellf "%.0f" async32 ];
  {
    Experiment.tables = [ ("Sync IPC vs async notification", table) ];
    verdicts =
      [
        Experiment.verdict ~claim:"async notification amortises under batching"
          ~expected:"per-message cost drops monotonically with batch size"
          ~measured:
            (Printf.sprintf "%.0f -> %.0f -> %.0f" async1 async8 async32)
          (async8 < async1 && async32 < async8);
        Experiment.verdict
          ~claim:"synchronous IPC wins at batch size 1 (latency)"
          ~expected:"sync round trip cheaper than unbatched async round trip"
          ~measured:(Printf.sprintf "sync %.0f vs async %.0f" sync async1)
          (sync < async1);
      ];
  }

let ablation =
  {
    Experiment.id = "a2";
    title = "Ablation: synchronous IPC vs asynchronous event channels";
    paper_claim =
      "§3.2 calls Xen's I/O signalling 'a simple asynchronous unidirectional \
       event mechanism — nothing else than a form of asynchronous IPC'; this \
       ablation quantifies the latency/throughput trade against the \
       synchronous primitive.";
    run = run_ablation;
  }
