type entry = {
  name : string;
  description : string;
  roles : Taxonomy.role list;
  security_checks : int;
  icache_lines : int;
  implemented_in : string;
  evidence_counter : string;
}

open Taxonomy

let microkernel =
  [
    {
      name = "ipc";
      description =
        "synchronous IPC: rendezvous + untyped words + string items + \
         map/grant items";
      roles = [ Control_transfer; Data_transfer; Resource_delegation ];
      security_checks = 3; (* partner liveness, receive filter, map rights *)
      icache_lines = Vmk_ukernel.Costs.icache_lines_ipc;
      implemented_in = "Vmk_ukernel.Kernel";
      evidence_counter = "uk.ipc.rendezvous";
    };
    {
      name = "threads";
      description = "thread create/exit/scheduling parameters";
      roles = [];
      security_checks = 1;
      icache_lines = 6;
      implemented_in = "Vmk_ukernel.Kernel";
      evidence_counter = "uk.spawn";
    };
    {
      name = "interrupt-as-ipc";
      description = "hardware interrupts delivered as IPC messages";
      roles = [ Control_transfer ];
      security_checks = 1; (* handler registration *)
      icache_lines = 4;
      implemented_in = "Vmk_ukernel.Kernel";
      evidence_counter = "uk.irq.delivered";
    };
    {
      name = "unmap";
      description = "recursive revocation through the mapping database";
      roles = [ Resource_delegation ];
      security_checks = 1;
      icache_lines = 5;
      implemented_in = "Vmk_ukernel.Mapdb";
      evidence_counter = "uk.unmap.pages";
    };
  ]

let vmm =
  [
    {
      name = "guest-syscall-entry";
      description = "§2.2(1): synchronous guest-user to guest-kernel switch";
      roles = [ Control_transfer ];
      security_checks = 3; (* trap table registered, gates exist, segments *)
      icache_lines = Vmk_vmm.Costs.icache_lines_for "vmm.hcall.syscall_bounce";
      implemented_in = "Vmk_vmm.Hypervisor (H_syscall_trap)";
      evidence_counter = "vmm.syscall_bounce";
    };
    {
      name = "guest-syscall-return";
      description = "§2.2(2): guest-kernel to guest-user return path";
      roles = [ Control_transfer ];
      security_checks = 1;
      icache_lines = Vmk_vmm.Costs.icache_lines_for "vmm.hcall.trap";
      implemented_in = "Vmk_vmm.Hypervisor (trap table)";
      evidence_counter = "vmm.syscall_fast";
    };
    {
      name = "event-channels";
      description = "§2.2(3): asynchronous cross-domain channels";
      roles = [ Control_transfer ];
      security_checks = 3; (* port bound, peer alive, binding permission *)
      icache_lines = Vmk_vmm.Costs.icache_lines_for "vmm.hcall.evtchn";
      implemented_in = "Vmk_vmm.Hypervisor (evtchn ops)";
      evidence_counter = "vmm.evtchn_send";
    };
    {
      name = "hypercall-resource-alloc";
      description = "§2.2(4): per-VM resource allocation via hypercalls";
      roles = [ Resource_delegation ];
      security_checks = 2; (* reservation limits, caller identity *)
      icache_lines = Vmk_vmm.Costs.icache_lines_for "vmm.hcall.memory";
      implemented_in = "Vmk_vmm.Hypervisor (H_alloc_frames)";
      evidence_counter = "vmm.hypercall";
    };
    {
      name = "pt-virtualisation";
      description = "§2.2(5): validated guest page-table updates";
      roles = [ Resource_delegation ];
      security_checks = 2; (* frame ownership, type safety *)
      icache_lines = Vmk_vmm.Costs.icache_lines_for "vmm.hcall.pt";
      implemented_in = "Vmk_vmm.Hypervisor (H_pt_map/H_pt_unmap)";
      evidence_counter = "vmm.pt_update";
    };
    {
      name = "page-flipping";
      description = "§2.2(6): resource re-allocation via grant transfer";
      roles = [ Data_transfer; Resource_delegation ];
      security_checks = 2; (* frame ownership, target liveness *)
      icache_lines = Vmk_vmm.Costs.icache_lines_for "vmm.hcall.grant_transfer";
      implemented_in = "Vmk_vmm.Hypervisor (H_gnttab_transfer)";
      evidence_counter = "vmm.page_flip";
    };
    {
      name = "exception-virtualisation";
      description = "§2.2(7): page-fault and exception bouncing";
      roles = [ Control_transfer ];
      security_checks = 2;
      icache_lines = Vmk_vmm.Costs.icache_lines_for "vmm.hcall.trap";
      implemented_in = "Vmk_vmm.Hypervisor (trap paths)";
      evidence_counter = "vmm.syscall_bounce";
    };
    {
      name = "virtual-interrupt-signalling";
      description = "§2.2(8): asynchronous event notification (upcalls)";
      roles = [ Control_transfer ];
      security_checks = 1;
      icache_lines = Vmk_vmm.Costs.icache_lines_for "vmm.hcall.sched";
      implemented_in = "Vmk_vmm.Hypervisor (upcall path)";
      evidence_counter = "vmm.upcall";
    };
    {
      name = "hw-interrupt-routing";
      description = "§2.2(9): physical IRQs via the virtual controller";
      roles = [ Control_transfer ];
      security_checks = 2; (* privilege, line validity *)
      icache_lines = Vmk_vmm.Costs.icache_lines_for "vmm.hcall.irq";
      implemented_in = "Vmk_vmm.Hypervisor (H_irq_bind + routing)";
      evidence_counter = "vmm.irq";
    };
    {
      name = "device-backends";
      description = "§2.2(10): common devices (NIC, disk) via split drivers";
      roles = [ Data_transfer ];
      security_checks = 3; (* grant validation per request, ring bounds *)
      icache_lines = Vmk_vmm.Costs.icache_lines_for "vmm.hcall.grant_map";
      implemented_in = "Vmk_vmm.Netback / Vmk_vmm.Blkback";
      evidence_counter = "netback.rx_packets";
    };
  ]

let central_primitives entries =
  List.filter (fun e -> List.length e.roles >= 2) entries

let total_checks entries =
  List.fold_left (fun acc e -> acc + e.security_checks) 0 entries

let total_icache_lines entries =
  List.fold_left (fun acc e -> acc + e.icache_lines) 0 entries

let coverage counters entries =
  List.map
    (fun e -> (e, Vmk_trace.Counter.get counters e.evidence_counter > 0))
    entries
