module Table = Vmk_stats.Table
module Apps = Vmk_workloads.Apps

type row = {
  config : string;
  cycles_per_syscall : float;
  relative_to_native : float;
  fast_count : int;
  bounce_count : int;
  l4_rendezvous : int;
}

let measure ?(iterations = 2000) () =
  let app () = Apps.null_syscalls ~iterations () () in
  let per outcome =
    Int64.to_float outcome.Scenario.busy_cycles /. float_of_int iterations
  in
  let native = Scenario.run_native ~app () in
  let xen_fast =
    Scenario.run_xen ~net:false ~blk:false ~fast_syscall:true ~glibc_tls:false
      ~app ()
  in
  let xen_tls =
    Scenario.run_xen ~net:false ~blk:false ~fast_syscall:true ~glibc_tls:true
      ~app ()
  in
  let xen_slow =
    Scenario.run_xen ~net:false ~blk:false ~fast_syscall:false ~app ()
  in
  let l4 = Scenario.run_l4 ~net:false ~blk:false ~app () in
  let native_cost = per native in
  let make config outcome =
    {
      config;
      cycles_per_syscall = per outcome;
      relative_to_native = per outcome /. native_cost;
      fast_count = Scenario.counter outcome "vmm.syscall_fast";
      bounce_count = Scenario.counter outcome "vmm.syscall_bounce";
      l4_rendezvous = Scenario.counter outcome "uk.ipc.rendezvous";
    }
  in
  [
    make "native" native;
    make "xen (trap-gate shortcut valid)" xen_fast;
    make "xen (glibc TLS loaded: shortcut broken)" xen_tls;
    make "xen (shortcut not registered)" xen_slow;
    make "l4linux (syscall = IPC to kernel server)" l4;
  ]

let run ~quick =
  let iterations = if quick then 300 else 2000 in
  let rows = measure ~iterations () in
  let table =
    Table.create
      ~header:
        [ "configuration"; "cycles/syscall"; "vs native"; "fast"; "bounced"; "L4 IPC" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.config;
          Table.cellf "%.0f" r.cycles_per_syscall;
          Table.cellf "%.2fx" r.relative_to_native;
          string_of_int r.fast_count;
          string_of_int r.bounce_count;
          string_of_int r.l4_rendezvous;
        ])
    rows;
  let find config = List.find (fun r -> r.config = config) rows in
  let fast = find "xen (trap-gate shortcut valid)" in
  let tls = find "xen (glibc TLS loaded: shortcut broken)" in
  let slow = find "xen (shortcut not registered)" in
  let l4 = find "l4linux (syscall = IPC to kernel server)" in
  {
    Experiment.tables = [ ("Null-syscall cost by hosting structure", table) ];
    verdicts =
      [
        Experiment.verdict
          ~claim:"glibc's segment use renders the shortcut useless (§3.2)"
          ~expected:
            "with TLS loaded every syscall bounces through the VMM and costs \
             what the unregistered-shortcut path costs (within 10%)"
          ~measured:
            (Printf.sprintf "tls %.0f vs slow %.0f cyc; %d bounced, %d fast"
               tls.cycles_per_syscall slow.cycles_per_syscall tls.bounce_count
               tls.fast_count)
          (tls.fast_count = 0
          && tls.bounce_count >= iterations
          && abs_float (tls.cycles_per_syscall -. slow.cycles_per_syscall)
             < 0.1 *. slow.cycles_per_syscall);
        Experiment.verdict
          ~claim:"the shortcut, when valid, avoids the VMM entirely"
          ~expected:"fast config: zero bounces, meaningfully cheaper than slow"
          ~measured:
            (Printf.sprintf "fast %.0f vs slow %.0f cyc, %d bounces"
               fast.cycles_per_syscall slow.cycles_per_syscall
               fast.bounce_count)
          (fast.bounce_count = 0
          && fast.cycles_per_syscall < 0.8 *. slow.cycles_per_syscall);
        Experiment.verdict
          ~claim:
            "a bounced guest syscall is an IPC operation: the L4 path does \
             explicitly what Xen's slow path does implicitly (§3.2)"
          ~expected:
            "L4 performs 2 rendezvous per syscall; both cost the same order \
             of magnitude (within 3x)"
          ~measured:
            (Printf.sprintf "l4 %.0f cyc (%d rendezvous) vs xen slow %.0f cyc"
               l4.cycles_per_syscall l4.l4_rendezvous
               slow.cycles_per_syscall)
          (l4.l4_rendezvous >= 2 * iterations
          && l4.cycles_per_syscall < 3.0 *. slow.cycles_per_syscall
          && slow.cycles_per_syscall < 3.0 *. l4.cycles_per_syscall);
      ];
  }

let experiment =
  {
    Experiment.id = "e4";
    title = "Guest syscall paths: trap-gate shortcut and its demise";
    paper_claim =
      "§3.2: each guest syscall traps into the VMM and is reflected to the \
       guest OS — 'nothing but an IPC operation'; the int80 trap-gate \
       shortcut is limited and 'Linux's latest glibc violates the \
       assumption and renders the shortcut useless'.";
    run;
  }
