module Machine = Vmk_hw.Machine
module Table = Vmk_stats.Table
module Summary = Vmk_stats.Summary
module Kernel = Vmk_ukernel.Kernel
module Sysif = Vmk_ukernel.Sysif
module Hypervisor = Vmk_vmm.Hypervisor
module Hcall = Vmk_vmm.Hcall
module Apps = Vmk_workloads.Apps
module Port_xen = Vmk_guest.Port_xen
module Port_l4 = Vmk_guest.Port_l4

type jitter = { activations : int; mean : float; max : float }

let period = 100_000L
let work_per_activation = 30_000

let summarise summary =
  {
    activations = Summary.count summary;
    mean = Summary.mean summary;
    max = Summary.max summary;
  }

(* The periodic task: wake at t0 + k*period, record how late the wake-up
   actually ran, do a little work. Written per structure because the
   sleep primitive differs; the measurement is identical. *)

let l4_jitter ~quick =
  let activations = if quick then 40 else 200 in
  let mach = Machine.create ~seed:61L () in
  let k = Kernel.create mach in
  let summary = Summary.create () in
  (* Background load: the guest-OS stack plus compute threads at normal
     priority. *)
  let gk =
    Kernel.spawn k ~name:"gk" ~priority:3 ~account:Port_l4.gk_account
      (Port_l4.guest_kernel_body ~net:None ~blk:None)
  in
  for i = 1 to 3 do
    ignore
      (Kernel.spawn k
         ~name:(Printf.sprintf "load%d" i)
         ~account:"load"
         (Port_l4.app_body mach ~gk
            (Apps.mixed ~rounds:(activations * 4) ~syscalls_per_round:6
               ~work_per_round:30_000 ~net_every:0 ~blk_every:0 ())))
  done;
  (* The real-time thread at the highest priority — DROPS style. *)
  let _rt =
    Kernel.spawn k ~name:"rt" ~priority:0 ~account:"rt" (fun () ->
        let start = Machine.now mach in
        for kth = 1 to activations do
          let deadline = Int64.add start (Int64.mul (Int64.of_int kth) period) in
          let delta = Int64.sub deadline (Machine.now mach) in
          if Int64.compare delta 0L > 0 then Sysif.sleep delta;
          Sysif.burn work_per_activation;
          (* Completion lateness: how far past deadline+work the job
             actually finished. *)
          let expected =
            Int64.add deadline (Int64.of_int work_per_activation)
          in
          Summary.add summary
            (Int64.to_float (Int64.sub (Machine.now mach) expected))
        done)
  in
  ignore (Kernel.run k ~until:(fun () -> Summary.count summary >= activations));
  summarise summary

let vmm_jitter ~quick =
  let activations = if quick then 40 else 200 in
  let mach = Machine.create ~seed:61L () in
  let h = Hypervisor.create mach in
  let summary = Summary.create () in
  for i = 1 to 3 do
    ignore
      (Hypervisor.create_domain h
         ~name:(Printf.sprintf "load%d" i)
         (Port_xen.guest_body mach
            ~app:
              (Apps.mixed ~rounds:(activations * 4) ~syscalls_per_round:6
                 ~work_per_round:30_000 ~net_every:0 ~blk_every:0 ())))
  done;
  (* The "real-time domain": same default share as everyone (the paper's
     era Xen had no priority classes — fairness is all it offers). *)
  let _rt =
    Hypervisor.create_domain h ~name:"rt" (fun () ->
        let start = Machine.now mach in
        for kth = 1 to activations do
          let deadline = Int64.add start (Int64.mul (Int64.of_int kth) period) in
          let delta = Int64.sub deadline (Machine.now mach) in
          (if Int64.compare delta 0L > 0 then
             match Hcall.block ~timeout:delta () with
             | Hcall.Timed_out | Hcall.Events _ -> ());
          Hcall.burn work_per_activation;
          let expected =
            Int64.add deadline (Int64.of_int work_per_activation)
          in
          Summary.add summary
            (Int64.to_float (Int64.sub (Machine.now mach) expected))
        done;
        Hcall.exit ())
  in
  ignore (Hypervisor.run h ~until:(fun () -> Summary.count summary >= activations));
  summarise summary

let run ~quick =
  let l4 = l4_jitter ~quick in
  let vmm = vmm_jitter ~quick in
  let table =
    Table.create
      ~header:
        [ "structure"; "activations"; "mean completion lateness"; "max completion lateness" ]
  in
  let row name j =
    Table.add_row table
      [
        name;
        string_of_int j.activations;
        Table.cellf "%.0f" j.mean;
        Table.cellf "%.0f" j.max;
      ]
  in
  row "l4 (priority 0 RT thread)" l4;
  row "vmm (fair-share domain)" vmm;
  {
    Experiment.tables =
      [ ("Periodic task lateness beside a loaded guest OS", table) ];
    verdicts =
      [
        Experiment.verdict
          ~claim:
            "a microkernel can extend a paravirtualised OS with real-time \
             services (DROPS, §3.3)"
          ~expected:
            "strict priorities bound the RT job's max completion lateness to \
             roughly one preemption quantum (< 25k cycles) under load"
          ~measured:(Printf.sprintf "l4 max lateness %.0f cycles" l4.max)
          (l4.max < 25_000.0);
        Experiment.verdict
          ~claim:"fair-share scheduling cannot give that guarantee"
          ~expected:"the VMM RT domain's max lateness is at least 3x the L4 one"
          ~measured:
            (Printf.sprintf "vmm max %.0f vs l4 max %.0f" vmm.max l4.max)
          (vmm.max > 3.0 *. l4.max);
      ];
  }

let experiment =
  {
    Experiment.id = "e11";
    title = "Real-time coexistence (DROPS analog)";
    paper_claim =
      "§3.3: 'the Dresden DROPS system [HBB+98] is built specifically on \
       extending a paravirtualised Linux system running on a microkernel \
       with real-time services and is in industrial use.'";
    run;
  }
