(** A6 — paravirtualised vs shadow page tables.

    §2.2 observes VMMs drifting "from pure virtualisation … to
    paravirtualisation (representation of modified hardware that lends
    itself better to efficient support of legacy OSen)". Nowhere is that
    drift sharper than memory management: pure virtualisation shadows the
    guest's page tables (every PTE write faults into the VMM), while
    Xen's paravirtual interface validates explicit update hypercalls.
    This ablation measures a mapping-heavy workload under both modes. *)

val experiment : Experiment.t
