(** The paper's §2.2 operation taxonomy.

    IPC's three orthogonal roles — kernel-controlled control transfer,
    kernel-controlled data transfer, and mutually-agreed resource
    delegation — classify every privileged operation of both systems.
    Runtime counters are mapped onto roles so experiments can compare
    {e what} the two structures actually did, not just how long it took. *)

type role = Control_transfer | Data_transfer | Resource_delegation
type system = Microkernel | Vmm

val roles_of_counter : system -> string -> role list
(** Roles a runtime counter's operations embody; [[]] for bookkeeping
    counters outside the taxonomy. E.g. ["uk.ipc.rendezvous"] →
    control transfer; ["vmm.page_flip"] → data transfer {e and} resource
    delegation. *)

val role_counts : system -> Vmk_trace.Counter.set -> (role * int) list
(** Sum the classified counters of a finished run, per role. *)

val pp_role : Format.formatter -> role -> unit
val pp_system : Format.formatter -> system -> unit
val all_roles : role list
