type verdict = {
  claim : string;
  expected : string;
  measured : string;
  holds : bool;
}

type report = {
  tables : (string * Vmk_stats.Table.t) list;
  verdicts : verdict list;
}

type t = {
  id : string;
  title : string;
  paper_claim : string;
  run : quick:bool -> report;
}

let verdict ~claim ~expected ~measured holds = { claim; expected; measured; holds }
let all_hold report = List.for_all (fun v -> v.holds) report.verdicts

let pp_report_markdown ppf (t, report) =
  Format.fprintf ppf "## %s — %s@.@." (String.uppercase_ascii t.id) t.title;
  Format.fprintf ppf "**Paper claim:** %s@.@." t.paper_claim;
  List.iter
    (fun (title, table) ->
      Format.fprintf ppf "**%s**@.@.%a@." title Vmk_stats.Table.pp_markdown
        table)
    report.tables;
  Format.fprintf ppf "| verdict | claim | expected | measured |@.";
  Format.fprintf ppf "|---|---|---|---|@.";
  List.iter
    (fun v ->
      Format.fprintf ppf "| %s | %s | %s | %s |@."
        (if v.holds then "**HOLDS**" else "**FAILS**")
        v.claim v.expected v.measured)
    report.verdicts;
  Format.fprintf ppf "@."

let pp_report ppf (t, report) =
  Format.fprintf ppf "== %s: %s ==@." (String.uppercase_ascii t.id) t.title;
  Format.fprintf ppf "Paper claim: %s@.@." t.paper_claim;
  List.iter
    (fun (title, table) ->
      Format.fprintf ppf "--- %s ---@.%a@." title Vmk_stats.Table.pp table)
    report.tables;
  List.iter
    (fun v ->
      Format.fprintf ppf "[%s] %s@.    expected: %s@.    measured: %s@."
        (if v.holds then "HOLDS" else "FAILS")
        v.claim v.expected v.measured)
    report.verdicts
