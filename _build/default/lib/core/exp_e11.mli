(** E11 — real-time coexistence (the DROPS argument, §3.3).

    §3.3: "the Dresden DROPS system is built specifically on extending a
    paravirtualised Linux system running on a microkernel with real-time
    services and is in industrial use." The microkernel's strict
    priorities let a periodic real-time task meet its activations while a
    guest OS and compute load run beside it; a fair-share VMM scheduler
    gives the same task whatever latency the share arithmetic produces.
    We run the identical periodic task next to identical background load
    on both structures and compare activation jitter. *)

val experiment : Experiment.t

type jitter = { activations : int; mean : float; max : float }

val l4_jitter : quick:bool -> jitter
val vmm_jitter : quick:bool -> jitter
