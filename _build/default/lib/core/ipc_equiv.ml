module Counter = Vmk_trace.Counter

type breakdown = {
  control : int;
  data : int;
  delegation : int;
  total : int;
  detail : (string * int) list;
}

(* (counter, counted roles, ops-per-count) — an operation with several
   roles is still one operation. *)
let build counters ~control_counters ~data_counters ~delegation_counters =
  let sum names =
    List.fold_left (fun acc name -> acc + Counter.get counters name) 0 names
  in
  let control = sum control_counters in
  let data = sum data_counters in
  let delegation = sum delegation_counters in
  let all =
    List.sort_uniq compare
      (control_counters @ data_counters @ delegation_counters)
  in
  let detail =
    List.filter_map
      (fun name ->
        let v = Counter.get counters name in
        if v > 0 then Some (name, v) else None)
      all
  in
  let total = List.fold_left (fun acc (_, v) -> acc + v) 0 detail in
  { control; data; delegation; total; detail }

let of_microkernel_run counters =
  build counters
    ~control_counters:[ "uk.ipc.rendezvous"; "uk.irq.delivered" ]
    ~data_counters:[]
      (* string payloads ride inside counted rendezvous *)
    ~delegation_counters:[ "uk.ipc.map_pages"; "uk.unmap.pages" ]

let of_vmm_run counters =
  build counters
    ~control_counters:
      [ "vmm.syscall_bounce"; "vmm.evtchn_send"; "vmm.upcall"; "vmm.irq" ]
    ~data_counters:[ "vmm.page_flip" ]
    ~delegation_counters:[ "vmm.grant_map"; "vmm.pt_update" ]

let per_unit b ~units =
  if units <= 0 then 0.0 else float_of_int b.total /. float_of_int units

let pp ppf b =
  Format.fprintf ppf
    "ipc-equivalent ops: total=%d (control=%d data=%d delegation=%d)@."
    b.total b.control b.data b.delegation;
  List.iter (fun (name, v) -> Format.fprintf ppf "  %-22s %8d@." name v) b.detail
