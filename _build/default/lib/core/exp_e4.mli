(** E4 — guest system-call paths and the broken trap-gate shortcut.

    §3.2: every guest syscall traps into the VMM and is reflected to the
    guest kernel — an IPC operation; Xen's int80 trap-gate shortcut
    avoids this but "Linux's latest glibc violates the assumption and
    renders the shortcut useless". Null-syscall loops on five
    configurations: native, Xen with a valid shortcut, Xen after glibc's
    TLS segment load, Xen with the shortcut disabled, and the L4Linux
    analog. *)

val experiment : Experiment.t

type row = {
  config : string;
  cycles_per_syscall : float;
  relative_to_native : float;
  fast_count : int;
  bounce_count : int;
  l4_rendezvous : int;
}

val measure : ?iterations:int -> unit -> row list
(** Exposed for tests and the bench harness. *)
