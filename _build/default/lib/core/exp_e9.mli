(** E9 — code size and cache footprint of the primitive set.

    §2.2: "A smaller code base reduces the number of errors in the
    privileged kernel, as well as reducing the cache footprint." The
    microkernel's single IPC path is compared against the sum of the
    VMM's primitive paths: statically (i-cache lines per path, from the
    {!Audit} inventory backed by the cost model) and dynamically (i-cache
    misses accumulated by the same workload on both stacks). *)

val experiment : Experiment.t
