(** E10 — the trusted computing base of one client.

    §2.2 warns that a super-VM "running a legacy operating system …
    re-introduces a large number of software bugs [CYC+01]", and the
    paper's conclusion points to [HPHS04] ("small kernels versus
    virtual-machine monitors") on reducing TCB size. We measure each
    structure's {e reliance set} — the privileged/infrastructure
    components whose code actually executes on behalf of one storage
    client — and weigh it with literature code sizes and the [CYC+01]
    defect-density observation.

    Measured part: the reliance sets come from cycle accounting of real
    runs (a component is in the set iff it burned cycles serving the
    client). Modeled part: component sizes are literature estimates
    (documented in the table), not measurements of this repository. *)

val experiment : Experiment.t
