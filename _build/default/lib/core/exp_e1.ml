module Table = Vmk_stats.Table
module Apps = Vmk_workloads.Apps
module Traffic = Vmk_workloads.Traffic

let inventory_table entries =
  let table =
    Table.create
      ~header:[ "primitive"; "roles"; "checks"; "i$ lines"; "module" ]
  in
  List.iter
    (fun (e : Audit.entry) ->
      Table.add_row table
        [
          e.Audit.name;
          String.concat "+"
            (List.map
               (Format.asprintf "%a" Taxonomy.pp_role)
               e.Audit.roles);
          string_of_int e.Audit.security_checks;
          string_of_int e.Audit.icache_lines;
          e.Audit.implemented_in;
        ])
    entries;
  Table.add_separator table;
  Table.add_row table
    [
      "TOTAL";
      "";
      string_of_int (Audit.total_checks entries);
      string_of_int (Audit.total_icache_lines entries);
      "";
    ];
  table

(* A workload that exercises every primitive on both systems. The app
   closures run inside the hosted context, so they may additionally poke
   the hosting layer's raw interface — coverage instrumentation for the
   primitives the mini-OS paths do not happen to touch. *)
let coverage_runs ~quick =
  let rounds = if quick then 30 else 120 in
  let packets = if quick then 10 else 40 in
  let xen_app () =
    (* Both syscall paths: run with a valid shortcut, then let "glibc"
       load its TLS segment and run bounced. *)
    Apps.null_syscalls ~iterations:10 () ();
    Vmk_vmm.Hcall.load_segment Vmk_hw.Segments.Gs
      { Vmk_hw.Segments.base = 0; limit = 0xFFFF_FFFF };
    (* Validated page-table updates. *)
    let frame = List.hd (Vmk_vmm.Hcall.alloc_frames 1) in
    Vmk_vmm.Hcall.pt_map ~frame ~vpn:0x700 ~writable:true;
    Vmk_vmm.Hcall.pt_unmap 0x700;
    Apps.mixed ~rounds ~net_every:2 ~blk_every:4 () ();
    Apps.net_rx_stream ~packets () ()
  in
  let xen =
    Scenario.run_xen ~fast_syscall:true ~glibc_tls:false
      ~traffic:(fun mach ~gate ->
        Traffic.constant_rate mach ~gate ~period:25_000L ~len:512
          ~count:packets ())
      ~app:xen_app ()
  in
  let l4_app () =
    (* Delegate a page to a helper and revoke it: map item + unmap. *)
    let fpage = Vmk_ukernel.Sysif.alloc_pages 1 in
    let helper =
      Vmk_ukernel.Sysif.spawn
        {
          Vmk_ukernel.Sysif.name = "coverage-helper";
          priority = Vmk_ukernel.Kernel.default_priority;
          same_space = false;
          pager = None;
          body =
            (fun () ->
              (* Hold the delegated page until told to exit, so the
                 revocation below has something to revoke. *)
              ignore (Vmk_ukernel.Sysif.recv Vmk_ukernel.Sysif.Any);
              ignore (Vmk_ukernel.Sysif.recv Vmk_ukernel.Sysif.Any));
        }
    in
    Vmk_ukernel.Sysif.send helper
      (Vmk_ukernel.Sysif.msg 1
         ~items:[ Vmk_ukernel.Sysif.Map { fpage; grant = false } ]);
    Vmk_ukernel.Sysif.unmap fpage;
    Vmk_ukernel.Sysif.send helper (Vmk_ukernel.Sysif.msg 2);
    Apps.mixed ~rounds ~net_every:2 ~blk_every:4 () ();
    Apps.net_rx_stream ~packets () ()
  in
  let l4 =
    Scenario.run_l4
      ~traffic:(fun mach ~gate ->
        Traffic.constant_rate mach ~gate ~period:25_000L ~len:512
          ~count:packets ())
      ~app:l4_app ()
  in
  (xen, l4)

let run ~quick =
  let xen, l4 = coverage_runs ~quick in
  let coverage_table system entries (outcome : Scenario.outcome) =
    let table = Table.create ~header:[ "primitive"; "exercised"; "evidence" ] in
    List.iter
      (fun ((e : Audit.entry), hit) ->
        Table.add_row table
          [
            e.Audit.name;
            (if hit then "yes" else "NO");
            Printf.sprintf "%s=%d" e.Audit.evidence_counter
              (Scenario.counter outcome e.Audit.evidence_counter);
          ])
      (Audit.coverage outcome.Scenario.counter_set entries);
    (Printf.sprintf "Dynamic coverage (%s)" system, table)
  in
  let uk_central = List.length (Audit.central_primitives Audit.microkernel) in
  let vmm_count = List.length Audit.vmm in
  let vmm_covered =
    List.for_all snd (Audit.coverage xen.Scenario.counter_set Audit.vmm)
  in
  let uk_covered =
    List.for_all snd (Audit.coverage l4.Scenario.counter_set Audit.microkernel)
  in
  {
    Experiment.tables =
      [
        ("Microkernel primitive inventory", inventory_table Audit.microkernel);
        ("VMM primitive inventory (§2.2 list)", inventory_table Audit.vmm);
        coverage_table "vmm" Audit.vmm xen;
        coverage_table "microkernel" Audit.microkernel l4;
      ];
    verdicts =
      [
        Experiment.verdict
          ~claim:"one combined primitive vs a rich variety (§2.2)"
          ~expected:
            "exactly one microkernel primitive carries all three roles; the \
             VMM lists ~10 dedicated primitives"
          ~measured:
            (Printf.sprintf "%d combined microkernel primitive(s); %d VMM \
                             primitives" uk_central vmm_count)
          (uk_central = 1 && vmm_count = 10);
        Experiment.verdict
          ~claim:"fewer security mechanisms in the combined design"
          ~expected:"total VMM security checks > 2x microkernel's"
          ~measured:
            (Printf.sprintf "vmm %d vs microkernel %d"
               (Audit.total_checks Audit.vmm)
               (Audit.total_checks Audit.microkernel))
          (Audit.total_checks Audit.vmm > 2 * Audit.total_checks Audit.microkernel);
        Experiment.verdict
          ~claim:"the inventory is real, not aspirational"
          ~expected:"every listed primitive executes in the coverage run"
          ~measured:
            (Printf.sprintf "vmm covered=%b microkernel covered=%b" vmm_covered
               uk_covered)
          (vmm_covered && uk_covered);
      ];
  }

let experiment =
  {
    Experiment.id = "e1";
    title = "Primitive & mechanism audit";
    paper_claim =
      "§2.2: combining control transfer, data transfer and resource \
       delegation into a single IPC primitive 'reduces the number of \
       security mechanisms, reduces the code complexity, and reduces the \
       code size'; VMMs instead offer ~10 dedicated primitives.";
    run;
  }
