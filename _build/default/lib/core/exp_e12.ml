module Machine = Vmk_hw.Machine
module Arch = Vmk_hw.Arch
module Table = Vmk_stats.Table
module Kernel = Vmk_ukernel.Kernel
module Sysif = Vmk_ukernel.Sysif
module Mach_kernel = Vmk_ukernel.Mach_kernel
module Mif = Vmk_ukernel.Mach_kernel.Mif

(* RPC round trip on the Mach-style kernel: request port owned by the
   server, reply port owned by the client and named in the message tag. *)
let mach_round_trip ~rounds ~inline_words ~ool_bytes =
  let mach = Machine.create ~seed:91L () in
  let k = Mach_kernel.create mach in
  let request_port = ref None in
  let measured = ref 0.0 in
  let _server =
    Mach_kernel.spawn k ~name:"server" (fun () ->
        let port = Mif.port_create () in
        request_port := Some port;
        let rec loop () =
          let m = Mif.recv port in
          Mif.send m.Mif.tag
            { Mif.mlabel = 0; inline_words; ool_bytes; tag = 0 };
          loop ()
        in
        loop ())
  in
  let _client =
    Mach_kernel.spawn k ~name:"client" (fun () ->
        let reply_port = Mif.port_create () in
        let rec wait () =
          match !request_port with
          | Some p -> p
          | None ->
              Mif.yield ();
              wait ()
        in
        let req = wait () in
        let round () =
          Mif.send req
            { Mif.mlabel = 1; inline_words; ool_bytes; tag = reply_port };
          ignore (Mif.recv reply_port)
        in
        for _ = 1 to 10 do
          round ()
        done;
        let t0 = Machine.now mach in
        for _ = 1 to rounds do
          round ()
        done;
        measured :=
          Int64.to_float (Int64.sub (Machine.now mach) t0) /. float_of_int rounds;
        Mif.exit ())
  in
  ignore (Mach_kernel.run k ~until:(fun () -> !measured > 0.0));
  !measured

let l4_round_trip ~rounds ~inline_words ~ool_bytes =
  let mach = Machine.create ~seed:91L () in
  let k = Kernel.create mach in
  let measured = ref 0.0 in
  let items () =
    (if inline_words > 0 then [ Sysif.Words (Array.make inline_words 7) ] else [])
    @ if ool_bytes > 0 then [ Sysif.Str { bytes = ool_bytes; tag = 1 } ] else []
  in
  let server =
    Kernel.spawn k ~name:"server" (fun () ->
        let rec loop (c, _) =
          loop (Sysif.reply_wait c (Sysif.msg 0 ~items:(items ())))
        in
        loop (Sysif.recv Sysif.Any))
  in
  let _client =
    Kernel.spawn k ~name:"client" (fun () ->
        for _ = 1 to 10 do
          ignore (Sysif.call server (Sysif.msg 1 ~items:(items ())))
        done;
        let t0 = Machine.now mach in
        for _ = 1 to rounds do
          ignore (Sysif.call server (Sysif.msg 1 ~items:(items ())))
        done;
        measured :=
          Int64.to_float (Int64.sub (Machine.now mach) t0) /. float_of_int rounds)
  in
  ignore (Kernel.run k);
  !measured

let run ~quick =
  let rounds = if quick then 60 else 400 in
  let payloads =
    [ ("0 B", 0, 0); ("64 words", 64, 0); ("1 KiB ool", 0, 1024);
      ("4 KiB ool", 0, 4096) ]
  in
  let rows =
    List.map
      (fun (label, inline_words, ool_bytes) ->
        let mach_cost = mach_round_trip ~rounds ~inline_words ~ool_bytes in
        let l4_cost = l4_round_trip ~rounds ~inline_words ~ool_bytes in
        (label, mach_cost, l4_cost))
      payloads
  in
  let table =
    Table.create
      ~header:[ "payload"; "mach-style RT"; "l4-style RT"; "ratio" ]
  in
  List.iter
    (fun (label, m, l) ->
      Table.add_row table
        [
          label;
          Table.cellf "%.0f" m;
          Table.cellf "%.0f" l;
          Table.cellf "%.2fx" (m /. l);
        ])
    rows;
  let cost label =
    let _, m, l = List.find (fun (x, _, _) -> x = label) rows in
    (m, l)
  in
  let m0, l0 = cost "0 B" in
  let m4, l4c = cost "4 KiB ool" in
  let copy4k =
    float_of_int (Arch.copy_cost Arch.default ~bytes:4096)
  in
  {
    Experiment.tables =
      [ ("RPC round trip: async buffered ports vs sync rendezvous", table) ];
    verdicts =
      [
        Experiment.verdict
          ~claim:
            "the first-generation IPC design point is several times dearer \
             ([Lie96]/[HHL+97] background to §3.1)"
          ~expected:"short cross-task round trip >= 2.5x the L4 rendezvous"
          ~measured:(Printf.sprintf "mach %.0f vs l4 %.0f (%.2fx)" m0 l0 (m0 /. l0))
          (m0 >= 2.5 *. l0);
        Experiment.verdict
          ~claim:"kernel buffering doubles the data-movement cost"
          ~expected:
            "the absolute gap grows by at least one extra 4 KiB copy per \
             direction when the payload grows to 4 KiB"
          ~measured:
            (Printf.sprintf "gap %.0f at 4 KiB vs %.0f at 0 B (one copy = %.0f)"
               (m4 -. l4c) (m0 -. l0) copy4k)
          (m4 -. l4c >= (m0 -. l0) +. (2.0 *. copy4k));
      ];
  }

let experiment =
  {
    Experiment.id = "e12";
    title = "First- vs second-generation IPC (Mach analog)";
    paper_claim =
      "§3.1 background: Hand et al.'s evidence against microkernels comes \
       from 'a particular design fault of Mach'; the L4 line the rebuttal \
       cites showed the first-generation asynchronous buffered design, not \
       the microkernel idea, carried the cost.";
    run;
  }
