(** A5 — scheduler share for the driver domain.

    The flip side of E3: Dom0 is on the CPU-hungry path of every I/O
    operation, so under compute contention a fair scheduler starves the
    drivers and the NIC overruns. Xen's credit scheduler answers with
    weights/boosts; our stride scheduler reproduces the effect — the same
    saturated receive stream is run with Dom0 at the default weight and
    at a 4x boost, next to a compute-bound domain. *)

val experiment : Experiment.t
