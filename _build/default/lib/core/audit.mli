(** Primitive inventory audit (experiment E1).

    §2.2's structural claim in checkable form: the microkernel funnels
    control transfer, data transfer and resource delegation through one
    IPC primitive, while the VMM fields a dedicated primitive — each with
    its own validation logic and code path — for every mechanism on the
    paper's ten-point list. The inventory is cross-checked against the
    implementation: every entry names its module and the runtime counter
    that proves the path executed. *)

type entry = {
  name : string;
  description : string;
  roles : Taxonomy.role list;
  security_checks : int;
      (** Distinct validation rules the path enforces (ownership,
          permission bits, port binding state, …). *)
  icache_lines : int;  (** Code-path footprint (see {!Vmk_hw.Cache}). *)
  implemented_in : string;  (** Module implementing it. *)
  evidence_counter : string;
      (** Counter that proves the primitive executed at runtime. *)
}

val microkernel : entry list
(** One central primitive (IPC) plus the minimal support calls Liedtke's
    definition tolerates (threads, memory, interrupts delivered {e as}
    IPC). *)

val vmm : entry list
(** The §2.2 ten-point list as implemented in {!Vmk_vmm}. *)

val central_primitives : entry list -> entry list
(** Entries that carry two or more taxonomy roles — the "combined
    primitive" measure; for the microkernel this is IPC alone. *)

val total_checks : entry list -> int
val total_icache_lines : entry list -> int

val coverage :
  Vmk_trace.Counter.set -> entry list -> (entry * bool) list
(** For each entry, whether its evidence counter fired in the run. *)
