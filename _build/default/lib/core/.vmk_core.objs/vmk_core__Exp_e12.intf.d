lib/core/exp_e12.mli: Experiment
