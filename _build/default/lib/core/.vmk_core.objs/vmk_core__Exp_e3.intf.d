lib/core/exp_e3.mli: Experiment Vmk_vmm
