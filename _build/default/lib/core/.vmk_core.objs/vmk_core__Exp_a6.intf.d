lib/core/exp_a6.mli: Experiment
