lib/core/exp_e8.mli: Experiment
