lib/core/exp_e6.mli: Experiment
