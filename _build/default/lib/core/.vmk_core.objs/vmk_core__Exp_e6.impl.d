lib/core/exp_e6.ml: Experiment List Printf String Vmk_guest Vmk_hw Vmk_sim Vmk_stats Vmk_ukernel Vmk_vmm Vmk_workloads
