lib/core/exp_e8.ml: Experiment Int64 List Printf Scenario Vmk_stats Vmk_workloads
