lib/core/scenario.ml: List Option Vmk_guest Vmk_hw Vmk_trace Vmk_ukernel Vmk_vmm Vmk_workloads
