lib/core/exp_e11.mli: Experiment
