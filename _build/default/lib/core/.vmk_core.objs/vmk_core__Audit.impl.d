lib/core/audit.ml: List Taxonomy Vmk_trace Vmk_ukernel Vmk_vmm
