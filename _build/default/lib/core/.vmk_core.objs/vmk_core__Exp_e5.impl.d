lib/core/exp_e5.ml: Experiment Float Ipc_equiv List Printf Scenario Vmk_stats Vmk_workloads
