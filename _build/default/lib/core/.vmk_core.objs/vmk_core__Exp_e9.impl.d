lib/core/exp_e9.ml: Audit Experiment List Printf Scenario Vmk_hw Vmk_stats Vmk_workloads
