lib/core/exp_a5.ml: Experiment Int64 List Printf Vmk_guest Vmk_hw Vmk_stats Vmk_trace Vmk_vmm Vmk_workloads
