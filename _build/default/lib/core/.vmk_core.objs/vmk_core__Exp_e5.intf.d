lib/core/exp_e5.mli: Experiment
