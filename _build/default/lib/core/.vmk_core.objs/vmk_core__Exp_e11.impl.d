lib/core/exp_e11.ml: Experiment Int64 Printf Vmk_guest Vmk_hw Vmk_stats Vmk_ukernel Vmk_vmm Vmk_workloads
