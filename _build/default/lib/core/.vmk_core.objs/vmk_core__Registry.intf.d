lib/core/registry.mli: Experiment
