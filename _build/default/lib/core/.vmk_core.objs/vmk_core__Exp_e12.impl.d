lib/core/exp_e12.ml: Array Experiment Int64 List Printf Vmk_hw Vmk_stats Vmk_ukernel
