lib/core/taxonomy.ml: Format List Vmk_trace
