lib/core/exp_e3.ml: Experiment Int64 List Printf Scenario Vmk_stats Vmk_vmm Vmk_workloads
