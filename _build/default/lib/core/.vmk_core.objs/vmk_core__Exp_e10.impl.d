lib/core/exp_e10.ml: Experiment Int64 List Printf Scenario String Vmk_guest Vmk_hw Vmk_stats Vmk_trace Vmk_vmm Vmk_workloads
