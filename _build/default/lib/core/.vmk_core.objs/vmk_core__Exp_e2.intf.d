lib/core/exp_e2.mli: Experiment
