lib/core/ipc_equiv.mli: Format Vmk_trace
