lib/core/ipc_equiv.ml: Format List Vmk_trace
