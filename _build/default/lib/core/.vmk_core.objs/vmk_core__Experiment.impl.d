lib/core/experiment.ml: Format List String Vmk_stats
