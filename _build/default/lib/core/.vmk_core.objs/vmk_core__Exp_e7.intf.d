lib/core/exp_e7.mli: Experiment
