lib/core/exp_e10.mli: Experiment
