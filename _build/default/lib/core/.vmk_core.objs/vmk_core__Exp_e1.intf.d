lib/core/exp_e1.mli: Experiment
