lib/core/exp_e2.ml: Array Experiment Int64 List Printf Queue Vmk_hw Vmk_stats Vmk_ukernel Vmk_vmm
