lib/core/taxonomy.mli: Format Vmk_trace
