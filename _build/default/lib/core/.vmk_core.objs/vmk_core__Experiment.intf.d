lib/core/experiment.mli: Format Vmk_stats
