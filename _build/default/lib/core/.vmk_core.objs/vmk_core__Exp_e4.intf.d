lib/core/exp_e4.mli: Experiment
