lib/core/exp_e9.mli: Experiment
