lib/core/exp_e7.ml: Experiment Int64 List Printf Vmk_hw Vmk_stats Vmk_ukernel Vmk_vmm
