lib/core/exp_a5.mli: Experiment
