lib/core/scenario.mli: Vmk_hw Vmk_trace Vmk_vmm Vmk_workloads
