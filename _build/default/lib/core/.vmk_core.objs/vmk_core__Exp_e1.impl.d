lib/core/exp_e1.ml: Audit Experiment Format List Printf Scenario String Taxonomy Vmk_hw Vmk_stats Vmk_ukernel Vmk_vmm Vmk_workloads
