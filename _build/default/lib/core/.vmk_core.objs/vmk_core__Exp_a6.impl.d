lib/core/exp_a6.ml: Array Experiment Int64 List Printf Vmk_hw Vmk_stats Vmk_trace Vmk_vmm
