lib/core/audit.mli: Taxonomy Vmk_trace
