module Machine = Vmk_hw.Machine
module Arch = Vmk_hw.Arch
module Table = Vmk_stats.Table
module Kernel = Vmk_ukernel.Kernel
module Sysif = Vmk_ukernel.Sysif
module Pager = Vmk_ukernel.Pager
module Addr = Vmk_hw.Addr
module Hypervisor = Vmk_vmm.Hypervisor
module Hcall = Vmk_vmm.Hcall

(* The portable component: a client/server pair plus a pager-backed
   memory toucher — written once, above the microkernel abstractions,
   with no architecture conditionals whatsoever. Returns the number of
   completed operations. *)
let l4_component_run ~arch ~rounds =
  let mach = Machine.create ~arch ~seed:31L () in
  let k = Kernel.create mach in
  let completed = ref 0 in
  let server =
    Kernel.spawn k ~name:"server" (fun () ->
        let rec loop (client, (m : Sysif.msg)) =
          loop (Sysif.reply_wait client (Sysif.msg (m.Sysif.label + 1)))
        in
        loop (Sysif.recv Sysif.Any))
  in
  let pager = Kernel.spawn k ~name:"pager" (Pager.body ~pool_pages:64) in
  let _client =
    Kernel.spawn k ~name:"client" ~pager (fun () ->
        for i = 1 to rounds do
          let _, reply = Sysif.call server (Sysif.msg i) in
          assert (reply.Sysif.label = i + 1);
          Sysif.touch
            ~addr:(Addr.of_vpn (0x3000 + (i mod 48)))
            ~len:8 ~write:true;
          incr completed
        done)
  in
  let reason = Kernel.run k in
  (!completed, Machine.now mach, reason = Kernel.Idle)

let vmm_syscall_probe ~arch =
  let mach = Machine.create ~arch ~seed:31L () in
  let h = Hypervisor.create mach in
  let path = ref None in
  let _ =
    Hypervisor.create_domain h ~name:"guest" (fun () ->
        Hcall.set_trap_table ~int80_direct:true;
        path := Some (Hcall.syscall_trap ()))
  in
  ignore (Hypervisor.run h);
  !path

let run ~quick =
  let rounds = if quick then 40 else 200 in
  let component_table =
    Table.create ~header:[ "platform"; "ops completed"; "cycles"; "clean exit" ]
  in
  let all_ok = ref true in
  List.iter
    (fun arch ->
      let completed, cycles, clean = l4_component_run ~arch ~rounds in
      if completed <> rounds || not clean then all_ok := false;
      Table.add_row component_table
        [
          arch.Arch.name;
          Printf.sprintf "%d/%d" completed rounds;
          Int64.to_string cycles;
          (if clean then "yes" else "NO");
        ])
    Arch.all;
  let shortcut_table =
    Table.create
      ~header:[ "platform"; "trap gates"; "segmentation"; "syscall path" ]
  in
  let fast_platforms = ref 0 in
  List.iter
    (fun arch ->
      let path = vmm_syscall_probe ~arch in
      if path = Some Hcall.Fast_trap_gate then incr fast_platforms;
      Table.add_row shortcut_table
        [
          arch.Arch.name;
          (if arch.Arch.has_trap_gates then "yes" else "no");
          (if arch.Arch.has_segmentation then "yes" else "no");
          (match path with
          | Some Hcall.Fast_trap_gate -> "shortcut"
          | Some Hcall.Bounced -> "bounce via VMM"
          | None -> "n/a");
        ])
    Arch.all;
  {
    Experiment.tables =
      [
        ("Unmodified L4 component across platforms", component_table);
        ("VMM trap-gate shortcut availability", shortcut_table);
      ];
    verdicts =
      [
        Experiment.verdict
          ~claim:"L4 software naturally runs on nine platforms (§2.2)"
          ~expected:"the identical component completes on 9/9 profiles"
          ~measured:(if !all_ok then "9/9 clean" else "some platforms failed")
          !all_ok;
        Experiment.verdict
          ~claim:"VMM-level optimisations are architecture-bound (§2.2/§3.2)"
          ~expected:"the trap-gate syscall shortcut exists on exactly 1/9 \
                     platforms (IA-32)"
          ~measured:(Printf.sprintf "%d/9 platforms" !fast_platforms)
          (!fast_platforms = 1);
      ];
  }

let experiment =
  {
    Experiment.id = "e7";
    title = "Portability: one component, nine platforms";
    paper_claim =
      "§2.2: 'software that is written for an L4 microkernel naturally runs \
       on nine different processor platforms'; software developed for one \
       VMM 'is inherently unportable across architectures'.";
    run;
  }

(* --- A4: tagged vs untagged TLB --- *)

let ipc_cost ~arch ~rounds =
  let mach = Machine.create ~arch ~seed:33L () in
  let k = Kernel.create mach in
  let measured = ref 0.0 in
  let server =
    Kernel.spawn k ~name:"server" (fun () ->
        let rec loop (c, _) = loop (Sysif.reply_wait c (Sysif.msg 0)) in
        loop (Sysif.recv Sysif.Any))
  in
  let _client =
    Kernel.spawn k ~name:"client" (fun () ->
        for _ = 1 to 10 do
          ignore (Sysif.call server (Sysif.msg 1))
        done;
        let t0 = Machine.now mach in
        for _ = 1 to rounds do
          ignore (Sysif.call server (Sysif.msg 1))
        done;
        measured :=
          Int64.to_float (Int64.sub (Machine.now mach) t0) /. float_of_int rounds)
  in
  ignore (Kernel.run k);
  !measured

let run_ablation ~quick =
  let rounds = if quick then 60 else 400 in
  let table =
    Table.create
      ~header:[ "platform"; "TLB"; "IPC RT cycles"; "AS-switch cost" ]
  in
  let tagged = ref [] and untagged = ref [] in
  List.iter
    (fun arch ->
      let cost = ipc_cost ~arch ~rounds in
      (* Normalise by trap cost so slow-trap platforms don't dominate the
         comparison; the interesting term is the space-switch tax. *)
      let normalised =
        cost
        /. float_of_int (arch.Arch.fast_syscall_cost + arch.Arch.kernel_exit_cost)
      in
      if arch.Arch.tlb_tagged then tagged := normalised :: !tagged
      else untagged := normalised :: !untagged;
      Table.add_row table
        [
          arch.Arch.name;
          (if arch.Arch.tlb_tagged then "tagged" else "untagged");
          Table.cellf "%.0f" cost;
          string_of_int arch.Arch.addr_space_switch_cost;
        ])
    Arch.all;
  let avg xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
  let tagged_avg = avg !tagged and untagged_avg = avg !untagged in
  {
    Experiment.tables = [ ("Cross-space IPC round trip by platform", table) ];
    verdicts =
      [
        Experiment.verdict
          ~claim:"the address-space-switch tax is an untagged-TLB artefact"
          ~expected:
            "IPC round trips (normalised by trap cost) are at least 1.5x \
             dearer on untagged-TLB platforms"
          ~measured:
            (Printf.sprintf "untagged %.1f vs tagged %.1f trap-equivalents"
               untagged_avg tagged_avg)
          (untagged_avg > 1.5 *. tagged_avg);
      ];
  }

let ablation =
  {
    Experiment.id = "a4";
    title = "Ablation: tagged vs untagged TLB and the IPC tax";
    paper_claim =
      "§2.2 background: the microkernel's cross-address-space IPC pays the \
       TLB-flush tax only on untagged-TLB hardware (x86, ARMv5); tagged \
       TLBs (MIPS, Alpha-style, ARMv8 …) make the switch nearly free.";
    run = run_ablation;
  }
