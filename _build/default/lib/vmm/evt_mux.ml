type t = { handlers : (Hcall.port, unit -> unit) Hashtbl.t }

let create () = { handlers = Hashtbl.create 8 }
let on t port f = Hashtbl.replace t.handlers port f

let dispatch t ports =
  List.iter
    (fun port ->
      match Hashtbl.find_opt t.handlers port with
      | Some f -> f ()
      | None -> ())
    ports

let wait t ?timeout ~until () =
  let rec loop () =
    if until () then true
    else
      match Hcall.block ?timeout () with
      | Hcall.Events ports ->
          dispatch t ports;
          loop ()
      | Hcall.Timed_out -> until ()
      | exception Hcall.Hcall_error _ -> until ()
  in
  loop ()
