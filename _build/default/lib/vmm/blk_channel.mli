(** Shared state of one blkfront/blkback pair (cf. {!Net_channel}). *)

type op = Read | Write

type req = {
  id : int;
  op : op;
  sector : int;
  gref : Hcall.gref;  (** Guest data buffer (rw for reads, ro for writes). *)
  bytes : int;
}

type resp = { r_id : int; ok : bool }

type t = {
  ring : (req, resp) Ring.t;
  key : string;  (** XenStore directory for the connection handshake. *)
  mutable front_dom : Hcall.domid option;
  mutable offer_port : Hcall.port option;
  mutable front_port : Hcall.port option;
  mutable back_port : Hcall.port option;
}

val create : ?ring_size:int -> ?key:string -> unit -> t
(** Default ring size 32 slots; [key] defaults to a fresh
    ["device/blk/<n>"] name. *)

val ring_cost : int
