module Frame = Vmk_hw.Frame
module Arch = Vmk_hw.Arch

type t = {
  chan : Blk_channel.t;
  backend : Hcall.domid;
  arch : Arch.profile;
  free : Frame.frame Queue.t;
  inflight : (int, Hcall.gref * Frame.frame) Hashtbl.t;
  completed : (int, bool) Hashtbl.t;
  my_port : Hcall.port;
  mutable next_id : int;
  mutable issued : int;
  mutable dead : bool;
}

let connect chan ~backend ?(arch = Arch.default) ?(buffers = 8) () =
  let my_dom = Hcall.dom_id () in
  chan.Blk_channel.front_dom <- Some my_dom;
  let offer = Hcall.evtchn_alloc_unbound backend in
  chan.Blk_channel.offer_port <- Some offer;
  chan.Blk_channel.front_port <- Some offer;
  let key = chan.Blk_channel.key in
  Hcall.xs_write ~path:(key ^ "/frontend-dom") ~value:(string_of_int my_dom);
  Hcall.xs_write ~path:(key ^ "/frontend-port") ~value:(string_of_int offer);
  let t =
    {
      chan;
      backend;
      arch;
      free = Queue.create ();
      inflight = Hashtbl.create 8;
      completed = Hashtbl.create 8;
      my_port = offer;
      next_id = 0;
      issued = 0;
      dead = false;
    }
  in
  List.iter (fun f -> Queue.add f t.free) (Hcall.alloc_frames buffers);
  (* Wait for the backend to bind before returning, so the first request's
     notification cannot hit an unbound port. *)
  ignore (Hcall.xs_wait_for (key ^ "/backend-port"));
  t

let port t = t.my_port

let pump t =
  let rec drain () =
    match Ring.pop_response t.chan.Blk_channel.ring with
    | Some { Blk_channel.r_id; ok } ->
        Hcall.burn Blk_channel.ring_cost;
        Hashtbl.replace t.completed r_id ok;
        drain ()
    | None -> ()
  in
  drain ()

let issue t ~op ~sector ~bytes ~tag_for_write =
  if t.dead then None
  else
    match Queue.take_opt t.free with
    | None -> None
    | Some frame -> (
        (match tag_for_write with
        | Some tag -> Frame.set_tag frame tag
        | None -> Frame.set_tag frame 0);
        let readonly = op = Blk_channel.Write in
        match Hcall.grant ~to_dom:t.backend ~frame ~readonly with
        | gref ->
            let id = t.next_id in
            t.next_id <- t.next_id + 1;
            Hcall.burn Blk_channel.ring_cost;
            if
              Ring.push_request t.chan.Blk_channel.ring
                { Blk_channel.id; op; sector; gref; bytes }
            then begin
              Hashtbl.replace t.inflight id (gref, frame);
              t.issued <- t.issued + 1;
              (try Hcall.evtchn_send t.my_port
               with Hcall.Hcall_error _ -> t.dead <- true);
              if t.dead then None else Some id
            end
            else begin
              (try Hcall.grant_revoke gref with Hcall.Hcall_error _ -> ());
              Queue.add frame t.free;
              None
            end
        | exception Hcall.Hcall_error _ ->
            t.dead <- true;
            Queue.add frame t.free;
            None)

let finish t id =
  match Hashtbl.find_opt t.inflight id with
  | Some (gref, frame) ->
      Hashtbl.remove t.inflight id;
      (try Hcall.grant_revoke gref with Hcall.Hcall_error _ -> ());
      Queue.add frame t.free;
      Some frame
  | None -> None

let await t ~mux ~id ~timeout =
  let arrived () = Hashtbl.mem t.completed id || t.dead in
  let ok = Evt_mux.wait mux ?timeout ~until:arrived () in
  if (not ok) || t.dead then begin
    ignore (finish t id);
    None
  end
  else begin
    let status = Hashtbl.find_opt t.completed id in
    Hashtbl.remove t.completed id;
    let frame = finish t id in
    match (status, frame) with
    | Some true, Some frame -> Some frame
    | _ -> None
  end

let read t ~mux ~sector ~bytes ?timeout () =
  pump t;
  match issue t ~op:Blk_channel.Read ~sector ~bytes ~tag_for_write:None with
  | None -> None
  | Some id -> (
      match await t ~mux ~id ~timeout with
      | Some frame ->
          (* Copy from the driver buffer to the application. *)
          Hcall.burn (Arch.copy_cost t.arch ~bytes);
          Some frame.Frame.tag
      | None -> None)

let write t ~mux ~sector ~bytes ~tag ?timeout () =
  pump t;
  Hcall.burn (Arch.copy_cost t.arch ~bytes);
  match
    issue t ~op:Blk_channel.Write ~sector ~bytes ~tag_for_write:(Some tag)
  with
  | None -> false
  | Some id -> await t ~mux ~id ~timeout <> None

let requests_issued t = t.issued
let backend_dead t = t.dead
