lib/vmm/netfront.mli: Hcall Net_channel Vmk_hw
