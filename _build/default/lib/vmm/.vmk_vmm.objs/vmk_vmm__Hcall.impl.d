lib/vmm/hcall.ml: Effect Format Vmk_hw
