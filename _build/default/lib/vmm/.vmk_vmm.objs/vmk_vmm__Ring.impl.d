lib/vmm/ring.ml: Queue
