lib/vmm/net_channel.mli: Hcall Ring Vmk_hw
