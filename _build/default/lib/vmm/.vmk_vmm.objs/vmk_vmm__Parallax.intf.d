lib/vmm/parallax.mli: Blk_channel Hcall Vmk_hw
