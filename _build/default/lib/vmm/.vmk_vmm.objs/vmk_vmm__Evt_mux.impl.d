lib/vmm/evt_mux.ml: Hashtbl Hcall List
