lib/vmm/netback.ml: Hashtbl Hcall List Net_channel Option Queue Ring Vmk_hw Vmk_trace
