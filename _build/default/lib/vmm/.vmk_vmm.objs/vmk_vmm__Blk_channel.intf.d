lib/vmm/blk_channel.mli: Hcall Ring
