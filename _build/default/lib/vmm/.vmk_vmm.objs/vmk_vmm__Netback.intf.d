lib/vmm/netback.mli: Hcall Net_channel Vmk_hw
