lib/vmm/parallax.ml: Blk_channel Blkfront Evt_mux Hcall List Option Queue Ring Vmk_hw Vmk_trace
