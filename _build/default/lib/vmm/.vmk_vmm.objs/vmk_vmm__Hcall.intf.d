lib/vmm/hcall.mli: Effect Format Vmk_hw
