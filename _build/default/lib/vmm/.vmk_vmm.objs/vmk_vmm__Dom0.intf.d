lib/vmm/dom0.mli: Blk_channel Net_channel Vmk_hw
