lib/vmm/blk_channel.ml: Hcall Printf Ring
