lib/vmm/hypervisor.mli: Hcall Vmk_hw
