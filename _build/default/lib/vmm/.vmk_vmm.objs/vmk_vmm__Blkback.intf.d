lib/vmm/blkback.mli: Blk_channel Hcall Vmk_hw
