lib/vmm/costs.ml: List
