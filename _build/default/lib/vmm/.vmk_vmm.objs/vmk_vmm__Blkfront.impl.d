lib/vmm/blkfront.ml: Blk_channel Evt_mux Hashtbl Hcall List Queue Ring Vmk_hw
