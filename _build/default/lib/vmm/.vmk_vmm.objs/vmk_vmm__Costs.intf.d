lib/vmm/costs.mli:
