lib/vmm/ring.mli:
