lib/vmm/evt_mux.mli: Hcall
