lib/vmm/dom0.ml: Blkback Evt_mux Hcall List Netback Vmk_hw Vmk_trace
