lib/vmm/netfront.ml: Hashtbl Hcall List Net_channel Queue Ring Vmk_hw
