lib/vmm/hypervisor.ml: Costs Effect Hashtbl Hcall Int64 List Logs Option Printexc String Vmk_hw Vmk_sim Vmk_trace
