lib/vmm/blkback.ml: Blk_channel Hashtbl Hcall Option Ring Vmk_hw Vmk_trace
