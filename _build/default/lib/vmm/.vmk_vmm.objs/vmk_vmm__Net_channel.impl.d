lib/vmm/net_channel.ml: Hcall Printf Ring Vmk_hw
