lib/vmm/blkfront.mli: Blk_channel Evt_mux Hcall Vmk_hw
