module Machine = Vmk_hw.Machine
module Frame = Vmk_hw.Frame
module Arch = Vmk_hw.Arch
module Counter = Vmk_trace.Counter

let name = "parallax"
let virtual_disk_stride = 64
let service_work = 300
let upstream_timeout = 50_000_000L

type pending = {
  p_idx : int;
  p_client_dom : Hcall.domid;
  p_chan : Blk_channel.t;
  p_port : Hcall.port;
  p_req : Blk_channel.req;
}

let body mach ~clients ~upstream ~dom0 () =
  let mux = Evt_mux.create () in
  let arch = mach.Machine.arch in
  let front = Blkfront.connect upstream ~backend:dom0 ~arch ~buffers:8 () in
  Evt_mux.on mux (Blkfront.port front) (fun () -> Blkfront.pump front);
  (* Event handlers only enqueue; the main loop serves strictly FIFO so
     concurrent clients get fair service (nested dispatch during an
     upstream wait must not serve newer requests first). *)
  let pending : pending Queue.t = Queue.create () in
  let connect_client idx chan =
    let key = chan.Blk_channel.key in
    let client_dom =
      int_of_string (Option.get (Hcall.xs_wait_for (key ^ "/frontend-dom")))
    in
    let offer =
      int_of_string (Option.get (Hcall.xs_wait_for (key ^ "/frontend-port")))
    in
    let my_port = Hcall.evtchn_bind ~remote_dom:client_dom ~remote_port:offer in
    chan.Blk_channel.back_port <- Some my_port;
    Hcall.xs_write ~path:(key ^ "/backend-port") ~value:(string_of_int my_port);
    let handler () =
      let rec drain () =
        match Ring.pop_request chan.Blk_channel.ring with
        | Some request ->
            Hcall.burn Blk_channel.ring_cost;
            Queue.add
              {
                p_idx = idx;
                p_client_dom = client_dom;
                p_chan = chan;
                p_port = my_port;
                p_req = request;
              }
              pending;
            drain ()
        | None -> ()
      in
      drain ()
    in
    Evt_mux.on mux my_port handler;
    handler ()
  in
  List.iteri connect_client clients;
  let respond p ok =
    Hcall.burn Blk_channel.ring_cost;
    ignore
      (Ring.push_response p.p_chan.Blk_channel.ring
         { Blk_channel.r_id = p.p_req.Blk_channel.id; ok });
    try Hcall.evtchn_send p.p_port with Hcall.Hcall_error _ -> ()
  in
  let serve_one p =
    let { Blk_channel.op; sector; gref; bytes; _ } = p.p_req in
    Hcall.burn service_work;
    Counter.incr mach.Machine.counters "parallax.requests";
    let physical = (sector * virtual_disk_stride) + p.p_idx in
    match Hcall.grant_map ~dom:p.p_client_dom ~gref with
    | guest_frame ->
        let ok =
          match op with
          | Blk_channel.Read -> begin
              match
                Blkfront.read front ~mux ~sector:physical ~bytes
                  ~timeout:upstream_timeout ()
              with
              | Some tag ->
                  Hcall.burn (Arch.copy_cost arch ~bytes);
                  Frame.set_tag guest_frame tag;
                  true
              | None -> false
            end
          | Blk_channel.Write ->
              Hcall.burn (Arch.copy_cost arch ~bytes);
              Blkfront.write front ~mux ~sector:physical ~bytes
                ~tag:guest_frame.Frame.tag ~timeout:upstream_timeout ()
        in
        (try Hcall.grant_unmap ~dom:p.p_client_dom ~gref
         with Hcall.Hcall_error _ -> ());
        respond p ok
    | exception Hcall.Hcall_error _ -> respond p false
  in
  let rec serve () =
    (match Queue.take_opt pending with
    | Some p -> serve_one p
    | None -> (
        match Hcall.block () with
        | Hcall.Events ports -> Evt_mux.dispatch mux ports
        | Hcall.Timed_out -> ()));
    serve ()
  in
  serve ()
