(** Parallax-style storage service domain.

    The [WRF+05] structure the paper's §3.1 leans on: a dedicated VM that
    provides virtual block devices to client guests, itself a frontend of
    Dom0's block backend. Each client sees a private virtual disk
    (sectors striped by client index). A client request costs Parallax a
    grant map, a buffer copy and an upstream block operation — "providing
    a critical system service for a set of VMs", exactly a user-level
    server in microkernel terms.

    Kill this domain (experiment E6) and precisely its clients fail;
    Dom0 and non-storage guests are untouched. *)

val name : string
(** ["parallax"] — also its cycle account. *)

val virtual_disk_stride : int
(** Client [i]'s sector [s] lives at physical sector [s * stride + i]. *)

val body :
  Vmk_hw.Machine.t ->
  clients:Blk_channel.t list ->
  upstream:Blk_channel.t ->
  dom0:Hcall.domid ->
  unit ->
  unit
(** The service loop. [clients] are the channels guests connect to;
    [upstream] must be listed in Dom0's [blk] channels. *)
