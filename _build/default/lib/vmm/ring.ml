type ('req, 'resp) t = {
  capacity : int;
  reqs : 'req Queue.t;
  resps : 'resp Queue.t;
  mutable req_total : int;
  mutable resp_total : int;
  mutable dropped : int;
}

let create ~capacity () =
  if capacity < 1 then invalid_arg "Ring.create: capacity < 1";
  {
    capacity;
    reqs = Queue.create ();
    resps = Queue.create ();
    req_total = 0;
    resp_total = 0;
    dropped = 0;
  }

let capacity t = t.capacity

let push_request t req =
  if Queue.length t.reqs >= t.capacity then begin
    t.dropped <- t.dropped + 1;
    false
  end
  else begin
    Queue.add req t.reqs;
    t.req_total <- t.req_total + 1;
    true
  end

let pop_request t = Queue.take_opt t.reqs

let push_response t resp =
  if Queue.length t.resps >= t.capacity then begin
    t.dropped <- t.dropped + 1;
    false
  end
  else begin
    Queue.add resp t.resps;
    t.resp_total <- t.resp_total + 1;
    true
  end

let pop_response t = Queue.take_opt t.resps
let requests_pending t = Queue.length t.reqs
let responses_pending t = Queue.length t.resps
let requests_total t = t.req_total
let responses_total t = t.resp_total
let dropped_total t = t.dropped
