type op = Read | Write

type req = { id : int; op : op; sector : int; gref : Hcall.gref; bytes : int }
type resp = { r_id : int; ok : bool }

type t = {
  ring : (req, resp) Ring.t;
  key : string;
  mutable front_dom : Hcall.domid option;
  mutable offer_port : Hcall.port option;
  mutable front_port : Hcall.port option;
  mutable back_port : Hcall.port option;
}

let next_key = ref 0

let create ?(ring_size = 32) ?key () =
  let key =
    match key with
    | Some k -> k
    | None ->
        incr next_key;
        Printf.sprintf "device/blk/%d" !next_key
  in
  {
    ring = Ring.create ~capacity:ring_size ();
    key;
    front_dom = None;
    offer_port = None;
    front_port = None;
    back_port = None;
  }

let ring_cost = 25
