(** Per-domain event-channel dispatcher.

    A guest fiber has one blocking primitive ({!Hcall.block}) but several
    event sources (netfront, blkfront, backends). The mux maps ports to
    handler thunks so nested waits don't swallow each other's events:
    while one driver blocks for its response, foreign ports that fire are
    dispatched to their owners. *)

type t

val create : unit -> t

val on : t -> Hcall.port -> (unit -> unit) -> unit
(** Register (or replace) the handler for a port. *)

val dispatch : t -> Hcall.port list -> unit
(** Run handlers for the given ports; unknown ports are ignored. *)

val wait : t -> ?timeout:int64 -> until:(unit -> bool) -> unit -> bool
(** Block and dispatch until [until ()] holds. Returns [false] when a
    block timed out (and [until] still fails) or the hypervisor refuses —
    the caller's cue that a peer is dead. The [timeout] bounds each
    individual block, so total wait can exceed it while events trickle
    in. *)
