(** Split-driver shared ring.

    The frontend/backend communication structure of the Xen I/O model: a
    bounded request ring and a bounded response ring living in a shared
    page. Ring slots carry OCaml values; the CPU cost of ring accesses is
    charged by the callers (they burn guest/Dom0 cycles per operation), so
    this module is pure bookkeeping. Notification is out of band via event
    channels. *)

type ('req, 'resp) t

val create : capacity:int -> unit -> ('req, 'resp) t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : ('req, 'resp) t -> int

val push_request : ('req, 'resp) t -> 'req -> bool
(** Enqueue a request; [false] when the ring is full (frontend must back
    off — full rings are where Dom0 saturation shows up in E3). *)

val pop_request : ('req, 'resp) t -> 'req option
val push_response : ('req, 'resp) t -> 'resp -> bool
val pop_response : ('req, 'resp) t -> 'resp option
val requests_pending : ('req, 'resp) t -> int
val responses_pending : ('req, 'resp) t -> int

val requests_total : ('req, 'resp) t -> int
(** Requests ever pushed (throughput accounting). *)

val responses_total : ('req, 'resp) t -> int
val dropped_total : ('req, 'resp) t -> int
(** Pushes rejected because a ring was full. *)
