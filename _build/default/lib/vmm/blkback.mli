(** Dom0-side block backend.

    Grant-maps the guest's data buffer and lets the disk DMA directly
    to/from it (zero-copy), completing the ring request when the disk
    interrupt arrives. Per-request Dom0 work is constant; the disk does
    the byte moving. *)

type t

val connect : Blk_channel.t -> Vmk_hw.Machine.t -> unit -> t
(** Backend half of the handshake (spins until the frontend published its
    port). *)

val port : t -> Hcall.port
val frontend : t -> Hcall.domid

val handle_event : t -> unit
(** Pull requests from the ring and submit them to the disk. *)

val try_complete : t -> Vmk_hw.Disk.request -> bool
(** Offer a finished disk request; [true] if it belonged to this backend
    (response pushed, frontend notified). Dom0 drains the disk and routes
    completions through this. *)

val requests_served : t -> int
