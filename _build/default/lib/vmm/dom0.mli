(** Dom0 — the privileged "super-VM" hosting the legacy drivers.

    Binds the physical NIC and disk interrupts, connects the backends for
    every channel it is given, and multiplexes events forever. This is
    the centralised structure the paper's §2.2 warns about ("a single
    point of failure"): experiment E6 kills it and measures the blast
    radius; experiment E3 measures how much of the machine's CPU it
    consumes under I/O load. *)

val name : string
(** ["dom0"] — also its cycle account. *)

val body :
  Vmk_hw.Machine.t ->
  ?net:Net_channel.t list ->
  ?blk:Blk_channel.t list ->
  unit ->
  unit
(** The Dom0 kernel: create with
    [Hypervisor.create_domain h ~name:Dom0.name ~privileged:true
      (Dom0.body mach ~net ~blk)].
    Every channel in [net]/[blk] must eventually be connected by a
    frontend, or Dom0 spins waiting. *)
