module Frame = Vmk_hw.Frame
module Machine = Vmk_hw.Machine
module Disk = Vmk_hw.Disk
module Counter = Vmk_trace.Counter

let per_request_work = 360

type pending = { ring_id : int; gref : Hcall.gref }

type t = {
  chan : Blk_channel.t;
  mach : Machine.t;
  front : Hcall.domid;
  my_port : Hcall.port;
  inflight : (int, pending) Hashtbl.t;  (** disk request id -> pending *)
  mutable served : int;
}

let connect chan mach () =
  let key = chan.Blk_channel.key in
  let front =
    int_of_string (Option.get (Hcall.xs_wait_for (key ^ "/frontend-dom")))
  in
  let offer =
    int_of_string (Option.get (Hcall.xs_wait_for (key ^ "/frontend-port")))
  in
  let my_port = Hcall.evtchn_bind ~remote_dom:front ~remote_port:offer in
  chan.Blk_channel.back_port <- Some my_port;
  Hcall.xs_write ~path:(key ^ "/backend-port") ~value:(string_of_int my_port);
  { chan; mach; front; my_port; inflight = Hashtbl.create 16; served = 0 }

let port t = t.my_port
let frontend t = t.front

let notify t = try Hcall.evtchn_send t.my_port with Hcall.Hcall_error _ -> ()

let respond t ring_id ok =
  Hcall.burn Blk_channel.ring_cost;
  ignore
    (Ring.push_response t.chan.Blk_channel.ring { Blk_channel.r_id = ring_id; ok });
  notify t

let handle_event t =
  let rec drain () =
    match Ring.pop_request t.chan.Blk_channel.ring with
    | Some { Blk_channel.id; op; sector; gref; bytes } -> begin
        Hcall.burn (Blk_channel.ring_cost + per_request_work);
        match Hcall.grant_map ~dom:t.front ~gref with
        | frame ->
            let disk_op =
              match op with
              | Blk_channel.Read -> Disk.Read
              | Blk_channel.Write -> Disk.Write
            in
            let disk_id =
              Disk.submit t.mach.Machine.disk disk_op ~sector ~frame ~bytes
            in
            Hashtbl.replace t.inflight disk_id { ring_id = id; gref };
            Counter.incr t.mach.Machine.counters "blkback.requests";
            drain ()
        | exception Hcall.Hcall_error _ ->
            respond t id false;
            drain ()
      end
    | None -> ()
  in
  drain ()

let try_complete t (request : Disk.request) =
  match Hashtbl.find_opt t.inflight request.Disk.id with
  | Some { ring_id; gref } ->
      Hashtbl.remove t.inflight request.Disk.id;
      Hcall.burn per_request_work;
      (try Hcall.grant_unmap ~dom:t.front ~gref with Hcall.Hcall_error _ -> ());
      respond t ring_id true;
      t.served <- t.served + 1;
      true
  | None -> false

let requests_served t = t.served
