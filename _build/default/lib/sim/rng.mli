(** Deterministic PCG32 random number generator.

    Every stochastic choice in the simulator (packet inter-arrival jitter,
    disk seek spread, workload think times) draws from an explicitly seeded
    stream so that experiment output is reproducible bit-for-bit. *)

type t

val create : ?seed:int64 -> unit -> t
(** [create ~seed ()] is a generator with the given seed (default a fixed
    project-wide constant). Equal seeds yield equal streams. *)

val split : t -> t
(** [split t] derives an independent stream from [t]'s current state so that
    subsystems cannot perturb each other's draws. *)

val int32 : t -> int32
(** Next raw 32-bit draw. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].

    @raise Invalid_argument if [bound <= 0]. *)

val int64_range : t -> int64 -> int64 -> int64
(** [int64_range t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean (Poisson
    inter-arrival times for device models). *)

val pick : t -> 'a array -> 'a
(** Uniformly chosen element.

    @raise Invalid_argument on an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
