(** Virtual cycle clock.

    All time in the simulator is expressed in CPU cycles of the simulated
    machine. The clock only moves forward; components advance it by the
    number of cycles an operation costs under the active architecture
    profile. Nothing in the simulator reads wall-clock time, which keeps
    every experiment deterministic. *)

type t
(** A monotonic virtual clock. *)

val create : unit -> t
(** [create ()] is a fresh clock at cycle 0. *)

val now : t -> int64
(** [now t] is the current virtual time in cycles. *)

val advance : t -> int64 -> unit
(** [advance t cycles] moves the clock forward by [cycles].

    @raise Invalid_argument if [cycles] is negative. *)

val advance_to : t -> int64 -> unit
(** [advance_to t deadline] moves the clock forward to absolute time
    [deadline]. A deadline in the past is a no-op: the clock never moves
    backwards. *)

val reset : t -> unit
(** [reset t] rewinds the clock to cycle 0 (used between experiment runs
    that reuse a machine). *)

val pp : Format.formatter -> t -> unit
(** Pretty-print as ["cycle:<n>"]. *)
