(* PCG32 (Melissa O'Neill): 64-bit LCG state, xorshift-rotate output. *)

type t = { mutable state : int64; inc : int64 }

let multiplier = 6364136223846793005L
let default_seed = 0x853c49e6748fea9bL

let next_state t = t.state <- Int64.add (Int64.mul t.state multiplier) t.inc

let create ?(seed = default_seed) () =
  let t = { state = 0L; inc = 0xda3e39cb94b95bdbL } in
  next_state t;
  t.state <- Int64.add t.state seed;
  next_state t;
  t

let output state =
  let xorshifted =
    Int64.to_int32
      (Int64.shift_right_logical
         (Int64.logxor (Int64.shift_right_logical state 18) state)
         27)
  in
  let rot = Int64.to_int (Int64.shift_right_logical state 59) land 31 in
  if rot = 0 then xorshifted
  else
    Int32.logor
      (Int32.shift_right_logical xorshifted rot)
      (Int32.shift_left xorshifted (32 - rot))

let int32 t =
  let state = t.state in
  next_state t;
  output state

let split t =
  let seed = Int64.logxor t.state 0x9e3779b97f4a7c15L in
  next_state t;
  create ~seed ()

let uint_of_int32 x = Int32.to_int x land 0xffffffff

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let limit = 0x100000000 - (0x100000000 mod bound) in
  let rec draw () =
    let x = uint_of_int32 (int32 t) in
    if x < limit then x mod bound else draw ()
  in
  draw ()

let int64_range t lo hi =
  if Int64.compare lo hi > 0 then invalid_arg "Rng.int64_range: lo > hi";
  let span = Int64.add (Int64.sub hi lo) 1L in
  if Int64.compare span 0L <= 0 then
    (* Span overflowed: full 64-bit range. *)
    Int64.logor
      (Int64.shift_left (Int64.of_int32 (int32 t)) 32)
      (Int64.of_int (uint_of_int32 (int32 t)))
  else begin
    let hi32 = Int64.of_int (uint_of_int32 (int32 t)) in
    let lo32 = Int64.of_int (uint_of_int32 (int32 t)) in
    let raw = Int64.logor (Int64.shift_left hi32 32) lo32 in
    let r = Int64.rem raw span in
    let r = if Int64.compare r 0L < 0 then Int64.add r span else r in
    Int64.add lo r
  end

let float t bound = bound *. (float_of_int (uint_of_int32 (int32 t)) /. 4294967296.0)
let bool t = Int32.logand (int32 t) 1l = 1l

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: mean must be positive";
  let u = ref (float t 1.0) in
  if !u = 0.0 then u := 1e-12;
  -.mean *. log !u

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
