lib/sim/heap.mli:
