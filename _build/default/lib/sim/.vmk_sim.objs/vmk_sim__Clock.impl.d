lib/sim/clock.ml: Format Int64
