lib/sim/rng.mli:
