type t = { mutable now : int64 }

let create () = { now = 0L }
let now t = t.now

let advance t cycles =
  if Int64.compare cycles 0L < 0 then
    invalid_arg "Clock.advance: negative cycle count";
  t.now <- Int64.add t.now cycles

let advance_to t deadline =
  if Int64.compare deadline t.now > 0 then t.now <- deadline

let reset t = t.now <- 0L
let pp ppf t = Format.fprintf ppf "cycle:%Ld" t.now
