type t = {
  balances : (string, int64 ref) Hashtbl.t;
  mutable current : string;
}

let idle = "idle"
let create () = { balances = Hashtbl.create 16; current = idle }

let cell t name =
  match Hashtbl.find_opt t.balances name with
  | Some r -> r
  | None ->
      let r = ref 0L in
      Hashtbl.add t.balances name r;
      r

let charge t name cycles =
  if Int64.compare cycles 0L < 0 then invalid_arg "Accounts.charge: negative";
  let r = cell t name in
  r := Int64.add !r cycles

let charge_current t cycles = charge t t.current cycles
let switch_to t name = t.current <- name
let current t = t.current

let with_account t name f =
  let previous = t.current in
  t.current <- name;
  Fun.protect ~finally:(fun () -> t.current <- previous) f

let balance t name =
  match Hashtbl.find_opt t.balances name with Some r -> !r | None -> 0L

let total t = Hashtbl.fold (fun _ r acc -> Int64.add acc !r) t.balances 0L

let busy_total t =
  Hashtbl.fold
    (fun name r acc -> if name = idle then acc else Int64.add acc !r)
    t.balances 0L

let share t name =
  let busy = busy_total t in
  if Int64.compare busy 0L = 0 then 0.0
  else Int64.to_float (balance t name) /. Int64.to_float busy

let reset t =
  Hashtbl.iter (fun _ r -> r := 0L) t.balances;
  t.current <- idle

let to_list t =
  Hashtbl.fold
    (fun name r acc -> if Int64.compare !r 0L <> 0 then (name, !r) :: acc else acc)
    t.balances []
  |> List.sort compare

let pp ppf t =
  List.iter
    (fun (name, v) -> Format.fprintf ppf "%-12s %12Ld cycles (%.1f%%)@." name v (100.0 *. share t name))
    (to_list t)
