type set = (string, int ref) Hashtbl.t

let create_set () = Hashtbl.create 64

let cell set name =
  match Hashtbl.find_opt set name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add set name r;
      r

let incr set name = Stdlib.incr (cell set name)

let add set name amount =
  if amount < 0 then invalid_arg "Counter.add: negative amount";
  let r = cell set name in
  r := !r + amount

let get set name = match Hashtbl.find_opt set name with Some r -> !r | None -> 0
let reset set = Hashtbl.iter (fun _ r -> r := 0) set

let to_list set =
  Hashtbl.fold (fun name r acc -> if !r <> 0 then (name, !r) :: acc else acc) set []
  |> List.sort compare

let fold set ~init ~f =
  List.fold_left (fun acc (name, v) -> f acc name v) init (to_list set)

let matching set ~prefix =
  let starts_with s = String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  List.filter (fun (name, _) -> starts_with name) (to_list set)

let sum_matching set ~prefix =
  List.fold_left (fun acc (_, v) -> acc + v) 0 (matching set ~prefix)

let pp ppf set =
  List.iter (fun (name, v) -> Format.fprintf ppf "%s = %d@." name v) (to_list set)
