(** Named integer counters.

    Kernels and device models bump counters ("ipc.rendezvous",
    "grant.transfer", "nic.rx_irq", …); the comparison framework reads them
    to classify events under the paper's §2.2 taxonomy. A [Counter.set] is a
    flat namespace owned by one machine, so scenarios never share state. *)

type set
(** A namespace of counters. *)

val create_set : unit -> set

val incr : set -> string -> unit
(** Bump a counter by one, creating it at zero first if needed. *)

val add : set -> string -> int -> unit
(** Bump by an arbitrary (non-negative) amount.

    @raise Invalid_argument on a negative amount. *)

val get : set -> string -> int
(** Current value; [0] for a counter never touched. *)

val reset : set -> unit
(** Zero every counter (the names survive). *)

val to_list : set -> (string * int) list
(** All counters with non-zero values, sorted by name. *)

val fold : set -> init:'a -> f:('a -> string -> int -> 'a) -> 'a

val matching : set -> prefix:string -> (string * int) list
(** Counters whose name starts with [prefix], sorted by name. *)

val sum_matching : set -> prefix:string -> int

val pp : Format.formatter -> set -> unit
