lib/trace/ring.ml: Array List
