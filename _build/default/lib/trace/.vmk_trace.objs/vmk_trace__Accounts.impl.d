lib/trace/accounts.ml: Format Fun Hashtbl Int64 List
