lib/trace/counter.ml: Format Hashtbl List Stdlib String
