lib/trace/counter.mli: Format
