lib/trace/ring.mli:
