lib/trace/accounts.mli: Format
