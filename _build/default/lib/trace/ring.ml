type 'a t = {
  slots : (int64 * 'a) option array;
  mutable next : int;
  mutable appended : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Ring.create: capacity < 1";
  { slots = Array.make capacity None; next = 0; appended = 0 }

let capacity t = Array.length t.slots

let record t ~time value =
  t.slots.(t.next) <- Some (time, value);
  t.next <- (t.next + 1) mod Array.length t.slots;
  t.appended <- t.appended + 1

let length t = min t.appended (Array.length t.slots)
let appended t = t.appended
let dropped t = max 0 (t.appended - Array.length t.slots)

let iter t ~f =
  let n = length t in
  let cap = Array.length t.slots in
  let start = if t.appended < cap then 0 else t.next in
  for i = 0 to n - 1 do
    match t.slots.((start + i) mod cap) with
    | Some (time, v) -> f time v
    | None -> ()
  done

let to_list t =
  let acc = ref [] in
  iter t ~f:(fun time v -> acc := (time, v) :: !acc);
  List.rev !acc

let find_last t ~f =
  let result = ref None in
  iter t ~f:(fun time v -> if f v then result := Some (time, v));
  !result

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.next <- 0;
  t.appended <- 0
