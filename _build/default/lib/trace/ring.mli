(** Bounded event ring (flight-recorder trace buffer).

    Kernels append timestamped events; when the ring is full the oldest
    entries are overwritten, like a hardware trace buffer. Experiments and
    failure post-mortems read the retained tail. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int
val record : 'a t -> time:int64 -> 'a -> unit
val length : 'a t -> int
(** Number of retained entries, [<= capacity]. *)

val appended : 'a t -> int
(** Total entries ever recorded, including overwritten ones. *)

val dropped : 'a t -> int
(** Entries lost to overwriting. *)

val to_list : 'a t -> (int64 * 'a) list
(** Retained entries, oldest first. *)

val iter : 'a t -> f:(int64 -> 'a -> unit) -> unit
(** Iterate oldest-first over retained entries. *)

val find_last : 'a t -> f:('a -> bool) -> (int64 * 'a) option
(** Most recent retained entry satisfying [f]. *)

val clear : 'a t -> unit
