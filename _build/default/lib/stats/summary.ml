type t = {
  mutable count : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable total : float;
  mutable samples : float array;
  mutable sorted : bool;
}

let create () =
  {
    count = 0;
    mean = 0.0;
    m2 = 0.0;
    min = infinity;
    max = neg_infinity;
    total = 0.0;
    samples = [||];
    sorted = true;
  }

let add t x =
  if t.count = Array.length t.samples then begin
    let capacity = Stdlib.max 16 (2 * Array.length t.samples) in
    let samples = Array.make capacity 0.0 in
    Array.blit t.samples 0 samples 0 t.count;
    t.samples <- samples
  end;
  t.samples.(t.count) <- x;
  t.sorted <- false;
  t.count <- t.count + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.count);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x;
  t.total <- t.total +. x

let add_int t x = add t (float_of_int x)
let add_int64 t x = add t (Int64.to_float x)
let count t = t.count
let mean t = if t.count = 0 then 0.0 else t.mean
let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int (t.count - 1)
let stddev t = sqrt (variance t)
let min t = if t.count = 0 then 0.0 else t.min
let max t = if t.count = 0 then 0.0 else t.max
let total t = t.total

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.samples 0 t.count in
    Array.sort compare live;
    Array.blit live 0 t.samples 0 t.count;
    t.sorted <- true
  end

let percentile t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Summary.percentile: p not in [0,100]";
  if t.count = 0 then 0.0
  else begin
    ensure_sorted t;
    let rank = p /. 100.0 *. float_of_int (t.count - 1) in
    let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
    let frac = rank -. floor rank in
    t.samples.(lo) +. (frac *. (t.samples.(hi) -. t.samples.(lo)))
  end

let median t = percentile t 50.0

let of_list xs =
  let t = create () in
  List.iter (add t) xs;
  t

let merge a b =
  let t = create () in
  for i = 0 to a.count - 1 do
    add t a.samples.(i)
  done;
  for i = 0 to b.count - 1 do
    add t b.samples.(i)
  done;
  t

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.2f sd=%.2f p50=%.2f p99=%.2f min=%.2f max=%.2f"
    (count t) (mean t) (stddev t) (percentile t 50.0) (percentile t 99.0)
    (min t) (max t)
