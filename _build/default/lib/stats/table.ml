type line = Row of string list | Separator

type t = { header : string list; mutable lines : line list (* reversed *) }

let create ~header =
  if header = [] then invalid_arg "Table.create: empty header";
  { header; lines = [] }

let add_row t row =
  let columns = List.length t.header in
  let given = List.length row in
  if given > columns then invalid_arg "Table.add_row: too many cells";
  let row =
    if given = columns then row
    else row @ List.init (columns - given) (fun _ -> "")
  in
  t.lines <- Row row :: t.lines

let add_separator t = t.lines <- Separator :: t.lines

let row_count t =
  List.length
    (List.filter (function Row _ -> true | Separator -> false) t.lines)

let cellf fmt = Format.asprintf fmt

let pp ppf t =
  let lines = List.rev t.lines in
  let rows =
    t.header :: List.filter_map (function Row r -> Some r | Separator -> None) lines
  in
  let widths = Array.make (List.length t.header) 0 in
  let account row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter account rows;
  let pad i cell =
    let w = widths.(i) in
    let gap = w - String.length cell in
    if i = 0 then cell ^ String.make gap ' ' else String.make gap ' ' ^ cell
  in
  let emit row =
    Format.fprintf ppf "%s@."
      (String.concat "  " (List.mapi pad row))
  in
  let rule () =
    let total =
      Array.fold_left ( + ) 0 widths + (2 * (Array.length widths - 1))
    in
    Format.fprintf ppf "%s@." (String.make total '-')
  in
  emit t.header;
  rule ();
  List.iter (function Row r -> emit r | Separator -> rule ()) lines

let pp_markdown ppf t =
  let escape cell =
    String.concat "\\|" (String.split_on_char '|' cell)
  in
  let emit row =
    Format.fprintf ppf "| %s |@." (String.concat " | " (List.map escape row))
  in
  emit t.header;
  Format.fprintf ppf "|%s@."
    (String.concat "" (List.map (fun _ -> "---|") t.header));
  List.iter
    (function Row r -> emit r | Separator -> ())
    (List.rev t.lines)

let to_string t = Format.asprintf "%a" pp t
