lib/stats/summary.ml: Array Format Int64 List Stdlib
