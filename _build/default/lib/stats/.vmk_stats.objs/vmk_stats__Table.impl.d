lib/stats/table.ml: Array Format List String
