(** Fixed-bucket histograms with ASCII rendering.

    Used by experiment reports to show distributions (e.g. per-packet Dom0
    cycles, IPC latency) without plotting infrastructure. *)

type t

val create : ?buckets:int -> lo:float -> hi:float -> unit -> t
(** [create ~buckets ~lo ~hi ()] is an empty histogram covering [\[lo, hi)]
    with [buckets] equal-width bins plus underflow/overflow bins.

    @raise Invalid_argument if [hi <= lo] or [buckets < 1]. *)

val add : t -> float -> unit
val count : t -> int
val underflow : t -> int
val overflow : t -> int

val bucket_count : t -> int
val bucket_range : t -> int -> float * float
(** Half-open value range of bucket [i]. *)

val bucket_value : t -> int -> int
(** Occupancy of bucket [i]. *)

val mode : t -> (float * float) option
(** Range of the fullest bucket, if any data landed in range. *)

val pp : Format.formatter -> t -> unit
(** Multi-line bar rendering, one row per non-empty bucket. *)
