(** Streaming univariate summaries.

    Welford's online algorithm for mean/variance plus a retained sample for
    exact order statistics. Experiments feed one observation per iteration
    and render mean, standard deviation and percentiles at the end. *)

type t

val create : unit -> t
(** Empty summary. *)

val add : t -> float -> unit
(** Record one observation. *)

val add_int : t -> int -> unit
val add_int64 : t -> int64 -> unit

val count : t -> int
val mean : t -> float
(** Mean of the observations; [0.] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [0.] with fewer than two observations. *)

val stddev : t -> float
val min : t -> float
val max : t -> float
val total : t -> float

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0,100\]], by linear interpolation between
    closest ranks. [0.] when empty.

    @raise Invalid_argument if [p] is outside [\[0,100\]]. *)

val median : t -> float

val of_list : float list -> t
val merge : t -> t -> t
(** Combined summary of both observation sets. *)

val pp : Format.formatter -> t -> unit
(** Render as ["n=… mean=… sd=… p50=… p99=… min=… max=…"]. *)
