(** Ordinary-least-squares simple linear regression.

    Experiment E3 reproduces Cherkasova & Gardner's finding that Dom0 CPU
    time is proportional to the number of page-flip operations and
    independent of message size: we regress measured CPU cycles against
    flip counts (expect r² near 1) and against byte counts (expect a poor
    fit across packet-size sweeps). *)

type fit = {
  slope : float;  (** dy/dx. *)
  intercept : float;  (** y at x = 0. *)
  r2 : float;  (** Coefficient of determination, in [0,1]. *)
  n : int;  (** Number of points. *)
}

val fit : (float * float) list -> fit
(** [fit points] is the OLS line through [(x, y)] pairs.

    @raise Invalid_argument with fewer than two distinct x values. *)

val predict : fit -> float -> float
(** [predict f x] is [f.slope *. x +. f.intercept]. *)

val pearson : (float * float) list -> float
(** Pearson correlation coefficient; [0.] when degenerate. *)

val pp : Format.formatter -> fit -> unit
(** Render as ["y = a·x + b (r²=…)"]. *)
