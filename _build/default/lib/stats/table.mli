(** Aligned ASCII tables for experiment reports.

    Every experiment renders its result rows through this module so that
    [vmk run <eid>] output and EXPERIMENTS.md share one format. *)

type t

val create : header:string list -> t
(** Table with the given column headers.

    @raise Invalid_argument on an empty header. *)

val add_row : t -> string list -> unit
(** Append a row. Rows shorter than the header are right-padded with empty
    cells; longer rows raise [Invalid_argument]. *)

val add_separator : t -> unit
(** Horizontal rule between row groups. *)

val row_count : t -> int

val cellf : ('a, Format.formatter, unit, string) format4 -> 'a
(** [cellf fmt …] builds one cell; convenience alias for
    {!Format.asprintf}. *)

val pp : Format.formatter -> t -> unit
(** Render with a header rule and per-column alignment (numbers look best
    right-aligned, so all cells are right-aligned except the first
    column). *)

val pp_markdown : Format.formatter -> t -> unit
(** Render as a GitHub-flavoured markdown table (separators between row
    groups are dropped — markdown has no mid-table rules). *)

val to_string : t -> string
