type fit = { slope : float; intercept : float; r2 : float; n : int }

let moments points =
  let n = float_of_int (List.length points) in
  let sx = List.fold_left (fun acc (x, _) -> acc +. x) 0.0 points in
  let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0.0 points in
  let mx = sx /. n and my = sy /. n in
  let sxx, syy, sxy =
    List.fold_left
      (fun (sxx, syy, sxy) (x, y) ->
        let dx = x -. mx and dy = y -. my in
        (sxx +. (dx *. dx), syy +. (dy *. dy), sxy +. (dx *. dy)))
      (0.0, 0.0, 0.0) points
  in
  (mx, my, sxx, syy, sxy)

let fit points =
  if List.length points < 2 then invalid_arg "Regression.fit: need >= 2 points";
  let mx, my, sxx, syy, sxy = moments points in
  if sxx = 0.0 then invalid_arg "Regression.fit: x values are all equal";
  let slope = sxy /. sxx in
  let intercept = my -. (slope *. mx) in
  let r2 = if syy = 0.0 then 1.0 else sxy *. sxy /. (sxx *. syy) in
  { slope; intercept; r2; n = List.length points }

let predict f x = (f.slope *. x) +. f.intercept

let pearson points =
  if List.length points < 2 then 0.0
  else begin
    let _, _, sxx, syy, sxy = moments points in
    if sxx = 0.0 || syy = 0.0 then 0.0 else sxy /. sqrt (sxx *. syy)
  end

let pp ppf f =
  Format.fprintf ppf "y = %.4f*x + %.2f (r^2=%.4f, n=%d)" f.slope f.intercept
    f.r2 f.n
