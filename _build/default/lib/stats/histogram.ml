type t = {
  lo : float;
  hi : float;
  bins : int array;
  mutable underflow : int;
  mutable overflow : int;
  mutable count : int;
}

let create ?(buckets = 20) ~lo ~hi () =
  if hi <= lo then invalid_arg "Histogram.create: hi <= lo";
  if buckets < 1 then invalid_arg "Histogram.create: buckets < 1";
  { lo; hi; bins = Array.make buckets 0; underflow = 0; overflow = 0; count = 0 }

let add t x =
  t.count <- t.count + 1;
  if x < t.lo then t.underflow <- t.underflow + 1
  else if x >= t.hi then t.overflow <- t.overflow + 1
  else begin
    let width = (t.hi -. t.lo) /. float_of_int (Array.length t.bins) in
    let i = int_of_float ((x -. t.lo) /. width) in
    let i = min i (Array.length t.bins - 1) in
    t.bins.(i) <- t.bins.(i) + 1
  end

let count t = t.count
let underflow t = t.underflow
let overflow t = t.overflow
let bucket_count t = Array.length t.bins

let bucket_range t i =
  let width = (t.hi -. t.lo) /. float_of_int (Array.length t.bins) in
  (t.lo +. (float_of_int i *. width), t.lo +. (float_of_int (i + 1) *. width))

let bucket_value t i = t.bins.(i)

let mode t =
  let best = ref (-1) and best_count = ref 0 in
  Array.iteri
    (fun i v ->
      if v > !best_count then begin
        best := i;
        best_count := v
      end)
    t.bins;
  if !best < 0 then None else Some (bucket_range t !best)

let pp ppf t =
  let biggest = Array.fold_left max 1 t.bins in
  Array.iteri
    (fun i v ->
      if v > 0 then begin
        let lo, hi = bucket_range t i in
        let bar = String.make (max 1 (v * 40 / biggest)) '#' in
        Format.fprintf ppf "[%10.1f, %10.1f) %6d %s@." lo hi v bar
      end)
    t.bins;
  if t.underflow > 0 then Format.fprintf ppf "underflow: %d@." t.underflow;
  if t.overflow > 0 then Format.fprintf ppf "overflow: %d@." t.overflow
