lib/workloads/traffic.ml: Int64 Vmk_hw Vmk_sim
