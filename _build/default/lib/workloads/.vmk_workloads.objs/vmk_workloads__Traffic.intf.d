lib/workloads/traffic.mli: Vmk_hw
