lib/workloads/apps.ml: Hashtbl Printf Vmk_guest
