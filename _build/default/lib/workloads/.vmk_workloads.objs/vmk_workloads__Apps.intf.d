lib/workloads/apps.mli:
