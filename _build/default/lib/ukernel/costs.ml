let ipc_path = 170
let free_words = 8
let per_extra_word = 2
let syscall_fixed = 40
let irq_to_ipc = 110
let icache_lines_ipc = 14
