(** User-level network driver server.

    The microkernel answer to Xen's Dom0 netback: an unprivileged thread
    that owns the NIC, receives its interrupts as IPC, and serves clients
    over the same IPC primitive used for everything else. Clients send
    {!Proto.net_send} with a string item, or {!Proto.net_recv} and block
    until a packet arrives.

    DMA buffers are allocated straight from the frame table (device
    memory), outside the paging game. *)

val body : Vmk_hw.Machine.t -> ?rx_buffers:int -> unit -> unit
(** Server loop; spawn with {!Kernel.spawn}. Posts [rx_buffers] (default
    16) receive buffers and keeps the NIC topped up. *)

val account : string
(** Cycle account the server's work should be charged to: ["drv.net"].
    Pass as [?account] when spawning. *)
