(** User-level block driver server.

    Owns the disk, receives its completions as interrupt IPC, serves
    {!Proto.blk_read}/{!Proto.blk_write} requests from client threads.
    Clients block in their [Call] until the disk completes, so killing
    this server (experiment E6) errors out exactly its in-flight clients. *)

val body : Vmk_hw.Machine.t -> ?buffers:int -> unit -> unit
(** Server loop; spawn with {!Kernel.spawn}. [buffers] bounds concurrent
    in-flight requests (default 8); beyond it requests are rejected with
    {!Proto.error}. *)

val account : string
(** ["drv.blk"]. *)
