(** User-level pager server.

    Runs as an ordinary thread: it pre-allocates a pool of pages from the
    kernel allocator and answers kernel-synthesised page-fault IPC with
    map items, exactly the external-pager structure §3.1 compares with
    Parallax. Kill this thread (experiment E6) and its clients' next page
    fault fails — and nothing else in the system does. *)

val body : pool_pages:int -> unit -> unit
(** Server loop. Spawn with {!Kernel.spawn} and pass the resulting tid as
    the [pager] of client threads. When the pool is exhausted the pager
    replies without a map item and the client's access fails with
    [Page_fault_unhandled]. *)

val served : unit -> int
(** Faults answered with a mapping by the most recently started pager
    (reset when a new pager body starts); test/diagnostic hook. *)
