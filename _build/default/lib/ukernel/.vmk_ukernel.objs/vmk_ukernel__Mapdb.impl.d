lib/ukernel/mapdb.ml: Hashtbl List Option Vmk_hw
