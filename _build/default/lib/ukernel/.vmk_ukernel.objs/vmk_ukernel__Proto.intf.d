lib/ukernel/proto.mli:
