lib/ukernel/pager.mli:
