lib/ukernel/sysif.mli: Effect Format
