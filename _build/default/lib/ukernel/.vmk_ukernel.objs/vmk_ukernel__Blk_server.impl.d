lib/ukernel/blk_server.ml: Array Hashtbl Option Proto Queue Sysif Vmk_hw
