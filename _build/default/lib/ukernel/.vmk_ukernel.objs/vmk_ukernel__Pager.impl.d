lib/ukernel/pager.ml: Proto Sysif
