lib/ukernel/sysif.ml: Array Effect Format List
