lib/ukernel/net_server.ml: Option Proto Queue Sysif Vmk_hw
