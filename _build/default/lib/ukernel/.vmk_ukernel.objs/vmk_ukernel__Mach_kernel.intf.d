lib/ukernel/mach_kernel.mli: Effect Vmk_hw
