lib/ukernel/costs.ml:
