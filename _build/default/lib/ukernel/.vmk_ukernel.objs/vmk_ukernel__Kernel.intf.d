lib/ukernel/kernel.mli: Mapdb Sysif Vmk_hw
