lib/ukernel/mapdb.mli: Vmk_hw
