lib/ukernel/costs.mli:
