lib/ukernel/kernel.ml: Array Costs Effect Hashtbl List Logs Mapdb Option Printexc Proto Queue Sysif Vmk_hw Vmk_sim Vmk_trace
