lib/ukernel/net_server.mli: Vmk_hw
