lib/ukernel/blk_server.mli: Vmk_hw
