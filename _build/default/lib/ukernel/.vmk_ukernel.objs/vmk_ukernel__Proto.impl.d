lib/ukernel/proto.ml:
