lib/ukernel/mach_kernel.ml: Effect Hashtbl Logs Option Printexc Queue Vmk_hw Vmk_sim Vmk_trace
