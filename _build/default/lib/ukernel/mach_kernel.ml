module Machine = Vmk_hw.Machine
module Arch = Vmk_hw.Arch
module Tlb = Vmk_hw.Tlb
module Accounts = Vmk_trace.Accounts
module Counter = Vmk_trace.Counter
module Engine = Vmk_sim.Engine

module Mif = struct
  type mport = int

  type mmsg = { mlabel : int; inline_words : int; ool_bytes : int; tag : int }

  type mcall =
    | M_burn of int
    | M_port_create of { qlimit : int }
    | M_send of mport * mmsg
    | M_recv of mport
    | M_yield
    | M_exit

  type mreply =
    | MR_unit
    | MR_port of mport
    | MR_msg of mmsg
    | MR_error of string

  type _ Effect.t += Minvoke : mcall -> mreply Effect.t

  exception Mach_error of string

  let invoke c = Effect.perform (Minvoke c)

  let expect_unit = function
    | MR_unit -> ()
    | MR_error e -> raise (Mach_error e)
    | MR_port _ | MR_msg _ -> raise (Mach_error "unexpected reply")

  let burn n = expect_unit (invoke (M_burn n))

  let port_create ?(qlimit = 16) () =
    match invoke (M_port_create { qlimit }) with
    | MR_port p -> p
    | MR_error e -> raise (Mach_error e)
    | MR_unit | MR_msg _ -> raise (Mach_error "unexpected reply")

  let send port m = expect_unit (invoke (M_send (port, m)))

  let recv port =
    match invoke (M_recv port) with
    | MR_msg m -> m
    | MR_error e -> raise (Mach_error e)
    | MR_unit | MR_port _ -> raise (Mach_error "unexpected reply")

  let yield () = expect_unit (invoke M_yield)

  let exit () =
    ignore (invoke M_exit);
    assert false
end

open Mif

(* First-generation path lengths: a message touches port rights, a kernel
   buffer allocation and queue bookkeeping on both the send and receive
   sides. Calibrated so that short cross-task round trips land roughly
   5x the second-generation rendezvous, as the mid-90s comparisons did. *)
let syscall_path = 450
let per_message_side = 380
let rights_check = 120
let port_create_cost = 300

type mstate =
  | Ready
  | Running
  | Blocked_recv of mport
  | Blocked_send of mport * mmsg
  | Dead

type tcb = {
  tid : int;
  name : string;
  account : string;
  asid : int;
  mutable state : mstate;
  mutable cont : (mreply, unit) Effect.Deep.continuation option;
  mutable pending : mreply;
  mutable body : (unit -> unit) option;
  mutable burn_left : int;
}

type port_state = {
  qlimit : int;
  queue : mmsg Queue.t;
  recv_waiters : int Queue.t;  (* tids *)
  send_waiters : int Queue.t;
}

type t = {
  mach : Machine.t;
  tcbs : (int, tcb) Hashtbl.t;
  ports : (int, port_state) Hashtbl.t;
  runq : tcb Queue.t;
  mutable next_tid : int;
  mutable next_port : int;
  mutable next_asid : int;
  mutable current_asid : int;
}

type stop_reason = Idle | Condition | Dispatch_limit

let kernel_account = "machk"

let create mach =
  {
    mach;
    tcbs = Hashtbl.create 16;
    ports = Hashtbl.create 16;
    runq = Queue.create ();
    next_tid = 1;
    next_port = 1;
    next_asid = 1_000;
    current_asid = 0;
  }

let enqueue t tcb = Queue.add tcb t.runq

let ready t tcb reply =
  match tcb.state with
  | Dead -> ()
  | Ready -> tcb.pending <- reply
  | Running | Blocked_recv _ | Blocked_send _ ->
      tcb.pending <- reply;
      tcb.state <- Ready;
      enqueue t tcb

let spawn t ~name ?account body =
  let account = Option.value account ~default:name in
  let tid = t.next_tid in
  t.next_tid <- t.next_tid + 1;
  let asid = t.next_asid in
  t.next_asid <- t.next_asid + 1;
  let tcb =
    {
      tid;
      name;
      account;
      asid;
      state = Ready;
      cont = None;
      pending = MR_unit;
      body = Some body;
      burn_left = 0;
    }
  in
  Hashtbl.add t.tcbs tid tcb;
  enqueue t tcb;
  tcb.tid

let thread_count t =
  Hashtbl.fold
    (fun _ (tcb : tcb) acc -> if tcb.state <> Dead then acc + 1 else acc)
    t.tcbs 0

let kcharged t f = Accounts.with_account t.mach.Machine.accounts kernel_account f

let message_copy_cost t (m : mmsg) =
  let arch = t.mach.Machine.arch in
  Arch.copy_cost arch ~bytes:((m.inline_words * 4) + m.ool_bytes)

let syscall_overhead t =
  let arch = t.mach.Machine.arch in
  (* Through the general exception gate: no fast-path instruction. *)
  Machine.burn t.mach (arch.Arch.trap_cost + arch.Arch.kernel_exit_cost + syscall_path)

let deliver t (port : port_state) =
  (* Match queued messages with waiting receivers. *)
  let rec go () =
    if (not (Queue.is_empty port.queue)) && not (Queue.is_empty port.recv_waiters)
    then begin
      let m = Queue.take port.queue in
      let rtid = Queue.take port.recv_waiters in
      match Hashtbl.find_opt t.tcbs rtid with
      | Some rtcb when rtcb.state <> Dead ->
          (* Copy-out side. *)
          kcharged t (fun () ->
              Machine.burn t.mach (per_message_side + message_copy_cost t m));
          Counter.incr t.mach.Machine.counters "mach.msg_delivered";
          ready t rtcb (MR_msg m);
          (* Space for one more message: unblock a sender. *)
          (match Queue.take_opt port.send_waiters with
          | Some stid -> (
              match Hashtbl.find_opt t.tcbs stid with
              | Some stcb -> (
                  match stcb.state with
                  | Blocked_send (_, sm) ->
                      kcharged t (fun () ->
                          Machine.burn t.mach
                            (per_message_side + message_copy_cost t sm));
                      Queue.add sm port.queue;
                      ready t stcb MR_unit
                  | Ready | Running | Blocked_recv _ | Dead -> ())
              | None -> ())
          | None -> ());
          go ()
      | Some _ | None -> go ()
    end
  in
  go ()

let handle t (tcb : tcb) call =
  match call with
  | _ when tcb.state = Dead -> ()
  | M_burn n ->
      tcb.burn_left <- max 0 n;
      ready t tcb MR_unit
  | M_yield ->
      kcharged t (fun () -> syscall_overhead t);
      ready t tcb MR_unit
  | M_exit ->
      tcb.state <- Dead;
      tcb.cont <- None
  | M_port_create { qlimit } ->
      kcharged t (fun () ->
          syscall_overhead t;
          Machine.burn t.mach port_create_cost);
      let port = t.next_port in
      t.next_port <- t.next_port + 1;
      Hashtbl.add t.ports port
        {
          qlimit = max 1 qlimit;
          queue = Queue.create ();
          recv_waiters = Queue.create ();
          send_waiters = Queue.create ();
        };
      ready t tcb (MR_port port)
  | M_send (port, m) -> begin
      match Hashtbl.find_opt t.ports port with
      | None ->
          kcharged t (fun () -> syscall_overhead t);
          ready t tcb (MR_error "no such port")
      | Some p ->
          kcharged t (fun () ->
              syscall_overhead t;
              Machine.burn t.mach rights_check);
          Counter.incr t.mach.Machine.counters "mach.msg_sent";
          if Queue.length p.queue < p.qlimit then begin
            (* Copy-in to the kernel buffer; sender continues. *)
            kcharged t (fun () ->
                Machine.burn t.mach (per_message_side + message_copy_cost t m));
            Queue.add m p.queue;
            ready t tcb MR_unit;
            deliver t p
          end
          else begin
            tcb.state <- Blocked_send (port, m);
            Queue.add tcb.tid p.send_waiters
          end
    end
  | M_recv port -> begin
      match Hashtbl.find_opt t.ports port with
      | None ->
          kcharged t (fun () -> syscall_overhead t);
          ready t tcb (MR_error "no such port")
      | Some p ->
          kcharged t (fun () ->
              syscall_overhead t;
              Machine.burn t.mach rights_check);
          tcb.state <- Blocked_recv port;
          Queue.add tcb.tid p.recv_waiters;
          deliver t p
    end

let start_fiber t (tcb : tcb) body =
  let open Effect.Deep in
  match_with body ()
    {
      retc =
        (fun () ->
          tcb.state <- Dead;
          tcb.cont <- None);
      exnc =
        (fun exn ->
          Counter.incr t.mach.Machine.counters "mach.thread_crashed";
          Logs.debug (fun m ->
              m "mach: thread %s crashed: %s" tcb.name (Printexc.to_string exn));
          tcb.state <- Dead;
          tcb.cont <- None);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Minvoke call ->
              Some
                (fun (kont : (a, unit) continuation) ->
                  tcb.cont <- Some kont;
                  handle t tcb call)
          | _ -> None);
    }

let timeslice = 5_000

let dispatch t (tcb : tcb) =
  if tcb.asid <> t.current_asid then begin
    kcharged t (fun () ->
        Tlb.set_context t.mach.Machine.tlb ~asid:tcb.asid;
        Machine.burn t.mach t.mach.Machine.arch.Arch.addr_space_switch_cost);
    t.current_asid <- tcb.asid
  end;
  tcb.state <- Running;
  Accounts.switch_to t.mach.Machine.accounts tcb.account;
  if tcb.burn_left > 0 then begin
    let step = min timeslice tcb.burn_left in
    Machine.burn t.mach step;
    tcb.burn_left <- tcb.burn_left - step;
    if tcb.state = Running then begin
      tcb.state <- Ready;
      enqueue t tcb
    end
  end
  else
    match tcb.body with
    | Some body ->
        tcb.body <- None;
        start_fiber t tcb body
    | None -> (
        match tcb.cont with
        | Some kont ->
            tcb.cont <- None;
            Effect.Deep.continue kont tcb.pending
        | None -> tcb.state <- Dead)

let rec pick t =
  match Queue.take_opt t.runq with
  | None -> None
  | Some tcb when tcb.state = Ready -> Some tcb
  | Some _ -> pick t

let run ?until ?(max_dispatches = 10_000_000) t =
  let dispatches = ref 0 in
  let stop_requested () = match until with Some f -> f () | None -> false in
  let rec loop () =
    if stop_requested () then Condition
    else
      match pick t with
      | Some tcb ->
          if !dispatches >= max_dispatches then Dispatch_limit
          else begin
            incr dispatches;
            dispatch t tcb;
            loop ()
          end
      | None ->
          if Engine.idle_to_next t.mach.Machine.engine then loop () else Idle
  in
  let reason = loop () in
  Accounts.switch_to t.mach.Machine.accounts "idle";
  reason
