(** A first-generation (Mach-style) microkernel variant.

    §3.1 traces the "liability inversion" accusation to "a particular
    design fault of Mach" being generalised onto all microkernels, and
    the performance half of the debate rests on the gap [HHL+97]
    measured between Mach-style and L4-style IPC. This kernel realises
    the first-generation design point: {e asynchronous, kernel-buffered,
    port-based} message passing — a send copies the message into a kernel
    buffer and returns; a receive copies it out — with port rights
    checking on every operation. Experiment E12 races it against the
    synchronous single-copy rendezvous of {!Kernel}.

    Threads are fibers performing the {!Mif} effect; scheduling is
    round-robin with the same timeslice discipline as {!Kernel}. The
    kernel is deliberately minimal (no devices, no pagers): enough to
    measure the IPC design point. *)

module Mif : sig
  type mport = int

  type mmsg = { mlabel : int; inline_words : int; ool_bytes : int; tag : int }
  (** [inline_words] travel in the message body; [ool_bytes] model
      out-of-line memory (copied — first-generation kernels moved it
      through kernel buffers or COW machinery we price as a copy). *)

  type mcall =
    | M_burn of int
    | M_port_create of { qlimit : int }
    | M_send of mport * mmsg  (** Asynchronous: blocks only when full. *)
    | M_recv of mport  (** Blocks when empty. *)
    | M_yield
    | M_exit

  type mreply =
    | MR_unit
    | MR_port of mport
    | MR_msg of mmsg
    | MR_error of string

  type _ Effect.t += Minvoke : mcall -> mreply Effect.t

  exception Mach_error of string

  val burn : int -> unit
  val port_create : ?qlimit:int -> unit -> mport
  val send : mport -> mmsg -> unit
  val recv : mport -> mmsg
  val yield : unit -> unit
  val exit : unit -> 'a
end

type t

val create : Vmk_hw.Machine.t -> t
(** Cost model: every syscall pays the hardware trap (first-generation
    kernels predate the sysenter fast paths) plus a longer kernel path;
    each message is copied twice (in and out) at the architecture's copy
    cost; port operations pay a rights-check. *)

val spawn : t -> name:string -> ?account:string -> (unit -> unit) -> int
(** Each thread gets its own address space (asid), so a cross-thread
    message also pays the address-space switch, as cross-task Mach IPC
    did. *)

type stop_reason = Idle | Condition | Dispatch_limit

val run : ?until:(unit -> bool) -> ?max_dispatches:int -> t -> stop_reason
val thread_count : t -> int
