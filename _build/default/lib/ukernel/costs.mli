(** Microkernel path-length constants.

    Cycle counts for the kernel's own code paths, on top of the
    architecture profile's hardware costs. Calibrated to the L4 literature:
    the short-IPC kernel path is a couple of hundred cycles, far below the
    hardware trap cost on x86. *)

val ipc_path : int
(** Kernel work for one IPC rendezvous carrying up to {!free_words}
    untyped words (no strings, no maps). *)

val free_words : int
(** Words transferred in registers for free. *)

val per_extra_word : int
(** Cycles per untyped word beyond {!free_words}. *)

val syscall_fixed : int
(** Kernel entry/exit bookkeeping around every system call, excluding the
    hardware trap cost. *)

val irq_to_ipc : int
(** Converting a hardware interrupt into an IPC message. *)

val icache_lines_ipc : int
(** I-cache lines the unified IPC path touches (experiment E9). *)
