(* realtime: the DROPS argument (§3.3) live.

   A periodic "control loop" runs beside a busy guest OS on both hosting
   structures. Under the microkernel it owns the top priority and its
   jobs complete on time; under the fair-share VMM its slices interleave
   with everyone else's and the completion lateness explodes.

     dune exec examples/realtime.exe *)

module Exp_e11 = Vmk_core.Exp_e11
module Table = Vmk_stats.Table

let () =
  let l4 = Exp_e11.l4_jitter ~quick:false in
  let vmm = Exp_e11.vmm_jitter ~quick:false in
  let table =
    Table.create
      ~header:
        [ "structure"; "activations"; "mean lateness (cyc)"; "max lateness (cyc)" ]
  in
  let row name (j : Exp_e11.jitter) =
    Table.add_row table
      [
        name;
        string_of_int j.Exp_e11.activations;
        Table.cellf "%.0f" j.Exp_e11.mean;
        Table.cellf "%.0f" j.Exp_e11.max;
      ]
  in
  row "l4: RT thread at priority 0" l4;
  row "vmm: RT domain, fair share" vmm;
  Format.printf "Periodic 30k-cycle job, 100k-cycle period, loaded system:@.@.%a@."
    Table.pp table;
  Format.printf
    "Strict priorities bound completion lateness to about one preemption@.";
  Format.printf
    "quantum; fair-share scheduling interleaves the compute domains into@.";
  Format.printf "every job — the DROPS case for microkernel hosting (§3.3).@."
