(* Quickstart: run the same mini-OS application on the three hosting
   structures the paper compares — native, Xen-style VMM, L4-style
   microkernel — and show where the cycles went.

     dune exec examples/quickstart.exe *)

module Scenario = Vmk_core.Scenario
module Apps = Vmk_workloads.Apps
module Table = Vmk_stats.Table

let () =
  (* The application: plain code against the mini-OS syscall ABI. It has
     no idea what is underneath it. *)
  let app () =
    Apps.mixed ~rounds:100 ~syscalls_per_round:10 ~work_per_round:20_000
      ~net_every:4 ~blk_every:10 () ()
  in
  let runs =
    [
      ("native", Scenario.run_native ~app ());
      ("xen-style", Scenario.run_xen ~app ());
      ("l4-style", Scenario.run_l4 ~app ());
    ]
  in
  let table =
    Table.create ~header:[ "structure"; "busy cycles"; "vs native"; "accounts" ]
  in
  let native_busy =
    (List.assoc "native" runs).Scenario.busy_cycles
  in
  List.iter
    (fun (name, outcome) ->
      let accounts =
        outcome.Scenario.accounts
        |> List.map (fun (acct, cycles) -> Printf.sprintf "%s:%Ld" acct cycles)
        |> String.concat " "
      in
      Table.add_row table
        [
          name;
          Int64.to_string outcome.Scenario.busy_cycles;
          Table.cellf "%.2fx"
            (Int64.to_float outcome.Scenario.busy_cycles
            /. Int64.to_float native_busy);
          accounts;
        ])
    runs;
  Format.printf "One workload, three hosting structures:@.@.%a@." Table.pp table;
  Format.printf
    "The identical application ran unmodified on all three structures;@.";
  Format.printf
    "the cost difference is purely the hosting architecture. Run `vmk all`@.";
  Format.printf "for the full claim-by-claim reproduction.@."
