(* portability: one component, nine processor platforms.

   Runs the identical client/server/pager component (the same OCaml
   closures, zero architecture conditionals) on every architecture
   profile, then probes where the VMM's trap-gate shortcut exists.

     dune exec examples/portability.exe *)

module Arch = Vmk_hw.Arch
module Machine = Vmk_hw.Machine
module Kernel = Vmk_ukernel.Kernel
module Sysif = Vmk_ukernel.Sysif
module Table = Vmk_stats.Table

let pingpong arch =
  let mach = Machine.create ~arch ~seed:5L () in
  let k = Kernel.create mach in
  let done_ = ref 0 in
  let server =
    Kernel.spawn k ~name:"server" (fun () ->
        let rec loop (c, _) = loop (Sysif.reply_wait c (Sysif.msg 0)) in
        loop (Sysif.recv Sysif.Any))
  in
  let _client =
    Kernel.spawn k ~name:"client" (fun () ->
        for _ = 1 to 100 do
          ignore (Sysif.call server (Sysif.msg 1));
          incr done_
        done)
  in
  ignore (Kernel.run k);
  (!done_, Machine.now mach)

let () =
  let table =
    Table.create
      ~header:
        [ "platform"; "ops"; "cycles"; "TLB"; "VMM syscall shortcut?" ]
  in
  List.iter
    (fun arch ->
      let ops, cycles = pingpong arch in
      Table.add_row table
        [
          arch.Arch.name;
          string_of_int ops;
          Int64.to_string cycles;
          (if arch.Arch.tlb_tagged then "tagged" else "untagged");
          (if arch.Arch.has_trap_gates && arch.Arch.has_segmentation then
             "yes (IA-32 only)"
           else "no");
        ])
    Arch.all;
  Format.printf "%a@." Table.pp table;
  Format.printf
    "The component ran unmodified everywhere; costs differ, interfaces do@.";
  Format.printf
    "not. The VMM's flagship syscall optimisation exists on one platform.@."
