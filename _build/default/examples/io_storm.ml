(* io_storm: the Cherkasova & Gardner measurement, live.

   Streams packets through the Xen-style split network driver at a fixed
   rate across a packet-size sweep and shows that Dom0's per-packet CPU
   cost tracks page flips, not bytes — then repeats with the copying
   backend to show the shape change.

     dune exec examples/io_storm.exe *)

module Exp_e3 = Vmk_core.Exp_e3
module Net_channel = Vmk_vmm.Net_channel
module Table = Vmk_stats.Table

let show title points =
  let table =
    Table.create
      ~header:[ "packet B"; "flips"; "dom0 cyc/pkt"; "guest cyc/pkt"; "dom0 share" ]
  in
  List.iter
    (fun (p : Exp_e3.point) ->
      let per c = Int64.to_float c /. float_of_int (max 1 p.Exp_e3.packets) in
      Table.add_row table
        [
          string_of_int p.Exp_e3.packet_len;
          string_of_int p.Exp_e3.flips;
          Table.cellf "%.0f" (per p.Exp_e3.dom0_cycles);
          Table.cellf "%.0f" (per p.Exp_e3.guest_cycles);
          Table.cellf "%.1f%%" (100.0 *. p.Exp_e3.dom0_share);
        ])
    points;
  Format.printf "%s@.%a@." title Table.pp table

let () =
  let sizes = [ 64; 256; 512; 1024; 1460 ] in
  let flip =
    Exp_e3.sweep ~mode:Net_channel.Flip ~packets:150 ~period:15_000L ~sizes
  in
  let copy =
    Exp_e3.sweep ~mode:Net_channel.Copy ~packets:150 ~period:15_000L ~sizes
  in
  show "Page-flip receive path (Xen 2.x style):" flip;
  show "Copy receive path (ablation):" copy;
  Format.printf
    "Flip mode: Dom0 cost per packet is flat across sizes — proportional to@.";
  Format.printf
    "flips, 'irrespective of the message size' [CG05]. Copy mode: it grows@.";
  Format.printf "with the byte count.@."
