examples/syscall_paths.mli:
