examples/io_storm.mli:
