examples/quickstart.ml: Format Int64 List Printf String Vmk_core Vmk_stats Vmk_workloads
