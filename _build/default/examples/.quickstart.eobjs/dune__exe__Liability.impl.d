examples/liability.ml: Format List Vmk_core Vmk_stats
