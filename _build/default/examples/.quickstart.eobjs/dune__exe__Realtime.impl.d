examples/realtime.ml: Format Vmk_core Vmk_stats
