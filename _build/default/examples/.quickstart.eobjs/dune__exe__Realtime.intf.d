examples/realtime.mli:
