examples/liability.mli:
