examples/quickstart.mli:
