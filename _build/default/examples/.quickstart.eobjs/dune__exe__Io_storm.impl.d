examples/io_storm.ml: Format Int64 List Vmk_core Vmk_stats Vmk_vmm
