examples/portability.ml: Format Int64 List Vmk_hw Vmk_stats Vmk_ukernel
