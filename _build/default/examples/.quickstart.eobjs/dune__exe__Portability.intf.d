examples/portability.mli:
