examples/syscall_paths.ml: Format List Vmk_core Vmk_stats
