(* liability: §3.1's argument as a fault-injection demo.

   Kills the Parallax storage domain under the VMM, then the block driver
   server under the microkernel, and prints who died with them. The
   paper's point: the blast radii are the same — "we fail to see the
   difference between a VMM and a microkernel in this respect."

     dune exec examples/liability.exe *)

module Exp_e6 = Vmk_core.Exp_e6
module Table = Vmk_stats.Table

let show title fates =
  let table =
    Table.create ~header:[ "participant"; "role"; "completed"; "errors"; "fate" ]
  in
  List.iter
    (fun (f : Exp_e6.fate) ->
      Table.add_row table
        [
          f.Exp_e6.participant;
          f.Exp_e6.role;
          string_of_int f.Exp_e6.completed;
          string_of_int f.Exp_e6.errors;
          (if f.Exp_e6.failed then "FAILED" else "survived");
        ])
    fates;
  Format.printf "%s@.%a@." title Table.pp table

let () =
  show "VMM stack — Parallax storage domain killed mid-run:"
    (Exp_e6.vmm_blast_radius ~quick:true ~kill:`Parallax);
  show "Microkernel stack — block driver server killed mid-run:"
    (Exp_e6.l4_blast_radius ~quick:true ~kill:`Blk_server);
  show "VMM stack — Dom0 (the super-VM) killed mid-run:"
    (Exp_e6.vmm_blast_radius ~quick:true ~kill:`Dom0);
  Format.printf
    "Killing the disaggregated service hurts exactly its clients in both@.";
  Format.printf
    "systems; killing the consolidated Dom0 takes every I/O path down —@.";
  Format.printf "the 'single point of failure' §2.2 warns about.@."
