(* syscall_paths: watch glibc break Xen's fast system-call path.

   Null-syscall cost on the five configurations of experiment E4. The
   int80 trap-gate shortcut works only while every live segment excludes
   the hypervisor hole; loading a glibc-style TLS descriptor into GS
   silently degrades every subsequent syscall to the bounce path.

     dune exec examples/syscall_paths.exe *)

module Exp_e4 = Vmk_core.Exp_e4
module Table = Vmk_stats.Table

let () =
  let rows = Exp_e4.measure ~iterations:1000 () in
  let table =
    Table.create
      ~header:
        [ "configuration"; "cycles/syscall"; "vs native"; "fast"; "bounced" ]
  in
  List.iter
    (fun (r : Exp_e4.row) ->
      Table.add_row table
        [
          r.Exp_e4.config;
          Table.cellf "%.0f" r.Exp_e4.cycles_per_syscall;
          Table.cellf "%.2fx" r.Exp_e4.relative_to_native;
          string_of_int r.Exp_e4.fast_count;
          string_of_int r.Exp_e4.bounce_count;
        ])
    rows;
  Format.printf "%a@." Table.pp table;
  Format.printf
    "With TLS loaded the shortcut never fires again: every syscall is an@.";
  Format.printf
    "IPC-equivalent round trip through the VMM — §3.2's point exactly.@."
