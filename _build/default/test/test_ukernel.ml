(* Tests for the L4-style microkernel: scheduling, IPC rendezvous,
   map/grant delegation, pager protocol, interrupts-as-IPC, user-level
   driver servers, fault injection. *)

open Vmk_ukernel
module Machine = Vmk_hw.Machine
module Frame = Vmk_hw.Frame
module Nic = Vmk_hw.Nic
module Addr = Vmk_hw.Addr
module Counter = Vmk_trace.Counter
module Accounts = Vmk_trace.Accounts

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let fresh () =
  let mach = Machine.create ~seed:42L () in
  (mach, Kernel.create mach)

let run_idle k =
  match Kernel.run k with
  | Kernel.Idle -> ()
  | Kernel.Condition -> Alcotest.fail "unexpected Condition stop"
  | Kernel.Dispatch_limit -> Alcotest.fail "dispatch limit hit (livelock?)"

(* --- basics --- *)

let test_spawn_runs_body () =
  let _mach, k = fresh () in
  let ran = ref false in
  let _tid = Kernel.spawn k ~name:"t" (fun () -> ran := true) in
  run_idle k;
  check_bool "body ran" true !ran;
  check_int "no live threads" 0 (Kernel.thread_count k)

let test_burn_advances_clock_and_charges () =
  let mach, k = fresh () in
  let _ = Kernel.spawn k ~name:"worker" (fun () -> Sysif.burn 1234) in
  run_idle k;
  Alcotest.(check int64) "charged to thread account" 1234L
    (Accounts.balance mach.Machine.accounts "worker");
  check_bool "clock advanced" true (Machine.now mach >= 1234L)

let test_my_tid () =
  let _mach, k = fresh () in
  let seen = ref (-1) in
  let tid = Kernel.spawn k ~name:"t" (fun () -> seen := Sysif.my_tid ()) in
  run_idle k;
  check_int "my_tid" tid !seen

let test_exit_stops_body () =
  let _mach, k = fresh () in
  let after_exit = ref false in
  let _ =
    Kernel.spawn k ~name:"t" (fun () ->
        if true then Sysif.exit ();
        after_exit := true)
  in
  run_idle k;
  check_bool "code after exit unreached" false !after_exit

let test_crash_is_contained () =
  let mach, k = fresh () in
  let other_ran = ref false in
  let _ = Kernel.spawn k ~name:"crasher" (fun () -> failwith "bug") in
  let _ = Kernel.spawn k ~name:"other" (fun () -> other_ran := true) in
  run_idle k;
  check_bool "other thread unaffected" true !other_ran;
  check_int "crash counted" 1
    (Counter.get mach.Machine.counters "uk.thread.crashed")

(* --- IPC --- *)

let test_send_recv_receiver_first () =
  let _mach, k = fresh () in
  let got = ref (-1, -1) in
  let rx =
    Kernel.spawn k ~name:"rx" (fun () ->
        let src, m = Sysif.recv Sysif.Any in
        got := (src, m.Sysif.label))
  in
  ignore rx;
  let tx = Kernel.spawn k ~name:"tx" (fun () -> Sysif.send 1 (Sysif.msg 77)) in
  ignore tx;
  run_idle k;
  let src, label = !got in
  check_int "label" 77 label;
  check_bool "sender tid" true (src = tx)

let test_send_recv_sender_first () =
  let _mach, k = fresh () in
  let got = ref (-1) in
  (* Sender spawns first so it blocks in send before rx runs. *)
  let _tx =
    Kernel.spawn k ~name:"tx" ~priority:2 (fun () -> Sysif.send 2 (Sysif.msg 5))
  in
  let _rx =
    Kernel.spawn k ~name:"rx" ~priority:5 (fun () ->
        let _, m = Sysif.recv Sysif.Any in
        got := m.Sysif.label)
  in
  run_idle k;
  check_int "delivered" 5 !got

let test_recv_filter_from () =
  let _mach, k = fresh () in
  let order = ref [] in
  let rx =
    Kernel.spawn k ~name:"rx" ~priority:6 (fun () ->
        (* Wait specifically for the second sender even though the first
           queued earlier. *)
        let src3, _ = Sysif.recv (Sysif.From 3) in
        order := src3 :: !order;
        let src2, _ = Sysif.recv (Sysif.From 2) in
        order := src2 :: !order)
  in
  ignore rx;
  let a = Kernel.spawn k ~name:"a" ~priority:1 (fun () -> Sysif.send 1 (Sysif.msg 0)) in
  let b = Kernel.spawn k ~name:"b" ~priority:2 (fun () -> Sysif.send 1 (Sysif.msg 0)) in
  run_idle k;
  Alcotest.(check (list int)) "filtered order" [ a; b ] !order

let test_call_reply_wait_rpc () =
  let _mach, k = fresh () in
  let replies = ref [] in
  let server =
    Kernel.spawn k ~name:"server" (fun () ->
        let rec loop (client, (m : Sysif.msg)) =
          let reply = Sysif.msg (m.Sysif.label * 2) in
          loop (Sysif.reply_wait client reply)
        in
        loop (Sysif.recv Sysif.Any))
  in
  let spawn_client n =
    ignore
      (Kernel.spawn k ~name:(Printf.sprintf "c%d" n) (fun () ->
           let _, reply = Sysif.call server (Sysif.msg n) in
           replies := reply.Sysif.label :: !replies))
  in
  spawn_client 10;
  spawn_client 20;
  ignore (Kernel.run k ~until:(fun () -> List.length !replies = 2));
  Alcotest.(check (list int)) "doubled" [ 40; 20 ] !replies

let test_send_as_reply () =
  let _mach, k = fresh () in
  let got = ref 0 in
  let server =
    Kernel.spawn k ~name:"server" (fun () ->
        let client, _ = Sysif.recv Sysif.Any in
        (* Plain send to a caller acts as the reply. *)
        Sysif.send client (Sysif.msg 99))
  in
  let _client =
    Kernel.spawn k ~name:"client" (fun () ->
        let _, reply = Sysif.call server (Sysif.msg 1) in
        got := reply.Sysif.label)
  in
  run_idle k;
  check_int "reply via send" 99 !got

let test_ipc_to_dead_partner_errors () =
  let _mach, k = fresh () in
  let error = ref None in
  let ghost = Kernel.spawn k ~name:"ghost" (fun () -> ()) in
  let _ =
    Kernel.spawn k ~name:"caller" ~priority:7 (fun () ->
        try ignore (Sysif.call ghost (Sysif.msg 0))
        with Sysif.Ipc_error e -> error := Some e)
  in
  run_idle k;
  check_bool "dead partner" true (!error = Some Sysif.Dead_partner)

let test_kill_server_unblocks_clients () =
  let _mach, k = fresh () in
  let client_error = ref None in
  let server =
    Kernel.spawn k ~name:"server" (fun () ->
        ignore (Sysif.recv (Sysif.From 999)) (* never satisfied *))
  in
  let _client =
    Kernel.spawn k ~name:"client" (fun () ->
        try ignore (Sysif.call server (Sysif.msg 1))
        with Sysif.Ipc_error e -> client_error := Some e)
  in
  ignore
    (Kernel.run k ~until:(fun () -> Kernel.state_name k server = "blocked-recv"));
  Kernel.kill k server;
  run_idle k;
  check_bool "client got Dead_partner" true (!client_error = Some Sysif.Dead_partner);
  check_string "server dead" "dead" (Kernel.state_name k server)

let test_string_item_charges_copy () =
  let mach, k = fresh () in
  let rx = Kernel.spawn k ~name:"rx" (fun () -> ignore (Sysif.recv Sysif.Any)) in
  let _tx =
    Kernel.spawn k ~name:"tx" (fun () ->
        Sysif.send rx
          (Sysif.msg 1 ~items:[ Sysif.Str { bytes = 4096; tag = 5 } ]))
  in
  run_idle k;
  check_int "bytes counted" 4096 (Counter.get mach.Machine.counters "uk.ipc.bytes");
  check_int "one rendezvous" 1
    (Counter.get mach.Machine.counters "uk.ipc.rendezvous")

let test_cross_space_ipc_costs_more_than_same_space () =
  let measure ~same_space =
    let mach, k = fresh () in
    let iterations = 50 in
    let server_body () =
      let rec loop (c, _) = loop (Sysif.reply_wait c (Sysif.msg 0)) in
      loop (Sysif.recv Sysif.Any)
    in
    let client_body server () =
      for _ = 1 to iterations do
        ignore (Sysif.call server (Sysif.msg 1))
      done
    in
    if same_space then begin
      let _parent =
        Kernel.spawn k ~name:"pair" (fun () ->
            let server =
              Sysif.spawn
                {
                  Sysif.name = "server";
                  priority = Kernel.default_priority;
                  same_space = true;
                  pager = None;
                  body = server_body;
                }
            in
            client_body server ())
      in
      run_idle k
    end
    else begin
      let server = Kernel.spawn k ~name:"server" server_body in
      let _client = Kernel.spawn k ~name:"client" (client_body server) in
      run_idle k
    end;
    Machine.now mach
  in
  let same = measure ~same_space:true in
  let cross = measure ~same_space:false in
  check_bool
    (Printf.sprintf "cross-space (%Ld) > same-space (%Ld) on untagged x86" cross
       same)
    true
    (Int64.compare cross same > 0)

(* --- IPC timeouts --- *)

let test_recv_timeout_fires () =
  let mach, k = fresh () in
  let result = ref None in
  let _ =
    Kernel.spawn k ~name:"t" (fun () ->
        match Sysif.recv ~timeout:5_000L Sysif.Any with
        | _ -> result := Some `Got
        | exception Sysif.Ipc_error e -> result := Some (`Err e))
  in
  run_idle k;
  check_bool "timed out" true (!result = Some (`Err Sysif.Timeout));
  check_bool "clock passed deadline" true (Machine.now mach >= 5_000L);
  check_int "counted" 1 (Counter.get mach.Machine.counters "uk.ipc.timeout")

let test_call_timeout_on_busy_server () =
  let _mach, k = fresh () in
  let result = ref None in
  let server =
    Kernel.spawn k ~name:"server" (fun () ->
        (* Never receives: just burns forever-ish. *)
        Sysif.burn 10_000_000)
  in
  let _client =
    Kernel.spawn k ~name:"client" (fun () ->
        try ignore (Sysif.call ~timeout:20_000L server (Sysif.msg 1))
        with Sysif.Ipc_error e -> result := Some e)
  in
  run_idle k;
  check_bool "call timed out" true (!result = Some Sysif.Timeout)

let test_timeout_cancelled_by_delivery () =
  let mach, k = fresh () in
  let got = ref None in
  let rx =
    Kernel.spawn k ~name:"rx" (fun () ->
        match Sysif.recv ~timeout:1_000_000L Sysif.Any with
        | _, m -> got := Some m.Sysif.label
        | exception Sysif.Ipc_error _ -> got := Some (-1))
  in
  let _tx =
    Kernel.spawn k ~name:"tx" (fun () ->
        Sysif.burn 10_000;
        Sysif.send rx (Sysif.msg 7))
  in
  run_idle k;
  check_bool "delivered, not timed out" true (!got = Some 7);
  check_int "no timeout counted" 0
    (Counter.get mach.Machine.counters "uk.ipc.timeout")

let test_timed_out_sender_not_delivered_later () =
  let _mach, k = fresh () in
  let sender_result = ref None in
  let server_got = ref [] in
  let server =
    Kernel.spawn k ~name:"server" (fun () ->
        (* Sleep past the sender's timeout, then receive whatever is
           queued: the timed-out sender must NOT be among it. *)
        Sysif.sleep 50_000L;
        match Sysif.recv ~timeout:20_000L Sysif.Any with
        | src, _ -> server_got := src :: !server_got
        | exception Sysif.Ipc_error _ -> ())
  in
  let _impatient =
    Kernel.spawn k ~name:"impatient" (fun () ->
        try Sysif.send ~timeout:10_000L server (Sysif.msg 1)
        with Sysif.Ipc_error e -> sender_result := Some e)
  in
  run_idle k;
  check_bool "sender timed out" true (!sender_result = Some Sysif.Timeout);
  check_bool "server never saw the stale sender" true (!server_got = [])

let test_call_timeout_covers_slow_reply () =
  let _mach, k = fresh () in
  let result = ref None in
  let server =
    Kernel.spawn k ~name:"server" (fun () ->
        let _client, _m = Sysif.recv Sysif.Any in
        (* Rendezvous succeeded; now stall past the caller's deadline. *)
        Sysif.burn 100_000)
  in
  let _client =
    Kernel.spawn k ~name:"client" (fun () ->
        try ignore (Sysif.call ~timeout:30_000L server (Sysif.msg 1))
        with Sysif.Ipc_error e -> result := Some e)
  in
  run_idle k;
  check_bool "reply phase timed out" true (!result = Some Sysif.Timeout)

(* --- memory / pager --- *)

let test_alloc_and_touch () =
  let _mach, k = fresh () in
  let ok = ref false in
  let _ =
    Kernel.spawn k ~name:"t" (fun () ->
        let fp = Sysif.alloc_pages 4 in
        Sysif.touch ~addr:(Addr.of_vpn fp.Sysif.base_vpn)
          ~len:(4 * Addr.page_size) ~write:true;
        ok := true)
  in
  run_idle k;
  check_bool "touch after alloc" true !ok

let test_touch_unmapped_without_pager_fails () =
  let _mach, k = fresh () in
  let error = ref None in
  let _ =
    Kernel.spawn k ~name:"t" (fun () ->
        try Sysif.touch ~addr:(Addr.of_vpn 0x9999) ~len:8 ~write:false
        with Sysif.Ipc_error e -> error := Some e)
  in
  run_idle k;
  check_bool "unhandled fault" true
    (match !error with Some (Sysif.Page_fault_unhandled _) -> true | _ -> false)

let test_pager_resolves_faults () =
  let mach, k = fresh () in
  let ok = ref false in
  let pager = Kernel.spawn k ~name:"pager" (Pager.body ~pool_pages:8) in
  let _client =
    Kernel.spawn k ~name:"client" ~pager (fun () ->
        let addr = Addr.of_vpn 0x5000 in
        Sysif.touch ~addr ~len:(2 * Addr.page_size) ~write:true;
        (* Second touch of the same pages must not fault again. *)
        Sysif.touch ~addr ~len:(2 * Addr.page_size) ~write:true;
        ok := true)
  in
  ignore (Kernel.run k ~until:(fun () -> !ok));
  check_bool "client completed" true !ok;
  check_int "two fault IPCs (one per page)" 2
    (Counter.get mach.Machine.counters "uk.fault.ipc");
  check_int "pager served two pages" 2 (Pager.served ())

let test_pager_pool_exhaustion_fails_client () =
  let _mach, k = fresh () in
  let error = ref None in
  let pager = Kernel.spawn k ~name:"pager" (Pager.body ~pool_pages:1) in
  let _client =
    Kernel.spawn k ~name:"client" ~pager (fun () ->
        try
          Sysif.touch ~addr:(Addr.of_vpn 0x5000) ~len:(3 * Addr.page_size)
            ~write:false
        with Sysif.Ipc_error e -> error := Some e)
  in
  run_idle k;
  check_bool "fault unhandled after pool dry" true
    (match !error with Some (Sysif.Page_fault_unhandled _) -> true | _ -> false)

let test_dead_pager_fails_faulting_client_only () =
  let _mach, k = fresh () in
  let victim_error = ref None in
  let bystander_ok = ref false in
  let pager = Kernel.spawn k ~name:"pager" (Pager.body ~pool_pages:8) in
  Kernel.kill k pager;
  let _victim =
    Kernel.spawn k ~name:"victim" ~pager (fun () ->
        try Sysif.touch ~addr:(Addr.of_vpn 0x5000) ~len:8 ~write:false
        with Sysif.Ipc_error e -> victim_error := Some e)
  in
  let _bystander =
    Kernel.spawn k ~name:"bystander" (fun () ->
        Sysif.burn 100;
        bystander_ok := true)
  in
  run_idle k;
  check_bool "victim failed" true (!victim_error <> None);
  check_bool "bystander fine" true !bystander_ok

let test_map_item_delegates_and_unmap_revokes () =
  let _mach, k = fresh () in
  let b_first_touch = ref false in
  let b_second_error = ref None in
  let a_done = ref false in
  let b =
    Kernel.spawn k ~name:"b" (fun () ->
        let src, m = Sysif.recv Sysif.Any in
        let fpage, _ = List.hd (Sysif.map_items m) in
        let addr = Addr.of_vpn fpage.Sysif.base_vpn in
        Sysif.touch ~addr ~len:Addr.page_size ~write:false;
        b_first_touch := true;
        (* Tell A we touched it; A then revokes. *)
        Sysif.send src (Sysif.msg 0);
        let _ = Sysif.recv (Sysif.From src) in
        try Sysif.touch ~addr ~len:Addr.page_size ~write:false
        with Sysif.Ipc_error e -> b_second_error := Some e)
  in
  let _a =
    Kernel.spawn k ~name:"a" (fun () ->
        let fp = Sysif.alloc_pages 1 in
        let me = Sysif.my_tid () in
        ignore me;
        Sysif.send b
          (Sysif.msg 1
             ~items:[ Sysif.Map { fpage = fp; grant = false } ]);
        let _ = Sysif.recv (Sysif.From b) in
        Sysif.unmap fp;
        Sysif.send b (Sysif.msg 2);
        a_done := true)
  in
  run_idle k;
  check_bool "b touched the delegated page" true !b_first_touch;
  check_bool "a completed" true !a_done;
  check_bool "b's access revoked" true
    (match !b_second_error with
    | Some (Sysif.Page_fault_unhandled _) -> true
    | _ -> false)

(* --- scheduling --- *)

let test_priorities_run_higher_first () =
  let _mach, k = fresh () in
  let order = ref [] in
  let _low =
    Kernel.spawn k ~name:"low" ~priority:7 (fun () -> order := "low" :: !order)
  in
  let _high =
    Kernel.spawn k ~name:"high" ~priority:0 (fun () -> order := "high" :: !order)
  in
  run_idle k;
  Alcotest.(check (list string)) "high first" [ "low"; "high" ] !order

let test_yield_round_robin () =
  let _mach, k = fresh () in
  let log = ref [] in
  let body tag () =
    for _ = 1 to 3 do
      log := tag :: !log;
      Sysif.yield ()
    done
  in
  let _a = Kernel.spawn k ~name:"a" (body "a") in
  let _b = Kernel.spawn k ~name:"b" (body "b") in
  run_idle k;
  Alcotest.(check (list string)) "alternating"
    [ "a"; "b"; "a"; "b"; "a"; "b" ]
    (List.rev !log)

let test_sleep_wakes_at_deadline () =
  let mach, k = fresh () in
  let woke_at = ref 0L in
  let _ =
    Kernel.spawn k ~name:"sleeper" (fun () ->
        Sysif.sleep 10_000L;
        woke_at := Machine.now mach)
  in
  run_idle k;
  check_bool "slept" true (Int64.compare !woke_at 10_000L >= 0)

let test_dispatch_limit_detects_livelock () =
  let _mach, k = fresh () in
  let _ =
    Kernel.spawn k ~name:"spinner" (fun () ->
        while true do
          Sysif.yield ()
        done)
  in
  check_bool "limit" true (Kernel.run k ~max_dispatches:100 = Kernel.Dispatch_limit)

let test_run_until_condition () =
  let _mach, k = fresh () in
  let count = ref 0 in
  let _ =
    Kernel.spawn k ~name:"worker" (fun () ->
        while true do
          incr count;
          Sysif.burn 10
        done)
  in
  check_bool "condition" true
    (Kernel.run k ~until:(fun () -> !count >= 5) = Kernel.Condition);
  check_bool "stopped promptly" true (!count < 10)

(* --- interrupts --- *)

let test_irq_delivered_as_ipc () =
  let mach, k = fresh () in
  let got_line = ref (-1) in
  let _handler =
    Kernel.spawn k ~name:"handler" (fun () ->
        Sysif.irq_attach Machine.nic_irq;
        let src, m = Sysif.recv Sysif.Any in
        if Sysif.is_irq_tid src then
          got_line := (Sysif.words m).(0))
  in
  (* Inject a packet (needs a posted buffer to raise the irq). *)
  Vmk_sim.Engine.after mach.Machine.engine 100L (fun () ->
      Nic.post_rx_buffer mach.Machine.nic
        (Frame.alloc mach.Machine.frames ~owner:"x" ());
      Nic.inject_rx mach.Machine.nic ~tag:1 ~len:64);
  run_idle k;
  check_int "line in message" Machine.nic_irq !got_line;
  check_int "delivered counter" 1
    (Counter.get mach.Machine.counters "uk.irq.delivered")

(* --- driver servers --- *)

let test_net_server_tx () =
  let mach, k = fresh () in
  let sent = ref false in
  let server =
    Kernel.spawn k ~name:"net" ~account:Net_server.account (fun () ->
        Net_server.body mach ())
  in
  let _client =
    Kernel.spawn k ~name:"client" (fun () ->
        let _, reply =
          Sysif.call server
            (Sysif.msg Proto.net_send
               ~items:[ Sysif.Str { bytes = 512; tag = 31 } ])
        in
        if reply.Sysif.label = Proto.ok then sent := true)
  in
  ignore
    (Kernel.run k
       ~until:(fun () -> Nic.tx_completed mach.Machine.nic = 1 && !sent));
  check_bool "client acked" true !sent;
  check_int "wire saw the packet" 512 (Nic.tx_bytes mach.Machine.nic)

let test_net_server_rx_blocks_until_packet () =
  let mach, k = fresh () in
  let received = ref None in
  let server =
    Kernel.spawn k ~name:"net" ~account:Net_server.account (fun () ->
        Net_server.body mach ())
  in
  let _client =
    Kernel.spawn k ~name:"client" (fun () ->
        let _, reply = Sysif.call server (Sysif.msg Proto.net_recv) in
        received :=
          Some (Sysif.str_total reply, Option.value (Sysif.first_str_tag reply) ~default:0))
  in
  (* Packet arrives later, after the client has blocked. *)
  Vmk_sim.Engine.after mach.Machine.engine 50_000L (fun () ->
      Nic.inject_rx mach.Machine.nic ~tag:77 ~len:1460);
  ignore (Kernel.run k ~until:(fun () -> !received <> None));
  check_bool "payload delivered" true (!received = Some (1460, 77))

let test_net_server_death_fails_client () =
  let mach, k = fresh () in
  let client_error = ref None in
  let server =
    Kernel.spawn k ~name:"net" ~account:Net_server.account (fun () ->
        Net_server.body mach ())
  in
  let _client =
    Kernel.spawn k ~name:"client" (fun () ->
        try ignore (Sysif.call server (Sysif.msg Proto.net_recv))
        with Sysif.Ipc_error e -> client_error := Some e)
  in
  ignore
    (Kernel.run k ~until:(fun () -> Kernel.state_name k server = "blocked-recv"));
  Kernel.kill k server;
  run_idle k;
  check_bool "client unblocked with error" true
    (!client_error = Some Sysif.Dead_partner)

let test_blk_server_roundtrip () =
  let mach, k = fresh () in
  let read_back = ref None in
  let server =
    Kernel.spawn k ~name:"blk" ~account:Blk_server.account (fun () ->
        Blk_server.body mach ())
  in
  let _client =
    Kernel.spawn k ~name:"client" (fun () ->
        let _, w =
          Sysif.call server
            (Sysif.msg Proto.blk_write
               ~items:[ Sysif.Words [| 9 |]; Sysif.Str { bytes = 512; tag = 123 } ])
        in
        assert (w.Sysif.label = Proto.ok);
        let _, r =
          Sysif.call server
            (Sysif.msg Proto.blk_read ~items:[ Sysif.Words [| 9; 512 |] ])
        in
        read_back := Sysif.first_str_tag r)
  in
  ignore (Kernel.run k ~until:(fun () -> !read_back <> None));
  check_bool "tag persisted through server" true (!read_back = Some 123);
  check_int "disk wrote" 1 (Vmk_hw.Disk.writes_total mach.Machine.disk);
  check_int "disk read" 1 (Vmk_hw.Disk.reads_total mach.Machine.disk)

(* --- mapdb unit/property tests --- *)

let mapdb_fixture () =
  let installed : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let db =
    Mapdb.create
      ~install:(fun ~asid ~vpn _frame ~writable:_ ->
        Hashtbl.replace installed (asid, vpn) ())
      ~remove:(fun ~asid ~vpn -> Hashtbl.remove installed (asid, vpn))
  in
  (db, installed)

let dummy_frame =
  let table = Frame.create ~frames:4 in
  Frame.alloc table ~owner:"test" ()

let test_mapdb_map_and_recursive_unmap () =
  let db, installed = mapdb_fixture () in
  Mapdb.insert_root db ~asid:1 ~vpn:10 dummy_frame ~writable:true;
  check_bool "map 1->2" true
    (Mapdb.map db ~src_asid:1 ~src_vpn:10 ~dst_asid:2 ~dst_vpn:10
       ~writable:true ~grant:false
    = Ok ());
  check_bool "map 2->3" true
    (Mapdb.map db ~src_asid:2 ~src_vpn:10 ~dst_asid:3 ~dst_vpn:20
       ~writable:true ~grant:false
    = Ok ());
  check_int "three mappings" 3 (Mapdb.mapping_count db);
  check_bool "depth of grandchild" true (Mapdb.depth db ~asid:3 ~vpn:20 = Some 2);
  (* Revoking from the root removes both descendants but not the root. *)
  check_int "revoked" 2 (Mapdb.unmap db ~asid:1 ~vpn:10 ~self:false);
  check_int "root remains" 1 (Mapdb.mapping_count db);
  check_bool "ptes removed" true (not (Hashtbl.mem installed (3, 20)))

let test_mapdb_grant_moves_mapping () =
  let db, installed = mapdb_fixture () in
  Mapdb.insert_root db ~asid:1 ~vpn:5 dummy_frame ~writable:true;
  check_bool "grant" true
    (Mapdb.map db ~src_asid:1 ~src_vpn:5 ~dst_asid:2 ~dst_vpn:7 ~writable:true
       ~grant:true
    = Ok ());
  check_bool "source gone" true (Mapdb.lookup db ~asid:1 ~vpn:5 = None);
  check_bool "dest present" true (Mapdb.lookup db ~asid:2 ~vpn:7 <> None);
  check_bool "dest is now a root" true (Mapdb.depth db ~asid:2 ~vpn:7 = Some 0);
  check_bool "source pte removed" true (not (Hashtbl.mem installed (1, 5)))

let test_mapdb_writable_only_downgrades () =
  let db, _ = mapdb_fixture () in
  Mapdb.insert_root db ~asid:1 ~vpn:5 dummy_frame ~writable:false;
  check_bool "map ro source" true
    (Mapdb.map db ~src_asid:1 ~src_vpn:5 ~dst_asid:2 ~dst_vpn:5 ~writable:true
       ~grant:false
    = Ok ());
  (* The destination must not have gained write access; verified through
     the kernel path in test_map_item_delegates (ro enforcement is in the
     install callback's writable flag, tracked by Mapdb internally). *)
  check_bool "further delegation ok" true
    (Mapdb.map db ~src_asid:2 ~src_vpn:5 ~dst_asid:3 ~dst_vpn:5 ~writable:true
       ~grant:false
    = Ok ())

let test_mapdb_errors () =
  let db, _ = mapdb_fixture () in
  Mapdb.insert_root db ~asid:1 ~vpn:5 dummy_frame ~writable:true;
  check_bool "self map" true
    (Mapdb.map db ~src_asid:1 ~src_vpn:5 ~dst_asid:1 ~dst_vpn:5 ~writable:true
       ~grant:false
    = Error `Self_map);
  check_bool "unmapped source" true
    (Mapdb.map db ~src_asid:1 ~src_vpn:99 ~dst_asid:2 ~dst_vpn:5 ~writable:true
       ~grant:false
    = Error `Source_not_mapped);
  ignore
    (Mapdb.map db ~src_asid:1 ~src_vpn:5 ~dst_asid:2 ~dst_vpn:5 ~writable:true
       ~grant:false);
  check_bool "occupied dest" true
    (Mapdb.map db ~src_asid:1 ~src_vpn:5 ~dst_asid:2 ~dst_vpn:5 ~writable:true
       ~grant:false
    = Error `Dest_occupied)

let test_mapdb_unmap_space () =
  let db, installed = mapdb_fixture () in
  Mapdb.insert_root db ~asid:1 ~vpn:1 dummy_frame ~writable:true;
  Mapdb.insert_root db ~asid:1 ~vpn:2 dummy_frame ~writable:true;
  ignore
    (Mapdb.map db ~src_asid:1 ~src_vpn:1 ~dst_asid:2 ~dst_vpn:1 ~writable:true
       ~grant:false);
  let removed = Mapdb.unmap_space db ~asid:1 in
  check_bool "all of space 1 gone plus its children" true (removed >= 3);
  check_int "db empty" 0 (Mapdb.mapping_count db);
  check_int "no stray ptes" 0 (Hashtbl.length installed)

let prop_mapdb_install_remove_balanced =
  QCheck.Test.make ~name:"mapdb: installs minus removes equals live mappings"
    ~count:100
    QCheck.(list (triple (int_range 1 4) (int_range 0 7) bool))
    (fun ops ->
      let installs = ref 0 and removes = ref 0 in
      let db =
        Mapdb.create
          ~install:(fun ~asid:_ ~vpn:_ _ ~writable:_ -> incr installs)
          ~remove:(fun ~asid:_ ~vpn:_ -> incr removes)
      in
      Mapdb.insert_root db ~asid:0 ~vpn:0 dummy_frame ~writable:true;
      List.iter
        (fun (asid, vpn, grant) ->
          ignore
            (Mapdb.map db ~src_asid:0 ~src_vpn:0 ~dst_asid:asid ~dst_vpn:vpn
               ~writable:true ~grant);
          if vpn mod 3 = 0 then ignore (Mapdb.unmap db ~asid ~vpn ~self:true))
        ops;
      !installs - !removes = Mapdb.mapping_count db)

let suite =
  [
    Alcotest.test_case "spawn runs body" `Quick test_spawn_runs_body;
    Alcotest.test_case "burn charges thread account" `Quick
      test_burn_advances_clock_and_charges;
    Alcotest.test_case "my_tid" `Quick test_my_tid;
    Alcotest.test_case "exit stops body" `Quick test_exit_stops_body;
    Alcotest.test_case "crash contained" `Quick test_crash_is_contained;
    Alcotest.test_case "ipc: receiver first" `Quick test_send_recv_receiver_first;
    Alcotest.test_case "ipc: sender first" `Quick test_send_recv_sender_first;
    Alcotest.test_case "ipc: From filter" `Quick test_recv_filter_from;
    Alcotest.test_case "ipc: call/reply_wait RPC" `Quick
      test_call_reply_wait_rpc;
    Alcotest.test_case "ipc: send acts as reply" `Quick test_send_as_reply;
    Alcotest.test_case "ipc: dead partner" `Quick test_ipc_to_dead_partner_errors;
    Alcotest.test_case "ipc: kill unblocks clients" `Quick
      test_kill_server_unblocks_clients;
    Alcotest.test_case "ipc: string copy charged" `Quick
      test_string_item_charges_copy;
    Alcotest.test_case "ipc: cross-space dearer than same-space" `Quick
      test_cross_space_ipc_costs_more_than_same_space;
    Alcotest.test_case "ipc: recv timeout" `Quick test_recv_timeout_fires;
    Alcotest.test_case "ipc: call timeout (busy server)" `Quick
      test_call_timeout_on_busy_server;
    Alcotest.test_case "ipc: timeout cancelled by delivery" `Quick
      test_timeout_cancelled_by_delivery;
    Alcotest.test_case "ipc: stale sender dropped" `Quick
      test_timed_out_sender_not_delivered_later;
    Alcotest.test_case "ipc: timeout covers reply phase" `Quick
      test_call_timeout_covers_slow_reply;
    Alcotest.test_case "mem: alloc+touch" `Quick test_alloc_and_touch;
    Alcotest.test_case "mem: unhandled fault" `Quick
      test_touch_unmapped_without_pager_fails;
    Alcotest.test_case "pager: resolves faults" `Quick test_pager_resolves_faults;
    Alcotest.test_case "pager: pool exhaustion" `Quick
      test_pager_pool_exhaustion_fails_client;
    Alcotest.test_case "pager: dead pager blast radius" `Quick
      test_dead_pager_fails_faulting_client_only;
    Alcotest.test_case "mem: map item + unmap revoke" `Quick
      test_map_item_delegates_and_unmap_revokes;
    Alcotest.test_case "sched: priorities" `Quick test_priorities_run_higher_first;
    Alcotest.test_case "sched: yield round robin" `Quick test_yield_round_robin;
    Alcotest.test_case "sched: sleep" `Quick test_sleep_wakes_at_deadline;
    Alcotest.test_case "sched: dispatch limit" `Quick
      test_dispatch_limit_detects_livelock;
    Alcotest.test_case "sched: run until" `Quick test_run_until_condition;
    Alcotest.test_case "irq: delivered as IPC" `Quick test_irq_delivered_as_ipc;
    Alcotest.test_case "net server: tx" `Quick test_net_server_tx;
    Alcotest.test_case "net server: rx blocks" `Quick
      test_net_server_rx_blocks_until_packet;
    Alcotest.test_case "net server: death fails client" `Quick
      test_net_server_death_fails_client;
    Alcotest.test_case "blk server: roundtrip" `Quick test_blk_server_roundtrip;
    Alcotest.test_case "mapdb: map + recursive unmap" `Quick
      test_mapdb_map_and_recursive_unmap;
    Alcotest.test_case "mapdb: grant moves" `Quick test_mapdb_grant_moves_mapping;
    Alcotest.test_case "mapdb: writable downgrade" `Quick
      test_mapdb_writable_only_downgrades;
    Alcotest.test_case "mapdb: errors" `Quick test_mapdb_errors;
    Alcotest.test_case "mapdb: unmap space" `Quick test_mapdb_unmap_space;
    QCheck_alcotest.to_alcotest prop_mapdb_install_remove_balanced;
  ]
