(* Unit and property tests for the simulation substrate: clock, heap,
   engine, RNG. *)

open Vmk_sim

let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)
let check_bool = Alcotest.(check bool)

(* --- Clock --- *)

let test_clock_starts_at_zero () =
  let c = Clock.create () in
  check_i64 "fresh clock" 0L (Clock.now c)

let test_clock_advance () =
  let c = Clock.create () in
  Clock.advance c 10L;
  Clock.advance c 32L;
  check_i64 "cumulative" 42L (Clock.now c)

let test_clock_advance_negative_rejected () =
  let c = Clock.create () in
  Alcotest.check_raises "negative advance"
    (Invalid_argument "Clock.advance: negative cycle count") (fun () ->
      Clock.advance c (-1L))

let test_clock_advance_to_is_monotonic () =
  let c = Clock.create () in
  Clock.advance_to c 100L;
  Clock.advance_to c 50L;
  check_i64 "never rewinds" 100L (Clock.now c)

let test_clock_reset () =
  let c = Clock.create () in
  Clock.advance c 5L;
  Clock.reset c;
  check_i64 "reset" 0L (Clock.now c)

(* --- Heap --- *)

let test_heap_empty () =
  let h : int Heap.t = Heap.create () in
  check_bool "is_empty" true (Heap.is_empty h);
  check_bool "pop empty" true (Heap.pop h = None);
  check_bool "min_time empty" true (Heap.min_time h = None)

let test_heap_orders_by_time () =
  let h = Heap.create () in
  Heap.push h ~time:30L "c";
  Heap.push h ~time:10L "a";
  Heap.push h ~time:20L "b";
  let order = List.init 3 (fun _ -> snd (Option.get (Heap.pop h))) in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] order

let test_heap_fifo_on_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h ~time:5L v) [ 1; 2; 3; 4 ];
  let order = List.init 4 (fun _ -> snd (Option.get (Heap.pop h))) in
  Alcotest.(check (list int)) "insertion order" [ 1; 2; 3; 4 ] order

let test_heap_length_and_clear () =
  let h = Heap.create () in
  for i = 1 to 100 do
    Heap.push h ~time:(Int64.of_int i) i
  done;
  check_int "length" 100 (Heap.length h);
  Heap.clear h;
  check_int "cleared" 0 (Heap.length h)

let prop_heap_pops_sorted =
  QCheck.Test.make ~name:"heap pops in nondecreasing time order" ~count:200
    QCheck.(list (int_bound 10_000))
    (fun times ->
      let h = Heap.create () in
      List.iteri (fun i t -> Heap.push h ~time:(Int64.of_int t) i) times;
      let rec drain last =
        match Heap.pop h with
        | None -> true
        | Some (t, _) -> Int64.compare last t <= 0 && drain t
      in
      drain Int64.min_int)

(* --- Engine --- *)

let test_engine_fires_in_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.at e 20L (fun () -> log := 20 :: !log);
  Engine.at e 10L (fun () -> log := 10 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "order" [ 10; 20 ] (List.rev !log);
  check_i64 "clock at last event" 20L (Engine.now e)

let test_engine_burn_dispatches_due () =
  let e = Engine.create () in
  let fired = ref false in
  Engine.after e 50L (fun () -> fired := true);
  Engine.burn e 49L;
  check_bool "not yet" false !fired;
  Engine.burn e 1L;
  check_bool "fired at due time" true !fired

let test_engine_events_can_reschedule () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec step () =
    incr count;
    if !count < 5 then Engine.after e 10L step
  in
  Engine.after e 10L step;
  Engine.run e;
  check_int "chain of events" 5 !count;
  check_i64 "time" 50L (Engine.now e)

let test_engine_every_stops_on_false () =
  let e = Engine.create () in
  let count = ref 0 in
  Engine.every e 10L (fun () ->
      incr count;
      !count < 3);
  Engine.run e;
  check_int "three ticks" 3 !count

let test_engine_run_until_limit () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.at e 10L (fun () -> incr fired);
  Engine.at e 100L (fun () -> incr fired);
  Engine.run ~until:50L e;
  check_int "only events within limit" 1 !fired;
  check_int "one still queued" 1 (Engine.pending e)

let test_engine_idle_to_next () =
  let e = Engine.create () in
  let fired = ref false in
  Engine.at e 1000L (fun () -> fired := true);
  check_bool "advanced" true (Engine.idle_to_next e);
  check_bool "event ran" true !fired;
  check_i64 "clock skipped ahead" 1000L (Engine.now e);
  check_bool "empty now" false (Engine.idle_to_next e)

let test_engine_past_event_fires_on_next_dispatch () =
  let e = Engine.create () in
  Engine.burn e 100L;
  let fired = ref false in
  Engine.at e 10L (fun () -> fired := true);
  Engine.dispatch_due e;
  check_bool "late event still fires" true !fired

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7L () and b = Rng.create ~seed:7L () in
  let xs = List.init 32 (fun _ -> Rng.int32 a) in
  let ys = List.init 32 (fun _ -> Rng.int32 b) in
  check_bool "same seed, same stream" true (xs = ys)

let test_rng_seeds_differ () =
  let a = Rng.create ~seed:1L () and b = Rng.create ~seed:2L () in
  let xs = List.init 8 (fun _ -> Rng.int32 a) in
  let ys = List.init 8 (fun _ -> Rng.int32 b) in
  check_bool "different streams" false (xs = ys)

let test_rng_split_independent () =
  let a = Rng.create ~seed:3L () in
  let b = Rng.split a in
  let xs = List.init 8 (fun _ -> Rng.int32 a) in
  let ys = List.init 8 (fun _ -> Rng.int32 b) in
  check_bool "split stream differs" false (xs = ys)

let test_rng_int_bound_zero_rejected () =
  let r = Rng.create () in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let prop_rng_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int stays in [0, bound)" ~count:500
    QCheck.(pair (int_bound 1_000_000) small_int)
    (fun (seed, bound) ->
      let bound = bound + 1 in
      let r = Rng.create ~seed:(Int64.of_int seed) () in
      let x = Rng.int r bound in
      x >= 0 && x < bound)

let prop_rng_int64_range =
  QCheck.Test.make ~name:"Rng.int64_range stays in range" ~count:500
    QCheck.(triple small_int small_int small_int)
    (fun (seed, a, b) ->
      let lo = Int64.of_int (min a b) and hi = Int64.of_int (max a b) in
      let r = Rng.create ~seed:(Int64.of_int seed) () in
      let x = Rng.int64_range r lo hi in
      Int64.compare lo x <= 0 && Int64.compare x hi <= 0)

let test_rng_exponential_positive () =
  let r = Rng.create () in
  for _ = 1 to 1000 do
    let x = Rng.exponential r ~mean:100.0 in
    if x < 0.0 then Alcotest.fail "negative exponential draw"
  done

let test_rng_exponential_mean () =
  let r = Rng.create ~seed:11L () in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:50.0
  done;
  let mean = !sum /. float_of_int n in
  check_bool "mean within 5%" true (abs_float (mean -. 50.0) < 2.5)

let test_rng_shuffle_permutes () =
  let r = Rng.create ~seed:5L () in
  let arr = Array.init 20 (fun i -> i) in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 20 (fun i -> i)) sorted

let test_rng_pick_from_singleton () =
  let r = Rng.create () in
  check_int "only choice" 9 (Rng.pick r [| 9 |])

let suite =
  [
    Alcotest.test_case "clock: starts at zero" `Quick test_clock_starts_at_zero;
    Alcotest.test_case "clock: advance accumulates" `Quick test_clock_advance;
    Alcotest.test_case "clock: negative advance rejected" `Quick
      test_clock_advance_negative_rejected;
    Alcotest.test_case "clock: advance_to monotonic" `Quick
      test_clock_advance_to_is_monotonic;
    Alcotest.test_case "clock: reset" `Quick test_clock_reset;
    Alcotest.test_case "heap: empty behaviour" `Quick test_heap_empty;
    Alcotest.test_case "heap: orders by time" `Quick test_heap_orders_by_time;
    Alcotest.test_case "heap: FIFO on equal times" `Quick test_heap_fifo_on_ties;
    Alcotest.test_case "heap: length and clear" `Quick test_heap_length_and_clear;
    QCheck_alcotest.to_alcotest prop_heap_pops_sorted;
    Alcotest.test_case "engine: fires in order" `Quick test_engine_fires_in_order;
    Alcotest.test_case "engine: burn dispatches due events" `Quick
      test_engine_burn_dispatches_due;
    Alcotest.test_case "engine: events reschedule" `Quick
      test_engine_events_can_reschedule;
    Alcotest.test_case "engine: every stops on false" `Quick
      test_engine_every_stops_on_false;
    Alcotest.test_case "engine: run ~until" `Quick test_engine_run_until_limit;
    Alcotest.test_case "engine: idle_to_next" `Quick test_engine_idle_to_next;
    Alcotest.test_case "engine: past event fires" `Quick
      test_engine_past_event_fires_on_next_dispatch;
    Alcotest.test_case "rng: deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng: seeds differ" `Quick test_rng_seeds_differ;
    Alcotest.test_case "rng: split independent" `Quick test_rng_split_independent;
    Alcotest.test_case "rng: zero bound rejected" `Quick
      test_rng_int_bound_zero_rejected;
    QCheck_alcotest.to_alcotest prop_rng_int_in_bounds;
    QCheck_alcotest.to_alcotest prop_rng_int64_range;
    Alcotest.test_case "rng: exponential positive" `Quick
      test_rng_exponential_positive;
    Alcotest.test_case "rng: exponential mean" `Quick test_rng_exponential_mean;
    Alcotest.test_case "rng: shuffle permutes" `Quick test_rng_shuffle_permutes;
    Alcotest.test_case "rng: pick singleton" `Quick test_rng_pick_from_singleton;
  ]
