(* Tests for the mini-OS: syscall ABI plumbing, Minifs, and the three
   ports (native / Xen / L4) running identical applications. *)

module Machine = Vmk_hw.Machine
module Nic = Vmk_hw.Nic
module Engine = Vmk_sim.Engine
module Counter = Vmk_trace.Counter
module Sys_g = Vmk_guest.Sys
module Minifs = Vmk_guest.Minifs
module Port_native = Vmk_guest.Port_native
module Port_l4 = Vmk_guest.Port_l4
module Kernel = Vmk_ukernel.Kernel
module Net_server = Vmk_ukernel.Net_server
module Blk_server = Vmk_ukernel.Blk_server
module Hypervisor = Vmk_vmm.Hypervisor
module Dom0 = Vmk_vmm.Dom0
module Blk_channel = Vmk_vmm.Blk_channel
module Port_xen = Vmk_guest.Port_xen

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Minifs --- *)

let memory_fs () =
  let store = Hashtbl.create 16 in
  Minifs.create
    ~read:(fun ~sector -> Some (Option.value (Hashtbl.find_opt store sector) ~default:0))
    ~write:(fun ~sector ~tag ->
      Hashtbl.replace store sector tag;
      true)
    ()

let test_minifs_roundtrip () =
  let fs = memory_fs () in
  let fd = Minifs.open_or_create fs "a" in
  check_bool "append 1" true (Minifs.append fs ~fd ~tag:11);
  check_bool "append 2" true (Minifs.append fs ~fd ~tag:22);
  check_bool "read 0" true (Minifs.read_block fs ~fd ~index:0 = Some 11);
  check_bool "read 1" true (Minifs.read_block fs ~fd ~index:1 = Some 22);
  check_bool "size" true (Minifs.size_blocks fs ~fd = Some 2)

let test_minifs_reopen_same_fd () =
  let fs = memory_fs () in
  let fd1 = Minifs.open_or_create fs "x" in
  let fd2 = Minifs.open_or_create fs "x" in
  check_int "same file" fd1 fd2;
  check_int "one file" 1 (Minifs.file_count fs)

let test_minifs_out_of_range () =
  let fs = memory_fs () in
  let fd = Minifs.open_or_create fs "y" in
  check_bool "index out of range" true (Minifs.read_block fs ~fd ~index:0 = None);
  check_bool "bad fd read" true (Minifs.read_block fs ~fd:999 ~index:0 = None);
  check_bool "bad fd append" false (Minifs.append fs ~fd:999 ~tag:1)

let test_minifs_distinct_files_distinct_sectors () =
  let fs = memory_fs () in
  let a = Minifs.open_or_create fs "a" and b = Minifs.open_or_create fs "b" in
  ignore (Minifs.append fs ~fd:a ~tag:1);
  ignore (Minifs.append fs ~fd:b ~tag:2);
  check_bool "no clobber" true
    (Minifs.read_block fs ~fd:a ~index:0 = Some 1
    && Minifs.read_block fs ~fd:b ~index:0 = Some 2);
  check_int "sectors used" 2 (Minifs.sectors_used fs)

let test_minifs_failing_block_layer () =
  let fs =
    Minifs.create ~read:(fun ~sector:_ -> None) ~write:(fun ~sector:_ ~tag:_ -> false) ()
  in
  let fd = Minifs.open_or_create fs "dead" in
  check_bool "append fails" false (Minifs.append fs ~fd ~tag:1);
  check_bool "size still zero" true (Minifs.size_blocks fs ~fd = Some 0)

(* --- run_with_handler --- *)

let test_trampoline_sequences_calls () =
  let log = ref [] in
  let handler call =
    log := call :: !log;
    match call with Sys_g.G_getpid -> Sys_g.G_int 7 | _ -> Sys_g.G_unit
  in
  Sys_g.run_with_handler ~handler (fun () ->
      check_int "pid" 7 (Sys_g.getpid ());
      Sys_g.yield ();
      Sys_g.burn 5);
  check_int "three calls" 3 (List.length !log)

let test_trampoline_exit_abandons_app () =
  let after = ref false in
  Sys_g.run_with_handler
    ~handler:(fun _ -> Sys_g.G_unit)
    (fun () ->
      if true then Sys_g.exit ();
      after := true);
  check_bool "code after exit unreached" false !after

let test_trampoline_propagates_app_exception () =
  Alcotest.check_raises "app exception" (Failure "boom") (fun () ->
      Sys_g.run_with_handler
        ~handler:(fun _ -> Sys_g.G_unit)
        (fun () -> failwith "boom"))

let test_trampoline_error_raises_sys_error () =
  let saw = ref false in
  Sys_g.run_with_handler
    ~handler:(fun _ -> Sys_g.G_error "nope")
    (fun () ->
      try ignore (Sys_g.getpid ()) with Sys_g.Sys_error _ -> saw := true);
  check_bool "Sys_error raised in app" true !saw

(* --- native port --- *)

let test_native_getpid_and_accounting () =
  let mach = Machine.create ~seed:3L () in
  Port_native.run mach (fun () ->
      check_int "pid" 1 (Sys_g.getpid ());
      Sys_g.burn 777);
  check_bool "cycles on native account" true
    (Int64.compare
       (Vmk_trace.Accounts.balance mach.Machine.accounts "native")
       777L
    >= 0);
  check_int "syscall counted" 1 (Counter.get mach.Machine.counters "gsys.count")

let test_native_net_roundtrip () =
  let mach = Machine.create ~seed:3L () in
  Engine.after mach.Machine.engine 5_000L (fun () ->
      Nic.inject_rx mach.Machine.nic ~tag:42 ~len:700);
  let got = ref None in
  Port_native.run mach (fun () ->
      Sys_g.net_send ~len:300 ~tag:9;
      got := Some (Sys_g.net_recv ()));
  check_bool "received injected packet" true (!got = Some (700, 42));
  check_int "tx on wire" 300 (Nic.tx_bytes mach.Machine.nic)

let test_native_net_recv_without_traffic_errors () =
  let mach = Machine.create ~seed:3L () in
  let error = ref false in
  Port_native.run mach (fun () ->
      try ignore (Sys_g.net_recv ()) with Sys_g.Sys_error _ -> error := true);
  check_bool "no traffic -> Sys_error" true !error

let test_native_blk_and_fs () =
  let mach = Machine.create ~seed:3L () in
  Port_native.run mach (fun () ->
      Sys_g.blk_write ~sector:4 ~len:512 ~tag:31;
      check_int "blk readback" 31 (Sys_g.blk_read ~sector:4 ~len:512);
      let fd = Sys_g.fs_create "log" in
      Sys_g.fs_append ~fd ~tag:100;
      Sys_g.fs_append ~fd ~tag:200;
      check_int "fs block 1" 200 (Sys_g.fs_read ~fd ~index:1))

(* --- L4 port --- *)

let l4_fixture ~net ~blk =
  let mach = Machine.create ~seed:4L () in
  let k = Kernel.create mach in
  let net_tid =
    if net then
      Some
        (Kernel.spawn k ~name:"net" ~priority:2 ~account:Net_server.account
           (fun () -> Net_server.body mach ()))
    else None
  in
  let blk_tid =
    if blk then
      Some
        (Kernel.spawn k ~name:"blk" ~priority:2 ~account:Blk_server.account
           (fun () -> Blk_server.body mach ()))
    else None
  in
  let gk =
    Kernel.spawn k ~name:"gk" ~priority:3 ~account:Port_l4.gk_account
      (Port_l4.guest_kernel_body ~net:net_tid ~blk:blk_tid)
  in
  (mach, k, gk)

let test_l4_getpid_and_fs () =
  let mach, k, gk = l4_fixture ~net:false ~blk:true in
  let done_ = ref false in
  let _app =
    Kernel.spawn k ~name:"app" ~account:"app"
      (Port_l4.app_body mach ~gk (fun () ->
           check_int "pid via IPC" 1 (Sys_g.getpid ());
           let fd = Sys_g.fs_create "data" in
           Sys_g.fs_append ~fd ~tag:55;
           check_int "fs readback via servers" 55 (Sys_g.fs_read ~fd ~index:0);
           done_ := true))
  in
  ignore (Kernel.run k ~until:(fun () -> !done_));
  check_bool "app finished" true !done_

let test_l4_net_without_server_errors () =
  let mach, k, gk = l4_fixture ~net:false ~blk:false in
  let error = ref false in
  let _app =
    Kernel.spawn k ~name:"app" ~account:"app"
      (Port_l4.app_body mach ~gk (fun () ->
           try Sys_g.net_send ~len:100 ~tag:1
           with Sys_g.Sys_error _ -> error := true))
  in
  ignore (Kernel.run k);
  check_bool "missing driver -> error" true !error

let test_l4_dead_gk_raises () =
  let mach, k, gk = l4_fixture ~net:false ~blk:false in
  Kernel.kill k gk;
  let error = ref false in
  let _app =
    Kernel.spawn k ~name:"app" ~account:"app"
      (Port_l4.app_body mach ~gk (fun () ->
           try ignore (Sys_g.getpid ()) with Sys_g.Sys_error _ -> error := true))
  in
  ignore (Kernel.run k);
  check_bool "dead guest kernel surfaces" true !error

(* --- Xen port --- *)

let test_xen_fs_through_split_driver () =
  let mach = Machine.create ~seed:5L () in
  let h = Hypervisor.create mach in
  let chan = Blk_channel.create () in
  let _dom0 =
    Hypervisor.create_domain h ~name:Dom0.name ~privileged:true
      (Dom0.body mach ~blk:[ chan ])
  in
  let done_ = ref false in
  let _guest =
    Hypervisor.create_domain h ~name:"guest1"
      (Port_xen.guest_body mach ~blk:(chan, 0)
         ~app:(fun () ->
           let fd = Sys_g.fs_create "xfs" in
           Sys_g.fs_append ~fd ~tag:77;
           check_int "fs via blkfront" 77 (Sys_g.fs_read ~fd ~index:0);
           done_ := true))
  in
  ignore (Hypervisor.run h ~until:(fun () -> !done_));
  check_bool "guest finished" true !done_

let test_xen_syscall_counters_by_config () =
  let run ~glibc_tls =
    let mach = Machine.create ~seed:5L () in
    let h = Hypervisor.create mach in
    let _guest =
      Hypervisor.create_domain h ~name:"guest1"
        (Port_xen.guest_body mach ~glibc_tls
           ~app:(fun () ->
             for _ = 1 to 20 do
               ignore (Sys_g.getpid ())
             done))
    in
    ignore (Hypervisor.run h);
    ( Counter.get mach.Machine.counters "vmm.syscall_fast",
      Counter.get mach.Machine.counters "vmm.syscall_bounce" )
  in
  let fast, bounce = run ~glibc_tls:false in
  check_int "all fast" 20 fast;
  check_int "no bounce" 0 bounce;
  let fast', bounce' = run ~glibc_tls:true in
  check_int "no fast with TLS" 0 fast';
  check_int "all bounced with TLS" 20 bounce'

let test_kernel_work_table_total () =
  (* Every syscall kind has a cost; burn is free (not a syscall). *)
  check_int "burn costs nothing in-kernel" 0 (Sys_g.kernel_work (Sys_g.G_burn 5));
  check_bool "all real syscalls cost kernel work" true
    (List.for_all
       (fun c -> Sys_g.kernel_work c > 0)
       [
         Sys_g.G_getpid;
         Sys_g.G_yield;
         Sys_g.G_net_send { len = 1; tag = 1 };
         Sys_g.G_net_recv;
         Sys_g.G_blk_write { sector = 0; len = 1; tag = 1 };
         Sys_g.G_blk_read { sector = 0; len = 1 };
         Sys_g.G_fs_create "";
         Sys_g.G_fs_append { fd = 0; tag = 0 };
         Sys_g.G_fs_read { fd = 0; index = 0 };
         Sys_g.G_exit;
       ])

let suite =
  [
    Alcotest.test_case "minifs: roundtrip" `Quick test_minifs_roundtrip;
    Alcotest.test_case "minifs: reopen" `Quick test_minifs_reopen_same_fd;
    Alcotest.test_case "minifs: out of range" `Quick test_minifs_out_of_range;
    Alcotest.test_case "minifs: distinct files" `Quick
      test_minifs_distinct_files_distinct_sectors;
    Alcotest.test_case "minifs: failing block layer" `Quick
      test_minifs_failing_block_layer;
    Alcotest.test_case "trampoline: sequences calls" `Quick
      test_trampoline_sequences_calls;
    Alcotest.test_case "trampoline: exit abandons" `Quick
      test_trampoline_exit_abandons_app;
    Alcotest.test_case "trampoline: app exception" `Quick
      test_trampoline_propagates_app_exception;
    Alcotest.test_case "trampoline: G_error -> Sys_error" `Quick
      test_trampoline_error_raises_sys_error;
    Alcotest.test_case "native: getpid + accounting" `Quick
      test_native_getpid_and_accounting;
    Alcotest.test_case "native: net roundtrip" `Quick test_native_net_roundtrip;
    Alcotest.test_case "native: recv without traffic" `Quick
      test_native_net_recv_without_traffic_errors;
    Alcotest.test_case "native: blk + fs" `Quick test_native_blk_and_fs;
    Alcotest.test_case "l4: getpid + fs via servers" `Quick test_l4_getpid_and_fs;
    Alcotest.test_case "l4: missing driver errors" `Quick
      test_l4_net_without_server_errors;
    Alcotest.test_case "l4: dead guest kernel" `Quick test_l4_dead_gk_raises;
    Alcotest.test_case "xen: fs through split driver" `Quick
      test_xen_fs_through_split_driver;
    Alcotest.test_case "xen: syscall path counters" `Quick
      test_xen_syscall_counters_by_config;
    Alcotest.test_case "sys: kernel work table" `Quick
      test_kernel_work_table_total;
  ]
