(* Cross-architecture battery: invariants that must hold on every one of
   the nine platform profiles. This is the test-suite form of E7's
   portability claim — the same code, the same assertions, nine cost
   models. *)

module Machine = Vmk_hw.Machine
module Arch = Vmk_hw.Arch
module Nic = Vmk_hw.Nic
module Engine = Vmk_sim.Engine
module Kernel = Vmk_ukernel.Kernel
module Sysif = Vmk_ukernel.Sysif
module Hypervisor = Vmk_vmm.Hypervisor
module Hcall = Vmk_vmm.Hcall
module Port_native = Vmk_guest.Port_native
module Sys_g = Vmk_guest.Sys
module Scenario = Vmk_core.Scenario
module Apps = Vmk_workloads.Apps

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let for_all_archs f = List.iter (fun arch -> f arch) Arch.all

(* IPC round trip completes and respects basic ordering on every arch. *)
let test_ipc_semantics_everywhere () =
  for_all_archs (fun arch ->
      let mach = Machine.create ~arch ~seed:2L () in
      let k = Kernel.create mach in
      let echoed = ref [] in
      let server =
        Kernel.spawn k ~name:"server" (fun () ->
            let rec loop (c, (m : Sysif.msg)) =
              loop (Sysif.reply_wait c (Sysif.msg (m.Sysif.label * 2)))
            in
            loop (Sysif.recv Sysif.Any))
      in
      let _client =
        Kernel.spawn k ~name:"client" (fun () ->
            for i = 1 to 5 do
              let _, reply = Sysif.call server (Sysif.msg i) in
              echoed := reply.Sysif.label :: !echoed
            done)
      in
      ignore (Kernel.run k);
      Alcotest.(check (list int))
        (Printf.sprintf "echo on %s" arch.Arch.name)
        [ 10; 8; 6; 4; 2 ] !echoed)

(* Same-space IPC is never dearer than cross-space IPC, on any arch. *)
let test_same_space_never_dearer () =
  for_all_archs (fun arch ->
      let measure ~same_space =
        let mach = Machine.create ~arch ~seed:2L () in
        let k = Kernel.create mach in
        let server_body () =
          let rec loop (c, _) = loop (Sysif.reply_wait c (Sysif.msg 0)) in
          loop (Sysif.recv Sysif.Any)
        in
        if same_space then
          ignore
            (Kernel.spawn k ~name:"pair" (fun () ->
                 let server =
                   Sysif.spawn
                     {
                       Sysif.name = "server";
                       priority = Kernel.default_priority;
                       same_space = true;
                       pager = None;
                       body = server_body;
                     }
                 in
                 for _ = 1 to 30 do
                   ignore (Sysif.call server (Sysif.msg 1))
                 done))
        else begin
          let server = Kernel.spawn k ~name:"server" server_body in
          ignore
            (Kernel.spawn k ~name:"client" (fun () ->
                 for _ = 1 to 30 do
                   ignore (Sysif.call server (Sysif.msg 1))
                 done))
        end;
        ignore (Kernel.run k);
        Machine.now mach
      in
      let same = measure ~same_space:true in
      let cross = measure ~same_space:false in
      check_bool
        (Printf.sprintf "%s: same (%Ld) <= cross (%Ld)" arch.Arch.name same
           cross)
        true
        (Int64.compare same cross <= 0))

(* The syscall-path structure holds everywhere: the trap-gate shortcut
   fires only where the hardware provides gates + segmentation. *)
let test_syscall_shortcut_matrix () =
  for_all_archs (fun arch ->
      let mach = Machine.create ~arch ~seed:2L () in
      let h = Hypervisor.create mach in
      let path = ref None in
      let _ =
        Hypervisor.create_domain h ~name:"g" (fun () ->
            Hcall.set_trap_table ~int80_direct:true;
            path := Some (Hcall.syscall_trap ()))
      in
      ignore (Hypervisor.run h);
      let expect_fast = arch.Arch.has_trap_gates && arch.Arch.has_segmentation in
      check_bool
        (Printf.sprintf "%s shortcut=%b" arch.Arch.name expect_fast)
        true
        (!path = Some (if expect_fast then Hcall.Fast_trap_gate else Hcall.Bounced)))

(* The native mini-OS port works on every platform: net + blk + fs. *)
let test_native_port_everywhere () =
  for_all_archs (fun arch ->
      let mach = Machine.create ~arch ~seed:2L () in
      Engine.after mach.Machine.engine 10_000L (fun () ->
          Nic.inject_rx mach.Machine.nic ~tag:5 ~len:128);
      let ok = ref false in
      Port_native.run mach (fun () ->
          let _ = Sys_g.net_recv () in
          Sys_g.blk_write ~sector:1 ~len:512 ~tag:8;
          let fd = Sys_g.fs_create "f" in
          Sys_g.fs_append ~fd ~tag:9;
          ok :=
            Sys_g.blk_read ~sector:1 ~len:512 = 8
            && Sys_g.fs_read ~fd ~index:0 = 9);
      check_bool (Printf.sprintf "native stack on %s" arch.Arch.name) true !ok)

(* Determinism holds per arch: two identical runs, identical clocks. *)
let test_determinism_everywhere () =
  for_all_archs (fun arch ->
      let run () =
        let outcome =
          Scenario.run_xen ~arch ~net:false
            ~app:(Apps.mixed ~rounds:8 ~net_every:0 ~blk_every:3 ())
            ()
        in
        outcome.Scenario.cycles
      in
      let a = run () and b = run () in
      Alcotest.(check int64) (Printf.sprintf "deterministic on %s" arch.Arch.name) a b)

(* Untagged platforms pay a TLB flush on every space switch; tagged ones
   never flush from switching. *)
let test_tlb_flush_discipline () =
  let flushes arch =
    let mach = Machine.create ~arch ~seed:2L () in
    let k = Kernel.create mach in
    let server =
      Kernel.spawn k ~name:"server" (fun () ->
          let rec loop (c, _) = loop (Sysif.reply_wait c (Sysif.msg 0)) in
          loop (Sysif.recv Sysif.Any))
    in
    let _client =
      Kernel.spawn k ~name:"client" (fun () ->
          for _ = 1 to 10 do
            ignore (Sysif.call server (Sysif.msg 1))
          done)
    in
    ignore (Kernel.run k);
    Vmk_hw.Tlb.flushes mach.Machine.tlb
  in
  for_all_archs (fun arch ->
      let n = flushes arch in
      if arch.Arch.tlb_tagged then
        check_int (Printf.sprintf "%s: tagged, no flushes" arch.Arch.name) 0 n
      else
        check_bool (Printf.sprintf "%s: untagged, flushes > 10" arch.Arch.name)
          true (n > 10))

let suite =
  [
    Alcotest.test_case "ipc semantics on 9 archs" `Quick
      test_ipc_semantics_everywhere;
    Alcotest.test_case "same-space never dearer" `Quick
      test_same_space_never_dearer;
    Alcotest.test_case "syscall shortcut matrix" `Quick
      test_syscall_shortcut_matrix;
    Alcotest.test_case "native port on 9 archs" `Quick
      test_native_port_everywhere;
    Alcotest.test_case "determinism on 9 archs" `Quick
      test_determinism_everywhere;
    Alcotest.test_case "tlb flush discipline" `Quick test_tlb_flush_discipline;
  ]
