(* Tests for the machine simulator: arch profiles, frames, page tables,
   TLB, cache, segments, IRQ controller, NIC, disk, machine, MMU. *)

open Vmk_hw

let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)
let check_bool = Alcotest.(check bool)

(* --- Arch --- *)

let test_arch_nine_platforms () =
  check_int "nine platforms" 9 (List.length Arch.all);
  let names = List.map (fun p -> p.Arch.name) Arch.all in
  check_int "distinct names" 9 (List.length (List.sort_uniq compare names))

let test_arch_only_x86_32_has_trap_gates () =
  let gates = List.filter (fun p -> p.Arch.has_trap_gates) Arch.all in
  check_int "one platform" 1 (List.length gates);
  check_bool "it is x86-32" true
    (match gates with [ p ] -> p.Arch.id = Arch.X86_32 | _ -> false)

let test_arch_copy_cost_monotonic () =
  let p = Arch.default in
  check_int "zero bytes free" 0 (Arch.copy_cost p ~bytes:0);
  check_bool "monotone" true
    (Arch.copy_cost p ~bytes:4096 > Arch.copy_cost p ~bytes:64)

let test_arch_copy_cost_negative_rejected () =
  Alcotest.check_raises "negative" (Invalid_argument "Arch.copy_cost: negative size")
    (fun () -> ignore (Arch.copy_cost Arch.default ~bytes:(-1)))

let test_arch_by_name () =
  check_bool "lookup by spelling" true
    (match Arch.by_name "arm64" with
    | Some p -> p.Arch.id = Arch.Arm64
    | None -> false);
  check_bool "unknown" true (Arch.by_name "vax" = None)

let test_arch_tagged_tlb_cheap_switch () =
  let tagged = Arch.profile Arch.Arm64 and untagged = Arch.profile Arch.X86_32 in
  check_bool "tagged switch much cheaper" true
    (tagged.Arch.addr_space_switch_cost * 4 < untagged.Arch.addr_space_switch_cost)

(* --- Addr --- *)

let test_addr_arithmetic () =
  check_int "vpn" 2 (Addr.vpn 8300);
  check_int "base" 8192 (Addr.base 8300);
  check_int "offset" 108 (Addr.offset 8300);
  check_int "of_vpn" 8192 (Addr.of_vpn 2);
  check_bool "aligned" true (Addr.is_page_aligned 8192);
  check_bool "unaligned" false (Addr.is_page_aligned 8193)

let test_addr_pages_for () =
  check_int "zero" 0 (Addr.pages_for 0);
  check_int "one byte" 1 (Addr.pages_for 1);
  check_int "exact page" 1 (Addr.pages_for 4096);
  check_int "page+1" 2 (Addr.pages_for 4097)

let test_addr_range_overlap () =
  let a = Addr.range ~start:0 ~len:100 and b = Addr.range ~start:50 ~len:100 in
  let c = Addr.range ~start:100 ~len:10 in
  check_bool "overlap" true (Addr.ranges_overlap a b);
  check_bool "adjacent ranges do not overlap" false (Addr.ranges_overlap a c);
  check_bool "empty never overlaps" false
    (Addr.ranges_overlap a (Addr.range ~start:10 ~len:0))

(* --- Frame --- *)

let test_frame_alloc_release () =
  let t = Frame.create ~frames:4 in
  check_int "all free" 4 (Frame.free_count t);
  let f = Frame.alloc t ~owner:"guest" () in
  check_int "one used" 3 (Frame.free_count t);
  Alcotest.(check string) "owner" "guest" f.Frame.owner;
  Frame.release t f;
  check_int "released" 4 (Frame.free_count t)

let test_frame_exhaustion () =
  let t = Frame.create ~frames:2 in
  ignore (Frame.alloc t ~owner:"a" ());
  ignore (Frame.alloc t ~owner:"a" ());
  Alcotest.check_raises "out of frames" Frame.Out_of_frames (fun () ->
      ignore (Frame.alloc t ~owner:"a" ()))

let test_frame_transfer_bumps_generation () =
  let t = Frame.create ~frames:2 in
  let f = Frame.alloc t ~owner:"dom0" () in
  Frame.set_tag f 42;
  let g0 = f.Frame.generation in
  Frame.transfer t f ~to_:"guest";
  Alcotest.(check string) "new owner" "guest" f.Frame.owner;
  check_int "tag travels" 42 f.Frame.tag;
  check_int "generation bumped" (g0 + 1) f.Frame.generation

let test_frame_double_release_rejected () =
  let t = Frame.create ~frames:1 in
  let f = Frame.alloc t ~owner:"a" () in
  Frame.release t f;
  Alcotest.check_raises "double free"
    (Invalid_argument "Frame.release: frame already free") (fun () ->
      Frame.release t f)

let test_frame_reclaim_owner () =
  let t = Frame.create ~frames:8 in
  ignore (Frame.alloc_many t ~owner:"victim" 3);
  ignore (Frame.alloc_many t ~owner:"other" 2);
  check_int "reclaimed" 3 (Frame.reclaim_owner t "victim");
  check_int "other untouched" 2 (Frame.count_owned_by t "other");
  check_int "free again" 6 (Frame.free_count t)

(* --- Page table + TLB + MMU --- *)

let test_page_table_map_lookup_unmap () =
  let ft = Frame.create ~frames:2 in
  let f = Frame.alloc ft ~owner:"g" () in
  let pt = Page_table.create ~asid:1 in
  Page_table.map pt ~vpn:5 f ~writable:true ~user:true;
  check_bool "mapped" true (Page_table.lookup pt ~vpn:5 <> None);
  check_int "count" 1 (Page_table.mapped_count pt);
  check_bool "unmap returns pte" true (Page_table.unmap pt ~vpn:5 <> None);
  check_bool "gone" true (Page_table.lookup pt ~vpn:5 = None)

let test_page_table_stale_after_flip () =
  let ft = Frame.create ~frames:2 in
  let f = Frame.alloc ft ~owner:"dom0" () in
  let pt = Page_table.create ~asid:1 in
  Page_table.map pt ~vpn:7 f ~writable:true ~user:true;
  let pte = Option.get (Page_table.lookup pt ~vpn:7) in
  check_bool "fresh" false (Page_table.stale pte);
  Frame.transfer ft f ~to_:"guest";
  check_bool "stale after transfer" true (Page_table.stale pte)

let make_pte ft =
  let f = Frame.alloc ft ~owner:"g" () in
  Page_table.
    { frame = f; writable = true; user = true; frame_generation = f.Frame.generation }

let test_tlb_hit_miss_lru () =
  let ft = Frame.create ~frames:8 in
  let tlb = Tlb.create ~entries:2 ~tagged:true in
  let p1 = make_pte ft and p2 = make_pte ft and p3 = make_pte ft in
  check_bool "miss" true (Tlb.lookup tlb ~asid:1 ~vpn:1 = None);
  Tlb.insert tlb ~asid:1 ~vpn:1 p1;
  Tlb.insert tlb ~asid:1 ~vpn:2 p2;
  check_bool "hit 1" true (Tlb.lookup tlb ~asid:1 ~vpn:1 <> None);
  (* vpn 2 is now LRU; inserting vpn 3 evicts it *)
  Tlb.insert tlb ~asid:1 ~vpn:3 p3;
  check_bool "vpn2 evicted" true (Tlb.lookup tlb ~asid:1 ~vpn:2 = None);
  check_bool "vpn1 retained" true (Tlb.lookup tlb ~asid:1 ~vpn:1 <> None);
  check_int "hits" 2 (Tlb.hits tlb);
  check_int "misses" 2 (Tlb.misses tlb)

let test_tlb_untagged_flushes_on_switch () =
  let ft = Frame.create ~frames:4 in
  let tlb = Tlb.create ~entries:8 ~tagged:false in
  Tlb.set_context tlb ~asid:1;
  let flushes0 = Tlb.flushes tlb in
  Tlb.insert tlb ~asid:1 ~vpn:1 (make_pte ft);
  Tlb.set_context tlb ~asid:2;
  check_int "flush on switch" (flushes0 + 1) (Tlb.flushes tlb);
  check_int "empty" 0 (Tlb.live_entries tlb);
  Tlb.set_context tlb ~asid:2;
  check_int "same-asid switch free" (flushes0 + 1) (Tlb.flushes tlb)

let test_tlb_tagged_survives_switch () =
  let ft = Frame.create ~frames:4 in
  let tlb = Tlb.create ~entries:8 ~tagged:true in
  Tlb.set_context tlb ~asid:1;
  Tlb.insert tlb ~asid:1 ~vpn:1 (make_pte ft);
  Tlb.set_context tlb ~asid:2;
  Tlb.set_context tlb ~asid:1;
  check_bool "entry survived" true (Tlb.lookup tlb ~asid:1 ~vpn:1 <> None)

let test_tlb_untagged_wrong_context_never_hits () =
  let ft = Frame.create ~frames:4 in
  let tlb = Tlb.create ~entries:8 ~tagged:false in
  Tlb.set_context tlb ~asid:1;
  Tlb.insert tlb ~asid:1 ~vpn:9 (make_pte ft);
  (* asid 2 lookup while context is 1 must not hit asid-1 entries *)
  check_bool "cross-asid miss" true (Tlb.lookup tlb ~asid:2 ~vpn:9 = None)

(* --- Cache --- *)

let test_cache_touch_costs_then_free () =
  let c = Cache.create ~lines:64 ~line_bytes:64 ~refill_cost:10 in
  let cost1 = Cache.touch c ~region:"ipc" ~lines:8 in
  check_int "cold misses" 80 cost1;
  let cost2 = Cache.touch c ~region:"ipc" ~lines:8 in
  check_int "warm hits free" 0 cost2;
  check_int "footprint" (8 * 64) (Cache.footprint_bytes c ~region:"ipc")

let test_cache_eviction_under_pressure () =
  let c = Cache.create ~lines:4 ~line_bytes:64 ~refill_cost:10 in
  ignore (Cache.touch c ~region:"a" ~lines:4);
  ignore (Cache.touch c ~region:"b" ~lines:4);
  let cost = Cache.touch c ~region:"a" ~lines:4 in
  check_bool "a was evicted, must refill" true (cost > 0)

let test_cache_of_profile_flush () =
  let c = Cache.of_profile Arch.default in
  ignore (Cache.touch c ~region:"x" ~lines:2);
  Cache.flush c;
  check_int "flushed" 0 (Cache.resident_lines c)

(* --- Segments --- *)

let vmm_hole = Addr.range ~start:0xF000_0000 ~len:0x1000_0000

let test_segments_default_excludes_hole () =
  let s = Segments.create ~user_limit:0xF000_0000 in
  check_bool "shortcut-safe layout" true (Segments.live_segments_exclude s vmm_hole)

let test_segments_glibc_tls_breaks_exclusion () =
  let s = Segments.create ~user_limit:0xF000_0000 in
  (* glibc TLS: GS gets a descriptor spanning the full 4 GiB *)
  Segments.load s Segments.Gs { base = 0; limit = 0xFFFF_FFFF };
  check_bool "gs now reaches the hole" false
    (Segments.live_segments_exclude s vmm_hole);
  check_int "reload counted" 1 (Segments.reload_count s)

let test_segments_cs_reload_is_irrelevant () =
  let s = Segments.create ~user_limit:0xF000_0000 in
  (* CS/SS are reloaded by the trap gate, so a wide CS does not matter. *)
  Segments.load s Segments.Cs { base = 0; limit = 0xFFFF_FFFF };
  check_bool "still safe" true (Segments.live_segments_exclude s vmm_hole)

(* --- Irq --- *)

let test_irq_priority_and_ack () =
  let c = Irq.create ~lines:4 in
  Irq.raise_line c 3;
  Irq.raise_line c 1;
  check_bool "lowest line wins" true (Irq.next_pending c = Some 1);
  Irq.ack c 1;
  check_bool "next" true (Irq.next_pending c = Some 3);
  Irq.ack c 3;
  check_bool "drained" false (Irq.any_pending c)

let test_irq_masking () =
  let c = Irq.create ~lines:4 in
  Irq.mask c 0;
  Irq.raise_line c 0;
  check_bool "masked hidden" true (Irq.next_pending c = None);
  Irq.unmask c 0;
  check_bool "visible after unmask" true (Irq.next_pending c = Some 0)

let test_irq_coalescing_counts () =
  let c = Irq.create ~lines:2 in
  Irq.raise_line c 0;
  Irq.raise_line c 0;
  Irq.raise_line c 0;
  check_int "raised 3" 3 (Irq.raised_total c 0);
  Irq.ack c 0;
  check_int "serviced once" 1 (Irq.serviced_total c 0);
  check_bool "coalesced" false (Irq.any_pending c)

let test_irq_out_of_range () =
  let c = Irq.create ~lines:2 in
  Alcotest.check_raises "range" (Invalid_argument "Irq: line out of range")
    (fun () -> Irq.raise_line c 2)

(* --- Nic --- *)

let test_nic_rx_requires_buffer () =
  let m = Machine.create () in
  Nic.inject_rx m.Machine.nic ~tag:1 ~len:100;
  check_int "dropped without buffer" 1 (Nic.rx_dropped m.Machine.nic);
  let f = Frame.alloc m.Machine.frames ~owner:"drv" () in
  Nic.post_rx_buffer m.Machine.nic f;
  Nic.inject_rx m.Machine.nic ~tag:2 ~len:100;
  check_int "delivered" 1 (Nic.rx_delivered m.Machine.nic);
  match Nic.rx_ready m.Machine.nic with
  | Some ev ->
      check_int "tag in frame" 2 ev.Nic.frame.Frame.tag;
      check_int "len" 100 ev.Nic.len
  | None -> Alcotest.fail "expected rx event"

let test_nic_rx_raises_irq () =
  let m = Machine.create () in
  let f = Frame.alloc m.Machine.frames ~owner:"drv" () in
  Nic.post_rx_buffer m.Machine.nic f;
  Nic.inject_rx m.Machine.nic ~tag:7 ~len:64;
  check_bool "nic irq pending" true
    (Irq.next_pending m.Machine.irq = Some Machine.nic_irq)

let test_nic_tx_completes_after_wire_delay () =
  let m = Machine.create () in
  let f = Frame.alloc m.Machine.frames ~owner:"drv" () in
  Nic.submit_tx m.Machine.nic f ~len:256;
  check_bool "not yet" true (Nic.tx_done m.Machine.nic = None);
  Machine.burn m 3000;
  check_bool "done after delay" true (Nic.tx_done m.Machine.nic <> None);
  check_int "tx bytes" 256 (Nic.tx_bytes m.Machine.nic)

let test_nic_oversized_packet_rejected () =
  let m = Machine.create () in
  Alcotest.check_raises "too big"
    (Invalid_argument "Nic.inject_rx: packet length out of range") (fun () ->
      Nic.inject_rx m.Machine.nic ~tag:1 ~len:(Addr.page_size + 1))

let test_nic_rx_buffers_fifo () =
  let m = Machine.create () in
  let f1 = Frame.alloc m.Machine.frames ~owner:"drv" () in
  let f2 = Frame.alloc m.Machine.frames ~owner:"drv" () in
  Nic.post_rx_buffer m.Machine.nic f1;
  Nic.post_rx_buffer m.Machine.nic f2;
  Nic.inject_rx m.Machine.nic ~tag:10 ~len:10;
  Nic.inject_rx m.Machine.nic ~tag:20 ~len:10;
  let e1 = Option.get (Nic.rx_ready m.Machine.nic) in
  let e2 = Option.get (Nic.rx_ready m.Machine.nic) in
  check_int "first buffer used first" f1.Frame.index e1.Nic.frame.Frame.index;
  check_int "tags in order" 10 e1.Nic.tag;
  check_int "second" 20 e2.Nic.tag

(* --- Disk --- *)

let test_disk_write_then_read_roundtrip () =
  let m = Machine.create () in
  let f = Frame.alloc m.Machine.frames ~owner:"drv" () in
  Frame.set_tag f 99;
  ignore (Disk.submit m.Machine.disk Disk.Write ~sector:5 ~frame:f ~bytes:512);
  Machine.burn m 100_000;
  check_int "persisted" 99 (Disk.sector_tag m.Machine.disk 5);
  let g = Frame.alloc m.Machine.frames ~owner:"drv" () in
  ignore (Disk.submit m.Machine.disk Disk.Read ~sector:5 ~frame:g ~bytes:512);
  Machine.burn m 100_000;
  check_int "read back" 99 g.Frame.tag;
  check_int "two completions" 0 (Disk.in_flight m.Machine.disk)

let test_disk_completion_raises_irq () =
  let m = Machine.create () in
  let f = Frame.alloc m.Machine.frames ~owner:"drv" () in
  ignore (Disk.submit m.Machine.disk Disk.Read ~sector:0 ~frame:f ~bytes:512);
  check_bool "in flight" true (Disk.in_flight m.Machine.disk = 1);
  Machine.burn m 100_000;
  check_bool "disk irq" true
    (Irq.next_pending m.Machine.irq = Some Machine.disk_irq);
  check_bool "completion queued" true (Disk.completed m.Machine.disk <> None)

let test_disk_unwritten_sector_reads_zero () =
  let m = Machine.create () in
  let f = Frame.alloc m.Machine.frames ~owner:"drv" () in
  Frame.set_tag f 1234;
  ignore (Disk.submit m.Machine.disk Disk.Read ~sector:77 ~frame:f ~bytes:512);
  Machine.burn m 100_000;
  check_int "zeroed" 0 f.Frame.tag

let test_disk_latency_scales_with_size () =
  let m = Machine.create () in
  let f = Frame.alloc m.Machine.frames ~owner:"drv" () in
  ignore (Disk.submit m.Machine.disk Disk.Read ~sector:0 ~frame:f ~bytes:4096);
  Machine.burn m 40_001;
  check_bool "big transfer not done at base latency" true
    (Disk.completed m.Machine.disk = None);
  Machine.burn m 40_000;
  check_bool "done later" true (Disk.completed m.Machine.disk <> None)

(* --- Machine + Mmu --- *)

let test_machine_burn_charges_account () =
  let m = Machine.create () in
  Vmk_trace.Accounts.switch_to m.Machine.accounts "guest";
  Machine.burn m 500;
  check_i64 "charged" 500L (Vmk_trace.Accounts.balance m.Machine.accounts "guest");
  check_i64 "clock moved" 500L (Machine.now m)

let test_machine_timer_ticks () =
  let m = Machine.create () in
  Machine.start_timer m ~period:1000L;
  Machine.burn m 3500;
  check_int "ticks raised" 3 (Irq.raised_total m.Machine.irq Machine.timer_irq);
  Machine.stop_timer m;
  let raised = Irq.raised_total m.Machine.irq Machine.timer_irq in
  Machine.burn m 5000;
  check_int "no more ticks" raised (Irq.raised_total m.Machine.irq Machine.timer_irq)

let test_mmu_translate_hit_is_free_miss_charges () =
  let m = Machine.create () in
  Vmk_trace.Accounts.switch_to m.Machine.accounts "k";
  let pt = Page_table.create ~asid:1 in
  let f = Frame.alloc m.Machine.frames ~owner:"k" () in
  Page_table.map pt ~vpn:3 f ~writable:true ~user:true;
  Vmk_hw.Tlb.set_context m.Machine.tlb ~asid:1;
  let t0 = Machine.now m in
  check_bool "miss ok" true
    (Mmu.translate m pt ~vpn:3 ~write:false ~user:true = Ok (Option.get (Page_table.lookup pt ~vpn:3)));
  let walk = Int64.to_int (Int64.sub (Machine.now m) t0) in
  check_int "walk cost charged" (Arch.walk_cost m.Machine.arch) walk;
  let t1 = Machine.now m in
  ignore (Mmu.translate m pt ~vpn:3 ~write:false ~user:true);
  check_i64 "hit free" t1 (Machine.now m)

let test_mmu_faults () =
  let m = Machine.create () in
  let pt = Page_table.create ~asid:1 in
  let f = Frame.alloc m.Machine.frames ~owner:"k" () in
  Page_table.map pt ~vpn:1 f ~writable:false ~user:false;
  check_bool "not mapped" true
    (Mmu.translate m pt ~vpn:9 ~write:false ~user:false = Error Mmu.Not_mapped);
  check_bool "readonly" true
    (Mmu.translate m pt ~vpn:1 ~write:true ~user:false
    = Error Mmu.Write_to_readonly);
  check_bool "kernel only" true
    (Mmu.translate m pt ~vpn:1 ~write:false ~user:true = Error Mmu.Kernel_only)

let test_mmu_stale_detected_through_tlb () =
  let m = Machine.create () in
  let pt = Page_table.create ~asid:1 in
  let f = Frame.alloc m.Machine.frames ~owner:"dom0" () in
  Page_table.map pt ~vpn:4 f ~writable:true ~user:true;
  Vmk_hw.Tlb.set_context m.Machine.tlb ~asid:1;
  check_bool "initial ok" true
    (Result.is_ok (Mmu.translate m pt ~vpn:4 ~write:true ~user:true));
  (* flip the frame away; the cached TLB entry is now stale *)
  Frame.transfer m.Machine.frames f ~to_:"guest";
  check_bool "stale fault" true
    (Mmu.translate m pt ~vpn:4 ~write:true ~user:true = Error Mmu.Stale_mapping)

let test_mmu_touch_range_counts_pages () =
  let m = Machine.create () in
  let pt = Page_table.create ~asid:2 in
  Vmk_hw.Tlb.set_context m.Machine.tlb ~asid:2;
  for vpn = 0 to 3 do
    let f = Frame.alloc m.Machine.frames ~owner:"k" () in
    Page_table.map pt ~vpn f ~writable:true ~user:true
  done;
  check_bool "4 pages" true
    (Mmu.touch_range m pt ~start:0 ~len:(4 * Addr.page_size) ~write:false
       ~user:true
    = Ok 4);
  check_bool "fault reported with vpn" true
    (Mmu.touch_range m pt ~start:0 ~len:(5 * Addr.page_size) ~write:false
       ~user:true
    = Error (4, Mmu.Not_mapped))

let test_mmu_switch_space_costs () =
  let m = Machine.create () in
  let pt1 = Page_table.create ~asid:1 and pt2 = Page_table.create ~asid:2 in
  Mmu.switch_space m pt1;
  let t0 = Machine.now m in
  Mmu.switch_space m pt2;
  let cost = Int64.to_int (Int64.sub (Machine.now m) t0) in
  check_int "profile cost" m.Machine.arch.Arch.addr_space_switch_cost cost

let prop_frame_alloc_release_conserves =
  QCheck.Test.make ~name:"frame alloc/release conserves total" ~count:100
    QCheck.(list (int_range 0 1))
    (fun ops ->
      let t = Frame.create ~frames:16 in
      let held = ref [] in
      List.iter
        (fun op ->
          if op = 0 then begin
            match Frame.alloc t ~owner:"p" () with
            | f -> held := f :: !held
            | exception Frame.Out_of_frames -> ()
          end
          else
            match !held with
            | [] -> ()
            | f :: rest ->
                Frame.release t f;
                held := rest)
        ops;
      Frame.free_count t + List.length !held = 16)

let suite =
  [
    Alcotest.test_case "arch: nine platforms" `Quick test_arch_nine_platforms;
    Alcotest.test_case "arch: trap gates only on x86-32" `Quick
      test_arch_only_x86_32_has_trap_gates;
    Alcotest.test_case "arch: copy cost monotonic" `Quick
      test_arch_copy_cost_monotonic;
    Alcotest.test_case "arch: negative copy rejected" `Quick
      test_arch_copy_cost_negative_rejected;
    Alcotest.test_case "arch: by_name" `Quick test_arch_by_name;
    Alcotest.test_case "arch: tagged TLB cheap switch" `Quick
      test_arch_tagged_tlb_cheap_switch;
    Alcotest.test_case "addr: arithmetic" `Quick test_addr_arithmetic;
    Alcotest.test_case "addr: pages_for" `Quick test_addr_pages_for;
    Alcotest.test_case "addr: range overlap" `Quick test_addr_range_overlap;
    Alcotest.test_case "frame: alloc/release" `Quick test_frame_alloc_release;
    Alcotest.test_case "frame: exhaustion" `Quick test_frame_exhaustion;
    Alcotest.test_case "frame: transfer bumps generation" `Quick
      test_frame_transfer_bumps_generation;
    Alcotest.test_case "frame: double release rejected" `Quick
      test_frame_double_release_rejected;
    Alcotest.test_case "frame: reclaim owner" `Quick test_frame_reclaim_owner;
    QCheck_alcotest.to_alcotest prop_frame_alloc_release_conserves;
    Alcotest.test_case "pt: map/lookup/unmap" `Quick
      test_page_table_map_lookup_unmap;
    Alcotest.test_case "pt: stale after flip" `Quick
      test_page_table_stale_after_flip;
    Alcotest.test_case "tlb: hit/miss/LRU" `Quick test_tlb_hit_miss_lru;
    Alcotest.test_case "tlb: untagged flush on switch" `Quick
      test_tlb_untagged_flushes_on_switch;
    Alcotest.test_case "tlb: tagged survives switch" `Quick
      test_tlb_tagged_survives_switch;
    Alcotest.test_case "tlb: cross-asid isolation" `Quick
      test_tlb_untagged_wrong_context_never_hits;
    Alcotest.test_case "cache: cold/warm costs" `Quick
      test_cache_touch_costs_then_free;
    Alcotest.test_case "cache: eviction" `Quick test_cache_eviction_under_pressure;
    Alcotest.test_case "cache: flush" `Quick test_cache_of_profile_flush;
    Alcotest.test_case "segments: default excludes hole" `Quick
      test_segments_default_excludes_hole;
    Alcotest.test_case "segments: glibc TLS breaks exclusion" `Quick
      test_segments_glibc_tls_breaks_exclusion;
    Alcotest.test_case "segments: CS reload irrelevant" `Quick
      test_segments_cs_reload_is_irrelevant;
    Alcotest.test_case "irq: priority and ack" `Quick test_irq_priority_and_ack;
    Alcotest.test_case "irq: masking" `Quick test_irq_masking;
    Alcotest.test_case "irq: coalescing" `Quick test_irq_coalescing_counts;
    Alcotest.test_case "irq: out of range" `Quick test_irq_out_of_range;
    Alcotest.test_case "nic: rx requires buffer" `Quick test_nic_rx_requires_buffer;
    Alcotest.test_case "nic: rx raises irq" `Quick test_nic_rx_raises_irq;
    Alcotest.test_case "nic: tx wire delay" `Quick
      test_nic_tx_completes_after_wire_delay;
    Alcotest.test_case "nic: oversized rejected" `Quick
      test_nic_oversized_packet_rejected;
    Alcotest.test_case "nic: rx buffers FIFO" `Quick test_nic_rx_buffers_fifo;
    Alcotest.test_case "disk: write/read roundtrip" `Quick
      test_disk_write_then_read_roundtrip;
    Alcotest.test_case "disk: completion irq" `Quick
      test_disk_completion_raises_irq;
    Alcotest.test_case "disk: unwritten reads zero" `Quick
      test_disk_unwritten_sector_reads_zero;
    Alcotest.test_case "disk: latency scales" `Quick
      test_disk_latency_scales_with_size;
    Alcotest.test_case "machine: burn charges account" `Quick
      test_machine_burn_charges_account;
    Alcotest.test_case "machine: timer" `Quick test_machine_timer_ticks;
    Alcotest.test_case "mmu: hit free, miss charges" `Quick
      test_mmu_translate_hit_is_free_miss_charges;
    Alcotest.test_case "mmu: permission faults" `Quick test_mmu_faults;
    Alcotest.test_case "mmu: stale via TLB" `Quick
      test_mmu_stale_detected_through_tlb;
    Alcotest.test_case "mmu: touch_range" `Quick test_mmu_touch_range_counts_pages;
    Alcotest.test_case "mmu: switch cost" `Quick test_mmu_switch_space_costs;
  ]
