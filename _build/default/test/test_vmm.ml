(* Tests for the Xen-style VMM: domains, event channels, grant tables,
   page flipping, guest syscall paths, split drivers, Dom0 and Parallax. *)

open Vmk_vmm
module Machine = Vmk_hw.Machine
module Arch = Vmk_hw.Arch
module Frame = Vmk_hw.Frame
module Nic = Vmk_hw.Nic
module Disk = Vmk_hw.Disk
module Segments = Vmk_hw.Segments
module Counter = Vmk_trace.Counter
module Accounts = Vmk_trace.Accounts
module Engine = Vmk_sim.Engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fresh ?arch () =
  let mach = Machine.create ?arch ~seed:7L () in
  (mach, Hypervisor.create mach)

let run_idle h =
  match Hypervisor.run h with
  | Hypervisor.Idle -> ()
  | Hypervisor.Condition -> Alcotest.fail "unexpected Condition"
  | Hypervisor.Dispatch_limit -> Alcotest.fail "dispatch limit (livelock?)"

let run_until h f = ignore (Hypervisor.run h ~until:f)

(* --- basics --- *)

let test_domain_runs_and_charges () =
  let mach, h = fresh () in
  let seen_domid = ref (-1) in
  let d =
    Hypervisor.create_domain h ~name:"guest" (fun () ->
        seen_domid := Hcall.dom_id ();
        Hcall.burn 5000)
  in
  run_idle h;
  check_int "dom_id" d !seen_domid;
  check_bool "burn charged to domain" true
    (Int64.compare (Accounts.balance mach.Machine.accounts "guest") 5000L >= 0);
  check_bool "hypercall work charged to vmm" true
    (Int64.compare (Accounts.balance mach.Machine.accounts "vmm") 0L > 0)

let test_domain_crash_contained () =
  let mach, h = fresh () in
  let other = ref false in
  let _ = Hypervisor.create_domain h ~name:"bad" (fun () -> failwith "oops") in
  let _ = Hypervisor.create_domain h ~name:"ok" (fun () -> other := true) in
  run_idle h;
  check_bool "other domain ran" true !other;
  check_int "crash counted" 1
    (Counter.get mach.Machine.counters "vmm.domain_crashed")

let test_world_switch_counted () =
  let mach, h = fresh () in
  let _ =
    Hypervisor.create_domain h ~name:"a" (fun () ->
        for _ = 1 to 3 do
          Hcall.yield ()
        done)
  in
  let _ =
    Hypervisor.create_domain h ~name:"b" (fun () ->
        for _ = 1 to 3 do
          Hcall.yield ()
        done)
  in
  run_idle h;
  check_bool "several world switches" true
    (Counter.get mach.Machine.counters "vmm.world_switch" >= 6)

(* --- event channels --- *)

let test_evtchn_handshake_and_send () =
  let _mach, h = fresh () in
  let got = ref [] in
  let offer = ref None in
  let listener =
    Hypervisor.create_domain h ~name:"listener" (fun () ->
        let sender_dom = 1 in
        let port = Hcall.evtchn_alloc_unbound sender_dom in
        (* Publish through a closure variable: the test thread of control
           is the scenario builder. *)
        offer := Some port;
        match Hcall.block () with
        | Hcall.Events ports -> got := ports
        | Hcall.Timed_out -> ())
  in
  ignore listener;
  let _sender =
    Hypervisor.create_domain h ~name:"sender" (fun () ->
        let rec wait () =
          match !offer with
          | Some p -> p
          | None ->
              Hcall.yield ();
              wait ()
        in
        let remote_port = wait () in
        let my_port = Hcall.evtchn_bind ~remote_dom:0 ~remote_port in
        Hcall.evtchn_send my_port)
  in
  run_idle h;
  check_bool "listener woke with its port" true (!got <> [])

let test_block_timeout () =
  let mach, h = fresh () in
  let result = ref None in
  let _ =
    Hypervisor.create_domain h ~name:"d" (fun () ->
        result := Some (Hcall.block ~timeout:5000L ()))
  in
  run_idle h;
  check_bool "timed out" true (!result = Some Hcall.Timed_out);
  check_bool "clock advanced past deadline" true (Machine.now mach >= 5000L)

let test_send_on_unbound_port_fails () =
  let _mach, h = fresh () in
  let failed = ref false in
  let _ =
    Hypervisor.create_domain h ~name:"d" (fun () ->
        let port = Hcall.evtchn_alloc_unbound 42 in
        try Hcall.evtchn_send port
        with Hcall.Hcall_error Hcall.Bad_port -> failed := true)
  in
  run_idle h;
  check_bool "unbound send rejected" true !failed

(* --- grants --- *)

let test_grant_map_and_permissions () =
  let _mach, h = fresh () in
  let mapped_tag = ref 0 in
  let stranger_denied = ref false in
  let granter_state = ref None in
  let _granter =
    Hypervisor.create_domain h ~name:"granter" (fun () ->
        let frame = List.hd (Hcall.alloc_frames 1) in
        Frame.set_tag frame 55;
        let gref = Hcall.grant ~to_dom:1 ~frame ~readonly:true in
        granter_state := Some gref;
        (* stay alive until mappers are done *)
        ignore (Hcall.block ~timeout:1_000_000L ()))
  in
  let _mappee =
    Hypervisor.create_domain h ~name:"mappee" (fun () ->
        let rec wait () =
          match !granter_state with
          | Some g -> g
          | None ->
              Hcall.yield ();
              wait ()
        in
        let gref = wait () in
        let frame = Hcall.grant_map ~dom:0 ~gref in
        mapped_tag := frame.Frame.tag;
        Hcall.grant_unmap ~dom:0 ~gref)
  in
  let _stranger =
    Hypervisor.create_domain h ~name:"stranger" (fun () ->
        let rec wait () =
          match !granter_state with
          | Some g -> g
          | None ->
              Hcall.yield ();
              wait ()
        in
        let gref = wait () in
        try ignore (Hcall.grant_map ~dom:0 ~gref)
        with Hcall.Hcall_error Hcall.Permission_denied -> stranger_denied := true)
  in
  run_idle h;
  check_int "grantee saw the content" 55 !mapped_tag;
  check_bool "third domain denied" true !stranger_denied

let test_grant_transfer_flips_ownership () =
  let mach, h = fresh () in
  let received_owner = ref "" in
  let moved : Frame.frame option ref = ref None in
  let _src =
    Hypervisor.create_domain h ~name:"src" (fun () ->
        let frame = List.hd (Hcall.alloc_frames 1) in
        Frame.set_tag frame 7;
        Hcall.grant_transfer ~to_dom:1 ~frame;
        moved := Some frame)
  in
  let _dst =
    Hypervisor.create_domain h ~name:"dst" (fun () ->
        let rec wait () =
          match !moved with
          | Some f -> f
          | None ->
              Hcall.yield ();
              wait ()
        in
        let frame = wait () in
        received_owner := frame.Frame.owner)
  in
  run_idle h;
  Alcotest.(check string) "owner is destination" "dst" !received_owner;
  check_int "flip counted" 1 (Counter.get mach.Machine.counters "vmm.page_flip")

let test_grant_requires_frame_ownership () =
  let mach, h = fresh () in
  let denied = ref false in
  let foreign = Frame.alloc mach.Machine.frames ~owner:"somebody-else" () in
  let _ =
    Hypervisor.create_domain h ~name:"d" (fun () ->
        try ignore (Hcall.grant ~to_dom:1 ~frame:foreign ~readonly:false)
        with Hcall.Hcall_error Hcall.Permission_denied -> denied := true)
  in
  run_idle h;
  check_bool "cannot grant others' frames" true !denied

let test_pt_map_validates_ownership () =
  let mach, h = fresh () in
  let ok = ref false and denied = ref false in
  let foreign = Frame.alloc mach.Machine.frames ~owner:"x" () in
  let _ =
    Hypervisor.create_domain h ~name:"d" (fun () ->
        let mine = List.hd (Hcall.alloc_frames 1) in
        Hcall.pt_map ~frame:mine ~vpn:0x200 ~writable:true;
        ok := true;
        (try Hcall.pt_map ~frame:foreign ~vpn:0x201 ~writable:true
         with Hcall.Hcall_error Hcall.Permission_denied -> denied := true);
        Hcall.pt_unmap 0x200)
  in
  run_idle h;
  check_bool "own frame mappable" true !ok;
  check_bool "foreign frame rejected" true !denied;
  check_int "pt updates counted" 2
    (Counter.get mach.Machine.counters "vmm.pt_update")

(* --- guest syscall paths (§3.2 / E4) --- *)

let test_syscall_shortcut_fast_then_broken_by_tls () =
  let mach, h = fresh () in
  let paths = ref [] in
  let _ =
    Hypervisor.create_domain h ~name:"guest" (fun () ->
        Hcall.set_trap_table ~int80_direct:true;
        paths := Hcall.syscall_trap () :: !paths;
        (* glibc initialises TLS: GS now spans the whole address space. *)
        Hcall.load_segment Segments.Gs { Segments.base = 0; limit = 0xFFFF_FFFF };
        paths := Hcall.syscall_trap () :: !paths)
  in
  run_idle h;
  check_bool "fast then bounced" true
    (List.rev !paths = [ Hcall.Fast_trap_gate; Hcall.Bounced ]);
  check_int "fast counted" 1 (Counter.get mach.Machine.counters "vmm.syscall_fast");
  check_int "bounce counted" 1
    (Counter.get mach.Machine.counters "vmm.syscall_bounce")

let test_syscall_shortcut_needs_registration () =
  let mach, h = fresh () in
  let path = ref None in
  let _ =
    Hypervisor.create_domain h ~name:"guest" (fun () ->
        path := Some (Hcall.syscall_trap ()))
  in
  run_idle h;
  check_bool "without trap table: bounced" true (!path = Some Hcall.Bounced);
  check_int "no fast path" 0 (Counter.get mach.Machine.counters "vmm.syscall_fast")

let test_syscall_shortcut_unavailable_without_trap_gates () =
  let _mach, h = fresh ~arch:(Arch.profile Arch.X86_64) () in
  let path = ref None in
  let _ =
    Hypervisor.create_domain h ~name:"guest" (fun () ->
        Hcall.set_trap_table ~int80_direct:true;
        path := Some (Hcall.syscall_trap ()))
  in
  run_idle h;
  check_bool "x86-64 has no trap-gate shortcut" true (!path = Some Hcall.Bounced)

let test_syscall_bounce_costs_more () =
  let cycles_of ~tls =
    let mach, h = fresh () in
    let _ =
      Hypervisor.create_domain h ~name:"guest" (fun () ->
          Hcall.set_trap_table ~int80_direct:true;
          if tls then
            Hcall.load_segment Segments.Gs
              { Segments.base = 0; limit = 0xFFFF_FFFF };
          for _ = 1 to 100 do
            ignore (Hcall.syscall_trap ())
          done)
    in
    run_idle h;
    Machine.now mach
  in
  let fast = cycles_of ~tls:false and slow = cycles_of ~tls:true in
  check_bool
    (Printf.sprintf "bounced (%Ld) > 2x fast (%Ld)" slow fast)
    true
    (Int64.compare slow (Int64.mul 2L fast) > 0)

(* --- IRQ routing --- *)

let test_irq_routing_to_privileged_domain () =
  let mach, h = fresh () in
  let got_event = ref false in
  let _dom0 =
    Hypervisor.create_domain h ~name:"dom0" ~privileged:true (fun () ->
        let _port = Hcall.irq_bind Machine.nic_irq in
        match Hcall.block ~timeout:1_000_000L () with
        | Hcall.Events (_ :: _) -> got_event := true
        | Hcall.Events [] | Hcall.Timed_out -> ())
  in
  Engine.after mach.Machine.engine 1000L (fun () ->
      Nic.post_rx_buffer mach.Machine.nic
        (Frame.alloc mach.Machine.frames ~owner:"dom0" ());
      Nic.inject_rx mach.Machine.nic ~tag:1 ~len:64);
  run_idle h;
  check_bool "irq became event" true !got_event;
  check_int "vmm irq counted" 1 (Counter.get mach.Machine.counters "vmm.irq")

let test_irq_bind_requires_privilege () =
  let _mach, h = fresh () in
  let denied = ref false in
  let _ =
    Hypervisor.create_domain h ~name:"guest" (fun () ->
        try ignore (Hcall.irq_bind Machine.nic_irq)
        with Hcall.Hcall_error Hcall.Permission_denied -> denied := true)
  in
  run_idle h;
  check_bool "unprivileged denied" true !denied

(* --- page-table modes & scheduler weights --- *)

let test_pt_batch_amortises_trap () =
  let per_update pt_mode =
    let mach = Machine.create ~seed:7L () in
    let h = Hypervisor.create mach in
    let cost = ref 0.0 in
    let _ =
      Hypervisor.create_domain h ~name:"g" ~pt_mode (fun () ->
          let frames = Array.of_list (Hcall.alloc_frames 8) in
          let t0 = Machine.now mach in
          let ops =
            List.concat_map
              (fun i ->
                [
                  Hcall.Pt_map
                    { bframe = frames.(i); bvpn = 0x500 + i; bwritable = true };
                  Hcall.Pt_unmap (0x500 + i);
                ])
              [ 0; 1; 2; 3; 4; 5; 6; 7 ]
          in
          Hcall.pt_batch ops;
          cost := Int64.to_float (Int64.sub (Machine.now mach) t0) /. 16.0)
    in
    run_idle h;
    !cost
  in
  let pv = per_update Hypervisor.Paravirt in
  let sh = per_update Hypervisor.Shadow in
  check_bool
    (Printf.sprintf "shadow (%.0f) > 2x paravirt (%.0f)" sh pv)
    true (sh > 2.0 *. pv)

let test_shadow_counts_syncs () =
  let mach, h = fresh () in
  let _ =
    Hypervisor.create_domain h ~name:"g" ~pt_mode:Hypervisor.Shadow (fun () ->
        let frame = List.hd (Hcall.alloc_frames 1) in
        Hcall.pt_map ~frame ~vpn:0x600 ~writable:true;
        Hcall.pt_unmap 0x600)
  in
  run_idle h;
  check_int "two shadow syncs" 2
    (Counter.get mach.Machine.counters "vmm.shadow_sync")

let test_weight_shares_cpu () =
  (* Two endless compute domains, 3:1 weights: the heavy one should get
     roughly three times the cycles. *)
  let mach, h = fresh () in
  let _heavy =
    Hypervisor.create_domain h ~name:"heavy" ~weight:768 (fun () ->
        Hcall.burn 10_000_000)
  in
  let _light =
    Hypervisor.create_domain h ~name:"light" ~weight:256 (fun () ->
        Hcall.burn 10_000_000)
  in
  ignore
    (Hypervisor.run h ~until:(fun () ->
         Int64.compare (Machine.now mach) 2_000_000L > 0));
  let heavy = Accounts.balance mach.Machine.accounts "heavy" in
  let light = Accounts.balance mach.Machine.accounts "light" in
  let ratio = Int64.to_float heavy /. Int64.to_float light in
  check_bool (Printf.sprintf "ratio %.2f within [2.4, 3.6]" ratio) true
    (ratio > 2.4 && ratio < 3.6)

let test_weight_validation () =
  let _mach, h = fresh () in
  Alcotest.check_raises "weight 0"
    (Invalid_argument "Hypervisor.create_domain: weight < 1") (fun () ->
      ignore (Hypervisor.create_domain h ~name:"x" ~weight:0 (fun () -> ())))

(* --- XenStore --- *)

let test_xenstore_write_read_rm () =
  let _mach, h = fresh () in
  let seen = ref None and after_rm = ref (Some "sentinel") in
  let _ =
    Hypervisor.create_domain h ~name:"d" (fun () ->
        Hcall.xs_write ~path:"a/b" ~value:"42";
        seen := Hcall.xs_read "a/b";
        Hcall.xs_rm "a/b";
        after_rm := Hcall.xs_read "a/b")
  in
  run_idle h;
  check_bool "read back" true (!seen = Some "42");
  check_bool "removed" true (!after_rm = None)

let test_xenstore_watch_wakes_blocked_domain () =
  let _mach, h = fresh () in
  let got = ref None in
  let _watcher =
    Hypervisor.create_domain h ~name:"watcher" (fun () ->
        got := Hcall.xs_wait_for ~timeout:10_000_000L "dev/thing")
  in
  let _writer =
    Hypervisor.create_domain h ~name:"writer" (fun () ->
        (* Let the watcher block first. *)
        Hcall.burn 50_000;
        Hcall.xs_write ~path:"dev/thing" ~value:"ready")
  in
  run_idle h;
  check_bool "watch woke the reader" true (!got = Some "ready")

let test_xenstore_watch_is_prefix_based () =
  let mach, h = fresh () in
  let woke = ref false in
  let _watcher =
    Hypervisor.create_domain h ~name:"watcher" (fun () ->
        let _port = Hcall.xs_watch "dev/net" in
        match Hcall.block ~timeout:10_000_000L () with
        | Hcall.Events _ -> woke := true
        | Hcall.Timed_out -> ())
  in
  let _writer =
    Hypervisor.create_domain h ~name:"writer" (fun () ->
        Hcall.burn 10_000;
        (* Unrelated path first: must not wake the watcher. *)
        Hcall.xs_write ~path:"dev/blk/0" ~value:"x";
        Hcall.burn 10_000;
        Hcall.xs_write ~path:"dev/net/0/port" ~value:"7")
  in
  run_idle h;
  check_bool "prefix watch fired" true !woke;
  check_int "two writes" 2 (Counter.get mach.Machine.counters "vmm.xs_write")

let test_xenstore_dead_watcher_ignored () =
  let _mach, h = fresh () in
  let victim =
    Hypervisor.create_domain h ~name:"victim" (fun () ->
        let _port = Hcall.xs_watch "k" in
        ignore (Hcall.block ()))
  in
  run_until h (fun () -> Hypervisor.state_name h victim = "blocked");
  Hypervisor.kill_domain h victim;
  let done_ = ref false in
  let _writer =
    Hypervisor.create_domain h ~name:"writer" (fun () ->
        Hcall.xs_write ~path:"k/x" ~value:"v";
        done_ := true)
  in
  run_idle h;
  check_bool "write survives dead watcher" true !done_

(* --- domain death --- *)

let test_kill_domain_and_peer_discovers () =
  let _mach, h = fresh () in
  let send_failed = ref false in
  let victim =
    Hypervisor.create_domain h ~name:"victim" (fun () ->
        ignore (Hcall.block ()))
  in
  run_until h (fun () -> Hypervisor.state_name h victim = "blocked");
  Hypervisor.kill_domain h victim;
  check_bool "dead" true (not (Hypervisor.is_alive h victim));
  (* A fresh domain sending to the dead one gets an error. *)
  let _late =
    Hypervisor.create_domain h ~name:"late" (fun () ->
        let frame = List.hd (Hcall.alloc_frames 1) in
        try Hcall.grant_transfer ~to_dom:victim ~frame
        with Hcall.Hcall_error Hcall.Dead_domain -> send_failed := true)
  in
  run_idle h;
  check_bool "transfer to dead domain errors" true !send_failed

(* --- split network driver --- *)

let net_scenario ?(period = 20_000L) ~mode ~packets ~len () =
  let mach, h = fresh () in
  let chan = Net_channel.create ~mode ~demux_key:1 () in
  let received = ref 0 in
  let _dom0 =
    Hypervisor.create_domain h ~name:Dom0.name ~privileged:true
      (Dom0.body mach ~net:[ chan ])
  in
  let link_up = ref false in
  let _guest =
    Hypervisor.create_domain h ~name:"guest1" (fun () ->
        let front = Netfront.connect chan ~backend:0 () in
        link_up := true;
        let rec loop () =
          if !received < packets then begin
            match Netfront.recv_blocking front ~timeout:2_000_000L () with
            | Some (_len, _tag) ->
                incr received;
                loop ()
            | None -> ()
          end
        in
        loop ())
  in
  (* Traffic source: one packet every 20k cycles, starting once the
     frontend has fully brought the link up. *)
  let seq = ref 0 in
  Engine.every mach.Machine.engine period (fun () ->
      if !seq < packets then begin
        if !link_up then begin
          incr seq;
          Nic.inject_rx mach.Machine.nic ~tag:(1_000_000 + !seq) ~len
        end;
        true
      end
      else false);
  run_until h (fun () -> !received >= packets);
  (mach, h, chan, !received)

let test_netfront_receives_flipped_packets () =
  let mach, _h, _chan, received = net_scenario ~mode:Net_channel.Flip ~packets:20 ~len:1000 () in
  check_int "all packets arrived" 20 received;
  check_bool "page flips happened" true
    (Counter.get mach.Machine.counters "vmm.page_flip" >= 20);
  check_int "no drops" 0 (Nic.rx_dropped mach.Machine.nic)

let test_netfront_receives_copied_packets () =
  let mach, _h, _chan, received = net_scenario ~mode:Net_channel.Copy ~packets:20 ~len:1000 () in
  check_int "all packets arrived" 20 received;
  check_int "no flips in copy mode" 0
    (Counter.get mach.Machine.counters "vmm.page_flip");
  check_bool "grant copies instead" true
    (Counter.get mach.Machine.counters "vmm.grant_copy" >= 20)

let test_dom0_flip_cost_independent_of_size () =
  let dom0_cycles len =
    let mach, _h, _c, received =
      net_scenario ~mode:Net_channel.Flip ~packets:50 ~len ()
    in
    check_int "received all" 50 received;
    Int64.to_float (Accounts.balance mach.Machine.accounts Dom0.name) /. 50.0
  in
  let small = dom0_cycles 64 and large = dom0_cycles 1460 in
  check_bool
    (Printf.sprintf "per-packet Dom0 cost ~constant (64B %.0f vs 1460B %.0f)"
       small large)
    true
    (large < small *. 1.15)

let test_dom0_copy_dearer_than_flip_at_full_size () =
  (* At identical load, the copying backend charges Dom0 for the bytes
     while the flipping backend does not. *)
  let dom0_cycles mode =
    (* Saturated regime: back-to-back packets, where [CG05] measured.
       Under overload some packets drop at the NIC (that is the point);
       normalise by what was actually delivered. *)
    let mach, _h, _c, received =
      net_scenario ~period:10_000L ~mode ~packets:50 ~len:1460 ()
    in
    check_bool "most packets delivered" true (received >= 30);
    Int64.to_float (Accounts.balance mach.Machine.accounts Dom0.name)
    /. float_of_int received
  in
  let flip = dom0_cycles Net_channel.Flip in
  let copy = dom0_cycles Net_channel.Copy in
  check_bool
    (Printf.sprintf "copy (%.0f) > flip (%.0f) per packet at 1460B" copy flip)
    true (copy > flip)

let test_netfront_tx_reaches_wire () =
  let mach, h = fresh () in
  let chan = Net_channel.create ~mode:Net_channel.Flip ~demux_key:1 () in
  let acked = ref 0 in
  let _dom0 =
    Hypervisor.create_domain h ~name:Dom0.name ~privileged:true
      (Dom0.body mach ~net:[ chan ])
  in
  let _guest =
    Hypervisor.create_domain h ~name:"guest1" (fun () ->
        let front = Netfront.connect chan ~backend:0 () in
        for i = 1 to 10 do
          ignore (Netfront.send front ~len:600 ~tag:(2_000_000 + i))
        done;
        let rec wait () =
          Netfront.pump front;
          if Netfront.tx_acked front < 10 then begin
            match Hcall.block ~timeout:2_000_000L () with
            | Hcall.Events _ ->
                Netfront.pump front;
                wait ()
            | Hcall.Timed_out -> ()
          end
        in
        wait ();
        acked := Netfront.tx_acked front)
  in
  run_until h (fun () -> !acked >= 10);
  check_int "all acked" 10 !acked;
  check_int "wire bytes" 6000 (Nic.tx_bytes mach.Machine.nic)

let test_netfront_detects_dead_backend () =
  let mach, h = fresh () in
  let chan = Net_channel.create ~mode:Net_channel.Flip ~demux_key:1 () in
  let outcome = ref None in
  let dom0 =
    Hypervisor.create_domain h ~name:Dom0.name ~privileged:true
      (Dom0.body mach ~net:[ chan ])
  in
  let _guest =
    Hypervisor.create_domain h ~name:"guest1" (fun () ->
        let front = Netfront.connect chan ~backend:0 () in
        outcome := Some (Netfront.recv_blocking front ~timeout:100_000L ()))
  in
  run_until h (fun () -> chan.Net_channel.back_port <> None);
  Hypervisor.kill_domain h dom0;
  run_idle h;
  check_bool "recv gave up" true (!outcome = Some None)

let test_two_net_guests_demuxed () =
  let mach, h = fresh () in
  let chan_a = Net_channel.create ~mode:Net_channel.Flip ~demux_key:1 () in
  let chan_b = Net_channel.create ~mode:Net_channel.Flip ~demux_key:2 () in
  let _dom0 =
    Hypervisor.create_domain h ~name:Dom0.name ~privileged:true
      (Dom0.body mach ~net:[ chan_a; chan_b ])
  in
  let got_a = ref [] and got_b = ref [] in
  let up = ref 0 in
  (* Direct fibers with raw netfronts for precise control. *)
  let run_guest name chan got =
    ignore
      (Hypervisor.create_domain h ~name (fun () ->
           let front = Netfront.connect chan ~backend:0 () in
           incr up;
           let rec loop n =
             if n > 0 then
               match Netfront.recv_blocking front ~timeout:5_000_000L () with
               | Some (_len, tag) ->
                   got := tag :: !got;
                   loop (n - 1)
               | None -> ()
           in
           loop 3))
  in
  run_guest "ga" chan_a got_a;
  run_guest "gb" chan_b got_b;
  Engine.every mach.Machine.engine 30_000L (fun () ->
      if !up >= 2 then begin
        (* Alternate keys: three packets each. *)
        let n = List.length !got_a + List.length !got_b in
        if n < 6 then begin
          let key = if n land 1 = 0 then 1 else 2 in
          Nic.inject_rx mach.Machine.nic ~tag:((key * 1_000_000) + n) ~len:200
        end
      end;
      List.length !got_a < 3 || List.length !got_b < 3);
  run_until h (fun () -> List.length !got_a >= 3 && List.length !got_b >= 3);
  check_int "guest A got its three" 3 (List.length !got_a);
  check_int "guest B got its three" 3 (List.length !got_b);
  check_bool "A only saw key-1 tags" true
    (List.for_all (fun t -> t / 1_000_000 = 1) !got_a);
  check_bool "B only saw key-2 tags" true
    (List.for_all (fun t -> t / 1_000_000 = 2) !got_b)

(* --- split block driver --- *)

let test_blk_roundtrip_through_dom0 () =
  let mach, h = fresh () in
  let chan = Blk_channel.create () in
  let tag = ref None in
  let _dom0 =
    Hypervisor.create_domain h ~name:Dom0.name ~privileged:true
      (Dom0.body mach ~blk:[ chan ])
  in
  let _guest =
    Hypervisor.create_domain h ~name:"guest1" (fun () ->
        let mux = Evt_mux.create () in
        let front = Blkfront.connect chan ~backend:0 () in
        Evt_mux.on mux (Blkfront.port front) (fun () -> Blkfront.pump front);
        let ok =
          Blkfront.write front ~mux ~sector:3 ~bytes:512 ~tag:444
            ~timeout:10_000_000L ()
        in
        assert ok;
        tag := Blkfront.read front ~mux ~sector:3 ~bytes:512 ~timeout:10_000_000L ())
  in
  run_until h (fun () -> !tag <> None);
  check_bool "tag round-tripped" true (!tag = Some 444);
  check_int "disk saw both ops" 2
    (Disk.reads_total mach.Machine.disk + Disk.writes_total mach.Machine.disk)

(* --- Parallax --- *)

let parallax_scenario ~nclients =
  let mach, h = fresh () in
  let upstream = Blk_channel.create () in
  let client_chans = List.init nclients (fun _ -> Blk_channel.create ()) in
  let _dom0 =
    Hypervisor.create_domain h ~name:Dom0.name ~privileged:true
      (Dom0.body mach ~blk:[ upstream ])
  in
  let parallax =
    Hypervisor.create_domain h ~name:Parallax.name
      (Parallax.body mach ~clients:client_chans ~upstream ~dom0:0)
  in
  (mach, h, parallax, client_chans)

let test_parallax_isolated_virtual_disks () =
  let _mach, h, parallax, chans = parallax_scenario ~nclients:2 in
  ignore parallax;
  let results = Array.make 2 None in
  List.iteri
    (fun i chan ->
      ignore
        (Hypervisor.create_domain h ~name:(Printf.sprintf "client%d" i)
           (fun () ->
             let mux = Evt_mux.create () in
             let front = Blkfront.connect chan ~backend:parallax () in
             Evt_mux.on mux (Blkfront.port front) (fun () -> Blkfront.pump front);
             (* Both clients write to "their" sector 5. *)
             let ok =
               Blkfront.write front ~mux ~sector:5 ~bytes:512
                 ~tag:(1000 + i) ~timeout:50_000_000L ()
             in
             assert ok;
             results.(i) <-
               Blkfront.read front ~mux ~sector:5 ~bytes:512
                 ~timeout:50_000_000L ())))
    chans;
  run_until h (fun () -> Array.for_all (fun r -> r <> None) results);
  check_bool "client0 sees its own data" true (results.(0) = Some 1000);
  check_bool "client1 sees its own data" true (results.(1) = Some 1001)

let test_parallax_death_blast_radius () =
  let _mach, h, parallax, chans = parallax_scenario ~nclients:1 in
  let chan = List.hd chans in
  let first = ref None and second = ref None in
  let phase = ref 0 in
  let _client =
    Hypervisor.create_domain h ~name:"client0" (fun () ->
        let mux = Evt_mux.create () in
        let front = Blkfront.connect chan ~backend:parallax () in
        Evt_mux.on mux (Blkfront.port front) (fun () -> Blkfront.pump front);
        ignore
          (Blkfront.write front ~mux ~sector:1 ~bytes:512 ~tag:9
             ~timeout:50_000_000L ());
        first := Some (Blkfront.read front ~mux ~sector:1 ~bytes:512 ~timeout:50_000_000L ());
        (* Signal the controller that phase 1 is done, then try again. *)
        phase := 1;
        let rec wait_for_kill () =
          if !phase < 2 then begin
            Hcall.yield ();
            wait_for_kill ()
          end
        in
        wait_for_kill ();
        second :=
          Some
            (Blkfront.read front ~mux ~sector:1 ~bytes:512 ~timeout:200_000L ()))
  in
  run_until h (fun () -> !phase = 1);
  Hypervisor.kill_domain h parallax;
  phase := 2;
  run_idle h;
  check_bool "worked before the kill" true (!first = Some (Some 9));
  check_bool "failed after the kill" true (!second = Some None);
  check_bool "dom0 survives" true (Hypervisor.is_alive h 0)

let suite =
  [
    Alcotest.test_case "domain runs and charges" `Quick
      test_domain_runs_and_charges;
    Alcotest.test_case "domain crash contained" `Quick
      test_domain_crash_contained;
    Alcotest.test_case "world switches counted" `Quick test_world_switch_counted;
    Alcotest.test_case "evtchn: handshake + send" `Quick
      test_evtchn_handshake_and_send;
    Alcotest.test_case "evtchn: block timeout" `Quick test_block_timeout;
    Alcotest.test_case "evtchn: unbound send fails" `Quick
      test_send_on_unbound_port_fails;
    Alcotest.test_case "grant: map + permissions" `Quick
      test_grant_map_and_permissions;
    Alcotest.test_case "grant: transfer flips ownership" `Quick
      test_grant_transfer_flips_ownership;
    Alcotest.test_case "grant: ownership required" `Quick
      test_grant_requires_frame_ownership;
    Alcotest.test_case "pt: map validates ownership" `Quick
      test_pt_map_validates_ownership;
    Alcotest.test_case "syscall: fast then TLS breaks it" `Quick
      test_syscall_shortcut_fast_then_broken_by_tls;
    Alcotest.test_case "syscall: needs registration" `Quick
      test_syscall_shortcut_needs_registration;
    Alcotest.test_case "syscall: no gates on x86-64" `Quick
      test_syscall_shortcut_unavailable_without_trap_gates;
    Alcotest.test_case "syscall: bounce costs more" `Quick
      test_syscall_bounce_costs_more;
    Alcotest.test_case "irq: routed to dom0" `Quick
      test_irq_routing_to_privileged_domain;
    Alcotest.test_case "irq: privilege required" `Quick
      test_irq_bind_requires_privilege;
    Alcotest.test_case "pt: batch amortises trap" `Quick
      test_pt_batch_amortises_trap;
    Alcotest.test_case "pt: shadow syncs counted" `Quick
      test_shadow_counts_syncs;
    Alcotest.test_case "sched: weights share cpu" `Quick test_weight_shares_cpu;
    Alcotest.test_case "sched: weight validation" `Quick test_weight_validation;
    Alcotest.test_case "xenstore: write/read/rm" `Quick
      test_xenstore_write_read_rm;
    Alcotest.test_case "xenstore: watch wakes" `Quick
      test_xenstore_watch_wakes_blocked_domain;
    Alcotest.test_case "xenstore: prefix watch" `Quick
      test_xenstore_watch_is_prefix_based;
    Alcotest.test_case "xenstore: dead watcher" `Quick
      test_xenstore_dead_watcher_ignored;
    Alcotest.test_case "kill: peer discovers death" `Quick
      test_kill_domain_and_peer_discovers;
    Alcotest.test_case "net: rx flipped packets" `Quick
      test_netfront_receives_flipped_packets;
    Alcotest.test_case "net: rx copied packets" `Quick
      test_netfront_receives_copied_packets;
    Alcotest.test_case "net: flip cost size-independent" `Quick
      test_dom0_flip_cost_independent_of_size;
    Alcotest.test_case "net: copy dearer than flip at 1460B" `Quick
      test_dom0_copy_dearer_than_flip_at_full_size;
    Alcotest.test_case "net: tx reaches wire" `Quick test_netfront_tx_reaches_wire;
    Alcotest.test_case "net: dead backend detected" `Quick
      test_netfront_detects_dead_backend;
    Alcotest.test_case "net: two guests demuxed" `Quick
      test_two_net_guests_demuxed;
    Alcotest.test_case "blk: roundtrip via dom0" `Quick
      test_blk_roundtrip_through_dom0;
    Alcotest.test_case "parallax: isolated virtual disks" `Quick
      test_parallax_isolated_virtual_disks;
    Alcotest.test_case "parallax: death blast radius" `Quick
      test_parallax_death_blast_radius;
  ]
