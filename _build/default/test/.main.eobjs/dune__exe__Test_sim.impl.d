test/test_sim.ml: Alcotest Array Clock Engine Heap Int64 List Option QCheck QCheck_alcotest Rng Vmk_sim
