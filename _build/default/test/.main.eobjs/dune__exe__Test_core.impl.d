test/test_core.ml: Alcotest List Printf Vmk_core Vmk_trace Vmk_vmm Vmk_workloads
