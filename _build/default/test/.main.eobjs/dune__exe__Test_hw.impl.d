test/test_hw.ml: Addr Alcotest Arch Cache Disk Frame Int64 Irq List Machine Mmu Nic Option Page_table QCheck QCheck_alcotest Result Segments Tlb Vmk_hw Vmk_trace
