test/test_mach.ml: Alcotest Int64 List Printf Vmk_hw Vmk_trace Vmk_ukernel
