test/main.ml: Alcotest Test_arch_matrix Test_core Test_guest Test_hw Test_mach Test_properties Test_sim Test_stats Test_trace Test_ukernel Test_vmm Test_workloads
