test/test_ukernel.ml: Alcotest Array Blk_server Hashtbl Int64 Kernel List Mapdb Net_server Option Pager Printf Proto QCheck QCheck_alcotest Sysif Vmk_hw Vmk_sim Vmk_trace Vmk_ukernel
