test/test_stats.ml: Alcotest Gen Histogram List QCheck QCheck_alcotest Regression String Summary Table Vmk_stats
