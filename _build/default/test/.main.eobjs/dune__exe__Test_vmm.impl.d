test/test_vmm.ml: Alcotest Array Blk_channel Blkfront Dom0 Evt_mux Hcall Hypervisor Int64 List Net_channel Netfront Parallax Printf Vmk_hw Vmk_sim Vmk_trace Vmk_vmm
