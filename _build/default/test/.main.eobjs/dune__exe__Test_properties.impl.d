test/test_properties.ml: Array Gen Hashtbl Int64 List Option Printf QCheck QCheck_alcotest Vmk_core Vmk_hw Vmk_sim Vmk_trace Vmk_ukernel Vmk_vmm Vmk_workloads
