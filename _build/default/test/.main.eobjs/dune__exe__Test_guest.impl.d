test/test_guest.ml: Alcotest Hashtbl Int64 List Option Vmk_guest Vmk_hw Vmk_sim Vmk_trace Vmk_ukernel Vmk_vmm
