test/test_trace.ml: Accounts Alcotest Counter Int64 List QCheck QCheck_alcotest Ring Vmk_trace
