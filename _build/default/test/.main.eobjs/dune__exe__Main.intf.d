test/main.mli:
