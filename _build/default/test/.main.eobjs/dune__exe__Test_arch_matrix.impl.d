test/test_arch_matrix.ml: Alcotest Int64 List Printf Vmk_core Vmk_guest Vmk_hw Vmk_sim Vmk_ukernel Vmk_vmm Vmk_workloads
