test/test_workloads.ml: Alcotest Vmk_guest Vmk_hw Vmk_sim Vmk_trace Vmk_workloads
