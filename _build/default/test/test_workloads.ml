(* Tests for the workload library: app bodies on the native port and the
   traffic generators. *)

module Machine = Vmk_hw.Machine
module Nic = Vmk_hw.Nic
module Engine = Vmk_sim.Engine
module Counter = Vmk_trace.Counter
module Port_native = Vmk_guest.Port_native
module Apps = Vmk_workloads.Apps
module Traffic = Vmk_workloads.Traffic

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let on_native app =
  let mach = Machine.create ~seed:9L () in
  Port_native.run mach app;
  mach

let test_null_syscalls_counts () =
  let stats = Apps.stats () in
  let mach = on_native (Apps.null_syscalls ~stats ~iterations:25 ()) in
  check_int "completed" 25 stats.Apps.completed;
  check_int "errors" 0 stats.Apps.errors;
  check_int "gsys counter" 25 (Counter.get mach.Machine.counters "gsys.count")

let test_compute_burns () =
  let stats = Apps.stats () in
  let mach = on_native (Apps.compute ~stats ~iterations:10 ~work:1_000 ()) in
  check_int "completed" 10 stats.Apps.completed;
  check_bool "clock moved at least 10k" true (Machine.now mach >= 10_000L)

let test_blk_mix_verifies_readback () =
  let stats = Apps.stats () in
  let _mach = on_native (Apps.blk_mix ~stats ~ops:30 ~span:8 ~seed:3 ()) in
  check_int "completed all ops" 30 stats.Apps.completed;
  check_int "no corruption" 0 stats.Apps.errors;
  check_bool "bytes counted" true (stats.Apps.bytes = 30 * 512)

let test_blk_mix_base_offsets_disjoint () =
  (* Two runs with different bases on the same machine must not clash. *)
  let mach = Machine.create ~seed:9L () in
  let s1 = Apps.stats () and s2 = Apps.stats () in
  Port_native.run mach (fun () ->
      Apps.blk_mix ~stats:s1 ~base:0 ~ops:20 ~span:8 ~seed:1 () ();
      Apps.blk_mix ~stats:s2 ~base:1000 ~ops:20 ~span:8 ~seed:1 () ());
  check_int "first clean" 0 s1.Apps.errors;
  check_int "second clean" 0 s2.Apps.errors

let test_fs_churn_verifies () =
  let stats = Apps.stats () in
  let _mach = on_native (Apps.fs_churn ~stats ~files:3 ~blocks_per_file:4 ()) in
  check_int "no errors" 0 stats.Apps.errors;
  check_int "writes+reads" (3 * 4 * 2) stats.Apps.completed

let test_mixed_profile () =
  let stats = Apps.stats () in
  let mach =
    on_native
      (Apps.mixed ~stats ~rounds:20 ~syscalls_per_round:5 ~net_every:2
         ~blk_every:4 ())
  in
  check_int "no errors" 0 stats.Apps.errors;
  (* 20*5 getpids + 10 sends + 5 write/read pairs *)
  check_int "op count" ((20 * 5) + 10 + 10) stats.Apps.completed;
  check_bool "net tx happened" true (Nic.tx_submitted mach.Machine.nic = 10)

let test_traffic_constant_rate_gated () =
  let mach = Machine.create ~seed:9L () in
  let open_gate = ref false in
  let t =
    Traffic.constant_rate mach
      ~gate:(fun () -> !open_gate)
      ~period:1_000L ~len:100 ~count:5 ()
  in
  Machine.burn mach 10_000;
  check_int "gated: nothing injected" 0 (Traffic.injected t);
  open_gate := true;
  Machine.burn mach 10_000;
  check_int "all injected after gate" 5 (Traffic.injected t);
  check_bool "done" true (Traffic.done_ t);
  Machine.burn mach 10_000;
  check_int "stops at count" 5 (Traffic.injected t)

let test_traffic_poisson_reaches_count () =
  let mach = Machine.create ~seed:9L () in
  let t =
    Traffic.poisson_rate mach
      ~gate:(fun () -> true)
      ~mean_period:500.0 ~len:64 ~count:20 ()
  in
  Machine.burn mach 100_000;
  check_bool "all injected eventually" true (Traffic.done_ t);
  check_int "exactly count" 20 (Traffic.injected t)

let test_traffic_tags_carry_demux_key () =
  let mach = Machine.create ~seed:9L () in
  Nic.post_rx_buffer mach.Machine.nic
    (Vmk_hw.Frame.alloc mach.Machine.frames ~owner:"t" ());
  let _t =
    Traffic.constant_rate mach
      ~gate:(fun () -> true)
      ~period:100L ~len:64 ~count:1 ~key:7 ()
  in
  Machine.burn mach 1_000;
  match Nic.rx_ready mach.Machine.nic with
  | Some ev -> check_int "demux key" 7 (ev.Nic.tag / 1_000_000)
  | None -> Alcotest.fail "no packet"

let suite =
  [
    Alcotest.test_case "null_syscalls counts" `Quick test_null_syscalls_counts;
    Alcotest.test_case "compute burns" `Quick test_compute_burns;
    Alcotest.test_case "blk_mix verifies readback" `Quick
      test_blk_mix_verifies_readback;
    Alcotest.test_case "blk_mix disjoint bases" `Quick
      test_blk_mix_base_offsets_disjoint;
    Alcotest.test_case "fs_churn verifies" `Quick test_fs_churn_verifies;
    Alcotest.test_case "mixed profile" `Quick test_mixed_profile;
    Alcotest.test_case "traffic: constant rate gated" `Quick
      test_traffic_constant_rate_gated;
    Alcotest.test_case "traffic: poisson count" `Quick
      test_traffic_poisson_reaches_count;
    Alcotest.test_case "traffic: demux key" `Quick
      test_traffic_tags_carry_demux_key;
  ]
