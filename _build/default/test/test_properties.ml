(* Cross-cutting property tests: invariants that must survive arbitrary
   schedules, random workload shapes and fault injection. *)

module Machine = Vmk_hw.Machine
module Frame = Vmk_hw.Frame
module Kernel = Vmk_ukernel.Kernel
module Sysif = Vmk_ukernel.Sysif
module Hypervisor = Vmk_vmm.Hypervisor
module Hcall = Vmk_vmm.Hcall
module Counter = Vmk_trace.Counter
module Accounts = Vmk_trace.Accounts
module Scenario = Vmk_core.Scenario
module Apps = Vmk_workloads.Apps

(* Every IPC send is either delivered exactly once or fails with an error:
   for N clients each sending M messages to an echo server, the server's
   receive count equals total successful sends. *)
let prop_ipc_conservation =
  QCheck.Test.make ~name:"ipc: every successful call is served exactly once"
    ~count:25
    QCheck.(pair (int_range 1 6) (int_range 1 8))
    (fun (clients, calls) ->
      let mach = Machine.create ~seed:77L () in
      let k = Kernel.create mach in
      let served = ref 0 in
      let acked = ref 0 in
      let server =
        Kernel.spawn k ~name:"server" (fun () ->
            let rec loop (c, _) =
              incr served;
              loop (Sysif.reply_wait c (Sysif.msg 0))
            in
            loop (Sysif.recv Sysif.Any))
      in
      for i = 1 to clients do
        ignore
          (Kernel.spawn k
             ~name:(Printf.sprintf "c%d" i)
             (fun () ->
               for _ = 1 to calls do
                 match Sysif.call server (Sysif.msg 1) with
                 | _ -> incr acked
                 | exception Sysif.Ipc_error _ -> ()
               done))
      done;
      ignore (Kernel.run k);
      !served = clients * calls && !acked = clients * calls)

(* Frames are conserved across arbitrary sequences of page flips between
   domains: allocation count never changes, every frame keeps exactly one
   owner. *)
let prop_flip_conserves_frames =
  QCheck.Test.make ~name:"vmm: page flips conserve frames and ownership"
    ~count:25
    QCheck.(list_of_size Gen.(1 -- 30) bool)
    (fun directions ->
      let mach = Machine.create ~seed:78L () in
      let h = Hypervisor.create mach in
      let free_before = Frame.free_count mach.Machine.frames in
      let box = ref None in
      let _a =
        Hypervisor.create_domain h ~name:"a" (fun () ->
            let frame = List.hd (Hcall.alloc_frames 1) in
            box := Some frame;
            List.iter
              (fun dir ->
                let f = Option.get !box in
                let mine = f.Frame.owner = "a" in
                if dir && mine then Hcall.grant_transfer ~to_dom:1 ~frame:f
                else if (not dir) && mine then ()
                else Hcall.yield ())
              directions;
            ignore (Hcall.block ~timeout:1_000L ()))
      in
      let _b =
        Hypervisor.create_domain h ~name:"b" (fun () ->
            let rec wait () =
              match !box with
              | Some f -> f
              | None ->
                  Hcall.yield ();
                  wait ()
            in
            let f = wait () in
            List.iter
              (fun dir ->
                if dir && f.Frame.owner = "b" then
                  Hcall.grant_transfer ~to_dom:0 ~frame:f
                else Hcall.yield ())
              directions;
            ignore (Hcall.block ~timeout:1_000L ()))
      in
      ignore (Hypervisor.run h);
      let f = Option.get !box in
      Frame.free_count mach.Machine.frames = free_before - 1
      && (f.Frame.owner = "a" || f.Frame.owner = "b")
      && f.Frame.generation
         = Counter.get mach.Machine.counters "vmm.page_flip")

(* Cycle accounting is lossless: the clock never advances without the
   charge landing in some account (busy or idle jumps only). We verify
   busy <= now and that both grow monotonically through a run. *)
let prop_accounting_bounded_by_clock =
  QCheck.Test.make ~name:"accounting: busy cycles never exceed virtual time"
    ~count:20
    QCheck.(int_range 1 40)
    (fun rounds ->
      let app () = Apps.mixed ~rounds () () in
      let outcome = Scenario.run_xen ~app () in
      Int64.compare outcome.Scenario.busy_cycles outcome.Scenario.cycles <= 0
      && Int64.compare outcome.Scenario.busy_cycles 0L > 0)

(* Killing random subsets of threads never corrupts the kernel: the run
   always terminates (no livelock) and surviving threads finish. *)
let prop_random_kills_never_wedge =
  QCheck.Test.make ~name:"kernel: random kills terminate cleanly" ~count:25
    QCheck.(pair (int_range 2 6) (list_of_size Gen.(1 -- 4) (int_range 0 5)))
    (fun (threads, kills) ->
      let mach = Machine.create ~seed:79L () in
      let k = Kernel.create mach in
      let finished = ref 0 in
      let tids =
        List.init threads (fun i ->
            Kernel.spawn k
              ~name:(Printf.sprintf "t%d" i)
              (fun () ->
                let peer_hint = ((i + 1) mod threads) + 1 in
                for _ = 1 to 5 do
                  Sysif.burn 500;
                  (* Some threads also talk to each other. *)
                  if i land 1 = 0 then
                    try Sysif.send peer_hint (Sysif.msg 1)
                    with Sysif.Ipc_error _ -> ()
                  else
                    try ignore (Sysif.recv Sysif.Any)
                    with Sysif.Ipc_error _ -> ()
                done;
                incr finished))
      in
      (* Kill a random subset mid-flight. *)
      List.iter
        (fun victim_index ->
          match List.nth_opt tids (victim_index mod threads) with
          | Some tid ->
              Vmk_sim.Engine.after mach.Machine.engine
                (Int64.of_int (500 * (victim_index + 1)))
                (fun () -> Kernel.kill k tid)
          | None -> ())
        kills;
      match Kernel.run k ~max_dispatches:200_000 with
      | exception _ -> false
      | Kernel.Dispatch_limit -> false
      | Kernel.Idle | Kernel.Condition -> !finished <= threads)

(* Domain kills likewise: the hypervisor always quiesces. *)
let prop_random_domain_kills_never_wedge =
  QCheck.Test.make ~name:"hypervisor: random domain kills terminate" ~count:20
    QCheck.(list_of_size Gen.(1 -- 3) (int_range 0 3))
    (fun kills ->
      let mach = Machine.create ~seed:80L () in
      let h = Hypervisor.create mach in
      let offers = Array.make 4 None in
      for i = 0 to 3 do
        ignore
          (Hypervisor.create_domain h
             ~name:(Printf.sprintf "d%d" i)
             (fun () ->
               let port = Hcall.evtchn_alloc_unbound ((i + 1) mod 4) in
               offers.(i) <- Some port;
               (* Bounded handshake wait: a peer killed before publishing
                  must not leave us spinning forever. *)
               let rec wait tries =
                 if tries = 0 then None
                 else
                   match offers.((i + 3) mod 4) with
                   | Some p -> Some p
                   | None ->
                       Hcall.yield ();
                       wait (tries - 1)
               in
               match wait 300 with
               | None -> ()
               | Some peer ->
                   let my =
                     Hcall.evtchn_bind ~remote_dom:((i + 3) mod 4)
                       ~remote_port:peer
                   in
                   for _ = 1 to 4 do
                     (try Hcall.evtchn_send my with Hcall.Hcall_error _ -> ());
                     ignore (Hcall.block ~timeout:5_000L ())
                   done))
      done;
      List.iter
        (fun victim ->
          Vmk_sim.Engine.after mach.Machine.engine
            (Int64.of_int (1_000 * (victim + 1)))
            (fun () -> Hypervisor.kill_domain h (victim mod 4)))
        kills;
      match Hypervisor.run h ~max_dispatches:200_000 with
      | exception _ -> false
      | Hypervisor.Dispatch_limit -> false
      | Hypervisor.Idle | Hypervisor.Condition -> true)

(* The three ports always observe identical application-level results for
   a deterministic workload: same syscall count, same completed ops. *)
let prop_ports_agree_on_application_results =
  QCheck.Test.make ~name:"ports: identical app results on all three structures"
    ~count:10
    QCheck.(pair (int_range 1 12) (int_range 1 8))
    (fun (rounds, syscalls_per_round) ->
      let run scenario =
        let stats = Apps.stats () in
        let outcome =
          scenario (fun () ->
              Apps.mixed ~stats ~rounds ~syscalls_per_round ~net_every:0
                ~blk_every:3 () ())
        in
        (stats.Apps.completed, stats.Apps.errors, Scenario.counter outcome "gsys.count")
      in
      let n = run (fun app -> Scenario.run_native ~app ()) in
      let x = run (fun app -> Scenario.run_xen ~net:false ~app ()) in
      let l = run (fun app -> Scenario.run_l4 ~net:false ~app ()) in
      n = x && x = l)

(* XenStore: last write wins, removal is final, and every write under a
   watched prefix pends the watcher's port — for arbitrary operation
   sequences. *)
let prop_xenstore_semantics =
  QCheck.Test.make ~name:"xenstore: last-write-wins + watch coverage" ~count:30
    QCheck.(list_of_size Gen.(1 -- 20) (pair (int_range 0 3) small_nat))
    (fun ops ->
      let mach = Machine.create ~seed:81L () in
      let h = Hypervisor.create mach in
      let model : (string, string) Hashtbl.t = Hashtbl.create 8 in
      let watch_hits = ref 0 in
      let expected_hits =
        List.length (List.filter (fun (k, _) -> k = 0) ops)
      in
      let checked = ref true in
      let _watcher =
        Hypervisor.create_domain h ~name:"watcher" (fun () ->
            let _port = Hcall.xs_watch "k/0" in
            let rec loop () =
              match Hcall.block ~timeout:1_000_000L () with
              | Hcall.Events _ ->
                  incr watch_hits;
                  loop ()
              | Hcall.Timed_out -> ()
            in
            loop ())
      in
      let _actor =
        Hypervisor.create_domain h ~name:"actor" (fun () ->
            List.iter
              (fun (key, value) ->
                let path = Printf.sprintf "k/%d" key in
                if value mod 5 = 0 then begin
                  Hcall.xs_rm path;
                  Hashtbl.remove model path
                end
                else begin
                  Hcall.xs_write ~path ~value:(string_of_int value);
                  Hashtbl.replace model path (string_of_int value)
                end;
                Hcall.burn 2_000)
              ops;
            (* Compare against the model. *)
            for key = 0 to 3 do
              let path = Printf.sprintf "k/%d" key in
              if Hcall.xs_read path <> Hashtbl.find_opt model path then
                checked := false
            done)
      in
      ignore (Hypervisor.run h);
      (* Watches fire on writes AND removals? Our semantics: only writes
         pend; coalescing means hits <= writes-to-k/0 and >= 1 if any. *)
      ignore expected_hits;
      !checked)

(* Parallax under concurrent clients: every client's read-back always
   matches its own last write, whatever the interleaving. *)
let prop_parallax_isolation =
  QCheck.Test.make ~name:"parallax: per-client isolation under interleaving"
    ~count:8
    QCheck.(pair (int_range 2 3) (int_range 3 8))
    (fun (nclients, ops) ->
      let mach = Machine.create ~seed:83L () in
      let h = Hypervisor.create mach in
      let upstream = Vmk_vmm.Blk_channel.create () in
      let chans = List.init nclients (fun _ -> Vmk_vmm.Blk_channel.create ()) in
      let dom0 =
        Hypervisor.create_domain h ~name:"dom0" ~privileged:true
          (Vmk_vmm.Dom0.body mach ~blk:[ upstream ])
      in
      let parallax =
        Hypervisor.create_domain h ~name:"parallax"
          (Vmk_vmm.Parallax.body mach ~clients:chans ~upstream ~dom0)
      in
      let failures = ref 0 and done_count = ref 0 in
      List.iteri
        (fun i chan ->
          ignore
            (Hypervisor.create_domain h
               ~name:(Printf.sprintf "c%d" i)
               (fun () ->
                 let mux = Vmk_vmm.Evt_mux.create () in
                 let front =
                   Vmk_vmm.Blkfront.connect chan ~backend:parallax ()
                 in
                 Vmk_vmm.Evt_mux.on mux
                   (Vmk_vmm.Blkfront.port front)
                   (fun () -> Vmk_vmm.Blkfront.pump front);
                 for op = 1 to ops do
                   let sector = op mod 4 in
                   let tag = (i * 10_000) + op in
                   let ok =
                     Vmk_vmm.Blkfront.write front ~mux ~sector ~bytes:512 ~tag
                       ~timeout:50_000_000L ()
                   in
                   if not ok then incr failures
                   else begin
                     match
                       Vmk_vmm.Blkfront.read front ~mux ~sector ~bytes:512
                         ~timeout:50_000_000L ()
                     with
                     | Some got when got = tag -> ()
                     | Some _ | None -> incr failures
                   end
                 done;
                 incr done_count)))
        chans;
      ignore (Hypervisor.run h ~until:(fun () -> !done_count = nclients));
      !failures = 0 && !done_count = nclients)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_ipc_conservation;
    QCheck_alcotest.to_alcotest prop_flip_conserves_frames;
    QCheck_alcotest.to_alcotest prop_accounting_bounded_by_clock;
    QCheck_alcotest.to_alcotest prop_random_kills_never_wedge;
    QCheck_alcotest.to_alcotest prop_random_domain_kills_never_wedge;
    QCheck_alcotest.to_alcotest prop_ports_agree_on_application_results;
    QCheck_alcotest.to_alcotest prop_xenstore_semantics;
    QCheck_alcotest.to_alcotest prop_parallax_isolation;
  ]
