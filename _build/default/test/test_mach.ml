(* Tests for the first-generation (Mach-style) kernel variant: ports,
   asynchronous buffered messaging, queue limits, and the cost gap vs the
   synchronous rendezvous kernel. *)

module Machine = Vmk_hw.Machine
module Mach_kernel = Vmk_ukernel.Mach_kernel
module Mif = Vmk_ukernel.Mach_kernel.Mif
module Kernel = Vmk_ukernel.Kernel
module Sysif = Vmk_ukernel.Sysif
module Counter = Vmk_trace.Counter

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fresh () =
  let mach = Machine.create ~seed:14L () in
  (mach, Mach_kernel.create mach)

let msg ?(words = 0) ?(ool = 0) ?(tag = 0) label =
  { Mif.mlabel = label; inline_words = words; ool_bytes = ool; tag }

let test_send_is_asynchronous () =
  let _mach, k = fresh () in
  let sent_before_recv = ref false in
  let port_box = ref None in
  let _a =
    Mach_kernel.spawn k ~name:"a" (fun () ->
        let port = Mif.port_create () in
        port_box := Some port;
        (* Send completes without any receiver. *)
        Mif.send port (msg 1);
        Mif.send port (msg 2);
        sent_before_recv := true;
        let m1 = Mif.recv port in
        let m2 = Mif.recv port in
        assert (m1.Mif.mlabel = 1 && m2.Mif.mlabel = 2))
  in
  ignore (Mach_kernel.run k);
  check_bool "buffered send returned immediately" true !sent_before_recv;
  check_int "no live threads" 0 (Mach_kernel.thread_count k)

let test_qlimit_blocks_sender () =
  let _mach, k = fresh () in
  let receiver_got = ref 0 in
  let port_box = ref None in
  let _sender =
    Mach_kernel.spawn k ~name:"sender" (fun () ->
        let port = Mif.port_create ~qlimit:2 () in
        port_box := Some port;
        (* Third send must block until the drainer catches up. *)
        for i = 1 to 4 do
          Mif.send port (msg i)
        done)
  in
  let _drainer =
    Mach_kernel.spawn k ~name:"drainer" (fun () ->
        let rec wait () =
          match !port_box with
          | Some p -> p
          | None ->
              Mif.yield ();
              wait ()
        in
        let port = wait () in
        for _ = 1 to 4 do
          ignore (Mif.recv port);
          incr receiver_got
        done)
  in
  ignore (Mach_kernel.run k);
  check_int "all four delivered despite qlimit 2" 4 !receiver_got

let test_fifo_per_port () =
  let _mach, k = fresh () in
  let order = ref [] in
  let _t =
    Mach_kernel.spawn k ~name:"t" (fun () ->
        let port = Mif.port_create () in
        List.iter (fun i -> Mif.send port (msg i)) [ 3; 1; 2 ];
        for _ = 1 to 3 do
          order := (Mif.recv port).Mif.mlabel :: !order
        done)
  in
  ignore (Mach_kernel.run k);
  Alcotest.(check (list int)) "fifo" [ 3; 1; 2 ] (List.rev !order)

let test_bad_port_errors () =
  let _mach, k = fresh () in
  let got_error = ref false in
  let _t =
    Mach_kernel.spawn k ~name:"t" (fun () ->
        try Mif.send 9999 (msg 0)
        with Mif.Mach_error _ -> got_error := true)
  in
  ignore (Mach_kernel.run k);
  check_bool "bad port" true !got_error

let test_message_counters () =
  let mach, k = fresh () in
  let _t =
    Mach_kernel.spawn k ~name:"t" (fun () ->
        let port = Mif.port_create () in
        Mif.send port (msg 1);
        ignore (Mif.recv port))
  in
  ignore (Mach_kernel.run k);
  check_int "sent" 1 (Counter.get mach.Machine.counters "mach.msg_sent");
  check_int "delivered" 1 (Counter.get mach.Machine.counters "mach.msg_delivered")

let test_crash_contained () =
  let mach, k = fresh () in
  let other = ref false in
  let _bad = Mach_kernel.spawn k ~name:"bad" (fun () -> failwith "oops") in
  let _ok = Mach_kernel.spawn k ~name:"ok" (fun () -> other := true) in
  ignore (Mach_kernel.run k);
  check_bool "other ran" true !other;
  check_int "crash counted" 1
    (Counter.get mach.Machine.counters "mach.thread_crashed")

(* The design-point gap itself, in miniature: a cross-task round trip on
   the buffered-port kernel costs several times the rendezvous kernel's. *)
let test_round_trip_gap () =
  let mach_rt =
    let mach = Machine.create ~seed:15L () in
    let k = Mach_kernel.create mach in
    let req_box = ref None in
    let measured = ref 0.0 in
    let _server =
      Mach_kernel.spawn k ~name:"server" (fun () ->
          let port = Mif.port_create () in
          req_box := Some port;
          let rec loop () =
            let m = Mif.recv port in
            Mif.send m.Mif.tag (msg 0);
            loop ()
          in
          loop ())
    in
    let _client =
      Mach_kernel.spawn k ~name:"client" (fun () ->
          let reply = Mif.port_create () in
          let rec wait () =
            match !req_box with
            | Some p -> p
            | None ->
                Mif.yield ();
                wait ()
          in
          let req = wait () in
          let t0 = Machine.now mach in
          for _ = 1 to 50 do
            Mif.send req (msg 1 ~tag:reply);
            ignore (Mif.recv reply)
          done;
          measured := Int64.to_float (Int64.sub (Machine.now mach) t0) /. 50.0;
          Mif.exit ())
    in
    ignore (Mach_kernel.run k ~until:(fun () -> !measured > 0.0));
    !measured
  in
  let l4_rt =
    let mach = Machine.create ~seed:15L () in
    let k = Kernel.create mach in
    let measured = ref 0.0 in
    let server =
      Kernel.spawn k ~name:"server" (fun () ->
          let rec loop (c, _) = loop (Sysif.reply_wait c (Sysif.msg 0)) in
          loop (Sysif.recv Sysif.Any))
    in
    let _client =
      Kernel.spawn k ~name:"client" (fun () ->
          let t0 = Machine.now mach in
          for _ = 1 to 50 do
            ignore (Sysif.call server (Sysif.msg 1))
          done;
          measured := Int64.to_float (Int64.sub (Machine.now mach) t0) /. 50.0)
    in
    ignore (Kernel.run k);
    !measured
  in
  check_bool
    (Printf.sprintf "mach RT (%.0f) >= 2x l4 RT (%.0f)" mach_rt l4_rt)
    true
    (mach_rt >= 2.0 *. l4_rt)

let suite =
  [
    Alcotest.test_case "send is asynchronous" `Quick test_send_is_asynchronous;
    Alcotest.test_case "qlimit blocks sender" `Quick test_qlimit_blocks_sender;
    Alcotest.test_case "fifo per port" `Quick test_fifo_per_port;
    Alcotest.test_case "bad port errors" `Quick test_bad_port_errors;
    Alcotest.test_case "message counters" `Quick test_message_counters;
    Alcotest.test_case "crash contained" `Quick test_crash_contained;
    Alcotest.test_case "round-trip gap vs rendezvous" `Quick test_round_trip_gap;
  ]
