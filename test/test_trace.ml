(* Tests for counters, cycle accounts and the trace ring. *)

open Vmk_trace

let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)
let check_bool = Alcotest.(check bool)

(* --- Counter --- *)

let test_counter_incr_and_get () =
  let s = Counter.create_set () in
  Counter.incr s "a";
  Counter.incr s "a";
  Counter.add s "b" 5;
  check_int "a" 2 (Counter.get s "a");
  check_int "b" 5 (Counter.get s "b");
  check_int "missing" 0 (Counter.get s "zzz")

let test_counter_negative_add_rejected () =
  let s = Counter.create_set () in
  Alcotest.check_raises "negative" (Invalid_argument "Counter.add: negative amount")
    (fun () -> Counter.add s "x" (-1))

let test_counter_reset_keeps_names () =
  let s = Counter.create_set () in
  Counter.add s "x" 3;
  Counter.reset s;
  check_int "zeroed" 0 (Counter.get s "x");
  check_bool "no nonzero counters listed" true (Counter.to_list s = [])

let test_counter_matching_prefix () =
  let s = Counter.create_set () in
  Counter.add s "ipc.send" 2;
  Counter.add s "ipc.recv" 3;
  Counter.add s "irq.raise" 7;
  check_int "sum ipc.*" 5 (Counter.sum_matching s ~prefix:"ipc.");
  check_int "matching count" 2 (List.length (Counter.matching s ~prefix:"ipc."))

let test_counter_interned_id_same_cell () =
  (* E21 hot paths intern once and bump by id; the string shim must hit
     the very same cell, whichever API touched the name first. *)
  let s = Counter.create_set () in
  Counter.incr s "uk.ipc.rendezvous" (* string API creates the cell *);
  let id = Counter.id s "uk.ipc.rendezvous" in
  Counter.incr_id s id;
  Counter.add s "uk.ipc.rendezvous" 3;
  Counter.add_id s id 5;
  check_int "both APIs hit one cell (string view)" 10
    (Counter.get s "uk.ipc.rendezvous");
  check_int "both APIs hit one cell (id view)" 10 (Counter.get_id s id);
  check_int "re-interning is stable" id (Counter.id s "uk.ipc.rendezvous");
  Alcotest.(check string) "id resolves back to its name" "uk.ipc.rendezvous"
    (Counter.name s id);
  (* Interning alone leaves the counter at zero and invisible in dumps,
     so eager wiring cannot perturb replay output. *)
  let s2 = Counter.create_set () in
  ignore (Counter.id s2 "wired.but.never.hit");
  check_bool "interned-but-zero not listed" true (Counter.to_list s2 = []);
  Alcotest.check_raises "negative add_id rejected"
    (Invalid_argument "Counter.add: negative amount") (fun () ->
      Counter.add_id s id (-1))

let test_counter_to_list_sorted () =
  let s = Counter.create_set () in
  Counter.incr s "zeta";
  Counter.incr s "alpha";
  Alcotest.(check (list string)) "sorted names" [ "alpha"; "zeta" ]
    (List.map fst (Counter.to_list s))

(* --- Accounts --- *)

let test_accounts_charge_and_share () =
  let a = Accounts.create () in
  Accounts.charge a "dom0" 750L;
  Accounts.charge a "guest" 250L;
  check_i64 "dom0" 750L (Accounts.balance a "dom0");
  Alcotest.(check (float 1e-9)) "share" 0.75 (Accounts.share a "dom0")

let test_accounts_idle_excluded_from_busy () =
  let a = Accounts.create () in
  Accounts.charge a "idle" 1000L;
  Accounts.charge a "guest" 100L;
  check_i64 "busy total" 100L (Accounts.busy_total a);
  check_i64 "grand total" 1100L (Accounts.total a);
  Alcotest.(check (float 1e-9)) "guest share of busy" 1.0 (Accounts.share a "guest")

let test_accounts_current_switching () =
  let a = Accounts.create () in
  Alcotest.(check string) "starts idle" "idle" (Accounts.current a);
  Accounts.switch_to a "vmm";
  Accounts.charge_current a 10L;
  check_i64 "charged vmm" 10L (Accounts.balance a "vmm")

let test_accounts_with_account_restores () =
  let a = Accounts.create () in
  Accounts.switch_to a "guest";
  let result = Accounts.with_account a "vmm" (fun () ->
      Accounts.charge_current a 5L;
      "ok")
  in
  Alcotest.(check string) "returns" "ok" result;
  Alcotest.(check string) "restored" "guest" (Accounts.current a);
  check_i64 "vmm charged" 5L (Accounts.balance a "vmm")

let test_accounts_with_account_restores_on_exception () =
  let a = Accounts.create () in
  Accounts.switch_to a "guest";
  (try
     Accounts.with_account a "vmm" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check string) "restored after raise" "guest" (Accounts.current a)

let test_accounts_negative_charge_rejected () =
  let a = Accounts.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Accounts.charge: negative")
    (fun () -> Accounts.charge a "x" (-1L))

let test_accounts_share_empty () =
  let a = Accounts.create () in
  Alcotest.(check (float 1e-9)) "no charges" 0.0 (Accounts.share a "x")

(* --- Ring --- *)

let test_ring_retains_tail () =
  let r = Ring.create ~capacity:3 in
  for i = 1 to 5 do
    Ring.record r ~time:(Int64.of_int i) i
  done;
  check_int "length" 3 (Ring.length r);
  check_int "appended" 5 (Ring.appended r);
  check_int "dropped" 2 (Ring.dropped r);
  Alcotest.(check (list int)) "tail retained" [ 3; 4; 5 ]
    (List.map snd (Ring.to_list r))

let test_ring_under_capacity () =
  let r = Ring.create ~capacity:10 in
  Ring.record r ~time:1L "a";
  Ring.record r ~time:2L "b";
  Alcotest.(check (list string)) "in order" [ "a"; "b" ]
    (List.map snd (Ring.to_list r));
  check_int "dropped" 0 (Ring.dropped r)

let test_ring_find_last () =
  let r = Ring.create ~capacity:8 in
  List.iteri (fun i v -> Ring.record r ~time:(Int64.of_int i) v)
    [ "x"; "match"; "y"; "match"; "z" ];
  match Ring.find_last r ~f:(fun v -> v = "match") with
  | Some (t, _) -> check_i64 "most recent match" 3L t
  | None -> Alcotest.fail "expected a match"

let test_ring_clear () =
  let r = Ring.create ~capacity:4 in
  Ring.record r ~time:1L 1;
  Ring.clear r;
  check_int "empty" 0 (Ring.length r);
  check_int "appended reset" 0 (Ring.appended r)

let prop_ring_keeps_most_recent =
  QCheck.Test.make ~name:"ring retains exactly the most recent entries"
    ~count:200
    QCheck.(pair (int_range 1 16) (list small_int))
    (fun (capacity, entries) ->
      let r = Ring.create ~capacity in
      List.iteri (fun i v -> Ring.record r ~time:(Int64.of_int i) v) entries;
      let n = List.length entries in
      let expected =
        List.filteri (fun i _ -> i >= n - capacity) entries
      in
      List.map snd (Ring.to_list r) = expected)

let suite =
  [
    Alcotest.test_case "counter: incr/add/get" `Quick test_counter_incr_and_get;
    Alcotest.test_case "counter: negative rejected" `Quick
      test_counter_negative_add_rejected;
    Alcotest.test_case "counter: reset" `Quick test_counter_reset_keeps_names;
    Alcotest.test_case "counter: prefix matching" `Quick
      test_counter_matching_prefix;
    Alcotest.test_case "counter: interned id shares the string cell" `Quick
      test_counter_interned_id_same_cell;
    Alcotest.test_case "counter: sorted listing" `Quick
      test_counter_to_list_sorted;
    Alcotest.test_case "accounts: charge and share" `Quick
      test_accounts_charge_and_share;
    Alcotest.test_case "accounts: idle excluded" `Quick
      test_accounts_idle_excluded_from_busy;
    Alcotest.test_case "accounts: current switching" `Quick
      test_accounts_current_switching;
    Alcotest.test_case "accounts: with_account restores" `Quick
      test_accounts_with_account_restores;
    Alcotest.test_case "accounts: restores on exception" `Quick
      test_accounts_with_account_restores_on_exception;
    Alcotest.test_case "accounts: negative rejected" `Quick
      test_accounts_negative_charge_rejected;
    Alcotest.test_case "accounts: empty share" `Quick test_accounts_share_empty;
    Alcotest.test_case "ring: retains tail" `Quick test_ring_retains_tail;
    Alcotest.test_case "ring: under capacity" `Quick test_ring_under_capacity;
    Alcotest.test_case "ring: find_last" `Quick test_ring_find_last;
    Alcotest.test_case "ring: clear" `Quick test_ring_clear;
    QCheck_alcotest.to_alcotest prop_ring_keeps_most_recent;
  ]
