(* Tests for the workload library: app bodies on the native port and the
   traffic generators. *)

module Machine = Vmk_hw.Machine
module Nic = Vmk_hw.Nic
module Engine = Vmk_sim.Engine
module Counter = Vmk_trace.Counter
module Port_native = Vmk_guest.Port_native
module Apps = Vmk_workloads.Apps
module Traffic = Vmk_workloads.Traffic

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let on_native app =
  let mach = Machine.create ~seed:9L () in
  Port_native.run mach app;
  mach

let test_null_syscalls_counts () =
  let stats = Apps.stats () in
  let mach = on_native (Apps.null_syscalls ~stats ~iterations:25 ()) in
  check_int "completed" 25 stats.Apps.completed;
  check_int "errors" 0 stats.Apps.errors;
  check_int "gsys counter" 25 (Counter.get mach.Machine.counters "gsys.count")

let test_compute_burns () =
  let stats = Apps.stats () in
  let mach = on_native (Apps.compute ~stats ~iterations:10 ~work:1_000 ()) in
  check_int "completed" 10 stats.Apps.completed;
  check_bool "clock moved at least 10k" true (Machine.now mach >= 10_000L)

let test_blk_mix_verifies_readback () =
  let stats = Apps.stats () in
  let _mach = on_native (Apps.blk_mix ~stats ~ops:30 ~span:8 ~seed:3 ()) in
  check_int "completed all ops" 30 stats.Apps.completed;
  check_int "no corruption" 0 stats.Apps.errors;
  check_bool "bytes counted" true (stats.Apps.bytes = 30 * 512)

let test_blk_mix_base_offsets_disjoint () =
  (* Two runs with different bases on the same machine must not clash. *)
  let mach = Machine.create ~seed:9L () in
  let s1 = Apps.stats () and s2 = Apps.stats () in
  Port_native.run mach (fun () ->
      Apps.blk_mix ~stats:s1 ~base:0 ~ops:20 ~span:8 ~seed:1 () ();
      Apps.blk_mix ~stats:s2 ~base:1000 ~ops:20 ~span:8 ~seed:1 () ());
  check_int "first clean" 0 s1.Apps.errors;
  check_int "second clean" 0 s2.Apps.errors

let test_fs_churn_verifies () =
  let stats = Apps.stats () in
  let _mach = on_native (Apps.fs_churn ~stats ~files:3 ~blocks_per_file:4 ()) in
  check_int "no errors" 0 stats.Apps.errors;
  check_int "writes+reads" (3 * 4 * 2) stats.Apps.completed

let test_mixed_profile () =
  let stats = Apps.stats () in
  let mach =
    on_native
      (Apps.mixed ~stats ~rounds:20 ~syscalls_per_round:5 ~net_every:2
         ~blk_every:4 ())
  in
  check_int "no errors" 0 stats.Apps.errors;
  (* 20*5 getpids + 10 sends + 5 write/read pairs *)
  check_int "op count" ((20 * 5) + 10 + 10) stats.Apps.completed;
  check_bool "net tx happened" true (Nic.tx_submitted mach.Machine.nic = 10)

let test_traffic_constant_rate_gated () =
  let mach = Machine.create ~seed:9L () in
  let open_gate = ref false in
  let t =
    Traffic.constant_rate mach
      ~gate:(fun () -> !open_gate)
      ~period:1_000L ~len:100 ~count:5 ()
  in
  Machine.burn mach 10_000;
  check_int "gated: nothing injected" 0 (Traffic.injected t);
  open_gate := true;
  Machine.burn mach 10_000;
  check_int "all injected after gate" 5 (Traffic.injected t);
  check_bool "done" true (Traffic.done_ t);
  Machine.burn mach 10_000;
  check_int "stops at count" 5 (Traffic.injected t)

let test_traffic_poisson_reaches_count () =
  let mach = Machine.create ~seed:9L () in
  let t =
    Traffic.poisson_rate mach
      ~gate:(fun () -> true)
      ~mean_period:500.0 ~len:64 ~count:20 ()
  in
  Machine.burn mach 100_000;
  check_bool "all injected eventually" true (Traffic.done_ t);
  check_int "exactly count" 20 (Traffic.injected t)

let test_traffic_tags_carry_demux_key () =
  let mach = Machine.create ~seed:9L () in
  Nic.post_rx_buffer mach.Machine.nic
    (Vmk_hw.Frame.alloc mach.Machine.frames ~owner:"t" ());
  let _t =
    Traffic.constant_rate mach
      ~gate:(fun () -> true)
      ~period:100L ~len:64 ~count:1 ~key:7 ()
  in
  Machine.burn mach 1_000;
  match Nic.rx_ready mach.Machine.nic with
  | Some ev -> check_int "demux key" 7 (ev.Nic.tag / 1_000_000)
  | None -> Alcotest.fail "no packet"

(* --- Scenario generator (E22) --- *)

module Scenario = Vmk_workloads.Scenario
module Rng = Vmk_sim.Rng

let small_cfg =
  {
    Scenario.tenants = 4;
    guests = 4;
    mean_flow_gap = 5_000.0;
    zipf_alpha = 2.2;
    size_min = 1;
    size_max = 256;
    on_mean = 80_000.0;
    off_mean = 40_000.0;
    ramp = Scenario.diurnal;
    horizon = 2_000_000L;
  }

let test_scenario_same_seed_bit_for_bit () =
  let a = Scenario.generate ~seed:11L small_cfg in
  let b = Scenario.generate ~seed:11L small_cfg in
  check_int "same flow count" (Scenario.flows a) (Scenario.flows b);
  check_int "same fingerprint" (Scenario.fingerprint a)
    (Scenario.fingerprint b);
  for i = 0 to Scenario.flows a - 1 do
    if
      Scenario.at a i <> Scenario.at b i
      || Scenario.size a i <> Scenario.size b i
      || Scenario.tenant a i <> Scenario.tenant b i
      || Scenario.dst a i <> Scenario.dst b i
    then Alcotest.failf "flow %d differs between same-seed runs" i
  done;
  let c = Scenario.generate ~seed:12L small_cfg in
  check_bool "different seed diverges" true
    (Scenario.fingerprint a <> Scenario.fingerprint c)

let test_scenario_sorted_and_packed_fields () =
  let s = Scenario.generate ~seed:3L small_cfg in
  check_bool "nonempty" true (Scenario.flows s > 100);
  let total = ref 0 in
  for i = 0 to Scenario.flows s - 1 do
    if i > 0 && Scenario.at s i < Scenario.at s (i - 1) then
      Alcotest.fail "arrivals not sorted";
    let sz = Scenario.size s i
    and tn = Scenario.tenant s i
    and src = Scenario.src s i
    and dst = Scenario.dst s i in
    check_bool "size in bounds" true (sz >= 1 && sz <= 256);
    check_bool "tenant in range" true (tn >= 0 && tn < 4);
    check_int "src follows tenant" ((tn mod 4) + 1) src;
    check_bool "dst is another guest" true
      (dst >= 1 && dst <= 4 && dst <> src);
    total := !total + sz
  done;
  check_int "total_packets consistent" !total (Scenario.total_packets s)

let test_zipf_tail_exponent () =
  (* Rank-frequency sanity: for a bounded power law with density ~ s^-a,
     the ccdf slope between well-populated sizes approximates -(a-1). *)
  let rng = Rng.create ~seed:21L () in
  let n = 50_000 and alpha = 2.5 in
  let le8 = ref 0 and le64 = ref 0 in
  for _ = 1 to n do
    let v = Scenario.zipf rng ~alpha ~lo:1 ~hi:4096 in
    check_bool "in bounds" true (v >= 1 && v <= 4096);
    if v > 8 then incr le8;
    if v > 64 then incr le64
  done;
  let ccdf8 = float_of_int !le8 /. float_of_int n
  and ccdf64 = float_of_int !le64 /. float_of_int n in
  check_bool "tail populated" true (ccdf64 > 0.0);
  let slope = log (ccdf8 /. ccdf64) /. log (64.0 /. 8.0) in
  if abs_float (slope -. (alpha -. 1.0)) > 0.35 then
    Alcotest.failf "tail slope %.3f, expected ~%.1f" slope (alpha -. 1.0)

let test_scenario_poisson_mean () =
  (* Flat ramp, effectively always-ON single tenant: the flow count must
     match horizon/mean_gap within a few standard deviations. *)
  let cfg =
    {
      small_cfg with
      Scenario.tenants = 1;
      ramp = Scenario.flat;
      on_mean = 1e12;
      off_mean = 1.0;
      mean_flow_gap = 1_000.0;
      horizon = 20_000_000L;
    }
  in
  let s = Scenario.generate ~seed:4L cfg in
  let expected = 20_000.0 in
  let got = float_of_int (Scenario.flows s) in
  if abs_float (got -. expected) > 5.0 *. sqrt expected then
    Alcotest.failf "poisson count %.0f, expected %.0f +- %.0f" got expected
      (5.0 *. sqrt expected);
  check_bool "always on" true (Scenario.on_fraction s ~tenant:0 > 0.999)

let test_scenario_duty_cycle () =
  (* Long horizon, many dwell alternations: ON fraction ~ on/(on+off). *)
  let cfg =
    {
      small_cfg with
      Scenario.tenants = 2;
      ramp = Scenario.flat;
      on_mean = 50_000.0;
      off_mean = 150_000.0;
      horizon = 40_000_000L;
    }
  in
  let s = Scenario.generate ~seed:8L cfg in
  for tn = 0 to 1 do
    let f = Scenario.on_fraction s ~tenant:tn in
    if abs_float (f -. 0.25) > 0.08 then
      Alcotest.failf "tenant %d duty %.3f, expected ~0.25" tn f
  done

let test_scenario_tenant_rate_hook () =
  let cfg = { small_cfg with Scenario.ramp = Scenario.flat } in
  let s =
    Scenario.generate ~seed:5L
      ~tenant_rate:(fun tn -> if tn = 0 then 8.0 else 1.0)
      cfg
  in
  let per = Array.make 4 0 in
  Scenario.iter s (fun ~flow:_ ~at:_ ~tenant ~src:_ ~dst:_ ~size:_ ->
      per.(tenant) <- per.(tenant) + 1);
  check_bool "aggressor dominates" true
    (per.(0) > 3 * per.(1) && per.(0) > 3 * per.(2) && per.(0) > 3 * per.(3))

let test_traffic_replay_open_loop () =
  (* Replay injects the whole schedule against the NIC with no gate. *)
  let cfg =
    {
      small_cfg with
      Scenario.tenants = 2;
      guests = 2;
      mean_flow_gap = 20_000.0;
      size_max = 4;
      horizon = 400_000L;
    }
  in
  let s = Scenario.generate ~seed:6L cfg in
  check_bool "has flows" true (Scenario.flows s > 0);
  let mach = Machine.create ~seed:9L () in
  let arrivals = ref [] in
  let t =
    Traffic.replay mach s ~len:64 ~pkt_gap:100L
      ~on_inject:(fun ~tag ~at -> arrivals := (tag, at) :: !arrivals)
      ()
  in
  Machine.burn mach (Int64.to_int cfg.Scenario.horizon + 400_000);
  check_bool "open loop: everything went in" true (Traffic.done_ t);
  check_int "count = total packets" (Scenario.total_packets s)
    (Traffic.injected t)

let suite =
  [
    Alcotest.test_case "null_syscalls counts" `Quick test_null_syscalls_counts;
    Alcotest.test_case "compute burns" `Quick test_compute_burns;
    Alcotest.test_case "blk_mix verifies readback" `Quick
      test_blk_mix_verifies_readback;
    Alcotest.test_case "blk_mix disjoint bases" `Quick
      test_blk_mix_base_offsets_disjoint;
    Alcotest.test_case "fs_churn verifies" `Quick test_fs_churn_verifies;
    Alcotest.test_case "mixed profile" `Quick test_mixed_profile;
    Alcotest.test_case "traffic: constant rate gated" `Quick
      test_traffic_constant_rate_gated;
    Alcotest.test_case "traffic: poisson count" `Quick
      test_traffic_poisson_reaches_count;
    Alcotest.test_case "traffic: demux key" `Quick
      test_traffic_tags_carry_demux_key;
    Alcotest.test_case "scenario: same seed bit-for-bit" `Quick
      test_scenario_same_seed_bit_for_bit;
    Alcotest.test_case "scenario: sorted, packed fields" `Quick
      test_scenario_sorted_and_packed_fields;
    Alcotest.test_case "scenario: zipf tail exponent" `Quick
      test_zipf_tail_exponent;
    Alcotest.test_case "scenario: poisson mean" `Quick
      test_scenario_poisson_mean;
    Alcotest.test_case "scenario: on/off duty cycle" `Quick
      test_scenario_duty_cycle;
    Alcotest.test_case "scenario: tenant rate hook" `Quick
      test_scenario_tenant_rate_hook;
    Alcotest.test_case "traffic: replay is open-loop" `Quick
      test_traffic_replay_open_loop;
  ]
