let () =
  Alcotest.run "vmk"
    [
      ("sim", Test_sim.suite);
      ("stats", Test_stats.suite);
      ("trace", Test_trace.suite);
      ("hw", Test_hw.suite);
      ("ukernel", Test_ukernel.suite);
      ("mach", Test_mach.suite);
      ("vmm", Test_vmm.suite);
      ("guest", Test_guest.suite);
      ("workloads", Test_workloads.suite);
      ("faults", Test_faults.suite);
      ("overload", Test_overload.suite);
      ("vnet", Test_vnet.suite);
      ("smp", Test_smp.suite);
      ("mitig", Test_mitig.suite);
      ("cap", Test_cap.suite);
      ("core", Test_core.suite);
      ("properties", Test_properties.suite);
      ("arch-matrix", Test_arch_matrix.suite);
      ("migrate", Test_migrate.suite);
    ]
