(* The overload policy library (E15): deterministic token buckets,
   bounded queues with explicit full-queue policies, seeded backoff —
   and the end-to-end property that a policied overload run replays
   bit-for-bit, jitter included. *)

module Machine = Vmk_hw.Machine
module Nic = Vmk_hw.Nic
module Rng = Vmk_sim.Rng
module Counter = Vmk_trace.Counter
module Kernel = Vmk_ukernel.Kernel
module Sysif = Vmk_ukernel.Sysif
module Net_server = Vmk_ukernel.Net_server
module Port_l4 = Vmk_guest.Port_l4
module Traffic = Vmk_workloads.Traffic
module Apps = Vmk_workloads.Apps
module Overload = Vmk_overload.Overload
module Tb = Overload.Token_bucket
module Bq = Overload.Bounded_queue

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- token bucket --- *)

let test_bucket_burst_then_rate () =
  let b = Tb.create ~period:100L ~burst:2 () in
  check_bool "burst admits" true (Tb.admit b ~now:0L);
  check_bool "burst admits twice" true (Tb.admit b ~now:0L);
  check_bool "third is shed" false (Tb.admit b ~now:0L);
  check_bool "still dry before refill" false (Tb.admit b ~now:99L);
  check_bool "one token after a period" true (Tb.admit b ~now:100L);
  check_bool "and only one" false (Tb.admit b ~now:100L);
  (* A long idle gap refills only up to burst. *)
  check_int "capped refill" 2 (Tb.available b ~now:10_000L);
  check_int "admitted tally" 3 (Tb.admitted b);
  check_int "denied tally" 3 (Tb.denied b)

let prop_bucket_rate_bound =
  QCheck.Test.make ~name:"token bucket: admitted <= burst + w/period + 1"
    ~count:200
    QCheck.(
      triple (int_range 1 50) (int_range 1 8)
        (list_of_size Gen.(1 -- 60) (int_range 0 30)))
    (fun (period, burst, gaps) ->
      let b = Tb.create ~period:(Int64.of_int period) ~burst () in
      let now = ref 0L in
      let admitted = ref 0 in
      List.iter
        (fun gap ->
          now := Int64.add !now (Int64.of_int gap);
          if Tb.admit b ~now:!now then incr admitted)
        gaps;
      let w = Int64.to_int !now in
      !admitted <= burst + (w / period) + 1)

(* --- bounded queue --- *)

let test_queue_reject () =
  let q = Bq.create ~capacity:2 () in
  check_bool "first accepted" true (Bq.push q ~now:0L 1 = Bq.Accepted);
  check_bool "second accepted" true (Bq.push q ~now:0L 2 = Bq.Accepted);
  check_bool "full rejects the newest" true (Bq.push q ~now:0L 3 = Bq.Rejected);
  check_int "length bounded" 2 (Bq.length q);
  check_bool "FIFO kept" true (Bq.pop q = Some 1);
  check_bool "after a pop there is room" true (Bq.push q ~now:1L 4 = Bq.Accepted);
  check_int "rejected tally" 1 (Bq.rejected q);
  check_int "peak" 2 (Bq.peak q)

let test_queue_drop_oldest () =
  let q = Bq.create ~policy:Bq.Drop_oldest ~capacity:2 () in
  ignore (Bq.push q ~now:0L 1);
  ignore (Bq.push q ~now:0L 2);
  check_bool "full displaces the head" true (Bq.push q ~now:0L 3 = Bq.Displaced 1);
  check_bool "fresh data won" true (Bq.pop q = Some 2);
  check_bool "newest survived" true (Bq.pop q = Some 3);
  check_int "displaced tally" 1 (Bq.displaced q)

let test_queue_deadline () =
  let q = Bq.create ~policy:(Bq.Block_with_deadline 500L) ~capacity:1 () in
  ignore (Bq.push q ~now:0L 1);
  check_bool "full returns the retry deadline" true
    (Bq.push q ~now:100L 2 = Bq.Retry_until 600L);
  check_int "nothing was enqueued" 1 (Bq.length q)

let prop_queue_bounded =
  QCheck.Test.make
    ~name:"bounded queue: length and peak never exceed capacity" ~count:200
    QCheck.(
      pair (int_range 1 6)
        (list_of_size Gen.(1 -- 80) (pair bool (int_range 0 100))))
    (fun (capacity, ops) ->
      let policies =
        [ Bq.Reject; Bq.Drop_oldest; Bq.Block_with_deadline 10L ]
      in
      List.for_all
        (fun policy ->
          let q = Bq.create ~policy ~capacity () in
          let now = ref 0L in
          List.for_all
            (fun (is_push, v) ->
              now := Int64.add !now 1L;
              if is_push then ignore (Bq.push q ~now:!now v)
              else ignore (Bq.pop q);
              Bq.length q <= capacity && Bq.peak q <= capacity)
            ops)
        policies)

let test_queue_peak_counter () =
  let c = Counter.create_set () in
  Overload.note_queue_peak c ~name:"rx" 3;
  Overload.note_queue_peak c ~name:"rx" 7;
  Overload.note_queue_peak c ~name:"rx" 5;
  check_int "counter keeps the maximum" 7
    (Counter.get c (Overload.queue_peak_prefix ^ "rx"))

(* --- backoff --- *)

let test_backoff_replays () =
  let schedule seed =
    let mach = Machine.create ~seed () in
    let b =
      Overload.Backoff.create ~attempts:6 ~base:100L ~cap:1_000L
        (Rng.split mach.Machine.rng)
    in
    List.init 5 (fun n -> Overload.Backoff.delay b ~attempt:n)
  in
  check_bool "same seed, same delays (jitter included)" true
    (schedule 9L = schedule 9L);
  check_bool "different seed, different jitter" true
    (schedule 9L <> schedule 10L)

let test_backoff_run_counts () =
  let mach = Machine.create ~seed:5L () in
  let counters = mach.Machine.counters in
  let b =
    Overload.Backoff.create ~attempts:5 ~base:100L ~jitter:1
      (Rng.split mach.Machine.rng)
  in
  let slept = ref 0L in
  let tries = ref 0 in
  let try_once () =
    incr tries;
    if !tries < 4 then None else Some !tries
  in
  let result =
    Overload.Backoff.run b ~counters ~sleep:(fun d -> slept := Int64.add !slept d)
      try_once
  in
  check_bool "succeeded on the fourth attempt" true (result = Some 4);
  check_int "three retries counted" 3 (Counter.get counters Overload.retry_counter);
  check_bool "waited the scheduled cycles" true
    (Int64.of_int (Counter.get counters Overload.backoff_counter) = !slept);
  (* Exhausting the budget gives up with None. *)
  let b2 =
    Overload.Backoff.create ~attempts:2 ~base:10L (Rng.split mach.Machine.rng)
  in
  check_bool "gives up after the budget" true
    (Overload.Backoff.run b2 ~counters ~sleep:(fun _ -> ()) (fun () -> None)
    = None)

(* --- kernel send timeout --- *)

let test_send_timeout_drops_sender () =
  let mach = Machine.create ~seed:6L () in
  let k = Kernel.create mach in
  let receiver =
    Kernel.spawn k ~name:"deaf" (fun () ->
        (* Busy elsewhere while the sender waits, then finally listen:
           the timed-out sender must be gone from the queue. *)
        Sysif.sleep 10_000L;
        match Sysif.recv ~timeout:1_000L Sysif.Any with
        | _ -> ()
        | exception Sysif.Ipc_error _ -> ())
  in
  let timed_out = ref false in
  let _sender =
    Kernel.spawn k ~name:"sender" (fun () ->
        match Sysif.send ~timeout:1_000L receiver (Sysif.msg 7) with
        | () -> ()
        | exception Sysif.Ipc_error Sysif.Timeout -> timed_out := true)
  in
  ignore (Kernel.run k);
  check_bool "send timed out" true !timed_out;
  check_int "send timeout itemized" 1
    (Counter.get mach.Machine.counters "uk.ipc.send_timeout")

(* --- end-to-end replay --- *)

(* A policied microkernel stack under 4x overload, twice from the same
   seed: wall clock, every counter (drops, sheds, retries, backoff
   cycles, queue peaks) and the app's arrival record must be identical
   bit-for-bit. *)
let overloaded_run () =
  let mach = Machine.create ~seed:99L () in
  let k = Kernel.create mach in
  let admit = Tb.create ~period:4_000L ~burst:4 () in
  let net =
    Kernel.spawn k ~name:"net-server" ~priority:2 ~account:Net_server.account
      (fun () -> Net_server.body mach ~admit ~rx_capacity:8 ())
  in
  let retry =
    Port_l4.retry ~mach ~attempts:3 ~timeout:200_000L ~base_delay:10_000L
      (Rng.split mach.Machine.rng)
  in
  let gk =
    Kernel.spawn k ~name:"guest-kernel" ~priority:3 ~account:Port_l4.gk_account
      (Port_l4.guest_kernel_body ~retry ~net:(Some net) ~blk:None)
  in
  let arrivals = ref [] in
  let completed = ref false in
  let _app =
    Kernel.spawn k ~name:"app" ~priority:4 ~account:"app"
      (Port_l4.app_body mach ~gk (fun () ->
           Apps.net_rx_probe
             ~now:(fun () -> Machine.now mach)
             ~record:(fun ~tag ~at -> arrivals := (tag, at) :: !arrivals)
             ~packets:40 () ();
           completed := true))
  in
  let _src =
    Traffic.constant_rate mach
      ~gate:(fun () -> Nic.rx_buffers_posted mach.Machine.nic > 0)
      ~period:1_000L ~len:256 ~count:40 ()
  in
  ignore (Kernel.run k ~until:(fun () -> !completed));
  ignore (Kernel.run k ~max_dispatches:100_000);
  ( Machine.now mach,
    Counter.to_list mach.Machine.counters,
    List.sort compare !arrivals )

let test_overload_run_replays () =
  let a = overloaded_run () in
  let b = overloaded_run () in
  let wall_a, counters_a, arrivals_a = a in
  let _, _, _ = b in
  check_bool "same seed, same overloaded run" true (a = b);
  check_bool "the run did shed or drop" true
    (List.exists
       (fun (name, _) ->
         name = Overload.shed_counter || name = Overload.drop_counter)
       counters_a);
  check_bool "virtual time advanced" true (Int64.compare wall_a 0L > 0);
  check_bool "packets arrived" true (arrivals_a <> [])

let suite =
  [
    Alcotest.test_case "bucket: burst then steady rate" `Quick
      test_bucket_burst_then_rate;
    QCheck_alcotest.to_alcotest prop_bucket_rate_bound;
    Alcotest.test_case "queue: reject policy" `Quick test_queue_reject;
    Alcotest.test_case "queue: drop-oldest policy" `Quick
      test_queue_drop_oldest;
    Alcotest.test_case "queue: block-with-deadline policy" `Quick
      test_queue_deadline;
    QCheck_alcotest.to_alcotest prop_queue_bounded;
    Alcotest.test_case "queue peak counter keeps the max" `Quick
      test_queue_peak_counter;
    Alcotest.test_case "backoff: jitter replays from the seed" `Quick
      test_backoff_replays;
    Alcotest.test_case "backoff: run itemizes retries and cycles" `Quick
      test_backoff_run_counts;
    Alcotest.test_case "kernel: send timeout drops the queued sender" `Quick
      test_send_timeout_drops_sender;
    Alcotest.test_case "policied overload run replays bit-for-bit" `Quick
      test_overload_run_replays;
  ]
