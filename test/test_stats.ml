(* Tests for summaries, regression, histograms and table rendering. *)

open Vmk_stats

let check_int = Alcotest.(check int)
let check_float msg = Alcotest.(check (float 1e-9)) msg
let check_floatish msg = Alcotest.(check (float 1e-6)) msg

(* --- Summary --- *)

let test_summary_empty () =
  let s = Summary.create () in
  check_int "count" 0 (Summary.count s);
  check_float "mean" 0.0 (Summary.mean s);
  check_float "stddev" 0.0 (Summary.stddev s);
  check_float "percentile" 0.0 (Summary.percentile s 50.0)

let test_summary_basics () =
  let s = Summary.of_list [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  check_int "count" 8 (Summary.count s);
  check_floatish "mean" 5.0 (Summary.mean s);
  check_floatish "variance (unbiased)" (32.0 /. 7.0) (Summary.variance s);
  check_float "min" 2.0 (Summary.min s);
  check_float "max" 9.0 (Summary.max s);
  check_float "total" 40.0 (Summary.total s)

let test_summary_percentiles () =
  let s = Summary.of_list (List.init 101 float_of_int) in
  check_floatish "p0" 0.0 (Summary.percentile s 0.0);
  check_floatish "p50" 50.0 (Summary.percentile s 50.0);
  check_floatish "p100" 100.0 (Summary.percentile s 100.0);
  check_floatish "p25 interpolates" 25.0 (Summary.percentile s 25.0)

let test_summary_percentile_out_of_range () =
  let s = Summary.of_list [ 1.0 ] in
  Alcotest.check_raises "p>100"
    (Invalid_argument "Summary.percentile: p not in [0,100]") (fun () ->
      ignore (Summary.percentile s 101.0))

let test_summary_single_observation () =
  let s = Summary.of_list [ 42.0 ] in
  check_float "mean" 42.0 (Summary.mean s);
  check_float "variance" 0.0 (Summary.variance s);
  check_float "median" 42.0 (Summary.median s)

let test_summary_merge () =
  let a = Summary.of_list [ 1.0; 2.0 ] and b = Summary.of_list [ 3.0; 4.0 ] in
  let m = Summary.merge a b in
  check_int "count" 4 (Summary.count m);
  check_floatish "mean" 2.5 (Summary.mean m)

let test_summary_interleaved_percentile_add () =
  (* percentile must re-sort after later adds *)
  let s = Summary.create () in
  Summary.add s 10.0;
  ignore (Summary.percentile s 50.0);
  Summary.add s 0.0;
  check_floatish "median re-sorted" 5.0 (Summary.median s)

let prop_summary_mean_bounds =
  QCheck.Test.make ~name:"summary mean lies within [min,max]" ~count:300
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Summary.of_list xs in
      Summary.mean s >= Summary.min s -. 1e-9
      && Summary.mean s <= Summary.max s +. 1e-9)

let prop_summary_welford_matches_naive =
  QCheck.Test.make ~name:"Welford variance matches two-pass" ~count:200
    QCheck.(list_of_size Gen.(2 -- 40) (float_bound_exclusive 100.0))
    (fun xs ->
      let s = Summary.of_list xs in
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let ss =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs
      in
      let naive = ss /. (n -. 1.0) in
      abs_float (naive -. Summary.variance s) < 1e-6 *. (1.0 +. naive))

(* --- Regression --- *)

let test_regression_exact_line () =
  let points = List.init 10 (fun i -> (float_of_int i, (3.0 *. float_of_int i) +. 7.0)) in
  let f = Regression.fit points in
  check_floatish "slope" 3.0 f.Regression.slope;
  check_floatish "intercept" 7.0 f.Regression.intercept;
  check_floatish "r2" 1.0 f.Regression.r2

let test_regression_predict () =
  let f = Regression.fit [ (0.0, 1.0); (1.0, 3.0) ] in
  check_floatish "predict" 5.0 (Regression.predict f 2.0)

let test_regression_flat_line () =
  let f = Regression.fit [ (0.0, 5.0); (1.0, 5.0); (2.0, 5.0) ] in
  check_floatish "slope" 0.0 f.Regression.slope;
  check_floatish "r2 of constant y" 1.0 f.Regression.r2

let test_regression_rejects_degenerate () =
  Alcotest.check_raises "single point"
    (Invalid_argument "Regression.fit: need >= 2 points") (fun () ->
      ignore (Regression.fit [ (1.0, 1.0) ]));
  Alcotest.check_raises "vertical line"
    (Invalid_argument "Regression.fit: x values are all equal") (fun () ->
      ignore (Regression.fit [ (1.0, 1.0); (1.0, 2.0) ]))

let test_regression_noisy_r2_below_one () =
  let points = [ (0.0, 0.0); (1.0, 2.0); (2.0, 1.0); (3.0, 4.0); (4.0, 2.5) ] in
  let f = Regression.fit points in
  Alcotest.(check bool) "0 < r2 < 1" true (f.Regression.r2 > 0.0 && f.Regression.r2 < 1.0)

let test_pearson_signs () =
  let up = List.init 10 (fun i -> (float_of_int i, float_of_int (2 * i))) in
  let down = List.init 10 (fun i -> (float_of_int i, float_of_int (-i))) in
  check_floatish "perfect positive" 1.0 (Regression.pearson up);
  check_floatish "perfect negative" (-1.0) (Regression.pearson down);
  check_floatish "degenerate" 0.0 (Regression.pearson [ (1.0, 1.0) ])

let prop_regression_residuals_sum_zero =
  QCheck.Test.make ~name:"OLS residuals sum to ~0" ~count:200
    QCheck.(list_of_size Gen.(3 -- 30) (pair (float_bound_exclusive 100.0) (float_bound_exclusive 100.0)))
    (fun points ->
      let xs = List.map fst points in
      let distinct = List.sort_uniq compare xs in
      QCheck.assume (List.length distinct > 1);
      let f = Regression.fit points in
      let residual_sum =
        List.fold_left
          (fun acc (x, y) -> acc +. (y -. Regression.predict f x))
          0.0 points
      in
      abs_float residual_sum < 1e-6 *. float_of_int (List.length points))

(* --- Histogram --- *)

let test_histogram_bucketing () =
  let h = Histogram.create ~buckets:10 ~lo:0.0 ~hi:100.0 () in
  Histogram.add h 5.0;
  Histogram.add h 15.0;
  Histogram.add h 15.5;
  Histogram.add h 99.9;
  check_int "bucket 0" 1 (Histogram.bucket_value h 0);
  check_int "bucket 1" 2 (Histogram.bucket_value h 1);
  check_int "bucket 9" 1 (Histogram.bucket_value h 9);
  check_int "count" 4 (Histogram.count h)

let test_histogram_under_overflow () =
  let h = Histogram.create ~buckets:4 ~lo:0.0 ~hi:10.0 () in
  Histogram.add h (-1.0);
  Histogram.add h 10.0;
  Histogram.add h 25.0;
  check_int "underflow" 1 (Histogram.underflow h);
  check_int "overflow" 2 (Histogram.overflow h)

let test_histogram_mode () =
  let h = Histogram.create ~buckets:5 ~lo:0.0 ~hi:50.0 () in
  List.iter (Histogram.add h) [ 12.0; 13.0; 14.0; 42.0 ];
  match Histogram.mode h with
  | Some (lo, hi) ->
      check_floatish "mode lo" 10.0 lo;
      check_floatish "mode hi" 20.0 hi
  | None -> Alcotest.fail "expected a mode"

let test_histogram_rejects_bad_bounds () =
  Alcotest.check_raises "hi <= lo" (Invalid_argument "Histogram.create: hi <= lo")
    (fun () -> ignore (Histogram.create ~lo:1.0 ~hi:1.0 ()))

(* --- Table --- *)

let string_contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i =
    if i + nl > hl then false
    else if String.sub haystack i nl = needle then true
    else scan (i + 1)
  in
  nl = 0 || scan 0

let test_table_renders_aligned () =
  let t = Table.create ~header:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let out = Table.to_string t in
  Alcotest.(check bool) "has header" true
    (String.length out > 0 && String.sub out 0 4 = "name");
  Alcotest.(check bool) "contains row" true (string_contains out "alpha")

let test_table_pads_short_rows () =
  let t = Table.create ~header:[ "a"; "b"; "c" ] in
  Table.add_row t [ "x" ];
  check_int "row count" 1 (Table.row_count t);
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Table.add_row: too many cells") (fun () ->
      Table.add_row t [ "1"; "2"; "3"; "4" ])

let test_table_cellf () =
  Alcotest.(check string) "formats" "12.50" (Table.cellf "%.2f" 12.5)

(* --- Quantile (E22 streaming sketches) --- *)

let exact_nearest_rank xs q =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  let r = int_of_float (ceil (q *. float_of_int n)) in
  let r = max 1 (min n r) in
  a.(r - 1)

let test_sketch_empty_and_single () =
  let s = Quantile.Sketch.create () in
  check_int "count" 0 (Quantile.Sketch.count s);
  check_float "empty quantile" 0.0 (Quantile.Sketch.quantile s 0.5);
  Quantile.Sketch.add s 42;
  check_float "single p50" 42.0 (Quantile.Sketch.quantile s 0.5);
  check_float "single p999" 42.0 (Quantile.Sketch.quantile s 0.999);
  check_int "min" 42 (Quantile.Sketch.min_value s);
  check_int "max" 42 (Quantile.Sketch.max_value s)

let test_sketch_constant_stream () =
  (* Degenerate input: every sample equal. The [min,max] clamp must make
     all quantiles exact even when the value lands mid-bucket. *)
  let s = Quantile.Sketch.create () in
  for _ = 1 to 1000 do
    Quantile.Sketch.add s 123_457
  done;
  List.iter
    (fun q -> check_float "constant" 123_457.0 (Quantile.Sketch.quantile s q))
    [ 0.0; 0.5; 0.99; 0.999; 1.0 ]

let test_sketch_bounded_error () =
  (* Mixed-magnitude stream: sketch quantiles stay within the advertised
     relative error (2^-7 at the default bits=7; allow 2^-6 slack for
     nearest-rank rounding at bucket edges). *)
  let rng = Vmk_sim.Rng.create ~seed:99L () in
  let xs = ref [] in
  let s = Quantile.Sketch.create () in
  for _ = 1 to 5000 do
    let v =
      let base = 1 lsl Vmk_sim.Rng.int rng 18 in
      base + Vmk_sim.Rng.int rng base
    in
    xs := v :: !xs;
    Quantile.Sketch.add s v
  done;
  List.iter
    (fun q ->
      let exact = float_of_int (exact_nearest_rank !xs q) in
      let est = Quantile.Sketch.quantile s q in
      let rel = abs_float (est -. exact) /. exact in
      if rel > 1.0 /. 64.0 then
        Alcotest.failf "q=%.3f exact=%.0f est=%.0f rel=%.4f" q exact est rel)
    [ 0.5; 0.9; 0.99; 0.999 ]

let test_sketch_negative_rejected () =
  let s = Quantile.Sketch.create () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Quantile.Sketch.add: negative sample") (fun () ->
      Quantile.Sketch.add s (-1))

let prop_sketch_merge_equals_single_stream =
  (* The load-bearing E22 property: merging per-shard sketches must be
     *bit-identical* to one sketch over the concatenated stream — that is
     what makes lock-free per-core collection sound. *)
  QCheck.Test.make ~name:"sketch: merge of shards == single stream" ~count:200
    QCheck.(list_of_size Gen.(1 -- 5) (list_of_size Gen.(0 -- 60) (0 -- 1_000_000)))
    (fun shards ->
      let merged = Quantile.Sketch.create () in
      List.iter
        (fun shard ->
          let s = Quantile.Sketch.create () in
          List.iter (Quantile.Sketch.add s) shard;
          Quantile.Sketch.merge_into ~into:merged s)
        shards;
      let single = Quantile.Sketch.create () in
      List.iter (Quantile.Sketch.add single) (List.concat shards);
      Quantile.Sketch.fingerprint merged = Quantile.Sketch.fingerprint single
      && List.for_all
           (fun q ->
             Quantile.Sketch.quantile merged q
             = Quantile.Sketch.quantile single q)
           [ 0.5; 0.99; 0.999 ])

let test_p2_small_n_exact () =
  (* Fewer observations than markers: P2 must fall back to exact ranks. *)
  let p = Quantile.P2.create 0.5 in
  check_float "empty" 0.0 (Quantile.P2.value p);
  Quantile.P2.add p 9.0;
  Quantile.P2.add p 1.0;
  Quantile.P2.add p 5.0;
  check_float "n=3 median" 5.0 (Quantile.P2.value p)

let test_p2_tracks_median () =
  let p = Quantile.P2.create 0.5 in
  let rng = Vmk_sim.Rng.create ~seed:5L () in
  for _ = 1 to 2000 do
    Quantile.P2.add p (Vmk_sim.Rng.float rng 100.0)
  done;
  let v = Quantile.P2.value p in
  Alcotest.(check bool) "median of U(0,100) near 50" true
    (v > 45.0 && v < 55.0)

let suite =
  [
    Alcotest.test_case "summary: empty" `Quick test_summary_empty;
    Alcotest.test_case "summary: basics" `Quick test_summary_basics;
    Alcotest.test_case "summary: percentiles" `Quick test_summary_percentiles;
    Alcotest.test_case "summary: percentile bounds" `Quick
      test_summary_percentile_out_of_range;
    Alcotest.test_case "summary: single observation" `Quick
      test_summary_single_observation;
    Alcotest.test_case "summary: merge" `Quick test_summary_merge;
    Alcotest.test_case "summary: re-sorts after add" `Quick
      test_summary_interleaved_percentile_add;
    QCheck_alcotest.to_alcotest prop_summary_mean_bounds;
    QCheck_alcotest.to_alcotest prop_summary_welford_matches_naive;
    Alcotest.test_case "regression: exact line" `Quick test_regression_exact_line;
    Alcotest.test_case "regression: predict" `Quick test_regression_predict;
    Alcotest.test_case "regression: flat line" `Quick test_regression_flat_line;
    Alcotest.test_case "regression: degenerate inputs" `Quick
      test_regression_rejects_degenerate;
    Alcotest.test_case "regression: noisy r2" `Quick
      test_regression_noisy_r2_below_one;
    Alcotest.test_case "regression: pearson signs" `Quick test_pearson_signs;
    QCheck_alcotest.to_alcotest prop_regression_residuals_sum_zero;
    Alcotest.test_case "histogram: bucketing" `Quick test_histogram_bucketing;
    Alcotest.test_case "histogram: under/overflow" `Quick
      test_histogram_under_overflow;
    Alcotest.test_case "histogram: mode" `Quick test_histogram_mode;
    Alcotest.test_case "histogram: bad bounds" `Quick
      test_histogram_rejects_bad_bounds;
    Alcotest.test_case "table: renders" `Quick test_table_renders_aligned;
    Alcotest.test_case "table: padding and limits" `Quick
      test_table_pads_short_rows;
    Alcotest.test_case "table: cellf" `Quick test_table_cellf;
    Alcotest.test_case "quantile: empty/single" `Quick
      test_sketch_empty_and_single;
    Alcotest.test_case "quantile: constant stream exact" `Quick
      test_sketch_constant_stream;
    Alcotest.test_case "quantile: bounded relative error" `Quick
      test_sketch_bounded_error;
    Alcotest.test_case "quantile: rejects negatives" `Quick
      test_sketch_negative_rejected;
    QCheck_alcotest.to_alcotest prop_sketch_merge_equals_single_stream;
    Alcotest.test_case "quantile: p2 small n exact" `Quick
      test_p2_small_n_exact;
    Alcotest.test_case "quantile: p2 tracks median" `Quick
      test_p2_tracks_median;
  ]
