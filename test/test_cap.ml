(* The E19 capability layer: rights monotonicity, exact-subtree
   revocation, denial accounting, a random derive/revoke property
   against a model tree, the toolstack restart rate limit, fault-plan
   target validation, and both-stacks revocation-storm replay. *)

module Counter = Vmk_trace.Counter
module Cap = Vmk_cap.Cap
module Machine = Vmk_hw.Machine
module Hypervisor = Vmk_vmm.Hypervisor
module Driver_dom = Vmk_vmm.Driver_dom
module Faults = Vmk_faults.Faults
module Exp_e19 = Vmk_core.Exp_e19

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fresh () = Cap.create ~counters:(Counter.create_set ()) ()

(* --- units --- *)

let test_derive_monotone () =
  let t = fresh () in
  let parent_rights = Cap.r_read lor Cap.r_derive in
  let root = Cap.mint t ~dom:1 ~obj:100 ~rights:parent_rights in
  match Cap.derive t ~dom:1 ~handle:root ~to_dom:2 ~obj:101 ~rights:Cap.r_full with
  | Error _ -> Alcotest.fail "derive from r_derive parent must succeed"
  | Ok child ->
      let info = Option.get (Cap.lookup t ~dom:2 ~handle:child) in
      check_int "child rights are the intersection with the parent"
        parent_rights info.Cap.i_rights;
      check_bool "child cannot write (parent could not)" false
        (Cap.check t ~dom:2 ~handle:child ~need:Cap.r_write);
      (* A grandchild can only shrink further. *)
      (match
         Cap.derive t ~dom:2 ~handle:child ~to_dom:3 ~obj:102
           ~rights:(Cap.r_write lor Cap.r_read)
       with
      | Error _ -> Alcotest.fail "grandchild derive must succeed"
      | Ok gc ->
          let gi = Option.get (Cap.lookup t ~dom:3 ~handle:gc) in
          check_int "grandchild rights shrink to r_read" Cap.r_read
            gi.Cap.i_rights)

let test_revoke_exact_subtree () =
  let t = fresh () in
  let on_revoke _ ~depth:_ = () in
  let root = Cap.mint t ~dom:1 ~obj:200 ~rights:Cap.r_full in
  let ok = function Ok h -> h | Error _ -> Alcotest.fail "derive failed" in
  let a = ok (Cap.derive t ~dom:1 ~handle:root ~to_dom:2 ~obj:201 ~rights:Cap.r_full) in
  let b = ok (Cap.derive t ~dom:2 ~handle:a ~to_dom:3 ~obj:202 ~rights:Cap.r_full) in
  let c = ok (Cap.derive t ~dom:1 ~handle:root ~to_dom:4 ~obj:203 ~rights:Cap.r_full) in
  check_int "four caps live" 4 (Cap.count t);
  (match Cap.revoke t ~dom:2 ~handle:a ~self:true ~on_revoke with
  | Error _ -> Alcotest.fail "revoke of a must succeed"
  | Ok stats ->
      check_int "exactly the a-subtree died" 2 stats.Cap.r_removed;
      check_int "subtree depth 1" 1 stats.Cap.r_max_depth);
  check_bool "b gone" true (Cap.lookup t ~dom:3 ~handle:b = None);
  check_bool "root survives" true (Cap.lookup t ~dom:1 ~handle:root <> None);
  check_bool "sibling c survives" true (Cap.lookup t ~dom:4 ~handle:c <> None);
  check_int "two caps left" 2 (Cap.count t)

let test_denied_accounting () =
  let counters = Counter.create_set () in
  let t = Cap.create ~counters () in
  let h = Cap.mint t ~dom:1 ~obj:300 ~rights:Cap.r_read in
  check_bool "write check fails" false
    (Cap.check t ~dom:1 ~handle:h ~need:Cap.r_write);
  check_int "denied counted" 1 (Counter.get counters "cap.denied");
  (match Cap.derive t ~dom:1 ~handle:h ~to_dom:2 ~obj:301 ~rights:Cap.r_read with
  | Error `Denied -> ()
  | Ok _ | Error (`No_cap | `Quota) ->
      Alcotest.fail "derive without r_derive must be Denied");
  check_int "derive denial counted" 2 (Counter.get counters "cap.denied");
  (match
     Cap.revoke t ~dom:1 ~handle:h ~self:true ~on_revoke:(fun _ ~depth:_ -> ())
   with
  | Error `Denied -> ()
  | Ok _ | Error `No_cap -> Alcotest.fail "revoke without r_revoke must be Denied");
  check_int "revoke denial counted" 3 (Counter.get counters "cap.denied");
  check_int "minted once" 1 (Counter.get counters "cap.minted")

let test_grant_moves_subtree () =
  let t = fresh () in
  let ok = function Ok h -> h | Error _ -> Alcotest.fail "op failed" in
  let root = Cap.mint t ~dom:1 ~obj:400 ~rights:Cap.r_full in
  let a = ok (Cap.derive t ~dom:1 ~handle:root ~to_dom:2 ~obj:401 ~rights:Cap.r_full) in
  let b = ok (Cap.derive t ~dom:2 ~handle:a ~to_dom:3 ~obj:402 ~rights:Cap.r_full) in
  let moved = ok (Cap.grant t ~dom:2 ~handle:a ~to_dom:5 ~obj:405) in
  check_bool "source handle died" true (Cap.lookup t ~dom:2 ~handle:a = None);
  check_bool "moved cap lives in dom 5" true
    (Cap.lookup t ~dom:5 ~handle:moved <> None);
  (* The move preserved the tree: revoking the root still reaps b. *)
  (match
     Cap.revoke t ~dom:1 ~handle:root ~self:true
       ~on_revoke:(fun _ ~depth:_ -> ())
   with
  | Ok stats -> check_int "whole tree died" 3 stats.Cap.r_removed
  | Error _ -> Alcotest.fail "root revoke failed");
  check_bool "b reaped through the moved link" true
    (Cap.lookup t ~dom:3 ~handle:b = None);
  check_int "empty" 0 (Cap.count t)

let test_revoke_dom () =
  let t = fresh () in
  let ok = function Ok h -> h | Error _ -> Alcotest.fail "derive failed" in
  let r1 = Cap.mint t ~dom:7 ~obj:500 ~rights:Cap.r_full in
  let _r2 = Cap.mint t ~dom:7 ~obj:501 ~rights:Cap.r_full in
  let child =
    ok (Cap.derive t ~dom:7 ~handle:r1 ~to_dom:8 ~obj:502 ~rights:Cap.r_full)
  in
  let keeper = Cap.mint t ~dom:9 ~obj:503 ~rights:Cap.r_full in
  let stats = Cap.revoke_dom t ~dom:7 ~on_revoke:(fun _ ~depth:_ -> ()) in
  check_int "dom 7's caps and their derivations died" 3 stats.Cap.r_removed;
  check_bool "dom 8's derived cap reaped" true
    (Cap.lookup t ~dom:8 ~handle:child = None);
  check_bool "unrelated dom untouched" true
    (Cap.lookup t ~dom:9 ~handle:keeper <> None)

(* --- random derive/revoke sequences against a model tree --- *)

type mnode = {
  m_dom : int;
  m_handle : Cap.handle;
  m_rights : Cap.rights;
  m_parent : (int * Cap.handle) option;
}

let prop_random_tree =
  QCheck.Test.make
    ~name:"cap: random derive/revoke keeps table and model in lockstep"
    ~count:60
    QCheck.(
      list_of_size
        Gen.(5 -- 40)
        (triple (int_bound 1000) (int_bound 1000) bool))
    (fun ops ->
      let t = fresh () in
      let next_obj = ref 0 in
      let obj () = incr next_obj; 10_000 + !next_obj in
      let root = Cap.mint t ~dom:0 ~obj:(obj ()) ~rights:Cap.r_full in
      let model =
        ref [ { m_dom = 0; m_handle = root; m_rights = Cap.r_full; m_parent = None } ]
      in
      let rec subtree key =
        key
        :: List.concat_map
             (fun n ->
               if n.m_parent = Some key then subtree (n.m_dom, n.m_handle)
               else [])
             !model
      in
      List.iter
        (fun (a, b, is_derive) ->
          match !model with
          | [] -> ()
          | live ->
              let n = List.nth live (a mod List.length live) in
              if is_derive then begin
                let want = b land Cap.r_full in
                let to_dom = b mod 4 in
                match
                  Cap.derive t ~dom:n.m_dom ~handle:n.m_handle ~to_dom
                    ~obj:(obj ()) ~rights:want
                with
                | Ok h ->
                    if not (Cap.has n.m_rights Cap.r_derive) then
                      Alcotest.fail "derive succeeded without r_derive";
                    let expect = want land n.m_rights in
                    let info = Option.get (Cap.lookup t ~dom:to_dom ~handle:h) in
                    if info.Cap.i_rights <> expect then
                      Alcotest.fail "child rights exceed parent mask";
                    model :=
                      {
                        m_dom = to_dom;
                        m_handle = h;
                        m_rights = expect;
                        m_parent = Some (n.m_dom, n.m_handle);
                      }
                      :: !model
                | Error `Denied ->
                    if Cap.has n.m_rights Cap.r_derive then
                      Alcotest.fail "derive denied despite r_derive"
                | Error `Quota -> Alcotest.fail "no quota set in this model"
                | Error `No_cap -> Alcotest.fail "model said the cap was live"
              end
              else begin
                let reaped = ref 0 in
                match
                  Cap.revoke t ~dom:n.m_dom ~handle:n.m_handle ~self:true
                    ~on_revoke:(fun _ ~depth:_ -> incr reaped)
                with
                | Ok stats ->
                    if not (Cap.has n.m_rights Cap.r_revoke) then
                      Alcotest.fail "revoke succeeded without r_revoke";
                    let doomed = subtree (n.m_dom, n.m_handle) in
                    if stats.Cap.r_removed <> List.length doomed then
                      Alcotest.fail "revoke did not remove exactly the subtree";
                    if !reaped <> stats.Cap.r_removed then
                      Alcotest.fail "on_revoke fired wrong number of times";
                    model :=
                      List.filter
                        (fun m -> not (List.mem (m.m_dom, m.m_handle) doomed))
                        !model
                | Error `Denied ->
                    if Cap.has n.m_rights Cap.r_revoke then
                      Alcotest.fail "revoke denied despite r_revoke"
                | Error `No_cap -> Alcotest.fail "model said the cap was live"
              end)
        ops;
      Cap.count t = List.length !model
      && List.for_all
           (fun m -> Cap.lookup t ~dom:m.m_dom ~handle:m.m_handle <> None)
           !model)

(* --- satellite: toolstack restart rate limit --- *)

let test_toolstack_rate_limit () =
  let mach = Machine.create ~seed:5L () in
  let counters = mach.Machine.counters in
  let h = Hypervisor.create mach in
  let ts = Driver_dom.create () in
  (* A driver domain that dies instantly: every liveness poll wants a
     rebuild, so the sliding window must kick in after [burst]. *)
  let spec =
    Driver_dom.spec ~name:"flappy" ~privileged:false (fun ~restart:_ () -> ())
  in
  ignore
    (Hypervisor.create_domain h ~name:Driver_dom.toolstack_name
       ~privileged:true
       (Driver_dom.toolstack_body mach ts
          ~restart_limit:(2, 1_000_000L)
          ~period:50_000L [ spec ]));
  ignore
    (Hypervisor.run h ~until:(fun () ->
         Counter.get counters "toolstack.rate_limited" >= 3));
  check_int "only the burst restarted inside the window" 2
    (Counter.get counters "toolstack.restart");
  (* Deferred, not dropped: once the window slides past, the next poll
     rebuilds again. *)
  ignore
    (Hypervisor.run h ~until:(fun () ->
         Counter.get counters "toolstack.restart" >= 3));
  check_bool "a rebuild happened after the window slid" true
    (Counter.get counters "toolstack.restart" >= 3);
  Driver_dom.stop ts;
  ignore (Hypervisor.run h ~max_dispatches:1_000)

(* --- satellite: fault plans reject unknown kill targets --- *)

let test_faults_unknown_target () =
  let plan = [ Faults.Kill_at { at = 100L; target = "netdvr" (* typo *) } ] in
  (* Without a target universe the name passes (legacy behavior). *)
  Faults.validate plan;
  check_bool "typo'd kill target rejected at validate time" true
    (match Faults.validate ~targets:[ "netdrv"; "blkdrv" ] plan with
    | () -> false
    | exception Faults.Invalid_plan _ -> true);
  check_bool "memory-pressure victim checked too" true
    (match
       Faults.validate ~targets:[ "netdrv" ]
         [
           Faults.Memory_pressure
             { m_at = 10L; m_frames = 4; m_victim = "gone" };
         ]
     with
    | () -> false
    | exception Faults.Invalid_plan _ -> true);
  (* A known name passes with the universe supplied. *)
  Faults.validate ~targets:[ "netdrv" ]
    [ Faults.Kill_at { at = 100L; target = "netdrv" } ]

(* --- E19 chains and storm replay on both stacks --- *)

let test_uk_chain_exact () =
  let c = Exp_e19.uk_chain ~depth:3 in
  check_int "three caps removed" 3 c.Exp_e19.ch_removed;
  check_int "all three delegates faulted afterwards" 3 c.Exp_e19.ch_severed;
  check_bool "teardown took cycles" true (c.Exp_e19.ch_teardown > 0L)

let test_vmm_chain_exact () =
  let c = Exp_e19.vmm_chain ~depth:3 in
  check_int "2d caps removed" 6 c.Exp_e19.ch_removed;
  check_int "2d-1 forced unmaps" 5 c.Exp_e19.ch_forced;
  check_int "d-1 transitive grants" 2 c.Exp_e19.ch_transitive;
  check_int "every link saw Bad_gref" 3 c.Exp_e19.ch_severed

let test_storm_replay_uk () =
  let a = Exp_e19.uk_storm ~quick:true ~revoke:true in
  let b = Exp_e19.uk_storm ~quick:true ~revoke:true in
  check_bool "uk storm replays bit-for-bit" true (a = b);
  check_bool "victim denied" true (a.Exp_e19.st_victim_failed > 0);
  check_int "innocents delivered everything" a.Exp_e19.st_expected
    a.Exp_e19.st_innocent_rx

let test_storm_replay_vmm () =
  let a = Exp_e19.xen_storm ~quick:true ~revoke:true in
  let b = Exp_e19.xen_storm ~quick:true ~revoke:true in
  check_bool "vmm storm replays bit-for-bit" true (a = b);
  check_bool "cascade forced unmaps" true (a.Exp_e19.st_forced > 0);
  check_int "innocents delivered everything" a.Exp_e19.st_expected
    a.Exp_e19.st_innocent_rx

let suite =
  [
    Alcotest.test_case "derive: rights monotone" `Quick test_derive_monotone;
    Alcotest.test_case "revoke: exact subtree" `Quick test_revoke_exact_subtree;
    Alcotest.test_case "denied: accounted" `Quick test_denied_accounting;
    Alcotest.test_case "grant: move preserves tree" `Quick
      test_grant_moves_subtree;
    Alcotest.test_case "revoke_dom: domain death" `Quick test_revoke_dom;
    QCheck_alcotest.to_alcotest prop_random_tree;
    Alcotest.test_case "toolstack: restart rate limit" `Quick
      test_toolstack_rate_limit;
    Alcotest.test_case "faults: unknown kill target" `Quick
      test_faults_unknown_target;
    Alcotest.test_case "e19: uk chain exact" `Quick test_uk_chain_exact;
    Alcotest.test_case "e19: vmm chain exact" `Quick test_vmm_chain_exact;
    Alcotest.test_case "e19: uk storm replay" `Slow test_storm_replay_uk;
    Alcotest.test_case "e19: vmm storm replay" `Slow test_storm_replay_vmm;
  ]
