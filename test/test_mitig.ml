(* Tests for the E16 interrupt-mitigation layer: round-robin IRQ
   arbitration, mask-while-pending coalescing, the NIC hold-off window
   and poll API, batch admission, and the equivalence of the delivery
   disciplines. *)

open Vmk_hw
module Engine = Vmk_sim.Engine
module Counter = Vmk_trace.Counter
module Overload = Vmk_overload.Overload
module Exp_e16 = Vmk_core.Exp_e16

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Irq: round-robin arbitration (E16 satellite) --- *)

let test_irq_round_robin () =
  let c = Irq.create ~lines:4 in
  Irq.raise_line c 0;
  Irq.raise_line c 2;
  Irq.raise_line c 3;
  check_int "first scan starts at line 0" 0 (Option.get (Irq.next_pending c));
  Irq.ack c 0;
  Irq.raise_line c 0;
  check_int "resumes after last serviced" 2 (Option.get (Irq.next_pending c));
  Irq.ack c 2;
  check_int "continues" 3 (Option.get (Irq.next_pending c));
  Irq.ack c 3;
  check_int "wraps back around" 0 (Option.get (Irq.next_pending c));
  Irq.ack c 0;
  check_bool "drained" true (Irq.next_pending c = None)

let test_irq_no_starvation () =
  let c = Irq.create ~lines:4 in
  Irq.raise_line c 0;
  Irq.raise_line c 3;
  let serviced = ref [] in
  for _ = 1 to 6 do
    match Irq.next_pending c with
    | Some n ->
        Irq.ack c n;
        serviced := n :: !serviced;
        (* The chatty device re-raises the instant it is serviced. *)
        Irq.raise_line c 0
    | None -> ()
  done;
  check_bool "chatty line 0 cannot starve line 3" true (List.mem 3 !serviced)

let test_irq_mask_while_pending () =
  let c = Irq.create ~lines:2 in
  Irq.mask c 1;
  Irq.raise_line c 1;
  check_bool "masked line still latches" true (Irq.is_pending c 1);
  check_bool "but never surfaces" true (Irq.next_pending c = None);
  Irq.raise_line c 1;
  Irq.raise_line c 1;
  check_int "absorbed edges counted" 2 (Irq.coalesced_total c 1);
  check_int "one ack will cover the burst" 3 (Irq.burst c 1);
  Irq.unmask c 1;
  check_int "surfaces after unmask" 1 (Option.get (Irq.next_pending c));
  Irq.ack c 1;
  check_int "ack clears the burst" 0 (Irq.burst c 1);
  check_bool "latch cleared" false (Irq.is_pending c 1)

(* --- Nic: hold-off window and poll --- *)

let make_nic ?(buffers = 16) () =
  let e = Engine.create () in
  let irq = Irq.create ~lines:2 in
  let nic = Nic.create e irq ~irq_line:0 () in
  let frames = Frame.create ~frames:(buffers + 8) in
  for _ = 1 to buffers do
    Nic.post_rx_buffer nic (Frame.alloc frames ~owner:"test" ())
  done;
  (e, irq, nic, frames)

let test_nic_mitigation_window () =
  let e, irq, nic, _ = make_nic () in
  Nic.set_mitigation nic 1_000L;
  Nic.inject_rx nic ~tag:1 ~len:64;
  check_int "first completion raises" 1 (Irq.raised_total irq 0);
  Nic.inject_rx nic ~tag:2 ~len:64;
  Nic.inject_rx nic ~tag:3 ~len:64;
  check_int "window absorbs the rest" 1 (Irq.raised_total irq 0);
  check_int "coalesced counted" 2 (Nic.irq_coalesced nic);
  Irq.ack irq 0;
  (* Window expiry re-raises exactly once for still-unserviced work. *)
  Engine.burn e 2_000L;
  check_int "deferred raise at window end" 2 (Irq.raised_total irq 0);
  let evs = Nic.poll nic ~budget:8 in
  check_bool "poll drains oldest first" true
    (List.map (fun ev -> ev.Nic.tag) evs = [ 1; 2; 3 ]);
  check_int "queue dry" 0 (Nic.rx_pending nic);
  check_bool "zero budget rejected" true
    (try
       ignore (Nic.poll nic ~budget:0);
       false
     with Invalid_argument _ -> true)

let test_nic_poll_budget () =
  let _, _, nic, _ = make_nic () in
  for i = 1 to 5 do
    Nic.inject_rx nic ~tag:i ~len:64
  done;
  let first = Nic.poll nic ~budget:2 in
  check_bool "budget caps the batch" true
    (List.map (fun ev -> ev.Nic.tag) first = [ 1; 2 ]);
  let rest = Nic.poll nic ~budget:16 in
  check_bool "remainder still in order" true
    (List.map (fun ev -> ev.Nic.tag) rest = [ 3; 4; 5 ])

let test_nic_tx_coalesce () =
  let e, irq, nic, frames = make_nic () in
  Nic.set_mitigation nic 10_000L;
  let f1 = Frame.alloc frames ~owner:"test" () in
  let f2 = Frame.alloc frames ~owner:"test" () in
  Nic.submit_tx nic f1 ~len:64;
  Nic.submit_tx nic f2 ~len:64;
  Engine.burn e 3_000L;
  check_int "one raise covers both tx completions" 1 (Irq.raised_total irq 0);
  check_int "second completion coalesced" 1 (Nic.irq_coalesced nic);
  check_int "both reapable" 2 (Nic.tx_completions_pending nic)

let test_nic_zero_window_is_legacy () =
  let _, irq, nic, _ = make_nic () in
  for i = 1 to 3 do
    Nic.inject_rx nic ~tag:i ~len:64
  done;
  check_int "every completion raises" 3 (Irq.raised_total irq 0);
  check_int "nothing coalesced" 0 (Nic.irq_coalesced nic)

(* --- Overload: batch admission and batch histogram --- *)

let test_token_bucket_admit_n () =
  let b = Overload.Token_bucket.create ~period:100L ~burst:4 () in
  check_int "caps at available tokens" 4
    (Overload.Token_bucket.admit_n b ~now:0L 10);
  check_int "empty bucket admits none" 0
    (Overload.Token_bucket.admit_n b ~now:0L 3);
  check_int "refill honoured once" 2
    (Overload.Token_bucket.admit_n b ~now:200L 10);
  check_int "zero batch is a no-op" 0
    (Overload.Token_bucket.admit_n b ~now:200L 0);
  check_int "denials recorded" (6 + 3 + 8) (Overload.Token_bucket.denied b);
  check_bool "negative batch rejected" true
    (try
       ignore (Overload.Token_bucket.admit_n b ~now:0L (-1));
       false
     with Invalid_argument _ -> true)

let test_note_batch_histogram () =
  let c = Counter.create_set () in
  List.iter (Overload.note_batch c) [ 0; 1; 2; 3; 4; 7; 8; 9 ];
  let bucket n = Counter.get c (Overload.mitig_batch_hist_prefix ^ n) in
  check_int "bucket 1" 1 (bucket "1");
  check_int "bucket 2 takes 2..3" 2 (bucket "2");
  check_int "bucket 4 takes 4..7" 2 (bucket "4");
  check_int "bucket 8 takes 8..15" 2 (bucket "8");
  check_int "zero ignored" 7 (Counter.sum_matching c ~prefix:Overload.mitig_batch_hist_prefix)

(* --- Drain-discipline equivalence (E16 satellite) ---

   However the driver takes packets off the NIC — one rx_ready per
   interrupt, or masked poll rounds under a mitigation window — every
   injected packet must be delivered exactly once and each flow must
   stay in order. *)

let prop_drain_equivalence =
  QCheck.Test.make
    ~name:"mitigation: hybrid poll delivers the interrupt stream exactly"
    ~count:100
    QCheck.(
      pair (list_of_size Gen.(1 -- 40) (pair (int_range 0 500) (int_range 0 3)))
        (int_range 1 8))
    (fun (arrivals, budget) ->
      let run ~hybrid =
        let e = Engine.create () in
        let irq = Irq.create ~lines:1 in
        let nic = Nic.create e irq ~irq_line:0 () in
        let frames = Frame.create ~frames:(List.length arrivals + 1) in
        List.iter
          (fun _ -> Nic.post_rx_buffer nic (Frame.alloc frames ~owner:"t" ()))
          arrivals;
        if hybrid then Nic.set_mitigation nic 300L;
        (* Tag encodes (flow, global sequence) so order is checkable. *)
        let t = ref 0L in
        List.iteri
          (fun i (d, flow) ->
            t := Int64.add !t (Int64.of_int d);
            Engine.at e !t (fun () ->
                Nic.inject_rx nic ~tag:((flow * 1000) + i) ~len:64))
          arrivals;
        let got = ref [] in
        let take ev = got := ev.Nic.tag :: !got in
        let service () =
          if hybrid then begin
            Irq.mask irq 0;
            let rec rounds () =
              match Nic.poll nic ~budget with
              | [] ->
                  Irq.ack irq 0;
                  Irq.unmask irq 0;
                  if Nic.rx_pending nic > 0 then begin
                    Irq.mask irq 0;
                    rounds ()
                  end
              | evs ->
                  List.iter take evs;
                  rounds ()
            in
            rounds ()
          end
          else begin
            Irq.ack irq 0;
            let rec drain () =
              match Nic.rx_ready nic with
              | Some ev ->
                  take ev;
                  drain ()
              | None -> ()
            in
            drain ()
          end
        in
        (* The hosting kernel checks the controller at fixed preemption
           points past the last injection (and any deferred raise). *)
        let horizon = Int64.add !t 2_000L in
        let rec tick at =
          Engine.at e at (fun () ->
              if Irq.next_pending irq <> None then service ();
              let next = Int64.add at 250L in
              if Int64.compare next horizon <= 0 then tick next)
        in
        tick 0L;
        Engine.run e;
        List.rev !got
      in
      let a = run ~hybrid:false in
      let b = run ~hybrid:true in
      let per_flow l f = List.filter (fun tag -> tag / 1000 = f) l in
      let sorted l = List.sort compare l in
      List.length a = List.length arrivals
      && sorted a = sorted b
      && List.for_all
           (fun f ->
             let fa = per_flow a f and fb = per_flow b f in
             fa = sorted fa && fb = sorted fb && fa = fb)
           [ 0; 1; 2; 3 ])

(* --- E16 replay: same seed, bit-for-bit metrics --- *)

let test_e16_replay () =
  let same stack mode =
    let r1 = Exp_e16.run_one stack mode ~base:12 (4, 1) in
    let r2 = Exp_e16.run_one stack mode ~base:12 (4, 1) in
    Exp_e16.received r1 > 0 && Exp_e16.fp r1 = Exp_e16.fp r2
  in
  check_bool "vmm hybrid replay is bit-for-bit" true
    (same Exp_e16.Vmm Exp_e16.Hybrid);
  check_bool "uk hybrid replay is bit-for-bit" true
    (same Exp_e16.Uk Exp_e16.Hybrid);
  check_bool "uk polling replay is bit-for-bit" true
    (same Exp_e16.Uk Exp_e16.Polling)

let suite =
  [
    Alcotest.test_case "irq: round-robin arbitration" `Quick
      test_irq_round_robin;
    Alcotest.test_case "irq: chatty line cannot starve" `Quick
      test_irq_no_starvation;
    Alcotest.test_case "irq: mask-while-pending coalesces" `Quick
      test_irq_mask_while_pending;
    Alcotest.test_case "nic: hold-off window coalesces" `Quick
      test_nic_mitigation_window;
    Alcotest.test_case "nic: poll budget" `Quick test_nic_poll_budget;
    Alcotest.test_case "nic: tx completions coalesce" `Quick
      test_nic_tx_coalesce;
    Alcotest.test_case "nic: zero window is per-packet" `Quick
      test_nic_zero_window_is_legacy;
    Alcotest.test_case "bucket: admit_n" `Quick test_token_bucket_admit_n;
    Alcotest.test_case "overload: batch histogram" `Quick
      test_note_batch_histogram;
    QCheck_alcotest.to_alcotest prop_drain_equivalence;
    Alcotest.test_case "e16: replay bit-for-bit" `Quick test_e16_replay;
  ]
