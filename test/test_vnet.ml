(* The inter-guest fabric (E17): the learning switch's MAC table and
   flow cache, bounded port queues with ECN watermarks, weighted
   fair-share at the gate, the ring-drop accounting split the fabric
   work surfaced, per-flow order preservation, and bit-for-bit replay
   of the end-to-end experiment on both stacks. *)

module Counter = Vmk_trace.Counter
module Overload = Vmk_overload.Overload
module Vnet = Vmk_vnet.Vnet
module Mac = Vnet.Mac_table
module Flows = Vnet.Flow_cache
module Switch = Vnet.Switch
module Ring = Vmk_vmm.Ring
module E17 = Vmk_core.Exp_e17

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let pkt ?(len = 512) ~src ~dst () =
  { Vnet.src; dst; len; tag = (dst * 1_000_000) + (src * 10_000) }

(* --- MAC table --- *)

let test_mac_learning () =
  let m = Mac.create ~ttl:100L () in
  Mac.learn m ~now:0L ~mac:7 ~port:1;
  check_int "resolves" 1 (Option.get (Mac.lookup m ~now:10L 7));
  (* A refresh extends the lease... *)
  Mac.learn m ~now:90L ~mac:7 ~port:1;
  check_int "still bound" 1 (Option.get (Mac.lookup m ~now:150L 7));
  (* ...but an idle entry ages out. *)
  check_bool "expired" true (Mac.lookup m ~now:500L 7 = None);
  check_int "expiry counted" 1 (Mac.expiries m);
  (* A station move rebinds to the new port. *)
  Mac.learn m ~now:500L ~mac:7 ~port:1;
  Mac.learn m ~now:501L ~mac:7 ~port:3;
  check_int "moved" 3 (Option.get (Mac.lookup m ~now:502L 7));
  check_int "move counted" 1 (Mac.moves m)

(* --- flow cache --- *)

let test_flow_cache_accounting () =
  let f = Flows.create ~capacity:2 () in
  check_bool "cold miss" true (Flows.find f ~src:1 ~dst:2 = None);
  Flows.insert f ~src:1 ~dst:2 ~port:2;
  check_int "hit" 2 (Option.get (Flows.find f ~src:1 ~dst:2));
  Flows.insert f ~src:1 ~dst:3 ~port:3;
  (* FIFO eviction: the third distinct flow displaces the oldest. *)
  Flows.insert f ~src:1 ~dst:4 ~port:4;
  check_bool "oldest evicted" true (Flows.find f ~src:1 ~dst:2 = None);
  check_int "evictions" 1 (Flows.evictions f);
  check_int "hits" 1 (Flows.hits f);
  check_int "misses" 2 (Flows.misses f);
  (* Invalidate drops every flow naming the moved station. *)
  Flows.invalidate f ~mac:4;
  check_bool "invalidated" true (Flows.find f ~src:1 ~dst:4 = None)

(* --- switch forwarding --- *)

let quad () =
  let c = Counter.create_set () in
  let s = Switch.create ~counters:c ~port_capacity:4 () in
  List.iter (fun id -> ignore (Switch.add_port s ~id)) [ 1; 2; 3; 4 ];
  (c, s)

let test_broadcast_flood () =
  let c, s = quad () in
  let d = Switch.forward s ~now:0L ~in_port:1 (pkt ~src:1 ~dst:0 ()) in
  check_bool "flood" true d.Switch.flood;
  check_int "everyone but the source" 3 d.Switch.enqueued;
  check_int "nothing reflected" 0 (Switch.pending s ~port:1);
  check_int "queued at 2" 1 (Switch.pending s ~port:2);
  check_int "flood counted" 1 (Counter.get c "vnet.flood")

let test_unknown_unicast_drops () =
  let c, s = quad () in
  let d = Switch.forward s ~now:0L ~in_port:1 (pkt ~src:1 ~dst:9 ()) in
  check_int "not enqueued" 0 d.Switch.enqueued;
  check_int "no_route counted" 1 (Counter.get c "vnet.no_route");
  (* Hairpin to self is refused the same way. *)
  Mac.learn (Switch.mac_table s) ~now:0L ~mac:1 ~port:1;
  let d = Switch.forward s ~now:0L ~in_port:1 (pkt ~src:1 ~dst:1 ()) in
  check_int "hairpin refused" 0 d.Switch.enqueued;
  check_int "both under no_route" 2 (Counter.get c "vnet.no_route")

let test_bounded_port_rejects () =
  let c, s = quad () in
  Mac.learn (Switch.mac_table s) ~now:0L ~mac:2 ~port:2;
  for _ = 1 to 6 do
    ignore (Switch.forward s ~now:0L ~in_port:1 (pkt ~src:1 ~dst:2 ()))
  done;
  (* Capacity 4 under Reject: the overflow is counted, not queued. *)
  check_int "queue at capacity" 4 (Switch.pending s ~port:2);
  check_int "drops counted" 2 (Counter.get c "vnet.drop");
  check_int "machine-wide drop" 2 (Counter.get c Overload.drop_counter);
  check_int "dropped tally" 2 (Switch.dropped s)

let test_ecn_watermark () =
  let c = Counter.create_set () in
  let s = Switch.create ~counters:c ~port_capacity:8 ~mark_at:2 () in
  List.iter (fun id -> ignore (Switch.add_port s ~id)) [ 1; 2 ];
  Mac.learn (Switch.mac_table s) ~now:0L ~mac:2 ~port:2;
  let d1 = Switch.forward s ~now:0L ~in_port:1 (pkt ~src:1 ~dst:2 ()) in
  check_bool "below watermark" false d1.Switch.marked;
  let d2 = Switch.forward s ~now:0L ~in_port:1 (pkt ~src:1 ~dst:2 ()) in
  check_bool "at watermark" true d2.Switch.marked;
  check_bool "port reports mark" true (Switch.port_marked s ~port:2);
  check_int "mark counted" 1 (Counter.get c Overload.ecn_mark_counter);
  (* Draining below the watermark clears the bit. *)
  ignore (Switch.pop s ~port:2);
  check_bool "cleared" false (Switch.port_marked s ~port:2)

(* --- weighted fair share at the gate --- *)

let test_fair_gate_protects_victim () =
  let c = Counter.create_set () in
  let fair = Overload.Weighted_buckets.create ~counters:c ~period:1_000L ~burst:2 () in
  Overload.Weighted_buckets.set_weight fair ~key:2 8;
  let s = Switch.create ~counters:c ~port_capacity:64 ~fair () in
  List.iter (fun id -> ignore (Switch.add_port s ~id)) [ 1; 2; 3 ];
  Mac.learn (Switch.mac_table s) ~now:0L ~mac:3 ~port:3;
  (* An aggressor burst at one instant: burst tokens then the gate. *)
  let delivered = ref 0 in
  for _ = 1 to 10 do
    let d = Switch.forward s ~now:0L ~in_port:1 (pkt ~src:1 ~dst:3 ()) in
    delivered := !delivered + d.Switch.enqueued
  done;
  check_int "aggressor clipped to burst" 2 !delivered;
  check_int "sheds counted" 8 (Counter.get c Overload.fair_shed_counter);
  (* The weighted victim refills 8x faster and is all admitted. *)
  let ok = ref 0 in
  for i = 0 to 7 do
    let now = Int64.of_int (i * 125) in
    let d = Switch.forward s ~now ~in_port:2 (pkt ~src:2 ~dst:3 ()) in
    ok := !ok + d.Switch.enqueued
  done;
  check_int "victim untouched" 8 !ok

(* --- ring drop accounting split (the E17 bugfix) --- *)

let test_ring_drop_split () =
  let r = Ring.create ~capacity:2 () in
  let req = ref 0 and resp = ref 0 in
  Ring.on_request_drop r (fun () -> incr req);
  Ring.on_response_drop r (fun () -> incr resp);
  check_bool "fills" true (Ring.push_request r 1 && Ring.push_request r 2);
  (* A refused request is producer back-pressure (the frontend holds
     the payload and retries) — it must not hit the response hook. *)
  check_bool "third refused" false (Ring.push_request r 3);
  check_int "request hook" 1 !req;
  check_int "response hook untouched" 0 !resp;
  check_bool "resp fills" true (Ring.push_response r 1 && Ring.push_response r 2);
  check_bool "resp refused" false (Ring.push_response r 3);
  check_int "response hook" 1 !resp;
  check_int "request hook unchanged" 1 !req;
  check_int "request drops" 1 (Ring.request_dropped_total r);
  check_int "response drops" 1 (Ring.response_dropped_total r);
  check_int "combined" 2 (Ring.dropped_total r)

(* --- per-flow order preservation --- *)

let prop_per_flow_order =
  QCheck.Test.make ~name:"switch preserves per-source order to a port" ~count:100
    QCheck.(list_of_size Gen.(1 -- 80) (int_range 1 3))
    (fun srcs ->
      (* Interleave sends from sources 1-3 to port 4 in the generated
         order; each source's packets carry an ascending seq in [tag]. *)
      let s = Switch.create ~port_capacity:128 () in
      List.iter (fun id -> ignore (Switch.add_port s ~id)) [ 1; 2; 3; 4 ];
      Mac.learn (Switch.mac_table s) ~now:0L ~mac:4 ~port:4;
      let seqs = Hashtbl.create 4 in
      List.iter
        (fun src ->
          let seq = Option.value ~default:0 (Hashtbl.find_opt seqs src) in
          Hashtbl.replace seqs src (seq + 1);
          ignore
            (Switch.forward s ~now:0L ~in_port:src
               { Vnet.src; dst = 4; len = 64; tag = (src * 10_000) + seq }))
        srcs;
      let last = Hashtbl.create 4 in
      let ordered = ref true in
      let rec drain () =
        match Switch.pop s ~port:4 with
        | None -> ()
        | Some p ->
            let src = p.Vnet.tag / 10_000 and seq = p.Vnet.tag mod 10_000 in
            (match Hashtbl.find_opt last src with
            | Some prev when prev >= seq -> ordered := false
            | _ -> ());
            Hashtbl.replace last src seq;
            drain ()
      in
      drain ();
      !ordered)

(* --- end-to-end replay (also the alloc_pages/grant-collision
   regression: the Uk pairwise boot maps IPC grant items into the
   receiver's space ahead of the allocator) --- *)

let test_replay_vmm () =
  let a = E17.pairwise ~stack:E17.Vmm ~guests:2 ~count:6 in
  let b = E17.pairwise ~stack:E17.Vmm ~guests:2 ~count:6 in
  check_int "all delivered" 6 (E17.received a);
  check_bool "bit-for-bit" true (E17.fp a = E17.fp b)

let test_replay_uk () =
  let a = E17.pairwise ~stack:E17.Uk ~guests:2 ~count:6 in
  let b = E17.pairwise ~stack:E17.Uk ~guests:2 ~count:6 in
  check_int "all delivered" 6 (E17.received a);
  check_bool "bit-for-bit" true (E17.fp a = E17.fp b)

let suite =
  [
    Alcotest.test_case "mac: learn, age, move" `Quick test_mac_learning;
    Alcotest.test_case "flows: hit/miss/evict/invalidate" `Quick
      test_flow_cache_accounting;
    Alcotest.test_case "switch: broadcast floods" `Quick test_broadcast_flood;
    Alcotest.test_case "switch: unknown unicast drops" `Quick
      test_unknown_unicast_drops;
    Alcotest.test_case "switch: bounded port rejects" `Quick
      test_bounded_port_rejects;
    Alcotest.test_case "switch: ecn watermark" `Quick test_ecn_watermark;
    Alcotest.test_case "switch: weighted fair gate" `Quick
      test_fair_gate_protects_victim;
    Alcotest.test_case "ring: request/response drop split" `Quick
      test_ring_drop_split;
    QCheck_alcotest.to_alcotest prop_per_flow_order;
    Alcotest.test_case "e17: replay (vmm)" `Quick test_replay_vmm;
    Alcotest.test_case "e17: replay (uk)" `Quick test_replay_uk;
  ]
