(* SMP executor: determinism, cross-core costs, per-CPU accounting. *)

module Machine = Vmk_hw.Machine
module Arch = Vmk_hw.Arch
module Accounts = Vmk_trace.Accounts
module Counter = Vmk_trace.Counter
module Smp = Vmk_smp.Smp

let check = Alcotest.check
let int = Alcotest.int
let int64 = Alcotest.int64

(* --- machine / accounts plumbing --- *)

let test_machine_cpu_bank () =
  let mach = Machine.create ~cpus:4 ~seed:1L () in
  check int "ncpus" 4 (Machine.ncpus mach);
  check Alcotest.bool "core0 tlb aliased" true
    ((Machine.cpu mach 0).Vmk_hw.Cpu.tlb == mach.Machine.tlb);
  let single = Machine.create ~seed:1L () in
  check int "default is one cpu" 1 (Machine.ncpus single)

let test_accounts_per_cpu () =
  let a = Accounts.create () in
  Accounts.charge_on a ~cpu:0 "srv" 100L;
  Accounts.charge_on a ~cpu:3 "srv" 40L;
  Accounts.charge a "srv" 5L;
  check int64 "total sums cores" 145L (Accounts.balance a "srv");
  check int64 "cpu0 bucket" 105L (Accounts.cpu_balance a ~cpu:0 "srv");
  check int64 "cpu3 bucket" 40L (Accounts.cpu_balance a ~cpu:3 "srv");
  check int64 "untouched cpu" 0L (Accounts.cpu_balance a ~cpu:2 "srv");
  check int "cpus_seen" 4 (Accounts.cpus_seen a);
  Accounts.reset a;
  check int64 "reset clears buckets" 0L (Accounts.cpu_balance a ~cpu:3 "srv")

(* --- executor behaviour --- *)

let test_cross_core_pingpong () =
  let mach = Machine.create ~cpus:2 ~seed:1L () in
  let smp = Smp.create mach in
  let rounds = 20 in
  let got = ref 0 in
  let pong = ref 0 in
  let server =
    Smp.spawn smp ~name:"server" ~cpu:1 (fun () ->
        for _ = 1 to rounds do
          let tag = Smp.recv () in
          Smp.send ~dst:tag ~tag:0 ~cycles:100
        done)
  in
  let client_tid = ref 0 in
  let client =
    Smp.spawn smp ~name:"client" ~cpu:0 (fun () ->
        for _ = 1 to rounds do
          Smp.send ~dst:server ~tag:!client_tid ~cycles:100;
          ignore (Smp.recv ());
          incr got
        done;
        pong := 1)
  in
  client_tid := client;
  let reason = Smp.run smp in
  check Alcotest.bool "went idle" true (reason = Smp.Idle);
  check int "all round trips" rounds !got;
  check int "client finished" 1 !pong;
  (* Both directions target a blocked receiver on the other core. *)
  check Alcotest.bool "ipis happened" true
    (Counter.get mach.Machine.counters "smp.ipi" >= rounds);
  check Alcotest.bool "ipi cycles on target cores" true
    (Int64.compare (Accounts.balance mach.Machine.accounts "smp.ipi") 0L > 0)

let test_spinlock_contention () =
  let run () =
    let mach = Machine.create ~cpus:4 ~seed:7L () in
    let smp = Smp.create mach in
    let lk = Smp.lock_create smp ~name:"shared" in
    for cpu = 0 to 3 do
      ignore
        (Smp.spawn smp
           ~name:(Printf.sprintf "w%d" cpu)
           ~cpu
           (fun () ->
             for _ = 1 to 10 do
               Smp.locked lk ~cycles:400
             done))
    done;
    ignore (Smp.run smp);
    (lk, mach)
  in
  let lk, mach = run () in
  check int "all acquisitions" 40 (Smp.lock_acquisitions lk);
  check Alcotest.bool "some contention" true (Smp.lock_contended lk > 0);
  check Alcotest.bool "spin cycles itemized" true
    (Int64.compare
       (Accounts.balance mach.Machine.accounts "smp.spin")
       (Smp.lock_spin_cycles lk)
    = 0);
  (* Same seed, same program: identical contention profile. *)
  let lk2, mach2 = run () in
  check int "contended deterministic" (Smp.lock_contended lk)
    (Smp.lock_contended lk2);
  check int64 "spin cycles deterministic" (Smp.lock_spin_cycles lk)
    (Smp.lock_spin_cycles lk2);
  check int64 "machine time deterministic" (Machine.now mach) (Machine.now mach2)

let test_shootdown_costs () =
  let mach = Machine.create ~cpus:4 ~seed:1L () in
  let smp = Smp.create mach in
  ignore
    (Smp.spawn smp ~name:"mapper" ~cpu:0 (fun () ->
         Smp.shootdown ~pages:16;
         Smp.shootdown ~pages:16));
  (* Remote cores must run to absorb their ack work. *)
  for cpu = 1 to 3 do
    ignore
      (Smp.spawn smp ~name:(Printf.sprintf "busy%d" cpu) ~cpu (fun () ->
           Smp.burn 5_000))
  done;
  ignore (Smp.run smp);
  let c = mach.Machine.counters in
  check int "broadcasts" 2 (Counter.get c "smp.shootdown");
  check int "acks = (ncpus-1) per broadcast" 6 (Counter.get c "smp.shootdown.acks");
  let ack = mach.Machine.arch.Arch.shootdown_ack_cost in
  check int64 "remote ack cycles charged" (Int64.of_int (6 * ack))
    (Accounts.balance mach.Machine.accounts "smp.shootdown")

let test_equal_due_time_ordering () =
  (* Two senders on different cores fire at the same virtual instant; the
     receiver must see them in a stable, reproducible order. *)
  let observe () =
    let mach = Machine.create ~cpus:3 ~seed:3L () in
    let smp = Smp.create mach in
    let seen = ref [] in
    let sink =
      Smp.spawn smp ~name:"sink" ~cpu:0 (fun () ->
          for _ = 1 to 2 do
            seen := Smp.recv () :: !seen
          done)
    in
    ignore
      (Smp.spawn smp ~name:"a" ~cpu:1 (fun () ->
           Smp.send ~dst:sink ~tag:101 ~cycles:100));
    ignore
      (Smp.spawn smp ~name:"b" ~cpu:2 (fun () ->
           Smp.send ~dst:sink ~tag:202 ~cycles:100));
    ignore (Smp.run smp);
    List.rev !seen
  in
  let first = observe () in
  check int "both arrived" 2 (List.length first);
  for _ = 1 to 5 do
    check (Alcotest.list int) "stable order across reruns" first (observe ())
  done

let test_burn_is_preemptible () =
  (* A long burn must not monopolize its core: with a 1000-cycle quantum,
     a competing same-core thread interleaves. *)
  let mach = Machine.create ~cpus:1 ~seed:1L () in
  let smp = Smp.create mach in
  let order = ref [] in
  ignore
    (Smp.spawn smp ~name:"hog" ~cpu:0 (fun () ->
         Smp.burn 10_000;
         order := `Hog :: !order));
  ignore
    (Smp.spawn smp ~name:"quick" ~cpu:0 (fun () ->
         Smp.burn 500;
         order := `Quick :: !order));
  ignore (Smp.run smp);
  match List.rev !order with
  | [ `Quick; `Hog ] -> ()
  | _ -> Alcotest.fail "short burn should finish before the 10k hog"

let test_e14_same_seed_identical () =
  (* Two runs of an E14 configuration with the same seed must agree on
     every counter, every account and every per-CPU bucket. *)
  let module E = Vmk_core.Exp_e14 in
  List.iter
    (fun kind ->
      let fingerprint () =
        let r = E.run_case ~kind ~cores:4 ~packets:96 in
        let m = r.E.mach in
        ( r.E.wall,
          r.E.completed,
          Counter.to_list m.Machine.counters,
          Accounts.to_list m.Machine.accounts,
          List.init (Machine.ncpus m) (fun i ->
              Accounts.to_cpu_list m.Machine.accounts ~cpu:i) )
      in
      let a = fingerprint () and b = fingerprint () in
      Alcotest.(check bool) "bit-for-bit identical" true (a = b))
    [ E.Uk_colocated; E.Uk_pinned; E.Vmm_dom0; E.Vmm_drivers ]

(* --- E21: tickless equivalence --- *)

(* The tickless round loop (jump straight across an all-blocked gap to
   the next engine event or message visibility) must be observationally
   identical to the quantum-stepped reference ([~tickless:false]): same
   stop reason, final clock, counters, accounts (total and per-CPU) and
   the same messages received in the same order. Randomized multi-core
   workloads of burns, sends, receives, yields and delayed device
   interrupts; the interrupts arm engine events tens of quanta out so
   real idle gaps get jumped. *)

let run_random_workload ~tickless ~cpus ~ops =
  let mach = Machine.create ~cpus ~seed:42L () in
  let smp = Smp.create mach in
  let nthreads = cpus + 1 in
  let tids = Array.make nthreads 0 in
  let trace = ref [] in
  let per_thread = Array.make nthreads [] in
  List.iteri
    (fun i op ->
      let slot = i mod nthreads in
      per_thread.(slot) <- op :: per_thread.(slot))
    ops;
  for i = 0 to nthreads - 1 do
    let script = List.rev per_thread.(i) in
    tids.(i) <-
      Smp.spawn smp
        ~name:(Printf.sprintf "w%d" i)
        ~cpu:(i mod cpus)
        (fun () ->
          List.iter
            (fun (kind, dst, amount) ->
              match kind with
              | 0 -> Smp.burn (100 + amount)
              | 1 ->
                  Smp.send
                    ~dst:tids.(dst mod nthreads)
                    ~tag:((i * 10_000) + amount)
                    ~cycles:(50 + amount)
              | 2 -> trace := (i, Smp.recv ()) :: !trace
              | _ -> Smp.yield ())
            script)
  done;
  let eng = mach.Machine.engine in
  for j = 0 to (2 * cpus) - 1 do
    Vmk_sim.Engine.after eng
      (Int64.of_int ((j + 1) * 37_500))
      (fun () -> Smp.post smp ~dst:tids.(j mod nthreads) (900 + j))
  done;
  let reason = Smp.run ~tickless smp in
  ( reason,
    Machine.now mach,
    Counter.to_list mach.Machine.counters,
    Accounts.to_list mach.Machine.accounts,
    List.init cpus (fun c -> Accounts.to_cpu_list mach.Machine.accounts ~cpu:c),
    List.rev !trace )

let prop_tickless_equivalence =
  QCheck.Test.make
    ~name:"smp: tickless run bit-identical to quantum-stepped reference"
    ~count:40
    QCheck.(
      pair (int_range 2 4)
        (list_of_size
           Gen.(10 -- 50)
           (triple (int_bound 3) (int_bound 7) (int_bound 900))))
    (fun (cpus, ops) ->
      run_random_workload ~tickless:true ~cpus ~ops
      = run_random_workload ~tickless:false ~cpus ~ops)

let test_e14_shapes () =
  let module E = Vmk_core.Exp_e14 in
  let tput kind cores = E.throughput (E.run_case ~kind ~cores ~packets:240) in
  Alcotest.(check bool) "single-dom0 plateaus 4->8" true
    (tput E.Vmm_dom0 8 /. tput E.Vmm_dom0 4 < 1.25);
  Alcotest.(check bool) "colocated microkernel scales 1->8" true
    (tput E.Uk_colocated 8 /. tput E.Uk_colocated 1 > 4.0)

let suite =
  [
    Alcotest.test_case "machine cpu bank" `Quick test_machine_cpu_bank;
    Alcotest.test_case "accounts per cpu" `Quick test_accounts_per_cpu;
    Alcotest.test_case "cross-core pingpong + ipis" `Quick
      test_cross_core_pingpong;
    Alcotest.test_case "spinlock contention deterministic" `Quick
      test_spinlock_contention;
    Alcotest.test_case "shootdown broadcast costs" `Quick test_shootdown_costs;
    Alcotest.test_case "equal due-time ordering stable" `Quick
      test_equal_due_time_ordering;
    Alcotest.test_case "burn preemptible by quantum" `Quick
      test_burn_is_preemptible;
    Alcotest.test_case "e14 same seed identical" `Quick
      test_e14_same_seed_identical;
    Alcotest.test_case "e14 scaling shapes" `Quick test_e14_shapes;
    QCheck_alcotest.to_alcotest prop_tickless_equivalence;
  ]
