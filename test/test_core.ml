(* Tests for the comparison framework: taxonomy, IPC-equivalence
   counting, the audit inventory, the scenario builder and selected
   experiment invariants. *)

module Counter = Vmk_trace.Counter
module Taxonomy = Vmk_core.Taxonomy
module Ipc_equiv = Vmk_core.Ipc_equiv
module Audit = Vmk_core.Audit
module Scenario = Vmk_core.Scenario
module Experiment = Vmk_core.Experiment
module Registry = Vmk_core.Registry
module Exp_e3 = Vmk_core.Exp_e3
module Exp_e4 = Vmk_core.Exp_e4
module Apps = Vmk_workloads.Apps
module Net_channel = Vmk_vmm.Net_channel

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- taxonomy --- *)

let test_taxonomy_ipc_has_all_roles () =
  Alcotest.(check int) "rendezvous is control transfer" 1
    (List.length (Taxonomy.roles_of_counter Taxonomy.Microkernel "uk.ipc.rendezvous"));
  check_bool "page flip is data + delegation" true
    (Taxonomy.roles_of_counter Taxonomy.Vmm "vmm.page_flip"
    = [ Taxonomy.Data_transfer; Taxonomy.Resource_delegation ]);
  check_bool "bookkeeping unclassified" true
    (Taxonomy.roles_of_counter Taxonomy.Vmm "vmm.world_switch" = []);
  check_bool "unknown unclassified" true
    (Taxonomy.roles_of_counter Taxonomy.Vmm "nonsense" = [])

let test_taxonomy_role_counts () =
  let counters = Counter.create_set () in
  Counter.add counters "uk.ipc.rendezvous" 10;
  Counter.add counters "uk.ipc.map_pages" 4;
  Counter.add counters "uk.syscall" 99;
  let counts = Taxonomy.role_counts Taxonomy.Microkernel counters in
  check_int "control" 10 (List.assoc Taxonomy.Control_transfer counts);
  check_int "delegation" 4 (List.assoc Taxonomy.Resource_delegation counts)

(* --- ipc_equiv --- *)

let test_ipc_equiv_microkernel_rules () =
  let counters = Counter.create_set () in
  Counter.add counters "uk.ipc.rendezvous" 20;
  Counter.add counters "uk.irq.delivered" 5;
  Counter.add counters "uk.ipc.map_pages" 3;
  Counter.add counters "uk.ipc.bytes" 4096 (* volume, not ops *);
  let b = Ipc_equiv.of_microkernel_run counters in
  check_int "control" 25 b.Ipc_equiv.control;
  check_int "delegation" 3 b.Ipc_equiv.delegation;
  check_int "total" 28 b.Ipc_equiv.total

let test_ipc_equiv_vmm_rules () =
  let counters = Counter.create_set () in
  Counter.add counters "vmm.syscall_bounce" 50;
  Counter.add counters "vmm.evtchn_send" 10;
  Counter.add counters "vmm.upcall" 8;
  Counter.add counters "vmm.page_flip" 7;
  Counter.add counters "vmm.grant_map" 2;
  Counter.add counters "vmm.hypercall" 999 (* excluded: entry bookkeeping *);
  let b = Ipc_equiv.of_vmm_run counters in
  check_int "control" 68 b.Ipc_equiv.control;
  check_int "data (flips)" 7 b.Ipc_equiv.data;
  check_int "delegation" 2 b.Ipc_equiv.delegation;
  (* each operation counts once even when it carries several roles *)
  check_int "total" 77 b.Ipc_equiv.total

let test_ipc_equiv_per_unit () =
  let counters = Counter.create_set () in
  Counter.add counters "uk.ipc.rendezvous" 30;
  let b = Ipc_equiv.of_microkernel_run counters in
  Alcotest.(check (float 1e-9)) "per unit" 3.0 (Ipc_equiv.per_unit b ~units:10);
  Alcotest.(check (float 1e-9)) "zero units" 0.0 (Ipc_equiv.per_unit b ~units:0)

(* --- audit --- *)

let test_audit_shapes () =
  check_int "vmm lists the ten primitives" 10 (List.length Audit.vmm);
  check_int "one combined microkernel primitive" 1
    (List.length (Audit.central_primitives Audit.microkernel));
  check_int "no combined vmm primitive carries all three roles" 0
    (List.length
       (List.filter
          (fun (e : Audit.entry) -> List.length e.Audit.roles >= 3)
          Audit.vmm));
  check_bool "vmm checks dominate" true
    (Audit.total_checks Audit.vmm > Audit.total_checks Audit.microkernel);
  check_bool "vmm footprint dominates" true
    (Audit.total_icache_lines Audit.vmm
    > Audit.total_icache_lines Audit.microkernel)

let test_audit_coverage_flags () =
  let counters = Counter.create_set () in
  Counter.add counters "vmm.page_flip" 1;
  let coverage = Audit.coverage counters Audit.vmm in
  let hit =
    List.filter_map
      (fun ((e : Audit.entry), hit) -> if hit then Some e.Audit.name else None)
      coverage
  in
  check_bool "only page-flipping covered" true (hit = [ "page-flipping" ])

(* --- scenario --- *)

let test_scenarios_complete_and_account () =
  let app () = Apps.null_syscalls ~iterations:20 () () in
  let native = Scenario.run_native ~app () in
  let xen = Scenario.run_xen ~net:false ~blk:false ~app () in
  let l4 = Scenario.run_l4 ~net:false ~blk:false ~app () in
  check_bool "native completed" true native.Scenario.completed;
  check_bool "xen completed" true xen.Scenario.completed;
  check_bool "l4 completed" true l4.Scenario.completed;
  check_int "same syscalls everywhere" (Scenario.counter native "gsys.count")
    (Scenario.counter xen "gsys.count");
  check_int "same syscalls everywhere (l4)"
    (Scenario.counter native "gsys.count")
    (Scenario.counter l4 "gsys.count");
  check_bool "xen has dom-separated accounts" true
    (Scenario.account_cycles xen "guest1" > 0L);
  check_bool "l4 kernel account present" true
    (Scenario.account_cycles l4 "ukernel" > 0L);
  check_bool "ordering: native cheapest" true
    (native.Scenario.busy_cycles < xen.Scenario.busy_cycles
    && native.Scenario.busy_cycles < l4.Scenario.busy_cycles)

let test_scenario_determinism () =
  let app () = Apps.mixed ~rounds:15 () () in
  let a = Scenario.run_xen ~app () and b = Scenario.run_xen ~app () in
  Alcotest.(check int64) "bit-identical cycles" a.Scenario.cycles b.Scenario.cycles;
  check_bool "identical counters" true
    (a.Scenario.counters = b.Scenario.counters)

(* --- experiment-level invariants (quick runs) --- *)

let test_e3_sweep_one_flip_per_packet () =
  let points =
    Exp_e3.sweep ~mode:Net_channel.Flip ~packets:30 ~period:15_000L
      ~sizes:[ 256 ]
  in
  match points with
  | [ p ] ->
      check_int "packets" 30 p.Exp_e3.packets;
      check_int "one flip per packet" p.Exp_e3.packets p.Exp_e3.flips
  | _ -> Alcotest.fail "expected one point"

let test_e4_measure_ordering () =
  let rows = Exp_e4.measure ~iterations:200 () in
  let cost config =
    (List.find (fun (r : Exp_e4.row) -> r.Exp_e4.config = config) rows)
      .Exp_e4.cycles_per_syscall
  in
  check_bool "native cheapest" true
    (cost "native" < cost "xen (trap-gate shortcut valid)");
  check_bool "shortcut beats bounce" true
    (cost "xen (trap-gate shortcut valid)"
    < cost "xen (glibc TLS loaded: shortcut broken)")

let test_e4_quick_report_holds () =
  match Registry.find "e4" with
  | Some e -> check_bool "e4 verdicts hold" true
      (Experiment.all_hold (e.Experiment.run ~quick:true))
  | None -> Alcotest.fail "e4 missing"

let test_quick_verdicts_hold id =
  match Registry.find id with
  | Some e ->
      let report = e.Experiment.run ~quick:true in
      List.iter
        (fun (v : Experiment.verdict) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s [%s]" id v.Experiment.claim
               v.Experiment.measured)
            true v.Experiment.holds)
        report.Experiment.verdicts
  | None -> Alcotest.fail (id ^ " missing")

let test_registry_complete () =
  check_int "28 experiments" 28 (List.length Registry.all);
  check_bool "find is case-insensitive" true (Registry.find "E3" <> None);
  check_bool "unknown is None" true (Registry.find "zz" = None);
  let ids = Registry.ids () in
  check_int "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_verdict_helpers () =
  let v = Experiment.verdict ~claim:"c" ~expected:"e" ~measured:"m" true in
  check_bool "holds" true v.Experiment.holds;
  let report = { Experiment.tables = []; verdicts = [ v ] } in
  check_bool "all_hold" true (Experiment.all_hold report)

let suite =
  [
    Alcotest.test_case "taxonomy: roles" `Quick test_taxonomy_ipc_has_all_roles;
    Alcotest.test_case "taxonomy: role counts" `Quick test_taxonomy_role_counts;
    Alcotest.test_case "ipc_equiv: microkernel rules" `Quick
      test_ipc_equiv_microkernel_rules;
    Alcotest.test_case "ipc_equiv: vmm rules" `Quick test_ipc_equiv_vmm_rules;
    Alcotest.test_case "ipc_equiv: per unit" `Quick test_ipc_equiv_per_unit;
    Alcotest.test_case "audit: inventory shapes" `Quick test_audit_shapes;
    Alcotest.test_case "audit: coverage flags" `Quick test_audit_coverage_flags;
    Alcotest.test_case "scenario: three ports complete" `Quick
      test_scenarios_complete_and_account;
    Alcotest.test_case "scenario: deterministic" `Quick test_scenario_determinism;
    Alcotest.test_case "e3: one flip per packet" `Quick
      test_e3_sweep_one_flip_per_packet;
    Alcotest.test_case "e4: cost ordering" `Quick test_e4_measure_ordering;
    Alcotest.test_case "e4: quick verdicts hold" `Slow test_e4_quick_report_holds;
    Alcotest.test_case "e10: quick verdicts hold" `Slow (fun () ->
        test_quick_verdicts_hold "e10");
    Alcotest.test_case "e12: quick verdicts hold" `Slow (fun () ->
        test_quick_verdicts_hold "e12");
    Alcotest.test_case "a6: quick verdicts hold" `Slow (fun () ->
        test_quick_verdicts_hold "a6");
    Alcotest.test_case "e21: quick verdicts hold" `Slow (fun () ->
        test_quick_verdicts_hold "e21");
    Alcotest.test_case "e22: quick verdicts hold" `Slow (fun () ->
        test_quick_verdicts_hold "e22");
    Alcotest.test_case "a4: quick verdicts hold" `Slow (fun () ->
        test_quick_verdicts_hold "a4");
    Alcotest.test_case "registry: complete" `Quick test_registry_complete;
    Alcotest.test_case "experiment: verdict helpers" `Quick test_verdict_helpers;
  ]
