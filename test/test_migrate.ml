(* E20 live migration: the stack-agnostic protocol core against
   scripted ops (rounds/pages arithmetic, residual carry, abort paths),
   end-to-end checkpoint/restore on both stacks, and the
   abort-at-every-phase / exactly-once-packet property. *)

module Migrate = Vmk_migrate.Migrate
module Mig_vmm = Vmk_migrate.Mig_vmm
module Mig_uk = Vmk_migrate.Mig_uk
module Image = Migrate.Image
module Workload = Migrate.Workload

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- scripted ops ---

   Dirty harvests come from a queue. Reading a harvest also restamps
   those pages in the source — the guest "wrote" them — so any harvest
   the protocol fails to re-send leaves the staging image stale and
   [Image.equal] catches it. *)

type event = Log_on | Log_off | Quiesce | Resume | State | Destroy

let scripted ~(src : Image.t) ~dirties () =
  let log = ref [] in
  let note e = log := e :: !log in
  let queue = ref dirties in
  let t = ref 0L in
  let ops =
    {
      Migrate.o_now =
        (fun () ->
          t := Int64.add !t 7L;
          !t);
      o_burn = (fun _ -> ());
      o_log_dirty = (fun on -> note (if on then Log_on else Log_off));
      o_dirty_read =
        (fun () ->
          match !queue with
          | [] -> []
          | h :: rest ->
              queue := rest;
              List.iter
                (fun v -> src.Image.pages.(v) <- src.Image.pages.(v) + 100)
                h;
              h);
      o_quiesce = (fun () -> note Quiesce);
      o_resume = (fun () -> note Resume);
      o_state_xfer = (fun () -> note State);
      o_commit = (fun () -> note Destroy);
    }
  in
  (ops, fun () -> List.rev !log)

let stamped pages =
  let img = Image.create ~pages in
  Array.iteri (fun i _ -> img.Image.pages.(i) <- 1_000 + i) img.Image.pages;
  img

let run_scripted ~cfg ?abort_at ?link ~dirties pages =
  let src = stamped pages in
  let staging = Image.create ~pages in
  let ops, events = scripted ~src ~dirties () in
  let session = Migrate.session ?abort_at ?link () in
  let outcome = Migrate.run ~cfg ~session ~src ~staging ~ops in
  (outcome, src, staging, events ())

(* Round 0 pushes all 8 pages; round 1 harvests 3 (> threshold 2, so
   they are pushed); round 2 harvests 1 (converged — carried as the
   residual); the stop-and-copy harvest is empty. 8 + 3 + 1 pages over
   three copy rounds, and the staging image matches the source even
   though the harvests restamped pages under the protocol's feet. *)
let test_precopy_math () =
  let outcome, src, staging, events =
    run_scripted
      ~cfg:(Migrate.precopy ~max_rounds:4 ~threshold:2 ())
      ~dirties:[ [ 0; 1; 2 ]; [ 1 ] ]
      8
  in
  (match outcome with
  | Migrate.Completed { c_rounds; c_pages; c_downtime } ->
      checki "rounds" 3 c_rounds;
      checki "pages" 12 c_pages;
      checkb "downtime positive" true (Int64.compare c_downtime 0L > 0)
  | Migrate.Aborted _ -> Alcotest.fail "expected completion");
  checkb "staging bit-for-bit" true (Image.equal src staging);
  checkb "event order" true
    (events = [ Log_on; Quiesce; State; Destroy; Log_off ])

(* max_rounds = 0 is the checkpoint path: no dirty logging at all, one
   copy round covering every page. *)
let test_stopcopy_math () =
  let outcome, src, staging, events =
    run_scripted ~cfg:Migrate.stop_and_copy ~dirties:[] 8
  in
  (match outcome with
  | Migrate.Completed { c_rounds; c_pages; _ } ->
      checki "rounds" 1 c_rounds;
      checki "pages" 8 c_pages
  | Migrate.Aborted _ -> Alcotest.fail "expected completion");
  checkb "staging bit-for-bit" true (Image.equal src staging);
  checkb "no dirty logging" true (events = [ Quiesce; State; Destroy ])

(* The convergence harvest clears the dirty set as it reads it. Those
   pages are restamped by the scripted harvest, so if the protocol
   dropped the harvest instead of carrying it into stop-and-copy the
   staging image would hold their stale stamps. *)
let test_residual_carry () =
  let outcome, src, staging, _ =
    run_scripted
      ~cfg:(Migrate.precopy ~max_rounds:4 ~threshold:2 ())
      ~dirties:[ [ 5 ]; [ 5; 6 ] ]
      8
  in
  (match outcome with
  | Migrate.Completed { c_pages; _ } ->
      (* 8 in round 0 + sort_uniq([5] @ [5;6]) at stop-and-copy. *)
      checki "pages" 10 c_pages
  | Migrate.Aborted _ -> Alcotest.fail "expected completion");
  checkb "residual pages re-sent" true (Image.equal src staging)

let all_phases =
  [ Migrate.Setup; Migrate.Precopy 0; Migrate.Precopy 1; Migrate.Stopcopy;
    Migrate.Commit ]

(* An abort at any phase reports that phase, never destroys the source,
   and resumes it iff it was already paused (stop-and-copy onwards). *)
let test_abort_each_phase () =
  List.iter
    (fun phase ->
      let outcome, _, _, events =
        run_scripted
          ~cfg:(Migrate.precopy ~max_rounds:3 ~threshold:0 ())
          ~abort_at:(phase, Migrate.Dst_reject)
          ~dirties:[ [ 0 ]; [ 1 ]; [ 2 ] ]
          8
      in
      let name = Migrate.phase_name phase in
      (match outcome with
      | Migrate.Aborted { a_phase; a_reason } ->
          checkb (name ^ ": phase reported") true (a_phase = phase);
          checkb (name ^ ": reason reported") true
            (a_reason = Migrate.Dst_reject)
      | Migrate.Completed _ -> Alcotest.fail (name ^ ": expected abort"));
      checkb (name ^ ": source never destroyed") false
        (List.mem Destroy events);
      let paused = phase = Migrate.Stopcopy || phase = Migrate.Commit in
      checkb (name ^ ": resumed iff paused") paused (List.mem Resume events))
    all_phases

(* A link already down fails the first transfer, not the setup: the
   abort surfaces from inside round 0 as a link drop. *)
let test_link_down_mid_transfer () =
  let link = Migrate.link () in
  link.Migrate.l_down <- true;
  let outcome, _, staging, _ =
    run_scripted ~cfg:(Migrate.precopy ()) ~link ~dirties:[] 8
  in
  (match outcome with
  | Migrate.Aborted { a_phase; a_reason } ->
      checkb "phase" true (a_phase = Migrate.Precopy 0);
      checkb "reason" true (a_reason = Migrate.Link_drop)
  | Migrate.Completed _ -> Alcotest.fail "expected abort");
  checkb "staging untouched" true (Array.for_all (( = ) 0) staging.Image.pages)

(* The workload is a pure function of the image: two images advanced in
   lockstep stay bit-for-bit equal, and the digest separates a one-stamp
   difference. *)
let test_workload_determinism () =
  let w = Workload.make () in
  let a = Image.create ~pages:16 and b = Image.create ~pages:16 in
  for _ = 1 to 100 do
    let wa, sa = Workload.advance a w and wb, sb = Workload.advance b w in
    checkb "same pages written" true (wa = wb);
    checkb "same send schedule" true (sa = sb)
  done;
  checkb "images equal" true (Image.equal a b);
  checki "digests equal" (Image.digest a) (Image.digest b);
  b.Image.pages.(7) <- b.Image.pages.(7) + 1;
  checkb "one stamp apart detected" false
    (Image.equal a b || Image.digest a = Image.digest b)

(* Checkpoint/restore end to end: stop-and-copy on each stack, then the
   destination replay must equal the uninterrupted execution, with every
   packet sequence number delivered exactly once across both sinks. *)
let exactly_once ~total ~src_log ~dst_log =
  List.sort compare (src_log @ dst_log) = List.init total Fun.id

let test_checkpoint_restore_vmm () =
  let pages = 16 and steps = 120 in
  let r = Mig_vmm.migrate ~pages ~steps ~cfg:Migrate.stop_and_copy () in
  checkb "completed" true
    (match r.Mig_vmm.r_outcome with Migrate.Completed _ -> true | _ -> false);
  checkb "destination survives" true (r.Mig_vmm.r_survivor = `Dst);
  checkb "source destroyed" false r.Mig_vmm.r_src_guest_alive;
  checkb "replay bit-for-bit" true
    (Image.equal r.Mig_vmm.r_image (Mig_vmm.reference ~pages ~steps ()));
  checkb "packets exactly once" true
    (exactly_once ~total:r.Mig_vmm.r_total_sends ~src_log:r.Mig_vmm.r_src_log
       ~dst_log:r.Mig_vmm.r_dst_log)

let test_checkpoint_restore_uk () =
  let pages = 16 and steps = 120 in
  let r = Mig_uk.migrate ~pages ~steps ~cfg:Migrate.stop_and_copy () in
  checkb "completed" true
    (match r.Mig_uk.r_outcome with Migrate.Completed _ -> true | _ -> false);
  checkb "destination survives" true (r.Mig_uk.r_survivor = `Dst);
  checkb "source task killed" false r.Mig_uk.r_src_task_alive;
  checkb "replay bit-for-bit" true
    (Image.equal r.Mig_uk.r_image (Mig_vmm.reference ~pages ~steps ()));
  checkb "packets exactly once" true
    (exactly_once ~total:r.Mig_uk.r_total_sends ~src_log:r.Mig_uk.r_src_log
       ~dst_log:r.Mig_uk.r_dst_log);
  checki "capability handles re-established" r.Mig_uk.r_handles_src
    r.Mig_uk.r_handles_dst

(* Pre-copy end to end on both stacks: converges under the round budget
   and still replays bit-for-bit. *)
let test_precopy_both_stacks () =
  let pages = 16 and steps = 120 in
  let cfg = Migrate.precopy ~max_rounds:6 ~threshold:6 () in
  let rv = Mig_vmm.migrate ~pages ~steps ~cfg () in
  let ru = Mig_uk.migrate ~pages ~steps ~cfg () in
  let rounds r =
    match r with Migrate.Completed { c_rounds; _ } -> c_rounds | _ -> -1
  in
  checkb "vmm converged" true
    (rounds rv.Mig_vmm.r_outcome >= 2
    && rounds rv.Mig_vmm.r_outcome <= 6 + 2);
  checkb "uk converged" true
    (rounds ru.Mig_uk.r_outcome >= 2 && rounds ru.Mig_uk.r_outcome <= 6 + 2);
  checkb "vmm replay" true
    (Image.equal rv.Mig_vmm.r_image (Mig_vmm.reference ~pages ~steps ()));
  checkb "uk replay" true
    (Image.equal ru.Mig_uk.r_image (Mig_vmm.reference ~pages ~steps ()));
  checkb "vmm dirty tracking used" true (rv.Mig_vmm.r_logdirty_faults > 0);
  checkb "uk dirty tracking used" true (ru.Mig_uk.r_logdirty_faults > 0)

(* Two identical runs are structurally identical — the determinism the
   replay verdict and the kill-window probe both lean on. *)
let test_determinism_uk () =
  let go () = Mig_uk.migrate ~pages:16 ~steps:120 () in
  checkb "identical runs" true (go () = go ())

(* The qcheck satellite: whatever (phase, reason) the abort lands on,
   on either stack, the run resolves to exactly one live consistent
   copy and every packet arrives exactly once — aborts roll back to a
   source that finishes; completions leave only the destination. *)
let prop_abort_anywhere_exactly_once =
  let pages = 12 and steps = 96 in
  let reference = lazy (Mig_vmm.reference ~pages ~steps ()) in
  QCheck.Test.make
    ~name:"migrate: abort at any phase leaves one consistent copy" ~count:12
    QCheck.(
      triple bool
        (oneofl all_phases)
        (oneofl [ Migrate.Src_dead; Migrate.Dst_reject; Migrate.Link_drop ]))
    (fun (vmm, phase, reason) ->
      let abort_at = (phase, reason) in
      let outcome, image, survivor, src_log, dst_log, total, src_alive =
        if vmm then
          let r = Mig_vmm.migrate ~pages ~steps ~abort_at () in
          ( r.Mig_vmm.r_outcome, r.Mig_vmm.r_image, r.Mig_vmm.r_survivor,
            r.Mig_vmm.r_src_log, r.Mig_vmm.r_dst_log,
            r.Mig_vmm.r_total_sends, r.Mig_vmm.r_src_guest_alive )
        else
          let r = Mig_uk.migrate ~pages ~steps ~abort_at () in
          ( r.Mig_uk.r_outcome, r.Mig_uk.r_image, r.Mig_uk.r_survivor,
            r.Mig_uk.r_src_log, r.Mig_uk.r_dst_log, r.Mig_uk.r_total_sends,
            r.Mig_uk.r_src_task_alive )
      in
      let consistent = Image.equal image (Lazy.force reference) in
      let conserved = exactly_once ~total ~src_log ~dst_log in
      match outcome with
      | Migrate.Aborted { a_phase; _ } ->
          a_phase = phase && survivor = `Src && dst_log = [] && consistent
          && conserved
      | Migrate.Completed _ ->
          (* Unreachable with abort_at set on these phases, but if the
             protocol ever completed anyway the destination must be the
             sole survivor. *)
          survivor = `Dst && (not src_alive) && consistent && conserved)

let suite =
  [
    Alcotest.test_case "precopy rounds/pages arithmetic" `Quick
      test_precopy_math;
    Alcotest.test_case "stop-and-copy arithmetic" `Quick test_stopcopy_math;
    Alcotest.test_case "convergence residual carried to stop-and-copy" `Quick
      test_residual_carry;
    Alcotest.test_case "abort at each phase rolls back" `Quick
      test_abort_each_phase;
    Alcotest.test_case "link drop fails the transfer, not the guest" `Quick
      test_link_down_mid_transfer;
    Alcotest.test_case "workload is a pure function of the image" `Quick
      test_workload_determinism;
    Alcotest.test_case "checkpoint/restore replays bit-for-bit (vmm)" `Quick
      test_checkpoint_restore_vmm;
    Alcotest.test_case "checkpoint/restore replays bit-for-bit (uk)" `Quick
      test_checkpoint_restore_uk;
    Alcotest.test_case "pre-copy converges and replays on both stacks" `Quick
      test_precopy_both_stacks;
    Alcotest.test_case "migration is deterministic" `Quick test_determinism_uk;
    QCheck_alcotest.to_alcotest prop_abort_anywhere_exactly_once;
  ]
