(* Tests for the fault-injection library and the recovery machinery
   around it (E13): deterministic device fault windows, engine-scheduled
   kills and IRQ storms, unwind-kill, watchdog respawn, supervisor
   restart + frontend reconnect, and client-visible recovery. *)

module Machine = Vmk_hw.Machine
module Frame = Vmk_hw.Frame
module Disk = Vmk_hw.Disk
module Nic = Vmk_hw.Nic
module Counter = Vmk_trace.Counter
module Engine = Vmk_sim.Engine
module Rng = Vmk_sim.Rng
module Kernel = Vmk_ukernel.Kernel
module Sysif = Vmk_ukernel.Sysif
module Proto = Vmk_ukernel.Proto
module Svc = Vmk_ukernel.Svc
module Watchdog = Vmk_ukernel.Watchdog
module Blk_server = Vmk_ukernel.Blk_server
module Hypervisor = Vmk_vmm.Hypervisor
module Blk_channel = Vmk_vmm.Blk_channel
module Dom0 = Vmk_vmm.Dom0
module Faults = Vmk_faults.Faults
module Apps = Vmk_workloads.Apps
module Port_l4 = Vmk_guest.Port_l4
module Port_xen = Vmk_guest.Port_xen
module Exp_e13 = Vmk_core.Exp_e13

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- device fault windows --- *)

let disk_fail_run ~seed =
  let mach = Machine.create ~seed () in
  Disk.set_faults mach.Machine.disk
    [
      {
        Disk.f_start = 0L;
        f_stop = 1_000_000L;
        f_mode = Disk.Fail;
        f_pct = 50;
        f_rng = Rng.split mach.Machine.rng;
        f_sectors = None;
      };
    ];
  for sector = 0 to 39 do
    let frame = Frame.alloc mach.Machine.frames ~owner:"t" () in
    ignore (Disk.submit mach.Machine.disk Disk.Write ~sector ~frame ~bytes:512)
  done;
  Engine.run mach.Machine.engine;
  Disk.faulted_total mach.Machine.disk

let test_disk_fail_window_deterministic () =
  let a = disk_fail_run ~seed:5L and b = disk_fail_run ~seed:5L in
  check_int "same seed, same faults" a b;
  check_bool "some requests faulted" true (a > 0);
  check_bool "not all requests faulted" true (a < 40)

let test_disk_drop_window_loses_requests () =
  let mach = Machine.create ~seed:6L () in
  Disk.set_faults mach.Machine.disk
    [
      {
        Disk.f_start = 0L;
        f_stop = 1_000_000L;
        f_mode = Disk.Drop;
        f_pct = 100;
        f_rng = Rng.split mach.Machine.rng;
        f_sectors = None;
      };
    ];
  for sector = 0 to 3 do
    let frame = Frame.alloc mach.Machine.frames ~owner:"t" () in
    ignore (Disk.submit mach.Machine.disk Disk.Read ~sector ~frame ~bytes:512)
  done;
  Engine.run mach.Machine.engine;
  check_int "all dropped" 4 (Disk.dropped_total mach.Machine.disk);
  check_bool "nothing completes" true (Disk.completed mach.Machine.disk = None)

let test_disk_bad_sector_range_scopes_faults () =
  let mach = Machine.create ~seed:7L () in
  Disk.set_faults mach.Machine.disk
    [
      {
        Disk.f_start = 0L;
        f_stop = 1_000_000L;
        f_mode = Disk.Fail;
        f_pct = 100;
        f_rng = Rng.split mach.Machine.rng;
        f_sectors = Some (10, 19);
      };
    ];
  let submit sector =
    let frame = Frame.alloc mach.Machine.frames ~owner:"t" () in
    ignore (Disk.submit mach.Machine.disk Disk.Write ~sector ~frame ~bytes:512)
  in
  submit 5;
  submit 15;
  Engine.run mach.Machine.engine;
  check_int "only the bad-region request faults" 1
    (Disk.faulted_total mach.Machine.disk)

let test_nic_corrupt_scrambles_tag () =
  let mach = Machine.create ~seed:8L () in
  let nic = mach.Machine.nic in
  Nic.set_faults nic
    [
      {
        Nic.f_start = 0L;
        f_stop = 1_000_000L;
        f_mode = Nic.Corrupt;
        f_pct = 100;
        f_rng = Rng.split mach.Machine.rng;
      };
    ];
  Nic.post_rx_buffer nic (Frame.alloc mach.Machine.frames ~owner:"t" ());
  Nic.inject_rx nic ~tag:1234 ~len:1500;
  check_int "faulted counted" 1 (Nic.rx_faulted nic);
  match Nic.rx_ready nic with
  | None -> Alcotest.fail "corrupted packet still delivered"
  | Some ev -> check_bool "tag scrambled" true (ev.Nic.tag <> 1234)

let test_nic_drop_eats_packet () =
  let mach = Machine.create ~seed:9L () in
  let nic = mach.Machine.nic in
  Nic.set_faults nic
    [
      {
        Nic.f_start = 0L;
        f_stop = 1_000_000L;
        f_mode = Nic.Drop;
        f_pct = 100;
        f_rng = Rng.split mach.Machine.rng;
      };
    ];
  Nic.post_rx_buffer nic (Frame.alloc mach.Machine.frames ~owner:"t" ());
  Nic.inject_rx nic ~tag:55 ~len:100;
  check_int "faulted counted" 1 (Nic.rx_faulted nic);
  check_bool "nothing delivered" true (Nic.rx_ready nic = None)

(* --- plan arming: storms and kills as engine events --- *)

let test_arm_schedules_storm_and_kill () =
  let mach = Machine.create ~seed:10L () in
  let killed = ref [] in
  let armed =
    Faults.arm
      [
        Faults.Irq_storm
          { line = Machine.nic_irq; at = 1_000L; count = 8; gap = 10L };
        Faults.Kill_at { at = 5_000L; target = "blk-server" };
      ]
      mach
      ~kill:(fun target -> killed := target :: !killed)
  in
  Engine.run mach.Machine.engine;
  check_int "kill callback fired once" 1 (List.length !killed);
  check_bool "kill recorded with its virtual time" true
    (Faults.first_kill_time armed "blk-server" = Some 5_000L);
  check_int "storm raises counted" 8
    (Counter.get mach.Machine.counters "faults.irq_storm");
  check_int "kill counted" 1
    (Counter.get mach.Machine.counters "faults.kill")

(* Disarming before the events fire must cancel them: the engine still
   runs to quiescence, but no storm raises, no kill, no squeeze. *)
let test_disarm_cancels_scheduled_events () =
  let mach = Machine.create ~seed:10L () in
  let killed = ref [] in
  let squeezed = ref 0 in
  let armed =
    Faults.arm
      ~pressure:(fun _ -> incr squeezed)
      [
        Faults.Irq_storm
          { line = Machine.nic_irq; at = 1_000L; count = 8; gap = 10L };
        Faults.Kill_at { at = 5_000L; target = "blk-server" };
        Faults.Memory_pressure { m_at = 2_000L; m_frames = 4; m_victim = "x" };
      ]
      mach
      ~kill:(fun target -> killed := target :: !killed)
  in
  Faults.disarm armed mach;
  Engine.run mach.Machine.engine;
  check_int "no kill fired" 0 (List.length !killed);
  check_int "no squeeze fired" 0 !squeezed;
  check_int "no storm raises" 0
    (Counter.get mach.Machine.counters "faults.irq_storm");
  check_int "no kill counted" 0
    (Counter.get mach.Machine.counters "faults.kill")

(* --- unwind-kill: the victim observes Killed --- *)

let test_kill_thread_observable_by_victim () =
  let mach = Machine.create ~seed:11L () in
  let k = Kernel.create mach in
  let observed = ref None in
  let victim =
    Kernel.spawn k ~name:"victim" (fun () ->
        try ignore (Sysif.recv Sysif.Any)
        with Sysif.Ipc_error e -> observed := Some e)
  in
  let _killer =
    Kernel.spawn k ~name:"killer" (fun () ->
        Sysif.burn 1000;
        Sysif.kill_thread victim)
  in
  ignore (Kernel.run k);
  check_bool "victim saw Killed" true (!observed = Some Sysif.Killed);
  check_int "no live threads" 0 (Kernel.thread_count k)

(* --- watchdog: respawn + rebind --- *)

let test_watchdog_respawns_dead_server () =
  let mach = Machine.create ~seed:12L () in
  let k = Kernel.create mach in
  let blk_spec () =
    {
      Sysif.name = "blk-server";
      priority = 2;
      same_space = false;
      pager = None;
      body = (fun () -> Blk_server.body mach ());
    }
  in
  let tid0 =
    Kernel.spawn k ~name:"blk-server" ~priority:2 ~account:Blk_server.account
      (fun () -> Blk_server.body mach ())
  in
  let entry = Svc.entry ~name:"blk" tid0 in
  let wd = Watchdog.create () in
  let _ =
    Kernel.spawn k ~name:"watchdog" ~priority:1 ~account:"watchdog"
      (Watchdog.body mach wd ~period:500_000L ~ping_timeout:100_000L
         [ (entry, blk_spec) ])
  in
  (* Client: wait for the rebind, then check the replacement answers. *)
  let replacement_ok = ref false in
  let done_ = ref false in
  let _client =
    Kernel.spawn k ~name:"client" ~priority:3 ~account:"client" (fun () ->
        while Svc.generation entry = 0 do
          Sysif.sleep 100_000L
        done;
        let _, reply =
          Sysif.call ~timeout:500_000L (Svc.tid entry) (Sysif.msg Proto.ping)
        in
        replacement_ok := reply.Sysif.label = Proto.ok;
        done_ := true)
  in
  Engine.after mach.Machine.engine 200_000L (fun () -> Kernel.kill k tid0);
  ignore (Kernel.run k ~until:(fun () -> !done_));
  Watchdog.stop wd;
  ignore (Kernel.run k);
  check_int "one respawn" 1 (List.length (Watchdog.respawns wd));
  check_bool "entry rebound to a fresh tid" true (Svc.tid entry <> tid0);
  check_int "generation bumped" 1 (Svc.generation entry);
  check_bool "replacement answers pings" true !replacement_ok;
  check_int "respawn counted" 1
    (Counter.get mach.Machine.counters "uk.watchdog.respawn")

(* --- Dom0: a never-connecting channel is dropped, not spun on --- *)

let test_dom0_drops_unconnected_channel () =
  let mach = Machine.create ~seed:13L () in
  let h = Hypervisor.create mach in
  let chan = Blk_channel.create () in
  let _ =
    Hypervisor.create_domain h ~name:Dom0.name ~privileged:true
      (Dom0.body mach ~connect_timeout:100_000L ~blk:[ chan ])
  in
  (match Hypervisor.run h with
  | Hypervisor.Idle -> ()
  | _ -> Alcotest.fail "dom0 never quiesced (busy spin on dead channel?)");
  check_int "drop counted" 1
    (Counter.get mach.Machine.counters "dom0.connect_dropped")

(* --- end-to-end recovery (the E13 scenarios) --- *)

let recovered (m : Exp_e13.metrics) ~ops =
  m.Exp_e13.finished
  && m.Exp_e13.recoveries >= 1
  && (match m.Exp_e13.recovery_latency with Some l -> l > 0L | None -> false)
  && m.Exp_e13.completed + m.Exp_e13.lost = ops
  && m.Exp_e13.lost <= ops / 4

let test_l4_client_rides_out_driver_kill () =
  let m = Exp_e13.run_one ~stack:`L4 ~rate:15 ~quick:true in
  check_bool "watchdog + retry recovery" true (recovered m ~ops:16)

let test_vmm_client_rides_out_domain_kill () =
  let m = Exp_e13.run_one ~stack:`Vmm ~rate:15 ~quick:true in
  check_bool "supervisor + reconnect recovery" true (recovered m ~ops:16)

let test_baseline_rate_zero_is_clean () =
  let l4 = Exp_e13.run_one ~stack:`L4 ~rate:0 ~quick:true in
  let vmm = Exp_e13.run_one ~stack:`Vmm ~rate:0 ~quick:true in
  List.iter
    (fun (m : Exp_e13.metrics) ->
      check_int "all ops complete" 16 m.Exp_e13.completed;
      check_int "nothing lost" 0 m.Exp_e13.lost;
      check_int "no recoveries" 0 m.Exp_e13.recoveries;
      check_int "no retries" 0 m.Exp_e13.retries)
    [ l4; vmm ]

(* --- plan validation (E18): malformed plans die at arm time --- *)

let rejected plan =
  match Faults.validate plan with
  | () -> false
  | exception Faults.Invalid_plan _ -> true

let disk_w ?sectors ~start ~stop () =
  {
    Faults.d_start = start;
    d_stop = stop;
    d_mode = Disk.Fail;
    d_pct = 10;
    d_sectors = sectors;
  }

let nic_w ~start ~stop () =
  { Faults.n_start = start; n_stop = stop; n_mode = Nic.Drop; n_pct = 50 }

let test_validate_rejects_malformed_plans () =
  check_bool "negative-duration disk window" true
    (rejected [ Faults.Disk_faults [ disk_w ~start:2_000L ~stop:1_000L () ] ]);
  check_bool "negative-duration nic window" true
    (rejected [ Faults.Nic_faults [ nic_w ~start:500L ~stop:100L () ] ]);
  check_bool "kill at negative time" true
    (rejected [ Faults.Kill_at { at = -1L; target = "x" } ]);
  check_bool "fault pct above 100" true
    (rejected
       [
         Faults.Disk_faults
           [ { (disk_w ~start:0L ~stop:1L ()) with Faults.d_pct = 101 } ];
       ]);
  check_bool "empty sector range" true
    (rejected
       [ Faults.Disk_faults [ disk_w ~sectors:(9, 3) ~start:0L ~stop:1L () ] ]);
  (* arm refuses the same plans: nothing is half-installed. *)
  let mach = Machine.create ~seed:30L () in
  (match
     Faults.arm [ Faults.Kill_at { at = -1L; target = "x" } ] mach ~kill:ignore
   with
  | _ -> Alcotest.fail "arm accepted an invalid plan"
  | exception Faults.Invalid_plan _ -> ());
  Engine.run mach.Machine.engine;
  check_int "nothing fired from the rejected plan" 0
    (Counter.get mach.Machine.counters "faults.kill")

let test_validate_rejects_overlapping_windows () =
  (* Same sectors, intersecting spans: the first matching window shadows
     the second. *)
  check_bool "overlapping whole-disk windows" true
    (rejected
       [
         Faults.Disk_faults
           [ disk_w ~start:0L ~stop:1_000L (); disk_w ~start:500L ~stop:2_000L () ];
       ]);
  check_bool "time-overlapping nic windows" true
    (rejected
       [
         Faults.Nic_faults
           [ nic_w ~start:0L ~stop:1_000L (); nic_w ~start:999L ~stop:2_000L () ];
       ]);
  (* Disjoint sector ranges may share a time span: two distinct bad
     regions, no shadowing. *)
  Faults.validate
    [
      Faults.Disk_faults
        [
          disk_w ~sectors:(0, 9) ~start:0L ~stop:1_000L ();
          disk_w ~sectors:(10, 19) ~start:0L ~stop:1_000L ();
        ];
    ];
  (* Back-to-back windows (half-open spans) are not an overlap. *)
  Faults.validate
    [
      Faults.Nic_faults
        [ nic_w ~start:0L ~stop:1_000L (); nic_w ~start:1_000L ~stop:2_000L () ];
    ];
  (* And a well-formed plan still arms and fires. *)
  let mach = Machine.create ~seed:31L () in
  let killed = ref 0 in
  let armed =
    Faults.arm
      [
        Faults.Nic_faults [ nic_w ~start:0L ~stop:1_000L () ];
        Faults.Kill_at { at = 2_000L; target = "t" };
      ]
      mach
      ~kill:(fun _ -> incr killed)
  in
  Engine.run mach.Machine.engine;
  check_int "valid plan fires its kill" 1 !killed;
  check_bool "kill time recorded" true
    (Faults.first_kill_time armed "t" = Some 2_000L)

(* --- watchdog backoff + give-up (E18) --- *)

(* A deterministically crashing service: every replacement exits at once,
   every ping fails. The watchdog must space its respawns exponentially
   and abandon the service at the cap instead of rebuilding forever. *)
let test_watchdog_backoff_and_giveup () =
  let mach = Machine.create ~seed:32L () in
  let k = Kernel.create mach in
  let crash_spec () =
    {
      Sysif.name = "crashy";
      priority = 2;
      same_space = false;
      pager = None;
      body = (fun () -> ());
    }
  in
  let tid0 = Kernel.spawn k ~name:"crashy" ~priority:2 (fun () -> ()) in
  let entry = Svc.entry ~name:"crashy" tid0 in
  let wd = Watchdog.create () in
  let backoff = 150_000L in
  let _ =
    Kernel.spawn k ~name:"watchdog" ~priority:1 ~account:"watchdog"
      (Watchdog.body mach wd ~period:100_000L ~ping_timeout:50_000L ~backoff
         ~give_up:3
         [ (entry, crash_spec) ])
  in
  ignore (Kernel.run k ~until:(fun () -> Watchdog.given_up wd <> []));
  Watchdog.stop wd;
  ignore (Kernel.run k);
  let times = List.map snd (Watchdog.respawns wd) in
  check_int "respawns stop at the cap" 3 (List.length times);
  (match times with
  | [ t1; t2; t3 ] ->
      let g2 = Int64.sub t2 t1 and g3 = Int64.sub t3 t2 in
      check_bool "second respawn waits out one backoff" true (g2 >= backoff);
      check_bool "third respawn waits out twice the backoff" true
        (g3 >= Int64.mul 2L backoff);
      check_bool "gaps grow" true (Int64.compare g3 g2 > 0)
  | _ -> Alcotest.fail "expected exactly three respawn times");
  check_bool "service abandoned" true (Watchdog.given_up wd = [ "crashy" ]);
  check_int "give-up counted once" 1
    (Counter.get mach.Machine.counters "uk.watchdog.giveup");
  check_int "respawns counted" 3
    (Counter.get mach.Machine.counters "uk.watchdog.respawn");
  check_int "machine quiesces after give-up" 0 (Kernel.thread_count k)

let test_watchdog_rejects_bad_caps () =
  let mach = Machine.create ~seed:33L () in
  let wd = Watchdog.create () in
  Alcotest.check_raises "give_up < 1 rejected"
    (Invalid_argument "Watchdog.body: give_up < 1") (fun () ->
      Watchdog.body mach wd ~period:1L ~ping_timeout:1L ~give_up:0 [] ());
  Alcotest.check_raises "negative backoff rejected"
    (Invalid_argument "Watchdog.body: backoff < 0") (fun () ->
      Watchdog.body mach wd ~period:1L ~ping_timeout:1L ~backoff:(-1L) [] ())

(* --- repeated kills (E18): k kills, k recoveries, on both stacks --- *)

let l4_kill_times = [ 1_000_000L; 2_200_000L; 3_400_000L ]

let test_l4_rides_out_repeated_kills () =
  let ops = 32 in
  let mach = Machine.create ~seed:34L () in
  let k = Kernel.create mach in
  let blk_spec () =
    {
      Sysif.name = "blk-server";
      priority = 2;
      same_space = false;
      pager = None;
      body = (fun () -> Blk_server.body mach ());
    }
  in
  let tid0 =
    Kernel.spawn k ~name:"blk-server" ~priority:2 ~account:Blk_server.account
      (fun () -> Blk_server.body mach ())
  in
  let entry = Svc.entry ~name:"blk" tid0 in
  let wd = Watchdog.create () in
  let _ =
    Kernel.spawn k ~name:"watchdog" ~priority:1 ~account:"watchdog"
      (Watchdog.body mach wd ~period:300_000L ~ping_timeout:100_000L
         [ (entry, blk_spec) ])
  in
  let retry =
    Port_l4.retry ~mach ~attempts:8 ~timeout:1_000_000L ~base_delay:100_000L
      (Rng.split mach.Machine.rng)
  in
  let gk =
    Kernel.spawn k ~name:"gk" ~priority:3 ~account:Port_l4.gk_account
      (Port_l4.guest_kernel_body ~retry ~blk_svc:entry ~net:None
         ~blk:(Some tid0))
  in
  let stats = Apps.stats () in
  let done_ = ref false in
  let _client =
    Kernel.spawn k ~name:"blkapp" ~priority:4 ~account:"blkapp"
      (Port_l4.app_body mach ~gk (fun () ->
           Apps.blk_retry_stream ~stats
             ~now:(fun () -> Machine.now mach)
             ~log:(fun _ -> ())
             ~ops ~span:24 ~seed:7 ~pace:150_000 () ();
           done_ := true))
  in
  (* Three kills through one armed plan: validation accepts repeated
     kills of the same target (they are points, not windows). *)
  let armed =
    Faults.arm
      (List.map
         (fun at -> Faults.Kill_at { at; target = "blk-server" })
         l4_kill_times)
      mach
      ~kill:(fun _ -> Kernel.kill k (Svc.tid entry))
  in
  ignore (Kernel.run k ~until:(fun () -> !done_));
  Watchdog.stop wd;
  ignore (Kernel.run k);
  check_bool "client finished" true !done_;
  check_int "every kill fired" 3
    (List.length (Faults.kill_times armed "blk-server"));
  check_int "one respawn per kill" 3 (List.length (Watchdog.respawns wd));
  check_int "generation matches the kill count" 3 (Svc.generation entry);
  check_bool "no give-up: healthy pings reset the streak" true
    (Watchdog.given_up wd = []);
  check_int "all ops accounted" ops (stats.Apps.completed + stats.Apps.errors);
  check_bool "most ops survive three kills" true (stats.Apps.errors <= ops / 4)

let vmm_kill_times = [ 1_500_000L; 3_500_000L; 5_500_000L ]

let test_vmm_rides_out_repeated_kills () =
  let ops = 40 in
  let mach = Machine.create ~seed:35L () in
  let h = Hypervisor.create mach in
  let bchan = Blk_channel.create () in
  let make ~restart () =
    Dom0.body mach ~connect_timeout:10_000_000L ~generation:restart
      ~blk:[ bchan ] ()
  in
  let dom0 =
    Hypervisor.create_domain h ~name:Dom0.name ~privileged:true
      (make ~restart:0)
  in
  let sup =
    Hypervisor.supervise h ~name:Dom0.name ~privileged:true ~period:500_000L
      ~make_body:make dom0
  in
  let stats = Apps.stats () in
  let done_ = ref false in
  let _guest =
    Hypervisor.create_domain h ~name:"blkguest"
      (Port_xen.guest_body mach ~blk:(bchan, dom0) ~resilient:true
         ~io_timeout:800_000L
         ~app:(fun () ->
           Apps.blk_retry_stream ~stats
             ~now:(fun () -> Machine.now mach)
             ~log:(fun _ -> ())
             ~ops ~span:24 ~seed:7 ~pace:150_000 () ();
           done_ := true))
  in
  let armed =
    Faults.arm
      (List.map
         (fun at -> Faults.Kill_at { at; target = Dom0.name })
         vmm_kill_times)
      mach
      ~kill:(fun _ ->
        Hypervisor.kill_domain h (Hypervisor.supervised_domid sup))
  in
  ignore (Hypervisor.run h ~until:(fun () -> !done_));
  Hypervisor.stop_supervisor sup;
  ignore (Hypervisor.run h);
  check_bool "client finished" true !done_;
  check_int "every kill fired" 3
    (List.length (Faults.kill_times armed Dom0.name));
  check_int "one restart per kill" 3 (List.length (Hypervisor.restarts sup));
  check_bool "one reconnect per restart" true
    (Counter.get mach.Machine.counters "xen.reconnects" >= 3);
  check_int "all ops accounted" ops (stats.Apps.completed + stats.Apps.errors);
  check_bool "most ops survive three kills" true (stats.Apps.errors <= ops / 4)

let test_e13_runs_are_deterministic () =
  let a = Exp_e13.run_one ~stack:`L4 ~rate:35 ~quick:true in
  let b = Exp_e13.run_one ~stack:`L4 ~rate:35 ~quick:true in
  check_bool "identical metrics" true (a = b);
  let c = Exp_e13.run_one ~stack:`Vmm ~rate:35 ~quick:true in
  let d = Exp_e13.run_one ~stack:`Vmm ~rate:35 ~quick:true in
  check_bool "identical metrics (vmm)" true (c = d)

let suite =
  [
    Alcotest.test_case "disk Fail window is deterministic" `Quick
      test_disk_fail_window_deterministic;
    Alcotest.test_case "disk Drop window loses requests" `Quick
      test_disk_drop_window_loses_requests;
    Alcotest.test_case "disk bad-sector range scopes faults" `Quick
      test_disk_bad_sector_range_scopes_faults;
    Alcotest.test_case "nic Corrupt scrambles the tag" `Quick
      test_nic_corrupt_scrambles_tag;
    Alcotest.test_case "nic Drop eats the packet" `Quick
      test_nic_drop_eats_packet;
    Alcotest.test_case "arm schedules storms and kills" `Quick
      test_arm_schedules_storm_and_kill;
    Alcotest.test_case "disarm cancels scheduled events" `Quick
      test_disarm_cancels_scheduled_events;
    Alcotest.test_case "kill_thread is observable by the victim" `Quick
      test_kill_thread_observable_by_victim;
    Alcotest.test_case "watchdog respawns a dead server" `Quick
      test_watchdog_respawns_dead_server;
    Alcotest.test_case "dom0 drops a never-connecting channel" `Quick
      test_dom0_drops_unconnected_channel;
    Alcotest.test_case "L4 client rides out a driver kill" `Quick
      test_l4_client_rides_out_driver_kill;
    Alcotest.test_case "VMM client rides out a domain kill" `Quick
      test_vmm_client_rides_out_domain_kill;
    Alcotest.test_case "rate 0 reproduces the clean baseline" `Quick
      test_baseline_rate_zero_is_clean;
    Alcotest.test_case "fault runs are deterministic" `Quick
      test_e13_runs_are_deterministic;
    Alcotest.test_case "validate rejects malformed plans" `Quick
      test_validate_rejects_malformed_plans;
    Alcotest.test_case "validate rejects overlapping windows" `Quick
      test_validate_rejects_overlapping_windows;
    Alcotest.test_case "watchdog backs off and gives up on a crash loop"
      `Quick test_watchdog_backoff_and_giveup;
    Alcotest.test_case "watchdog rejects bad caps" `Quick
      test_watchdog_rejects_bad_caps;
    Alcotest.test_case "L4 rides out three repeated kills" `Quick
      test_l4_rides_out_repeated_kills;
    Alcotest.test_case "VMM rides out three repeated kills" `Quick
      test_vmm_rides_out_repeated_kills;
  ]
