(* Bechamel benchmarks: one entry per experiment/table, measuring the
   host-CPU cost of the simulated hot path that regenerates it. Shapes
   (who wins, crossovers) come from `vmk run <id>`; these benches keep
   the simulator itself honest about its own performance.

     dune exec bench/main.exe
     dune exec bench/main.exe -- --only e16 --json BENCH_e16.json

   [--only SUBSTR] restricts the run to entries whose name contains the
   substring; [--json PATH] additionally writes the measured table as a
   small JSON document (the committed BENCH_e16.json baseline is
   produced this way). *)

open Bechamel
open Toolkit
module Machine = Vmk_hw.Machine
module Arch = Vmk_hw.Arch
module Cache = Vmk_hw.Cache
module Irq = Vmk_hw.Irq
module Nic = Vmk_hw.Nic
module Frame = Vmk_hw.Frame
module Engine = Vmk_sim.Engine
module Kernel = Vmk_ukernel.Kernel
module Sysif = Vmk_ukernel.Sysif
module Hypervisor = Vmk_vmm.Hypervisor
module Hcall = Vmk_vmm.Hcall
module Net_channel = Vmk_vmm.Net_channel
module Scenario = Vmk_core.Scenario
module Apps = Vmk_workloads.Apps
module Traffic = Vmk_workloads.Traffic

(* --- building blocks --- *)

let l4_pingpong ?arch rounds () =
  let mach = Machine.create ?arch ~seed:1L () in
  let k = Kernel.create mach in
  let server =
    Kernel.spawn k ~name:"server" (fun () ->
        let rec loop (c, _) = loop (Sysif.reply_wait c (Sysif.msg 0)) in
        loop (Sysif.recv Sysif.Any))
  in
  let _client =
    Kernel.spawn k ~name:"client" (fun () ->
        for _ = 1 to rounds do
          ignore (Sysif.call server (Sysif.msg 1))
        done)
  in
  ignore (Kernel.run k)

let evtchn_pingpong rounds () =
  let mach = Machine.create ~seed:1L () in
  let h = Hypervisor.create mach in
  let offer = ref None in
  let _pong =
    Hypervisor.create_domain h ~name:"pong" (fun () ->
        let port = Hcall.evtchn_alloc_unbound 1 in
        offer := Some port;
        let rec loop () =
          match Hcall.block ~timeout:10_000_000L () with
          | Hcall.Events _ ->
              Hcall.evtchn_send port;
              loop ()
          | Hcall.Timed_out -> ()
        in
        loop ())
  in
  let _ping =
    Hypervisor.create_domain h ~name:"ping" (fun () ->
        let rec wait () =
          match !offer with
          | Some p -> p
          | None ->
              Hcall.yield ();
              wait ()
        in
        let port = Hcall.evtchn_bind ~remote_dom:0 ~remote_port:(wait ()) in
        for _ = 1 to rounds do
          Hcall.evtchn_send port;
          ignore (Hcall.block ~timeout:10_000_000L ())
        done;
        Hcall.exit ())
  in
  ignore (Hypervisor.run h)

let io_stream ~mode packets () =
  ignore
    (Scenario.run_xen ~rx_mode:mode ~blk:false
       ~traffic:(fun mach ~gate ->
         Traffic.constant_rate mach ~gate ~period:15_000L ~len:512
           ~count:packets ())
       ~app:(Apps.net_rx_stream ~packets ())
       ())

let syscall_loop ~structure iterations () =
  let app () = Apps.null_syscalls ~iterations () () in
  ignore
    (match structure with
    | `Native -> Scenario.run_native ~app ()
    | `Xen_tls -> Scenario.run_xen ~net:false ~blk:false ~glibc_tls:true ~app ()
    | `L4 -> Scenario.run_l4 ~net:false ~blk:false ~app ())

let mixed_run ~structure rounds () =
  let app () = Apps.mixed ~rounds ~net_every:2 ~blk_every:5 () () in
  ignore
    (match structure with
    | `Xen -> Scenario.run_xen ~app ()
    | `L4 -> Scenario.run_l4 ~app ())

let kill_with_blocked_clients clients () =
  let mach = Machine.create ~seed:1L () in
  let k = Kernel.create mach in
  let server =
    Kernel.spawn k ~name:"server" (fun () ->
        ignore (Sysif.recv (Sysif.From 9999)))
  in
  for i = 1 to clients do
    ignore
      (Kernel.spawn k
         ~name:(Printf.sprintf "c%d" i)
         (fun () ->
           try ignore (Sysif.call server (Sysif.msg 1))
           with Sysif.Ipc_error _ -> ()))
  done;
  ignore
    (Kernel.run k ~until:(fun () -> Kernel.state_name k server = "blocked-recv"));
  Kernel.kill k server;
  ignore (Kernel.run k)

let icache_thrash () =
  let cache = Cache.of_profile Arch.default in
  for _ = 1 to 50 do
    List.iter
      (fun (region, lines) -> ignore (Cache.touch cache ~region ~lines))
      Vmk_vmm.Costs.icache_regions
  done

let smp_xcore_pingpong rounds () =
  let mach = Machine.create ~cpus:2 ~seed:1L () in
  let smp = Vmk_smp.Smp.create mach in
  let server =
    Vmk_smp.Smp.spawn smp ~name:"server" ~cpu:1 (fun () ->
        for _ = 1 to rounds do
          let dst = Vmk_smp.Smp.recv () in
          Vmk_smp.Smp.send ~dst ~tag:dst ~cycles:100
        done)
  in
  let client_tid = ref 0 in
  let client =
    Vmk_smp.Smp.spawn smp ~name:"client" ~cpu:0 (fun () ->
        for _ = 1 to rounds do
          Vmk_smp.Smp.send ~dst:server ~tag:!client_tid ~cycles:100;
          ignore (Vmk_smp.Smp.recv ())
        done)
  in
  client_tid := client;
  ignore (Vmk_smp.Smp.run smp)

let smp_shootdown_storm broadcasts () =
  let mach = Machine.create ~cpus:8 ~seed:1L () in
  let smp = Vmk_smp.Smp.create mach in
  ignore
    (Vmk_smp.Smp.spawn smp ~name:"mapper" ~cpu:0 (fun () ->
         for _ = 1 to broadcasts do
           Vmk_smp.Smp.shootdown ~pages:16
         done));
  for cpu = 1 to 7 do
    ignore
      (Vmk_smp.Smp.spawn smp ~name:(Printf.sprintf "w%d" cpu) ~cpu (fun () ->
           Vmk_smp.Smp.burn 50_000))
  done;
  ignore (Vmk_smp.Smp.run smp)

let macro_compile () =
  ignore
    (Scenario.run_l4
       ~app:(fun () ->
         Apps.mixed ~rounds:10 ~syscalls_per_round:4 ~work_per_round:400_000
           ~net_every:10 ~blk_every:15 () ())
       ())

(* E15 overload building blocks: admission decisions, the backoff
   schedule (jitter draws included) and pushing into a ring that stays
   saturated (every push an explicit policy rejection). *)
let token_bucket_admit decisions () =
  let b =
    Vmk_overload.Overload.Token_bucket.create ~period:100L ~burst:8 ()
  in
  let now = ref 0L in
  for _ = 1 to decisions do
    now := Int64.add !now 37L;
    ignore (Vmk_overload.Overload.Token_bucket.admit b ~now:!now)
  done

let backoff_schedule draws () =
  let mach = Machine.create ~seed:1L () in
  let b =
    Vmk_overload.Overload.Backoff.create ~attempts:(draws + 1)
      (Vmk_sim.Rng.split mach.Machine.rng)
  in
  for n = 0 to draws - 1 do
    ignore (Vmk_overload.Overload.Backoff.delay b ~attempt:n)
  done

let saturated_ring_push pushes () =
  let ring = Vmk_vmm.Ring.create ~capacity:8 () in
  let dropped = ref 0 in
  Vmk_vmm.Ring.on_drop ring (fun () -> incr dropped);
  for i = 1 to pushes do
    ignore (Vmk_vmm.Ring.push_request ring i)
  done

(* E17/E21: the virtual switch's forwarding hot path at 2/4/8 attached
   guests — pairwise flows over pre-learned stations, pop after each
   forward so the port queues stay shallow (steady state, flow-cache
   hits dominating). Setup (switch creation, port attach, MAC learning)
   is staged outside the timed closure: the pre-E22 [e17_*] entries
   timed the constructor alongside the ~200-packet loop, so their old
   baselines measured mostly setup — both BENCH files were refreshed
   when the hoist landed. The [minor_allocated] column is the
   "Gc words/packet = 0" acceptance check from E21. *)
let switch_forward guests packets =
  let module Vnet = Vmk_vnet.Vnet in
  let s = Vnet.Switch.create () in
  let mt = Vnet.Switch.mac_table s in
  for id = 1 to guests do
    ignore (Vnet.Switch.add_port s ~id);
    Vnet.Mac_table.learn mt ~now:0L ~mac:id ~port:id
  done;
  fun () ->
    (* Wrap-around source cycling — same pairwise sequence as
       [(i mod guests) + 1] without paying an integer division per
       packet in the driver. *)
    let cur = ref 0 in
    for _ = 0 to packets - 1 do
      let src = !cur + 1 in
      let dst = (if src >= guests then 0 else src) + 1 in
      cur := (if src >= guests then 0 else src);
      ignore
        (Vnet.Switch.forward_to s ~now:0L ~in_port:src ~src ~dst ~len:512
           ~tag:((dst * 1_000_000) + (src * 10_000)));
      ignore (Vnet.Switch.discard s ~port:dst)
    done

(* The historical E21 entry names; identical to [switch_forward] now
   that both stage their setup. Kept so the BENCH_e21 series reads
   continuously. *)
let switch_forward_steady = switch_forward

(* E22: the scenario engine's hot pieces — streaming sketch ingest, the
   cross-shard merge, schedule generation, and a small end-to-end day
   slice through [run_cell] on each stack. *)
let sketch_add samples =
  let module Sk = Vmk_stats.Quantile.Sketch in
  let rng = Vmk_sim.Rng.create ~seed:42L () in
  let data = Array.init samples (fun _ -> Vmk_sim.Rng.int rng 1_000_000) in
  fun () ->
    let sk = Sk.create () in
    for i = 0 to samples - 1 do
      Sk.add sk data.(i)
    done;
    ignore (Sk.quantile sk 0.999)

let sketch_merge shards samples =
  let module Sk = Vmk_stats.Quantile.Sketch in
  let rng = Vmk_sim.Rng.create ~seed:43L () in
  let sks =
    Array.init shards (fun _ ->
        let sk = Sk.create () in
        for _ = 1 to samples do
          Sk.add sk (Vmk_sim.Rng.int rng 1_000_000)
        done;
        sk)
  in
  fun () ->
    let into = Sk.create () in
    Array.iter (fun s -> Sk.merge_into ~into s) sks;
    ignore (Sk.quantile into 0.999)

let scenario_generate () =
  let module S = Vmk_workloads.Scenario in
  ignore
    (S.generate ~seed:44L
       {
         S.tenants = 8;
         guests = 8;
         mean_flow_gap = 20_000.0;
         zipf_alpha = 2.6;
         size_min = 1;
         size_max = 256;
         on_mean = 80_000.0;
         off_mean = 40_000.0;
         ramp = S.diurnal;
         horizon = 4_000_000L;
       })

(* E21 decomposition: the counter path alone, interned id vs string
   shim, 1000 bumps per run. *)
let counter_incr_id bumps =
  let c = Vmk_trace.Counter.create_set () in
  let id = Vmk_trace.Counter.id c "bench.hot" in
  fun () ->
    for _ = 1 to bumps do
      Vmk_trace.Counter.incr_id c id
    done

let counter_incr_string bumps =
  let c = Vmk_trace.Counter.create_set () in
  Vmk_trace.Counter.incr c "bench.hot";
  fun () ->
    for _ = 1 to bumps do
      Vmk_trace.Counter.incr c "bench.hot"
    done

(* E16: NIC drain at a given poll-batch size. [batch = 1] is the legacy
   per-packet path (one IRQ, one rx_ready per packet); larger batches
   run the NAPI shape — mask, poll rounds of [batch], unmask — under a
   mitigation window sized to the batch. Packets arrive every 100
   cycles and the kernel hits its preemption point at the same rate. *)
let nic_drain ~batch packets () =
  let e = Engine.create () in
  let irq = Irq.create ~lines:1 in
  let nic = Nic.create e irq ~irq_line:0 () in
  let frames = Frame.create ~frames:(packets + 1) in
  for _ = 1 to packets do
    Nic.post_rx_buffer nic (Frame.alloc frames ~owner:"bench" ())
  done;
  if batch > 1 then Nic.set_mitigation nic (Int64.of_int (batch * 100));
  for i = 1 to packets do
    Engine.at e (Int64.of_int (i * 100)) (fun () ->
        Nic.inject_rx nic ~tag:i ~len:512)
  done;
  let horizon = Int64.of_int ((packets + batch) * 100 + 5_000) in
  let service () =
    if batch = 1 then begin
      Irq.ack irq 0;
      let rec drain () =
        match Nic.rx_ready nic with Some _ -> drain () | None -> ()
      in
      drain ()
    end
    else begin
      Irq.mask irq 0;
      let rec rounds () =
        match Nic.poll nic ~budget:batch with
        | [] ->
            Irq.ack irq 0;
            Irq.unmask irq 0
        | _ -> rounds ()
      in
      rounds ()
    end
  in
  let rec tick at =
    Engine.at e at (fun () ->
        if Irq.next_pending irq <> None then service ();
        let next = Int64.add at 100L in
        if Int64.compare next horizon <= 0 then tick next)
  in
  tick 0L;
  Engine.run e

(* E20: one whole migration on the VMM stack — source machine with
   bridge/sink/guest/daemon, the pre-copy rounds (or the stop-and-copy
   checkpoint path), then the destination machine's restore and replay.
   Small image so the bench measures the protocol machinery, not the
   page loop. *)
let migrate_vmm ~dirty ~cfg () =
  let w =
    match dirty with
    | `Lo -> Vmk_migrate.Migrate.Workload.make ~hot:3 ~cold_every:24 ()
    | `Hi -> Vmk_migrate.Migrate.Workload.make ~hot:12 ~cold_every:4 ()
  in
  ignore (Vmk_migrate.Mig_vmm.migrate ~pages:16 ~steps:120 ~w ~cfg ())

(* --- test registry: one per table/figure --- *)

let entries =
  [
    ( "e1_audit_coverage",
      Staged.stage (fun () ->
          let counters = Vmk_trace.Counter.create_set () in
          Vmk_trace.Counter.add counters "vmm.page_flip" 3;
          ignore (Vmk_core.Audit.coverage counters Vmk_core.Audit.vmm)) );
    ("e2_l4_ipc_roundtrip_x50", Staged.stage (l4_pingpong 50));
    ("e2_evtchn_roundtrip_x50", Staged.stage (evtchn_pingpong 50));
    ("e3_io_flip_50pkts", Staged.stage (io_stream ~mode:Net_channel.Flip 50));
    ("a1_io_copy_50pkts", Staged.stage (io_stream ~mode:Net_channel.Copy 50));
    ( "e4_null_syscall_native_x200",
      Staged.stage (syscall_loop ~structure:`Native 200) );
    ( "e4_null_syscall_xen_tls_x200",
      Staged.stage (syscall_loop ~structure:`Xen_tls 200) );
    ( "e4_null_syscall_l4_x200",
      Staged.stage (syscall_loop ~structure:`L4 200) );
    ("e5_mixed_xen_x20", Staged.stage (mixed_run ~structure:`Xen 20));
    ("e5_mixed_l4_x20", Staged.stage (mixed_run ~structure:`L4 20));
    ("e6_kill_50_blocked_clients", Staged.stage (kill_with_blocked_clients 50));
    ( "e7_pingpong_arm64_x50",
      Staged.stage (l4_pingpong ~arch:(Arch.profile Arch.Arm64) 50) );
    ("e8_macro_compile_like", Staged.stage macro_compile);
    ("e9_icache_thrash", Staged.stage icache_thrash);
    ( "e10_tcb_reliance_l4",
      Staged.stage (fun () ->
          ignore
            (Scenario.run_l4 ~net:false
               ~app:(Apps.blk_mix ~ops:10 ~span:8 ~seed:3 ())
               ())) );
    ( "e11_rt_jitter_l4",
      Staged.stage (fun () -> ignore (Vmk_core.Exp_e11.l4_jitter ~quick:true))
    );
    ( "e12_mach_rpc_x50",
      Staged.stage (fun () ->
          let mach = Machine.create ~seed:1L () in
          let k = Vmk_ukernel.Mach_kernel.create mach in
          let module Mif = Vmk_ukernel.Mach_kernel.Mif in
          let box = ref None in
          let _server =
            Vmk_ukernel.Mach_kernel.spawn k ~name:"s" (fun () ->
                let port = Mif.port_create () in
                box := Some port;
                let rec loop () =
                  let m = Mif.recv port in
                  Mif.send m.Mif.tag
                    { Mif.mlabel = 0; inline_words = 0; ool_bytes = 0; tag = 0 };
                  loop ()
                in
                loop ())
          in
          let _client =
            Vmk_ukernel.Mach_kernel.spawn k ~name:"c" (fun () ->
                let reply = Mif.port_create () in
                let rec wait () =
                  match !box with
                  | Some p -> p
                  | None ->
                      Mif.yield ();
                      wait ()
                in
                let req = wait () in
                for _ = 1 to 50 do
                  Mif.send req
                    { Mif.mlabel = 1; inline_words = 0; ool_bytes = 0; tag = reply };
                  ignore (Mif.recv reply)
                done;
                Mif.exit ())
          in
          ignore (Vmk_ukernel.Mach_kernel.run k)) );
    ( "e13_l4_kill_recover",
      Staged.stage (fun () ->
          ignore (Vmk_core.Exp_e13.run_one ~stack:`L4 ~rate:15 ~quick:true)) );
    ( "e13_vmm_kill_recover",
      Staged.stage (fun () ->
          ignore (Vmk_core.Exp_e13.run_one ~stack:`Vmm ~rate:15 ~quick:true)) );
    ("e14_xcore_ipc_roundtrip_x50", Staged.stage (smp_xcore_pingpong 50));
    ("e14_shootdown_broadcast_x50", Staged.stage (smp_shootdown_storm 50));
    ("e15_token_bucket_admit_x200", Staged.stage (token_bucket_admit 200));
    ("e15_backoff_schedule_x50", Staged.stage (backoff_schedule 50));
    ("e15_saturated_ring_push_x200", Staged.stage (saturated_ring_push 200));
    ("e16_nic_drain_batch1_x96", Staged.stage (nic_drain ~batch:1 96));
    ("e16_nic_drain_batch8_x96", Staged.stage (nic_drain ~batch:8 96));
    ("e16_nic_drain_batch32_x96", Staged.stage (nic_drain ~batch:32 96));
    ("e17_vnet_switch_fwd_2g_x200", Staged.stage (switch_forward 2 200));
    ("e17_vnet_switch_fwd_4g_x200", Staged.stage (switch_forward 4 200));
    ("e17_vnet_switch_fwd_8g_x200", Staged.stage (switch_forward 8 200));
    ("e21_fwd_steady_2g_x200", Staged.stage (switch_forward_steady 2 200));
    ("e21_fwd_steady_8g_x200", Staged.stage (switch_forward_steady 8 200));
    ("e21_counter_incr_id_x1000", Staged.stage (counter_incr_id 1000));
    ("e21_counter_incr_str_x1000", Staged.stage (counter_incr_string 1000));
    ("e22_sketch_add_x1000", Staged.stage (sketch_add 1000));
    ("e22_sketch_merge_8x1000", Staged.stage (sketch_merge 8 1000));
    ("e22_scenario_gen_8t", Staged.stage scenario_generate);
    ( "e22_day_slice_vmm",
      Staged.stage (fun () ->
          ignore (Vmk_core.Exp_e22.bench_slice ~stack:Vmk_core.Exp_e22.Vmm ())) );
    ( "e22_day_slice_uk",
      Staged.stage (fun () ->
          ignore (Vmk_core.Exp_e22.bench_slice ~stack:Vmk_core.Exp_e22.Uk ())) );
    ( "e17_pairwise_vmm_2g_x6",
      Staged.stage (fun () ->
          ignore (Vmk_core.Exp_e17.pairwise ~stack:Vmk_core.Exp_e17.Vmm ~guests:2 ~count:6)) );
    ( "e17_pairwise_uk_2g_x6",
      Staged.stage (fun () ->
          ignore (Vmk_core.Exp_e17.pairwise ~stack:Vmk_core.Exp_e17.Uk ~guests:2 ~count:6)) );
    ( "e18_disagg_baseline",
      Staged.stage (fun () ->
          ignore
            (Vmk_core.Exp_e18.xen_run ~quick:true
               ~mode:Vmk_core.Exp_e18.Disaggregated ~kill:false)) );
    ( "e18_disagg_kill_recover",
      Staged.stage (fun () ->
          ignore
            (Vmk_core.Exp_e18.xen_run ~quick:true
               ~mode:Vmk_core.Exp_e18.Disaggregated ~kill:true)) );
    ( "e18_mono_kill_recover",
      Staged.stage (fun () ->
          ignore
            (Vmk_core.Exp_e18.xen_run ~quick:true
               ~mode:Vmk_core.Exp_e18.Monolithic ~kill:true)) );
    ( "e18_l4_kill_recover",
      Staged.stage (fun () ->
          ignore (Vmk_core.Exp_e18.l4_run ~quick:true ~kill:true)) );
    ( "e19_revoke_d1",
      Staged.stage (fun () -> ignore (Vmk_core.Exp_e19.vmm_chain ~depth:1)) );
    ( "e19_revoke_d3",
      Staged.stage (fun () -> ignore (Vmk_core.Exp_e19.vmm_chain ~depth:3)) );
    ( "e19_revoke_d6",
      Staged.stage (fun () -> ignore (Vmk_core.Exp_e19.vmm_chain ~depth:6)) );
    ( "e20_precopy_dirty_lo",
      Staged.stage
        (migrate_vmm ~dirty:`Lo
           ~cfg:(Vmk_migrate.Migrate.precopy ~max_rounds:6 ~threshold:6 ())) );
    ( "e20_precopy_dirty_hi",
      Staged.stage
        (migrate_vmm ~dirty:`Hi
           ~cfg:(Vmk_migrate.Migrate.precopy ~max_rounds:6 ~threshold:6 ())) );
    ( "e20_stopcopy",
      Staged.stage (migrate_vmm ~dirty:`Lo ~cfg:Vmk_migrate.Migrate.stop_and_copy)
    );
    ( "a5_contended_io_boosted",
      Staged.stage (fun () ->
          ignore
            (Scenario.run_xen ~blk:false
               ~traffic:(fun mach ~gate ->
                 Traffic.constant_rate mach ~gate ~period:20_000L ~len:512
                   ~count:30 ())
               ~app:(Apps.net_rx_stream ~packets:30 ())
               ())) );
    ( "a6_pt_batch_paravirt",
      Staged.stage (fun () ->
          let mach = Machine.create ~seed:2L () in
          let h = Hypervisor.create mach in
          let _ =
            Hypervisor.create_domain h ~name:"g" (fun () ->
                let frames = Array.of_list (Hcall.alloc_frames 8) in
                for round = 1 to 10 do
                  ignore round;
                  let ops =
                    List.concat_map
                      (fun i ->
                        [
                          Hcall.Pt_map
                            {
                              bframe = frames.(i);
                              bvpn = 0x500 + i;
                              bwritable = true;
                            };
                          Hcall.Pt_unmap (0x500 + i);
                        ])
                      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
                  in
                  Hcall.pt_batch ops
                done)
          in
          ignore (Hypervisor.run h)) );
  ]

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let parse_args () =
  let only = ref None and json = ref None and baseline = ref None in
  let rec go = function
    | [] -> ()
    | "--only" :: v :: rest ->
        only := Some v;
        go rest
    | "--json" :: v :: rest ->
        json := Some v;
        go rest
    | "--baseline" :: v :: rest ->
        baseline := Some v;
        go rest
    | a :: _ ->
        Printf.eprintf "bench: unknown argument %s\n" a;
        exit 2
  in
  go (List.tl (Array.to_list Sys.argv));
  (!only, !json, !baseline)

(* Read the "results" object of a committed BENCH_*.json — the same
   vmk-bench-v1 shape [write_json] emits. A tiny line-oriented parse is
   enough: one ["name": value] pair per line. *)
let load_baseline path =
  let ic =
    try open_in path
    with Sys_error msg ->
      Printf.eprintf "bench: cannot read baseline %s: %s\n" path msg;
      exit 2
  in
  let rows = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       (* Only the ns/run section is a baseline; the alloc section of a
          v2 file repeats the same entry names. *)
       if line = "\"minor_words_per_run\": {" then raise End_of_file;
       match String.index_opt line '"' with
       | Some q1 -> (
           match String.index_from_opt line (q1 + 1) '"' with
           | Some q2 -> (
               let name = String.sub line (q1 + 1) (q2 - q1 - 1) in
               match String.index_from_opt line q2 ':' with
               | Some colon -> (
                   let v =
                     String.trim
                       (String.sub line (colon + 1)
                          (String.length line - colon - 1))
                   in
                   let v =
                     match String.index_opt v ',' with
                     | Some c -> String.sub v 0 c
                     | None -> v
                   in
                   match float_of_string_opt v with
                   | Some f -> rows := (name, f) :: !rows
                   | None -> ())
               | None -> ())
           | None -> ())
       | None -> ()
     done
   with End_of_file -> ());
  close_in ic;
  !rows

let benchmark ~only =
  let selected =
    match only with
    | None -> entries
    | Some sub -> List.filter (fun (name, _) -> contains ~sub name) entries
  in
  let tests =
    Test.make_grouped ~name:"vmk" ~fmt:"%s/%s"
      (List.map (fun (name, staged) -> Test.make ~name staged) selected)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  (* [minor_allocated] rides along (E21): words of minor heap per run,
     the "allocs/run" column that keeps hot paths honestly
     allocation-free. *)
  let instances = Instance.[ monotonic_clock; minor_allocated ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
  let raw_results = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  Analyze.merge ols instances results

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json path rows =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema\": \"vmk-bench-v1\",\n  \"unit\": \"ns/run\",\n  \"results\": {\n";
  List.iteri
    (fun i (name, (value, _)) ->
      Printf.fprintf oc "    \"%s\": %s%s\n" (json_escape name)
        (match value with
        | Some v -> Printf.sprintf "%.1f" v
        | None -> "null")
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  },\n  \"minor_words_per_run\": {\n";
  List.iteri
    (fun i (name, (_, words)) ->
      Printf.fprintf oc "    \"%s\": %s%s\n" (json_escape name)
        (match words with
        | Some v -> Printf.sprintf "%.1f" v
        | None -> "null")
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  }\n}\n";
  close_out oc

(* Compare measured ns/run against a committed baseline: print the
   speedup per entry and fail (non-zero exit) when anything regressed
   more than 15% — the CI guard that keeps the E21 win locked in. *)
let regression_threshold = 1.15

let compare_baseline base rows =
  let regressions = ref [] in
  Printf.printf "\n%-42s %12s %12s %9s\n" "vs baseline" "base ns" "now ns"
    "speedup";
  Printf.printf "%s\n" (String.make 78 '-');
  List.iter
    (fun (name, (value, _)) ->
      match (value, List.assoc_opt name base) with
      | Some now, Some was when now > 0.0 ->
          let speedup = was /. now in
          Printf.printf "%-42s %12.0f %12.0f %8.2fx\n" name was now speedup;
          if now > was *. regression_threshold then
            regressions := (name, speedup) :: !regressions
      | _ -> ())
    rows;
  match !regressions with
  | [] -> ()
  | rs ->
      List.iter
        (fun (name, speedup) ->
          Printf.eprintf "bench: REGRESSION %s is %.2fx the baseline (>%.0f%%)\n"
            name (1.0 /. speedup)
            ((regression_threshold -. 1.0) *. 100.0))
        rs;
      exit 1

let () =
  let only, json, baseline = parse_args () in
  let results = benchmark ~only in
  let estimates label =
    match Hashtbl.find_opt results label with
    | None -> fun _ -> None
    | Some tbl -> (
        fun name ->
          match Hashtbl.find_opt tbl name with
          | None -> None
          | Some ols -> (
              match Analyze.OLS.estimates ols with
              | Some (v :: _) -> Some v
              | Some [] | None -> None))
  in
  let clock = estimates (Measure.label Instance.monotonic_clock) in
  let words = estimates (Measure.label Instance.minor_allocated) in
  match Hashtbl.find_opt results (Measure.label Instance.monotonic_clock) with
  | None -> print_endline "bench: no results"
  | Some tbl ->
      let rows =
        List.sort compare
          (Hashtbl.fold
             (fun name _ acc -> (name, (clock name, words name)) :: acc)
             tbl [])
      in
      Printf.printf "%-42s %16s %12s\n" "benchmark" "ns/run" "allocs/run";
      Printf.printf "%s\n" (String.make 72 '-');
      List.iter
        (fun (name, (value, w)) ->
          let ws =
            match w with
            | Some v when Float.abs v < 0.5 -> "0"
            | Some v -> Printf.sprintf "%.0fw" v
            | None -> "n/a"
          in
          match value with
          | Some v -> Printf.printf "%-42s %16.0f %12s\n" name v ws
          | None -> Printf.printf "%-42s %16s %12s\n" name "n/a" ws)
        rows;
      Option.iter (fun path -> write_json path rows) json;
      Option.iter
        (fun path -> compare_baseline (load_baseline path) rows)
        baseline
