module Machine = Vmk_hw.Machine
module Frame = Vmk_hw.Frame
module Disk = Vmk_hw.Disk
module Engine = Vmk_sim.Engine
module Counter = Vmk_trace.Counter
module Overload = Vmk_overload.Overload
module Cap = Vmk_cap.Cap

let account = "drv.blk"

type inflight = { client : Sysif.tid; frame : Frame.frame; read : bool }

let reply_safely dst m =
  try Sysif.send dst m with Sysif.Ipc_error _ -> ()

let body mach ?(buffers = 8) ?admit () =
  let disk = mach.Machine.disk in
  let free = Queue.create () in
  for _ = 1 to buffers do
    Queue.add
      (Frame.alloc mach.Machine.frames ~owner:account
         ~kind:Frame.Device_buffer ())
      free
  done;
  let inflight : (int, inflight) Hashtbl.t = Hashtbl.create 16 in
  (* Per-client sessions off a service root cap (E19): the first request
     hands the client a derived capability; later requests are validated
     against it, so revoking the chain (or the client's death) cuts the
     client off. *)
  let svc = Sysif.cap_mint ~obj:0xB19 ~rights:Cap.r_full in
  let sessions : (Sysif.tid, int) Hashtbl.t = Hashtbl.create 16 in
  let session_ok client =
    match Hashtbl.find_opt sessions client with
    | Some handle -> Sysif.cap_check ~subject:client ~handle ~need:Cap.r_write
    | None -> (
        match
          Sysif.cap_derive ~handle:svc ~to_:client
            ~rights:(Cap.r_read lor Cap.r_write)
        with
        | h ->
            Hashtbl.replace sessions client h;
            true
        | exception Sysif.Ipc_error _ -> false)
  in
  Sysif.irq_attach Machine.disk_irq;
  let handle_completion () =
    let rec drain () =
      match Disk.completed disk with
      | Some request ->
          Sysif.burn 70;
          (match Hashtbl.find_opt inflight request.Disk.id with
          | Some entry ->
              Hashtbl.remove inflight request.Disk.id;
              let reply =
                if not request.Disk.ok then Sysif.msg Proto.error
                else if entry.read then
                  Sysif.msg Proto.ok
                    ~items:
                      [
                        Sysif.Str
                          {
                            bytes = request.Disk.bytes;
                            tag = entry.frame.Frame.tag;
                          };
                      ]
                else Sysif.msg Proto.ok
              in
              reply_safely entry.client reply;
              Queue.add entry.frame free
          | None -> ());
          drain ()
      | None -> ()
    in
    drain ()
  in
  let handle_client client (m : Sysif.msg) =
    if m.Sysif.label = Proto.ping then reply_safely client (Sysif.msg Proto.ok)
    else if
      match admit with
      | None -> false
      | Some bucket ->
          not
            (Overload.Token_bucket.admit bucket
               ~now:(Engine.now mach.Machine.engine))
    then begin
      (* Admission denied: shed before touching the request (E15). *)
      Sysif.burn 60;
      Counter.incr mach.Machine.counters "drv.blk.shed";
      Counter.incr mach.Machine.counters Overload.shed_counter;
      reply_safely client (Sysif.msg Proto.busy)
    end
    else if not (session_ok client) then begin
      Counter.incr mach.Machine.counters "drv.blk.denied";
      reply_safely client (Sysif.msg Proto.error)
    end
    else
    let w = Sysif.words m in
    let sector = if Array.length w > 0 then w.(0) else 0 in
    match Queue.take_opt free with
    | None ->
        (* Buffer exhaustion is transient — retryable, unlike a media
           error. *)
        Counter.incr mach.Machine.counters "drv.blk.busy";
        reply_safely client (Sysif.msg Proto.busy)
    | Some frame ->
        Sysif.burn 90; (* request setup *)
        if m.Sysif.label = Proto.blk_read then begin
          let bytes = if Array.length w > 1 then w.(1) else 512 in
          let id = Disk.submit disk Disk.Read ~sector ~frame ~bytes in
          Hashtbl.add inflight id { client; frame; read = true }
        end
        else if m.Sysif.label = Proto.blk_write then begin
          let bytes = Sysif.str_total m in
          let tag = Option.value (Sysif.first_str_tag m) ~default:0 in
          Frame.set_tag frame tag;
          let id = Disk.submit disk Disk.Write ~sector ~frame ~bytes in
          Hashtbl.add inflight id { client; frame; read = false }
        end
        else begin
          Queue.add frame free;
          reply_safely client (Sysif.msg Proto.error)
        end
  in
  let rec loop () =
    let src, m = Sysif.recv Sysif.Any in
    if Sysif.is_irq_tid src then handle_completion ()
    else handle_client src m;
    loop ()
  in
  loop ()
