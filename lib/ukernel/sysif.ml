type tid = int

let irq_tid line = -(line + 1)
let is_irq_tid tid = tid < 0
let line_of_irq_tid tid = -tid - 1

type fpage = { base_vpn : int; pages : int; writable : bool }

type item =
  | Words of int array
  | Str of { bytes : int; tag : int }
  | Map of { fpage : fpage; grant : bool }

type msg = { label : int; items : item list }

let msg ?(items = []) label = { label; items }

let words m =
  List.fold_left
    (fun acc item ->
      match item with Words w -> Array.append acc w | Str _ | Map _ -> acc)
    [||] m.items

let str_total m =
  List.fold_left
    (fun acc item ->
      match item with Str { bytes; _ } -> acc + bytes | Words _ | Map _ -> acc)
    0 m.items

let first_str_tag m =
  List.find_map
    (function Str { tag; _ } -> Some tag | Words _ | Map _ -> None)
    m.items

let map_items m =
  List.filter_map
    (function Map { fpage; grant } -> Some (fpage, grant) | Words _ | Str _ -> None)
    m.items

type recv_filter = Any | From of tid

type error =
  | Dead_partner
  | Not_permitted
  | Bad_argument of string
  | Page_fault_unhandled of int
  | Killed
  | Timeout

type spawn_spec = {
  name : string;
  priority : int;
  same_space : bool;
  pager : tid option;
  body : unit -> unit;
}

type call =
  | Burn of int
  | Send of tid * msg * int64 option
  | Recv of recv_filter * int64 option
  | Call of tid * msg * int64 option
  | Reply_wait of tid * msg
  | Yield
  | Sleep of int64
  | Exit
  | My_tid
  | Spawn of spawn_spec
  | Alloc_pages of int
  | Touch of { addr : int; len : int; write : bool }
  | Unmap of fpage
  | Irq_attach of int
  | Irq_detach of int
  | Irq_mask of int
  | Irq_unmask of int
  | Send_batch of (tid * msg) list
  | Set_pager of tid
  | Kill_thread of tid
  | Cap_mint of { obj : int; rights : int }
  | Cap_derive of { handle : int; to_ : tid; rights : int }
  | Cap_revoke of { handle : int; self : bool }
  | Cap_check of { subject : tid; handle : int; need : int }
  | Cap_lookup of { vpn : int }
  | Thread_pause of tid
  | Thread_resume of tid
  | Log_dirty of { target : tid; enable : bool }
  | Dirty_read of tid

type reply =
  | R_unit
  | R_tid of tid
  | R_msg of tid * msg
  | R_fpage of fpage
  | R_vpns of int list
  | R_error of error

type _ Effect.t += Invoke : call -> reply Effect.t

exception Ipc_error of error
exception Killed_by_kernel

let invoke c = Effect.perform (Invoke c)

let expect_unit = function
  | R_unit -> ()
  | R_error e -> raise (Ipc_error e)
  | R_tid _ | R_msg _ | R_fpage _ | R_vpns _ ->
      raise (Ipc_error (Bad_argument "reply"))

let expect_msg = function
  | R_msg (src, m) -> (src, m)
  | R_error e -> raise (Ipc_error e)
  | R_unit | R_tid _ | R_fpage _ | R_vpns _ ->
      raise (Ipc_error (Bad_argument "reply"))

let burn n = expect_unit (invoke (Burn n))
let send ?timeout dst m = expect_unit (invoke (Send (dst, m, timeout)))
let recv ?timeout filter = expect_msg (invoke (Recv (filter, timeout)))
let call ?timeout dst m = expect_msg (invoke (Call (dst, m, timeout)))
let reply_wait dst m = expect_msg (invoke (Reply_wait (dst, m)))
let yield () = expect_unit (invoke Yield)
let sleep cycles = expect_unit (invoke (Sleep cycles))

let exit () =
  ignore (invoke Exit);
  (* The kernel never resumes an exited thread. *)
  assert false

let my_tid () =
  match invoke My_tid with
  | R_tid tid -> tid
  | R_error e -> raise (Ipc_error e)
  | R_unit | R_msg _ | R_fpage _ | R_vpns _ ->
      raise (Ipc_error (Bad_argument "reply"))

let spawn spec =
  match invoke (Spawn spec) with
  | R_tid tid -> tid
  | R_error e -> raise (Ipc_error e)
  | R_unit | R_msg _ | R_fpage _ | R_vpns _ ->
      raise (Ipc_error (Bad_argument "reply"))

let alloc_pages n =
  match invoke (Alloc_pages n) with
  | R_fpage fp -> fp
  | R_error e -> raise (Ipc_error e)
  | R_unit | R_msg _ | R_tid _ | R_vpns _ ->
      raise (Ipc_error (Bad_argument "reply"))

let touch ~addr ~len ~write = expect_unit (invoke (Touch { addr; len; write }))
let unmap fp = expect_unit (invoke (Unmap fp))
let irq_attach line = expect_unit (invoke (Irq_attach line))
let irq_detach line = expect_unit (invoke (Irq_detach line))
let irq_mask line = expect_unit (invoke (Irq_mask line))
let irq_unmask line = expect_unit (invoke (Irq_unmask line))

(* Deferred-notify: one kernel entry delivers every currently-receptive
   message of the batch; returns how many were delivered. *)
let send_batch msgs =
  match invoke (Send_batch msgs) with
  | R_tid n -> n
  | R_error e -> raise (Ipc_error e)
  | R_unit | R_msg _ | R_fpage _ | R_vpns _ ->
      raise (Ipc_error (Bad_argument "reply"))
let set_pager tid = expect_unit (invoke (Set_pager tid))
let kill_thread tid = expect_unit (invoke (Kill_thread tid))

let expect_handle = function
  | R_tid h -> h
  | R_error e -> raise (Ipc_error e)
  | R_unit | R_msg _ | R_fpage _ | R_vpns _ ->
      raise (Ipc_error (Bad_argument "reply"))

let cap_mint ~obj ~rights = expect_handle (invoke (Cap_mint { obj; rights }))

let cap_derive ~handle ~to_ ~rights =
  expect_handle (invoke (Cap_derive { handle; to_; rights }))

let cap_revoke ~handle ~self =
  expect_handle (invoke (Cap_revoke { handle; self }))

let cap_check ~subject ~handle ~need =
  match invoke (Cap_check { subject; handle; need }) with
  | R_unit -> true
  | R_error Not_permitted -> false
  | R_error e -> raise (Ipc_error e)
  | R_tid _ | R_msg _ | R_fpage _ | R_vpns _ ->
      raise (Ipc_error (Bad_argument "reply"))

let cap_lookup ~vpn =
  match invoke (Cap_lookup { vpn }) with
  | R_tid h -> Some h
  | R_error Not_permitted -> None
  | R_error e -> raise (Ipc_error e)
  | R_unit | R_msg _ | R_fpage _ | R_vpns _ ->
      raise (Ipc_error (Bad_argument "reply"))

let thread_pause tid = expect_unit (invoke (Thread_pause tid))
let thread_resume tid = expect_unit (invoke (Thread_resume tid))

let log_dirty ~target ~enable =
  expect_unit (invoke (Log_dirty { target; enable }))

let dirty_read target =
  match invoke (Dirty_read target) with
  | R_vpns vpns -> vpns
  | R_error e -> raise (Ipc_error e)
  | R_unit | R_tid _ | R_msg _ | R_fpage _ ->
      raise (Ipc_error (Bad_argument "reply"))

let pp_error ppf = function
  | Dead_partner -> Format.pp_print_string ppf "dead-partner"
  | Not_permitted -> Format.pp_print_string ppf "not-permitted"
  | Bad_argument what -> Format.fprintf ppf "bad-argument(%s)" what
  | Page_fault_unhandled vpn -> Format.fprintf ppf "unhandled-fault(vpn %d)" vpn
  | Killed -> Format.pp_print_string ppf "killed"
  | Timeout -> Format.pp_print_string ppf "timeout"
