(** User-level network driver server.

    The microkernel answer to Xen's Dom0 netback: an unprivileged thread
    that owns the NIC, receives its interrupts as IPC, and serves clients
    over the same IPC primitive used for everything else. Clients send
    {!Proto.net_send} with a string item, or {!Proto.net_recv} and block
    until a packet arrives.

    DMA buffers are allocated straight from the frame table (device
    memory), outside the paging game. *)

val body :
  Vmk_hw.Machine.t ->
  ?rx_buffers:int ->
  ?admit:Vmk_overload.Overload.Token_bucket.t ->
  ?fair:Vmk_overload.Overload.Weighted_buckets.t ->
  ?rx_capacity:int ->
  ?rx_policy:Vmk_overload.Overload.Bounded_queue.policy ->
  ?napi:int ->
  ?poll:int64 ->
  ?vnet:bool ->
  ?vnet_flow_capacity:int ->
  unit ->
  unit
(** Server loop; spawn with {!Kernel.spawn}. Posts [rx_buffers] (default
    16) receive buffers and keeps the NIC topped up.

    Overload policy (E15): [admit] installs a token-bucket gate on the
    receive path — packets beyond the rate are shed before the expensive
    per-packet work (counters ["drv.net.rx_shed"], ["overload.shed"]).
    [rx_capacity] bounds the received-packet queue (default unbounded —
    the naive configuration that livelocks); overflow follows
    [rx_policy] (default drop-oldest; counters ["drv.net.rx_drop"],
    ["overload.drop"]). A [net_send] finding no free transmit buffer
    answers {!Proto.busy} (retryable) rather than {!Proto.error}.

    Interrupt mitigation (E16): [napi] switches the interrupt path to
    NAPI-style hybrid service — the first IRQ-IPC masks the line
    ({!Sysif.irq_mask}), poll rounds each drain up to [napi] packets at
    one [poll_batch_cost] with batch admission
    ({!Vmk_overload.Overload.Token_bucket.admit_n}) and one
    {!Sysif.send_batch} reply flush; an empty round unmasks (one ack for
    the whole coalesced burst) and re-arms. [poll] is polling-only mode:
    the line is masked for good and the NIC is serviced every [poll]
    cycles off the receive timeout (counter ["drv.net.poll_ticks"]).

    Fair share (E17): [fair] adds per-client weighted admission behind
    [admit], keyed on the packet's demux key ([tag / 10⁶]) — counters
    ["overload.fair.admit"], ["overload.fair.shed"].

    Vnet broker (E17): [vnet] makes the server the connection broker of
    the L4 inter-guest path. Guest kernels register with
    {!Proto.vnet_attach} and resolve peers with {!Proto.vnet_lookup}
    (flow-cache → MAC-table, capacity [vnet_flow_capacity], costs
    itemized under ["vnet.flow_hit"]/["vnet.flow_miss"]); the data path
    then runs as direct guest-to-guest IPC, never touching this
    server. *)

val account : string
(** Cycle account the server's work should be charged to: ["drv.net"].
    Pass as [?account] when spawning. *)
