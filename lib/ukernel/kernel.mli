(** The L4-style microkernel.

    Threads are OCaml-5 fibers scheduled by a priority round-robin
    scheduler; the single system-call effect {!Sysif.Invoke} suspends the
    fiber into its TCB. Synchronous IPC rendezvous transfers untyped
    words, copies string items and applies map/grant items through the
    {!Mapdb}; hardware interrupts are converted into IPC from pseudo
    thread-ids; page faults are converted into IPC to the faulter's pager.

    Cost accounting: user computation ({!Sysif.call.Burn}) is charged to
    the thread's account; all kernel work (syscall entry/exit, IPC path,
    copies, mapping, interrupt conversion) is charged to the
    ["ukernel"] account. Address-space switches are charged when a thread
    from a different space is dispatched, so cross-space IPC automatically
    pays the TLB tax of untagged platforms. *)

type t

val priorities : int
(** Priority levels; 0 is highest, [priorities - 1] lowest. *)

val default_priority : int

val kernel_account : string
(** ["ukernel"]. *)

val create : Vmk_hw.Machine.t -> t
(** A kernel for the given (fresh) machine. *)

val machine : t -> Vmk_hw.Machine.t

val spawn :
  t ->
  name:string ->
  ?priority:int ->
  ?pager:Sysif.tid ->
  ?account:string ->
  (unit -> unit) ->
  Sysif.tid
(** Create a thread in a new address space (threads sharing a space are
    created from inside via {!Sysif.call.Spawn} with [same_space]).
    [account] defaults to [name]. The body starts running at the first
    {!run} dispatch.

    @raise Invalid_argument on an out-of-range priority. *)

type stop_reason =
  | Idle  (** No runnable thread and no pending device event. *)
  | Condition  (** The [until] predicate became true. *)
  | Dispatch_limit  (** Safety limit hit — usually a livelock bug. *)

val run :
  ?until:(unit -> bool) -> ?max_dispatches:int -> t -> stop_reason
(** Schedule until quiescence, the [until] condition, or the dispatch
    limit (default 10 million). *)

val kill : t -> Sysif.tid -> unit
(** Abruptly destroy a thread (fault injection): no cleanup runs, partners
    blocked on it receive [R_error Dead_partner], its interrupt
    attachments are dropped. Killing the last thread of a space revokes
    the space's mappings from the mapping database. *)

val inject_kill : t -> Sysif.tid -> unit
(** Unwind-kill (also the [Kill_thread] syscall): the victim's pending
    operation completes with [R_error Killed], so the wrapper raises
    {!Sysif.Ipc_error}[ Killed] inside its fiber and the unwind terminates
    it. Unlike {!kill}, the death is observable from inside the victim. A
    thread that never started is terminated directly. *)

val is_alive : t -> Sysif.tid -> bool

val is_paused : t -> Sysif.tid -> bool
(** Paused threads keep their state but are excluded from scheduling
    (E20 stop-and-copy quiesce); replies and IPC park until resume. *)

val dirty_count : t -> Sysif.tid -> int
(** Pages currently marked dirty in the thread's space (0 when
    log-dirty tracking is not armed). *)

val state_name : t -> Sysif.tid -> string
(** Human-readable state for diagnostics/tests:
    ["ready"|"running"|"blocked-send"|"blocked-recv"|"blocked-call"|
     "sleeping"|"dead"|"missing"]. *)

val thread_count : t -> int
(** Threads that are not dead. *)

val mapdb : t -> Mapdb.t

val caps : t -> Vmk_cap.Cap.t
(** The kernel's capability tables (E19): every page handed out by
    [Alloc_pages] carries a root cap, IPC map/grant items derive child
    caps in the receiver's space, and revocation (the [Unmap] and
    [Cap_revoke] syscalls, space death) tears mappings down through the
    derivation tree. *)

val space_of : t -> Sysif.tid -> Vmk_hw.Page_table.t option
