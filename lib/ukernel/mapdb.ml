type node = {
  asid : int;
  vpn : int;
  frame : Vmk_hw.Frame.frame;
  writable : bool;
  mutable parent : node option;
  mutable children : node list;
}

type t = {
  install : asid:int -> vpn:int -> Vmk_hw.Frame.frame -> writable:bool -> unit;
  remove : asid:int -> vpn:int -> unit;
  nodes : (int * int, node) Hashtbl.t;
}

let create ~install ~remove = { install; remove; nodes = Hashtbl.create 128 }

let insert_root t ~asid ~vpn frame ~writable =
  if Hashtbl.mem t.nodes (asid, vpn) then
    invalid_arg "Mapdb.insert_root: page already mapped";
  let node = { asid; vpn; frame; writable; parent = None; children = [] } in
  Hashtbl.add t.nodes (asid, vpn) node;
  t.install ~asid ~vpn frame ~writable

let detach_from_parent node =
  match node.parent with
  | None -> ()
  | Some p -> p.children <- List.filter (fun c -> c != node) p.children

let map t ~src_asid ~src_vpn ~dst_asid ~dst_vpn ~writable ~grant =
  if src_asid = dst_asid && src_vpn = dst_vpn then Error `Self_map
  else
    match Hashtbl.find_opt t.nodes (src_asid, src_vpn) with
    | None -> Error `Source_not_mapped
    | Some src ->
        if Hashtbl.mem t.nodes (dst_asid, dst_vpn) then Error `Dest_occupied
        else begin
          let writable = writable && src.writable in
          let node =
            {
              asid = dst_asid;
              vpn = dst_vpn;
              frame = src.frame;
              writable;
              parent = None;
              children = [];
            }
          in
          if grant then begin
            (* The destination takes the source's place in the tree. *)
            node.parent <- src.parent;
            (match src.parent with
            | Some p -> p.children <- node :: List.filter (fun c -> c != src) p.children
            | None -> ());
            node.children <- src.children;
            List.iter (fun c -> c.parent <- Some node) src.children;
            Hashtbl.remove t.nodes (src_asid, src_vpn);
            t.remove ~asid:src_asid ~vpn:src_vpn
          end
          else begin
            node.parent <- Some src;
            src.children <- node :: src.children
          end;
          Hashtbl.add t.nodes (dst_asid, dst_vpn) node;
          t.install ~asid:dst_asid ~vpn:dst_vpn src.frame ~writable;
          Ok ()
        end

let rec remove_subtree t node ~count =
  List.iter (fun c -> remove_subtree t c ~count) node.children;
  node.children <- [];
  Hashtbl.remove t.nodes (node.asid, node.vpn);
  t.remove ~asid:node.asid ~vpn:node.vpn;
  incr count

let unmap t ~asid ~vpn ~self =
  match Hashtbl.find_opt t.nodes (asid, vpn) with
  | None -> 0
  | Some node ->
      let count = ref 0 in
      List.iter (fun c -> remove_subtree t c ~count) node.children;
      node.children <- [];
      if self then begin
        detach_from_parent node;
        Hashtbl.remove t.nodes (asid, vpn);
        t.remove ~asid ~vpn;
        incr count
      end;
      !count

(* Non-recursive removal of exactly one mapping, for callers that drive
   the recursion themselves (the E19 capability layer tears down a
   derivation subtree in postorder and removes each page as its cap
   dies). Children that still exist are orphaned, not revoked. *)
let remove_single t ~asid ~vpn =
  match Hashtbl.find_opt t.nodes (asid, vpn) with
  | None -> false
  | Some node ->
      detach_from_parent node;
      List.iter (fun c -> c.parent <- None) node.children;
      node.children <- [];
      Hashtbl.remove t.nodes (asid, vpn);
      t.remove ~asid ~vpn;
      true

let unmap_space t ~asid =
  let victims =
    Hashtbl.fold
      (fun (a, vpn) _ acc -> if a = asid then vpn :: acc else acc)
      t.nodes []
  in
  List.fold_left
    (fun acc vpn -> acc + unmap t ~asid ~vpn ~self:true)
    0 victims

let lookup t ~asid ~vpn =
  Option.map (fun n -> n.frame) (Hashtbl.find_opt t.nodes (asid, vpn))

let mapping_count t = Hashtbl.length t.nodes

let depth t ~asid ~vpn =
  match Hashtbl.find_opt t.nodes (asid, vpn) with
  | None -> None
  | Some node ->
      let rec up node acc =
        match node.parent with None -> acc | Some p -> up p (acc + 1)
      in
      Some (up node 0)
