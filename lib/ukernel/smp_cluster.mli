(** Multi-server microkernel stack on an SMP machine.

    The E3 I/O-storm pipeline (NIC interrupt -> net server -> guest
    app) rebuilt on {!Vmk_smp.Smp}: net servers hold per-core run
    queues' worth of work, forward packets by IPC priced with the same
    {!Costs} constants as the single-CPU kernel, and serialize
    mapping-database updates under one spinlock. Guests batch buffer
    unmaps into TLB-shootdown broadcasts.

    Two placements probe the paper's multi-server claim:
    {ul
    {- [Colocated]: one net server per core, serving the guests on the
       same core — IPC never crosses cores, throughput should scale
       with core count.}
    {- [Pinned]: servers get dedicated cores ([cores/4], at least one)
       and every delivery is a cross-core IPC with an IPI wake — the
       isolation-first arrangement, paying measurable IPI overhead.}} *)

type placement = Colocated | Pinned

type config = {
  cores : int;
  placement : placement;
  guests : int;
  packets : int;  (** Total packets injected, split across guests. *)
  packet_len : int;
  period : int64;  (** Arrival period — E14 keeps it saturating. *)
  app_cycles : int;  (** Per-packet application work in the guest. *)
  coalesce : int;
      (** Interrupt-mitigation factor (E16): 1 = one interrupt entry per
          packet; [n] charges the full entry to every n-th packet only,
          the rest arriving under the hold-off window at poll cost. *)
}

type result = {
  completed : int;  (** Packets fully consumed by finished guests. *)
  wall : int64;  (** Virtual time when the cluster went idle. *)
  mach : Vmk_hw.Machine.t;  (** For counters and per-CPU accounts. *)
  mapdb_acquisitions : int;
  mapdb_contended : int;
  mapdb_spin : int64;
}

val default : ?placement:placement -> cores:int -> unit -> config
(** The E14 workload: 8 guests, 640 packets of 512 bytes arriving every
    400 cycles, 2600 cycles of app work each. *)

val run : ?seed:int64 -> config -> result
(** Build a fresh machine with [cfg.cores] vCPUs, run the pipeline to
    completion. Deterministic per seed.

    @raise Invalid_argument when [cores] or [guests] < 1. *)
