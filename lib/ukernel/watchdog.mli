(** User-level watchdog thread: the microkernel recovery story.

    The watchdog periodically pings each registered service
    ({!Proto.ping} with a bounded IPC timeout). A server that is dead
    ([Dead_partner]) or wedged ([Timeout]) is unwind-killed and a
    replacement is spawned from its factory; the {!Svc.entry} is rebound
    so clients that re-read the entry find the new thread. This is the
    paper's §3 claim in action: because drivers are ordinary threads,
    restarting one is an ordinary spawn — no reboot, no kernel change. *)

type t

val create : unit -> t

val stop : t -> unit
(** Ask the watchdog to exit at its next wakeup (so [Kernel.run] without
    [until] can still reach quiescence). *)

val respawns : t -> (string * int64) list
(** [(service name, virtual time)] of every respawn, oldest first. *)

val body :
  Vmk_hw.Machine.t ->
  t ->
  period:int64 ->
  ping_timeout:int64 ->
  (Svc.entry * (unit -> Sysif.spawn_spec)) list ->
  unit ->
  unit
(** Thread body. [services] pairs each registry entry with a factory
    producing the spawn spec for a replacement instance. Counter:
    ["uk.watchdog.respawn"]. *)
