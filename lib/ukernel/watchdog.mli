(** User-level watchdog thread: the microkernel recovery story.

    The watchdog periodically pings each registered service
    ({!Proto.ping} with a bounded IPC timeout). A server that is dead
    ([Dead_partner]) or wedged ([Timeout]) is unwind-killed and a
    replacement is spawned from its factory; the {!Svc.entry} is rebound
    so clients that re-read the entry find the new thread. This is the
    paper's §3 claim in action: because drivers are ordinary threads,
    restarting one is an ordinary spawn — no reboot, no kernel change.

    Respawning is not unconditional (E18): consecutive respawns of the
    same service without an intervening healthy ping back off
    exponentially, and after a cap the watchdog gives up on the service
    — a deterministically crashing driver degrades into a dead service
    instead of burning the machine on doomed rebuilds forever. *)

type t

val create : unit -> t

val stop : t -> unit
(** Ask the watchdog to exit at its next wakeup (so [Kernel.run] without
    [until] can still reach quiescence). *)

val respawns : t -> (string * int64) list
(** [(service name, virtual time)] of every respawn, oldest first. *)

val given_up : t -> string list
(** Services currently abandoned after the give-up cap, oldest first.
    A service revived by a successful manual rebuild leaves the list. *)

val default_give_up : int
(** [8] consecutive respawns. *)

val body :
  Vmk_hw.Machine.t ->
  t ->
  period:int64 ->
  ping_timeout:int64 ->
  ?backoff:int64 ->
  ?give_up:int ->
  (Svc.entry * (unit -> Sysif.spawn_spec)) list ->
  unit ->
  unit
(** Thread body. [services] pairs each registry entry with a factory
    producing the spawn spec for a replacement instance.

    The first respawn after a healthy ping is immediate; the [n]-th
    consecutive one waits [backoff * 2^(n-1)] cycles (default
    [backoff = period], so isolated failures behave as before), and
    after [give_up] consecutive respawns (default {!default_give_up})
    the service is abandoned. A healthy ping resets both the streak and
    the backoff gate. Abandonment is not permanent: the watchdog keeps
    pinging abandoned services, and a healthy reply — e.g. after a
    manual rebuild rebinds the {!Svc} entry to a working replacement —
    revives the service, clears its give-up streak and removes it from
    {!given_up}. Counters: ["uk.watchdog.respawn"],
    ["uk.watchdog.giveup"], ["uk.watchdog.revive"].
    @raise Invalid_argument if [give_up < 1] or [backoff < 0]. *)
