(** Service registry entries: a level of indirection between clients and
    server thread ids, so a respawned server can take over a name.

    On a real L4 this is a name server; here a shared mutable record is
    enough — clients re-read {!tid} before every attempt, the watchdog
    calls {!rebind} after a respawn. *)

type entry = {
  name : string;
  mutable tid : Sysif.tid;
  mutable generation : int;  (** Bumped on every {!rebind}. *)
}

val entry : name:string -> Sysif.tid -> entry
(** [entry ~name tid] registers generation 0 of the service. *)

val tid : entry -> Sysif.tid
val generation : entry -> int

val rebind : entry -> Sysif.tid -> unit
(** Point the name at a fresh thread and bump the generation. *)
