(** Mapping database: who mapped which page to whom.

    Tracks the delegation tree per physical page so that [unmap] can
    recursively revoke a mapping from every space that received it,
    directly or transitively — the resource-delegation third of the IPC
    primitive. The database does not touch page tables itself; the kernel
    supplies [install]/[remove] callbacks so PTE manipulation (and its
    cost charging) stays in one place. *)

type t

val create :
  install:(asid:int -> vpn:int -> Vmk_hw.Frame.frame -> writable:bool -> unit) ->
  remove:(asid:int -> vpn:int -> unit) ->
  t

val insert_root : t -> asid:int -> vpn:int -> Vmk_hw.Frame.frame -> writable:bool -> unit
(** Record (and install) an initial mapping with no parent — fresh memory
    handed out by the kernel's allocator.

    @raise Invalid_argument if [(asid, vpn)] already holds a mapping. *)

val map :
  t ->
  src_asid:int ->
  src_vpn:int ->
  dst_asid:int ->
  dst_vpn:int ->
  writable:bool ->
  grant:bool ->
  (unit, [ `Source_not_mapped | `Dest_occupied | `Self_map ]) result
(** Delegate the page at [(src_asid, src_vpn)] to [(dst_asid, dst_vpn)].
    [writable] may only downgrade the source's rights. With [grant] the
    source loses its own mapping and the destination inherits its place in
    the tree. *)

val unmap : t -> asid:int -> vpn:int -> self:bool -> int
(** Revoke all mappings derived from [(asid, vpn)]; with [self] also remove
    the mapping itself. Returns the number of mappings removed. Unknown
    pages revoke nothing. *)

val remove_single : t -> asid:int -> vpn:int -> bool
(** Remove exactly the mapping at [(asid, vpn)] — no recursion; surviving
    children are orphaned into roots. For callers that drive the teardown
    order themselves (capability revocation, E19). Returns whether a
    mapping was removed. *)

val unmap_space : t -> asid:int -> int
(** Remove every mapping in the given space (space destruction), revoking
    descendants mapped onward from it. Returns mappings removed. *)

val lookup : t -> asid:int -> vpn:int -> Vmk_hw.Frame.frame option
val mapping_count : t -> int
val depth : t -> asid:int -> vpn:int -> int option
(** Delegation depth: roots are 0, a page mapped from a root is 1, … *)
