(** Message-label conventions shared by kernel, servers and clients. *)

val pagefault : int
(** Label of kernel-synthesised page-fault IPC to a pager. The message
    carries [\[| vpn; write |\]]. *)

val interrupt : int
(** Label of kernel-synthesised interrupt IPC. Carries [\[| line |\]]. *)

(** {1 Driver-server protocol labels} *)

val net_send : int
val net_recv : int
val blk_read : int
val blk_write : int

val ping : int
(** Liveness probe: servers answer [ok] immediately (watchdog protocol). *)

val ok : int
val error : int

val busy : int
(** Transient overload: the server shed the request (admission denied,
    no free buffer). Retryable with backoff, unlike [error] which means
    the operation itself failed (E15). *)

(** {1 Guest-kernel (L4Linux analog) protocol} *)

val guest_syscall : int
