(** Message-label conventions shared by kernel, servers and clients. *)

val pagefault : int
(** Label of kernel-synthesised page-fault IPC to a pager. The message
    carries [\[| vpn; write |\]]. *)

val interrupt : int
(** Label of kernel-synthesised interrupt IPC. Carries [\[| line |\]]. *)

(** {1 Driver-server protocol labels} *)

val net_send : int
val net_recv : int
val blk_read : int
val blk_write : int

val ping : int
(** Liveness probe: servers answer [ok] immediately (watchdog protocol). *)

val ok : int
val error : int

val busy : int
(** Transient overload: the server shed the request (admission denied,
    no free buffer). Retryable with backoff, unlike [error] which means
    the operation itself failed (E15). *)

(** {1 Guest-kernel (L4Linux analog) protocol} *)

val guest_syscall : int

(** {1 Inter-guest vnet protocol (E17)}

    Connection setup goes through the net server (the broker); the data
    path is direct guest-kernel → guest-kernel IPC. *)

val vnet_attach : int
(** Client → broker: register the caller as vnet port [w.(0)]. *)

val vnet_lookup : int
(** Client → broker: resolve destination port [w.(0)] to its thread id
    (flow-cache → MAC-table, with cycle accounting). [ok] carries the
    tid in [w.(0)]; [error] means no such port. *)

val vnet_pkt : int
(** Guest → guest: one data packet as a string item. The [ok] reply
    carries the receiver's ECN mark in [w.(0)] (1 = past the rx-queue
    watermark, sender should back off); [busy] means the bounded rx
    queue rejected it (retryable). *)

val vnet_open : int
(** Guest → guest, once per peer: establish the shared mapping for the
    data path (carries a granted fpage). *)

val vnet_revoke : int
(** Client → broker: tear down port [w.(0)]'s session — the broker
    revokes the port's capability chain, cascading to everything the
    port derived (E19). [ok] carries the number of caps removed. *)

(** {1 Capability transfer (E19)} *)

val cap_grant : int
(** Carries a capability handle in [w.(0)]: the sender has derived a cap
    into the receiver's handle table ({!Sysif.cap_derive}) and hands over
    the handle — resource delegation as plain IPC payload. *)

val revoke_pool : int
(** Client → pager: recursively revoke every mapping delegated out of the
    pager's pool (the pager keeps its own pages). [ok] carries the number
    of caps removed. *)
