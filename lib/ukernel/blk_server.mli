(** User-level block driver server.

    Owns the disk, receives its completions as interrupt IPC, serves
    {!Proto.blk_read}/{!Proto.blk_write} requests from client threads.
    Clients block in their [Call] until the disk completes, so killing
    this server (experiment E6) errors out exactly its in-flight clients. *)

val body :
  Vmk_hw.Machine.t ->
  ?buffers:int ->
  ?admit:Vmk_overload.Overload.Token_bucket.t ->
  unit ->
  unit
(** Server loop; spawn with {!Kernel.spawn}. [buffers] bounds concurrent
    in-flight requests (default 8); beyond it requests are answered with
    {!Proto.busy} — transient exhaustion, retryable with backoff —
    while a media error stays {!Proto.error}. [admit] adds a
    token-bucket admission gate that sheds requests before any setup
    work (counters ["drv.blk.shed"], ["overload.shed"]; E15). *)

val account : string
(** ["drv.blk"]. *)
