module Machine = Vmk_hw.Machine
module Arch = Vmk_hw.Arch
module Engine = Vmk_sim.Engine
module Smp = Vmk_smp.Smp

type placement = Colocated | Pinned

type config = {
  cores : int;
  placement : placement;
  guests : int;
  packets : int;
  packet_len : int;
  period : int64;
  app_cycles : int;
  coalesce : int;
      (** Interrupt-mitigation factor: 1 = every packet interrupts; [n]
          lets only every n-th packet pay the full interrupt→IPC entry,
          the rest arriving under the open hold-off window at poll cost
          (E16 composing with E14). *)
}

type result = {
  completed : int;
  wall : int64;
  mach : Machine.t;
  mapdb_acquisitions : int;
  mapdb_contended : int;
  mapdb_spin : int64;
}

(* Per-packet work beyond the arch/Costs-priced pieces. *)
let driver_work = 600
let unmap_batch = 16

let default ?(placement = Colocated) ~cores () =
  {
    cores;
    placement;
    guests = 8;
    packets = 640;
    packet_len = 512;
    period = 400L;
    app_cycles = 2_600;
    coalesce = 1;
  }

let split_count total parts i = (total / parts) + (if i < total mod parts then 1 else 0)

let run ?seed cfg =
  if cfg.cores < 1 then invalid_arg "Smp_cluster.run: cores";
  if cfg.guests < 1 then invalid_arg "Smp_cluster.run: guests";
  let mach = Machine.create ~cpus:cfg.cores ?seed () in
  let arch = mach.Machine.arch in
  let smp = Smp.create mach in
  let mapdb_lock = Smp.lock_create smp ~name:"mapdb" in
  (* Placement: Colocated runs one net server per core next to its
     guests (same-core IPC); Pinned dedicates the first cores to net
     servers, so every server->guest IPC crosses cores and pays IPIs —
     the paper's "servers in their own address spaces on their own
     cores" arrangement. *)
  let nsrv, srv_cpu, guest_cpu =
    match cfg.placement with
    | Colocated ->
        (cfg.cores, (fun i -> i mod cfg.cores), fun i -> i mod cfg.cores)
    | Pinned ->
        let nsrv = max 1 (cfg.cores / 4) in
        let ng = max 1 (cfg.cores - nsrv) in
        ( nsrv,
          (fun i -> i mod nsrv),
          fun i -> if cfg.cores = 1 then 0 else nsrv + (i mod ng) )
  in
  let guest_count = Array.init cfg.guests (split_count cfg.packets cfg.guests) in
  (* Guest i is served by the net server on (Colocated) its own core or
     (Pinned) server i mod nsrv. *)
  let guest_srv i =
    match cfg.placement with Colocated -> guest_cpu i mod nsrv | Pinned -> i mod nsrv
  in
  let srv_quota = Array.make nsrv 0 in
  Array.iteri
    (fun i c -> srv_quota.(guest_srv i) <- srv_quota.(guest_srv i) + c)
    guest_count;
  let guest_tids =
    Array.init cfg.guests (fun i ->
        let count = guest_count.(i) in
        Smp.spawn smp
          ~name:(Printf.sprintf "guest%d" i)
          ~account:(Printf.sprintf "guest%d" i)
          ~cpu:(guest_cpu i)
          (fun () ->
            for n = 1 to count do
              ignore (Smp.recv ());
              Smp.burn (cfg.app_cycles + Arch.copy_cost arch ~bytes:cfg.packet_len);
              (* Batched unmap of consumed buffers: one broadcast per
                 batch, per the mapdb's lazy revoke. *)
              if n mod unmap_batch = 0 then Smp.shootdown ~pages:unmap_batch
            done))
  in
  let srv_tids =
    Array.init nsrv (fun s ->
        let quota = srv_quota.(s) in
        Smp.spawn smp
          ~name:(Printf.sprintf "net%d" s)
          ~account:(Printf.sprintf "net%d" s)
          ~cpu:(srv_cpu s)
          (fun () ->
            for _ = 1 to quota do
              let dst = Smp.recv () in
              Smp.burn driver_work;
              (* Mapping-database update under the shared lock. *)
              Smp.locked mapdb_lock
                ~cycles:(2 * arch.Arch.pt_update_cost);
              Smp.send ~dst ~tag:dst
                ~cycles:(Costs.ipc_path + arch.Arch.page_map_cost)
            done))
  in
  (* Traffic: one packet per period, round-robin over guests, delivered
     as an interrupt (+ irq->IPC conversion) to the guest's server. *)
  let sent = ref 0 in
  let coalesce = max 1 cfg.coalesce in
  Engine.every mach.Machine.engine cfg.period (fun () ->
      if !sent < cfg.packets then begin
        let g = !sent mod cfg.guests in
        (* With mitigation only every [coalesce]-th packet pays the full
           interrupt→IPC entry; the rest land under the open hold-off
           window and cost one poll-batch read. *)
        let irq_cost =
          if !sent mod coalesce = 0 then
            arch.Arch.irq_entry_cost + Costs.irq_to_ipc
          else arch.Arch.poll_batch_cost
        in
        incr sent;
        Smp.post smp ~irq_cost ~dst:srv_tids.(guest_srv g) guest_tids.(g);
        !sent < cfg.packets
      end
      else false);
  (match Smp.run smp with
  | Smp.Idle -> ()
  | Smp.Condition | Smp.Rounds -> ());
  {
    completed =
      Array.fold_left ( + ) 0
        (Array.mapi
           (fun i tid -> if Smp.is_done smp tid then guest_count.(i) else 0)
           guest_tids);
    wall = Machine.now mach;
    mach;
    mapdb_acquisitions = Smp.lock_acquisitions mapdb_lock;
    mapdb_contended = Smp.lock_contended mapdb_lock;
    mapdb_spin = Smp.lock_spin_cycles mapdb_lock;
  }
