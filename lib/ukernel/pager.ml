let served_count = ref 0
let served () = !served_count

let body ~pool_pages () =
  served_count := 0;
  let pool = Sysif.alloc_pages pool_pages in
  (* Real handles to the pool (E19): Alloc_pages minted a root cap per
     page; revoke_pool tears every delegated mapping down through them
     while the pager keeps its own pages. *)
  let pool_handles =
    List.init pool_pages (fun i ->
        Sysif.cap_lookup ~vpn:(pool.Sysif.base_vpn + i))
  in
  let next = ref 0 in
  let rec loop (incoming : Sysif.tid * Sysif.msg) =
    let faulter, m = incoming in
    let reply =
      if m.Sysif.label = Proto.pagefault && !next < pool_pages then begin
        let page = pool.Sysif.base_vpn + !next in
        incr next;
        incr served_count;
        Sysif.msg Proto.ok
          ~items:
            [ Sysif.Map { fpage = { base_vpn = page; pages = 1; writable = true }; grant = false } ]
      end
      else if m.Sysif.label = Proto.revoke_pool then begin
        let revoked =
          List.fold_left
            (fun acc h ->
              match h with
              | None -> acc
              | Some handle -> acc + Sysif.cap_revoke ~handle ~self:false)
            0 pool_handles
        in
        Sysif.msg Proto.ok ~items:[ Sysif.Words [| revoked |] ]
      end
      else Sysif.msg Proto.error
    in
    match Sysif.reply_wait faulter reply with
    | next_incoming -> loop next_incoming
    | exception Sysif.Ipc_error _ ->
        (* Faulter died while we were handling it; keep serving. *)
        loop (Sysif.recv Sysif.Any)
  in
  loop (Sysif.recv Sysif.Any)
