open Sysif
module Machine = Vmk_hw.Machine
module Arch = Vmk_hw.Arch
module Page_table = Vmk_hw.Page_table
module Mmu = Vmk_hw.Mmu
module Frame = Vmk_hw.Frame
module Irq = Vmk_hw.Irq
module Tlb = Vmk_hw.Tlb
module Cache = Vmk_hw.Cache
module Accounts = Vmk_trace.Accounts
module Counter = Vmk_trace.Counter
module Engine = Vmk_sim.Engine
module Cap = Vmk_cap.Cap

let priorities = 8
let default_priority = 4
let kernel_account = "ukernel"

type thread_state =
  | Ready
  | Running
  | Blocked_send of tid
  | Blocked_recv of recv_filter
  | Blocked_call of tid
  | Sleeping
  | Dead

type pending_touch = {
  t_addr : int;
  t_len : int;
  t_write : bool;
  mutable fault_vpn : int;
}

type tcb = {
  tid : tid;
  name : string;
  account : string;
  priority : int;
  asid : int;
  mutable pager : tid option;
  mutable state : thread_state;
  mutable cont : (reply, unit) Effect.Deep.continuation option;
  mutable pending : reply;
  mutable body : (unit -> unit) option;
  mutable out_msg : msg option;
  mutable wants_reply : bool;
  mutable faulting : pending_touch option;
  mutable burn_left : int;
      (** Remaining user computation, consumed one timeslice per dispatch
          (timer preemption). *)
  mutable block_token : int;
      (** Invalidates stale IPC-timeout events: bumped whenever the
          thread blocks or becomes ready. *)
  mutable paused : bool;
      (** Excluded from scheduling; IPC and replies park (E20 quiesce). *)
  senders : tid Queue.t;
}

(* Pre-resolved counter ids for the IPC/dispatch hot path (E21): interned
   once at [create], bumped with [Counter.incr_id] (an array store) instead
   of a per-call string hash. Cold paths (spawn, faults, kills, timeouts)
   stay string-keyed. Interning eagerly is bit-for-bit safe: a counter that
   never fires stays at zero and zero-valued counters are invisible in
   dumps. *)
type hot_ids = {
  id_ipc_rendezvous : int;
  id_ipc_words : int;
  id_ipc_bytes : int;
  id_map_denied : int;
  id_map_pages : int;
  id_map_skipped : int;
  id_syscall : int;
  id_space_switch : int;
  id_irq_delivered : int;
  id_batch_send : int;
}

type t = {
  mach : Machine.t;
  ids : hot_ids;
  tcbs : (tid, tcb) Hashtbl.t;
  spaces : (int, Page_table.t) Hashtbl.t;
  alloc_ptr : (int, int ref) Hashtbl.t;
  mapdb : Mapdb.t;
  caps : Cap.t;
  queues : tcb Queue.t array;
  irq_handlers : (int, tid) Hashtbl.t;
  log_dirty : (int, (int, unit) Hashtbl.t) Hashtbl.t;
      (** asid -> dirty-vpn set while log-dirty mode is armed (E20). *)
  mutable next_tid : int;
  mutable next_asid : int;
  mutable current_asid : int;
}

type stop_reason = Idle | Condition | Dispatch_limit

let machine t = t.mach
let mapdb t = t.mapdb
let caps t = t.caps

(* Capability object namespaces (E19). Page objects encode the mapping
   identity so revoking a page cap can find its Mapdb node; user objects
   (service sessions minted via Cap_mint) are tagged apart so the two can
   never collide. *)
let page_obj_tag = 1 lsl 60
let user_obj_tag = 1 lsl 56
let page_obj ~asid ~vpn = page_obj_tag lor (asid lsl 24) lor vpn
let user_obj obj = user_obj_tag lor (obj land 0xFFFF_FFFF)

let decode_page_obj obj =
  if obj land page_obj_tag = 0 then None
  else
    let v = obj land lnot page_obj_tag in
    Some (v lsr 24, v land 0xFF_FFFF)

(* The first user page handed out by Alloc_pages; low pages are "text". *)
let alloc_base_vpn = 0x100

let create mach =
  let spaces = Hashtbl.create 16 in
  let install ~asid ~vpn frame ~writable =
    match Hashtbl.find_opt spaces asid with
    | None -> ()
    | Some space ->
        Page_table.map space ~vpn frame ~writable ~user:true;
        Machine.burn mach
          (mach.Machine.arch.Arch.pt_update_cost
          + mach.Machine.arch.Arch.page_map_cost)
  in
  let remove ~asid ~vpn =
    match Hashtbl.find_opt spaces asid with
    | None -> ()
    | Some space ->
        ignore (Page_table.unmap space ~vpn);
        Tlb.invalidate mach.Machine.tlb ~asid ~vpn;
        Machine.burn mach mach.Machine.arch.Arch.pt_update_cost
  in
  let c = mach.Machine.counters in
  {
    mach;
    ids =
      {
        id_ipc_rendezvous = Counter.id c "uk.ipc.rendezvous";
        id_ipc_words = Counter.id c "uk.ipc.words";
        id_ipc_bytes = Counter.id c "uk.ipc.bytes";
        id_map_denied = Counter.id c "uk.ipc.map_denied";
        id_map_pages = Counter.id c "uk.ipc.map_pages";
        id_map_skipped = Counter.id c "uk.ipc.map_skipped";
        id_syscall = Counter.id c "uk.syscall";
        id_space_switch = Counter.id c "uk.space_switch";
        id_irq_delivered = Counter.id c "uk.irq.delivered";
        id_batch_send = Counter.id c "uk.ipc.batch_send";
      };
    tcbs = Hashtbl.create 32;
    spaces;
    alloc_ptr = Hashtbl.create 16;
    mapdb = Mapdb.create ~install ~remove;
    caps =
      Cap.create ~counters:mach.Machine.counters
        ~burn:(fun c -> Machine.burn mach c)
        ();
    queues = Array.init priorities (fun _ -> Queue.create ());
    irq_handlers = Hashtbl.create 8;
    log_dirty = Hashtbl.create 4;
    next_tid = 1;
    next_asid = 1;
    current_asid = 0;
  }

let find k tid = Hashtbl.find_opt k.tcbs tid

let find_alive k tid =
  match find k tid with
  | Some tcb when tcb.state <> Dead -> Some tcb
  | Some _ | None -> None

let is_paused k tid =
  match find k tid with Some tcb -> tcb.paused | None -> false

let dirty_count k tid =
  match find k tid with
  | None -> 0
  | Some tcb -> (
      match Hashtbl.find_opt k.log_dirty tcb.asid with
      | Some dirty -> Hashtbl.length dirty
      | None -> 0)

let space_of t tid =
  match find t tid with
  | Some tcb -> Hashtbl.find_opt t.spaces tcb.asid
  | None -> None

let space_exn k asid =
  match Hashtbl.find_opt k.spaces asid with
  | Some s -> s
  | None -> invalid_arg "Kernel: unknown address space"

let enqueue k tcb = Queue.add tcb k.queues.(tcb.priority)

let ready k tcb reply =
  match tcb.state with
  | Dead -> ()
  | Ready -> tcb.pending <- reply
  | Running | Blocked_send _ | Blocked_recv _ | Blocked_call _ | Sleeping ->
      tcb.block_token <- tcb.block_token + 1;
      tcb.pending <- reply;
      tcb.state <- Ready;
      enqueue k tcb

let kcharged k f =
  Accounts.with_account k.mach.Machine.accounts kernel_account f

let kburn k cycles = Machine.burn k.mach cycles

(* Revocation hook: as each page capability dies, remove exactly its
   Mapdb node (the cap layer drives the recursion in postorder, so a
   node's derived mappings are already gone when its own cap fires).
   Non-page caps (service sessions) need no mechanism teardown. *)
let cap_teardown k (info : Cap.info) ~depth:_ =
  match decode_page_obj info.Cap.i_obj with
  | None -> ()
  | Some (asid, vpn) -> ignore (Mapdb.remove_single k.mapdb ~asid ~vpn)

let fresh_space k =
  let asid = k.next_asid in
  k.next_asid <- k.next_asid + 1;
  Hashtbl.add k.spaces asid (Page_table.create ~asid);
  Hashtbl.add k.alloc_ptr asid (ref alloc_base_vpn);
  asid

let make_tcb k ~name ~priority ~pager ~account ~asid ~body =
  if priority < 0 || priority >= priorities then
    invalid_arg "Kernel: priority out of range";
  let tid = k.next_tid in
  k.next_tid <- k.next_tid + 1;
  let tcb =
    {
      tid;
      name;
      account;
      priority;
      asid;
      pager;
      state = Ready;
      cont = None;
      pending = R_unit;
      body = Some body;
      out_msg = None;
      wants_reply = false;
      paused = false;
      faulting = None;
      burn_left = 0;
      block_token = 0;
      senders = Queue.create ();
    }
  in
  Hashtbl.add k.tcbs tid tcb;
  enqueue k tcb;
  Counter.incr k.mach.Machine.counters "uk.spawn";
  tcb

let spawn k ~name ?(priority = default_priority) ?pager ?account body =
  let account = Option.value account ~default:name in
  let asid = fresh_space k in
  (make_tcb k ~name ~priority ~pager ~account ~asid ~body).tid

(* --- IPC transfer --- *)

let filter_matches filter tid =
  match filter with Any -> true | From x -> x = tid

let transfer_cost k msg =
  let arch = k.mach.Machine.arch in
  let counters = k.mach.Machine.counters in
  Counter.incr_id counters k.ids.id_ipc_rendezvous;
  let nwords = Array.length (words msg) in
  Counter.add_id counters k.ids.id_ipc_words nwords;
  let extra = max 0 (nwords - Costs.free_words) in
  let bytes = str_total msg in
  Counter.add_id counters k.ids.id_ipc_bytes bytes;
  let icache_miss =
    Cache.touch k.mach.Machine.icache ~region:"ipc.path"
      ~lines:Costs.icache_lines_ipc
  in
  kburn k
    (Costs.ipc_path
    + (extra * Costs.per_extra_word)
    + Arch.copy_cost arch ~bytes
    + icache_miss)

(* Apply the map/grant items of [msg], mapping each page either to the
   identity vpn in the receiver's space or to an explicit window base
   (pager replies map at the fault address). *)
let apply_map_items k ~(src : tcb) ~(dst : tcb) ~window msg =
  let counters = k.mach.Machine.counters in
  List.iter
    (fun (fpage, grant) ->
      for i = 0 to fpage.pages - 1 do
        let src_vpn = fpage.base_vpn + i in
        let dst_vpn =
          match window with `Identity -> src_vpn | `At base -> base + i
        in
        (* Rights gate (E19): delegating a page requires holding its
           capability with the map right. *)
        let src_cap =
          match
            Cap.find_obj k.caps ~obj:(page_obj ~asid:src.asid ~vpn:src_vpn)
          with
          | Some info when info.Cap.i_dom = src.asid -> Some info
          | Some _ | None -> None
        in
        let denied =
          match src_cap with
          | Some info ->
              not
                (Cap.check k.caps ~dom:src.asid ~handle:info.Cap.i_handle
                   ~need:Cap.r_map)
              (* Fail closed at the receiver's cap quota: the page is not
                 mapped at all rather than mapped without its mirror cap. *)
              || not (Cap.check_quota k.caps ~dom:dst.asid ~n:1)
          | None -> false
        in
        if denied then Counter.incr_id counters k.ids.id_map_denied
        else
          match
            Mapdb.map k.mapdb ~src_asid:src.asid ~src_vpn ~dst_asid:dst.asid
              ~dst_vpn ~writable:fpage.writable ~grant
          with
          | Ok () ->
              Counter.incr_id counters k.ids.id_map_pages;
              (* Mirror the delegation in the cap layer: the receiver's
                 page cap is a tree child of the sender's (grant moves
                 the sender's cap instead, as in the Mapdb). *)
              (match src_cap with
              | None -> ()
              | Some info ->
                  let dst_obj = page_obj ~asid:dst.asid ~vpn:dst_vpn in
                  if grant then
                    ignore
                      (Cap.grant k.caps ~dom:src.asid
                         ~handle:info.Cap.i_handle ~to_dom:dst.asid
                         ~obj:dst_obj)
                  else
                    let rights =
                      if fpage.writable then Cap.r_full
                      else Cap.r_full land lnot Cap.r_write
                    in
                    ignore
                      (Cap.derive k.caps ~dom:src.asid
                         ~handle:info.Cap.i_handle ~to_dom:dst.asid
                         ~obj:dst_obj ~rights))
          | Error (`Source_not_mapped | `Dest_occupied | `Self_map) ->
              Counter.incr_id counters k.ids.id_map_skipped
      done)
    (map_items msg)

let do_transfer k ~src ~dst ~window msg =
  transfer_cost k msg;
  apply_map_items k ~src ~dst ~window msg

(* A sender that gave up must leave the destination's queue at once —
   a lazy stale-entry sweep would let an overloaded server keep paying
   to skip corpses (E15's send-timeout path). *)
let drop_sender k ~dst_tid ~src_tid =
  match find k dst_tid with
  | None -> ()
  | Some dst ->
      let kept =
        List.filter (fun t -> t <> src_tid) (List.of_seq (Queue.to_seq dst.senders))
      in
      Queue.clear dst.senders;
      List.iter (fun t -> Queue.add t dst.senders) kept

(* Arm an IPC timeout for a thread that just blocked: if it is still in
   the same blocking episode when the deadline fires, the operation fails
   with Timeout. Remaining stale queue entries are dropped lazily by the
   receive-side checks. *)
let arm_ipc_timeout k (tcb : tcb) timeout =
  match timeout with
  | None -> ()
  | Some cycles ->
      tcb.block_token <- tcb.block_token + 1;
      let token = tcb.block_token in
      Engine.after k.mach.Machine.engine cycles (fun () ->
          if tcb.block_token = token then
            match tcb.state with
            | Blocked_send dst_tid ->
                Counter.incr k.mach.Machine.counters "uk.ipc.timeout";
                Counter.incr k.mach.Machine.counters "uk.ipc.send_timeout";
                drop_sender k ~dst_tid ~src_tid:tcb.tid;
                tcb.out_msg <- None;
                tcb.faulting <- None;
                ready k tcb (R_error Timeout)
            | Blocked_recv _ | Blocked_call _ ->
                Counter.incr k.mach.Machine.counters "uk.ipc.timeout";
                tcb.out_msg <- None;
                tcb.faulting <- None;
                ready k tcb (R_error Timeout)
            | Ready | Running | Sleeping | Dead -> ())

(* --- Touch / page-fault protocol --- *)

let fault_msg touch =
  msg Proto.pagefault
    ~items:[ Words [| touch.fault_vpn; (if touch.t_write then 1 else 0) |] ]

(* Deliver [m] as the reply to [dst], which is blocked in a Call on [src].
   A pager reply is intercepted: its map items are applied at the fault
   window and the faulting Touch is retried instead of delivering R_msg. *)
let rec deliver_reply k ~(src : tcb) ~(dst : tcb) m =
  match dst.faulting with
  | Some touch ->
      transfer_cost k m;
      apply_map_items k ~src ~dst ~window:(`At touch.fault_vpn) m;
      let resolved =
        Page_table.lookup (space_exn k dst.asid) ~vpn:touch.fault_vpn <> None
      in
      if resolved then run_touch k dst touch
      else begin
        (* The pager declined to map: fail the access rather than loop. *)
        dst.faulting <- None;
        ready k dst (R_error (Page_fault_unhandled touch.fault_vpn))
      end
  | None ->
      do_transfer k ~src ~dst ~window:`Identity m;
      ready k dst (R_msg (src.tid, m))

and begin_send ?timeout k ~(src : tcb) ~dst_tid ~m ~wants_reply =
  match find_alive k dst_tid with
  | None ->
      src.faulting <- None;
      ready k src (R_error Dead_partner)
  | Some dst -> begin
      match dst.state with
      | Blocked_call waiting_on when waiting_on = src.tid ->
          (* Send-to-caller is the reply half of a Call (L4 style). *)
          deliver_reply k ~src ~dst m;
          if wants_reply then begin
            src.state <- Blocked_call dst.tid;
            arm_ipc_timeout k src timeout
          end
          else ready k src R_unit
      | Blocked_recv filter when filter_matches filter src.tid ->
          do_transfer k ~src ~dst ~window:`Identity m;
          ready k dst (R_msg (src.tid, m));
          if wants_reply then begin
            src.state <- Blocked_call dst.tid;
            arm_ipc_timeout k src timeout
          end
          else ready k src R_unit
      | Ready | Running | Blocked_send _ | Blocked_recv _ | Blocked_call _
      | Sleeping ->
          src.state <- Blocked_send dst.tid;
          src.out_msg <- Some m;
          src.wants_reply <- wants_reply;
          Queue.add src.tid dst.senders;
          arm_ipc_timeout k src timeout
      | Dead ->
          src.faulting <- None;
          ready k src (R_error Dead_partner)
    end

and run_touch k (tcb : tcb) touch =
  let space = space_exn k tcb.asid in
  let result =
    (* Memory access time belongs to the thread, not the kernel. *)
    Accounts.with_account k.mach.Machine.accounts tcb.account (fun () ->
        Mmu.touch_range k.mach space ~start:touch.t_addr ~len:touch.t_len
          ~write:touch.t_write ~user:true)
  in
  match result with
  | Ok _ ->
      (if touch.t_write then
         match Hashtbl.find_opt k.log_dirty tcb.asid with
         | None -> ()
         | Some dirty ->
             let first = touch.t_addr / Vmk_hw.Addr.page_size in
             let last =
               (touch.t_addr + max 0 (touch.t_len - 1))
               / Vmk_hw.Addr.page_size
             in
             for vpn = first to last do
               (* First write to a clean tracked page: one
                  protection-fault trap to set the dirty bit. *)
               if not (Hashtbl.mem dirty vpn) then begin
                 Hashtbl.replace dirty vpn ();
                 Counter.incr k.mach.Machine.counters "uk.logdirty_fault";
                 kcharged k (fun () ->
                     kburn k
                       (k.mach.Machine.arch.Arch.trap_cost
                      + k.mach.Machine.arch.Arch.pt_update_cost))
               end
             done);
      tcb.faulting <- None;
      ready k tcb R_unit
  | Error (vpn, _fault) -> begin
      match tcb.pager with
      | None ->
          tcb.faulting <- None;
          ready k tcb (R_error (Page_fault_unhandled vpn))
      | Some pager_tid ->
          touch.fault_vpn <- vpn;
          tcb.faulting <- Some touch;
          Counter.incr k.mach.Machine.counters "uk.fault.ipc";
          begin_send k ~src:tcb ~dst_tid:pager_tid ~m:(fault_msg touch)
            ~wants_reply:true
    end

(* --- Receive --- *)

let take_matching_sender k (tcb : tcb) filter =
  let queued = List.of_seq (Queue.to_seq tcb.senders) in
  Queue.clear tcb.senders;
  let rec go kept = function
    | [] ->
        List.iter (fun x -> Queue.add x tcb.senders) (List.rev kept);
        None
    | stid :: rest -> begin
        match find k stid with
        | Some s
          when (match s.state with
               | Blocked_send d -> d = tcb.tid
               | Ready | Running | Blocked_recv _ | Blocked_call _ | Sleeping
               | Dead ->
                   false)
               && filter_matches filter stid ->
            List.iter (fun x -> Queue.add x tcb.senders) (List.rev kept);
            List.iter (fun x -> Queue.add x tcb.senders) rest;
            Some s
        | Some s
          when match s.state with Blocked_send d -> d = tcb.tid | _ -> false ->
            (* Valid sender, wrong filter: keep it queued. *)
            go (stid :: kept) rest
        | Some _ | None -> go kept rest (* stale entry: drop *)
      end
  in
  go [] queued

let handle_recv ?timeout k (tcb : tcb) filter =
  match take_matching_sender k tcb filter with
  | Some sender ->
      let m = Option.value sender.out_msg ~default:(msg 0) in
      sender.out_msg <- None;
      do_transfer k ~src:sender ~dst:tcb ~window:`Identity m;
      if sender.wants_reply then sender.state <- Blocked_call tcb.tid
      else ready k sender R_unit;
      ready k tcb (R_msg (sender.tid, m))
  | None ->
      tcb.state <- Blocked_recv filter;
      arm_ipc_timeout k tcb timeout

(* --- Reply --- *)

let handle_reply_then_wait k (tcb : tcb) dst_tid m =
  match find_alive k dst_tid with
  | None -> ready k tcb (R_error Dead_partner)
  | Some dst -> begin
      match dst.state with
      | Blocked_call waiting_on when waiting_on = tcb.tid ->
          deliver_reply k ~src:tcb ~dst m;
          handle_recv k tcb Any
      | Ready | Running | Blocked_send _ | Blocked_recv _ | Blocked_call _
      | Sleeping | Dead ->
          ready k tcb (R_error (Bad_argument "reply-to-non-caller"))
    end

(* --- Thread termination --- *)

let wake_partners k (dead : tcb) =
  Hashtbl.iter
    (fun _ (other : tcb) ->
      if other != dead then
        match other.state with
        | Blocked_send d when d = dead.tid ->
            other.faulting <- None;
            other.out_msg <- None;
            ready k other (R_error Dead_partner)
        | Blocked_call d when d = dead.tid ->
            other.faulting <- None;
            ready k other (R_error Dead_partner)
        | Blocked_recv (From x) when x = dead.tid ->
            ready k other (R_error Dead_partner)
        | Ready | Running | Blocked_send _ | Blocked_recv _ | Blocked_call _
        | Sleeping | Dead ->
            ())
    k.tcbs

let terminate k (tcb : tcb) =
  if tcb.state <> Dead then begin
    tcb.state <- Dead;
    tcb.cont <- None;
    tcb.body <- None;
    tcb.out_msg <- None;
    tcb.faulting <- None;
    let lines =
      Hashtbl.fold
        (fun line handler acc -> if handler = tcb.tid then line :: acc else acc)
        k.irq_handlers []
    in
    List.iter (Hashtbl.remove k.irq_handlers) lines;
    wake_partners k tcb;
    let space_alive =
      Hashtbl.fold
        (fun _ (o : tcb) acc ->
          acc || (o != tcb && o.state <> Dead && o.asid = tcb.asid))
        k.tcbs false
    in
    if not space_alive then begin
      (* Space death revokes every capability the space holds — and,
         through the derivation trees, everything delegated onward from
         them (mappings in other spaces die via the teardown hook). Any
         cap-less leftovers fall to the raw space sweep. *)
      ignore (Cap.revoke_dom k.caps ~dom:tcb.asid ~on_revoke:(cap_teardown k));
      ignore (Mapdb.unmap_space k.mapdb ~asid:tcb.asid)
    end
  end

let kill k tid =
  match find k tid with
  | Some tcb ->
      Counter.incr k.mach.Machine.counters "uk.thread.killed";
      terminate k tcb
  | None -> ()

(* Unwind-kill: instead of vaporising the TCB on the spot, deliver
   [R_error Killed] as the outcome of whatever the victim is doing. The
   wrapper raises [Ipc_error Killed], the exception unwinds the fiber and
   the exnc handler terminates it — so [Sysif.Killed] is genuinely
   observable and any [Fun.protect]-style cleanup in the victim runs. A
   thread that has not started yet has no operation to fail; it is
   terminated directly. *)
let inject_kill k tid =
  match find_alive k tid with
  | None -> ()
  | Some tcb ->
      Counter.incr k.mach.Machine.counters "uk.thread.killed";
      tcb.faulting <- None;
      tcb.out_msg <- None;
      if tcb.body <> None || tcb.state = Running then terminate k tcb
      else ready k tcb (R_error Killed)

let is_alive k tid = find_alive k tid <> None

let state_name k tid =
  match find k tid with
  | None -> "missing"
  | Some tcb -> (
      match tcb.state with
      | Ready -> "ready"
      | Running -> "running"
      | Blocked_send _ -> "blocked-send"
      | Blocked_recv _ -> "blocked-recv"
      | Blocked_call _ -> "blocked-call"
      | Sleeping -> "sleeping"
      | Dead -> "dead")

let thread_count k =
  Hashtbl.fold
    (fun _ (tcb : tcb) acc -> if tcb.state <> Dead then acc + 1 else acc)
    k.tcbs 0

(* --- System-call dispatch --- *)

let syscall_overhead k =
  let arch = k.mach.Machine.arch in
  kburn k
    (arch.Arch.fast_syscall_cost + arch.Arch.kernel_exit_cost
   + Costs.syscall_fixed)

let handle_alloc_pages k (tcb : tcb) n =
  if n <= 0 then ready k tcb (R_error (Bad_argument "alloc-pages"))
  else if
    (* Every fresh page mints a root cap — check the whole batch up
       front so the allocation fails closed, not half-minted. *)
    not (Cap.check_quota k.caps ~dom:tcb.asid ~n)
  then ready k tcb (R_error Not_permitted)
  else begin
    match Hashtbl.find_opt k.alloc_ptr tcb.asid with
    | None -> ready k tcb (R_error (Bad_argument "no-space"))
    | Some ptr -> (
        (* Received identity mappings (IPC map/grant items — e.g. the
           vnet channel setup) may occupy vpns ahead of the allocation
           pointer; slide the window past any collision instead of
           double-mapping. *)
        let rec free_base base =
          let rec check i =
            if i >= n then None
            else if Mapdb.lookup k.mapdb ~asid:tcb.asid ~vpn:(base + i) <> None
            then Some (base + i + 1)
            else check (i + 1)
          in
          match check 0 with None -> base | Some next -> free_base next
        in
        let base_vpn = free_base !ptr in
        match Frame.alloc_many k.mach.Machine.frames ~owner:tcb.account n with
        | frames ->
            ptr := base_vpn + n;
            List.iteri
              (fun i frame ->
                let vpn = base_vpn + i in
                Mapdb.insert_root k.mapdb ~asid:tcb.asid ~vpn frame
                  ~writable:true;
                (* Fresh memory carries a full-rights root capability;
                   every later delegation derives from it. *)
                ignore
                  (Cap.mint k.caps ~dom:tcb.asid
                     ~obj:(page_obj ~asid:tcb.asid ~vpn)
                     ~rights:Cap.r_full))
              frames;
            ready k tcb (R_fpage { base_vpn; pages = n; writable = true })
        | exception Frame.Out_of_frames ->
            ready k tcb (R_error (Bad_argument "out-of-memory")))
  end

let handle_syscall k (tcb : tcb) call =
  match call with
  | _ when tcb.state = Dead ->
      (* Killed mid-burn by fault injection: the fiber is abandoned at its
         next kernel entry. *)
      ()
  | Burn n ->
      (* Pure user computation: no kernel entry, charged to the thread,
         consumed in timeslices across dispatches. *)
      tcb.burn_left <- max 0 n;
      ready k tcb R_unit
  | Yield ->
      Counter.incr_id k.mach.Machine.counters k.ids.id_syscall;
      (* Flattened [kcharged] (E21): [syscall_overhead] is a plain burn
         and cannot raise, so swap/restore replaces the per-call
         closure. *)
      let acc = k.mach.Machine.accounts in
      let prev = Accounts.swap acc kernel_account in
      syscall_overhead k;
      Accounts.restore acc prev;
      ready k tcb R_unit
  | _ ->
      Counter.incr_id k.mach.Machine.counters k.ids.id_syscall;
      (* Flattened [kcharged] (E21): the per-syscall closure was the one
         steady-state allocation on the IPC path. The handler body never
         continues a fiber (replies park in [tcb.pending] until the next
         dispatch), so the explicit try/restore below is the only
         exception edge. *)
      let acc = k.mach.Machine.accounts in
      let prev = Accounts.swap acc kernel_account in
      (try
         syscall_overhead k;
         match call with
          | Burn _ | Yield -> assert false
          | Send (dst, m, timeout) ->
              begin_send ?timeout k ~src:tcb ~dst_tid:dst ~m ~wants_reply:false
          | Call (dst, m, timeout) ->
              begin_send ?timeout k ~src:tcb ~dst_tid:dst ~m ~wants_reply:true
          | Recv (filter, timeout) -> handle_recv ?timeout k tcb filter
          | Reply_wait (dst, m) -> handle_reply_then_wait k tcb dst m
          | Sleep cycles ->
              tcb.state <- Sleeping;
              Engine.after k.mach.Machine.engine cycles (fun () ->
                  if tcb.state = Sleeping then ready k tcb R_unit)
          | Exit -> terminate k tcb
          | My_tid -> ready k tcb (R_tid tcb.tid)
          | Spawn spec ->
              let asid = if spec.same_space then tcb.asid else fresh_space k in
              let child =
                make_tcb k ~name:spec.name ~priority:spec.priority
                  ~pager:spec.pager ~account:tcb.account ~asid ~body:spec.body
              in
              ready k tcb (R_tid child.tid)
          | Alloc_pages n -> handle_alloc_pages k tcb n
          | Touch { addr; len; write } ->
              run_touch k tcb { t_addr = addr; t_len = len; t_write = write; fault_vpn = -1 }
          | Unmap fpage ->
              (* Revocation is cap-driven (E19): the page's capability
                 subtree is torn down and each dying cap removes its own
                 mapping. Pages without a cap (none in practice — every
                 root comes from Alloc_pages) fall back to the raw walk. *)
              let removed = ref 0 in
              for i = 0 to fpage.pages - 1 do
                let vpn = fpage.base_vpn + i in
                match Cap.find_obj k.caps ~obj:(page_obj ~asid:tcb.asid ~vpn) with
                | Some info when info.Cap.i_dom = tcb.asid -> (
                    match
                      Cap.revoke k.caps ~dom:tcb.asid
                        ~handle:info.Cap.i_handle ~self:false
                        ~on_revoke:(cap_teardown k)
                    with
                    | Ok stats -> removed := !removed + stats.Cap.r_removed
                    | Error (`No_cap | `Denied) -> ())
                | Some _ | None ->
                    removed :=
                      !removed + Mapdb.unmap k.mapdb ~asid:tcb.asid ~vpn ~self:false
              done;
              Counter.add k.mach.Machine.counters "uk.unmap.pages" !removed;
              ready k tcb R_unit
          | Irq_attach line ->
              if line < 0 || line >= Irq.lines k.mach.Machine.irq then
                ready k tcb (R_error (Bad_argument "irq-line"))
              else begin
                Hashtbl.replace k.irq_handlers line tcb.tid;
                ready k tcb R_unit
              end
          | Irq_detach line ->
              (match Hashtbl.find_opt k.irq_handlers line with
              | Some h when h = tcb.tid -> Hashtbl.remove k.irq_handlers line
              | Some _ | None -> ());
              ready k tcb R_unit
          | Irq_mask line ->
              if line < 0 || line >= Irq.lines k.mach.Machine.irq then
                ready k tcb (R_error (Bad_argument "irq-line"))
              else if Hashtbl.find_opt k.irq_handlers line <> Some tcb.tid then
                ready k tcb (R_error Not_permitted)
              else begin
                Irq.mask k.mach.Machine.irq line;
                ready k tcb R_unit
              end
          | Irq_unmask line ->
              if line < 0 || line >= Irq.lines k.mach.Machine.irq then
                ready k tcb (R_error (Bad_argument "irq-line"))
              else if Hashtbl.find_opt k.irq_handlers line <> Some tcb.tid then
                ready k tcb (R_error Not_permitted)
              else begin
                (* Batched acknowledgement: one ack covers every edge that
                   coalesced onto the latch while the handler polled. *)
                Irq.ack k.mach.Machine.irq line;
                Irq.unmask k.mach.Machine.irq line;
                ready k tcb R_unit
              end
          | Send_batch msgs ->
              (* Deferred-notify: one kernel entry, no blocking. Each
                 message lands iff its destination is already receptive;
                 the rest are the caller's problem (it retries on the next
                 flush). Transfer cost is still paid per delivery — the
                 saving is the per-message syscall overhead. *)
              let delivered = ref 0 in
              List.iter
                (fun (dst_tid, m) ->
                  match find_alive k dst_tid with
                  | None -> ()
                  | Some dst -> (
                      match dst.state with
                      | Blocked_call waiting_on when waiting_on = tcb.tid ->
                          deliver_reply k ~src:tcb ~dst m;
                          incr delivered
                      | Blocked_recv filter when filter_matches filter tcb.tid
                        ->
                          do_transfer k ~src:tcb ~dst ~window:`Identity m;
                          ready k dst (R_msg (tcb.tid, m));
                          incr delivered
                      | Ready | Running | Blocked_send _ | Blocked_recv _
                      | Blocked_call _ | Sleeping | Dead ->
                          ()))
                msgs;
              Counter.add_id k.mach.Machine.counters k.ids.id_batch_send
                !delivered;
              ready k tcb (R_tid !delivered)
          | Set_pager pager ->
              tcb.pager <- Some pager;
              ready k tcb R_unit
          | Kill_thread victim ->
              if victim = tcb.tid then terminate k tcb
              else begin
                inject_kill k victim;
                ready k tcb R_unit
              end
          | Cap_mint { obj; rights } ->
              if not (Cap.check_quota k.caps ~dom:tcb.asid ~n:1) then
                ready k tcb (R_error Not_permitted)
              else
                let handle =
                  Cap.mint k.caps ~dom:tcb.asid ~obj:(user_obj obj)
                    ~rights:(rights land Cap.r_full)
                in
                ready k tcb (R_tid handle)
          | Cap_derive { handle; to_; rights } -> (
              match find_alive k to_ with
              | None -> ready k tcb (R_error Dead_partner)
              | Some dst -> (
                  match Cap.lookup k.caps ~dom:tcb.asid ~handle with
                  | None -> ready k tcb (R_error Not_permitted)
                  | Some parent -> (
                      match
                        Cap.derive k.caps ~dom:tcb.asid ~handle
                          ~to_dom:dst.asid ~obj:parent.Cap.i_obj ~rights
                      with
                      | Ok h -> ready k tcb (R_tid h)
                      | Error (`No_cap | `Denied | `Quota) ->
                          ready k tcb (R_error Not_permitted))))
          | Cap_revoke { handle; self } -> (
              match
                Cap.revoke k.caps ~dom:tcb.asid ~handle ~self
                  ~on_revoke:(cap_teardown k)
              with
              | Ok stats -> ready k tcb (R_tid stats.Cap.r_removed)
              | Error (`No_cap | `Denied) ->
                  ready k tcb (R_error Not_permitted))
          | Cap_check { subject; handle; need } -> (
              match find_alive k subject with
              | None -> ready k tcb (R_error Not_permitted)
              | Some s ->
                  if Cap.check k.caps ~dom:s.asid ~handle ~need then
                    ready k tcb R_unit
                  else ready k tcb (R_error Not_permitted))
          | Cap_lookup { vpn } -> (
              match
                Cap.find_obj k.caps ~obj:(page_obj ~asid:tcb.asid ~vpn)
              with
              | Some info when info.Cap.i_dom = tcb.asid ->
                  ready k tcb (R_tid info.Cap.i_handle)
              | Some _ | None -> ready k tcb (R_error Not_permitted))
          | Thread_pause target -> (
              match find_alive k target with
              | None -> ready k tcb (R_error Dead_partner)
              | Some victim ->
                  victim.paused <- true;
                  Counter.incr k.mach.Machine.counters "uk.thread_pause";
                  ready k tcb R_unit)
          | Thread_resume target -> (
              match find_alive k target with
              | None -> ready k tcb (R_error Dead_partner)
              | Some victim ->
                  victim.paused <- false;
                  (* It may have gone Ready while paused (parked reply or
                     rendezvous) and been dropped from the run queue. *)
                  if victim.state = Ready then enqueue k victim;
                  ready k tcb R_unit)
          | Log_dirty { target; enable } -> (
              match find_alive k target with
              | None -> ready k tcb (R_error Dead_partner)
              | Some victim ->
                  (* Arming write-protects the space so first writes show
                     up; one PT sweep either way. *)
                  kburn k k.mach.Machine.arch.Arch.pt_update_cost;
                  if enable then
                    Hashtbl.replace k.log_dirty victim.asid
                      (Hashtbl.create 32)
                  else Hashtbl.remove k.log_dirty victim.asid;
                  ready k tcb R_unit)
          | Dirty_read target -> (
              match find_alive k target with
              | None -> ready k tcb (R_error Dead_partner)
              | Some victim -> (
                  match Hashtbl.find_opt k.log_dirty victim.asid with
                  | None -> ready k tcb (R_error (Bad_argument "not-tracked"))
                  | Some dirty ->
                      let vpns =
                        List.sort compare
                          (Hashtbl.fold (fun v () acc -> v :: acc) dirty [])
                      in
                      Hashtbl.reset dirty;
                      (* Harvest re-protects each page for the next
                         round. *)
                      kburn k
                        (List.length vpns
                        * k.mach.Machine.arch.Arch.pt_update_cost);
                      ready k tcb (R_vpns vpns)))
       with e ->
         Accounts.restore acc prev;
         raise e);
      Accounts.restore acc prev

(* --- Fibers --- *)

let start_fiber k (tcb : tcb) body =
  let open Effect.Deep in
  match_with body ()
    {
      retc = (fun () -> terminate k tcb);
      exnc =
        (fun exn ->
          Counter.incr k.mach.Machine.counters "uk.thread.crashed";
          Logs.debug (fun m ->
              m "ukernel: thread %s crashed: %s" tcb.name
                (Printexc.to_string exn));
          terminate k tcb);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Invoke call ->
              Some
                (fun (kont : (a, unit) continuation) ->
                  tcb.cont <- Some kont;
                  handle_syscall k tcb call)
          | _ -> None);
    }

(* --- Interrupt delivery --- *)

(* The second word rides free (within Costs.free_words) and carries the
   number of device events behind this single wake — the deferred-notify
   count a polling handler can trust without re-reading the device. *)
let irq_message ?(burst = 1) line =
  msg Proto.interrupt ~items:[ Words [| line; burst |] ]

let deliver_irqs k =
  let irq = k.mach.Machine.irq in
  for line = 0 to Irq.lines irq - 1 do
    match Hashtbl.find_opt k.irq_handlers line with
    | Some handler_tid
      when Irq.is_pending irq line && not (Irq.is_masked irq line) -> begin
        (* Deliverability: line pending and the handler is receptive. *)
        match find_alive k handler_tid with
        | Some handler -> begin
            match handler.state with
            | Blocked_recv filter when filter_matches filter (irq_tid line) ->
                let burst = max 1 (Irq.burst irq line) in
                Irq.ack irq line;
                let arch = k.mach.Machine.arch in
                (* Flattened [kcharged] (E21): a plain burn cannot
                   raise. *)
                let acc = k.mach.Machine.accounts in
                let prev = Accounts.swap acc kernel_account in
                kburn k
                  (arch.Arch.irq_entry_cost + Costs.irq_to_ipc
                 + arch.Arch.irq_eoi_cost);
                Accounts.restore acc prev;
                Counter.incr_id k.mach.Machine.counters k.ids.id_irq_delivered;
                ready k handler (R_msg (irq_tid line, irq_message ~burst line))
            | Ready | Running | Blocked_send _ | Blocked_recv _
            | Blocked_call _ | Sleeping | Dead ->
                ()
          end
        | None -> ()
      end
    | Some _ | None -> ()
  done

(* --- Scheduling --- *)

let rec pick_from_queue q =
  match Queue.take_opt q with
  | None -> None
  | Some tcb when tcb.state = Ready && not tcb.paused -> Some tcb
  (* A paused Ready thread leaves the queue here; Thread_resume
     re-enqueues it. *)
  | Some _ -> pick_from_queue q

let pick k =
  let rec scan prio =
    if prio >= priorities then None
    else
      match pick_from_queue k.queues.(prio) with
      | Some tcb -> Some tcb
      | None -> scan (prio + 1)
  in
  scan 0

(* Timer-tick quantum for user computation. *)
let timeslice = 5_000

(* Tickless burn fast-forward (E21): a long user burn is normally sliced
   into [timeslice] quanta so timer IRQs and co-runnable threads can
   preempt. When this thread is the only runnable one, no unmasked IRQ
   is pending, and the next armed engine event lies beyond a whole
   number of slices, executing those slices one by one is pure busywork:
   every intermediate dispatch picks the same thread again. Burn the
   whole multiple in one [Machine.burn] instead. Only whole multiples of
   [timeslice] are fast-forwarded — the remainder takes the normal
   sliced path — so burn arithmetic, account charges and dispatch-side
   effects accumulate exactly as under slicing (bit-for-bit). *)
let sole_runnable k (tcb : tcb) =
  let sole = ref true in
  Hashtbl.iter
    (fun _ (o : tcb) ->
      if o != tcb && o.state = Ready && not o.paused then sole := false)
    k.tcbs;
  !sole

let no_irq_pending k =
  let irq = k.mach.Machine.irq in
  let pending = ref false in
  for line = 0 to Irq.lines irq - 1 do
    if Irq.is_pending irq line && not (Irq.is_masked irq line) then
      pending := true
  done;
  not !pending

let burst_quantum k (tcb : tcb) =
  if tcb.burn_left < 2 * timeslice then min timeslice tcb.burn_left
  else begin
    let whole = tcb.burn_left - (tcb.burn_left mod timeslice) in
    let fits =
      Int64.compare
        (Int64.add (Machine.now k.mach) (Int64.of_int whole))
        (Engine.next_due_or k.mach.Machine.engine Int64.max_int)
      <= 0
    in
    if fits && sole_runnable k tcb && no_irq_pending k then begin
      Engine.note_burst k.mach.Machine.engine
        (Int64.of_int (whole - timeslice));
      whole
    end
    else min timeslice tcb.burn_left
  end

let dispatch k (tcb : tcb) =
  if tcb.asid <> k.current_asid then begin
    (* Flattened [kcharged] (E21): resolve the space before swapping so
       the only bracketed work is [Mmu.switch_space], which cannot
       raise. *)
    let space = space_exn k tcb.asid in
    let acc = k.mach.Machine.accounts in
    let prev = Accounts.swap acc kernel_account in
    Mmu.switch_space k.mach space;
    Accounts.restore acc prev;
    k.current_asid <- tcb.asid;
    Counter.incr_id k.mach.Machine.counters k.ids.id_space_switch
  end;
  tcb.state <- Running;
  Accounts.switch_to k.mach.Machine.accounts tcb.account;
  if tcb.burn_left > 0 then begin
    let step = burst_quantum k tcb in
    Machine.burn k.mach step;
    tcb.burn_left <- tcb.burn_left - step;
    if tcb.state = Running then begin
      tcb.state <- Ready;
      enqueue k tcb
    end
  end
  else
    match tcb.body with
  | Some body ->
      tcb.body <- None;
      start_fiber k tcb body
  | None -> (
      match tcb.cont with
      | Some kont ->
          tcb.cont <- None;
          Effect.Deep.continue kont tcb.pending
      | None ->
          (* A ready thread with no continuation and no body can only be a
             bookkeeping bug. *)
          terminate k tcb)

let run ?until ?(max_dispatches = 10_000_000) k =
  let dispatches = ref 0 in
  let stop_requested () =
    match until with Some f -> f () | None -> false
  in
  let rec loop () =
    if stop_requested () then Condition
    else begin
      deliver_irqs k;
      match pick k with
      | Some tcb ->
          if !dispatches >= max_dispatches then Dispatch_limit
          else begin
            incr dispatches;
            dispatch k tcb;
            loop ()
          end
      | None ->
          if Engine.idle_to_next k.mach.Machine.engine then loop () else Idle
    end
  in
  let reason = loop () in
  Accounts.switch_to k.mach.Machine.accounts "idle";
  reason
