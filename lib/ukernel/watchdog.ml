module Machine = Vmk_hw.Machine
module Counter = Vmk_trace.Counter

type watched = {
  mutable streak : int;  (** Consecutive respawns since the last healthy ping. *)
  mutable not_before : int64;  (** Backoff gate for the next respawn. *)
  mutable abandoned : bool;
}

type t = {
  stop : bool ref;
  mutable respawns : (string * int64) list;
  mutable given_up : string list;
}

let create () = { stop = ref false; respawns = []; given_up = [] }
let stop t = t.stop := true
let respawns t = List.rev t.respawns
let given_up t = List.rev t.given_up

let ping entry ~timeout =
  try
    let _, reply =
      Sysif.call ~timeout (Svc.tid entry) (Sysif.msg Proto.ping)
    in
    reply.Sysif.label = Proto.ok
  with Sysif.Ipc_error _ -> false

let default_give_up = 8

let body mach t ~period ~ping_timeout ?(backoff = period) ?(give_up = default_give_up)
    services () =
  if give_up < 1 then invalid_arg "Watchdog.body: give_up < 1";
  if backoff < 0L then invalid_arg "Watchdog.body: backoff < 0";
  let counters = mach.Machine.counters in
  let watched =
    List.map
      (fun svc -> (svc, { streak = 0; not_before = 0L; abandoned = false }))
      services
  in
  let rec loop () =
    if !(t.stop) then Sysif.exit ()
    else begin
      List.iter
        (fun ((entry, respawn), w) ->
          if w.abandoned then begin
            (* Keep pinging an abandoned service: a manual toolstack
               rebuild ({!Svc.rebind} with a healthy replacement) earns
               its way back under watchdog care — the give-up verdict is
               about the crash streak, not the name forever. *)
            if ping entry ~timeout:ping_timeout then begin
              w.abandoned <- false;
              w.streak <- 0;
              w.not_before <- 0L;
              t.given_up <-
                List.filter (fun n -> n <> entry.Svc.name) t.given_up;
              Counter.incr counters "uk.watchdog.revive";
              Logs.info (fun m ->
                  m "watchdog: %s healthy again after manual rebuild; resuming"
                    entry.Svc.name)
            end
          end
          else
            if ping entry ~timeout:ping_timeout then begin
              w.streak <- 0;
              w.not_before <- 0L
            end
            else if Machine.now mach < w.not_before then
              (* Crash-looping: wait out the exponential backoff rather
                 than burning the machine on doomed rebuilds. *)
              ()
            else if w.streak >= give_up then begin
              w.abandoned <- true;
              t.given_up <- entry.Svc.name :: t.given_up;
              Counter.incr counters "uk.watchdog.giveup";
              Logs.warn (fun m ->
                  m "watchdog: giving up on %s after %d consecutive respawns"
                    entry.Svc.name w.streak)
            end
            else begin
              (* A wedged-but-alive server still holds buffers and its
                 interrupt line; unwind-kill it before handing the name to
                 a replacement. Killing a corpse is a harmless no-op. *)
              (try Sysif.kill_thread (Svc.tid entry)
               with Sysif.Ipc_error _ -> ());
              let tid = Sysif.spawn (respawn ()) in
              Svc.rebind entry tid;
              t.respawns <- (entry.Svc.name, Machine.now mach) :: t.respawns;
              Counter.incr counters "uk.watchdog.respawn";
              w.streak <- w.streak + 1;
              (* First respawn is immediate (streak was 0); each further
                 one without an intervening healthy ping doubles the
                 wait. *)
              w.not_before <-
                Int64.add (Machine.now mach)
                  (Int64.mul backoff (Int64.shift_left 1L (w.streak - 1)))
            end)
        watched;
      Sysif.sleep period;
      loop ()
    end
  in
  loop ()
