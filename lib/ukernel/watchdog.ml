module Machine = Vmk_hw.Machine
module Counter = Vmk_trace.Counter

type t = {
  stop : bool ref;
  mutable respawns : (string * int64) list;
}

let create () = { stop = ref false; respawns = [] }
let stop t = t.stop := true
let respawns t = List.rev t.respawns

let ping entry ~timeout =
  try
    let _, reply =
      Sysif.call ~timeout (Svc.tid entry) (Sysif.msg Proto.ping)
    in
    reply.Sysif.label = Proto.ok
  with Sysif.Ipc_error _ -> false

let body mach t ~period ~ping_timeout services () =
  let counters = mach.Machine.counters in
  let rec loop () =
    if !(t.stop) then Sysif.exit ()
    else begin
      List.iter
        (fun (entry, respawn) ->
          if not (ping entry ~timeout:ping_timeout) then begin
            (* A wedged-but-alive server still holds buffers and its
               interrupt line; unwind-kill it before handing the name to
               a replacement. Killing a corpse is a harmless no-op. *)
            (try Sysif.kill_thread (Svc.tid entry)
             with Sysif.Ipc_error _ -> ());
            let tid = Sysif.spawn (respawn ()) in
            Svc.rebind entry tid;
            t.respawns <- (entry.Svc.name, Machine.now mach) :: t.respawns;
            Counter.incr counters "uk.watchdog.respawn"
          end)
        services;
      Sysif.sleep period;
      loop ()
    end
  in
  loop ()
