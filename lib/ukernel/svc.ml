type entry = {
  name : string;
  mutable tid : Sysif.tid;
  mutable generation : int;
}

let entry ~name tid = { name; tid; generation = 0 }
let tid e = e.tid
let generation e = e.generation

let rebind e tid =
  e.tid <- tid;
  e.generation <- e.generation + 1
