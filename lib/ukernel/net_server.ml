module Machine = Vmk_hw.Machine
module Frame = Vmk_hw.Frame
module Nic = Vmk_hw.Nic
module Engine = Vmk_sim.Engine
module Counter = Vmk_trace.Counter
module Overload = Vmk_overload.Overload

let account = "drv.net"

(* Cost of shedding a packet at the admission gate: peek at the
   descriptor, consult the bucket, repost the buffer. The livelock
   defense only works because this is far cheaper than the full
   900-cycle receive path. *)
let shed_work = 60

type state = {
  mach : Machine.t;
  free_tx : Frame.frame Queue.t;
  admit : Overload.Token_bucket.t option;
  rx_packets : (int * int) Overload.Bounded_queue.t; (* tag, len *)
  rx_waiters : Sysif.tid Queue.t;
}

let reply_safely dst m =
  try Sysif.send dst m with Sysif.Ipc_error _ -> ()

let flush_rx st =
  (* Pair queued packets with waiting clients. *)
  let rec go () =
    if
      (not (Overload.Bounded_queue.is_empty st.rx_packets))
      && not (Queue.is_empty st.rx_waiters)
    then begin
      let tag, len = Option.get (Overload.Bounded_queue.pop st.rx_packets) in
      let client = Queue.take st.rx_waiters in
      reply_safely client
        (Sysif.msg Proto.ok ~items:[ Sysif.Str { bytes = len; tag } ]);
      go ()
    end
  in
  go ()

let handle_irq st =
  let nic = st.mach.Machine.nic in
  let counters = st.mach.Machine.counters in
  let rec drain_rx () =
    match Nic.rx_ready nic with
    | Some ev ->
        let admitted =
          match st.admit with
          | None -> true
          | Some bucket ->
              Overload.Token_bucket.admit bucket
                ~now:(Engine.now st.mach.Machine.engine)
        in
        if not admitted then begin
          (* Shed before the expensive receive work (livelock defense). *)
          Sysif.burn shed_work;
          Counter.incr counters "drv.net.rx_shed";
          Counter.incr counters Overload.shed_counter
        end
        else begin
          (* Record the packet and immediately recycle the buffer: the
             driver touches descriptor rings, costing a few cycles. *)
          Sysif.burn 900;
          (match
             Overload.Bounded_queue.push st.rx_packets
               ~now:(Engine.now st.mach.Machine.engine)
               (ev.Nic.tag, ev.Nic.len)
           with
          | Overload.Bounded_queue.Accepted -> ()
          | Overload.Bounded_queue.Rejected ->
              Counter.incr counters "drv.net.rx_drop";
              Counter.incr counters Overload.drop_counter
          | Overload.Bounded_queue.Displaced _ ->
              (* The newest packet is kept; the oldest queued one paid
                 the price. *)
              Counter.incr counters "drv.net.rx_drop";
              Counter.incr counters Overload.drop_counter
          | Overload.Bounded_queue.Retry_until _ ->
              (* Blocking is meaningless in interrupt context; treat as
                 a rejection. *)
              Counter.incr counters "drv.net.rx_drop";
              Counter.incr counters Overload.drop_counter);
          Overload.note_queue_peak counters ~name:"net_rx"
            (Overload.Bounded_queue.length st.rx_packets)
        end;
        Nic.post_rx_buffer nic ev.Nic.frame;
        drain_rx ()
    | None -> ()
  in
  let rec drain_tx () =
    match Nic.tx_done nic with
    | Some (frame, _len) ->
        Sysif.burn 700;
        Queue.add frame st.free_tx;
        drain_tx ()
    | None -> ()
  in
  drain_rx ();
  drain_tx ();
  flush_rx st

let handle_client st client (m : Sysif.msg) =
  if m.Sysif.label = Proto.ping then reply_safely client (Sysif.msg Proto.ok)
  else if m.Sysif.label = Proto.net_send then begin
    let bytes = Sysif.str_total m in
    let tag = Option.value (Sysif.first_str_tag m) ~default:0 in
    match Queue.take_opt st.free_tx with
    | Some frame ->
        Sysif.burn 700; (* descriptor setup + tx path *)
        Frame.set_tag frame tag;
        Nic.submit_tx st.mach.Machine.nic frame ~len:bytes;
        reply_safely client (Sysif.msg Proto.ok)
    | None ->
        (* Transient exhaustion, not failure: tell the client to back
           off and retry (E15). *)
        Counter.incr st.mach.Machine.counters "drv.net.tx_busy";
        reply_safely client (Sysif.msg Proto.busy)
  end
  else if m.Sysif.label = Proto.net_recv then begin
    Queue.add client st.rx_waiters;
    flush_rx st
  end
  else reply_safely client (Sysif.msg Proto.error)

let body mach ?(rx_buffers = 16) ?admit ?rx_capacity
    ?(rx_policy = Overload.Bounded_queue.Drop_oldest) () =
  let st =
    {
      mach;
      free_tx = Queue.create ();
      admit;
      (* [max_int] capacity = the naive unbounded queue (still tracks
         its high-water mark for the E15 report). *)
      rx_packets =
        Overload.Bounded_queue.create ~policy:rx_policy
          ~capacity:(Option.value rx_capacity ~default:max_int)
          ();
      rx_waiters = Queue.create ();
    }
  in
  let frames = mach.Machine.frames in
  for _ = 1 to rx_buffers do
    Nic.post_rx_buffer mach.Machine.nic
      (Frame.alloc frames ~owner:account ~kind:Frame.Device_buffer ())
  done;
  for _ = 1 to rx_buffers do
    Queue.add
      (Frame.alloc frames ~owner:account ~kind:Frame.Device_buffer ())
      st.free_tx
  done;
  Sysif.irq_attach Machine.nic_irq;
  let rec loop () =
    let src, m = Sysif.recv Sysif.Any in
    if Sysif.is_irq_tid src then handle_irq st else handle_client st src m;
    loop ()
  in
  loop ()
