module Machine = Vmk_hw.Machine
module Frame = Vmk_hw.Frame
module Nic = Vmk_hw.Nic
module Arch = Vmk_hw.Arch
module Engine = Vmk_sim.Engine
module Counter = Vmk_trace.Counter
module Overload = Vmk_overload.Overload
module Vnet = Vmk_vnet.Vnet
module Cap = Vmk_cap.Cap

let account = "drv.net"

(* Cost of shedding a packet at the admission gate: peek at the
   descriptor, consult the bucket, repost the buffer. The livelock
   defense only works because this is far cheaper than the full
   900-cycle receive path. *)
let shed_work = 60

(* Broker bookkeeping per vnet attach/lookup (registry + table walk
   beyond the itemized flow-cache/MAC costs). *)
let vnet_attach_work = 200

(* The vnet broker half of the L4 stack: guests register their port
   here and resolve peers once; the data path then bypasses the server
   entirely (direct IPC). Lookup reuses the same flow-cache → MAC-table
   machinery the Dom0 bridge runs per packet — but here it is paid per
   {e connection}, which is the whole point of the comparison. *)
type broker = {
  mac : Vnet.Mac_table.t;
  flows : Vnet.Flow_cache.t;
  registry : (int, Sysif.tid) Hashtbl.t;  (** port -> guest kernel *)
  rev : (Sysif.tid, int) Hashtbl.t;
  svc : int;  (** Root service capability handle (E19). *)
  self : Sysif.tid;
  sessions : (int, int) Hashtbl.t;
      (** port -> broker-side session cap; revoking it severs the port's
          whole delegation chain. *)
  client_caps : (int, int) Hashtbl.t;  (** port -> client-held session cap *)
}

(* Pre-resolved counter ids for the per-packet rx path and the broker's
   per-connection lookup (E21): interned once at [body], bumped via an
   array store. Cold paths (attach/revoke, poll ticks) stay
   string-keyed. *)
type hot_ids = {
  id_rx_shed : int;
  id_shed : int;
  id_rx_drop : int;
  id_drop : int;
  id_tx_busy : int;
  id_mitig_poll_rounds : int;
  id_mitig_reenable : int;
  id_flow_hit : int;
  id_flow_miss : int;
  id_no_route : int;
  id_rx_peak : int;
  hist : Overload.batch_hist;
}

type state = {
  mach : Machine.t;
  ids : hot_ids;
  free_tx : Frame.frame Queue.t;
  admit : Overload.Token_bucket.t option;
  fair : Overload.Weighted_buckets.t option;
      (** Per-client fair-share gate behind [admit], keyed on the
          packet's demux key ([tag / 10⁶], the destination client). *)
  vnet : broker option;
  rx_packets : (int * int) Overload.Bounded_queue.t; (* tag, len *)
  rx_waiters : Sysif.tid Queue.t;
}

let reply_safely dst m =
  try Sysif.send dst m with Sysif.Ipc_error _ -> ()

let flush_rx st =
  (* Pair queued packets with waiting clients. *)
  let rec go () =
    if
      (not (Overload.Bounded_queue.is_empty st.rx_packets))
      && not (Queue.is_empty st.rx_waiters)
    then begin
      let tag, len = Option.get (Overload.Bounded_queue.pop st.rx_packets) in
      let client = Queue.take st.rx_waiters in
      reply_safely client
        (Sysif.msg Proto.ok ~items:[ Sysif.Str { bytes = len; tag } ]);
      go ()
    end
  in
  go ()

(* Shed before the expensive receive work (livelock defense). *)
let shed_rx st (ev : Nic.rx_event) =
  let counters = st.mach.Machine.counters in
  Sysif.burn shed_work;
  Counter.incr_id counters st.ids.id_rx_shed;
  Counter.incr_id counters st.ids.id_shed;
  Nic.post_rx_buffer st.mach.Machine.nic ev.Nic.frame

(* Record the packet and immediately recycle the buffer: the driver
   touches descriptor rings, costing a few cycles. *)
let accept_rx st (ev : Nic.rx_event) =
  let counters = st.mach.Machine.counters in
  Sysif.burn 900;
  (match
     Overload.Bounded_queue.push st.rx_packets
       ~now:(Engine.now st.mach.Machine.engine)
       (ev.Nic.tag, ev.Nic.len)
   with
  | Overload.Bounded_queue.Accepted -> ()
  | Overload.Bounded_queue.Rejected ->
      Counter.incr_id counters st.ids.id_rx_drop;
      Counter.incr_id counters st.ids.id_drop
  | Overload.Bounded_queue.Displaced _ ->
      (* The newest packet is kept; the oldest queued one paid
         the price. *)
      Counter.incr_id counters st.ids.id_rx_drop;
      Counter.incr_id counters st.ids.id_drop
  | Overload.Bounded_queue.Retry_until _ ->
      (* Blocking is meaningless in interrupt context; treat as
         a rejection. *)
      Counter.incr_id counters st.ids.id_rx_drop;
      Counter.incr_id counters st.ids.id_drop);
  Overload.note_queue_peak_id counters st.ids.id_rx_peak
    (Overload.Bounded_queue.length st.rx_packets);
  Nic.post_rx_buffer st.mach.Machine.nic ev.Nic.frame

let rec drain_tx st =
  match Nic.tx_done st.mach.Machine.nic with
  | Some (frame, _len) ->
      Sysif.burn 700;
      Queue.add frame st.free_tx;
      drain_tx st
  | None -> ()

let fair_shed st (ev : Nic.rx_event) =
  match st.fair with
  | None -> false
  | Some fair ->
      not
        (Overload.Weighted_buckets.admit fair
           ~key:(ev.Nic.tag / 1_000_000)
           ~now:(Engine.now st.mach.Machine.engine))

let handle_irq st =
  let nic = st.mach.Machine.nic in
  let rec drain_rx () =
    match Nic.rx_ready nic with
    | Some ev ->
        let admitted =
          (match st.admit with
          | None -> true
          | Some bucket ->
              Overload.Token_bucket.admit bucket
                ~now:(Engine.now st.mach.Machine.engine))
          && not (fair_shed st ev)
        in
        if admitted then accept_rx st ev else shed_rx st ev;
        drain_rx ()
    | None -> ()
  in
  drain_rx ();
  drain_tx st;
  flush_rx st

(* Batched flush: pair every queued packet with a waiting client and
   deliver the whole set through one Send_batch kernel entry — one
   syscall overhead however many replies go out. The clients are
   Call-blocked on us, so every message in the batch is receptive. *)
let flush_rx_batched st =
  let batch = ref [] in
  while
    (not (Overload.Bounded_queue.is_empty st.rx_packets))
    && not (Queue.is_empty st.rx_waiters)
  do
    let tag, len = Option.get (Overload.Bounded_queue.pop st.rx_packets) in
    let client = Queue.take st.rx_waiters in
    batch :=
      (client, Sysif.msg Proto.ok ~items:[ Sysif.Str { bytes = len; tag } ])
      :: !batch
  done;
  match !batch with
  | [] -> ()
  | b -> ignore (Sysif.send_batch (List.rev b))

(* One poll round: drain up to [budget] packets at one poll_batch_cost,
   admit them as a batch, queue + repost each. Returns how many the
   round produced (0 = empty round). *)
let poll_round st ~budget =
  let counters = st.mach.Machine.counters in
  match Nic.poll st.mach.Machine.nic ~budget with
  | [] -> 0
  | evs ->
      Sysif.burn st.mach.Machine.arch.Arch.poll_batch_cost;
      Counter.incr_id counters st.ids.id_mitig_poll_rounds;
      let n = List.length evs in
      Overload.note_batch_hist counters st.ids.hist n;
      let k =
        match st.admit with
        | None -> n
        | Some bucket ->
            Overload.Token_bucket.admit_n bucket
              ~now:(Engine.now st.mach.Machine.engine)
              n
      in
      List.iteri
        (fun i ev ->
          if i >= k || fair_shed st ev then shed_rx st ev
          else accept_rx st ev)
        evs;
      drain_tx st;
      flush_rx_batched st;
      n

(* NAPI service: mask the line on the wake that got us here, poll until a
   round comes back empty, then one unmask (which also acknowledges the
   whole coalesced burst) re-arms interrupt delivery. The post-unmask
   recheck closes the poll/unmask race. *)
let napi_service st ~budget =
  let nic = st.mach.Machine.nic in
  let line = Nic.irq_line nic in
  let counters = st.mach.Machine.counters in
  Sysif.irq_mask line;
  let rec rounds () =
    if poll_round st ~budget > 0 then rounds ()
    else begin
      drain_tx st;
      flush_rx_batched st;
      Sysif.irq_unmask line;
      Counter.incr_id counters st.ids.id_mitig_reenable;
      if Nic.rx_pending nic > 0 || Nic.tx_completions_pending nic > 0
      then begin
        Sysif.irq_mask line;
        rounds ()
      end
    end
  in
  rounds ()

(* Polling-only service (the line stays masked forever): spin poll
   rounds until the device is dry, then pick up any tx leftovers. *)
let poll_service st ~budget =
  let rec rounds () = if poll_round st ~budget > 0 then rounds () in
  rounds ();
  drain_tx st;
  flush_rx_batched st

let handle_client st client (m : Sysif.msg) =
  if m.Sysif.label = Proto.ping then reply_safely client (Sysif.msg Proto.ok)
  else if m.Sysif.label = Proto.net_send then begin
    let bytes = Sysif.str_total m in
    let tag = Option.value (Sysif.first_str_tag m) ~default:0 in
    match Queue.take_opt st.free_tx with
    | Some frame ->
        Sysif.burn 700; (* descriptor setup + tx path *)
        Frame.set_tag frame tag;
        Nic.submit_tx st.mach.Machine.nic frame ~len:bytes;
        reply_safely client (Sysif.msg Proto.ok)
    | None ->
        (* Transient exhaustion, not failure: tell the client to back
           off and retry (E15). *)
        Counter.incr_id st.mach.Machine.counters st.ids.id_tx_busy;
        reply_safely client (Sysif.msg Proto.busy)
  end
  else if m.Sysif.label = Proto.net_recv then begin
    Queue.add client st.rx_waiters;
    flush_rx st
  end
  else if m.Sysif.label = Proto.vnet_attach then begin
    match st.vnet with
    | None -> reply_safely client (Sysif.msg Proto.error)
    | Some vb ->
        let w = Sysif.words m in
        let port = if Array.length w > 0 then w.(0) else 0 in
        if port < 1 then reply_safely client (Sysif.msg Proto.error)
        else begin
          Sysif.burn vnet_attach_work;
          Hashtbl.replace vb.registry port client;
          Hashtbl.replace vb.rev client port;
          Vnet.Mac_table.learn vb.mac
            ~now:(Engine.now st.mach.Machine.engine)
            ~mac:port ~port;
          (* Session caps (E19): a broker-side cap derived from the
             service root, and a client-side cap derived from it in turn
             — revoking the broker-side cap severs the whole port. A
             re-attach (guest-kernel restart) replaces the old chain. *)
          (match Hashtbl.find_opt vb.sessions port with
          | Some old -> (
              try ignore (Sysif.cap_revoke ~handle:old ~self:true)
              with Sysif.Ipc_error _ -> ())
          | None -> ());
          let mine =
            Sysif.cap_derive ~handle:vb.svc ~to_:vb.self ~rights:Cap.r_full
          in
          let theirs =
            Sysif.cap_derive ~handle:mine ~to_:client
              ~rights:(Cap.r_read lor Cap.r_write)
          in
          Hashtbl.replace vb.sessions port mine;
          Hashtbl.replace vb.client_caps port theirs;
          Counter.incr st.mach.Machine.counters "drv.net.vnet_attach";
          reply_safely client
            (Sysif.msg Proto.ok ~items:[ Sysif.Words [| theirs |] ])
        end
  end
  else if m.Sysif.label = Proto.vnet_revoke then begin
    match st.vnet with
    | None -> reply_safely client (Sysif.msg Proto.error)
    | Some vb -> (
        let w = Sysif.words m in
        let port = if Array.length w > 0 then w.(0) else 0 in
        match Hashtbl.find_opt vb.sessions port with
        | None -> reply_safely client (Sysif.msg Proto.error)
        | Some mine ->
            let removed =
              try Sysif.cap_revoke ~handle:mine ~self:true
              with Sysif.Ipc_error _ -> 0
            in
            Hashtbl.remove vb.sessions port;
            Hashtbl.remove vb.client_caps port;
            (match Hashtbl.find_opt vb.registry port with
            | Some tid -> Hashtbl.remove vb.rev tid
            | None -> ());
            Hashtbl.remove vb.registry port;
            Counter.incr st.mach.Machine.counters "drv.net.vnet_revoke";
            reply_safely client
              (Sysif.msg Proto.ok ~items:[ Sysif.Words [| removed |] ]))
  end
  else if m.Sysif.label = Proto.vnet_lookup then begin
    match st.vnet with
    | None -> reply_safely client (Sysif.msg Proto.error)
    | Some vb -> (
        let counters = st.mach.Machine.counters in
        let w = Sysif.words m in
        let dst = if Array.length w > 0 then w.(0) else 0 in
        (* Rights gate (E19): the requester must still be attached and
           hold its session capability — a revoked port can no longer
           resolve peers. *)
        let session_ok port tid =
          match Hashtbl.find_opt vb.client_caps port with
          | None -> true
          | Some handle ->
              Sysif.cap_check ~subject:tid ~handle ~need:Cap.r_read
        in
        let src_ok =
          match Hashtbl.find_opt vb.rev client with
          | None -> None (* revoked or never attached *)
          | Some src -> if session_ok src client then Some src else None
        in
        match src_ok with
        | None ->
            Counter.incr counters "drv.net.vnet_denied";
            reply_safely client (Sysif.msg Proto.error)
        | Some src ->
        (
        (* Allocation-free resolve (E21): [find_port]/[lookup_port]
           return [-1] for a miss instead of boxing an option. *)
        let resolved =
          let cached = Vnet.Flow_cache.find_port vb.flows ~src ~dst in
          if cached >= 0 then begin
            Sysif.burn Vnet.flow_hit_cost;
            Counter.incr_id counters st.ids.id_flow_hit;
            cached
          end
          else begin
            Sysif.burn Vnet.flow_miss_cost;
            Counter.incr_id counters st.ids.id_flow_miss;
            let port =
              Vnet.Mac_table.lookup_port vb.mac
                ~now:(Engine.now st.mach.Machine.engine)
                dst
            in
            if port >= 0 then
              Vnet.Flow_cache.insert vb.flows ~src ~dst ~port;
            port
          end
        in
        match
          if resolved < 0 then None else Hashtbl.find_opt vb.registry resolved
        with
        | Some tid when session_ok resolved tid ->
            reply_safely client
              (Sysif.msg Proto.ok ~items:[ Sysif.Words [| tid |] ])
        | Some _ ->
            (* Destination port's session was revoked: unreachable. *)
            Counter.incr counters "drv.net.vnet_denied";
            reply_safely client (Sysif.msg Proto.error)
        | None ->
            Counter.incr_id counters st.ids.id_no_route;
            reply_safely client (Sysif.msg Proto.error)))
  end
  else reply_safely client (Sysif.msg Proto.error)

let body mach ?(rx_buffers = 16) ?admit ?fair ?rx_capacity
    ?(rx_policy = Overload.Bounded_queue.Drop_oldest) ?napi ?poll
    ?(vnet = false) ?(vnet_flow_capacity = 64) () =
  let st =
    let c = mach.Machine.counters in
    {
      mach;
      ids =
        {
          id_rx_shed = Counter.id c "drv.net.rx_shed";
          id_shed = Counter.id c Overload.shed_counter;
          id_rx_drop = Counter.id c "drv.net.rx_drop";
          id_drop = Counter.id c Overload.drop_counter;
          id_tx_busy = Counter.id c "drv.net.tx_busy";
          id_mitig_poll_rounds = Counter.id c Overload.mitig_poll_rounds_counter;
          id_mitig_reenable = Counter.id c Overload.mitig_reenable_counter;
          id_flow_hit = Counter.id c "vnet.flow_hit";
          id_flow_miss = Counter.id c "vnet.flow_miss";
          id_no_route = Counter.id c "vnet.no_route";
          id_rx_peak = Overload.queue_peak_id c ~name:"net_rx";
          hist = Overload.batch_hist c;
        };
      free_tx = Queue.create ();
      admit;
      fair;
      vnet =
        (if vnet then
           Some
             {
               mac = Vnet.Mac_table.create ();
               flows = Vnet.Flow_cache.create ~capacity:vnet_flow_capacity ();
               registry = Hashtbl.create 8;
               rev = Hashtbl.create 8;
               svc = Sysif.cap_mint ~obj:0xE19 ~rights:Cap.r_full;
               self = Sysif.my_tid ();
               sessions = Hashtbl.create 8;
               client_caps = Hashtbl.create 8;
             }
         else None);
      (* [max_int] capacity = the naive unbounded queue (still tracks
         its high-water mark for the E15 report). *)
      rx_packets =
        Overload.Bounded_queue.create ~policy:rx_policy
          ~capacity:(Option.value rx_capacity ~default:max_int)
          ();
      rx_waiters = Queue.create ();
    }
  in
  let frames = mach.Machine.frames in
  for _ = 1 to rx_buffers do
    Nic.post_rx_buffer mach.Machine.nic
      (Frame.alloc frames ~owner:account ~kind:Frame.Device_buffer ())
  done;
  for _ = 1 to rx_buffers do
    Queue.add
      (Frame.alloc frames ~owner:account ~kind:Frame.Device_buffer ())
      st.free_tx
  done;
  Sysif.irq_attach Machine.nic_irq;
  match poll with
  | Some period ->
      (* Polling-only: the line never delivers — service the NIC on the
         receive timeout instead. *)
      let budget = Option.value napi ~default:16 in
      Sysif.irq_mask Machine.nic_irq;
      let rec loop () =
        (match Sysif.recv ~timeout:period Sysif.Any with
        | src, m ->
            if Sysif.is_irq_tid src then handle_irq st
            else handle_client st src m;
            poll_service st ~budget
        | exception Sysif.Ipc_error Sysif.Timeout ->
            Counter.incr mach.Machine.counters "drv.net.poll_ticks";
            poll_service st ~budget);
        loop ()
      in
      loop ()
  | None ->
      let rec loop () =
        let src, m = Sysif.recv Sysif.Any in
        if Sysif.is_irq_tid src then begin
          match napi with
          | Some budget -> napi_service st ~budget
          | None -> handle_irq st
        end
        else handle_client st src m;
        loop ()
      in
      loop ()
