module Machine = Vmk_hw.Machine
module Frame = Vmk_hw.Frame
module Nic = Vmk_hw.Nic

let account = "drv.net"

type state = {
  mach : Machine.t;
  free_tx : Frame.frame Queue.t;
  rx_packets : (int * int) Queue.t; (* tag, len *)
  rx_waiters : Sysif.tid Queue.t;
}

let reply_safely dst m =
  try Sysif.send dst m with Sysif.Ipc_error _ -> ()

let flush_rx st =
  (* Pair queued packets with waiting clients. *)
  let rec go () =
    if (not (Queue.is_empty st.rx_packets)) && not (Queue.is_empty st.rx_waiters)
    then begin
      let tag, len = Queue.take st.rx_packets in
      let client = Queue.take st.rx_waiters in
      reply_safely client
        (Sysif.msg Proto.ok ~items:[ Sysif.Str { bytes = len; tag } ]);
      go ()
    end
  in
  go ()

let handle_irq st =
  let nic = st.mach.Machine.nic in
  let rec drain_rx () =
    match Nic.rx_ready nic with
    | Some ev ->
        (* Record the packet and immediately recycle the buffer: the
           driver touches descriptor rings, costing a few cycles. *)
        Sysif.burn 900;
        Queue.add (ev.Nic.tag, ev.Nic.len) st.rx_packets;
        Nic.post_rx_buffer nic ev.Nic.frame;
        drain_rx ()
    | None -> ()
  in
  let rec drain_tx () =
    match Nic.tx_done nic with
    | Some (frame, _len) ->
        Sysif.burn 700;
        Queue.add frame st.free_tx;
        drain_tx ()
    | None -> ()
  in
  drain_rx ();
  drain_tx ();
  flush_rx st

let handle_client st client (m : Sysif.msg) =
  if m.Sysif.label = Proto.ping then reply_safely client (Sysif.msg Proto.ok)
  else if m.Sysif.label = Proto.net_send then begin
    let bytes = Sysif.str_total m in
    let tag = Option.value (Sysif.first_str_tag m) ~default:0 in
    match Queue.take_opt st.free_tx with
    | Some frame ->
        Sysif.burn 700; (* descriptor setup + tx path *)
        Frame.set_tag frame tag;
        Nic.submit_tx st.mach.Machine.nic frame ~len:bytes;
        reply_safely client (Sysif.msg Proto.ok)
    | None -> reply_safely client (Sysif.msg Proto.error)
  end
  else if m.Sysif.label = Proto.net_recv then begin
    Queue.add client st.rx_waiters;
    flush_rx st
  end
  else reply_safely client (Sysif.msg Proto.error)

let body mach ?(rx_buffers = 16) () =
  let st =
    {
      mach;
      free_tx = Queue.create ();
      rx_packets = Queue.create ();
      rx_waiters = Queue.create ();
    }
  in
  let frames = mach.Machine.frames in
  for _ = 1 to rx_buffers do
    Nic.post_rx_buffer mach.Machine.nic
      (Frame.alloc frames ~owner:account ~kind:Frame.Device_buffer ())
  done;
  for _ = 1 to rx_buffers do
    Queue.add
      (Frame.alloc frames ~owner:account ~kind:Frame.Device_buffer ())
      st.free_tx
  done;
  Sysif.irq_attach Machine.nic_irq;
  let rec loop () =
    let src, m = Sysif.recv Sysif.Any in
    if Sysif.is_irq_tid src then handle_irq st else handle_client st src m;
    loop ()
  in
  loop ()
