(** The microkernel system-call interface.

    Following Liedtke, the kernel exposes one central primitive — IPC —
    which unifies the three §2.2 roles: control transfer (the rendezvous),
    data transfer (untyped words and string items) and resource delegation
    (map/grant items). Threads are OCaml-5 fibers; a system call is the
    single monomorphic effect {!Invoke}, so the kernel can store one
    continuation type per TCB.

    User code calls the wrappers in this module; each performs {!Invoke}
    and decodes the {!reply}. *)

type tid = int
(** Thread identifier. Non-negative for real threads; interrupt lines get
    pseudo-tids (see {!irq_tid}). *)

val irq_tid : int -> tid
(** Pseudo-tid that IPC from interrupt line [n] appears to come from. *)

val is_irq_tid : tid -> bool
val line_of_irq_tid : tid -> int

type fpage = { base_vpn : int; pages : int; writable : bool }
(** A flexpage: [pages] virtual pages starting at [base_vpn]. *)

type item =
  | Words of int array
      (** Untyped words, transferred in (virtual) registers. *)
  | Str of { bytes : int; tag : int }
      (** String item: [bytes] copied by the kernel; [tag] is the content
          stand-in that arrives in the receiver's buffer. *)
  | Map of { fpage : fpage; grant : bool }
      (** Delegate the sender's pages to the receiver (grant = move). *)

type msg = { label : int; items : item list }

val msg : ?items:item list -> int -> msg
(** [msg ~items label] builds a message. *)

val words : msg -> int array
(** Concatenated untyped words of a message ([||] if none). *)

val str_total : msg -> int
(** Total bytes across string items. *)

val first_str_tag : msg -> int option
val map_items : msg -> (fpage * bool) list

type recv_filter = Any | From of tid

type error =
  | Dead_partner  (** Peer thread does not exist or died. *)
  | Not_permitted
  | Bad_argument of string
  | Page_fault_unhandled of int  (** Faulting vpn, no pager to ask. *)
  | Killed  (** The operation was aborted because this thread was killed. *)
  | Timeout  (** The IPC timeout elapsed before a rendezvous. *)

type spawn_spec = {
  name : string;
  priority : int;  (** 0 = highest; see {!Kernel}. *)
  same_space : bool;  (** Share the spawner's address space. *)
  pager : tid option;
  body : unit -> unit;
}

type call =
  | Burn of int  (** Compute for n cycles (also the preemption point). *)
  | Send of tid * msg * int64 option  (** Optional rendezvous timeout. *)
  | Recv of recv_filter * int64 option
  | Call of tid * msg * int64 option
      (** Send, then block for the reply; the timeout covers the whole
          round trip. *)
  | Reply_wait of tid * msg  (** Reply to a caller, then receive. *)
  | Yield
  | Sleep of int64
  | Exit
  | My_tid
  | Spawn of spawn_spec
  | Alloc_pages of int
      (** Root-memory delegation (the sigma0 shortcut): map [n] fresh
          frames into the caller's space; returns the fpage. *)
  | Touch of { addr : int; len : int; write : bool }
      (** Access memory; faults go to the pager via the IPC protocol. *)
  | Unmap of fpage  (** Recursively revoke the pages from all mappees. *)
  | Irq_attach of int  (** Become handler for interrupt line n. *)
  | Irq_detach of int
  | Irq_mask of int
      (** Handler-only: hold the line's interrupt→IPC conversion while
          polling the device directly (NAPI discipline, E16). *)
  | Irq_unmask of int
      (** Handler-only: acknowledge the latch — one ack covers every
          edge that coalesced while masked — and re-enable delivery. *)
  | Send_batch of (tid * msg) list
      (** Deferred-notify (E16): one kernel entry attempts every send in
          the batch without blocking — each message is delivered iff its
          destination is already receptive (waiting in [Recv] on us, or
          [Call]-blocked on us) and silently skipped otherwise. Replies
          [R_tid n] with the number delivered. One syscall overhead is
          paid for the whole batch; each delivery still pays transfer
          cost. *)
  | Set_pager of tid
  | Kill_thread of tid
      (** Unwind-kill the target: its pending operation fails with
          [R_error Killed] and the raised {!Ipc_error} unwinds its fiber
          (the watchdog's recourse against a wedged server). *)
  | Cap_mint of { obj : int; rights : int }
      (** Root capability for user object [obj] in the caller's space
          (E19). Replies [R_tid handle]. *)
  | Cap_derive of { handle : int; to_ : tid; rights : int }
      (** Child capability for the same object in [to_]'s space, rights
          masked by the parent's. Replies [R_tid handle];
          [Not_permitted] without [r_derive] or on a bad handle. *)
  | Cap_revoke of { handle : int; self : bool }
      (** Recursively tear down the derivation subtree (page caps drop
          their {!Mapdb} mappings as they die). Replies [R_tid removed]. *)
  | Cap_check of { subject : tid; handle : int; need : int }
      (** Server-side validation: does [subject] hold [handle] with every
          bit of [need]? [R_unit] yes; [R_error Not_permitted] no. *)
  | Cap_lookup of { vpn : int }
      (** The caller's capability for its own page at [vpn] (pages minted
          by [Alloc_pages] carry root caps). Replies [R_tid handle] or
          [Not_permitted]. *)
  | Thread_pause of tid
      (** Exclude the target from scheduling until resumed (E20's
          stop-and-copy quiesce). IPC and interrupts addressed to it
          park; its pending reply is deferred until resume. *)
  | Thread_resume of tid
  | Log_dirty of { target : tid; enable : bool }
      (** Arm/disarm dirty-page tracking on the target's address space:
          writes through [Touch] mark the page dirty, the first one per
          page paying a protection-fault charge
          (counter ["uk.logdirty_fault"]). *)
  | Dirty_read of tid
      (** Harvest-and-clear the target space's dirty vpns; replies
          [R_vpns], ascending, and re-protects each page. *)

type reply =
  | R_unit
  | R_tid of tid
  | R_msg of tid * msg  (** Sender (or caller) and the transferred message. *)
  | R_fpage of fpage
  | R_vpns of int list  (** Dirty-bitmap harvest, ascending. *)
  | R_error of error

type _ Effect.t += Invoke : call -> reply Effect.t

exception Ipc_error of error
(** Raised by the wrappers below on [R_error]. *)

exception Killed_by_kernel
(** Delivered into a fiber that the kernel (or fault injector) kills. *)

(** {1 User-side wrappers} *)

val burn : int -> unit
val send : ?timeout:int64 -> tid -> msg -> unit
val recv : ?timeout:int64 -> recv_filter -> tid * msg
val call : ?timeout:int64 -> tid -> msg -> tid * msg
val reply_wait : tid -> msg -> tid * msg
val yield : unit -> unit
val sleep : int64 -> unit
val exit : unit -> 'a
val my_tid : unit -> tid
val spawn : spawn_spec -> tid
val alloc_pages : int -> fpage
val touch : addr:int -> len:int -> write:bool -> unit
val unmap : fpage -> unit
val irq_attach : int -> unit
val irq_detach : int -> unit
val irq_mask : int -> unit
val irq_unmask : int -> unit

val send_batch : (tid * msg) list -> int
(** Returns how many of the batch were delivered (see {!Send_batch}). *)

val set_pager : tid -> unit
val kill_thread : tid -> unit

(** {1 Capability wrappers (E19)}

    Rights masks are {!Vmk_cap.Cap.rights} values. *)

val cap_mint : obj:int -> rights:int -> int
val cap_derive : handle:int -> to_:tid -> rights:int -> int
val cap_revoke : handle:int -> self:bool -> int
(** Returns the number of capabilities removed. *)

val cap_check : subject:tid -> handle:int -> need:int -> bool
val cap_lookup : vpn:int -> int option

(** {1 Migration wrappers (E20)} *)

val thread_pause : tid -> unit
val thread_resume : tid -> unit
val log_dirty : target:tid -> enable:bool -> unit
val dirty_read : tid -> int list

val pp_error : Format.formatter -> error -> unit
