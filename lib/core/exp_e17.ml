(* E17: the inter-guest communication fabric. N mini-OS instances on
   one machine exchange vnet-addressed packets through the two stack
   realizations of the {!Vmk_vnet} switch:

   - Xen-style: a privileged Dom0 software bridge ({!Bridge}). Every
     packet crosses Dom0 twice on the split-driver primitives —
     netfront tx ring → netback grant-map → switch, then switch →
     destination netback → grant flip → netfront rx ring — with an
     event channel and upcall at each crossing.
   - L4-style: the net server is only a connection broker
     ({!Net_server} [~vnet:true]). A guest kernel resolves a peer once
     ({!Proto.vnet_lookup}, flow-cache → MAC-table), opens it once
     (map/grant item), and the data path is then a direct gk → gk IPC
     call per packet — no intermediary.

   The comparison is the paper's §4 relay-tax argument at fabric
   granularity: cycles per delivered packet charged to the privileged
   intermediary (bridge + hypervisor vs broker + kernel), privileged
   transitions per packet, and how often the middleman touches a
   packet at all (every packet on Xen, once per connection on L4).

   Satellites measured here too: the switch flow cache's hit-ratio /
   cycles-per-decision sweep, per-sender weighted fair-share admission
   under an aggressor ({!Overload.Weighted_buckets} at the bridge
   gate), ECN-style early marks pacing senders before drops on both
   stacks, the E14 8-core storm composition, and bit-for-bit same-seed
   replay of the full fabric. *)

module Table = Vmk_stats.Table
module Machine = Vmk_hw.Machine
module Counter = Vmk_trace.Counter
module Accounts = Vmk_trace.Accounts
module Rng = Vmk_sim.Rng
module Overload = Vmk_overload.Overload
module Vnet = Vmk_vnet.Vnet
module Kernel = Vmk_ukernel.Kernel
module Net_server = Vmk_ukernel.Net_server
module Cluster = Vmk_ukernel.Smp_cluster
module Hypervisor = Vmk_vmm.Hypervisor
module Net_channel = Vmk_vmm.Net_channel
module Bridge = Vmk_vmm.Bridge
module Svmm = Vmk_vmm.Smp_vmm
module Port_xen = Vmk_guest.Port_xen
module Port_l4 = Vmk_guest.Port_l4
module Sys = Vmk_guest.Sys

type stack = Vmm | Uk

let stack_label = function Vmm -> "vmm" | Uk -> "uk"
let guest_counts = [ 2; 4; 8 ]
let packet_len = 512
let sender_pace = 8_000
let io_timeout = 20_000_000L
let settle = 50_000

(* Everything a same-seed rerun must reproduce bit-for-bit: the
   arrival stream plus every counter (vnet, overload, l4 namespaces)
   and cycle account the fabric touched. *)
type fingerprint = {
  f_wall : int64;
  f_sent : int;
  f_arrivals : (int * int64) list;
  f_counters : (string * int) list;
  f_accounts : (string * int64) list;
}

type run = {
  sent : int;
  received : int;
  fab_cycles : int64;  (** Intermediary + privileged-kernel cycles. *)
  cyc_pkt : float;
  trans_pkt : float;  (** Privileged transitions per delivered packet. *)
  touches_pkt : float;  (** Middleman involvements per delivered packet. *)
  decisions : int;  (** Switch/broker forwarding decisions (hit + miss). *)
  marks : int;
  backoffs : int;
  vnet_drops : int;
  per_src : (int * int) list;  (** Delivered packets grouped by source. *)
  fp : fingerprint;
}

let counter_of r name =
  Option.value ~default:0 (List.assoc_opt name r.fp.f_counters)

let per_src_of arrivals =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (tag, _) ->
      let src = Sys.vnet_src tag in
      Hashtbl.replace tbl src
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl src)))
    arrivals;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let summarize stack mach ~sent ~arrivals =
  let c = mach.Machine.counters and a = mach.Machine.accounts in
  let received = List.length arrivals in
  (* The fabric's bill: what the packet's *intermediaries* cost — the
     relay component plus the privileged kernel carrying its
     transitions. Guest-side endpoint work (netfront vs the guest
     kernel's vnet code) is charged to the guests on both stacks and
     excluded symmetrically. *)
  let fab_cycles =
    match stack with
    | Vmm ->
        Int64.add (Accounts.balance a Bridge.name) (Accounts.balance a "vmm")
    | Uk ->
        Int64.add
          (Accounts.balance a Net_server.account)
          (Accounts.balance a "ukernel")
  in
  let transitions =
    match stack with
    | Vmm -> Counter.get c "vmm.hypercall" + Counter.get c "vmm.upcall"
    | Uk -> Counter.get c "uk.syscall"
  in
  let decisions =
    Counter.get c "vnet.flow_hit" + Counter.get c "vnet.flow_miss"
  in
  (* How often the middleman handles a packet: on Xen the bridge takes
     every packet in (netback tx) and out (rx delivery); on L4 the
     broker is touched only for lookups and attaches. *)
  let touches =
    match stack with
    | Vmm -> Counter.get c "netback.tx_packets" + received
    | Uk -> decisions + Counter.get c "drv.net.vnet_attach"
  in
  let per_pkt n =
    if received = 0 then 0.0 else float_of_int n /. float_of_int received
  in
  {
    sent;
    received;
    fab_cycles;
    cyc_pkt =
      (if received = 0 then 0.0
       else Int64.to_float fab_cycles /. float_of_int received);
    trans_pkt = per_pkt transitions;
    touches_pkt = per_pkt touches;
    decisions;
    marks = Counter.get c Overload.ecn_mark_counter;
    backoffs = Counter.get c Overload.ecn_backoff_counter;
    vnet_drops = Counter.get c "vnet.drop";
    per_src = per_src_of arrivals;
    fp =
      {
        f_wall = Machine.now mach;
        f_sent = sent;
        f_arrivals = List.sort compare arrivals;
        f_counters = Counter.to_list c;
        f_accounts = Accounts.to_list a;
      };
  }

(* --- portable application bodies (identical on both stacks) --- *)

let sender ~sent ~src ~dst ~count ~pace () =
  Sys.burn settle;
  for seq = 0 to count - 1 do
    (try
       Sys.net_send ~len:packet_len ~tag:(Sys.vnet_tag ~src ~dst ~seq);
       incr sent
     with Sys.Sys_error _ -> ());
    if pace > 0 then Sys.burn pace
  done;
  (* Exiting with transmits still queued would strand them. *)
  try Sys.net_drain () with Sys.Sys_error _ -> ()

let receiver mach ~record ~packets ~work () =
  try
    for _ = 1 to packets do
      let _len, tag = Sys.net_recv () in
      record ~tag ~at:(Machine.now mach);
      if work > 0 then Sys.burn work
    done
  with Sys.Sys_error _ -> ()

(* All-to-all: [rounds] rounds, one packet sent and one received per
   guest per round. The destination rotates through the odd cyclic
   shifts, so every round's send pattern is a permutation (each guest
   receives exactly one packet) that always crosses parity classes —
   even ports send first, odd ports receive first, so on the L4 stack a
   call-blocked sender always finds a receptive peer down the chain. *)
let all_to_all mach ~sent ~record ~port ~guests ~rounds ~pace () =
  let shifts =
    List.filter (fun s -> s mod 2 = 1) (List.init (guests - 1) (fun i -> i + 1))
  in
  let nshifts = List.length shifts in
  Sys.burn settle;
  for r = 0 to rounds - 1 do
    let s = List.nth shifts (r mod nshifts) in
    let dst = (((port - 1) + s) mod guests) + 1 in
    let send () =
      try
        Sys.net_send ~len:packet_len ~tag:(Sys.vnet_tag ~src:port ~dst ~seq:r);
        incr sent
      with Sys.Sys_error _ -> ()
    in
    let recv () =
      try
        let _len, tag = Sys.net_recv () in
        record ~tag ~at:(Machine.now mach)
      with Sys.Sys_error _ -> ()
    in
    if port mod 2 = 0 then begin
      send ();
      recv ()
    end
    else begin
      recv ();
      send ()
    end;
    if pace > 0 then Sys.burn pace
  done;
  try Sys.net_drain () with Sys.Sys_error _ -> ()

(* --- the Xen-style realization: bridge domain + N paravirt guests --- *)

let xen_fabric ~guests ?mark_at ?port_capacity ?mk_fair ~mk_apps () =
  let mach = Machine.create ~seed:41L () in
  let h = Hypervisor.create mach in
  let fair = Option.map (fun mk -> mk mach) mk_fair in
  let chans =
    List.init guests (fun i ->
        Net_channel.create ~mode:Net_channel.Flip ~demux_key:(i + 1) ())
  in
  let bridge =
    Hypervisor.create_domain h ~name:Bridge.name ~privileged:true ~weight:512
      (fun () -> Bridge.body mach ?mark_at ?port_capacity ?fair ~net:chans ())
  in
  let arrivals = ref [] in
  let record ~tag ~at = arrivals := (tag, at) :: !arrivals in
  let sent = ref 0 in
  let pending = ref 0 in
  let apps = mk_apps ~mach ~record ~sent in
  pending := List.length apps;
  List.iteri
    (fun i (port, body) ->
      assert (port = i + 1);
      let chan = List.nth chans i in
      ignore
        (Hypervisor.create_domain h
           ~name:(Printf.sprintf "guest%d" port)
           (Port_xen.guest_body mach ~net:(chan, bridge) ~io_timeout
              ~app:(fun () ->
                body ();
                decr pending))))
    apps;
  ignore (Hypervisor.run h ~until:(fun () -> !pending = 0));
  ignore (Hypervisor.run h ~max_dispatches:100_000);
  summarize Vmm mach ~sent:!sent ~arrivals:!arrivals

(* --- the L4-style realization: broker + N (guest kernel, app) --- *)

let uk_fabric ~guests ?mark_at ~mk_apps () =
  let mach = Machine.create ~seed:42L () in
  let k = Kernel.create mach in
  let net_tid =
    Kernel.spawn k ~name:"net-server" ~priority:2 ~account:Net_server.account
      (fun () -> Net_server.body mach ~vnet:true ())
  in
  let gks =
    List.init guests (fun i ->
        let port = i + 1 in
        let v = Port_l4.vnet ~mach ~port ?mark_at () in
        let rtry = Port_l4.retry ~mach (Rng.split mach.Machine.rng) in
        Kernel.spawn k
          ~name:(Printf.sprintf "gk%d" port)
          ~priority:3 ~account:Port_l4.gk_account
          (Port_l4.guest_kernel_body ~retry:rtry ~vnet:v ~net:(Some net_tid)
             ~blk:None))
  in
  (* Barrier: every guest kernel registered with the broker before any
     application transmits, so no destination resolves unknown (and
     lands in the negative cache) during boot. *)
  ignore
    (Kernel.run k ~until:(fun () ->
         Counter.get mach.Machine.counters "drv.net.vnet_attach" >= guests));
  let arrivals = ref [] in
  let record ~tag ~at = arrivals := (tag, at) :: !arrivals in
  let sent = ref 0 in
  let pending = ref 0 in
  let apps = mk_apps ~mach ~record ~sent in
  pending := List.length apps;
  List.iteri
    (fun i (port, body) ->
      assert (port = i + 1);
      let gk = List.nth gks i in
      ignore
        (Kernel.spawn k
           ~name:(Printf.sprintf "app%d" port)
           ~priority:4 ~account:"app"
           (Port_l4.app_body mach ~gk (fun () ->
                body ();
                decr pending))))
    apps;
  ignore (Kernel.run k ~until:(fun () -> !pending = 0));
  ignore (Kernel.run k ~max_dispatches:100_000);
  summarize Uk mach ~sent:!sent ~arrivals:!arrivals

(* --- traffic plans --- *)

let pairwise ~stack ~guests ~count =
  let mk_apps ~mach ~record ~sent =
    List.init guests (fun i ->
        let port = i + 1 in
        if port mod 2 = 1 then
          (port, sender ~sent ~src:port ~dst:(port + 1) ~count ~pace:sender_pace)
        else (port, receiver mach ~record ~packets:count ~work:0))
  in
  match stack with
  | Vmm -> xen_fabric ~guests ~mk_apps ()
  | Uk -> uk_fabric ~guests ~mk_apps ()

let all2all ~stack ~guests ~rounds =
  let mk_apps ~mach ~record ~sent =
    List.init guests (fun i ->
        let port = i + 1 in
        ( port,
          all_to_all mach ~sent ~record ~port ~guests ~rounds ~pace:sender_pace
        ))
  in
  match stack with
  | Vmm -> xen_fabric ~guests ~mk_apps ()
  | Uk -> uk_fabric ~guests ~mk_apps ()

(* --- satellite scenarios --- *)

(* Fair share at the bridge gate: an aggressor and a paced victim both
   transmit to one slow receiver behind a short port queue. Without the
   weighted gate the aggressor keeps the queue full, so the victim's
   paced packets land on a full queue and are rejected; with the gate
   (victim weighted 8:1, refill slower than the drain rate) the
   aggressor is shed before the queue and the victim's share is
   restored (E15's policy argument applied at the fabric shed point). *)
let fairness ~count ~fair =
  let aggressor_count = 4 * count in
  let recv_work = 1_000_000 in
  let mk_fair mach =
    let f =
      Overload.Weighted_buckets.create ~counters:mach.Machine.counters
        ~period:400_000L ~burst:8 ()
    in
    Overload.Weighted_buckets.set_weight f ~key:2 8;
    f
  in
  let mk_apps ~mach ~record ~sent =
    [
      (1, sender ~sent ~src:1 ~dst:3 ~count:aggressor_count ~pace:1_500);
      (2, sender ~sent ~src:2 ~dst:3 ~count ~pace:50_000);
      ( 3,
        receiver mach ~record ~packets:(aggressor_count + count)
          ~work:recv_work );
    ]
  in
  if fair then xen_fabric ~guests:3 ~port_capacity:16 ~mk_fair ~mk_apps ()
  else xen_fabric ~guests:3 ~port_capacity:16 ~mk_apps ()

let delivered_from r src =
  Option.value ~default:0 (List.assoc_opt src r.per_src)

let fp r = r.fp
let received r = r.received

(* ECN: one fast sender into one slow receiver, with and without the
   high-watermark mark bit. Marks ride back on the tx completion (Xen)
   or the IPC reply (L4) and pace the sender before the queue
   overflows, so rejections fall. The flood must outrun both the
   receiver's 32 posted buffers and the watermark, so the packet count
   is scaled up from the base [count]; the port queue is widened so
   the unmarked control run backs up without rejections. *)
let ecn ~stack ~count ~on =
  let count = 4 * count in
  let mark_at = if on then Some 8 else None in
  (* On the Xen side the burst between two receiver pump points must
     exceed the ring's 32 posted buffers before the switch queue backs
     up, so the sender is unpaced and the receiver much slower; the L4
     endpoint queue sits directly behind the receiving guest kernel and
     congests at gentler settings. *)
  let pace, work =
    match stack with Vmm -> (0, 1_000_000) | Uk -> (500, 20_000)
  in
  let mk_apps ~mach ~record ~sent =
    [
      (1, sender ~sent ~src:1 ~dst:2 ~count ~pace);
      (2, receiver mach ~record ~packets:count ~work);
    ]
  in
  match stack with
  | Vmm -> xen_fabric ~guests:2 ?mark_at ~port_capacity:128 ~mk_apps ()
  | Uk -> uk_fabric ~guests:2 ?mark_at ~mk_apps ()

(* Flow-cache sweep on the raw switch: 8 stations, a hot partner ring
   (3 of 4 packets) plus rotating cold destinations, under FIFO
   eviction. Capacity below the hot set thrashes; capacity above the
   whole active set converges to hits. *)
let flow_sweep ~caps ~rounds =
  List.map
    (fun cap ->
      let burned = ref 0 in
      let sw =
        Vnet.Switch.create
          ~burn:(fun n -> burned := !burned + n)
          ~flow_capacity:cap ~port_capacity:256 ()
      in
      for p = 1 to 8 do
        ignore (Vnet.Switch.add_port sw ~id:p)
      done;
      let mt = Vnet.Switch.mac_table sw in
      for p = 1 to 8 do
        Vnet.Mac_table.learn mt ~now:0L ~mac:p ~port:p
      done;
      let decisions = ref 0 in
      let tick = ref 0 in
      for _r = 1 to rounds do
        for p = 1 to 8 do
          for j = 0 to 3 do
            let hot = (p mod 8) + 1 in
            let dst =
              if j < 3 then hot else (((p + 1) + (!tick mod 6)) mod 8) + 1
            in
            let dst = if dst = p then (dst mod 8) + 1 else dst in
            incr tick;
            ignore
              (Vnet.Switch.forward sw
                 ~now:(Int64.of_int (!tick * 50))
                 ~in_port:p
                 { Vnet.src = p; dst; len = 64; tag = 0 });
            incr decisions;
            ignore (Vnet.Switch.pop sw ~port:dst)
          done
        done
      done;
      let fc = Vnet.Switch.flow_cache sw in
      ( cap,
        Vnet.Flow_cache.hit_ratio fc,
        float_of_int !burned /. float_of_int !decisions ))
    caps

(* E14 composition: the 8-core storm (colocated microkernel cluster,
   driver-domain VMM) with E16's coalescing factor — the fabric rides
   on the same placement substrate, which must keep composing. *)
type storm = { s_completed : int; s_wall : int64; s_irq_cycles : int64 }

let storm_seed = 17L

let run_storm kind ~packets ~coalesce =
  match kind with
  | Uk ->
      let cfg =
        {
          (Cluster.default ~placement:Cluster.Colocated ~cores:8 ()) with
          Cluster.packets;
          coalesce;
        }
      in
      let r = Cluster.run ~seed:storm_seed cfg in
      {
        s_completed = r.Cluster.completed;
        s_wall = r.Cluster.wall;
        s_irq_cycles = Accounts.balance r.Cluster.mach.Machine.accounts "smp.irq";
      }
  | Vmm ->
      let cfg =
        {
          (Svmm.default ~backend:Svmm.Driver_domains ~cores:8 ()) with
          Svmm.packets;
          coalesce;
        }
      in
      let r = Svmm.run ~seed:storm_seed cfg in
      {
        s_completed = r.Svmm.completed;
        s_wall = r.Svmm.wall;
        s_irq_cycles = Accounts.balance r.Svmm.mach.Machine.accounts "smp.irq";
      }

(* --- the experiment --- *)

let experiment =
  {
    Experiment.id = "e17";
    title = "Inter-guest fabric: Dom0 bridge vs direct IPC channels";
    paper_claim =
      "Inter-VM communication through a Dom0 software bridge pays the relay \
       tax on every packet — two privileged crossings, grant map/flip work, \
       event channels — where a microkernel needs the net server only to \
       broker connection setup, after which data moves by direct \
       guest-to-guest IPC; the structural gap should show in cycles and \
       privileged transitions per packet and grow with the number of \
       communicating guests.";
    run =
      (fun ~quick ->
        let count = if quick then 24 else 60 in
        let rounds = if quick then 16 else 40 in
        let sweep =
          List.map
            (fun n ->
              ( n,
                List.map
                  (fun s -> (s, pairwise ~stack:s ~guests:n ~count))
                  [ Vmm; Uk ] ))
            guest_counts
        in
        let pw n s = List.assoc s (List.assoc n sweep) in
        let a2a =
          List.map (fun s -> (s, all2all ~stack:s ~guests:8 ~rounds)) [ Vmm; Uk ]
        in
        let fair_off = fairness ~count ~fair:false in
        let fair_on = fairness ~count ~fair:true in
        let ecns =
          List.map
            (fun s ->
              (s, (ecn ~stack:s ~count ~on:false, ecn ~stack:s ~count ~on:true)))
            [ Vmm; Uk ]
        in
        let flows =
          flow_sweep ~caps:[ 4; 16; 64 ] ~rounds:(if quick then 4 else 8)
        in
        let storm_packets = if quick then 240 else 640 in
        let storms =
          List.map
            (fun kind ->
              ( kind,
                List.map
                  (fun c ->
                    (c, run_storm kind ~packets:storm_packets ~coalesce:c))
                  [ 1; 8 ] ))
            [ Uk; Vmm ]
        in
        let rerun_vmm = pairwise ~stack:Vmm ~guests:8 ~count in
        let rerun_uk = pairwise ~stack:Uk ~guests:8 ~count in
        (* --- tables --- *)
        let sweep_table =
          let t =
            Table.create
              ~header:
                [
                  "guests";
                  "stack";
                  "sent";
                  "rcvd";
                  "fabric kcyc";
                  "cyc/pkt";
                  "trans/pkt";
                  "touches/pkt";
                  "decisions";
                ]
          in
          List.iter
            (fun n ->
              List.iter
                (fun s ->
                  let r = pw n s in
                  Table.add_row t
                    [
                      string_of_int n;
                      stack_label s;
                      string_of_int r.sent;
                      string_of_int r.received;
                      Table.cellf "%.0f" (Int64.to_float r.fab_cycles /. 1e3);
                      Table.cellf "%.0f" r.cyc_pkt;
                      Table.cellf "%.1f" r.trans_pkt;
                      Table.cellf "%.2f" r.touches_pkt;
                      string_of_int r.decisions;
                    ])
                [ Vmm; Uk ])
            guest_counts;
          t
        in
        let a2a_table =
          let t =
            Table.create
              ~header:
                [
                  "stack";
                  "sent";
                  "rcvd";
                  "cyc/pkt";
                  "trans/pkt";
                  "touches/pkt";
                  "decisions";
                ]
          in
          List.iter
            (fun (s, r) ->
              Table.add_row t
                [
                  stack_label s;
                  string_of_int r.sent;
                  string_of_int r.received;
                  Table.cellf "%.0f" r.cyc_pkt;
                  Table.cellf "%.1f" r.trans_pkt;
                  Table.cellf "%.2f" r.touches_pkt;
                  string_of_int r.decisions;
                ])
            a2a;
          t
        in
        let flow_table =
          let t =
            Table.create
              ~header:[ "flow-cache cap"; "hit ratio"; "cyc/decision" ]
          in
          List.iter
            (fun (cap, ratio, cyc) ->
              Table.add_row t
                [
                  string_of_int cap;
                  Table.cellf "%.2f" ratio;
                  Table.cellf "%.0f" cyc;
                ])
            flows;
          t
        in
        let fair_table =
          let t =
            Table.create
              ~header:
                [
                  "gate";
                  "aggr rcvd";
                  "victim rcvd";
                  "victim share";
                  "fair sheds";
                  "vnet drops";
                ]
          in
          List.iter
            (fun (label, r) ->
              Table.add_row t
                [
                  label;
                  string_of_int (delivered_from r 1);
                  string_of_int (delivered_from r 2);
                  Table.cellf "%.2f"
                    (float_of_int (delivered_from r 2)
                    /. float_of_int (max 1 count));
                  string_of_int (counter_of r Overload.fair_shed_counter);
                  string_of_int r.vnet_drops;
                ])
            [ ("fifo", fair_off); ("weighted", fair_on) ];
          t
        in
        let ecn_table =
          let t =
            Table.create
              ~header:
                [ "stack"; "ecn"; "rcvd"; "marks"; "backoffs"; "vnet drops" ]
          in
          List.iter
            (fun (s, (off, on)) ->
              List.iter
                (fun (label, r) ->
                  Table.add_row t
                    [
                      stack_label s;
                      label;
                      string_of_int r.received;
                      string_of_int r.marks;
                      string_of_int r.backoffs;
                      string_of_int r.vnet_drops;
                    ])
                [ ("off", off); ("on", on) ])
            ecns;
          t
        in
        let storm_table =
          let t =
            Table.create
              ~header:
                [ "config"; "coalesce"; "completed"; "wall kcyc"; "irq kcyc" ]
          in
          List.iter
            (fun (kind, runs) ->
              List.iter
                (fun (c, s) ->
                  Table.add_row t
                    [
                      (match kind with
                      | Uk -> "uk/colocated"
                      | Vmm -> "vmm/driver-domains");
                      string_of_int c;
                      string_of_int s.s_completed;
                      Table.cellf "%.0f" (Int64.to_float s.s_wall /. 1e3);
                      Table.cellf "%.0f" (Int64.to_float s.s_irq_cycles /. 1e3);
                    ])
                runs)
            storms;
          t
        in
        (* --- verdicts --- *)
        let relay_tax_everywhere =
          List.for_all (fun n -> (pw n Vmm).cyc_pkt > (pw n Uk).cyc_pkt)
            guest_counts
        in
        let gap n = Int64.sub (pw n Vmm).fab_cycles (pw n Uk).fab_cycles in
        let gap_widens =
          Int64.compare (gap 4) (gap 2) > 0 && Int64.compare (gap 8) (gap 4) > 0
        in
        let a2a_vmm = List.assoc Vmm a2a and a2a_uk = List.assoc Uk a2a in
        (* Judged on the request-response pattern: one-way streaming
           lets the bridge amortize notifications over deep tx batches
           (an honest win for the relay, reported in the table), but
           once guests both send and receive each round the per-packet
           upcall/hypercall pair comes back. *)
        let transitions_gap = a2a_vmm.trans_pkt > a2a_uk.trans_pkt in
        let broker_amortized =
          (pw 8 Vmm).touches_pkt >= 1.5
          && (pw 8 Uk).touches_pkt < 0.5
          && a2a_uk.touches_pkt < 0.5
        in
        let flow_monotone =
          match flows with
          | [ (_, r1, c1); (_, r2, c2); (_, r3, c3) ] ->
              r1 < r2 && r2 < r3 && c1 > c2 && c2 > c3
          | _ -> false
        in
        let fair_restores =
          delivered_from fair_on 2 > delivered_from fair_off 2
          && counter_of fair_on Overload.fair_shed_counter > 0
        in
        let ecn_paces =
          List.for_all
            (fun (_, (off, on)) ->
              on.marks > 0 && on.backoffs > 0 && on.vnet_drops <= off.vnet_drops)
            ecns
        in
        let storm_get kind c = List.assoc c (List.assoc kind storms) in
        let composes kind =
          let c1 = storm_get kind 1 and c8 = storm_get kind 8 in
          c8.s_completed = c1.s_completed
          && Int64.compare c8.s_irq_cycles c1.s_irq_cycles < 0
          && Int64.compare c8.s_wall c1.s_wall <= 0
        in
        let deterministic =
          (pw 8 Vmm).fp = rerun_vmm.fp && (pw 8 Uk).fp = rerun_uk.fp
        in
        let verdicts =
          [
            Experiment.verdict
              ~claim:"The Dom0 bridge pays the relay tax on every packet"
              ~expected:
                "inter-guest fabric cycles/packet higher on the Xen bridge \
                 than on L4 direct IPC at every guest count (pairwise, flows \
                 established)"
              ~measured:
                (String.concat "; "
                   (List.map
                      (fun n ->
                        Printf.sprintf "%d guests: vmm %.0f vs uk %.0f" n
                          (pw n Vmm).cyc_pkt (pw n Uk).cyc_pkt)
                      guest_counts))
              relay_tax_everywhere;
            Experiment.verdict
              ~claim:"The structural cost gap grows with communicating guests"
              ~expected:
                "aggregate fabric-cycle gap (vmm - uk) strictly increasing \
                 from 2 to 4 to 8 guests"
              ~measured:
                (Printf.sprintf "gap kcyc: %.0f -> %.0f -> %.0f"
                   (Int64.to_float (gap 2) /. 1e3)
                   (Int64.to_float (gap 4) /. 1e3)
                   (Int64.to_float (gap 8) /. 1e3))
              gap_widens;
            Experiment.verdict
              ~claim:"Direct channels need fewer privileged transitions"
              ~expected:
                "privileged transitions per delivered packet lower on L4 than \
                 on the Xen bridge for all-to-all request-response traffic \
                 (one-way streaming lets the bridge batch notifications)"
              ~measured:
                (Printf.sprintf
                   "pairwise: vmm %.1f vs uk %.1f; all-to-all: vmm %.1f vs uk \
                    %.1f"
                   (pw 8 Vmm).trans_pkt (pw 8 Uk).trans_pkt a2a_vmm.trans_pkt
                   a2a_uk.trans_pkt)
              transitions_gap;
            Experiment.verdict
              ~claim:"The L4 broker is amortized over connections, not packets"
              ~expected:
                "middleman touches/packet ~2 on the bridge vs < 0.5 on L4 \
                 (lookups + attaches only)"
              ~measured:
                (Printf.sprintf
                   "pairwise-8: vmm %.2f vs uk %.2f; all-to-all: uk %.2f"
                   (pw 8 Vmm).touches_pkt (pw 8 Uk).touches_pkt
                   a2a_uk.touches_pkt)
              broker_amortized;
            Experiment.verdict
              ~claim:"The flow cache converts forwarding state into cycles"
              ~expected:
                "hit ratio strictly rising and cycles/decision strictly \
                 falling with flow-cache capacity 4 -> 16 -> 64"
              ~measured:
                (String.concat "; "
                   (List.map
                      (fun (cap, r, c) ->
                        Printf.sprintf "cap %d: %.2f @ %.0f cyc" cap r c)
                      flows))
              flow_monotone;
            Experiment.verdict
              ~claim:
                "Weighted fair-share admission protects a victim flow (E15)"
              ~expected:
                "victim packets delivered strictly higher with the weighted \
                 gate; aggressor sheds counted under overload.fair.shed"
              ~measured:
                (Printf.sprintf
                   "victim %d/%d -> %d/%d delivered; fair sheds %d"
                   (delivered_from fair_off 2) count (delivered_from fair_on 2)
                   count
                   (counter_of fair_on Overload.fair_shed_counter))
              fair_restores;
            Experiment.verdict
              ~claim:"ECN marks pace senders before drops (both stacks)"
              ~expected:
                "with the watermark armed: marks > 0, sender backoffs > 0, \
                 and vnet rejections no worse than unmarked"
              ~measured:
                (String.concat "; "
                   (List.map
                      (fun (s, (off, on)) ->
                        Printf.sprintf "%s: %d marks, %d backoffs, drops %d->%d"
                          (stack_label s) on.marks on.backoffs off.vnet_drops
                          on.vnet_drops)
                      ecns))
              ecn_paces;
            Experiment.verdict
              ~claim:"The fabric composes with E14 placement and E16 mitigation"
              ~expected:
                "8-core storm at coalesce 8: same packets completed, fewer \
                 IRQ-entry cycles, wall no worse, on both structures"
              ~measured:
                (Printf.sprintf
                   "uk wall %.0fk -> %.0fk; vmm wall %.0fk -> %.0fk"
                   (Int64.to_float (storm_get Uk 1).s_wall /. 1e3)
                   (Int64.to_float (storm_get Uk 8).s_wall /. 1e3)
                   (Int64.to_float (storm_get Vmm 1).s_wall /. 1e3)
                   (Int64.to_float (storm_get Vmm 8).s_wall /. 1e3))
              (composes Uk && composes Vmm);
            Experiment.verdict ~claim:"The fabric replays bit-for-bit"
              ~expected:
                "same-seed 8-guest pairwise rerun: identical arrivals, \
                 counters and accounts on both stacks"
              ~measured:
                (if deterministic then "bit-for-bit identical" else "diverged")
              deterministic;
          ]
        in
        {
          Experiment.tables =
            [
              ("Pairwise sweep: fabric cost per delivered packet", sweep_table);
              ("All-to-all at 8 guests", a2a_table);
              ("Flow-cache capacity sweep (raw switch, 8 stations)", flow_table);
              ("Fair share under an aggressor (bridge gate)", fair_table);
              ("ECN watermark pacing", ecn_table);
              ("E14 composition: 8-core storm with coalescing", storm_table);
            ];
          verdicts;
        });
  }
