(* E19: the capability layer under revocation storms. Both stacks now
   route their delegation machinery through {!Vmk_cap.Cap} — the
   microkernel's map-item delegations and the VMM's grant/map entries
   are nodes in one explicit derivation tree per object — so recursive
   revocation is a single mechanism with a measurable price:

   - Depth sweep: a delegation chain of d hops (uk: map items relayed
     thread-to-thread; vmm: grant -> map -> transitive re-grant ->
     map -> ...) is torn down by one revoke at the root. Teardown
     cycles, capabilities removed and forced unmaps as a function of
     derivation depth — the paper's §2/§4 resource-control story
     extended to the cost of taking rights *back*.

   - Revocation storm: the E17 fabric serves pairwise vnet traffic
     while a misbehaving party has its delegated rights recursively
     revoked mid-run — the broker severs a guest's session-cap chain
     (uk), a frame owner cuts down a live 3-deep transitive grant chain
     (vmm). Measured: the victim is really cut off, the innocent
     guests' p99 inter-arrival latency moves (or does not), privileged
     transitions added, and bit-for-bit same-seed replay. *)

module Table = Vmk_stats.Table
module Machine = Vmk_hw.Machine
module Addr = Vmk_hw.Addr
module Counter = Vmk_trace.Counter
module Accounts = Vmk_trace.Accounts
module Rng = Vmk_sim.Rng
module Cap = Vmk_cap.Cap
module Kernel = Vmk_ukernel.Kernel
module Sysif = Vmk_ukernel.Sysif
module Proto = Vmk_ukernel.Proto
module Net_server = Vmk_ukernel.Net_server
module Hypervisor = Vmk_vmm.Hypervisor
module Hcall = Vmk_vmm.Hcall
module Net_channel = Vmk_vmm.Net_channel
module Bridge = Vmk_vmm.Bridge
module Port_xen = Vmk_guest.Port_xen
module Port_l4 = Vmk_guest.Port_l4
module Sys = Vmk_guest.Sys

let depths = [ 1; 2; 3; 4; 5; 6 ]
let packet_len = 512
let sender_pace = 8_000
let settle = 50_000
let storm_guests = 6
let storm_chain_depth = 3
let io_timeout = 20_000_000L

(* --- depth sweep result --- *)

type chain = {
  ch_depth : int;
  ch_removed : int;  (** Capabilities torn down by the root revoke. *)
  ch_forced : int;  (** Grant mappings force-unmapped (vmm only). *)
  ch_transitive : int;  (** Transitive re-grants in the chain (vmm only). *)
  ch_teardown : int64;  (** Cycles of the revoke call itself. *)
  ch_severed : int;  (** Delegates that observed their rights gone. *)
  ch_wall : int64;
  ch_counters : (string * int) list;
  ch_accounts : (string * int64) list;
}

let cyc_per_cap c =
  if c.ch_removed = 0 then 0.0
  else Int64.to_float c.ch_teardown /. float_of_int c.ch_removed

(* --- microkernel chain: map items relayed thread to thread --- *)

(* thread 0 allocs a page (minting its root cap) and delegates it to
   thread 1 as a map item; each link touches the window and relays the
   same map item to the next link, deriving one child capability per
   hop. One [Sysif.unmap] at the root then revokes the whole chain
   through the derivation tree; every link's subsequent touch must
   page-fault. *)
let uk_chain ~depth =
  let mach = Machine.create ~seed:71L () in
  let k = Kernel.create mach in
  let counters = mach.Machine.counters in
  let teardown = ref 0L and removed = ref 0 and severed = ref 0 in
  let chain_tids = Array.make (depth + 1) 0 in
  (* Spawn links last-to-first so each closure knows its successor. *)
  for i = depth downto 1 do
    let next = if i < depth then Some chain_tids.(i + 1) else None in
    chain_tids.(i) <-
      Kernel.spawn k
        ~name:(Printf.sprintf "link%d" i)
        ~priority:3 ~account:"link"
        (fun () ->
          let _src, m = Sysif.recv Sysif.Any in
          let root = (Sysif.words m).(0) in
          let fpage, _ = List.hd (Sysif.map_items m) in
          let addr = Addr.of_vpn fpage.Sysif.base_vpn in
          Sysif.touch ~addr ~len:8 ~write:true;
          (match next with
          | Some nxt ->
              Sysif.send nxt
                (Sysif.msg 1
                   ~items:
                     [
                       Sysif.Words [| root |];
                       Sysif.Map { fpage; grant = false };
                     ])
          | None -> Sysif.send root (Sysif.msg 2));
          (* Wait for the root's post-revoke probe signal. *)
          let _ = Sysif.recv Sysif.Any in
          try Sysif.touch ~addr ~len:8 ~write:false
          with Sysif.Ipc_error (Sysif.Page_fault_unhandled _) -> incr severed)
  done;
  let _root =
    Kernel.spawn k ~name:"root" ~priority:2 ~account:"root" (fun () ->
        let fp = Sysif.alloc_pages 1 in
        let me = Sysif.my_tid () in
        Sysif.send chain_tids.(1)
          (Sysif.msg 1
             ~items:
               [ Sysif.Words [| me |]; Sysif.Map { fpage = fp; grant = false } ]);
        (* The last link reports the chain complete. *)
        let _ = Sysif.recv Sysif.Any in
        let before = Machine.now mach in
        let r0 = Counter.get counters "cap.revoked" in
        Sysif.unmap fp;
        teardown := Int64.sub (Machine.now mach) before;
        removed := Counter.get counters "cap.revoked" - r0;
        for i = 1 to depth do
          Sysif.send chain_tids.(i) (Sysif.msg 3)
        done)
  in
  ignore (Kernel.run k);
  {
    ch_depth = depth;
    ch_removed = !removed;
    ch_forced = 0;
    ch_transitive = 0;
    ch_teardown = !teardown;
    ch_severed = !severed;
    ch_wall = Machine.now mach;
    ch_counters = Counter.to_list counters;
    ch_accounts = Accounts.to_list mach.Machine.accounts;
  }

(* --- VMM chain: grant -> map -> transitive re-grant, d deep --- *)

(* The owner grants a frame to link 1; each link maps it and re-grants
   the *mapped* frame onward (an E19 transitive grant, whose capability
   derives from the map cap). One [grant_revoke] at the owner then
   force-unmaps the entire chain — every downstream mapping and every
   grant made from one — and every link's retry must see [Bad_gref]. *)
let vmm_chain ~depth =
  let mach = Machine.create ~seed:72L () in
  let h = Hypervisor.create mach in
  let counters = mach.Machine.counters in
  let domids = Array.make (depth + 1) 0 in
  let grefs = Array.make (depth + 1) None in
  let built = ref false and revoked = ref false in
  let teardown = ref 0L and removed = ref 0 in
  let forced = ref 0 and severed = ref 0 in
  let checked = ref 0 in
  let wait cond =
    while not (cond ()) do
      ignore (Hcall.block ~timeout:20_000L ())
    done
  in
  for i = depth downto 1 do
    domids.(i) <-
      Hypervisor.create_domain h
        ~name:(Printf.sprintf "link%d" i)
        (fun () ->
          wait (fun () -> grefs.(i) <> None);
          let gref = Option.get grefs.(i) in
          let frame = Hcall.grant_map ~dom:domids.(i - 1) ~gref in
          if i < depth then
            grefs.(i + 1) <-
              Some (Hcall.grant ~to_dom:domids.(i + 1) ~frame ~readonly:false)
          else built := true;
          wait (fun () -> !revoked);
          (match Hcall.grant_map ~dom:domids.(i - 1) ~gref with
          | _ -> ()
          | exception Hcall.Hcall_error Hcall.Bad_gref -> incr severed);
          incr checked;
          (* Nobody exits before every link has probed its (dead) gref —
             a granter exiting early would turn Bad_gref into a
             dead-domain error. *)
          wait (fun () -> !checked = depth))
  done;
  domids.(0) <-
    Hypervisor.create_domain h ~name:"owner" (fun () ->
        let frame = List.hd (Hcall.alloc_frames 1) in
        let g1 = Hcall.grant ~to_dom:domids.(1) ~frame ~readonly:false in
        grefs.(1) <- Some g1;
        wait (fun () -> !built);
        let before = Machine.now mach in
        let r0 = Counter.get counters "cap.revoked" in
        let f0 = Counter.get counters "gnt.revoke_forced" in
        Hcall.grant_revoke g1;
        teardown := Int64.sub (Machine.now mach) before;
        removed := Counter.get counters "cap.revoked" - r0;
        forced := Counter.get counters "gnt.revoke_forced" - f0;
        revoked := true;
        wait (fun () -> !checked = depth));
  ignore (Hypervisor.run h);
  {
    ch_depth = depth;
    ch_removed = !removed;
    ch_forced = !forced;
    ch_transitive = Counter.get counters "vmm.grant_transitive";
    ch_teardown = !teardown;
    ch_severed = !severed;
    ch_wall = Machine.now mach;
    ch_counters = Counter.to_list counters;
    ch_accounts = Accounts.to_list mach.Machine.accounts;
  }

(* --- the revocation storm --- *)

type storm = {
  st_innocent_rx : int;  (** Packets delivered between innocent guests. *)
  st_expected : int;  (** What the innocent pairs should deliver. *)
  st_p99_gap : int64;  (** p99 inter-arrival gap across innocent traffic. *)
  st_denied : int;  (** Broker lookups denied post-revocation (uk). *)
  st_victim_failed : int;  (** Victim operations that failed after revoke. *)
  st_removed : int;  (** Caps torn down by the storm's revoke. *)
  st_forced : int;  (** Forced unmaps from the storm's revoke (vmm). *)
  st_transitions : int;  (** Privileged transitions over the whole run. *)
  st_teardown : int64;  (** Revoke span (uk: call round trip; vmm: exact). *)
  st_wall : int64;
  st_arrivals : (int * int64) list;
  st_counters : (string * int) list;
  st_accounts : (string * int64) list;
}

let percentile_gap p times =
  let sorted = List.sort compare times in
  let gaps =
    match sorted with
    | [] -> []
    | first :: rest ->
        let _, acc =
          List.fold_left
            (fun (prev, acc) t -> (t, Int64.sub t prev :: acc))
            (first, []) rest
        in
        List.sort compare acc
  in
  match gaps with
  | [] -> 0L
  | _ ->
      let n = List.length gaps in
      List.nth gaps (min (n - 1) (p * (n - 1) / 100))

let innocent_times arrivals ~innocent =
  List.filter_map
    (fun (tag, at) -> if List.mem (Sys.vnet_src tag) innocent then Some at else None)
    arrivals

(* Pairwise traffic plan shared by both storm realizations: odd ports
   send [count] packets to port+1. Ports 1/2 are the misbehaving pair;
   3->4 and 5->6 are the innocent bystanders. *)
let storm_innocent = [ 3; 5 ]

let sender ~src ~dst ~count () =
  Sys.burn settle;
  for seq = 0 to count - 1 do
    (try Sys.net_send ~len:packet_len ~tag:(Sys.vnet_tag ~src ~dst ~seq)
     with Sys.Sys_error _ -> ());
    Sys.burn sender_pace
  done;
  try Sys.net_drain () with Sys.Sys_error _ -> ()

let receiver mach ~record ~packets () =
  try
    for _ = 1 to packets do
      let _len, tag = Sys.net_recv () in
      record ~tag ~at:(Machine.now mach)
    done
  with Sys.Sys_error _ -> ()

(* L4 storm: the broker recursively revokes the misbehaving guest's
   session-cap chain mid-run. Phase 1 of the victim's traffic flows
   normally; once the chain is severed its fresh lookups are denied at
   the broker's rights gate, so its second burst (to a new destination)
   never leaves the guest kernel. *)
let uk_storm ~quick ~revoke =
  let count = if quick then 24 else 40 in
  let mach = Machine.create ~seed:42L () in
  let k = Kernel.create mach in
  let counters = mach.Machine.counters in
  let net_tid =
    Kernel.spawn k ~name:"net-server" ~priority:2 ~account:Net_server.account
      (fun () -> Net_server.body mach ~vnet:true ())
  in
  let vnets =
    List.init storm_guests (fun i -> Port_l4.vnet ~mach ~port:(i + 1) ())
  in
  let gks =
    List.mapi
      (fun i v ->
        let rtry = Port_l4.retry ~mach (Rng.split mach.Machine.rng) in
        Kernel.spawn k
          ~name:(Printf.sprintf "gk%d" (i + 1))
          ~priority:3 ~account:Port_l4.gk_account
          (Port_l4.guest_kernel_body ~retry:rtry ~vnet:v ~net:(Some net_tid)
             ~blk:None))
      vnets
  in
  ignore
    (Kernel.run k ~until:(fun () ->
         Counter.get counters "drv.net.vnet_attach" >= storm_guests));
  let arrivals = ref [] in
  let record ~tag ~at = arrivals := (tag, at) :: !arrivals in
  let pending = ref 0 in
  let phase1_done = ref false in
  let revoke_done = ref (not revoke) in
  let victim_failed = ref 0 in
  let removed = ref 0 and teardown = ref 0L in
  (* Phase 2 after the revoke: a burst to a *new* destination, so the
     victim's guest kernel must go back to the broker — whose rights
     gate now denies it. A denied destination falls back to the raw
     driver path (the packet goes to the NIC, not the fabric), so the
     severance signal is how many phase-2 packets failed to go out as
     direct vnet IPC. *)
  let v1 = List.nth vnets 0 in
  let misbehaving () =
    sender ~src:1 ~dst:2 ~count ();
    phase1_done := true;
    if revoke then begin
      while not !revoke_done do
        Sysif.sleep 100_000L
      done;
      let direct0 = Port_l4.vnet_sent v1 in
      for seq = 0 to count - 1 do
        try
          Sys.net_send ~len:packet_len ~tag:(Sys.vnet_tag ~src:1 ~dst:4 ~seq)
        with Sys.Sys_error _ -> ()
      done;
      (try Sys.net_drain () with Sys.Sys_error _ -> ());
      victim_failed := count - (Port_l4.vnet_sent v1 - direct0)
    end
  in
  let apps =
    [
      (1, misbehaving);
      (2, receiver mach ~record ~packets:count);
      (3, sender ~src:3 ~dst:4 ~count);
      (4, receiver mach ~record ~packets:count);
      (5, sender ~src:5 ~dst:6 ~count);
      (6, receiver mach ~record ~packets:count);
    ]
  in
  pending := List.length apps;
  List.iter
    (fun (port, body) ->
      let gk = List.nth gks (port - 1) in
      ignore
        (Kernel.spawn k
           ~name:(Printf.sprintf "app%d" port)
           ~priority:4 ~account:"app"
           (Port_l4.app_body mach ~gk (fun () ->
                body ();
                decr pending))))
    apps;
  if revoke then
    ignore
      (Kernel.spawn k ~name:"ctl" ~priority:2 ~account:"ctl" (fun () ->
           while not !phase1_done do
             Sysif.sleep 50_000L
           done;
           let before = Machine.now mach in
           let r0 = Counter.get counters "cap.revoked" in
           (match
              Sysif.call net_tid
                (Sysif.msg Proto.vnet_revoke ~items:[ Sysif.Words [| 1 |] ])
            with
           | _, r when r.Sysif.label = Proto.ok -> ()
           | _ | (exception Sysif.Ipc_error _) -> ());
           teardown := Int64.sub (Machine.now mach) before;
           removed := Counter.get counters "cap.revoked" - r0;
           revoke_done := true));
  ignore (Kernel.run k ~until:(fun () -> !pending = 0));
  ignore (Kernel.run k ~max_dispatches:100_000);
  let arrivals = List.sort compare !arrivals in
  let innocent = innocent_times arrivals ~innocent:storm_innocent in
  {
    st_innocent_rx = List.length innocent;
    st_expected = 2 * count;
    st_p99_gap = percentile_gap 99 innocent;
    st_denied = Counter.get counters "drv.net.vnet_denied";
    st_victim_failed = !victim_failed;
    st_removed = !removed;
    st_forced = 0;
    st_transitions = Counter.get counters "uk.syscall";
    st_teardown = !teardown;
    st_wall = Machine.now mach;
    st_arrivals = arrivals;
    st_counters = Counter.to_list counters;
    st_accounts = Accounts.to_list mach.Machine.accounts;
  }

(* Xen storm: pairwise traffic through the Dom0 bridge while a 3-deep
   transitive grant chain built by a side party is cut down at its root
   mid-run — every downstream mapping force-unmapped inside the
   hypervisor while innocent packets keep crossing it. *)
let xen_storm ~quick ~revoke =
  let count = if quick then 24 else 40 in
  let revoke_at = 1_500_000L in
  let depth = storm_chain_depth in
  let mach = Machine.create ~seed:41L () in
  let h = Hypervisor.create mach in
  let counters = mach.Machine.counters in
  let chans =
    List.init storm_guests (fun i ->
        Net_channel.create ~mode:Net_channel.Flip ~demux_key:(i + 1) ())
  in
  let bridge =
    Hypervisor.create_domain h ~name:Bridge.name ~privileged:true ~weight:512
      (fun () -> Bridge.body mach ~net:chans ())
  in
  (* The delegation chain, off to the side of the traffic. *)
  let domids = Array.make (depth + 1) 0 in
  let grefs = Array.make (depth + 1) None in
  let built = ref false and revoked = ref false in
  let removed = ref 0 and forced = ref 0 and teardown = ref 0L in
  (* Coarse poll: the chain domains are bystanders to the traffic and
     their waiting must not itself look like a hypercall storm. *)
  let wait cond =
    while not (cond ()) do
      ignore (Hcall.block ~timeout:250_000L ())
    done
  in
  for i = depth downto 1 do
    domids.(i) <-
      Hypervisor.create_domain h
        ~name:(Printf.sprintf "mis%d" i)
        (fun () ->
          wait (fun () -> grefs.(i) <> None);
          let gref = Option.get grefs.(i) in
          let frame = Hcall.grant_map ~dom:domids.(i - 1) ~gref in
          if i < depth then
            grefs.(i + 1) <-
              Some (Hcall.grant ~to_dom:domids.(i + 1) ~frame ~readonly:false)
          else built := true;
          (* Stay alive holding the mapping: the revoke must cut down
             *live* state, not bookkeeping a clean exit already tore
             down. *)
          wait (fun () -> !revoked))
  done;
  domids.(0) <-
    Hypervisor.create_domain h ~name:"mis0" (fun () ->
        let frame = List.hd (Hcall.alloc_frames 1) in
        let g1 = Hcall.grant ~to_dom:domids.(1) ~frame ~readonly:false in
        grefs.(1) <- Some g1;
        wait (fun () -> !built);
        if revoke then begin
          wait (fun () -> Int64.compare (Machine.now mach) revoke_at >= 0);
          let before = Machine.now mach in
          let r0 = Counter.get counters "cap.revoked" in
          let f0 = Counter.get counters "gnt.revoke_forced" in
          Hcall.grant_revoke g1;
          teardown := Int64.sub (Machine.now mach) before;
          removed := Counter.get counters "cap.revoked" - r0;
          forced := Counter.get counters "gnt.revoke_forced" - f0;
          revoked := true
        end
        else revoked := true);
  ignore revoked;
  let arrivals = ref [] in
  let record ~tag ~at = arrivals := (tag, at) :: !arrivals in
  let pending = ref 0 in
  let apps =
    [
      (1, sender ~src:1 ~dst:2 ~count);
      (2, receiver mach ~record ~packets:count);
      (3, sender ~src:3 ~dst:4 ~count);
      (4, receiver mach ~record ~packets:count);
      (5, sender ~src:5 ~dst:6 ~count);
      (6, receiver mach ~record ~packets:count);
    ]
  in
  pending := List.length apps;
  List.iteri
    (fun i (port, body) ->
      assert (port = i + 1);
      let chan = List.nth chans i in
      ignore
        (Hypervisor.create_domain h
           ~name:(Printf.sprintf "guest%d" port)
           (Port_xen.guest_body mach ~net:(chan, bridge) ~io_timeout
              ~app:(fun () ->
                body ();
                decr pending))))
    apps;
  ignore (Hypervisor.run h ~until:(fun () -> !pending = 0));
  ignore (Hypervisor.run h ~max_dispatches:100_000);
  let arrivals = List.sort compare !arrivals in
  let innocent = innocent_times arrivals ~innocent:storm_innocent in
  {
    st_innocent_rx = List.length innocent;
    st_expected = 2 * count;
    st_p99_gap = percentile_gap 99 innocent;
    st_denied = 0;
    st_victim_failed = 0;
    st_removed = !removed;
    st_forced = !forced;
    st_transitions =
      Counter.get counters "vmm.hypercall" + Counter.get counters "vmm.upcall";
    st_teardown = !teardown;
    st_wall = Machine.now mach;
    st_arrivals = arrivals;
    st_counters = Counter.to_list counters;
    st_accounts = Accounts.to_list mach.Machine.accounts;
  }

(* --- reporting --- *)

let counter_of counters name =
  Option.value ~default:0 (List.assoc_opt name counters)

let chain_table ~vmm rows =
  let t =
    Table.create
      ~header:
        ([ "depth"; "caps removed" ]
        @ (if vmm then [ "forced unmaps"; "transitive grants" ] else [])
        @ [ "teardown cyc"; "cyc/cap"; "delegates severed" ])
  in
  List.iter
    (fun c ->
      Table.add_row t
        ([ string_of_int c.ch_depth; string_of_int c.ch_removed ]
        @ (if vmm then
             [ string_of_int c.ch_forced; string_of_int c.ch_transitive ]
           else [])
        @ [
            Int64.to_string c.ch_teardown;
            Table.cellf "%.0f" (cyc_per_cap c);
            string_of_int c.ch_severed;
          ]))
    rows;
  t

let depth_histogram_table rows =
  let buckets = [ "le_1"; "le_2"; "le_4"; "le_8"; "gt_8" ] in
  let t = Table.create ~header:("stack" :: buckets) in
  List.iter
    (fun (label, counters) ->
      Table.add_row t
        (label
        :: List.map
             (fun b ->
               string_of_int (counter_of counters ("cap.revoke_depth." ^ b)))
             buckets))
    rows;
  t

let storm_table rows =
  let t =
    Table.create
      ~header:
        [
          "stack";
          "run";
          "innocent rcvd";
          "p99 gap";
          "denied";
          "victim failed";
          "caps removed";
          "forced";
          "transitions";
          "teardown cyc";
        ]
  in
  List.iter
    (fun (stack, label, r) ->
      Table.add_row t
        [
          stack;
          label;
          Printf.sprintf "%d/%d" r.st_innocent_rx r.st_expected;
          Int64.to_string r.st_p99_gap;
          string_of_int r.st_denied;
          string_of_int r.st_victim_failed;
          string_of_int r.st_removed;
          string_of_int r.st_forced;
          string_of_int r.st_transitions;
          Int64.to_string r.st_teardown;
        ])
    rows;
  t

let monotone f rows =
  let rec go = function
    | a :: (b :: _ as rest) -> f a < f b && go rest
    | _ -> true
  in
  go rows

let run ~quick =
  let uk_sweep = List.map (fun d -> uk_chain ~depth:d) depths in
  let vmm_sweep = List.map (fun d -> vmm_chain ~depth:d) depths in
  let uk_base = uk_storm ~quick ~revoke:false in
  let uk_rev = uk_storm ~quick ~revoke:true in
  let uk_rev2 = uk_storm ~quick ~revoke:true in
  let xen_base = xen_storm ~quick ~revoke:false in
  let xen_rev = xen_storm ~quick ~revoke:true in
  let xen_rev2 = xen_storm ~quick ~revoke:true in
  let uk_d6 = List.nth uk_sweep 5 and vmm_d6 = List.nth vmm_sweep 5 in
  let count = if quick then 24 else 40 in
  (* Verdict shapes. *)
  let uk_exact =
    List.for_all
      (fun c -> c.ch_removed = c.ch_depth && c.ch_severed = c.ch_depth)
      uk_sweep
  in
  let vmm_exact =
    List.for_all
      (fun c ->
        c.ch_removed = (2 * c.ch_depth)
        && c.ch_forced = (2 * c.ch_depth) - 1
        && c.ch_transitive = c.ch_depth - 1
        && c.ch_severed = c.ch_depth)
      vmm_sweep
  in
  let uk_monotone = monotone (fun c -> c.ch_teardown) uk_sweep in
  let vmm_monotone = monotone (fun c -> c.ch_teardown) vmm_sweep in
  let band rows =
    let per_hop =
      List.map
        (fun c -> Int64.to_float c.ch_teardown /. float_of_int c.ch_depth)
        rows
    in
    let mn = List.fold_left min (List.hd per_hop) per_hop in
    let mx = List.fold_left max (List.hd per_hop) per_hop in
    (mn, mx)
  in
  let uk_mn, uk_mx = band uk_sweep and vmm_mn, vmm_mx = band vmm_sweep in
  let linear = uk_mx <= 3.0 *. uk_mn && vmm_mx <= 3.0 *. vmm_mn in
  let uk_severed =
    uk_rev.st_denied > uk_base.st_denied
    && uk_rev.st_victim_failed = count
    && uk_rev.st_removed >= 2
  in
  let xen_severed =
    xen_rev.st_removed = 2 * storm_chain_depth
    && xen_rev.st_forced = (2 * storm_chain_depth) - 1
  in
  let collateral =
    uk_rev.st_innocent_rx = uk_rev.st_expected
    && xen_rev.st_innocent_rx = xen_rev.st_expected
    && Int64.compare uk_rev.st_p99_gap (Int64.mul 2L (max 1L uk_base.st_p99_gap))
       <= 0
    && Int64.compare xen_rev.st_p99_gap
         (Int64.mul 2L (max 1L xen_base.st_p99_gap))
       <= 0
  in
  let trans_delta_uk = uk_rev.st_transitions - uk_base.st_transitions in
  let trans_delta_xen = xen_rev.st_transitions - xen_base.st_transitions in
  let bounded_transitions =
    trans_delta_uk <= max 1 (uk_base.st_transitions / 2)
    && trans_delta_xen <= max 1 (xen_base.st_transitions / 2)
  in
  let deterministic = uk_rev = uk_rev2 && xen_rev = xen_rev2 in
  let verdicts =
    [
      Experiment.verdict
        ~claim:
          "Revocation is recursive and exact on the microkernel: one unmap \
           tears down the whole map-item delegation chain"
        ~expected:
          "depth d chain: exactly d capabilities removed, every delegate's \
           subsequent touch page-faults, teardown cycles strictly increasing \
           in d"
        ~measured:
          (String.concat "; "
             (List.map
                (fun c ->
                  Printf.sprintf "d%d: %d caps, %Ld cyc" c.ch_depth
                    c.ch_removed c.ch_teardown)
                uk_sweep))
        (uk_exact && uk_monotone);
      Experiment.verdict
        ~claim:
          "One grant_revoke cascades through transitive grants on the VMM: \
           mappings and re-grants made from them die with the root"
        ~expected:
          "depth d chain: 2d caps removed, 2d-1 forced unmaps, d-1 \
           transitive grants, every link's remap fails Bad_gref, cycles \
           strictly increasing in d"
        ~measured:
          (String.concat "; "
             (List.map
                (fun c ->
                  Printf.sprintf "d%d: %d caps, %d forced, %Ld cyc" c.ch_depth
                    c.ch_removed c.ch_forced c.ch_teardown)
                vmm_sweep))
        (vmm_exact && vmm_monotone);
      Experiment.verdict
        ~claim:"Teardown cost is linear in derivation depth, not worse"
        ~expected:
          "cycles per hop within a 3x band across depths 1..6 on both stacks"
        ~measured:
          (Printf.sprintf "uk %.0f..%.0f cyc/hop; vmm %.0f..%.0f cyc/hop"
             uk_mn uk_mx vmm_mn vmm_mx)
        linear;
      Experiment.verdict
        ~claim:
          "The storm really severs the misbehaving party on both stacks"
        ~expected:
          "uk: session chain removed, every post-revoke send denied at the \
           broker's rights gate; vmm: the live transitive chain force-unmapped \
           mid-traffic"
        ~measured:
          (Printf.sprintf
             "uk: %d caps removed, %d denied sends, denied counter %d; vmm: \
              %d caps removed, %d forced unmaps"
             uk_rev.st_removed uk_rev.st_victim_failed uk_rev.st_denied
             xen_rev.st_removed xen_rev.st_forced)
        (uk_severed && xen_severed);
      Experiment.verdict
        ~claim:
          "Innocent guests ride out the revocation storm (bounded collateral)"
        ~expected:
          "innocent pairs deliver everything; their p99 inter-arrival gap \
           stays within 2x of the storm-free baseline on both stacks"
        ~measured:
          (Printf.sprintf
             "uk: %d/%d, p99 %Ld vs base %Ld; vmm: %d/%d, p99 %Ld vs base %Ld"
             uk_rev.st_innocent_rx uk_rev.st_expected uk_rev.st_p99_gap
             uk_base.st_p99_gap xen_rev.st_innocent_rx xen_rev.st_expected
             xen_rev.st_p99_gap xen_base.st_p99_gap)
        collateral;
      Experiment.verdict
        ~claim:"A revocation storm adds only bounded privileged work"
        ~expected:
          "the revoke plus every post-revoke denial, retry and fallback adds \
           fewer than half the baseline's privileged transitions on both \
           stacks — severing a party costs less than its traffic did"
        ~measured:
          (Printf.sprintf "uk +%d on %d; vmm +%d on %d" trans_delta_uk
             uk_base.st_transitions trans_delta_xen xen_base.st_transitions)
        bounded_transitions;
      Experiment.verdict ~claim:"Revocation storms replay bit-for-bit"
        ~expected:
          "same-seed storm reruns: identical arrivals, counters and accounts \
           on both stacks"
        ~measured:
          (if deterministic then "bit-for-bit identical" else "diverged")
        deterministic;
    ]
  in
  {
    Experiment.tables =
      [
        ("Microkernel chain: one unmap vs delegation depth", chain_table ~vmm:false uk_sweep);
        ("VMM chain: one grant_revoke vs transitive grant depth", chain_table ~vmm:true vmm_sweep);
        ( "Revocation-depth histogram (depth-6 chains)",
          depth_histogram_table
            [ ("uk", uk_d6.ch_counters); ("vmm", vmm_d6.ch_counters) ] );
        ( "Revocation storm over E17 pairwise traffic",
          storm_table
            [
              ("uk", "baseline", uk_base);
              ("uk", "storm", uk_rev);
              ("vmm", "baseline", xen_base);
              ("vmm", "storm", xen_rev);
            ] );
      ];
    verdicts;
  }

let experiment =
  {
    Experiment.id = "e19";
    title = "Capability layer: rights derivation and revocation storms";
    paper_claim =
      "§2 claims VMMs got microkernel-style resource control right; a \
       first-class test of that is taking delegated resources *back*. E19 \
       gives both stacks one capability layer — per-domain handle tables, \
       rights masks, an explicit derivation tree — so the microkernel's \
       map-item delegations and the VMM's grant mappings (including grants \
       made transitively from mapped grants) revoke recursively through one \
       mechanism, with teardown cost linear in derivation depth and bounded \
       collateral on bystanders.";
    run;
  }
