(** E21 — zero-alloc hot path + tickless executor micro-report.

    Instrument check rather than a paper claim: verifies that
    steady-state switch forwarding allocates zero minor-heap words per
    packet while charging exactly the published virtual-cycle
    constants, and that the kernel/hypervisor executors fast-forward
    idle gaps and long compute bursts instead of burning timeslices
    (itemized by {!Vmk_sim.Engine}'s idle/burst skip accounting). All
    measurements are deterministic; wall-clock speedups are tracked by
    the bench harness (BENCH_e21.json). *)

val experiment : Experiment.t
