(** E15: end-to-end overload robustness — offered-load sweep on both
    structures, naive vs. policied, measuring timely goodput, tail
    latency and the itemized drop/shed/retry budget. *)

val experiment : Experiment.t
