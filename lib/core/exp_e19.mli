(** E19: the capability layer under revocation storms — per-domain
    handle tables and an explicit derivation tree now back both the
    microkernel's map-item delegations and the VMM's grant mappings, so
    one recursive revoke tears down a whole delegation chain on either
    stack. Measured: teardown cycles vs derivation depth (map-item
    chains on L4, grant -> map -> transitive re-grant chains on the
    VMM), the E17 fabric mid-run with a misbehaving party recursively
    revoked, collateral p99 latency on innocent guests, privileged
    transitions, and bit-for-bit replay. *)

val experiment : Experiment.t

(** {1 Test and bench hooks} *)

type chain = {
  ch_depth : int;
  ch_removed : int;  (** Capabilities torn down by the root revoke. *)
  ch_forced : int;  (** Grant mappings force-unmapped (vmm only). *)
  ch_transitive : int;  (** Transitive re-grants in the chain (vmm only). *)
  ch_teardown : int64;  (** Cycles of the revoke call itself. *)
  ch_severed : int;  (** Delegates that observed their rights gone. *)
  ch_wall : int64;
  ch_counters : (string * int) list;
  ch_accounts : (string * int64) list;
}

val uk_chain : depth:int -> chain
(** Map-item delegation chain of [depth] hops on the microkernel, torn
    down by one [Sysif.unmap] at the root. *)

val vmm_chain : depth:int -> chain
(** Grant -> map -> transitive re-grant chain of [depth] hops on the
    VMM, torn down by one [Hcall.grant_revoke] at the owner. *)

type storm = {
  st_innocent_rx : int;  (** Packets delivered between innocent guests. *)
  st_expected : int;  (** What the innocent pairs should deliver. *)
  st_p99_gap : int64;  (** p99 inter-arrival gap across innocent traffic. *)
  st_denied : int;  (** Broker lookups denied post-revocation (uk). *)
  st_victim_failed : int;  (** Victim operations that failed after revoke. *)
  st_removed : int;  (** Caps torn down by the storm's revoke. *)
  st_forced : int;  (** Forced unmaps from the storm's revoke (vmm). *)
  st_transitions : int;  (** Privileged transitions over the whole run. *)
  st_teardown : int64;  (** Revoke span (uk: call round trip; vmm: exact). *)
  st_wall : int64;
  st_arrivals : (int * int64) list;
  st_counters : (string * int) list;
  st_accounts : (string * int64) list;
}

val uk_storm : quick:bool -> revoke:bool -> storm
(** E17-style pairwise vnet traffic on the microkernel; with [revoke],
    the broker recursively revokes the misbehaving guest's session-cap
    chain mid-run, after which its fresh lookups are denied. *)

val xen_storm : quick:bool -> revoke:bool -> storm
(** Pairwise traffic through the Dom0 bridge; with [revoke], a 3-deep
    live transitive grant chain is cut down at its root mid-run. *)
