module Machine = Vmk_hw.Machine
module Nic = Vmk_hw.Nic
module Counter = Vmk_trace.Counter
module Accounts = Vmk_trace.Accounts
module Rng = Vmk_sim.Rng
module Table = Vmk_stats.Table
module Kernel = Vmk_ukernel.Kernel
module Sysif = Vmk_ukernel.Sysif
module Svc = Vmk_ukernel.Svc
module Watchdog = Vmk_ukernel.Watchdog
module Net_server = Vmk_ukernel.Net_server
module Blk_server = Vmk_ukernel.Blk_server
module Cluster = Vmk_ukernel.Smp_cluster
module Hypervisor = Vmk_vmm.Hypervisor
module Hcall = Vmk_vmm.Hcall
module Net_channel = Vmk_vmm.Net_channel
module Blk_channel = Vmk_vmm.Blk_channel
module Dom0 = Vmk_vmm.Dom0
module Driver_dom = Vmk_vmm.Driver_dom
module Bridge = Vmk_vmm.Bridge
module Svmm = Vmk_vmm.Smp_vmm
module Port_xen = Vmk_guest.Port_xen
module Port_l4 = Vmk_guest.Port_l4
module Sys = Vmk_guest.Sys
module Apps = Vmk_workloads.Apps
module Traffic = Vmk_workloads.Traffic
module Faults = Vmk_faults.Faults

(* Three concurrent I/O flows ride across a mid-run driver kill: NIC
   receive (netfront <- netback), storage (blkfront <- blkback) and an
   inter-guest vnet pair through the E17 bridge. Monolithic mode hosts
   net + blk in one Dom0 and kills Dom0; disaggregated mode hosts each
   backend in its own driver domain under a thin toolstack and kills
   only the netback domain. The blast radius is whatever stalls. *)
let kill_at = 4_000_000L
let sup_period = 1_000_000L
let connect_timeout = 10_000_000L
let net_period = 200_000L
let packet_len = 512
let vnet_pace = 250_000
let settle = 50_000

type xmode = Monolithic | Disaggregated

type bres = {
  b_label : string;
  b_target : string;  (** Who the fault plan killed ("-" if nobody). *)
  b_blk_completed : int;
  b_blk_lost : int;
  b_blk_stall : int64;  (** Max gap between successful block ops. *)
  b_blk_recovery : int64 option;
  b_net_rx : int;
  b_net_post : int;  (** Packets that arrived after the kill. *)
  b_net_stall : int64;  (** Max inter-arrival gap on the NIC path. *)
  b_net_recovery : int64 option;
  b_vnet_rx : int;
  b_vnet_stall : int64;  (** Max inter-arrival gap on the bridge path. *)
  b_restarts : int;  (** Supervisor restarts / toolstack rebuilds. *)
  b_reconnects : int;  (** Frontends dragged through reconnect. *)
  b_net_generation : int;
  b_finished : bool;
  b_wall : int64;
  b_injected : int;
  b_net_arrivals : (int * int64) list;
  b_blk_log : (int64 * bool) list;
  b_vnet_arrivals : (int * int64) list;
  b_counters : (string * int) list;
  b_accounts : (string * int64) list;
}

let max_gap times =
  let rec go prev acc = function
    | [] -> acc
    | t :: rest -> go t (max acc (Int64.sub t prev)) rest
  in
  match times with [] -> 0L | t :: rest -> go t 0L rest

let first_after at times =
  List.find_map
    (fun t -> if Int64.compare t at > 0 then Some (Int64.sub t at) else None)
    times

(* What the toolstack / supervisor / watchdog side of one run looks like
   to the measurement code, independent of how the backends are hosted. *)
type ctl = {
  c_target : string;
  c_kill : string -> unit;
  c_stop : unit -> unit;
  c_restarts : unit -> int;
  c_net_generation : unit -> int;
}

(* --- the Xen-style stack, monolithic or disaggregated --- *)

let xen_run ~quick ~mode ~kill =
  let ops = if quick then 16 else 32 in
  let packets = if quick then 24 else 48 in
  let vnet_count = if quick then 24 else 40 in
  let seed = match mode with Monolithic -> 61L | Disaggregated -> 62L in
  let mach = Machine.create ~seed () in
  let h = Hypervisor.create mach in
  let nchan = Net_channel.create ~mode:Net_channel.Flip ~demux_key:1 () in
  let bchan = Blk_channel.create () in
  let vnet_arrivals = ref [] in
  let vnet_done = ref false in
  let ctl, net_backend, blk_backend, has_vnet =
    match mode with
    | Monolithic ->
        let make ~restart () =
          Dom0.body mach ~connect_timeout ~generation:restart ~net:[ nchan ]
            ~blk:[ bchan ] ()
        in
        let dom0 =
          Hypervisor.create_domain h ~name:Dom0.name ~privileged:true
            (make ~restart:0)
        in
        let sup =
          Hypervisor.supervise h ~name:Dom0.name ~privileged:true
            ~period:sup_period ~make_body:make dom0
        in
        ( {
            c_target = Dom0.name;
            c_kill =
              (fun target ->
                if target = Dom0.name then
                  Hypervisor.kill_domain h (Hypervisor.supervised_domid sup));
            c_stop = (fun () -> Hypervisor.stop_supervisor sup);
            c_restarts =
              (fun () -> List.length (Hypervisor.restarts sup));
            c_net_generation =
              (fun () -> List.length (Hypervisor.restarts sup));
          },
          dom0,
          dom0,
          false )
    | Disaggregated ->
        let ts = Driver_dom.create () in
        let vchan_a = Net_channel.create ~mode:Net_channel.Flip ~demux_key:2 () in
        let vchan_b = Net_channel.create ~mode:Net_channel.Flip ~demux_key:3 () in
        let specs =
          [
            Driver_dom.spec ~name:Driver_dom.net_name (fun ~restart () ->
                Driver_dom.net_body mach ~connect_timeout ~generation:restart
                  ~net:[ nchan ] ());
            Driver_dom.spec ~name:Driver_dom.blk_name (fun ~restart () ->
                Driver_dom.blk_body mach ~connect_timeout ~generation:restart
                  ~blk:[ bchan ] ());
            (* The bridge holds no device, so it keeps no IRQ privilege:
               disaggregation shrinks each component to what it uses. *)
            Driver_dom.spec ~name:Bridge.name ~privileged:false ~weight:512
              (fun ~restart () ->
                Bridge.body mach ~connect_timeout ~generation:restart
                  ~net:[ vchan_a; vchan_b ] ());
          ]
        in
        let _toolstack =
          Hypervisor.create_domain h ~name:Driver_dom.toolstack_name
            ~privileged:true
            (Driver_dom.toolstack_body mach ts ~period:sup_period specs)
        in
        ignore (Hypervisor.run h ~until:(fun () -> Driver_dom.built ts));
        let domid name = Option.get (Driver_dom.domid ts name) in
        let bridge_dom = domid Bridge.name in
        let _vsend =
          Hypervisor.create_domain h ~name:"vsend"
            (Port_xen.guest_body mach ~net:(vchan_a, bridge_dom)
               ~app:(fun () ->
                 Sys.burn settle;
                 for seq = 0 to vnet_count - 1 do
                   (try
                      Sys.net_send ~len:packet_len
                        ~tag:(Sys.vnet_tag ~src:2 ~dst:3 ~seq)
                    with Sys.Sys_error _ -> ());
                   Sys.burn vnet_pace
                 done;
                 try Sys.net_drain () with Sys.Sys_error _ -> ()))
        in
        let _vrecv =
          Hypervisor.create_domain h ~name:"vrecv"
            (Port_xen.guest_body mach ~net:(vchan_b, bridge_dom)
               ~app:(fun () ->
                 (try
                    for _ = 1 to vnet_count do
                      let _len, tag = Sys.net_recv () in
                      vnet_arrivals :=
                        (tag, Machine.now mach) :: !vnet_arrivals
                    done
                  with Sys.Sys_error _ -> ());
                 vnet_done := true))
        in
        ( {
            c_target = Driver_dom.net_name;
            c_kill =
              (fun target ->
                match Driver_dom.domid ts target with
                | Some d -> Hypervisor.kill_domain h d
                | None -> ());
            c_stop = (fun () -> Driver_dom.stop ts);
            c_restarts = (fun () -> List.length (Driver_dom.restarts ts));
            c_net_generation =
              (fun () ->
                Option.value ~default:0
                  (Driver_dom.generation ts Driver_dom.net_name));
          },
          domid Driver_dom.net_name,
          domid Driver_dom.blk_name,
          true )
  in
  let ready = ref false in
  let net_done = ref false and blk_done = ref false in
  let arrivals = ref [] in
  let blk_log = ref [] in
  let blk_stats = Apps.stats () in
  let _netguest =
    Hypervisor.create_domain h ~name:"netguest"
      (Port_xen.guest_body mach ~net:(nchan, net_backend) ~resilient:true
         ~io_timeout:1_500_000L
         ~on_ready:(fun () -> ready := true)
         ~app:(fun () ->
           Apps.net_rx_probe
             ~now:(fun () -> Machine.now mach)
             ~record:(fun ~tag ~at -> arrivals := (tag, at) :: !arrivals)
             ~packets () ();
           net_done := true))
  in
  let _blkguest =
    Hypervisor.create_domain h ~name:"blkguest"
      (Port_xen.guest_body mach ~blk:(bchan, blk_backend) ~resilient:true
         ~io_timeout:1_000_000L
         ~app:(fun () ->
           Apps.blk_retry_stream ~stats:blk_stats
             ~now:(fun () -> Machine.now mach)
             ~log:(fun entry -> blk_log := entry :: !blk_log)
             ~ops ~span:24 ~seed:7 ~pace:150_000 () ();
           blk_done := true))
  in
  let source =
    Traffic.constant_rate mach
      ~gate:(fun () -> !ready)
      ~period:net_period ~len:packet_len ~count:packets ()
  in
  let plan = if kill then [ Faults.Kill_at { at = kill_at; target = ctl.c_target } ] else [] in
  let armed = Faults.arm plan mach ~kill:ctl.c_kill in
  let finished () =
    !net_done && !blk_done && ((not has_vnet) || !vnet_done)
  in
  ignore (Hypervisor.run h ~until:finished);
  ctl.c_stop ();
  ignore (Hypervisor.run h);
  Faults.disarm armed mach;
  let net = List.sort compare !arrivals in
  let blk = List.rev !blk_log in
  let vnet = List.sort compare !vnet_arrivals in
  let net_times = List.map snd net in
  let blk_ok_times = List.filter_map (fun (t, ok) -> if ok then Some t else None) blk in
  let label =
    match mode with Monolithic -> "xen/monolithic" | Disaggregated -> "xen/driver-domains"
  in
  {
    b_label = label;
    b_target = (if kill then ctl.c_target else "-");
    b_blk_completed = blk_stats.Apps.completed;
    b_blk_lost = blk_stats.Apps.errors;
    b_blk_stall = max_gap blk_ok_times;
    b_blk_recovery = (if kill then first_after kill_at blk_ok_times else None);
    b_net_rx = List.length net;
    b_net_post =
      List.length (List.filter (fun t -> Int64.compare t kill_at > 0) net_times);
    b_net_stall = max_gap net_times;
    b_net_recovery = (if kill then first_after kill_at net_times else None);
    b_vnet_rx = List.length vnet;
    b_vnet_stall = max_gap (List.map snd vnet);
    b_restarts = ctl.c_restarts ();
    b_reconnects = Counter.get mach.Machine.counters "xen.reconnects";
    b_net_generation = ctl.c_net_generation ();
    b_finished = finished ();
    b_wall = Machine.now mach;
    b_injected = Traffic.injected source;
    b_net_arrivals = net;
    b_blk_log = blk;
    b_vnet_arrivals = vnet;
    b_counters = Counter.to_list mach.Machine.counters;
    b_accounts = Accounts.to_list mach.Machine.accounts;
  }

(* --- the microkernel stack: same flows, net server killed --- *)

let l4_run ~quick ~kill =
  let ops = if quick then 16 else 32 in
  let packets = if quick then 24 else 48 in
  let mach = Machine.create ~seed:63L () in
  let k = Kernel.create mach in
  let blk_spec () =
    {
      Sysif.name = "blk-server";
      priority = 2;
      same_space = false;
      pager = None;
      body = (fun () -> Blk_server.body mach ());
    }
  in
  let net_spec () =
    {
      Sysif.name = "net-server";
      priority = 2;
      same_space = false;
      pager = None;
      body = (fun () -> Net_server.body mach ());
    }
  in
  let blk_tid =
    Kernel.spawn k ~name:"blk-server" ~priority:2 ~account:Blk_server.account
      (fun () -> Blk_server.body mach ())
  in
  let net_tid =
    Kernel.spawn k ~name:"net-server" ~priority:2 ~account:Net_server.account
      (fun () -> Net_server.body mach ())
  in
  let blk_entry = Svc.entry ~name:"blk" blk_tid in
  let net_entry = Svc.entry ~name:"net" net_tid in
  let wd = Watchdog.create () in
  let _wd_tid =
    Kernel.spawn k ~name:"watchdog" ~priority:1 ~account:"watchdog"
      (Watchdog.body mach wd ~period:sup_period ~ping_timeout:200_000L
         [ (blk_entry, blk_spec); (net_entry, net_spec) ])
  in
  let retry () =
    Port_l4.retry ~mach ~attempts:8 ~timeout:1_000_000L ~base_delay:100_000L
      (Rng.split mach.Machine.rng)
  in
  (* One guest kernel per client: the block client's syscall path shares
     nothing with the net path but the microkernel itself. *)
  let gk_net =
    Kernel.spawn k ~name:"gk-net" ~priority:3 ~account:Port_l4.gk_account
      (Port_l4.guest_kernel_body ~retry:(retry ()) ~net_svc:net_entry
         ~net:(Some net_tid) ~blk:None)
  in
  let gk_blk =
    Kernel.spawn k ~name:"gk-blk" ~priority:3 ~account:Port_l4.gk_account
      (Port_l4.guest_kernel_body ~retry:(retry ()) ~blk_svc:blk_entry
         ~net:None ~blk:(Some blk_tid))
  in
  let net_done = ref false and blk_done = ref false in
  let arrivals = ref [] in
  let blk_log = ref [] in
  let blk_stats = Apps.stats () in
  let _netapp =
    Kernel.spawn k ~name:"netapp" ~priority:4 ~account:"netapp"
      (Port_l4.app_body mach ~gk:gk_net (fun () ->
           Apps.net_rx_probe
             ~now:(fun () -> Machine.now mach)
             ~record:(fun ~tag ~at -> arrivals := (tag, at) :: !arrivals)
             ~packets () ();
           net_done := true))
  in
  let _blkapp =
    Kernel.spawn k ~name:"blkapp" ~priority:4 ~account:"blkapp"
      (Port_l4.app_body mach ~gk:gk_blk (fun () ->
           Apps.blk_retry_stream ~stats:blk_stats
             ~now:(fun () -> Machine.now mach)
             ~log:(fun entry -> blk_log := entry :: !blk_log)
             ~ops ~span:24 ~seed:7 ~pace:150_000 () ();
           blk_done := true))
  in
  let up = ref false in
  let gate () =
    if !up then true
    else if Nic.rx_buffers_posted mach.Machine.nic > 0 then begin
      up := true;
      true
    end
    else false
  in
  let source =
    Traffic.constant_rate mach ~gate ~period:net_period ~len:packet_len
      ~count:packets ()
  in
  let plan =
    if kill then [ Faults.Kill_at { at = kill_at; target = "net-server" } ]
    else []
  in
  let armed =
    Faults.arm plan mach ~kill:(fun target ->
        if target = "net-server" then Kernel.kill k (Svc.tid net_entry))
  in
  ignore (Kernel.run k ~until:(fun () -> !net_done && !blk_done));
  Watchdog.stop wd;
  ignore (Kernel.run k);
  Faults.disarm armed mach;
  let net = List.sort compare !arrivals in
  let blk = List.rev !blk_log in
  let net_times = List.map snd net in
  let blk_ok_times = List.filter_map (fun (t, ok) -> if ok then Some t else None) blk in
  (* Respawns are recorded under the registry entry's name. *)
  let respawns =
    List.length
      (List.filter (fun (name, _) -> name = "net") (Watchdog.respawns wd))
  in
  {
    b_label = "l4/multi-server";
    b_target = (if kill then "net-server" else "-");
    b_blk_completed = blk_stats.Apps.completed;
    b_blk_lost = blk_stats.Apps.errors;
    b_blk_stall = max_gap blk_ok_times;
    b_blk_recovery = (if kill then first_after kill_at blk_ok_times else None);
    b_net_rx = List.length net;
    b_net_post =
      List.length (List.filter (fun t -> Int64.compare t kill_at > 0) net_times);
    b_net_stall = max_gap net_times;
    b_net_recovery = (if kill then first_after kill_at net_times else None);
    b_vnet_rx = 0;
    b_vnet_stall = 0L;
    b_restarts = respawns;
    b_reconnects = Counter.get mach.Machine.counters "l4.retries";
    b_net_generation = respawns;
    b_finished = !net_done && !blk_done;
    b_wall = Machine.now mach;
    b_injected = Traffic.injected source;
    b_net_arrivals = net;
    b_blk_log = blk;
    b_vnet_arrivals = [];
    b_counters = Counter.to_list mach.Machine.counters;
    b_accounts = Accounts.to_list mach.Machine.accounts;
  }

(* --- the E10 TCB rerun: who serves a lone storage client --- *)

(* Literature size estimates (kLoC), same basis as E10: Xen 2 core ~70
   [BDF+03], monolithic Dom0 a 2 MLoC legacy OS [CYC+01]. A driver
   domain runs a mini-OS-class kernel plus one driver (~75), the
   toolstack is xend-class domain-building code (~30). Only the ratios
   are meaningful. *)
let kloc_of = function
  | "vmm" -> 70
  | "dom0" -> 2_000
  | "toolstack" -> 30
  | "blkdrv" -> 75
  | "netdrv" -> 80
  | "bridge" -> 70
  | _ -> 0

let defects_per_kloc = 5

let reliance accounts ~client_accounts =
  accounts
  |> List.filter (fun (name, cycles) ->
         Int64.compare cycles 0L > 0
         && (not (List.mem name client_accounts))
         && name <> "idle")
  |> List.map fst |> List.sort compare

let tcb_run ~quick ~mode =
  let ops = if quick then 20 else 60 in
  let seed = match mode with Monolithic -> 65L | Disaggregated -> 66L in
  let mach = Machine.create ~seed () in
  let h = Hypervisor.create mach in
  let chan = Blk_channel.create () in
  let done_ = ref false in
  let spawn_client backend =
    ignore
      (Hypervisor.create_domain h ~name:"client"
         (Port_xen.guest_body mach ~blk:(chan, backend)
            ~app:(fun () ->
              Apps.blk_mix ~ops ~span:16 ~seed:7 () ();
              done_ := true)))
  in
  (match mode with
  | Monolithic ->
      let dom0 =
        Hypervisor.create_domain h ~name:Dom0.name ~privileged:true
          (Dom0.body mach ~blk:[ chan ])
      in
      spawn_client dom0;
      ignore (Hypervisor.run h ~until:(fun () -> !done_))
  | Disaggregated ->
      let ts = Driver_dom.create () in
      let specs =
        [
          Driver_dom.spec ~name:Driver_dom.blk_name (fun ~restart () ->
              Driver_dom.blk_body mach ~connect_timeout ~generation:restart
                ~blk:[ chan ] ());
        ]
      in
      let _toolstack =
        Hypervisor.create_domain h ~name:Driver_dom.toolstack_name
          ~privileged:true
          (Driver_dom.toolstack_body mach ts ~period:sup_period specs)
      in
      ignore (Hypervisor.run h ~until:(fun () -> Driver_dom.built ts));
      spawn_client (Option.get (Driver_dom.domid ts Driver_dom.blk_name));
      ignore (Hypervisor.run h ~until:(fun () -> !done_));
      Driver_dom.stop ts;
      ignore (Hypervisor.run h));
  let infra =
    reliance (Accounts.to_list mach.Machine.accounts) ~client_accounts:[ "client" ]
  in
  let kloc = List.fold_left (fun acc n -> acc + kloc_of n) 0 infra in
  (infra, kloc)

(* --- the E14 storm with a fixed driver-domain fleet --- *)

type smp_kind = Smp_uk | Smp_dom0 | Smp_percore | Smp_fleet

let smp_kinds = [ Smp_uk; Smp_dom0; Smp_percore; Smp_fleet ]
let fleet_size = 3

let smp_label = function
  | Smp_uk -> "uk/pinned"
  | Smp_dom0 -> "vmm/single-dom0"
  | Smp_percore -> "vmm/per-core-drivers"
  | Smp_fleet -> Printf.sprintf "vmm/%d-domain-fleet" fleet_size

let smp_seed = 18L

type smp_run = { s_completed : int; s_wall : int64 }

let smp_case ~kind ~cores ~packets =
  match kind with
  | Smp_uk ->
      let cfg =
        { (Cluster.default ~placement:Cluster.Pinned ~cores ()) with
          Cluster.packets }
      in
      let r = Cluster.run ~seed:smp_seed cfg in
      { s_completed = r.Cluster.completed; s_wall = r.Cluster.wall }
  | Smp_dom0 | Smp_percore | Smp_fleet ->
      let backend =
        match kind with
        | Smp_dom0 -> Svmm.Single_dom0
        | Smp_percore -> Svmm.Driver_domains
        | _ -> Svmm.Fixed_domains fleet_size
      in
      let cfg = { (Svmm.default ~backend ~cores ()) with Svmm.packets } in
      let r = Svmm.run ~seed:smp_seed cfg in
      { s_completed = r.Svmm.completed; s_wall = r.Svmm.wall }

let smp_throughput r =
  if Int64.compare r.s_wall 0L <= 0 then 0.0
  else float_of_int r.s_completed *. 1e6 /. Int64.to_float r.s_wall

(* --- reporting --- *)

let show_latency = function
  | Some l -> Printf.sprintf "%Ld" l
  | None -> "-"

let blast_table rows =
  let table =
    Table.create
      ~header:
        [
          "stack";
          "killed";
          "blk ok";
          "blk lost";
          "blk stall";
          "blk recovery";
          "net rx";
          "net stall";
          "net recovery";
          "vnet rx";
          "vnet stall";
          "restarts";
          "reconnects";
          "finished";
        ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.b_label;
          r.b_target;
          string_of_int r.b_blk_completed;
          string_of_int r.b_blk_lost;
          Int64.to_string r.b_blk_stall;
          show_latency r.b_blk_recovery;
          string_of_int r.b_net_rx;
          Int64.to_string r.b_net_stall;
          show_latency r.b_net_recovery;
          string_of_int r.b_vnet_rx;
          Int64.to_string r.b_vnet_stall;
          string_of_int r.b_restarts;
          string_of_int r.b_reconnects;
          (if r.b_finished then "yes" else "NO");
        ])
    rows;
  table

let run ~quick =
  let ops = if quick then 16 else 32 in
  let packets = if quick then 24 else 48 in
  let vnet_count = if quick then 24 else 40 in
  (* Blast-radius runs. *)
  let disagg_base = xen_run ~quick ~mode:Disaggregated ~kill:false in
  let disagg_replay = xen_run ~quick ~mode:Disaggregated ~kill:false in
  let disagg = xen_run ~quick ~mode:Disaggregated ~kill:true in
  let mono = xen_run ~quick ~mode:Monolithic ~kill:true in
  let l4 = l4_run ~quick ~kill:true in
  (* TCB rerun. *)
  let mono_infra, mono_kloc = tcb_run ~quick ~mode:Monolithic in
  let disagg_infra, disagg_kloc = tcb_run ~quick ~mode:Disaggregated in
  (* Storm. *)
  let storm_packets = if quick then 240 else 640 in
  let core_counts = [ 1; 2; 4; 8 ] in
  let storm =
    List.map
      (fun cores ->
        ( cores,
          List.map
            (fun kind ->
              (kind, smp_case ~kind ~cores ~packets:storm_packets))
            smp_kinds ))
      core_counts
  in
  let tput ~cores ~kind =
    smp_throughput (List.assoc kind (List.assoc cores storm))
  in
  let scale kind = tput ~cores:8 ~kind /. tput ~cores:1 ~kind in
  (* Tables. *)
  let tcb_table =
    let t =
      Table.create
        ~header:
          [ "structure"; "measured reliance set"; "infra kLoC (lit.)"; "est. defects" ]
    in
    Table.add_row t
      [
        "xen (monolithic dom0)";
        String.concat " + " mono_infra;
        string_of_int mono_kloc;
        string_of_int (mono_kloc * defects_per_kloc);
      ];
    Table.add_row t
      [
        "xen (driver domains)";
        String.concat " + " disagg_infra;
        string_of_int disagg_kloc;
        string_of_int (disagg_kloc * defects_per_kloc);
      ];
    t
  in
  let storm_table =
    let t =
      Table.create
        ~header:
          ("cores" :: List.map (fun k -> smp_label k ^ " pkt/Mcyc") smp_kinds)
    in
    List.iter
      (fun (cores, row) ->
        Table.add_row t
          (string_of_int cores
          :: List.map (fun (_, r) -> Table.cellf "%.1f" (smp_throughput r)) row))
      storm;
    t
  in
  (* Verdicts. *)
  let clean r =
    r.b_finished && r.b_blk_completed = ops && r.b_blk_lost = 0
    && r.b_net_rx = packets && r.b_restarts = 0
  in
  let unaffected_blk r =
    r.b_blk_completed = ops && r.b_blk_lost = 0
    && Int64.compare r.b_blk_stall sup_period < 0
  in
  let show_stalls r =
    Printf.sprintf "%s: blk %d/%d ok, stall %Ld; net stall %Ld; %d restarts"
      r.b_label r.b_blk_completed ops r.b_blk_stall r.b_net_stall r.b_restarts
  in
  let recovery_ok r =
    r.b_finished && r.b_restarts >= 1 && r.b_net_generation >= 1
    && r.b_net_rx = packets
    && r.b_net_post > 0
    && match r.b_net_recovery with Some l -> Int64.compare l 0L > 0 | None -> false
  in
  (* Recovery on either Xen variant is detection-bounded: the frontend
     cannot notice the backend died before its io_timeout, and the
     supervisor/toolstack polls on sup_period. Restarting one driver
     domain must land in the same window as restarting all of Dom0 —
     anything slower would mean disaggregation taxed recovery. *)
  let detection_bound = Int64.add 1_500_000L sup_period in
  let within_window a b =
    match (a, b) with
    | Some a, Some b ->
        Int64.compare a detection_bound <= 0
        && Int64.compare b detection_bound <= 0
        && Int64.compare (Int64.abs (Int64.sub a b)) (Int64.div sup_period 2L)
           <= 0
    | _ -> false
  in
  {
    Experiment.tables =
      [
        ( "Blast radius: net backend killed at 4M cycles, everything else \
           watching",
          blast_table [ disagg_base; disagg; mono; l4 ] );
        ("Per-client storage TCB, monolithic vs disaggregated", tcb_table);
        ("E14 storm with driver-domain placement (pkt/Mcyc)", storm_table);
      ];
    verdicts =
      [
        Experiment.verdict
          ~claim:"the disaggregated stack is a working I/O fabric"
          ~expected:
            (Printf.sprintf
               "fault-free: %d net, %d blk, %d vnet ops complete across 3 \
                driver domains, no restarts"
               packets ops vnet_count)
          ~measured:
            (Printf.sprintf "net %d/%d, blk %d/%d, vnet %d/%d, %d restarts"
               disagg_base.b_net_rx packets disagg_base.b_blk_completed ops
               disagg_base.b_vnet_rx vnet_count disagg_base.b_restarts)
          (clean disagg_base && disagg_base.b_vnet_rx = vnet_count);
        Experiment.verdict
          ~claim:
            "killing the netback driver domain leaves block I/O and \
             non-dependent guests serving (§3.1 blast radius, now on the VMM \
             stack)"
          ~expected:
            "disaggregated: blk completes with no loss and stall < the 1M \
             supervision period; the vnet pair through the bridge delivers \
             everything"
          ~measured:
            (Printf.sprintf "blk %d/%d lost %d stall %Ld; vnet %d/%d stall %Ld"
               disagg.b_blk_completed ops disagg.b_blk_lost disagg.b_blk_stall
               disagg.b_vnet_rx vnet_count disagg.b_vnet_stall)
          (disagg.b_finished && unaffected_blk disagg
          && disagg.b_vnet_rx = vnet_count
          && Int64.compare disagg.b_vnet_stall sup_period < 0);
        Experiment.verdict
          ~claim:"the blast radius is strictly smaller than monolithic Dom0's"
          ~expected:
            "monolithic kill stalls the block path > 1M cycles and forces \
             both frontends through reconnect; disaggregated stalls blk less \
             than half that and reconnects only the net frontend"
          ~measured:
            (Printf.sprintf "%s | %s | reconnects %d vs %d"
               (show_stalls mono) (show_stalls disagg) mono.b_reconnects
               disagg.b_reconnects)
          (Int64.compare mono.b_blk_stall sup_period > 0
          && Int64.compare (Int64.mul disagg.b_blk_stall 2L) mono.b_blk_stall
             <= 0
          && mono.b_reconnects >= 2
          && disagg.b_reconnects = 1);
        Experiment.verdict
          ~claim:
            "the toolstack rebuilds the dead driver domain and the \
             generation-keyed reconnect recovers the net path in the same \
             detection-bounded window as restarting all of Dom0"
          ~expected:
            "disaggregated: 1 rebuild, netdrv generation 1, all packets \
             arrive, and both recoveries land within io_timeout + \
             sup_period of the kill, within sup_period/2 of each other"
          ~measured:
            (Printf.sprintf
               "rebuilds %d, generation %d, net %d/%d (%d post-kill), \
                recovery %s vs mono %s"
               disagg.b_restarts disagg.b_net_generation disagg.b_net_rx
               packets disagg.b_net_post
               (show_latency disagg.b_net_recovery)
               (show_latency mono.b_net_recovery))
          (recovery_ok disagg && disagg.b_restarts = 1
          && recovery_ok mono
          && within_window disagg.b_net_recovery mono.b_net_recovery);
        Experiment.verdict
          ~claim:
            "the microkernel shows the same shape: a killed net server is \
             respawned while the block client never notices (§3.1: 'exactly \
             the same situation as if a server fails in an L4-based system')"
          ~expected:
            "l4: watchdog respawns net-server, net client recovers, blk \
             client completes with no loss and stall < 1M"
          ~measured:
            (Printf.sprintf "respawns %d, net %d/%d recovery %s; blk %d/%d \
                             stall %Ld"
               l4.b_restarts l4.b_net_rx packets
               (show_latency l4.b_net_recovery) l4.b_blk_completed ops
               l4.b_blk_stall)
          (recovery_ok l4 && unaffected_blk l4);
        Experiment.verdict
          ~claim:
            "disaggregation finally shrinks the per-client TCB (E10 rerun: \
             Parallax could not, because Dom0 stayed on the path)"
          ~expected:
            "the storage client's reliance set swaps dom0 for \
             toolstack+blkdrv, >= 10x fewer kLoC"
          ~measured:
            (Printf.sprintf "{%s} %d kLoC vs {%s} %d kLoC"
               (String.concat ", " mono_infra)
               mono_kloc
               (String.concat ", " disagg_infra)
               disagg_kloc)
          (List.mem "dom0" mono_infra
          && (not (List.mem "dom0" disagg_infra))
          && List.mem "blkdrv" disagg_infra
          && List.mem "toolstack" disagg_infra
          && disagg_kloc * 10 <= mono_kloc);
        Experiment.verdict
          ~claim:
            "driver-domain placement lets the VMM stack track the \
             multi-server scaling curve in the E14 storm"
          ~expected:
            "per-core driver domains scale >= 70% of uk/pinned's 8-core \
             speedup; even a fixed 3-domain fleet beats single-dom0 at 8 \
             cores"
          ~measured:
            (Printf.sprintf
               "8-core speedups: uk %.2fx, per-core %.2fx, fleet %.2fx, \
                dom0 %.2fx"
               (scale Smp_uk) (scale Smp_percore) (scale Smp_fleet)
               (scale Smp_dom0))
          (scale Smp_percore >= 0.7 *. scale Smp_uk
          && tput ~cores:8 ~kind:Smp_fleet > tput ~cores:8 ~kind:Smp_dom0
          && scale Smp_fleet > scale Smp_dom0);
        Experiment.verdict
          ~claim:"the disaggregated stack stays deterministic"
          ~expected:
            "same seed, fault-free: bit-for-bit identical arrivals, op logs, \
             counters and cycle accounts"
          ~measured:
            (if disagg_base = disagg_replay then "two runs identical"
             else "runs diverged")
          (disagg_base = disagg_replay);
      ];
  }

let experiment =
  {
    Experiment.id = "e18";
    title = "Driver domains: disaggregating Dom0 and measuring the blast radius";
    paper_claim =
      "§3.1 argues a driver failure under a VMM 'only affects its clients — \
       exactly the same situation as if a server fails in an L4-based \
       system.' That only holds once Dom0 is disaggregated: E18 splits the \
       monolithic Dom0 into per-device driver domains under a thin \
       toolstack, kills the netback domain mid-storm, and measures what \
       else stalls — plus the E10 TCB and E14 scaling consequences the \
       paper predicts for this structure.";
    run;
  }
