module Table = Vmk_stats.Table
module Faults = Vmk_faults.Faults
module Migrate = Vmk_migrate.Migrate
module Mig_vmm = Vmk_migrate.Mig_vmm
module Mig_uk = Vmk_migrate.Mig_uk
module Image = Migrate.Image
module Workload = Migrate.Workload

(* Dirty-rate profiles: [hot] pages rewritten every step is the knob
   that decides whether pre-copy converges. *)
let w_lo = Workload.make ~hot:3 ~cold_every:24 ()
let w_hi = Workload.make ~hot:24 ~cold_every:4 ()

let profile_name w = if w == w_lo then "dirty-lo" else "dirty-hi"
let cfg_precopy = Migrate.precopy ~max_rounds:6 ~threshold:6 ()

let sizes ~quick = if quick then (32, 192) else (64, 480)

(* Every sequence number delivered exactly once across both sinks. *)
let exactly_once ~total ~src_log ~dst_log =
  List.sort compare (src_log @ dst_log) = List.init total Fun.id

let outcome_cells = function
  | Migrate.Completed { c_rounds; c_pages; c_downtime } ->
      ("completed", string_of_int c_rounds, string_of_int c_pages,
       Printf.sprintf "%Ld" c_downtime)
  | Migrate.Aborted { a_phase; a_reason } ->
      ( Printf.sprintf "aborted@%s" (Migrate.phase_name a_phase),
        "-", "-", Printf.sprintf "(%s)" (Migrate.reason_name a_reason) )

(* --- the convergence sweep --- *)

type sweep_row = {
  sw_stack : string;
  sw_profile : string;
  sw_mode : string;
  sw_outcome : Migrate.outcome;
  sw_replay_ok : bool;
  sw_packets_ok : bool;
  sw_faults : int;  (** log-dirty protection faults on the source *)
}

let vmm_sweep_one ~pages ~steps ~w ~cfg ~mode =
  let r = Mig_vmm.migrate ~pages ~steps ~w ~cfg () in
  let reference = Mig_vmm.reference ~pages ~steps ~w () in
  {
    sw_stack = "VMM";
    sw_profile = profile_name w;
    sw_mode = mode;
    sw_outcome = r.Mig_vmm.r_outcome;
    sw_replay_ok =
      r.Mig_vmm.r_survivor = `Dst && Image.equal r.Mig_vmm.r_image reference;
    sw_packets_ok =
      exactly_once ~total:r.Mig_vmm.r_total_sends
        ~src_log:r.Mig_vmm.r_src_log ~dst_log:r.Mig_vmm.r_dst_log;
    sw_faults = r.Mig_vmm.r_logdirty_faults;
  }

let uk_sweep_one ~pages ~steps ~w ~cfg ~mode =
  let r = Mig_uk.migrate ~pages ~steps ~w ~cfg () in
  let reference = Mig_vmm.reference ~pages ~steps ~w () in
  ( {
      sw_stack = "L4";
      sw_profile = profile_name w;
      sw_mode = mode;
      sw_outcome = r.Mig_uk.r_outcome;
      sw_replay_ok =
        r.Mig_uk.r_survivor = `Dst && Image.equal r.Mig_uk.r_image reference;
      sw_packets_ok =
        exactly_once ~total:r.Mig_uk.r_total_sends ~src_log:r.Mig_uk.r_src_log
          ~dst_log:r.Mig_uk.r_dst_log;
      sw_faults = r.Mig_uk.r_logdirty_faults;
    },
    r )

let sweep_table rows =
  let t =
    Table.create
      ~header:
        [
          "stack"; "dirty profile"; "mode"; "outcome"; "rounds";
          "pages copied"; "downtime (cyc)"; "replay bit-for-bit";
          "packets exactly-once"; "logdirty faults";
        ]
  in
  List.iter
    (fun r ->
      let outcome, rounds, pages, downtime = outcome_cells r.sw_outcome in
      Table.add_row t
        [
          r.sw_stack; r.sw_profile; r.sw_mode; outcome; rounds; pages;
          downtime;
          (if r.sw_replay_ok then "yes" else "NO");
          (if r.sw_packets_ok then "yes" else "NO");
          string_of_int r.sw_faults;
        ])
    rows;
  t

(* --- the kill matrix --- *)

type kill_row = {
  kr_stack : string;
  kr_inject : string;
  kr_outcome : Migrate.outcome;
  kr_one_copy : bool;
      (** Exactly one live consistent copy: the survivor's image equals
          the uninterrupted reference and no packet was lost or
          duplicated across the two sinks. *)
}

let phases = [ Migrate.Setup; Precopy 0; Precopy 1; Stopcopy; Commit ]
let reasons = [ Migrate.Src_dead; Dst_reject; Link_drop ]

let vmm_kill_one ~pages ~steps ~w ?abort_at ?plan ~label () =
  let r = Mig_vmm.migrate ~pages ~steps ~w ~cfg:cfg_precopy ?abort_at ?plan () in
  let reference = Mig_vmm.reference ~pages ~steps ~w () in
  let consistent = Image.equal r.Mig_vmm.r_image reference in
  let conserved =
    exactly_once ~total:r.Mig_vmm.r_total_sends ~src_log:r.Mig_vmm.r_src_log
      ~dst_log:r.Mig_vmm.r_dst_log
  in
  let one_copy =
    match r.Mig_vmm.r_outcome with
    | Migrate.Aborted _ ->
        (* Rollback: destination never ran, source finished the job. *)
        r.Mig_vmm.r_survivor = `Src
        && r.Mig_vmm.r_dst_log = []
        && consistent && conserved
    | Migrate.Completed _ ->
        (* Switch-over: source destroyed, destination finished. *)
        r.Mig_vmm.r_survivor = `Dst
        && (not r.Mig_vmm.r_src_guest_alive)
        && consistent && conserved
  in
  {
    kr_stack = "VMM";
    kr_inject = label;
    kr_outcome = r.Mig_vmm.r_outcome;
    kr_one_copy = one_copy;
  }

let uk_kill_one ~pages ~steps ~w ?abort_at ?plan ~label () =
  let r = Mig_uk.migrate ~pages ~steps ~w ~cfg:cfg_precopy ?abort_at ?plan () in
  let reference = Mig_vmm.reference ~pages ~steps ~w () in
  let consistent = Image.equal r.Mig_uk.r_image reference in
  let conserved =
    exactly_once ~total:r.Mig_uk.r_total_sends ~src_log:r.Mig_uk.r_src_log
      ~dst_log:r.Mig_uk.r_dst_log
  in
  let one_copy =
    match r.Mig_uk.r_outcome with
    | Migrate.Aborted _ ->
        r.Mig_uk.r_survivor = `Src
        && r.Mig_uk.r_dst_log = []
        && consistent && conserved
    | Migrate.Completed _ ->
        r.Mig_uk.r_survivor = `Dst
        && (not r.Mig_uk.r_src_task_alive)
        && consistent && conserved
  in
  {
    kr_stack = "L4";
    kr_inject = label;
    kr_outcome = r.Mig_uk.r_outcome;
    kr_one_copy = one_copy;
  }

let kill_table rows =
  let t =
    Table.create ~header:[ "stack"; "injected failure"; "outcome"; "exactly one live copy" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.kr_stack;
          r.kr_inject;
          Format.asprintf "%a" Migrate.pp_outcome r.kr_outcome;
          (if r.kr_one_copy then "yes" else "NO");
        ])
    rows;
  t

(* --- driver-domain handoff under storm --- *)

let handoff_table (rows : Mig_vmm.handoff list) =
  let t =
    Table.create
      ~header:
        [
          "mode"; "packets"; "delivered"; "retries"; "outage (cyc)";
          "frontend generation"; "storm packets through";
        ]
  in
  List.iter
    (fun (r : Mig_vmm.handoff) ->
      Table.add_row t
        [
          (match r.Mig_vmm.ho_mode with
          | `Planned -> "planned handoff"
          | `Crash -> "crash + restart");
          string_of_int r.Mig_vmm.ho_sent;
          string_of_int r.Mig_vmm.ho_received;
          string_of_int r.Mig_vmm.ho_retries;
          Printf.sprintf "%Ld" r.Mig_vmm.ho_outage;
          string_of_int r.Mig_vmm.ho_generation;
          string_of_int r.Mig_vmm.ho_storm_received;
        ])
    rows;
  t

let run ~quick =
  let pages, steps = sizes ~quick in
  (* 1. Convergence sweep: pre-copy vs stop-and-copy at both dirty
     rates, on both stacks. *)
  let vmm_rows =
    [
      vmm_sweep_one ~pages ~steps ~w:w_lo ~cfg:cfg_precopy ~mode:"precopy";
      vmm_sweep_one ~pages ~steps ~w:w_hi ~cfg:cfg_precopy ~mode:"precopy";
      vmm_sweep_one ~pages ~steps ~w:w_lo ~cfg:Migrate.stop_and_copy
        ~mode:"stop-and-copy";
      vmm_sweep_one ~pages ~steps ~w:w_hi ~cfg:Migrate.stop_and_copy
        ~mode:"stop-and-copy";
    ]
  in
  let uk_lo, uk_lo_r = uk_sweep_one ~pages ~steps ~w:w_lo ~cfg:cfg_precopy ~mode:"precopy" in
  let uk_hi, _ = uk_sweep_one ~pages ~steps ~w:w_hi ~cfg:cfg_precopy ~mode:"precopy" in
  let uk_sc, _ =
    uk_sweep_one ~pages ~steps ~w:w_lo ~cfg:Migrate.stop_and_copy
      ~mode:"stop-and-copy"
  in
  let uk_rows = [ uk_lo; uk_hi; uk_sc ] in
  (* 2. Kill matrix: every phase x every failure mode, plus a
     time-scheduled Mig_fault through the Faults plan machinery. *)
  let vmm_kills =
    List.concat_map
      (fun p ->
        List.map
          (fun rsn ->
            vmm_kill_one ~pages ~steps ~w:w_lo ~abort_at:(p, rsn)
              ~label:
                (Printf.sprintf "%s @ %s" (Migrate.reason_name rsn)
                   (Migrate.phase_name p))
              ())
          reasons)
      phases
  in
  let uk_kills =
    List.map
      (fun p ->
        uk_kill_one ~pages ~steps ~w:w_lo ~abort_at:(p, Migrate.Src_dead)
          ~label:(Printf.sprintf "src-dead @ %s" (Migrate.phase_name p))
          ())
      phases
  in
  (* Time-scheduled faults through the Faults plan machinery: probe the
     deterministic migration window first, then re-run the same seed
     with a Mig_fault aimed at its midpoint. *)
  let mid (a, b) = Int64.div (Int64.add a b) 2L in
  let probe_vmm = Mig_vmm.migrate ~pages ~steps ~w:w_lo ~cfg:cfg_precopy () in
  let vmm_mid = mid probe_vmm.Mig_vmm.r_window in
  let timed_vmm =
    vmm_kill_one ~pages ~steps ~w:w_lo
      ~plan:
        [ Faults.Mig_fault { mig_at = vmm_mid; mig_action = Faults.Mig_link_drop } ]
      ~label:(Printf.sprintf "link-drop @ t=%Ld (Faults plan)" vmm_mid)
      ()
  in
  let probe_uk = Mig_uk.migrate ~pages ~steps ~w:w_lo ~cfg:cfg_precopy () in
  let uk_mid = mid probe_uk.Mig_uk.r_window in
  let timed_uk =
    uk_kill_one ~pages ~steps ~w:w_lo
      ~plan:
        [ Faults.Mig_fault { mig_at = uk_mid; mig_action = Faults.Mig_src_dead } ]
      ~label:(Printf.sprintf "src-dead @ t=%Ld (Faults plan)" uk_mid)
      ()
  in
  let kills = vmm_kills @ [ timed_vmm ] @ uk_kills @ [ timed_uk ] in
  (* 3. Driver-domain handoff under the packet storm. *)
  let packets = if quick then 32 else 64 in
  let planned = Mig_vmm.driver_handoff ~mode:`Planned ~storm:true ~packets () in
  let crash = Mig_vmm.driver_handoff ~mode:`Crash ~storm:true ~packets () in
  (* 4. Determinism: the whole migration — protocol, faults, packet
     logs — replays identically from the same seed. *)
  let det_a = Mig_vmm.migrate ~pages ~steps ~w:w_lo ~cfg:cfg_precopy () in
  let det_b = Mig_vmm.migrate ~pages ~steps ~w:w_lo ~cfg:cfg_precopy () in
  let deterministic = det_a = det_b in
  let pre_lo = List.nth vmm_rows 0 in
  let pre_hi = List.nth vmm_rows 1 in
  let sc_lo = List.nth vmm_rows 2 in
  let sc_hi = List.nth vmm_rows 3 in
  let downtime_of r =
    match r.sw_outcome with
    | Migrate.Completed { c_downtime; _ } -> c_downtime
    | Migrate.Aborted _ -> Int64.max_int
  in
  let pages_of r =
    match r.sw_outcome with
    | Migrate.Completed { c_pages; _ } -> c_pages
    | Migrate.Aborted _ -> max_int
  in
  let rounds_of r =
    match r.sw_outcome with
    | Migrate.Completed { c_rounds; _ } -> c_rounds
    | Migrate.Aborted _ -> max_int
  in
  let all_replay =
    List.for_all (fun r -> r.sw_replay_ok && r.sw_packets_ok)
      (vmm_rows @ uk_rows)
  in
  {
    Experiment.tables =
      [
        ("Pre-copy vs stop-and-copy (VMM stack)", sweep_table vmm_rows);
        ("Pre-copy vs stop-and-copy (microkernel stack)", sweep_table uk_rows);
        ("Mid-migration failure injection", kill_table kills);
        ( "Driver-domain handoff under packet storm",
          handoff_table [ planned; crash ] );
      ];
    verdicts =
      [
        Experiment.verdict
          ~claim:
            "pre-copy converges at low dirty rates: a handful of rounds and \
             a downtime far below stop-and-copy's copy-everything blackout"
          ~expected:
            "precopy/dirty-lo completes in <= max rounds with downtime < \
             stop-and-copy's, on both stacks"
          ~measured:
            (Printf.sprintf
               "VMM precopy-lo: %Ld cyc downtime in %d rounds vs \
                stop-and-copy %Ld; L4 precopy-lo: %Ld vs %Ld"
               (downtime_of pre_lo) (rounds_of pre_lo) (downtime_of sc_lo)
               (downtime_of uk_lo) (downtime_of uk_sc))
          (downtime_of pre_lo < downtime_of sc_lo
          && downtime_of uk_lo < downtime_of uk_sc
          && rounds_of pre_lo <= cfg_precopy.Migrate.max_rounds + 2);
        Experiment.verdict
          ~claim:
            "at high dirty rates pre-copy stops converging: the round budget \
             runs out and the total pages copied exceed stop-and-copy's \
             one-pass bill"
          ~expected:
            "precopy/dirty-hi copies more total pages than stop-and-copy \
             while stop-and-copy's page bill is flat across dirty rates"
          ~measured:
            (Printf.sprintf
               "VMM precopy-hi copied %d pages vs stop-and-copy %d (image %d \
                pages)"
               (pages_of pre_hi) (pages_of sc_hi) pages)
          (pages_of pre_hi > pages_of sc_hi && pages_of sc_hi <= pages + 8);
        Experiment.verdict
          ~claim:
            "a migrated guest replays bit-for-bit: the restored image equals \
             the uninterrupted run and every packet arrives exactly once \
             across both machines' sinks (both stacks)"
          ~expected:
            "image equality + sequence-log conservation on every completed \
             row; L4 capability handles re-established through the pager"
          ~measured:
            (Printf.sprintf
               "%d/%d rows replay ok; L4 handles src=%d dst=%d"
               (List.length
                  (List.filter (fun r -> r.sw_replay_ok) (vmm_rows @ uk_rows)))
               (List.length (vmm_rows @ uk_rows))
               uk_lo_r.Mig_uk.r_handles_src uk_lo_r.Mig_uk.r_handles_dst)
          (all_replay
          && uk_lo_r.Mig_uk.r_handles_src = uk_lo_r.Mig_uk.r_handles_dst
          && uk_lo_r.Mig_uk.r_handles_src = pages);
        Experiment.verdict
          ~claim:
            "a failure injected at any protocol phase resolves to exactly \
             one live consistent copy — never both, never neither"
          ~expected:
            "every (phase x failure) cell: abort-and-rollback to a source \
             that finishes identically, or completion on the destination \
             with the source destroyed"
          ~measured:
            (Printf.sprintf "%d/%d injections resolved to one copy"
               (List.length (List.filter (fun r -> r.kr_one_copy) kills))
               (List.length kills))
          (List.for_all (fun r -> r.kr_one_copy) kills);
        Experiment.verdict
          ~claim:
            "migrating a driver domain is a planned handoff: building the \
             successor before destroying the incumbent shrinks the client \
             outage versus crash-restart, even under a packet storm"
          ~expected:
            "planned outage < crash outage; all client packets delivered \
             exactly once either way"
          ~measured:
            (Printf.sprintf
               "planned: %Ld cyc outage, %d/%d delivered; crash: %Ld cyc, \
                %d/%d"
               planned.Mig_vmm.ho_outage planned.Mig_vmm.ho_received packets
               crash.Mig_vmm.ho_outage crash.Mig_vmm.ho_received packets)
          (planned.Mig_vmm.ho_outage < crash.Mig_vmm.ho_outage
          && planned.Mig_vmm.ho_received = packets
          && crash.Mig_vmm.ho_received = packets);
        Experiment.verdict ~claim:"the whole migration is deterministic"
          ~expected:
            "two identical runs produce identical outcomes, images, packet \
             logs and counters"
          ~measured:(if deterministic then "identical" else "DIVERGED")
          deterministic;
      ];
  }

let experiment =
  {
    Experiment.id = "e20";
    title = "Live migration and checkpoint/restore with mid-migration faults";
    paper_claim =
      "§4: the VMM's 'complete encapsulation of a software stack in a \
       virtual machine' is what makes migration and checkpointing natural; \
       microkernels must reconstruct the equivalent from task state, \
       mappings and capabilities. E20 builds pre-copy live migration and \
       checkpoint/restore on both stacks and stress-tests the claim where \
       it bites: mid-migration failure must leave exactly one live \
       consistent copy.";
    run;
  }
