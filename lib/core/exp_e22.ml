(* E22 — the million-flow day: datacenter-scale open-loop traffic on
   both stacks.

   Every earlier experiment swept 2-8 guests with uniform closed-loop
   load. The paper's structural argument — one privileged Dom0 bridge
   versus a multi-server microkernel with per-core net servers — only
   bites at scale, and there it is the *tail* that separates the two
   architectures long before the means do. This experiment offers both
   stacks the same heavy-tailed day:

   - a Scenario schedule (Zipf flow sizes x Poisson arrivals x on/off
     tenants x diurnal ramp) generated once per seed and replayed
     OPEN-LOOP: arrival times never back off when the fabric congests,
     so overload lands as queueing delay and loss at the sink;
   - an 8-core Smp machine where the VMM funnels every packet through a
     single Dom0 netback shard on core 0 (grant check + page flip under
     the global grant lock), while the microkernel runs one net-server
     shard per core, paying IPC per packet plus a shared mapdb lock —
     the same cost recipes as the E14 storm models;
   - per-shard streaming quantile sketches (fixed memory, exactly
     mergeable) for per-packet latency and per-flow completion excess,
     merged at the end for the global p50/p99/p999 — no O(n) sample
     buffers anywhere on the hot path;
   - E15 admission (per-shard token bucket) and E17 weighted fair share
     (per-tenant buckets) composed in the "policied" mode, which also
     closes the ROADMAP carry-over: the E15 admission shapes rerun on
     the 8-core SMP machine as the knee-sweep axis below.

   Server/doorbell protocol: each shard owns a bounded ingress queue
   (plain data, no Smp mailbox per packet — mailbox insertion is O(n)).
   The injector posts a doorbell IPI only when the shard was parked in
   [recv] with an empty queue, so interrupts coalesce exactly like the
   E16 NAPI path; parking is race-free because no engine event can fire
   between the empty-check and the recv (both happen inside the fiber
   with no intervening effect). *)

module Machine = Vmk_hw.Machine
module Cpu = Vmk_hw.Cpu
module Arch = Vmk_hw.Arch
module Engine = Vmk_sim.Engine
module Counter = Vmk_trace.Counter
module Accounts = Vmk_trace.Accounts
module Table = Vmk_stats.Table
module Sketch = Vmk_stats.Quantile.Sketch
module Smp = Vmk_smp.Smp
module Scenario = Vmk_workloads.Scenario
module Vnet = Vmk_vnet.Vnet
module Token_bucket = Vmk_overload.Overload.Token_bucket
module Bounded_queue = Vmk_overload.Overload.Bounded_queue
module Weighted_buckets = Vmk_overload.Overload.Weighted_buckets
module Vcosts = Vmk_vmm.Costs
module Ucosts = Vmk_ukernel.Costs

type stack = Vmm | Uk

let stack_name = function Vmm -> "vmm" | Uk -> "uk"

type mode = Naive | Policied

let mode_name = function Naive -> "naive" | Policied -> "policied"

(* --- per-packet fabric costs (mirrors the E14 smp storm models) --- *)

let netback_work = 400 (* Dom0 netback per-packet driver work *)
let driver_work = 600 (* uk net-server per-packet driver work *)
let service_batch = 16 (* packets serviced per dispatch (E16 batching) *)

type costs = {
  c_free : int; (* per-packet work outside any shared lock *)
  c_locked : int; (* per-packet critical section under the shared lock *)
  c_irq : int; (* doorbell interrupt billed to the serving core *)
}

let costs_of ~stack (arch : Arch.profile) =
  match stack with
  | Vmm ->
      (* netback + event channel outside the lock; grant check + page
         flip (two PT updates) under the global grant-table lock. *)
      let flip = Vcosts.page_flip_fixed + (2 * arch.Arch.pt_update_cost) in
      {
        c_free = netback_work + Vcosts.evtchn_send;
        c_locked = Vcosts.grant_check + flip;
        c_irq = arch.Arch.irq_entry_cost + Vcosts.irq_route;
      }
  | Uk ->
      (* driver + IPC + map on the shard's own core; only the mapdb
         update is under the shared lock. *)
      {
        c_free = driver_work + Ucosts.ipc_path + arch.Arch.page_map_cost;
        c_locked = 2 * arch.Arch.pt_update_cost;
        c_irq = arch.Arch.irq_entry_cost + Ucosts.irq_to_ipc;
      }

let decision_cost = Vnet.flow_hit_cost + Vnet.enqueue_cost

let svc_cycles ~stack arch =
  let c = costs_of ~stack arch in
  c.c_free + c.c_locked + decision_cost

(* The VMM's single-core cycles/packet is the capacity anchor all
   scenario rates are expressed against ("1.3x" = 30% over what one
   Dom0 core can forward). *)
let vmm_cap_cycles arch = svc_cycles ~stack:Vmm arch

(* --- scenario sizing helpers --- *)

let mean_mult ramp =
  let n = Array.length ramp in
  let acc = ref 0.0 in
  Array.iteri
    (fun i (start, mult) ->
      let stop = if i + 1 < n then fst ramp.(i + 1) else 1.0 in
      acc := !acc +. ((stop -. start) *. mult))
    ramp;
  !acc

(* Mean of the discretised bounded power law on [lo, hi] (alpha <> 1, 2):
   the closed form of the continuous truncated Pareto, good enough for
   rate budgeting (the verdicts measure, they do not assume). *)
let pareto_mean ~alpha ~lo ~hi =
  let flo = float_of_int lo and fhi = float_of_int (hi + 1) in
  let a1 = 1.0 -. alpha and a2 = 2.0 -. alpha in
  let c = a1 /. ((fhi ** a1) -. (flo ** a1)) in
  c *. ((fhi ** a2) -. (flo ** a2)) /. a2

(* --- one cell: a schedule run against one stack in one mode --- *)

type cell = {
  l_stack : stack;
  l_mode : mode;
  l_flows : int;
  l_injected : int; (* packets offered at the ingress *)
  l_delivered : int;
  l_fair_shed : int; (* per-tenant weighted-bucket sheds (E17) *)
  l_tb_shed : int; (* per-shard token-bucket sheds (E15) *)
  l_drops : int; (* bounded-queue rejects (ring overflow) *)
  l_pkt : Sketch.t; (* merged per-packet latency *)
  l_peak : Sketch.t; (* same, packets injected during peak segments *)
  l_flow : Sketch.t; (* merged per-flow completion excess *)
  l_timely_pkts : int;
  l_flows_done : int;
  l_flows_timely : int;
  l_flows_failed : int; (* >= 1 packet shed or dropped *)
  l_tenant_flows : int array;
  l_tenant_timely : int array;
  l_tenant_sk : Sketch.t array; (* per-tenant flow excess *)
  l_wall : int64;
  l_lock_contended : int;
  l_lock_spin : int64;
  l_clean : bool; (* run went Idle (drained), not Rounds *)
  l_fp : int; (* bit-for-bit replay fingerprint *)
}

type shard = {
  sh_q : int Bounded_queue.t;
  sh_tb : Token_bucket.t option;
  sh_sw : Vnet.Switch.t;
  sh_sw_burn : int ref;
  sh_scratch : int array;
  sh_cpu : Cpu.t;
  mutable sh_tid : Smp.tid;
  mutable sh_parked : bool;
  sh_pkt : Sketch.t;
  sh_peak : Sketch.t;
  sh_flow : Sketch.t;
  mutable sh_delivered : int;
}

let flow_bits = 22
let flow_mask = (1 lsl flow_bits) - 1

let run_cell ~stack ~mode ~sched ?(seed = 220L) ?(pkt_gap = 400)
    ?(budget = 100_000) ?(weights = []) () =
  let cfg = Scenario.config sched in
  let guests = cfg.Scenario.guests and tenants = cfg.Scenario.tenants in
  let mach = Machine.create ~cpus:8 ~seed () in
  let engine = mach.Machine.engine in
  let arch = mach.Machine.arch in
  let smp = Smp.create mach in
  let nshards = match stack with Vmm -> 1 | Uk -> Machine.ncpus mach in
  let c = costs_of ~stack arch in
  let svc = svc_cycles ~stack arch in
  let lock =
    Smp.lock_create smp ~name:(match stack with Vmm -> "gnt" | Uk -> "mapdb")
  in
  (* Admission (Policied): per-tenant fair share provisioned at ~90% of
     aggregate fabric capacity, plus a per-shard token bucket at ~95% of
     the shard's service rate — the E15/E17 shapes on the SMP machine. *)
  let fair =
    match mode with
    | Naive -> None
    | Policied ->
        let period =
          Int64.of_int (max 1 (tenants * svc * 110 / (100 * nshards)))
        in
        let fb =
          Weighted_buckets.create ~counters:mach.Machine.counters ~period
            ~burst:32 ()
        in
        List.iter (fun (tn, w) -> Weighted_buckets.set_weight fb ~key:tn w) weights;
        Some fb
  in
  let qcap = match mode with Naive -> 1 lsl 19 | Policied -> 512 in
  let nflows = Scenario.flows sched in
  let rem = Array.make nflows 0 in
  for f = 0 to nflows - 1 do
    rem.(f) <- Scenario.size sched f
  done;
  let horizon_f = Int64.to_float cfg.Scenario.horizon in
  let peak_of t0 =
    Scenario.ramp_mult cfg ~frac:(float_of_int t0 /. horizon_f) >= 0.95
  in
  let timely_pkts = ref 0
  and flows_done = ref 0
  and flows_timely = ref 0
  and flows_failed = ref 0 in
  let tenant_flows = Array.make tenants 0
  and tenant_timely = Array.make tenants 0 in
  let tenant_sk = Array.init tenants (fun _ -> Sketch.create ()) in
  for f = 0 to nflows - 1 do
    let tn = Scenario.tenant sched f in
    tenant_flows.(tn) <- tenant_flows.(tn) + 1
  done;
  let make_shard i =
    let sw_burn = ref 0 in
    let sw =
      Vnet.Switch.create ~counters:mach.Machine.counters
        ~burn:(fun cy -> sw_burn := !sw_burn + cy)
        ()
    in
    for p = 1 to guests do
      ignore (Vnet.Switch.add_port sw ~id:p)
    done;
    (* Learn every source MAC up front so the measured path is the
       flow-cache fast path, then drain the warm-up deliveries. *)
    for src = 1 to guests do
      let dst = (src mod guests) + 1 in
      ignore (Vnet.Switch.forward_to sw ~now:0L ~in_port:src ~src ~dst ~len:512 ~tag:0)
    done;
    for p = 1 to guests do
      while Vnet.Switch.discard sw ~port:p do
        ()
      done
    done;
    sw_burn := 0;
    let tb =
      match mode with
      | Naive -> None
      | Policied ->
          Some
            (Token_bucket.create
               ~period:(Int64.of_int (svc * 105 / 100))
               ~burst:16 ())
    in
    {
      sh_q = Bounded_queue.create ~capacity:qcap ();
      sh_tb = tb;
      sh_sw = sw;
      sh_sw_burn = sw_burn;
      sh_scratch = Array.make service_batch 0;
      sh_cpu = Machine.cpu mach i;
      sh_tid = -1;
      sh_parked = false;
      sh_pkt = Sketch.create ();
      sh_peak = Sketch.create ();
      sh_flow = Sketch.create ();
      sh_delivered = 0;
    }
  in
  let shards = Array.init nshards make_shard in
  let record_delivery s now_i packed =
    let t0 = packed lsr flow_bits and f = packed land flow_mask in
    let lat = now_i - t0 in
    Sketch.add s.sh_pkt lat;
    if peak_of t0 then Sketch.add s.sh_peak lat;
    if lat <= budget then incr timely_pkts;
    s.sh_delivered <- s.sh_delivered + 1;
    let r = rem.(f) in
    if r > 0 then begin
      rem.(f) <- r - 1;
      if r = 1 then begin
        let tn = Scenario.tenant sched f in
        let ideal =
          Scenario.at sched f + ((Scenario.size sched f - 1) * pkt_gap)
        in
        let excess = max 0 (now_i - ideal) in
        Sketch.add s.sh_flow excess;
        Sketch.add tenant_sk.(tn) excess;
        incr flows_done;
        if excess <= budget then begin
          incr flows_timely;
          tenant_timely.(tn) <- tenant_timely.(tn) + 1
        end
      end
    end
  in
  let rec serve s =
    let n = ref 0 in
    s.sh_sw_burn := 0;
    while !n < service_batch && not (Bounded_queue.is_empty s.sh_q) do
      match Bounded_queue.pop s.sh_q with
      | Some packed ->
          s.sh_scratch.(!n) <- packed;
          let f = packed land flow_mask in
          let src = Scenario.src sched f and dst = Scenario.dst sched f in
          ignore
            (Vnet.Switch.forward_to s.sh_sw ~now:s.sh_cpu.Cpu.now ~in_port:src
               ~src ~dst ~len:512 ~tag:f);
          ignore (Vnet.Switch.discard s.sh_sw ~port:dst);
          incr n
      | None -> ()
    done;
    if !n = 0 then begin
      (* Queue empty. No engine event can run between this check and the
         recv (no effect in between), so the doorbell cannot be lost. *)
      s.sh_parked <- true;
      ignore (Smp.recv ());
      s.sh_parked <- false
    end
    else begin
      Smp.burn ((!n * c.c_free) + !(s.sh_sw_burn));
      Smp.locked lock ~cycles:(!n * c.c_locked);
      let now_i = Int64.to_int s.sh_cpu.Cpu.now in
      for k = 0 to !n - 1 do
        record_delivery s now_i s.sh_scratch.(k)
      done
    end;
    serve s
  in
  Array.iteri
    (fun i s ->
      let name =
        match stack with
        | Vmm -> "dom0.netback"
        | Uk -> Printf.sprintf "net%d" i
      in
      s.sh_tid <- Smp.spawn smp ~name ~cpu:i (fun () -> serve s))
    shards;
  (* --- open-loop injection: replay the schedule's absolute times --- *)
  let injected = ref 0
  and drops = ref 0
  and tb_shed = ref 0
  and fair_shed = ref 0 in
  let fail_flow f =
    if rem.(f) > 0 then begin
      rem.(f) <- -1;
      incr flows_failed
    end
  in
  let inject_pkt f =
    incr injected;
    let now = Engine.now engine in
    let ok_fair =
      match fair with
      | None -> true
      | Some fb -> Weighted_buckets.admit fb ~key:(Scenario.tenant sched f) ~now
    in
    if not ok_fair then begin
      incr fair_shed;
      fail_flow f
    end
    else begin
      let dst = Scenario.dst sched f in
      let s =
        shards.(match stack with Vmm -> 0 | Uk -> (dst - 1) mod nshards)
      in
      let ok_tb =
        match s.sh_tb with
        | None -> true
        | Some tb -> Token_bucket.admit tb ~now
      in
      if not ok_tb then begin
        incr tb_shed;
        fail_flow f
      end
      else
        match
          Bounded_queue.push s.sh_q ~now
            ((Int64.to_int now lsl flow_bits) lor f)
        with
        | Bounded_queue.Accepted ->
            if s.sh_parked && Bounded_queue.length s.sh_q = 1 then
              Smp.post smp ~irq_cost:c.c_irq ~dst:s.sh_tid 0
        | Bounded_queue.Rejected ->
            incr drops;
            fail_flow f
        | Bounded_queue.Displaced _ | Bounded_queue.Retry_until _ ->
            assert false (* Reject policy only *)
    end
  in
  let gap64 = Int64.of_int pkt_gap in
  let rec chain f seq at =
    Engine.at engine at (fun () ->
        inject_pkt f;
        if seq + 1 < Scenario.size sched f then
          chain f (seq + 1) (Int64.add at gap64))
  in
  let rec walk i =
    if i < nflows then
      Engine.at engine
        (Int64.of_int (Scenario.at sched i))
        (fun () ->
          inject_pkt i;
          if Scenario.size sched i > 1 then
            chain i 1 (Int64.add (Int64.of_int (Scenario.at sched i)) gap64);
          walk (i + 1))
  in
  walk 0;
  let max_rounds =
    (Int64.to_int cfg.Scenario.horizon / 1000 * 8) + 4_000_000
  in
  let stop = Smp.run ~max_rounds smp in
  (* --- merge the per-shard sketches (the mergeability payoff) --- *)
  let pkt = Sketch.create ()
  and peak = Sketch.create ()
  and flow = Sketch.create () in
  Array.iter
    (fun s ->
      Sketch.merge_into ~into:pkt s.sh_pkt;
      Sketch.merge_into ~into:peak s.sh_peak;
      Sketch.merge_into ~into:flow s.sh_flow)
    shards;
  let delivered = Array.fold_left (fun a s -> a + s.sh_delivered) 0 shards in
  let wall = Machine.now mach in
  let fp =
    Hashtbl.hash
      [
        Int64.to_int wall;
        !injected;
        delivered;
        !fair_shed;
        !tb_shed;
        !drops;
        !timely_pkts;
        !flows_done;
        !flows_timely;
        Sketch.fingerprint pkt;
        Sketch.fingerprint flow;
        Hashtbl.hash (Counter.to_list mach.Machine.counters);
        Hashtbl.hash (Accounts.to_list mach.Machine.accounts);
        Scenario.fingerprint sched;
      ]
  in
  {
    l_stack = stack;
    l_mode = mode;
    l_flows = nflows;
    l_injected = !injected;
    l_delivered = delivered;
    l_fair_shed = !fair_shed;
    l_tb_shed = !tb_shed;
    l_drops = !drops;
    l_pkt = pkt;
    l_peak = peak;
    l_flow = flow;
    l_timely_pkts = !timely_pkts;
    l_flows_done = !flows_done;
    l_flows_timely = !flows_timely;
    l_flows_failed = !flows_failed;
    l_tenant_flows = tenant_flows;
    l_tenant_timely = tenant_timely;
    l_tenant_sk = tenant_sk;
    l_wall = wall;
    l_lock_contended = Smp.lock_contended lock;
    l_lock_spin = Smp.lock_spin_cycles lock;
    l_clean = (match stop with Smp.Rounds -> false | _ -> true);
    l_fp = fp;
  }

(* --- scenario builders --- *)

let arch_profile = (Machine.create ~seed:1L ()).Machine.arch

let day_sched ~quick ?(seed = 22L) () =
  let flows_target = if quick then 20_000 else 1_050_000 in
  let tenants = 32 and guests = 8 in
  let alpha = 2.6 and size_min = 1 and size_max = 2048 in
  let on_mean = 300_000.0 and off_mean = 100_000.0 in
  let duty = on_mean /. (on_mean +. off_mean) in
  let ramp = Scenario.diurnal in
  let msize = pareto_mean ~alpha ~lo:size_min ~hi:size_max in
  let cap = float_of_int (vmm_cap_cycles arch_profile) in
  (* Peak offered load = 1.3x the single Dom0 core's forwarding
     capacity — well inside what eight microkernel shards absorb. *)
  let peak_flow_rate = 1.3 /. cap /. msize in
  let gap = float_of_int tenants *. duty /. peak_flow_rate in
  let mm = mean_mult ramp in
  let horizon =
    float_of_int flows_target *. gap /. (float_of_int tenants *. duty *. mm)
  in
  Scenario.generate ~seed
    {
      Scenario.tenants;
      guests;
      mean_flow_gap = gap;
      zipf_alpha = alpha;
      size_min;
      size_max;
      on_mean;
      off_mean;
      ramp;
      horizon = Int64.of_float horizon;
    }

let knee_sched ~quick ~ratio ?(seed = 23L) () =
  let tenants = 8 and guests = 8 in
  let alpha = 2.6 and size_min = 1 and size_max = 256 in
  let msize = pareto_mean ~alpha ~lo:size_min ~hi:size_max in
  let pkts = if quick then 10_000 else 40_000 in
  let flows = max 200 (int_of_float (float_of_int pkts /. msize)) in
  let cap = float_of_int (vmm_cap_cycles arch_profile) in
  let flow_rate = ratio /. cap /. msize in
  let gap = float_of_int tenants /. flow_rate in
  let horizon = float_of_int flows *. gap /. float_of_int tenants in
  Scenario.generate ~seed
    {
      Scenario.tenants;
      guests;
      mean_flow_gap = gap;
      zipf_alpha = alpha;
      size_min;
      size_max;
      on_mean = 1e15 (* effectively always ON: pure Poisson at the rung rate *);
      off_mean = 1.0;
      ramp = Scenario.flat;
      horizon = Int64.of_float horizon;
    }

let fairness_sched ~quick ?(seed = 24L) () =
  let tenants = 2 and guests = 2 in
  let alpha = 2.6 and size_min = 1 and size_max = 512 in
  let msize = pareto_mean ~alpha ~lo:size_min ~hi:size_max in
  let flows_target = if quick then 6_000 else 40_000 in
  let cap = float_of_int (vmm_cap_cycles arch_profile) in
  (* Victim paced at 0.25x Dom0 capacity; aggressor floods at 1.3x. *)
  let victim_rate = 0.25 /. cap /. msize in
  let aggr_mult = 1.3 /. 0.25 in
  let gap = 1.0 /. victim_rate in
  let horizon = float_of_int flows_target /. ((1.0 +. aggr_mult) *. victim_rate) in
  Scenario.generate ~seed
    ~tenant_rate:(fun tn -> if tn = 0 then aggr_mult else 1.0)
    {
      Scenario.tenants;
      guests;
      mean_flow_gap = gap;
      zipf_alpha = alpha;
      size_min;
      size_max;
      on_mean = 1e15;
      off_mean = 1.0;
      ramp = Scenario.flat;
      horizon = Int64.of_float horizon;
    }

(* A small fixed-size day slice for the bench harness: enough traffic to
   exercise the queues, doorbells and sketches end-to-end, small enough
   for a timed loop. The schedule is generated once (lazily) so the
   bench times the machine run, not Zipf sampling. 0.8x keeps even the
   single Dom0 shard below saturation, bounding per-run backlog. *)
let bench_sched = lazy (knee_sched ~quick:true ~ratio:0.8 ~seed:25L ())

let bench_slice ~stack () =
  let cell = run_cell ~stack ~mode:Naive ~sched:(Lazy.force bench_sched) () in
  cell.l_delivered

(* --- reporting helpers --- *)

let kcyc v = Printf.sprintf "%.1f" (v /. 1000.0)
let q sk p = Sketch.quantile sk p
let pct num den = if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let timely_rate_per_mcyc cell horizon =
  float_of_int cell.l_timely_pkts *. 1e6 /. Int64.to_float horizon

(* --- the experiment --- *)

let run ~quick =
  let budget = 100_000 in
  (* Intra-flow packet gap for the day: above one uk shard's per-packet
     service cost (a lone elephant flow must not overload its shard —
     the architecture question is aggregate funnelling, not pacing), yet
     the aggregate rate still saturates the single Dom0 core at peak. *)
  let day_gap = 1200 in
  (* Phase 1: the million-flow day, one schedule, four cells. *)
  let day = day_sched ~quick () in
  let day_cells =
    List.map
      (fun (stack, mode) ->
        run_cell ~stack ~mode ~sched:day ~pkt_gap:day_gap ~budget ())
      [ (Vmm, Naive); (Vmm, Policied); (Uk, Naive); (Uk, Policied) ]
  in
  let day_table =
    Table.create
      ~header:
        [
          "stack/mode";
          "flows";
          "pkts";
          "deliv";
          "shed";
          "drop";
          "p50 kc";
          "p99 kc";
          "p999 kc";
          "peak p999 kc";
          "flow p999 kc";
          "timely flows %";
          "timely pkts %";
        ]
  in
  List.iter
    (fun l ->
      Table.add_row day_table
        [
          Printf.sprintf "%s/%s" (stack_name l.l_stack) (mode_name l.l_mode);
          string_of_int l.l_flows;
          string_of_int l.l_injected;
          string_of_int l.l_delivered;
          string_of_int (l.l_fair_shed + l.l_tb_shed);
          string_of_int l.l_drops;
          kcyc (q l.l_pkt 0.5);
          kcyc (q l.l_pkt 0.99);
          kcyc (q l.l_pkt 0.999);
          kcyc (q l.l_peak 0.999);
          kcyc (q l.l_flow 0.999);
          Printf.sprintf "%.1f" (pct l.l_flows_timely l.l_flows);
          Printf.sprintf "%.1f" (pct l.l_timely_pkts l.l_injected);
        ])
    day_cells;
  let find stack mode =
    List.find (fun l -> l.l_stack = stack && l.l_mode = mode) day_cells
  in
  let vmm_naive = find Vmm Naive
  and vmm_pol = find Vmm Policied
  and uk_naive = find Uk Naive
  and uk_pol = find Uk Policied in
  (* Phase 2: the offered-load knee sweep (E15 admission shapes x SMP).
     Common absolute rungs, expressed as multiples of the single-Dom0
     capacity, against both stacks in both modes. *)
  let rungs =
    if quick then [ 0.6; 1.3; 3.0; 10.0 ]
    else [ 0.5; 0.9; 1.3; 2.0; 3.0; 4.5; 7.0; 10.0 ]
  in
  let sweep =
    List.map
      (fun ratio ->
        let sched = knee_sched ~quick ~ratio () in
        let cell stack mode = run_cell ~stack ~mode ~sched ~budget () in
        (ratio, sched, cell Vmm Naive, cell Vmm Policied, cell Uk Naive,
         cell Uk Policied))
      rungs
  in
  let knee_table =
    Table.create
      ~header:
        [
          "offered (x dom0 cap)";
          "vmm naive p999 kc";
          "vmm naive timely %";
          "vmm pol goodput/Mc";
          "uk naive p999 kc";
          "uk naive timely %";
          "uk pol goodput/Mc";
        ]
  in
  List.iter
    (fun (ratio, sched, vn, vp, un, up) ->
      let horizon = (Scenario.config sched).Scenario.horizon in
      Table.add_row knee_table
        [
          Printf.sprintf "%.1f" ratio;
          kcyc (q vn.l_pkt 0.999);
          Printf.sprintf "%.1f" (pct vn.l_timely_pkts vn.l_injected);
          Printf.sprintf "%.0f" (timely_rate_per_mcyc vp horizon);
          kcyc (q un.l_pkt 0.999);
          Printf.sprintf "%.1f" (pct un.l_timely_pkts un.l_injected);
          Printf.sprintf "%.0f" (timely_rate_per_mcyc up horizon);
        ])
    sweep;
  let naive_knee pick =
    List.find_opt
      (fun (_, _, vn, _, un, _) ->
        let cell = pick (vn, un) in
        pct cell.l_timely_pkts cell.l_injected < 90.0)
      sweep
    |> Option.map (fun (r, _, _, _, _, _) -> r)
  in
  let vmm_knee = naive_knee fst and uk_knee = naive_knee snd in
  let knee_str = function
    | Some r -> Printf.sprintf "%.1fx" r
    | None -> "none <= 10.0x"
  in
  (* Policied plateau: timely goodput at the top rung vs the best rung,
     per stack — the E15 "plateau vs collapse" shape on 8 cores. *)
  let plateau pick =
    let rates =
      List.map
        (fun (_, sched, _, vp, _, up) ->
          timely_rate_per_mcyc (pick (vp, up))
            (Scenario.config sched).Scenario.horizon)
        sweep
    in
    let best = List.fold_left max 0.0 rates in
    let last = List.nth rates (List.length rates - 1) in
    (best, last)
  in
  let naive_collapse pick =
    let rates =
      List.map
        (fun (_, sched, vn, _, un, _) ->
          timely_rate_per_mcyc (pick (vn, un))
            (Scenario.config sched).Scenario.horizon)
        sweep
    in
    let best = List.fold_left max 0.0 rates in
    let last = List.nth rates (List.length rates - 1) in
    (best, last)
  in
  let vp_best, vp_last = plateau fst
  and up_best, up_last = plateau snd
  and vn_best, vn_last = naive_collapse fst
  and un_best, un_last = naive_collapse snd in
  (* Phase 3: fairness under an aggressor tenant (vmm, the contended
     fabric): FIFO vs weighted fair share, victim tenant 1. *)
  let fsched = fairness_sched ~quick () in
  let f_fifo = run_cell ~stack:Vmm ~mode:Naive ~sched:fsched ~budget () in
  let f_fair =
    run_cell ~stack:Vmm ~mode:Policied ~sched:fsched ~budget
      ~weights:[ (1, 2) ] ()
  in
  let fair_table =
    Table.create
      ~header:
        [
          "mode";
          "tenant";
          "flows";
          "timely %";
          "flow p99 kc";
          "shed";
        ]
  in
  List.iter
    (fun (label, l) ->
      List.iter
        (fun tn ->
          Table.add_row fair_table
            [
              label;
              (if tn = 0 then "aggressor" else "victim");
              string_of_int l.l_tenant_flows.(tn);
              Printf.sprintf "%.1f" (pct l.l_tenant_timely.(tn) l.l_tenant_flows.(tn));
              kcyc (q l.l_tenant_sk.(tn) 0.99);
              string_of_int (l.l_fair_shed + l.l_tb_shed);
            ])
        [ 0; 1 ])
    [ ("fifo", f_fifo); ("weighted", f_fair) ];
  (* Phase 4: bit-for-bit replay — regenerate the schedule and rerun one
     cell per stack from the same seeds; every fingerprint must match. *)
  let day2 = day_sched ~quick () in
  let vmm_naive2 =
    run_cell ~stack:Vmm ~mode:Naive ~sched:day2 ~pkt_gap:day_gap ~budget ()
  in
  let uk_pol2 =
    run_cell ~stack:Uk ~mode:Policied ~sched:day2 ~pkt_gap:day_gap ~budget ()
  in
  let replay_ok =
    Scenario.fingerprint day = Scenario.fingerprint day2
    && vmm_naive.l_fp = vmm_naive2.l_fp
    && uk_pol.l_fp = uk_pol2.l_fp
  in
  let replay_table =
    Table.create ~header:[ "object"; "run 1"; "run 2"; "equal" ] in
  List.iter
    (fun (label, a, b) ->
      Table.add_row replay_table
        [ label; Printf.sprintf "%08x" (a land 0xFFFFFFFF);
          Printf.sprintf "%08x" (b land 0xFFFFFFFF);
          (if a = b then "yes" else "NO") ])
    [
      ("schedule", Scenario.fingerprint day, Scenario.fingerprint day2);
      ("vmm/naive day", vmm_naive.l_fp, vmm_naive2.l_fp);
      ("uk/policied day", uk_pol.l_fp, uk_pol2.l_fp);
    ];
  (* --- verdicts --- *)
  let flows_floor = if quick then 15_000 else 1_000_000 in
  let all_clean =
    List.for_all (fun l -> l.l_clean) (day_cells @ [ f_fifo; f_fair ])
  in
  let sustained =
    vmm_naive.l_flows >= flows_floor
    && uk_naive.l_flows >= flows_floor
    && vmm_naive.l_injected = Scenario.total_packets day
    && uk_naive.l_injected = Scenario.total_packets day
    && all_clean
  in
  let vmm_p999 = q vmm_naive.l_pkt 0.999
  and uk_p999 = q uk_naive.l_pkt 0.999 in
  let tail_first =
    vmm_p999 > float_of_int budget
    && uk_p999 <= float_of_int budget
    && q vmm_naive.l_peak 0.999 > 10.0 *. q uk_naive.l_peak 0.999
  in
  let knee_ordered =
    match (vmm_knee, uk_knee) with
    | Some v, Some u -> v < u
    | Some _, None -> true
    | None, _ -> false
  in
  let admission_holds =
    vp_last >= 0.8 *. vp_best
    && up_last >= 0.8 *. up_best
    && vn_last < 0.5 *. vn_best
    && up_last >= un_last
    && q vmm_pol.l_pkt 0.999 <= float_of_int budget
  in
  let victim_fifo = pct f_fifo.l_tenant_timely.(1) f_fifo.l_tenant_flows.(1)
  and victim_fair = pct f_fair.l_tenant_timely.(1) f_fair.l_tenant_flows.(1) in
  let fairness_holds = victim_fair >= 90.0 && victim_fifo < 60.0 in
  let verdicts =
    [
      Experiment.verdict
        ~claim:
          (Printf.sprintf
             "both stacks sustain a %s-flow open-loop day (schedule replayed \
              verbatim, no source backoff)"
             (if quick then "20k" else "million"))
        ~expected:
          (Printf.sprintf ">= %d flows, every scheduled packet offered, runs \
                           drain to idle" flows_floor)
        ~measured:
          (Printf.sprintf "%d flows, %d pkts offered on each stack, clean=%b"
             vmm_naive.l_flows vmm_naive.l_injected all_clean)
        sustained;
      Experiment.verdict
        ~claim:"the single Dom0's tail degrades first at datacenter scale (§3)"
        ~expected:
          (Printf.sprintf
             "vmm day p999 blows the %dk-cycle budget while uk stays inside; \
              peak-hour p999 separates by > 10x" (budget / 1000))
        ~measured:
          (Printf.sprintf
             "vmm p999 = %.0fk, uk p999 = %.1fk, peak p999 %.0fk vs %.1fk"
             (vmm_p999 /. 1000.0) (uk_p999 /. 1000.0)
             (q vmm_naive.l_peak 0.999 /. 1000.0)
             (q uk_naive.l_peak 0.999 /. 1000.0))
        tail_first;
      Experiment.verdict
        ~claim:"the offered-load knee: Dom0 knees near 1x its capacity, the \
                multi-server fabric several multiples later"
        ~expected:"vmm naive knee at a strictly lower rung than uk"
        ~measured:
          (Printf.sprintf "vmm knee %s, uk knee %s" (knee_str vmm_knee)
             (knee_str uk_knee))
        knee_ordered;
      Experiment.verdict
        ~claim:
          "E15 admission shapes hold on the 8-core machine (carry-over): \
           policied goodput plateaus where naive collapses, and the admitted \
           tail stays bounded"
        ~expected:
          "policied timely goodput at the top rung >= 80% of its best on both \
           stacks; vmm naive goodput collapses past its knee; uk policied >= \
           uk naive at the top rung; vmm policied day p999 <= budget"
        ~measured:
          (Printf.sprintf
             "vmm pol %.0f->%.0f/Mc, uk pol %.0f->%.0f/Mc, vmm naive \
              %.0f->%.0f/Mc, uk naive %.0f->%.0f/Mc, vmm pol day p999 %.1fk"
             vp_best vp_last up_best up_last vn_best vn_last un_best un_last
             (q vmm_pol.l_pkt 0.999 /. 1000.0))
        admission_holds;
      Experiment.verdict
        ~claim:"weighted fair share restores the victim tenant under an \
                open-loop aggressor (E17 composition)"
        ~expected:"victim timely >= 90% weighted vs < 60% FIFO"
        ~measured:
          (Printf.sprintf "victim timely %.1f%% weighted vs %.1f%% fifo \
                           (aggressor shed %d)"
             victim_fair victim_fifo (f_fair.l_fair_shed + f_fair.l_tb_shed))
        fairness_holds;
      Experiment.verdict
        ~claim:"the day replays bit-for-bit from the seed (schedule, \
                latency sketches, counters, accounts)"
        ~expected:"identical fingerprints across regeneration + rerun"
        ~measured:(if replay_ok then "all equal" else "MISMATCH")
        replay_ok;
    ]
  in
  {
    Experiment.tables =
      [
        ("Million-flow day (diurnal ramp, open loop)", day_table);
        ("Offered-load knee sweep (x single-Dom0 capacity)", knee_table);
        ("Fairness under an aggressor tenant (vmm)", fair_table);
        ("Replay determinism", replay_table);
      ];
    verdicts;
  }

let experiment =
  {
    Experiment.id = "e22";
    title = "The million-flow day: open-loop tails at datacenter scale";
    paper_claim =
      "At scale the paper's structural difference surfaces in the tail: \
       the VMM's single privileged Dom0 bridge saturates at its one-core \
       capacity and its p999 explodes during peak hours of a heavy-tailed \
       open-loop day, while the microkernel's per-core net servers absorb \
       the same offered load with a flat tail until many multiples later; \
       admission control and weighted fair share (E15/E17) bound the \
       admitted tail either way.";
    run;
  }
