(** E16: interrupt mitigation and batched I/O delivery — offered-load
    sweep across interrupt-only / polling-only / hybrid (NAPI) delivery
    on both structures, measuring driver cycles per packet and timely
    goodput, plus the mitigated knee probe and the E14 composition. *)

val experiment : Experiment.t

(** {1 Test hooks}

    The replay test drives single runs directly and compares their
    fingerprints bit-for-bit. *)

type stack = Vmm | Uk
type mode = Interrupt | Polling | Hybrid

type fingerprint
(** Wall time, arrivals, counters and accounts of one run; structural
    equality is bit-for-bit reproducibility. *)

type run

val run_one : stack -> mode -> base:int -> int * int -> run
(** One run at offered-load multiplier [num, den] of the stack's
    capacity, injecting [base * num / den] packets. *)

val fp : run -> fingerprint
val received : run -> int
