module Table = Vmk_stats.Table
module Machine = Vmk_hw.Machine
module Accounts = Vmk_trace.Accounts
module Counter = Vmk_trace.Counter
module Cluster = Vmk_ukernel.Smp_cluster
module Svmm = Vmk_vmm.Smp_vmm

type kind = Uk_colocated | Uk_pinned | Vmm_dom0 | Vmm_drivers

let kinds = [ Uk_colocated; Uk_pinned; Vmm_dom0; Vmm_drivers ]

let label = function
  | Uk_colocated -> "uk/colocated"
  | Uk_pinned -> "uk/pinned"
  | Vmm_dom0 -> "vmm/single-dom0"
  | Vmm_drivers -> "vmm/driver-domains"

type run = {
  completed : int;
  wall : int64;
  mach : Machine.t;
  contended : int;
  spin : int64;
}

let seed = 14L

let run_case ~kind ~cores ~packets =
  match kind with
  | Uk_colocated | Uk_pinned ->
      let placement =
        match kind with Uk_pinned -> Cluster.Pinned | _ -> Cluster.Colocated
      in
      let cfg = { (Cluster.default ~placement ~cores ()) with Cluster.packets } in
      let r = Cluster.run ~seed cfg in
      {
        completed = r.Cluster.completed;
        wall = r.Cluster.wall;
        mach = r.Cluster.mach;
        contended = r.Cluster.mapdb_contended;
        spin = r.Cluster.mapdb_spin;
      }
  | Vmm_dom0 | Vmm_drivers ->
      let backend =
        match kind with Vmm_drivers -> Svmm.Driver_domains | _ -> Svmm.Single_dom0
      in
      let cfg = { (Svmm.default ~backend ~cores ()) with Svmm.packets } in
      let r = Svmm.run ~seed cfg in
      {
        completed = r.Svmm.completed;
        wall = r.Svmm.wall;
        mach = r.Svmm.mach;
        contended = r.Svmm.gnt_contended;
        spin = r.Svmm.gnt_spin;
      }

(* Packets completed per million cycles of virtual wall time. *)
let throughput r =
  if Int64.compare r.wall 0L <= 0 then 0.0
  else float_of_int r.completed *. 1e6 /. Int64.to_float r.wall

let experiment =
  {
    Experiment.id = "e14";
    title = "SMP scalability: multi-server vs. centralized Dom0";
    paper_claim =
      "[CG05] measured Dom0 as a centralized I/O bottleneck; the paper's \
       multi-server architecture (and Xen's own driver-domain \
       disaggregation) should instead scale I/O throughput with cores.";
    run =
      (fun ~quick ->
        let packets = if quick then 240 else 640 in
        let core_counts = if quick then [ 1; 2; 4; 8 ] else [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
        let results =
          List.map
            (fun cores ->
              (cores, List.map (fun kind -> (kind, run_case ~kind ~cores ~packets)) kinds))
            core_counts
        in
        let tput ~cores ~kind =
          let row = List.assoc cores results in
          throughput (List.assoc kind row)
        in
        (* --- throughput scaling table --- *)
        let scaling =
          Table.create
            ~header:("cores" :: List.map (fun k -> label k ^ " pkt/Mcyc") kinds)
        in
        List.iter
          (fun (cores, row) ->
            Table.add_row scaling
              (string_of_int cores
              :: List.map (fun (_, r) -> Table.cellf "%.1f" (throughput r)) row))
          results;
        (* --- cross-CPU overhead itemization at max cores --- *)
        let max_cores = List.fold_left max 1 core_counts in
        let top = List.assoc max_cores results in
        let overhead =
          Table.create
            ~header:
              [
                "config";
                "IPIs";
                "shootdowns";
                "acks";
                "lock contended";
                "spin cyc";
                "ipi cyc";
                "shootdown cyc";
              ]
        in
        List.iter
          (fun (kind, r) ->
            let c = r.mach.Machine.counters in
            let a = r.mach.Machine.accounts in
            Table.add_row overhead
              [
                label kind;
                string_of_int (Counter.get c "smp.ipi");
                string_of_int (Counter.get c "smp.shootdown");
                string_of_int (Counter.get c "smp.shootdown.acks");
                string_of_int r.contended;
                Int64.to_string r.spin;
                Int64.to_string (Accounts.balance a "smp.ipi");
                Int64.to_string (Accounts.balance a "smp.shootdown");
              ])
          top;
        (* --- per-CPU account breakdown for the bottleneck config --- *)
        let dom0_run = List.assoc Vmm_dom0 top in
        let acc = dom0_run.mach.Machine.accounts in
        let ncpu = Machine.ncpus dom0_run.mach in
        let breakdown =
          Table.create
            ~header:
              ("account" :: "total cyc"
              :: List.init ncpu (fun i -> Printf.sprintf "cpu%d" i))
        in
        let accounts_of_interest =
          "dom0"
          :: List.filter
               (fun n -> String.length n >= 4 && String.sub n 0 4 = "smp.")
               (List.map fst (Accounts.to_list acc))
        in
        List.iter
          (fun name ->
            Table.add_row breakdown
              (name
              :: Int64.to_string (Accounts.balance acc name)
              :: List.init ncpu (fun i ->
                     Int64.to_string (Accounts.cpu_balance acc ~cpu:i name))))
          accounts_of_interest;
        (* --- verdicts --- *)
        let plateau_ratio = tput ~cores:max_cores ~kind:Vmm_dom0 /. tput ~cores:4 ~kind:Vmm_dom0 in
        let scale8 kind = tput ~cores:max_cores ~kind /. tput ~cores:1 ~kind in
        let scale84 kind = tput ~cores:max_cores ~kind /. tput ~cores:4 ~kind in
        let rerun = run_case ~kind:Vmm_dom0 ~cores:max_cores ~packets in
        let fingerprint r =
          ( r.wall,
            r.completed,
            Counter.to_list r.mach.Machine.counters,
            Accounts.to_list r.mach.Machine.accounts,
            List.init (Machine.ncpus r.mach) (fun i ->
                Accounts.to_cpu_list r.mach.Machine.accounts ~cpu:i) )
        in
        let deterministic = fingerprint dom0_run = fingerprint rerun in
        let verdicts =
          [
            Experiment.verdict
              ~claim:"A single Dom0 serializes backend I/O [CG05]"
              ~expected:
                (Printf.sprintf
                   "vmm/single-dom0 throughput plateaus: tput(%d)/tput(4) < 1.25"
                   max_cores)
              ~measured:(Printf.sprintf "ratio %.2f" plateau_ratio)
              (plateau_ratio < 1.25);
            Experiment.verdict
              ~claim:"Multi-server microkernel I/O scales with cores"
              ~expected:
                (Printf.sprintf
                   "uk/colocated: tput(%d)/tput(1) > 4 and tput(%d)/tput(4) > 1.6"
                   max_cores max_cores)
              ~measured:
                (Printf.sprintf "%.2fx over 1 core, %.2fx over 4"
                   (scale8 Uk_colocated) (scale84 Uk_colocated))
              (scale8 Uk_colocated > 4.0 && scale84 Uk_colocated > 1.6);
            Experiment.verdict
              ~claim:"Driver-domain disaggregation recovers VMM scaling"
              ~expected:
                (Printf.sprintf
                   "vmm/driver-domains: tput(%d)/tput(1) > 4 and beats \
                    single-dom0 at %d cores"
                   max_cores max_cores)
              ~measured:
                (Printf.sprintf "%.2fx over 1 core; %.1f vs %.1f pkt/Mcyc"
                   (scale8 Vmm_drivers)
                   (tput ~cores:max_cores ~kind:Vmm_drivers)
                   (tput ~cores:max_cores ~kind:Vmm_dom0))
              (scale8 Vmm_drivers > 4.0
              && tput ~cores:max_cores ~kind:Vmm_drivers
                 > tput ~cores:max_cores ~kind:Vmm_dom0);
            Experiment.verdict
              ~claim:"SMP interleaving stays deterministic"
              ~expected:
                "same-seed rerun: identical wall time, counters and per-CPU \
                 accounts"
              ~measured:(if deterministic then "bit-for-bit identical" else "diverged")
              deterministic;
          ]
        in
        {
          Experiment.tables =
            [
              ("Throughput vs. cores (packets per Mcycle)", scaling);
              ( Printf.sprintf "Cross-CPU overheads at %d cores" max_cores,
                overhead );
              ( Printf.sprintf
                  "Per-CPU cycle accounts, vmm/single-dom0 at %d cores"
                  max_cores,
                breakdown );
            ];
          verdicts;
        });
  }
