module Machine = Vmk_hw.Machine
module Disk = Vmk_hw.Disk
module Counter = Vmk_trace.Counter
module Rng = Vmk_sim.Rng
module Table = Vmk_stats.Table
module Kernel = Vmk_ukernel.Kernel
module Sysif = Vmk_ukernel.Sysif
module Svc = Vmk_ukernel.Svc
module Watchdog = Vmk_ukernel.Watchdog
module Net_server = Vmk_ukernel.Net_server
module Blk_server = Vmk_ukernel.Blk_server
module Hypervisor = Vmk_vmm.Hypervisor
module Blk_channel = Vmk_vmm.Blk_channel
module Dom0 = Vmk_vmm.Dom0
module Port_xen = Vmk_guest.Port_xen
module Port_l4 = Vmk_guest.Port_l4
module Apps = Vmk_workloads.Apps
module Faults = Vmk_faults.Faults

(* Both stacks run the same probe workload and the same fault plan
   shape: an IRQ-storm burst early on, the storage driver killed at
   [kill_at], and a transient disk Fail window later. Rate 0 means an
   empty plan — the undisturbed baseline. *)
let kill_at = 4_000_000L
let window_start = 6_000_000L
let window_stop = 10_000_000L
let storm_at = 2_000_000L

let plan_for ~rate ~target =
  if rate = 0 then []
  else
    [
      Faults.Irq_storm
        { line = Machine.nic_irq; at = storm_at; count = 8; gap = 10_000L };
      Faults.Kill_at { at = kill_at; target };
      Faults.Disk_faults
        [
          {
            Faults.d_start = window_start;
            d_stop = window_stop;
            d_mode = Disk.Fail;
            d_pct = rate;
            d_sectors = None;
          };
        ];
    ]

type metrics = {
  stack : string;
  rate : int;
  completed : int;
  lost : int;
  retries : int;
  gaveup : int;
  recoveries : int;  (** Watchdog respawns / supervisor restarts. *)
  recovery_latency : int64 option;
      (** First successful op after the kill, minus the kill time. *)
  finished : bool;
}

let metrics_of ~stack ~rate ~counters ~retries_key ~gaveup_key ~recoveries ~log
    ~finished (stats : Apps.stats) =
  let chronological = List.rev log in
  let recovery_latency =
    if rate = 0 then None
    else
      List.find_map
        (fun (t, ok) ->
          if ok && t > kill_at then Some (Int64.sub t kill_at) else None)
        chronological
  in
  {
    stack;
    rate;
    completed = stats.Apps.completed;
    lost = stats.Apps.errors;
    retries = Counter.get counters retries_key;
    gaveup = Counter.get counters gaveup_key;
    recoveries;
    recovery_latency;
    finished;
  }

(* --- microkernel stack: watchdog respawn + client retry --- *)

let l4_run ~quick ~rate =
  let ops = if quick then 16 else 32 in
  let mach = Machine.create ~seed:31L () in
  let k = Kernel.create mach in
  let blk_spec () =
    {
      Sysif.name = "blk-server";
      priority = 2;
      same_space = false;
      pager = None;
      body = (fun () -> Blk_server.body mach ());
    }
  in
  let net_spec () =
    {
      Sysif.name = "net-server";
      priority = 2;
      same_space = false;
      pager = None;
      body = (fun () -> Net_server.body mach ());
    }
  in
  let blk_tid =
    Kernel.spawn k ~name:"blk-server" ~priority:2 ~account:Blk_server.account
      (fun () -> Blk_server.body mach ())
  in
  let net_tid =
    Kernel.spawn k ~name:"net-server" ~priority:2 ~account:Net_server.account
      (fun () -> Net_server.body mach ())
  in
  let blk_entry = Svc.entry ~name:"blk" blk_tid in
  let net_entry = Svc.entry ~name:"net" net_tid in
  let wd = Watchdog.create () in
  let _wd_tid =
    Kernel.spawn k ~name:"watchdog" ~priority:1 ~account:"watchdog"
      (Watchdog.body mach wd ~period:1_000_000L ~ping_timeout:200_000L
         [ (blk_entry, blk_spec); (net_entry, net_spec) ])
  in
  let retry =
    Port_l4.retry ~mach ~attempts:8 ~timeout:1_000_000L ~base_delay:100_000L
      (Rng.split mach.Machine.rng)
  in
  let gk =
    Kernel.spawn k ~name:"guest-kernel" ~priority:3 ~account:Port_l4.gk_account
      (Port_l4.guest_kernel_body ~retry ~net_svc:net_entry ~blk_svc:blk_entry
         ~net:(Some net_tid) ~blk:(Some blk_tid))
  in
  let stats = Apps.stats () in
  let log = ref [] in
  let finished = ref false in
  let _client =
    Kernel.spawn k ~name:"client" ~account:"client" (fun () ->
        Port_l4.app_body mach ~gk
          (Apps.blk_retry_stream ~stats
             ~now:(fun () -> Machine.now mach)
             ~log:(fun entry -> log := entry :: !log)
             ~ops ~span:24 ~seed:7 ~pace:150_000 ())
          ();
        finished := true)
  in
  let armed =
    Faults.arm
      (plan_for ~rate ~target:"blk-server")
      mach
      ~kill:(fun target ->
        if target = "blk-server" then Kernel.kill k (Svc.tid blk_entry))
  in
  ignore (Kernel.run k ~until:(fun () -> !finished));
  Watchdog.stop wd;
  ignore (Kernel.run k);
  Faults.disarm armed mach;
  metrics_of ~stack:"L4" ~rate ~counters:mach.Machine.counters
    ~retries_key:"l4.retries" ~gaveup_key:"l4.gaveup"
    ~recoveries:(List.length (Watchdog.respawns wd))
    ~log:!log ~finished:!finished stats

(* --- VMM stack: supervisor restart + frontend reconnect --- *)

let vmm_run ~quick ~rate =
  let ops = if quick then 16 else 32 in
  let mach = Machine.create ~seed:32L () in
  let h = Hypervisor.create mach in
  let blk_chan = Blk_channel.create () in
  let make_dom0 ~restart () =
    Dom0.body mach ~connect_timeout:10_000_000L ~generation:restart
      ~blk:[ blk_chan ] ()
  in
  let dom0 =
    Hypervisor.create_domain h ~name:Dom0.name ~privileged:true
      (make_dom0 ~restart:0)
  in
  let sup =
    Hypervisor.supervise h ~name:Dom0.name ~privileged:true ~period:1_000_000L
      ~make_body:make_dom0 dom0
  in
  let stats = Apps.stats () in
  let log = ref [] in
  let finished = ref false in
  let _client =
    Hypervisor.create_domain h ~name:"client" (fun () ->
        Port_xen.guest_body mach ~blk:(blk_chan, dom0) ~resilient:true
          ~io_timeout:1_000_000L
          ~app:
            (Apps.blk_retry_stream ~stats
               ~now:(fun () -> Machine.now mach)
               ~log:(fun entry -> log := entry :: !log)
               ~ops ~span:24 ~seed:7 ~pace:150_000 ())
          ();
        finished := true)
  in
  let armed =
    Faults.arm
      (plan_for ~rate ~target:Dom0.name)
      mach
      ~kill:(fun target ->
        if target = Dom0.name then
          Hypervisor.kill_domain h (Hypervisor.supervised_domid sup))
  in
  ignore (Hypervisor.run h ~until:(fun () -> !finished));
  Hypervisor.stop_supervisor sup;
  ignore (Hypervisor.run h);
  Faults.disarm armed mach;
  metrics_of ~stack:"VMM" ~rate ~counters:mach.Machine.counters
    ~retries_key:"xen.retries" ~gaveup_key:"xen.gaveup"
    ~recoveries:(List.length (Hypervisor.restarts sup))
    ~log:!log ~finished:!finished stats

let run_one ~stack ~rate ~quick =
  match stack with
  | `L4 -> l4_run ~quick ~rate
  | `Vmm -> vmm_run ~quick ~rate

(* --- reporting --- *)

let rates = [ 0; 15; 35 ]

let metrics_table title rows =
  let table =
    Table.create
      ~header:
        [
          "stack";
          "fault rate %";
          "completed";
          "lost";
          "retries";
          "gave up";
          "recoveries";
          "recovery latency";
          "finished";
        ]
  in
  List.iter
    (fun m ->
      Table.add_row table
        [
          m.stack;
          string_of_int m.rate;
          string_of_int m.completed;
          string_of_int m.lost;
          string_of_int m.retries;
          string_of_int m.gaveup;
          string_of_int m.recoveries;
          (match m.recovery_latency with
          | Some l -> Printf.sprintf "%Ld cycles" l
          | None -> "-");
          (if m.finished then "yes" else "NO");
        ])
    rows;
  (title, table)

let run ~quick =
  let ops = if quick then 16 else 32 in
  let l4 = List.map (fun rate -> l4_run ~quick ~rate) rates in
  let vmm = List.map (fun rate -> vmm_run ~quick ~rate) rates in
  let l4_again = l4_run ~quick ~rate:15 in
  let l4_first = List.nth l4 1 in
  let deterministic =
    l4_first = l4_again
    (* Full structural equality: every count, latency and log entry. *)
  in
  let baseline_ok m = m.completed = ops && m.lost = 0 && m.finished in
  let recovered m =
    m.finished && m.recoveries >= 1
    && (match m.recovery_latency with Some l -> l > 0L | None -> false)
    && m.completed + m.lost = ops
    && m.lost <= ops / 4
  in
  let faulted l = List.filter (fun m -> m.rate > 0) l in
  let show m =
    Printf.sprintf "%s@%d%%: %d/%d ok, %d retries, %d recoveries, latency %s"
      m.stack m.rate m.completed ops m.retries m.recoveries
      (match m.recovery_latency with
      | Some l -> Int64.to_string l
      | None -> "-")
  in
  {
    Experiment.tables =
      [
        metrics_table "Microkernel stack (watchdog respawn + IPC retry)" l4;
        metrics_table "VMM stack (supervisor restart + frontend reconnect)" vmm;
      ];
    verdicts =
      [
        Experiment.verdict
          ~claim:"fault rate 0 is the undisturbed baseline on both stacks"
          ~expected:"all ops complete, nothing lost, no recovery machinery"
          ~measured:
            (String.concat "; "
               (List.map show [ List.hd l4; List.hd vmm ]))
          (baseline_ok (List.hd l4)
          && baseline_ok (List.hd vmm)
          && (List.hd l4).recoveries = 0
          && (List.hd vmm).recoveries = 0);
        Experiment.verdict
          ~claim:
            "a user-level watchdog respawns a killed driver server and \
             clients ride it out (§3: drivers are ordinary threads)"
          ~expected:
            "every faulted L4 run: >=1 respawn, recovery latency > 0, the \
             client finishes with bounded loss"
          ~measured:(String.concat "; " (List.map show (faulted l4)))
          (List.for_all recovered (faulted l4));
        Experiment.verdict
          ~claim:
            "a restarted driver domain is recoverable by frontend reconnect \
             (the VMM's equivalent restart story)"
          ~expected:
            "every faulted VMM run: >=1 restart, recovery latency > 0, the \
             client finishes with bounded loss"
          ~measured:(String.concat "; " (List.map show (faulted vmm)))
          (List.for_all recovered (faulted vmm));
        Experiment.verdict
          ~claim:"the fault plan is deterministic"
          ~expected:"same seed + same plan => identical metrics and op log"
          ~measured:
            (if deterministic then "two L4@15% runs identical"
             else
               Printf.sprintf "runs diverged: %s vs %s" (show l4_first)
                 (show l4_again))
          deterministic;
      ];
  }

let experiment =
  {
    Experiment.id = "e13";
    title = "Deterministic fault injection and driver-restart recovery";
    paper_claim =
      "§3.1: a driver failure 'only affects its clients — exactly the same \
       situation as if a server fails in an L4-based system.' E13 pushes \
       past E6's blast radius to the recovery story: with drivers as \
       restartable user-level components, both structures can bring the \
       service back — the microkernel by respawning a server thread, the \
       VMM by restarting the driver domain and reconnecting frontends.";
    run;
  }
