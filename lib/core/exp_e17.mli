(** E17: the inter-guest communication fabric — N mini-OS instances
    exchanging vnet-addressed packets through the Dom0 software bridge
    (every packet crosses Dom0 twice) vs L4-style direct guest-to-guest
    IPC channels (the net server only brokers connection setup),
    measuring fabric cycles, privileged transitions and middleman
    touches per packet, plus the flow-cache sweep, weighted fair-share
    and ECN satellites, the E14 storm composition and bit-for-bit
    replay. *)

val experiment : Experiment.t

(** {1 Test hooks}

    The replay test drives single runs directly and compares their
    fingerprints bit-for-bit. *)

type stack = Vmm | Uk

type fingerprint
(** Wall time, sent count, arrivals, counters and accounts of one run;
    structural equality is bit-for-bit reproducibility. *)

type run

val pairwise : stack:stack -> guests:int -> count:int -> run
(** One pairwise run: [guests/2] unidirectional flows of [count]
    packets each (odd ports send to port+1). *)

val fp : run -> fingerprint
val received : run -> int
