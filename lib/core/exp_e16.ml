(* E16: interrupt mitigation and batched I/O delivery. Sweep offered
   network load across three delivery disciplines on both structures:

   - interrupt-only: one IRQ (and one event/IPC) per packet — the E15
     naive configuration, [MR96]'s livelock-prone baseline;
   - polling-only: the NIC line stays masked forever and the driver
     services the device on a fixed timer — zero per-packet interrupt
     cost, but idle poll work at low rate;
   - hybrid (NAPI): the first interrupt masks the line, poll rounds
     drain up to a budget of packets at one [poll_batch_cost] each with
     one notification per batch, and an empty round re-enables the
     interrupt.

   The cost metric is driver-path cycles per received packet (backend +
   hypervisor accounts on the VMM, server + kernel accounts on the
   microkernel); the benefit metric is E15's timely goodput. The shape
   to reproduce is Mogul & Ramakrishnan's: hybrid matches interrupt
   latency at low rate, matches polling efficiency at high rate, and
   cures the naive collapse past saturation. The E15 knee probe is
   re-run with mitigation on (both knees move right) and the E14
   8-core storm with a coalescing factor (mitigation composes with
   per-core placement). *)

module Table = Vmk_stats.Table
module Summary = Vmk_stats.Summary
module Machine = Vmk_hw.Machine
module Nic = Vmk_hw.Nic
module Counter = Vmk_trace.Counter
module Accounts = Vmk_trace.Accounts
module Overload = Vmk_overload.Overload
module Kernel = Vmk_ukernel.Kernel
module Net_server = Vmk_ukernel.Net_server
module Cluster = Vmk_ukernel.Smp_cluster
module Hypervisor = Vmk_vmm.Hypervisor
module Net_channel = Vmk_vmm.Net_channel
module Dom0 = Vmk_vmm.Dom0
module Svmm = Vmk_vmm.Smp_vmm
module Port_xen = Vmk_guest.Port_xen
module Port_l4 = Vmk_guest.Port_l4
module Traffic = Vmk_workloads.Traffic
module Apps = Vmk_workloads.Apps

type stack = Vmm | Uk
type mode = Interrupt | Polling | Hybrid

let stacks = [ Vmm; Uk ]
let modes = [ Interrupt; Polling; Hybrid ]
let stack_label = function Vmm -> "vmm" | Uk -> "uk"

let mode_label = function
  | Interrupt -> "irq"
  | Polling -> "poll"
  | Hybrid -> "hybrid"

let config_label stack mode =
  Printf.sprintf "%s/%s" (stack_label stack) (mode_label mode)

(* Same provisioning as E15: 1x capacity = one packet per
   [capacity_period] cycles, per structure (the VMM's per-packet path
   costs roughly double the microkernel's, E3). *)
let capacity_period = function Vmm -> 60_000L | Uk -> 30_000L

(* Mitigation hold-off window (hybrid) and poll timer period
   (polling-only): one capacity period, so at <=1x load the window has
   always expired by the next packet (no added latency) while at 4x and
   beyond several completions coalesce under one interrupt. *)
let window = capacity_period

let packet_len = 512
let latency_budget = 1_000_000L
let poll_budget = 16

let mults = [ (1, 2); (1, 1); (2, 1); (4, 1); (8, 1) ]
let mult_value (n, d) = float_of_int n /. float_of_int d

let mult_label (n, d) =
  if d = 1 then Printf.sprintf "%dx" n else Printf.sprintf "%.2fx" (mult_value (n, d))

let period_of stack (n, d) =
  Int64.div
    (Int64.mul (capacity_period stack) (Int64.of_int d))
    (Int64.of_int n)

let count_of ~base (n, d) = base * n / d

(* Everything a same-seed rerun must reproduce bit-for-bit — the
   counters include every [mitig.*] entry (coalesced IRQs, poll rounds,
   batch histogram, re-enables). *)
type fingerprint = {
  f_wall : int64;
  f_injected : int;
  f_arrivals : (int * int64) list;
  f_counters : (string * int) list;
  f_accounts : (string * int64) list;
}

type run = {
  injected : int;
  received : int;
  timely : int;
  offered : float;  (** Injected packets per Mcycle of the offered window. *)
  goodput : float;  (** Timely packets per Mcycle of the offered window. *)
  p99 : float;  (** p99 delivery latency in cycles, over received packets. *)
  cyc_pkt : float;  (** Driver-path cycles per received packet. *)
  coalesced : int;  (** IRQs absorbed by an open hold-off window. *)
  poll_rounds : int;
  reenables : int;
  nic_drops : int;
  fp : fingerprint;
}

let summarize stack mach ~period ~count ~injected ~arrivals ~inject_times =
  let duration = Int64.mul period (Int64.of_int count) in
  let latencies =
    List.rev_map
      (fun (tag, at) ->
        match Hashtbl.find_opt inject_times tag with
        | Some t0 -> Int64.sub at t0
        | None -> Int64.max_int)
      arrivals
  in
  let timely =
    List.length
      (List.filter (fun l -> Int64.compare l latency_budget <= 0) latencies)
  in
  let s = Summary.create () in
  List.iter (Summary.add_int64 s) latencies;
  let c = mach.Machine.counters in
  let a = mach.Machine.accounts in
  let received = List.length arrivals in
  (* Driver-path cost: the backend domain plus the kernel that carries
     its interrupts and notifications. Guest-side work is identical
     across modes and excluded. *)
  let driver_cycles =
    match stack with
    | Vmm -> Int64.add (Accounts.balance a Dom0.name) (Accounts.balance a "vmm")
    | Uk ->
        Int64.add
          (Accounts.balance a Net_server.account)
          (Accounts.balance a "ukernel")
  in
  {
    injected;
    received;
    timely;
    offered = float_of_int injected *. 1e6 /. Int64.to_float duration;
    goodput = float_of_int timely *. 1e6 /. Int64.to_float duration;
    p99 = Summary.percentile s 99.0;
    cyc_pkt =
      (if received = 0 then 0.0
       else Int64.to_float driver_cycles /. float_of_int received);
    coalesced = Counter.get c Overload.mitig_coalesced_counter;
    poll_rounds = Counter.get c Overload.mitig_poll_rounds_counter;
    reenables = Counter.get c Overload.mitig_reenable_counter;
    nic_drops = Nic.rx_dropped mach.Machine.nic;
    fp =
      {
        f_wall = Machine.now mach;
        f_injected = injected;
        f_arrivals = List.sort compare arrivals;
        f_counters = Counter.to_list c;
        f_accounts = Accounts.to_list mach.Machine.accounts;
      };
  }

(* Polling-only runs never drain the event engine (the poll timer
   re-arms forever), so they stop on a deterministic deadline instead of
   the usual run-until-idle + settle phase: injection window plus enough
   slack for boot, handshake and every timely delivery. *)
let poll_deadline ~period ~count =
  Int64.add (Int64.mul period (Int64.of_int count)) 6_000_000L

(* The VMM stack, always in E15's naive overload configuration (boosted
   Dom0 weight, no admission control) so the only variable is the
   delivery discipline. *)
let run_vmm ~mode ~period ~count =
  let mach = Machine.create ~seed:41L () in
  (match mode with
  | Hybrid -> Nic.set_mitigation mach.Machine.nic (window Vmm)
  | Interrupt | Polling -> ());
  let h = Hypervisor.create mach in
  let chan = Net_channel.create ~mode:Net_channel.Flip ~demux_key:1 () in
  let net_napi = match mode with Hybrid -> Some poll_budget | _ -> None in
  let net_poll = match mode with Polling -> Some (window Vmm) | _ -> None in
  let dom0 =
    Hypervisor.create_domain h ~name:Dom0.name ~privileged:true ~weight:512
      (fun () -> Dom0.body mach ?net_napi ?net_poll ~net:[ chan ] ())
  in
  let ready = ref false in
  let completed = ref false in
  let inject_times = Hashtbl.create 256 in
  let arrivals = ref [] in
  let _guest =
    Hypervisor.create_domain h ~name:"guest1"
      (Port_xen.guest_body mach ~net:(chan, dom0) ~io_timeout:2_000_000L
         ~on_ready:(fun () -> ready := true)
         ~app:(fun () ->
           Apps.net_rx_probe
             ~now:(fun () -> Machine.now mach)
             ~record:(fun ~tag ~at -> arrivals := (tag, at) :: !arrivals)
             ~packets:count () ();
           completed := true))
  in
  let source =
    Traffic.constant_rate mach
      ~gate:(fun () -> !ready)
      ~period ~len:packet_len ~count
      ~on_inject:(fun ~tag ~at -> Hashtbl.replace inject_times tag at)
      ()
  in
  (match mode with
  | Polling ->
      let deadline = poll_deadline ~period ~count in
      ignore
        (Hypervisor.run h ~until:(fun () ->
             !completed || Int64.compare (Machine.now mach) deadline >= 0))
  | Interrupt | Hybrid ->
      ignore (Hypervisor.run h ~until:(fun () -> !completed));
      ignore (Hypervisor.run h ~max_dispatches:100_000));
  summarize Vmm mach ~period ~count ~injected:(Traffic.injected source)
    ~arrivals:!arrivals ~inject_times

(* The microkernel stack, likewise naive (unbounded server queue, no
   admission): only the delivery discipline changes. *)
let run_uk ~mode ~period ~count =
  let mach = Machine.create ~seed:42L () in
  (match mode with
  | Hybrid -> Nic.set_mitigation mach.Machine.nic (window Uk)
  | Interrupt | Polling -> ());
  let k = Kernel.create mach in
  let napi = match mode with Hybrid -> Some poll_budget | _ -> None in
  let poll = match mode with Polling -> Some (window Uk) | _ -> None in
  let net_tid =
    Kernel.spawn k ~name:"net-server" ~priority:2 ~account:Net_server.account
      (fun () -> Net_server.body mach ?napi ?poll ())
  in
  let gk =
    Kernel.spawn k ~name:"guest-kernel" ~priority:3 ~account:Port_l4.gk_account
      (Port_l4.guest_kernel_body ~net:(Some net_tid) ~blk:None)
  in
  let completed = ref false in
  let inject_times = Hashtbl.create 256 in
  let arrivals = ref [] in
  let _app =
    Kernel.spawn k ~name:"app" ~priority:4 ~account:"app"
      (Port_l4.app_body mach ~gk (fun () ->
           Apps.net_rx_probe
             ~now:(fun () -> Machine.now mach)
             ~record:(fun ~tag ~at -> arrivals := (tag, at) :: !arrivals)
             ~packets:count () ();
           completed := true))
  in
  let up = ref false in
  let gate () =
    if !up then true
    else if Nic.rx_buffers_posted mach.Machine.nic > 0 then begin
      up := true;
      true
    end
    else false
  in
  let source =
    Traffic.constant_rate mach ~gate ~period ~len:packet_len ~count
      ~on_inject:(fun ~tag ~at -> Hashtbl.replace inject_times tag at)
      ()
  in
  (match mode with
  | Polling ->
      let deadline = poll_deadline ~period ~count in
      ignore
        (Kernel.run k ~until:(fun () ->
             !completed || Int64.compare (Machine.now mach) deadline >= 0))
  | Interrupt | Hybrid ->
      ignore (Kernel.run k ~until:(fun () -> !completed));
      ignore (Kernel.run k ~max_dispatches:100_000));
  summarize Uk mach ~period ~count ~injected:(Traffic.injected source)
    ~arrivals:!arrivals ~inject_times

let run_one stack mode ~base m =
  let period = period_of stack m and count = count_of ~base m in
  match stack with
  | Vmm -> run_vmm ~mode ~period ~count
  | Uk -> run_uk ~mode ~period ~count

let fp r = r.fp
let received r = r.received

let efficiency r =
  if r.injected = 0 then 0.0 else float_of_int r.timely /. float_of_int r.injected

(* E15's knee probe, extended two rungs deeper and run interrupt vs
   hybrid: common absolute rates, knee = first rung where timely
   efficiency drops below 0.9. Mitigation should move both knees
   right. *)
let probe_periods =
  [ 15_000L; 12_500L; 10_000L; 8_750L; 7_500L; 7_000L; 6_500L; 6_250L; 5_000L ]

let probe_runs stack mode ~base =
  let window = Int64.mul 30_000L (Int64.of_int base) in
  List.map
    (fun period ->
      let count = Int64.to_int (Int64.div window period) in
      let r =
        match stack with
        | Vmm -> run_vmm ~mode ~period ~count
        | Uk -> run_uk ~mode ~period ~count
      in
      (period, r))
    probe_periods

let knee runs =
  let rec find = function
    | [] -> infinity
    | (_, r) :: rest -> if efficiency r < 0.9 then r.offered else find rest
  in
  find runs

(* E14's 8-core storm with the coalescing factor: every [coalesce]-th
   packet pays the full IRQ entry, the rest land under the open hold-off
   window at poll cost. *)
type storm = { s_completed : int; s_wall : int64; s_irq_cycles : int64 }

let storm_seed = 16L

let run_storm kind ~packets ~coalesce =
  match kind with
  | Uk ->
      let cfg =
        {
          (Cluster.default ~placement:Cluster.Colocated ~cores:8 ()) with
          Cluster.packets;
          coalesce;
        }
      in
      let r = Cluster.run ~seed:storm_seed cfg in
      {
        s_completed = r.Cluster.completed;
        s_wall = r.Cluster.wall;
        s_irq_cycles =
          Accounts.balance r.Cluster.mach.Machine.accounts "smp.irq";
      }
  | Vmm ->
      let cfg =
        {
          (Svmm.default ~backend:Svmm.Driver_domains ~cores:8 ()) with
          Svmm.packets;
          coalesce;
        }
      in
      let r = Svmm.run ~seed:storm_seed cfg in
      {
        s_completed = r.Svmm.completed;
        s_wall = r.Svmm.wall;
        s_irq_cycles = Accounts.balance r.Svmm.mach.Machine.accounts "smp.irq";
      }

let storm_label = function
  | Uk -> "uk/colocated"
  | Vmm -> "vmm/driver-domains"

let experiment =
  {
    Experiment.id = "e16";
    title = "Interrupt mitigation: NAPI-style hybrid IRQ/polling";
    paper_claim =
      "Per-packet interrupts are the dominant I/O-path tax in both \
       structures; batching their delivery — mask on first IRQ, poll a \
       budget, one notification per batch [MR96] — should amortize the \
       fixed entry costs (the A2 result), cure naive receive livelock, \
       and compose with SMP placement, without hurting latency at low \
       rate.";
    run =
      (fun ~quick ->
        let base = if quick then 60 else 150 in
        let results =
          List.map
            (fun stack ->
              ( stack,
                List.map
                  (fun mode ->
                    ( mode,
                      List.map (fun m -> (m, run_one stack mode ~base m)) mults
                    ))
                  modes ))
            stacks
        in
        let curve stack mode = List.assoc mode (List.assoc stack results) in
        let get stack mode m = List.assoc m (curve stack mode) in
        let top = List.nth mults (List.length mults - 1) in
        let low = List.hd mults in
        (* --- one sweep table per stack: cycles/packet and goodput --- *)
        let sweep stack =
          let t =
            Table.create
              ~header:
                [
                  "load";
                  "offered pkt/Mcyc";
                  "irq cyc/pkt";
                  "poll cyc/pkt";
                  "hyb cyc/pkt";
                  "irq good";
                  "poll good";
                  "hyb good";
                  "hyb p99 kcyc";
                ]
          in
          List.iter
            (fun m ->
              let i = get stack Interrupt m in
              let p = get stack Polling m in
              let h = get stack Hybrid m in
              Table.add_row t
                [
                  mult_label m;
                  Table.cellf "%.1f" i.offered;
                  Table.cellf "%.0f" i.cyc_pkt;
                  Table.cellf "%.0f" p.cyc_pkt;
                  Table.cellf "%.0f" h.cyc_pkt;
                  Table.cellf "%.1f" i.goodput;
                  Table.cellf "%.1f" p.goodput;
                  Table.cellf "%.1f" h.goodput;
                  Table.cellf "%.0f" (h.p99 /. 1e3);
                ])
            mults;
          t
        in
        (* --- mitigation itemization at the top multiplier --- *)
        let itemized =
          Table.create
            ~header:
              [
                "config";
                "injected";
                "received";
                "timely";
                "irq coalesced";
                "poll rounds";
                "avg batch";
                "re-enables";
                "nic drops";
              ]
        in
        List.iter
          (fun stack ->
            List.iter
              (fun mode ->
                let r = get stack mode top in
                let avg_batch =
                  if r.poll_rounds = 0 then 0.0
                  else float_of_int r.received /. float_of_int r.poll_rounds
                in
                Table.add_row itemized
                  [
                    config_label stack mode;
                    string_of_int r.injected;
                    string_of_int r.received;
                    string_of_int r.timely;
                    string_of_int r.coalesced;
                    string_of_int r.poll_rounds;
                    Table.cellf "%.1f" avg_batch;
                    string_of_int r.reenables;
                    string_of_int r.nic_drops;
                  ])
              modes)
          stacks;
        (* --- knee probe, interrupt vs hybrid --- *)
        let probes =
          List.map
            (fun stack ->
              ( stack,
                List.map (fun mode -> (mode, probe_runs stack mode ~base))
                  [ Interrupt; Hybrid ] ))
            stacks
        in
        let probe stack mode = List.assoc mode (List.assoc stack probes) in
        let knee_of stack mode = knee (probe stack mode) in
        let probe_table =
          let t =
            Table.create
              ~header:
                [
                  "offered pkt/Mcyc";
                  "vmm irq eff";
                  "vmm hyb eff";
                  "uk irq eff";
                  "uk hyb eff";
                ]
          in
          List.iteri
            (fun i (_, vi) ->
              let vh = snd (List.nth (probe Vmm Hybrid) i) in
              let ui = snd (List.nth (probe Uk Interrupt) i) in
              let uh = snd (List.nth (probe Uk Hybrid) i) in
              Table.add_row t
                [
                  Table.cellf "%.0f" vi.offered;
                  Table.cellf "%.2f" (efficiency vi);
                  Table.cellf "%.2f" (efficiency vh);
                  Table.cellf "%.2f" (efficiency ui);
                  Table.cellf "%.2f" (efficiency uh);
                ])
            (probe Vmm Interrupt);
          t
        in
        (* --- E14 composition --- *)
        let storm_packets = if quick then 240 else 640 in
        let storms =
          List.map
            (fun kind ->
              ( kind,
                List.map
                  (fun coalesce ->
                    (coalesce, run_storm kind ~packets:storm_packets ~coalesce))
                  [ 1; 8 ] ))
            [ Uk; Vmm ]
        in
        let storm_table =
          let t =
            Table.create
              ~header:
                [
                  "config";
                  "coalesce";
                  "completed";
                  "wall kcyc";
                  "irq-entry kcyc";
                  "pkt/Mcyc";
                ]
          in
          List.iter
            (fun (kind, runs) ->
              List.iter
                (fun (coalesce, s) ->
                  Table.add_row t
                    [
                      storm_label kind;
                      string_of_int coalesce;
                      string_of_int s.s_completed;
                      Table.cellf "%.0f" (Int64.to_float s.s_wall /. 1e3);
                      Table.cellf "%.0f" (Int64.to_float s.s_irq_cycles /. 1e3);
                      Table.cellf "%.1f"
                        (float_of_int s.s_completed
                        *. 1e6
                        /. Int64.to_float s.s_wall);
                    ])
                runs)
            storms;
          t
        in
        let storm_get kind coalesce = List.assoc coalesce (List.assoc kind storms) in
        (* --- verdicts --- *)
        let cheaper_at m stack =
          (get stack Hybrid m).cyc_pkt < (get stack Interrupt m).cyc_pkt
        in
        let cures stack =
          (get stack Hybrid top).goodput > (get stack Interrupt top).goodput
        in
        let parity stack =
          let i = get stack Interrupt low and h = get stack Hybrid low in
          h.p99 <= i.p99 +. Int64.to_float (window stack)
        in
        let knees_right stack =
          knee_of stack Hybrid > knee_of stack Interrupt
        in
        let composes kind =
          let c1 = storm_get kind 1 and c8 = storm_get kind 8 in
          c8.s_completed = c1.s_completed
          && Int64.compare c8.s_irq_cycles c1.s_irq_cycles < 0
          && Int64.compare c8.s_wall c1.s_wall <= 0
        in
        let rerun_vmm = run_one Vmm Hybrid ~base top in
        let rerun_uk = run_one Uk Hybrid ~base top in
        let deterministic =
          (get Vmm Hybrid top).fp = rerun_vmm.fp
          && (get Uk Hybrid top).fp = rerun_uk.fp
        in
        let fmt_knee k =
          if k = infinity then ">200" else Printf.sprintf "%.0f" k
        in
        let mult4 = (4, 1) in
        let verdicts =
          [
            Experiment.verdict
              ~claim:"Batched delivery amortizes per-packet interrupt cost"
              ~expected:
                "hybrid driver cycles/packet strictly below interrupt-only at \
                 4x and 8x load, on both structures"
              ~measured:
                (Printf.sprintf
                   "8x: vmm %.0f vs %.0f, uk %.0f vs %.0f cyc/pkt"
                   (get Vmm Hybrid top).cyc_pkt
                   (get Vmm Interrupt top).cyc_pkt
                   (get Uk Hybrid top).cyc_pkt
                   (get Uk Interrupt top).cyc_pkt)
              (cheaper_at mult4 Vmm && cheaper_at mult4 Uk
              && cheaper_at top Vmm && cheaper_at top Uk);
            Experiment.verdict
              ~claim:"Mitigation cures naive receive livelock [MR96]"
              ~expected:
                "hybrid timely goodput at 8x strictly above the E15 naive \
                 (interrupt-only) collapse floor, on both structures"
              ~measured:
                (Printf.sprintf "vmm %.1f vs %.1f; uk %.1f vs %.1f pkt/Mcyc"
                   (get Vmm Hybrid top).goodput
                   (get Vmm Interrupt top).goodput
                   (get Uk Hybrid top).goodput
                   (get Uk Interrupt top).goodput)
              (cures Vmm && cures Uk);
            Experiment.verdict
              ~claim:"Hybrid keeps interrupt-mode latency at low rate"
              ~expected:
                "hybrid p99 at 0.5x within one hold-off window of \
                 interrupt-only, on both structures"
              ~measured:
                (Printf.sprintf "vmm p99 %.0f vs %.0f; uk %.0f vs %.0f cyc"
                   (get Vmm Hybrid low).p99 (get Vmm Interrupt low).p99
                   (get Uk Hybrid low).p99 (get Uk Interrupt low).p99)
              (parity Vmm && parity Uk);
            Experiment.verdict
              ~claim:"Mitigation moves the saturation knee right"
              ~expected:
                "hybrid knee at a higher absolute offered load than \
                 interrupt-only, on both structures"
              ~measured:
                (Printf.sprintf
                   "vmm %s -> %s, uk %s -> %s pkt/Mcyc"
                   (fmt_knee (knee_of Vmm Interrupt))
                   (fmt_knee (knee_of Vmm Hybrid))
                   (fmt_knee (knee_of Uk Interrupt))
                   (fmt_knee (knee_of Uk Hybrid)))
              (knees_right Vmm && knees_right Uk);
            Experiment.verdict
              ~claim:"Mitigation composes with per-core placement (E14)"
              ~expected:
                "8-core storm at coalesce 8: same packets completed, fewer \
                 IRQ-entry cycles, wall time no worse, in both scalable \
                 configurations"
              ~measured:
                (Printf.sprintf
                   "uk irq kcyc %.0f -> %.0f (wall %.0fk -> %.0fk); vmm %.0f \
                    -> %.0f (wall %.0fk -> %.0fk)"
                   (Int64.to_float (storm_get Uk 1).s_irq_cycles /. 1e3)
                   (Int64.to_float (storm_get Uk 8).s_irq_cycles /. 1e3)
                   (Int64.to_float (storm_get Uk 1).s_wall /. 1e3)
                   (Int64.to_float (storm_get Uk 8).s_wall /. 1e3)
                   (Int64.to_float (storm_get Vmm 1).s_irq_cycles /. 1e3)
                   (Int64.to_float (storm_get Vmm 8).s_irq_cycles /. 1e3)
                   (Int64.to_float (storm_get Vmm 1).s_wall /. 1e3)
                   (Int64.to_float (storm_get Vmm 8).s_wall /. 1e3))
              (composes Uk && composes Vmm);
            Experiment.verdict ~claim:"Mitigated runs stay deterministic"
              ~expected:
                "same-seed hybrid rerun at 8x: identical arrivals, accounts \
                 and mitig.* counters"
              ~measured:
                (if deterministic then "bit-for-bit identical" else "diverged")
              deterministic;
          ]
        in
        {
          Experiment.tables =
            [
              ("VMM: delivery modes under offered load", sweep Vmm);
              ("Microkernel: delivery modes under offered load", sweep Uk);
              ( Printf.sprintf "Mitigation itemization at %s" (mult_label top),
                itemized );
              ("Knee probe: interrupt vs hybrid (absolute rates)", probe_table);
              ("E14 composition: 8-core storm with coalescing", storm_table);
            ];
          verdicts;
        });
  }
