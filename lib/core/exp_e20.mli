(** E20: live migration & checkpoint/restore with mid-migration fault
    recovery, on both stacks (see {!Vmk_migrate}). Sweeps dirty rates
    against round budgets (downtime / total pages / convergence),
    injects failures at every protocol phase, migrates the bridge
    driver domain under a packet storm, and closes with the bit-for-bit
    replay and determinism verdicts. *)

val experiment : Experiment.t
