(* E15: end-to-end overload robustness. Sweep offered network load from
   0.25x to 8x of the admission-policy capacity on both structures, with
   and without the overload policies of [lib/overload], and measure how
   goodput degrades past saturation.

   The metric is TIMELY goodput: a packet counts only if it reaches the
   application within [latency_budget] cycles of hitting the wire. Raw
   delivery counts hide the failure mode of an unpoliced stack — nothing
   is dropped, the backlog is simply delivered arbitrarily late — so the
   latency budget is what turns queueing-delay blowup into measurable
   collapse, mirroring how [MR96] diagnose receive livelock.

   Naive configurations: the VMM runs a CPU-boosted Dom0 (the backend
   monopolizes the processor under load, starving the guest that must
   consume the packets) and the microkernel net server queues received
   packets without bound. Policied configurations add token-bucket
   admission at the backend/server IRQ path (shed cheap, before the
   expensive per-packet work), a bounded drop-oldest receive queue, and
   client-side retry with seeded exponential backoff. *)

module Table = Vmk_stats.Table
module Summary = Vmk_stats.Summary
module Machine = Vmk_hw.Machine
module Nic = Vmk_hw.Nic
module Rng = Vmk_sim.Rng
module Counter = Vmk_trace.Counter
module Accounts = Vmk_trace.Accounts
module Overload = Vmk_overload.Overload
module Kernel = Vmk_ukernel.Kernel
module Net_server = Vmk_ukernel.Net_server
module Hypervisor = Vmk_vmm.Hypervisor
module Net_channel = Vmk_vmm.Net_channel
module Dom0 = Vmk_vmm.Dom0
module Port_xen = Vmk_guest.Port_xen
module Port_l4 = Vmk_guest.Port_l4
module Traffic = Vmk_workloads.Traffic
module Apps = Vmk_workloads.Apps

type stack = Vmm | Uk
type mode = Naive | Policied

let stacks = [ Vmm; Uk ]
let modes = [ Naive; Policied ]
let stack_label = function Vmm -> "vmm" | Uk -> "uk"
let mode_label = function Naive -> "naive" | Policied -> "policied"

let config_label stack mode =
  Printf.sprintf "%s/%s" (stack_label stack) (mode_label mode)

(* 1x capacity: one packet per [capacity_period] cycles, which is also
   the token-bucket refill period of the policied configurations. The
   capacities differ per structure because the per-packet I/O path costs
   differ (the E3 result): the VMM's world switches, grant operations
   and page flips make its sustainable rate roughly half the
   microkernel's, and admission control is always provisioned against
   the stack's own measured capacity. The saturation-knee comparison
   between structures is therefore made in absolute offered load. *)
let capacity_period = function Vmm -> 60_000L | Uk -> 30_000L

let packet_len = 512
let latency_budget = 1_000_000L
let admit_burst = 16
let rx_queue_cap = 64

(* Offered-load multipliers as exact rationals num/den of the stack's
   capacity rate. The injection count scales with the rate so every run
   offers load for the same virtual window
   (count x period = base_count x capacity_period). *)
let mults = [ (1, 4); (1, 2); (1, 1); (2, 1); (4, 1); (8, 1) ]
let mult_value (n, d) = float_of_int n /. float_of_int d

let mult_label (n, d) =
  if d = 1 then Printf.sprintf "%dx" n else Printf.sprintf "%.2fx" (mult_value (n, d))

let period_of stack (n, d) =
  Int64.div
    (Int64.mul (capacity_period stack) (Int64.of_int d))
    (Int64.of_int n)

let count_of ~base (n, d) = base * n / d

(* Everything a same-seed rerun must reproduce bit-for-bit. *)
type fingerprint = {
  f_wall : int64;
  f_injected : int;
  f_arrivals : (int * int64) list;
  f_counters : (string * int) list;
  f_accounts : (string * int64) list;
}

type run = {
  injected : int;
  received : int;
  timely : int;
  offered : float;  (** Injected packets per Mcycle of the offered window. *)
  goodput : float;  (** Timely packets per Mcycle of the offered window. *)
  p99 : float;  (** p99 delivery latency in cycles, over received packets. *)
  nic_drops : int;
  drops : int;
  sheds : int;
  retries : int;
  backoff_cycles : int;
  queue_peak : int;
  fp : fingerprint;
}

let summarize mach ~period ~count ~injected ~arrivals ~inject_times =
  let duration = Int64.mul period (Int64.of_int count) in
  let latencies =
    List.rev_map
      (fun (tag, at) ->
        match Hashtbl.find_opt inject_times tag with
        | Some t0 -> Int64.sub at t0
        | None -> Int64.max_int)
      arrivals
  in
  let timely =
    List.length
      (List.filter (fun l -> Int64.compare l latency_budget <= 0) latencies)
  in
  let s = Summary.create () in
  List.iter (Summary.add_int64 s) latencies;
  let c = mach.Machine.counters in
  let nic_drops = Nic.rx_dropped mach.Machine.nic in
  {
    injected;
    received = List.length arrivals;
    timely;
    offered = float_of_int injected *. 1e6 /. Int64.to_float duration;
    goodput = float_of_int timely *. 1e6 /. Int64.to_float duration;
    p99 = Summary.percentile s 99.0;
    nic_drops;
    drops = Counter.get c Overload.drop_counter + nic_drops;
    sheds = Counter.get c Overload.shed_counter;
    retries = Counter.get c Overload.retry_counter;
    backoff_cycles = Counter.get c Overload.backoff_counter;
    queue_peak = Counter.sum_matching c ~prefix:Overload.queue_peak_prefix;
    fp =
      {
        f_wall = Machine.now mach;
        f_injected = injected;
        f_arrivals = List.sort compare arrivals;
        f_counters = Counter.to_list c;
        f_accounts = Accounts.to_list mach.Machine.accounts;
      };
  }

let admit_bucket stack =
  Overload.Token_bucket.create ~period:(capacity_period stack)
    ~burst:admit_burst ()

(* The VMM stack: Dom0 runs at double the guest's scheduler weight (the
   backend path wins the CPU under load — the centralized-backend
   livelock configuration). Policied adds token-bucket shedding in
   netback, ahead of the 900-cycle per-packet backend work. The guest's
   2M-cycle I/O timeout ends the app once traffic stops arriving. *)
let run_vmm ~mode ~period ~count =
  let mach = Machine.create ~seed:41L () in
  let h = Hypervisor.create mach in
  let chan = Net_channel.create ~mode:Net_channel.Flip ~demux_key:1 () in
  let net_admit =
    match mode with Naive -> None | Policied -> Some (admit_bucket Vmm)
  in
  let dom0 =
    Hypervisor.create_domain h ~name:Dom0.name ~privileged:true ~weight:512
      (fun () -> Dom0.body mach ?net_admit ~net:[ chan ] ())
  in
  let ready = ref false in
  let completed = ref false in
  let inject_times = Hashtbl.create 256 in
  let arrivals = ref [] in
  let _guest =
    Hypervisor.create_domain h ~name:"guest1"
      (Port_xen.guest_body mach ~net:(chan, dom0) ~io_timeout:2_000_000L
         ~on_ready:(fun () -> ready := true)
         ~app:(fun () ->
           Apps.net_rx_probe
             ~now:(fun () -> Machine.now mach)
             ~record:(fun ~tag ~at -> arrivals := (tag, at) :: !arrivals)
             ~packets:count () ();
           completed := true))
  in
  let source =
    Traffic.constant_rate mach
      ~gate:(fun () -> !ready)
      ~period ~len:packet_len ~count
      ~on_inject:(fun ~tag ~at -> Hashtbl.replace inject_times tag at)
      ()
  in
  ignore (Hypervisor.run h ~until:(fun () -> !completed));
  ignore (Hypervisor.run h ~max_dispatches:100_000);
  summarize mach ~period ~count ~injected:(Traffic.injected source)
    ~arrivals:!arrivals ~inject_times

(* The microkernel stack. Naive queues without bound in the net server
   (latency blows up past saturation); policied sheds at the IRQ path,
   bounds the receive queue (drop-oldest) and retries busy replies on
   the seeded backoff schedule. Injection gates on the server having
   posted its first receive buffers; NIC-level drops after that point
   are wire loss and count against the run. *)
let run_uk ~mode ~period ~count =
  let mach = Machine.create ~seed:42L () in
  let k = Kernel.create mach in
  let admit, rx_capacity =
    match mode with
    | Naive -> (None, None)
    | Policied -> (Some (admit_bucket Uk), Some rx_queue_cap)
  in
  let net_tid =
    Kernel.spawn k ~name:"net-server" ~priority:2 ~account:Net_server.account
      (fun () -> Net_server.body mach ?admit ?rx_capacity ())
  in
  let retry =
    match mode with
    | Naive -> None
    | Policied ->
        Some
          (Port_l4.retry ~mach ~attempts:4 ~timeout:1_000_000L
             (Rng.split mach.Machine.rng))
  in
  let gk =
    Kernel.spawn k ~name:"guest-kernel" ~priority:3 ~account:Port_l4.gk_account
      (Port_l4.guest_kernel_body ?retry ~net:(Some net_tid) ~blk:None)
  in
  let completed = ref false in
  let inject_times = Hashtbl.create 256 in
  let arrivals = ref [] in
  let _app =
    Kernel.spawn k ~name:"app" ~priority:4 ~account:"app"
      (Port_l4.app_body mach ~gk (fun () ->
           Apps.net_rx_probe
             ~now:(fun () -> Machine.now mach)
             ~record:(fun ~tag ~at -> arrivals := (tag, at) :: !arrivals)
             ~packets:count () ();
           completed := true))
  in
  let up = ref false in
  let gate () =
    if !up then true
    else if Nic.rx_buffers_posted mach.Machine.nic > 0 then begin
      up := true;
      true
    end
    else false
  in
  let source =
    Traffic.constant_rate mach ~gate ~period ~len:packet_len ~count
      ~on_inject:(fun ~tag ~at -> Hashtbl.replace inject_times tag at)
      ()
  in
  ignore (Kernel.run k ~until:(fun () -> !completed));
  ignore (Kernel.run k ~max_dispatches:100_000);
  summarize mach ~period ~count ~injected:(Traffic.injected source)
    ~arrivals:!arrivals ~inject_times

let run_one stack mode ~base m =
  let period = period_of stack m and count = count_of ~base m in
  match stack with
  | Vmm -> run_vmm ~mode ~period ~count
  | Uk -> run_uk ~mode ~period ~count

(* Delivery efficiency: what fraction of what was actually offered
   arrived in time. *)
let efficiency r =
  if r.injected = 0 then 0.0 else float_of_int r.timely /. float_of_int r.injected

(* The capacity sweep above is in multiples of each stack's own
   provisioned capacity, so the knees it finds are not comparable
   between structures. The knee probe drives the two NAIVE stacks at a
   common ladder of absolute rates spanning the gap the coarse sweep
   leaves between "fine at 4x" and "collapsed at 8x", and the knee is
   the first rung where timely efficiency falls below 0.9. *)
let probe_periods = [ 15_000L; 12_500L; 10_000L; 8_750L; 7_500L ]

let probe_runs stack ~base =
  let window = Int64.mul 30_000L (Int64.of_int base) in
  List.map
    (fun period ->
      let count = Int64.to_int (Int64.div window period) in
      let r =
        match stack with
        | Vmm -> run_vmm ~mode:Naive ~period ~count
        | Uk -> run_uk ~mode:Naive ~period ~count
      in
      (period, r))
    probe_periods

let knee runs =
  let rec find = function
    | [] -> infinity
    | (_, r) :: rest -> if efficiency r < 0.9 then r.offered else find rest
  in
  find runs

let peak_goodput curve =
  List.fold_left (fun acc (_, r) -> Float.max acc r.goodput) 0.0 curve

let experiment =
  {
    Experiment.id = "e15";
    title = "Overload robustness: admission control and graceful degradation";
    paper_claim =
      "A structured system should degrade gracefully under overload: with \
       backpressure and admission control, goodput plateaus at capacity \
       instead of collapsing (receive livelock, [MR96]), and the \
       microkernel's multi-server I/O path should saturate later than the \
       VMM's centralized Dom0 backend.";
    run =
      (fun ~quick ->
        let base = if quick then 60 else 150 in
        let results =
          List.map
            (fun stack ->
              ( stack,
                List.map
                  (fun mode ->
                    ( mode,
                      List.map (fun m -> (m, run_one stack mode ~base m)) mults
                    ))
                  modes ))
            stacks
        in
        let curve stack mode = List.assoc mode (List.assoc stack results) in
        let get stack mode m = List.assoc m (curve stack mode) in
        let top = List.nth mults (List.length mults - 1) in
        (* --- one degradation table per stack --- *)
        let degradation stack =
          let t =
            Table.create
              ~header:
                [
                  "load";
                  "offered pkt/Mcyc";
                  "naive good";
                  "naive p99 kcyc";
                  "naive eff";
                  "pol good";
                  "pol p99 kcyc";
                  "pol eff";
                ]
          in
          List.iter
            (fun m ->
              let n = get stack Naive m and p = get stack Policied m in
              Table.add_row t
                [
                  mult_label m;
                  Table.cellf "%.1f" n.offered;
                  Table.cellf "%.1f" n.goodput;
                  Table.cellf "%.0f" (n.p99 /. 1e3);
                  Table.cellf "%.2f" (efficiency n);
                  Table.cellf "%.1f" p.goodput;
                  Table.cellf "%.0f" (p.p99 /. 1e3);
                  Table.cellf "%.2f" (efficiency p);
                ])
            mults;
          t
        in
        (* --- overload itemization at the top multiplier --- *)
        let itemized =
          Table.create
            ~header:
              [
                "config";
                "injected";
                "received";
                "timely";
                "nic drop";
                "drops";
                "sheds";
                "retries";
                "backoff cyc";
                "queue peak";
              ]
        in
        List.iter
          (fun stack ->
            List.iter
              (fun mode ->
                let r = get stack mode top in
                Table.add_row itemized
                  [
                    config_label stack mode;
                    string_of_int r.injected;
                    string_of_int r.received;
                    string_of_int r.timely;
                    string_of_int r.nic_drops;
                    string_of_int r.drops;
                    string_of_int r.sheds;
                    string_of_int r.retries;
                    string_of_int r.backoff_cycles;
                    string_of_int r.queue_peak;
                  ])
              modes)
          stacks;
        (* --- verdicts --- *)
        let naive_collapse stack =
          let c = curve stack Naive in
          let r = get stack Naive top in
          r.goodput < 0.8 *. peak_goodput c
          && r.p99 > Int64.to_float latency_budget
        in
        let policied_graceful stack =
          let c = curve stack Policied in
          let r = get stack Policied top in
          r.goodput >= 0.8 *. peak_goodput c
          && r.p99 <= Int64.to_float latency_budget
        in
        let vmm_probe = probe_runs Vmm ~base in
        let uk_probe = probe_runs Uk ~base in
        let vmm_knee = knee vmm_probe in
        let uk_knee = knee uk_probe in
        let probe_table =
          let t =
            Table.create
              ~header:
                [
                  "offered pkt/Mcyc";
                  "vmm eff";
                  "vmm p99 kcyc";
                  "uk eff";
                  "uk p99 kcyc";
                ]
          in
          List.iter2
            (fun (_, v) (_, u) ->
              Table.add_row t
                [
                  Table.cellf "%.0f" v.offered;
                  Table.cellf "%.2f" (efficiency v);
                  Table.cellf "%.0f" (v.p99 /. 1e3);
                  Table.cellf "%.2f" (efficiency u);
                  Table.cellf "%.0f" (u.p99 /. 1e3);
                ])
            vmm_probe uk_probe;
          t
        in
        let rerun_vmm = run_one Vmm Naive ~base top in
        let rerun_uk = run_one Uk Policied ~base top in
        let deterministic =
          (get Vmm Naive top).fp = rerun_vmm.fp
          && (get Uk Policied top).fp = rerun_uk.fp
        in
        let fmt_knee k =
          if k = infinity then ">133" else Printf.sprintf "%.0f" k
        in
        let verdicts =
          [
            Experiment.verdict
              ~claim:"Unpoliced stacks collapse past saturation [MR96]"
              ~expected:
                "naive goodput at 8x < 0.8x its peak and p99 > 1M cycles, on \
                 both structures"
              ~measured:
                (Printf.sprintf
                   "vmm %.1f vs peak %.1f (p99 %.0fk); uk %.1f vs peak %.1f \
                    (p99 %.0fk)"
                   (get Vmm Naive top).goodput
                   (peak_goodput (curve Vmm Naive))
                   ((get Vmm Naive top).p99 /. 1e3)
                   (get Uk Naive top).goodput
                   (peak_goodput (curve Uk Naive))
                   ((get Uk Naive top).p99 /. 1e3))
              (naive_collapse Vmm && naive_collapse Uk);
            Experiment.verdict
              ~claim:"Admission control + backpressure degrade gracefully"
              ~expected:
                "policied goodput at 8x >= 0.8x its peak and p99 <= 1M \
                 cycles, on both structures"
              ~measured:
                (Printf.sprintf
                   "vmm %.1f/%.1f p99 %.0fk; uk %.1f/%.1f p99 %.0fk"
                   (get Vmm Policied top).goodput
                   (peak_goodput (curve Vmm Policied))
                   ((get Vmm Policied top).p99 /. 1e3)
                   (get Uk Policied top).goodput
                   (peak_goodput (curve Uk Policied))
                   ((get Uk Policied top).p99 /. 1e3))
              (policied_graceful Vmm && policied_graceful Uk);
            Experiment.verdict
              ~claim:"The centralized Dom0 saturates before the multi-server \
                      microkernel"
              ~expected:
                "naive vmm knee at a lower absolute offered load than naive uk"
              ~measured:
                (Printf.sprintf "vmm knee at %s pkt/Mcyc, uk at %s pkt/Mcyc"
                   (fmt_knee vmm_knee) (fmt_knee uk_knee))
              (vmm_knee < uk_knee);
            Experiment.verdict ~claim:"Overload runs stay deterministic"
              ~expected:
                "same-seed rerun at 8x: identical arrival times, counters \
                 and accounts"
              ~measured:
                (if deterministic then "bit-for-bit identical" else "diverged")
              deterministic;
          ]
        in
        {
          Experiment.tables =
            [
              ("VMM degradation under offered load", degradation Vmm);
              ("Microkernel degradation under offered load", degradation Uk);
              ("Naive saturation knee probe (common absolute rates)", probe_table);
              ( Printf.sprintf "Overload itemization at %s" (mult_label top),
                itemized );
            ];
          verdicts;
        });
  }
