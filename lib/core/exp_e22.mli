(** E22 — the million-flow day: heavy-tailed open-loop traffic against
    both stacks on the 8-core machine, tail latency from streaming
    mergeable quantile sketches, the offered-load knee sweep (closing the
    E15-admission-on-SMP carry-over), weighted-fair-share composition and
    a bit-for-bit replay check. *)

val experiment : Experiment.t

type stack = Vmm | Uk

val bench_slice : stack:stack -> unit -> int
(** Run a small fixed-size day slice (quick schedule, naive mode) against
    one stack and return the delivered-packet count — the bench harness
    entry point ([e22_day_slice_*]). Deterministic per stack. *)
