let all =
  [
    Exp_e1.experiment;
    Exp_e2.experiment;
    Exp_e3.experiment;
    Exp_e4.experiment;
    Exp_e5.experiment;
    Exp_e6.experiment;
    Exp_e7.experiment;
    Exp_e8.experiment;
    Exp_e9.experiment;
    Exp_e10.experiment;
    Exp_e11.experiment;
    Exp_e12.experiment;
    Exp_e13.experiment;
    Exp_e14.experiment;
    Exp_e15.experiment;
    Exp_e16.experiment;
    Exp_e17.experiment;
    Exp_e18.experiment;
    Exp_e19.experiment;
    Exp_e20.experiment;
    Exp_e21.experiment;
    Exp_e22.experiment;
    Exp_e3.ablation;
    Exp_e2.ablation;
    Exp_e6.ablation;
    Exp_e7.ablation;
    Exp_a5.experiment;
    Exp_a6.experiment;
  ]

let find id =
  let wanted = String.lowercase_ascii id in
  List.find_opt (fun e -> e.Experiment.id = wanted) all

let ids () = List.map (fun e -> e.Experiment.id) all
