(* E21 — zero-alloc hot path + tickless executor micro-report.

   Not a paper claim but an instrument check: the E13–E20 experiments
   sweep the same forwarding and scheduling machinery thousands of
   times, so the simulator's own constant factor bounds how large a
   sweep is affordable. This report pins the three properties the E21
   optimisation pass establishes, all measured deterministically (no
   wall clock, so the report replays bit-for-bit like every other
   experiment; wall-clock speedups live in the bench harness /
   BENCH_e21.json):

   - steady-state switch forwarding allocates nothing on the minor
     heap (interned counter ids, preallocated interleaved ring slots,
     a reused delivery scratch record);
   - the per-forward virtual-cycle price decomposes into the published
     constants (flow-hit lookup + enqueue), i.e. the optimisation did
     not change what is charged, only what the host pays to simulate
     it;
   - the executors are tickless: an idle gap is jumped in one event
     hop and a long compute burst is burned in one dispatch instead of
     one per timeslice, with the skipped quanta itemized by the
     engine. *)

module Table = Vmk_stats.Table
module Machine = Vmk_hw.Machine
module Counter = Vmk_trace.Counter
module Engine = Vmk_sim.Engine
module Vnet = Vmk_vnet.Vnet
module Kernel = Vmk_ukernel.Kernel
module Sysif = Vmk_ukernel.Sysif
module Hypervisor = Vmk_vmm.Hypervisor
module Hcall = Vmk_vmm.Hcall

let guest_counts = [ 2; 4; 8 ]

(* --- steady-state forwarding: minor-heap words + cycles per packet --- *)

type fwd_probe = {
  p_words_per_pkt : float;
  p_cycles_per_pkt : int;
  p_scratch_shared : bool;  (** Both forwards returned the same record. *)
}

let fwd_probe ~guests ~packets =
  let counters = Counter.create_set () in
  let burned = ref 0 in
  let s =
    Vnet.Switch.create ~counters ~burn:(fun c -> burned := !burned + c) ()
  in
  for p = 1 to guests do
    ignore (Vnet.Switch.add_port s ~id:p)
  done;
  let fwd src dst =
    let d =
      Vnet.Switch.forward_to s ~now:0L ~in_port:src ~src ~dst ~len:512
        ~tag:((dst * 1_000_000) + (src * 10_000))
    in
    ignore (Vnet.Switch.discard s ~port:dst);
    d
  in
  (* Warm up: learn every source MAC, install every (src, dst·next)
     flow — after this ring, the cycle is pure flow-cache hits. *)
  let da = ref (fwd 1 2) in
  let db = ref !da in
  for src = 1 to guests do
    da := fwd src ((src mod guests) + 1)
  done;
  for src = 1 to guests do
    db := fwd src ((src mod guests) + 1)
  done;
  burned := 0;
  (* The probe itself boxes two floats; measure that constant with an
     empty bracket and subtract, so a zero-allocation loop reads as
     exactly 0.0 words. *)
  let cal0 = Gc.minor_words () in
  let cal1 = Gc.minor_words () in
  let probe_overhead = cal1 -. cal0 in
  let w0 = Gc.minor_words () in
  let cur = ref 0 in
  for _ = 0 to packets - 1 do
    let src = !cur + 1 in
    let dst = (if src >= guests then 0 else src) + 1 in
    cur := (if src >= guests then 0 else src);
    ignore (fwd src dst)
  done;
  let words = Gc.minor_words () -. w0 -. probe_overhead in
  {
    p_words_per_pkt = words /. float_of_int packets;
    p_cycles_per_pkt = !burned / packets;
    p_scratch_shared = !da == !db;
  }

(* --- tickless executors --- *)

type tickless_probe = {
  t_final : int64;  (** Virtual clock when the run went idle. *)
  t_idle_jumps : int;
  t_idle_skipped : int64;
  t_burst_jumps : int;
  t_burst_skipped : int64;
}

let skip_ratio p =
  let skipped = Int64.add p.t_idle_skipped p.t_burst_skipped in
  if Int64.compare p.t_final 0L <= 0 then 0.0
  else Int64.to_float skipped /. Int64.to_float p.t_final

let probe_of_mach (mach : Machine.t) =
  let e = mach.Machine.engine in
  {
    t_final = Engine.now e;
    t_idle_jumps = Engine.idle_jumps e;
    t_idle_skipped = Engine.idle_skipped e;
    t_burst_jumps = Engine.burst_jumps e;
    t_burst_skipped = Engine.burst_skipped e;
  }

let kernel_burn ~cycles =
  let mach = Machine.create ~seed:21L () in
  let k = Kernel.create mach in
  let _ = Kernel.spawn k ~name:"burner" (fun () -> Sysif.burn cycles) in
  ignore (Kernel.run k);
  probe_of_mach mach

let kernel_sleep ~gap =
  let mach = Machine.create ~seed:21L () in
  let k = Kernel.create mach in
  let _ = Kernel.spawn k ~name:"sleeper" (fun () -> Sysif.sleep gap) in
  ignore (Kernel.run k);
  probe_of_mach mach

let vmm_burn ~cycles =
  let mach = Machine.create ~seed:21L () in
  let h = Hypervisor.create mach in
  let _ = Hypervisor.create_domain h ~name:"burner" (fun () -> Hcall.burn cycles) in
  ignore (Hypervisor.run h);
  probe_of_mach mach

(* --- report --- *)

let run ~quick =
  let packets = if quick then 2_000 else 20_000 in
  let burn_cycles = if quick then 10_000_000 else 100_000_000 in
  let sleep_gap = 10_000_000L in
  let probes = List.map (fun g -> (g, fwd_probe ~guests:g ~packets)) guest_counts in
  let alloc_table =
    Table.create
      ~header:
        [ "guests"; "packets"; "minor words/pkt"; "cycles/pkt"; "scratch" ]
  in
  List.iter
    (fun (g, p) ->
      Table.add_row alloc_table
        [
          string_of_int g;
          string_of_int packets;
          Printf.sprintf "%.3f" p.p_words_per_pkt;
          string_of_int p.p_cycles_per_pkt;
          (if p.p_scratch_shared then "reused" else "fresh");
        ])
    probes;
  let kb = kernel_burn ~cycles:burn_cycles in
  let ks = kernel_sleep ~gap:sleep_gap in
  let vb = vmm_burn ~cycles:burn_cycles in
  let tickless_table =
    Table.create
      ~header:
        [
          "executor / load";
          "virtual end";
          "idle jumps";
          "idle skipped";
          "burst jumps";
          "burst skipped";
          "skip ratio";
        ]
  in
  List.iter
    (fun (label, p) ->
      Table.add_row tickless_table
        [
          label;
          Int64.to_string p.t_final;
          string_of_int p.t_idle_jumps;
          Int64.to_string p.t_idle_skipped;
          string_of_int p.t_burst_jumps;
          Int64.to_string p.t_burst_skipped;
          Printf.sprintf "%.3f" (skip_ratio p);
        ])
    [
      (Printf.sprintf "uk / burn %d" burn_cycles, kb);
      (Printf.sprintf "uk / sleep %Ld" sleep_gap, ks);
      (Printf.sprintf "vmm / burn %d" burn_cycles, vb);
    ];
  let all_zero_alloc =
    List.for_all (fun (_, p) -> p.p_words_per_pkt = 0.0) probes
  in
  let expected_cycles = Vnet.flow_hit_cost + Vnet.enqueue_cost in
  let cycles_match =
    List.for_all (fun (_, p) -> p.p_cycles_per_pkt = expected_cycles) probes
  in
  let scratch_shared = List.for_all (fun (_, p) -> p.p_scratch_shared) probes in
  let burst_ok p = skip_ratio p > 0.9 && p.t_burst_jumps > 0 in
  let verdicts =
    [
      Experiment.verdict
        ~claim:"steady-state forwarding allocates nothing (E21)"
        ~expected:"0.000 minor-heap words per forwarded packet"
        ~measured:
          (String.concat ", "
             (List.map
                (fun (g, p) ->
                  Printf.sprintf "%dg=%.3f" g p.p_words_per_pkt)
                probes))
        all_zero_alloc;
      Experiment.verdict
        ~claim:"the fast path charges exactly the published constants"
        ~expected:
          (Printf.sprintf "flow_hit(%d) + enqueue(%d) = %d cycles/pkt"
             Vnet.flow_hit_cost Vnet.enqueue_cost expected_cycles)
        ~measured:
          (String.concat ", "
             (List.map
                (fun (g, p) -> Printf.sprintf "%dg=%d" g p.p_cycles_per_pkt)
                probes))
        cycles_match;
      Experiment.verdict
        ~claim:"forward_to returns a per-switch scratch, not a fresh record"
        ~expected:"physically equal across calls"
        ~measured:(if scratch_shared then "reused" else "fresh")
        scratch_shared;
      Experiment.verdict
        ~claim:"compute bursts are fast-forwarded, not sliced (tickless)"
        ~expected:"skip ratio > 0.9 with burst jumps on both executors"
        ~measured:
          (Printf.sprintf "uk=%.3f (%d bursts), vmm=%.3f (%d bursts)"
             (skip_ratio kb) kb.t_burst_jumps (skip_ratio vb)
             vb.t_burst_jumps)
        (burst_ok kb && burst_ok vb);
      Experiment.verdict
        ~claim:"idle gaps are jumped in one event hop"
        ~expected:"idle skipped ≈ the armed sleep, not burned quanta"
        ~measured:
          (Printf.sprintf "idle_jumps=%d, idle_skipped=%Ld of %Ld"
             ks.t_idle_jumps ks.t_idle_skipped sleep_gap)
        (ks.t_idle_jumps > 0
        && Int64.compare ks.t_idle_skipped (Int64.div sleep_gap 2L) > 0);
    ]
  in
  {
    Experiment.tables =
      [
        ("Steady-state forwarding (per packet)", alloc_table);
        ("Tickless executor accounting", tickless_table);
      ];
    verdicts;
  }

let experiment =
  {
    Experiment.id = "e21";
    title = "Zero-alloc hot path + tickless executor (simulator speed)";
    paper_claim =
      "Instrument check, not a paper claim: the simulator's forwarding \
       fast path allocates nothing and its executors jump idle/burst \
       quanta, so million-flow sweeps of the E13-E20 fabric are \
       affordable; virtual-time accounting is unchanged (bit-for-bit \
       replay of E13-E20).";
    run;
  }
