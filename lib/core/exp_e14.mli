(** E14 — SMP scalability: multi-server vs. centralized Dom0.

    Sweeps core count over the E3-style I/O storm on four SMP
    configurations: microkernel with colocated per-core net servers,
    microkernel with pinned server cores, VMM with a single Dom0 backend
    and VMM with a driver domain per core. Measures throughput scaling
    and itemizes the cross-CPU overheads (IPIs, TLB shootdowns, spinlock
    spin) from the per-CPU accounts, then checks the paper-shaped
    verdicts: the single Dom0 plateaus, the multi-server and
    disaggregated layouts scale, and same-seed reruns are bit-for-bit
    identical. *)

type kind = Uk_colocated | Uk_pinned | Vmm_dom0 | Vmm_drivers

type run = {
  completed : int;
  wall : int64;
  mach : Vmk_hw.Machine.t;
  contended : int;
  spin : int64;
}

val run_case : kind:kind -> cores:int -> packets:int -> run
(** One configuration at one core count, fixed seed — exposed for the
    tests and benches. *)

val throughput : run -> float
(** Packets per million cycles of virtual wall time. *)

val experiment : Experiment.t
