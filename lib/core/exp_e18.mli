(** E18: Dom0 disaggregated into driver domains — netback, blkback and
    the vnet bridge each in their own domain under a thin toolstack —
    measuring the blast radius of killing one driver domain mid-storm
    (vs the monolithic Dom0 and vs the microkernel's killed net server),
    the toolstack rebuild + generation-keyed reconnect recovery, the E10
    per-client TCB rerun, the E14 storm with per-core and fixed-fleet
    driver-domain placement, and bit-for-bit replay. *)

val experiment : Experiment.t

(** {1 Test and bench hooks} *)

type xmode = Monolithic | Disaggregated

type bres = {
  b_label : string;
  b_target : string;
  b_blk_completed : int;
  b_blk_lost : int;
  b_blk_stall : int64;
  b_blk_recovery : int64 option;
  b_net_rx : int;
  b_net_post : int;
  b_net_stall : int64;
  b_net_recovery : int64 option;
  b_vnet_rx : int;
  b_vnet_stall : int64;
  b_restarts : int;
  b_reconnects : int;
  b_net_generation : int;
  b_finished : bool;
  b_wall : int64;
  b_injected : int;
  b_net_arrivals : (int * int64) list;
  b_blk_log : (int64 * bool) list;
  b_vnet_arrivals : (int * int64) list;
  b_counters : (string * int) list;
  b_accounts : (string * int64) list;
}
(** One blast-radius run: three concurrent flows (NIC receive, storage,
    inter-guest vnet) with the net backend optionally killed at 4M
    cycles. Structural equality of two [bres] values is bit-for-bit
    reproducibility. *)

val xen_run : quick:bool -> mode:xmode -> kill:bool -> bres
(** The Xen-style stack: monolithic Dom0 + supervisor, or three driver
    domains + toolstack. [kill] kills Dom0 / the netback domain. *)

val l4_run : quick:bool -> kill:bool -> bres
(** The microkernel stack: net + blk servers, a watchdog, and one guest
    kernel per client. [kill] kills the net server. *)
