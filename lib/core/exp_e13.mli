(** E13 — deterministic fault injection + driver-restart recovery.

    Sweeps a disk fault rate over both stacks while a {!Vmk_faults.Faults}
    plan kills the storage driver mid-run: the microkernel recovers by
    watchdog respawn + client IPC retry, the VMM by supervisor restart +
    frontend reconnect. Measures completed/lost/retried requests,
    recovery count and recovery latency per (stack, rate), and checks
    that the whole thing is a pure function of (seed, plan). *)

type metrics = {
  stack : string;
  rate : int;
  completed : int;
  lost : int;
  retries : int;
  gaveup : int;
  recoveries : int;
  recovery_latency : int64 option;
  finished : bool;
}

val run_one : stack:[ `L4 | `Vmm ] -> rate:int -> quick:bool -> metrics
(** One scenario run, for the [faults] CLI subcommand and the tests. *)

val experiment : Experiment.t
