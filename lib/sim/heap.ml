type 'a entry = { time : int64; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }
let length h = h.size
let is_empty h = h.size = 0

let entry_lt a b =
  match Int64.compare a.time b.time with
  | 0 -> a.seq < b.seq
  | c -> c < 0

let grow h entry =
  let capacity = max 16 (2 * Array.length h.data) in
  let data = Array.make capacity entry in
  Array.blit h.data 0 data 0 h.size;
  h.data <- data

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt h.data.(i) h.data.(parent) then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < h.size && entry_lt h.data.(left) h.data.(!smallest) then
    smallest := left;
  if right < h.size && entry_lt h.data.(right) h.data.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h ~time value =
  let entry = { time; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  if h.size = Array.length h.data then grow h entry;
  h.data.(h.size) <- entry;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let min_time h = if h.size = 0 then None else Some h.data.(0).time

(* Allocation-free {!min_time}: the sentinel comes back when empty. *)
let[@inline] min_time_or h default =
  if h.size = 0 then default else h.data.(0).time

exception Empty

(* Allocation-free {!pop}: the value without the [(time, value)] box.
   @raise Empty when the heap is empty. *)
let pop_exn h =
  if h.size = 0 then raise Empty;
  let top = h.data.(0) in
  h.size <- h.size - 1;
  if h.size > 0 then begin
    h.data.(0) <- h.data.(h.size);
    sift_down h 0
  end;
  top.value

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some (top.time, top.value)
  end

let clear h =
  h.data <- [||];
  h.size <- 0
