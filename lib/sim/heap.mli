(** Minimum binary heap keyed by [(time, sequence)].

    The event queue of the discrete-event engine. Entries with equal
    timestamps pop in insertion order (FIFO), which the engine relies on
    for deterministic device/interrupt interleaving. *)

type 'a t
(** A min-heap of values of type ['a] keyed by time. *)

val create : unit -> 'a t
(** [create ()] is an empty heap. *)

val length : 'a t -> int
(** Number of queued entries. *)

val is_empty : 'a t -> bool

val push : 'a t -> time:int64 -> 'a -> unit
(** [push h ~time v] queues [v] at timestamp [time]. *)

val min_time : 'a t -> int64 option
(** Timestamp of the earliest entry, if any. *)

val min_time_or : 'a t -> int64 -> int64
(** [min_time_or h default] is {!min_time} without the option box:
    [default] when empty. *)

exception Empty

val pop_exn : 'a t -> 'a
(** Remove and return the earliest entry's value without materializing
    the [(time, value)] pair — the allocation-free {!pop}. Ties break
    in insertion order. @raise Empty when the heap is empty. *)

val pop : 'a t -> (int64 * 'a) option
(** Remove and return the earliest entry; [None] when empty. Ties break in
    insertion order. *)

val clear : 'a t -> unit
(** Drop all entries. *)
