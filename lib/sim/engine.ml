type t = { clock : Clock.t; queue : (unit -> unit) Heap.t }

let create () = { clock = Clock.create (); queue = Heap.create () }
let clock t = t.clock
let now t = Clock.now t.clock
let at t time f = Heap.push t.queue ~time f
let after t delta f = Heap.push t.queue ~time:(Int64.add (now t) delta) f

(* The heap has no removal, so cancellation is flag-based: the queued
   closure checks its handle and fires only if still armed. *)
type handle = { mutable cancelled : bool }

let at_cancellable t time f =
  let h = { cancelled = false } in
  Heap.push t.queue ~time (fun () -> if not h.cancelled then f ());
  h

let cancel h = h.cancelled <- true
let cancelled h = h.cancelled

let every t period f =
  if Int64.compare period 0L <= 0 then
    invalid_arg "Engine.every: period must be positive";
  (* Reschedule relative to the due time, not the (possibly later) dispatch
     time, so periods stay exact even when the clock jumps past several
     deadlines in one burn. *)
  let rec tick deadline () =
    if f () then begin
      let next = Int64.add deadline period in
      at t next (tick next)
    end
  in
  let first = Int64.add (now t) period in
  at t first (tick first)

let pending t = Heap.length t.queue
let next_due t = Heap.min_time t.queue

let dispatch_due t =
  let rec loop () =
    match Heap.min_time t.queue with
    | Some time when Int64.compare time (now t) <= 0 -> begin
        match Heap.pop t.queue with
        | Some (_, f) ->
            f ();
            loop ()
        | None -> ()
      end
    | Some _ | None -> ()
  in
  loop ()

let burn t cycles =
  Clock.advance t.clock cycles;
  dispatch_due t

let idle_to_next t =
  match Heap.min_time t.queue with
  | None -> false
  | Some time ->
      Clock.advance_to t.clock time;
      dispatch_due t;
      true

let run ?until t =
  let continue () =
    match (Heap.min_time t.queue, until) with
    | None, _ -> false
    | Some time, Some limit -> Int64.compare time limit <= 0
    | Some _, None -> true
  in
  while continue () do
    ignore (idle_to_next t)
  done
