type t = {
  clock : Clock.t;
  queue : (unit -> unit) Heap.t;
  (* Tickless bookkeeping (E21): how much virtual time was jumped over
     instead of being stepped through quantum by quantum. Plain fields,
     not counters, so enabling them cannot perturb experiment dumps. *)
  mutable idle_jumps : int;
  mutable idle_skipped : int64;
  mutable burst_jumps : int;
  mutable burst_skipped : int64;
}

let create () =
  {
    clock = Clock.create ();
    queue = Heap.create ();
    idle_jumps = 0;
    idle_skipped = 0L;
    burst_jumps = 0;
    burst_skipped = 0L;
  }
let clock t = t.clock
let now t = Clock.now t.clock
let at t time f = Heap.push t.queue ~time f
let after t delta f = Heap.push t.queue ~time:(Int64.add (now t) delta) f

(* The heap has no removal, so cancellation is flag-based: the queued
   closure checks its handle and fires only if still armed. *)
type handle = { mutable cancelled : bool }

let at_cancellable t time f =
  let h = { cancelled = false } in
  Heap.push t.queue ~time (fun () -> if not h.cancelled then f ());
  h

let cancel h = h.cancelled <- true
let cancelled h = h.cancelled

let every t period f =
  if Int64.compare period 0L <= 0 then
    invalid_arg "Engine.every: period must be positive";
  (* Reschedule relative to the due time, not the (possibly later) dispatch
     time, so periods stay exact even when the clock jumps past several
     deadlines in one burn. *)
  let rec tick deadline () =
    if f () then begin
      let next = Int64.add deadline period in
      at t next (tick next)
    end
  in
  let first = Int64.add (now t) period in
  at t first (tick first)

let pending t = Heap.length t.queue
let next_due t = Heap.min_time t.queue

let[@inline] next_due_or t default = Heap.min_time_or t.queue default

let note_burst t cycles =
  t.burst_jumps <- t.burst_jumps + 1;
  t.burst_skipped <- Int64.add t.burst_skipped cycles

let note_idle t cycles =
  t.idle_jumps <- t.idle_jumps + 1;
  t.idle_skipped <- Int64.add t.idle_skipped cycles

let idle_jumps t = t.idle_jumps
let idle_skipped t = t.idle_skipped
let burst_jumps t = t.burst_jumps
let burst_skipped t = t.burst_skipped

let dispatch_due t =
  (* Allocation-free drain: no option/pair boxes on the per-event
     path (E21). [max_int] doubles as the empty sentinel; an empty
     queue can never be [<= now] because the clock never reaches it. *)
  while Int64.compare (Heap.min_time_or t.queue Int64.max_int) (now t) <= 0 do
    (Heap.pop_exn t.queue) ()
  done

let burn t cycles =
  Clock.advance t.clock cycles;
  dispatch_due t

let idle_to_next t =
  match Heap.min_time t.queue with
  | None -> false
  | Some time ->
      let skipped = Int64.sub time (now t) in
      if Int64.compare skipped 0L > 0 then begin
        t.idle_jumps <- t.idle_jumps + 1;
        t.idle_skipped <- Int64.add t.idle_skipped skipped
      end;
      Clock.advance_to t.clock time;
      dispatch_due t;
      true

let run ?until t =
  let continue () =
    match (Heap.min_time t.queue, until) with
    | None, _ -> false
    | Some time, Some limit -> Int64.compare time limit <= 0
    | Some _, None -> true
  in
  while continue () do
    ignore (idle_to_next t)
  done
