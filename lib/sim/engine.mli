(** Discrete-event engine over the virtual {!Clock}.

    Device models (NIC packet arrivals, disk completions, timer ticks)
    schedule callbacks at absolute or relative virtual times. Kernel code
    advances time by burning cycles; after each burn the hosting layer calls
    {!dispatch_due} so that device events fire at (or just after) their due
    time. When no thread is runnable, {!idle_to_next} skips the clock ahead
    to the next scheduled event, charging the skipped time to an idle
    account if the caller wishes. *)

type t

val create : unit -> t
(** Fresh engine with its own clock at cycle 0. *)

val clock : t -> Clock.t
val now : t -> int64

val at : t -> int64 -> (unit -> unit) -> unit
(** [at t time f] runs [f] when the clock reaches absolute [time]. An event
    scheduled in the past fires at the next {!dispatch_due}. *)

val after : t -> int64 -> (unit -> unit) -> unit
(** [after t delta f] runs [f] [delta] cycles from now. *)

val every : t -> int64 -> (unit -> bool) -> unit
(** [every t period f] runs [f] every [period] cycles starting one period
    from now, for as long as [f] returns [true]. *)

type handle
(** A cancellable scheduled event (the fault injector's disarm path). *)

val at_cancellable : t -> int64 -> (unit -> unit) -> handle
(** Like {!at}, but returns a handle; a cancelled event is skipped at
    dispatch time (the slot stays queued — the heap has no removal — but
    the callback never runs). *)

val cancel : handle -> unit
val cancelled : handle -> bool

val pending : t -> int
(** Number of queued events. *)

val next_due : t -> int64 option
(** Due time of the earliest queued event, without dispatching it. Lets
    the SMP executor skip idle quanta straight to the next arrival. *)

val next_due_or : t -> int64 -> int64
(** [next_due_or t default] is {!next_due} without the option box —
    the allocation-free form the tickless executors poll every
    dispatch. *)

val note_burst : t -> int64 -> unit
(** Record that an executor fast-forwarded a compute burst of the given
    length in one step instead of slicing it into quanta (E21). Pure
    bookkeeping — reported by {!burst_jumps} / {!burst_skipped}, never
    printed by experiments. *)

val note_idle : t -> int64 -> unit
(** Record an idle-quantum skip performed by an executor's own jump
    (the SMP round loop); {!idle_to_next} records its own. *)

val idle_jumps : t -> int
(** How many times {!idle_to_next} jumped the clock forward. *)

val idle_skipped : t -> int64
(** Total virtual cycles {!idle_to_next} jumped over. *)

val burst_jumps : t -> int
(** How many compute bursts were fast-forwarded ({!note_burst}). *)

val burst_skipped : t -> int64
(** Total virtual cycles fast-forwarded through compute bursts. *)

val burn : t -> int64 -> unit
(** [burn t cycles] advances the clock by [cycles] and dispatches any events
    that became due. This is the simulator's only way of "spending time". *)

val dispatch_due : t -> unit
(** Fire every event whose due time is [<= now]. Events may schedule further
    events; dispatch loops until quiescent at the current time. *)

val idle_to_next : t -> bool
(** Advance the clock to the next pending event and dispatch it. Returns
    [false] (and leaves the clock alone) when the queue is empty —
    i.e. the simulation has run out of work. *)

val run : ?until:int64 -> t -> unit
(** Drain the event queue in timestamp order, stopping when empty or when
    the next event lies beyond [until]. *)
