type rx_event = { frame : Frame.frame; len : int; tag : int }

type fault_mode = Drop | Corrupt | Duplicate

type fault = {
  f_start : int64;
  f_stop : int64;
  f_mode : fault_mode;
  f_pct : int;
  f_rng : Vmk_sim.Rng.t;
}

(* A corrupted packet keeps its length but its payload identity is
   scrambled; receivers that verify tags observe the damage. *)
let corrupt_tag tag = tag lxor 0x5A5A5A

type t = {
  engine : Vmk_sim.Engine.t;
  irq_ctrl : Irq.t;
  irq_line : int;
  wire_delay : int64;
  rx_buffers : Frame.frame Queue.t;
  rx_queue : rx_event Queue.t;
  tx_queue : (Frame.frame * int) Queue.t;
  mutable faults : fault list;
  mutable rx_injected : int;
  mutable rx_delivered : int;
  mutable rx_dropped : int;
  mutable rx_bytes : int;
  mutable rx_faulted : int;
  mutable tx_submitted : int;
  mutable tx_completed : int;
  mutable tx_bytes : int;
  (* Interrupt mitigation: after raising an interrupt the NIC holds off
     for [mitigation] cycles; completions landing inside the window
     coalesce into one deferred raise at window end. 0 disables. *)
  mutable mitigation : int64;
  mutable holdoff_until : int64;
  mutable holdoff_armed : bool;
  mutable irq_coalesced : int;
  mutable on_coalesce : unit -> unit;
  mutable on_rx_drop : unit -> unit;
}

let create engine irq_ctrl ~irq_line ?(wire_delay = 2000L) () =
  {
    engine;
    irq_ctrl;
    irq_line;
    wire_delay;
    rx_buffers = Queue.create ();
    rx_queue = Queue.create ();
    tx_queue = Queue.create ();
    faults = [];
    rx_injected = 0;
    rx_delivered = 0;
    rx_dropped = 0;
    rx_bytes = 0;
    rx_faulted = 0;
    tx_submitted = 0;
    tx_completed = 0;
    tx_bytes = 0;
    mitigation = 0L;
    holdoff_until = 0L;
    holdoff_armed = false;
    irq_coalesced = 0;
    on_coalesce = ignore;
    on_rx_drop = ignore;
  }

let irq_line t = t.irq_line
let post_rx_buffer t frame = Queue.add frame t.rx_buffers
let rx_buffers_posted t = Queue.length t.rx_buffers
let set_faults t faults = t.faults <- faults

let fault_verdict t =
  let now = Vmk_sim.Engine.now t.engine in
  let active fault = now >= fault.f_start && now < fault.f_stop in
  match List.find_opt active t.faults with
  | Some fault when Vmk_sim.Rng.int fault.f_rng 100 < fault.f_pct ->
      Some fault.f_mode
  | Some _ | None -> None

let set_mitigation t cycles =
  if Int64.compare cycles 0L < 0 then
    invalid_arg "Nic.set_mitigation: negative window";
  t.mitigation <- cycles

let mitigation t = t.mitigation
let irq_coalesced t = t.irq_coalesced
let on_coalesce t f = t.on_coalesce <- f
let on_rx_drop t f = t.on_rx_drop <- f

(* One completion wants to interrupt the host. Outside a hold-off window:
   raise now and open a window. Inside one: absorb the edge and make sure a
   single deferred raise is armed for window end — guarded at fire time so
   an already-drained device stays quiet. *)
let rec maybe_raise_irq t =
  let now = Vmk_sim.Engine.now t.engine in
  if Int64.equal t.mitigation 0L then Irq.raise_line t.irq_ctrl t.irq_line
  else if Int64.compare now t.holdoff_until >= 0 then begin
    t.holdoff_until <- Int64.add now t.mitigation;
    Irq.raise_line t.irq_ctrl t.irq_line
  end
  else begin
    t.irq_coalesced <- t.irq_coalesced + 1;
    t.on_coalesce ();
    if not t.holdoff_armed then begin
      t.holdoff_armed <- true;
      Vmk_sim.Engine.at t.engine t.holdoff_until (fun () ->
          t.holdoff_armed <- false;
          if Queue.length t.rx_queue > 0 || Queue.length t.tx_queue > 0 then
            maybe_raise_irq t)
    end
  end

let rec deliver t ~tag ~len =
  match Queue.take_opt t.rx_buffers with
  | None ->
      t.rx_dropped <- t.rx_dropped + 1;
      t.on_rx_drop ()
  | Some frame ->
      Frame.set_tag frame tag;
      Queue.add { frame; len; tag } t.rx_queue;
      t.rx_delivered <- t.rx_delivered + 1;
      t.rx_bytes <- t.rx_bytes + len;
      maybe_raise_irq t

and inject_rx t ~tag ~len =
  if len < 0 || len > Addr.page_size then
    invalid_arg "Nic.inject_rx: packet length out of range";
  t.rx_injected <- t.rx_injected + 1;
  match fault_verdict t with
  | Some Drop -> t.rx_faulted <- t.rx_faulted + 1
  | Some Corrupt ->
      t.rx_faulted <- t.rx_faulted + 1;
      deliver t ~tag:(corrupt_tag tag) ~len
  | Some Duplicate ->
      t.rx_faulted <- t.rx_faulted + 1;
      deliver t ~tag ~len;
      deliver t ~tag ~len
  | None -> deliver t ~tag ~len

let rx_ready t = Queue.take_opt t.rx_queue
let rx_pending t = Queue.length t.rx_queue

let poll t ~budget =
  if budget < 1 then invalid_arg "Nic.poll: budget < 1";
  let rec take n acc =
    if n = 0 then List.rev acc
    else
      match Queue.take_opt t.rx_queue with
      | None -> List.rev acc
      | Some ev -> take (n - 1) (ev :: acc)
  in
  take budget []

let submit_tx t frame ~len =
  t.tx_submitted <- t.tx_submitted + 1;
  Vmk_sim.Engine.after t.engine t.wire_delay (fun () ->
      Queue.add (frame, len) t.tx_queue;
      t.tx_completed <- t.tx_completed + 1;
      t.tx_bytes <- t.tx_bytes + len;
      maybe_raise_irq t)

let tx_done t = Queue.take_opt t.tx_queue
let tx_completions_pending t = Queue.length t.tx_queue
let rx_injected t = t.rx_injected
let rx_faulted t = t.rx_faulted
let rx_delivered t = t.rx_delivered
let rx_dropped t = t.rx_dropped
let rx_bytes t = t.rx_bytes
let tx_submitted t = t.tx_submitted
let tx_completed t = t.tx_completed
let tx_bytes t = t.tx_bytes
