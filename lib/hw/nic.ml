type rx_event = { frame : Frame.frame; len : int; tag : int }

type fault_mode = Drop | Corrupt | Duplicate

type fault = {
  f_start : int64;
  f_stop : int64;
  f_mode : fault_mode;
  f_pct : int;
  f_rng : Vmk_sim.Rng.t;
}

(* A corrupted packet keeps its length but its payload identity is
   scrambled; receivers that verify tags observe the damage. *)
let corrupt_tag tag = tag lxor 0x5A5A5A

type t = {
  engine : Vmk_sim.Engine.t;
  irq_ctrl : Irq.t;
  irq_line : int;
  wire_delay : int64;
  rx_buffers : Frame.frame Queue.t;
  rx_queue : rx_event Queue.t;
  tx_queue : (Frame.frame * int) Queue.t;
  mutable faults : fault list;
  mutable rx_injected : int;
  mutable rx_delivered : int;
  mutable rx_dropped : int;
  mutable rx_bytes : int;
  mutable rx_faulted : int;
  mutable tx_submitted : int;
  mutable tx_completed : int;
  mutable tx_bytes : int;
}

let create engine irq_ctrl ~irq_line ?(wire_delay = 2000L) () =
  {
    engine;
    irq_ctrl;
    irq_line;
    wire_delay;
    rx_buffers = Queue.create ();
    rx_queue = Queue.create ();
    tx_queue = Queue.create ();
    faults = [];
    rx_injected = 0;
    rx_delivered = 0;
    rx_dropped = 0;
    rx_bytes = 0;
    rx_faulted = 0;
    tx_submitted = 0;
    tx_completed = 0;
    tx_bytes = 0;
  }

let irq_line t = t.irq_line
let post_rx_buffer t frame = Queue.add frame t.rx_buffers
let rx_buffers_posted t = Queue.length t.rx_buffers
let set_faults t faults = t.faults <- faults

let fault_verdict t =
  let now = Vmk_sim.Engine.now t.engine in
  let active fault = now >= fault.f_start && now < fault.f_stop in
  match List.find_opt active t.faults with
  | Some fault when Vmk_sim.Rng.int fault.f_rng 100 < fault.f_pct ->
      Some fault.f_mode
  | Some _ | None -> None

let rec deliver t ~tag ~len =
  match Queue.take_opt t.rx_buffers with
  | None -> t.rx_dropped <- t.rx_dropped + 1
  | Some frame ->
      Frame.set_tag frame tag;
      Queue.add { frame; len; tag } t.rx_queue;
      t.rx_delivered <- t.rx_delivered + 1;
      t.rx_bytes <- t.rx_bytes + len;
      Irq.raise_line t.irq_ctrl t.irq_line

and inject_rx t ~tag ~len =
  if len < 0 || len > Addr.page_size then
    invalid_arg "Nic.inject_rx: packet length out of range";
  t.rx_injected <- t.rx_injected + 1;
  match fault_verdict t with
  | Some Drop -> t.rx_faulted <- t.rx_faulted + 1
  | Some Corrupt ->
      t.rx_faulted <- t.rx_faulted + 1;
      deliver t ~tag:(corrupt_tag tag) ~len
  | Some Duplicate ->
      t.rx_faulted <- t.rx_faulted + 1;
      deliver t ~tag ~len;
      deliver t ~tag ~len
  | None -> deliver t ~tag ~len

let rx_ready t = Queue.take_opt t.rx_queue
let rx_pending t = Queue.length t.rx_queue

let submit_tx t frame ~len =
  t.tx_submitted <- t.tx_submitted + 1;
  Vmk_sim.Engine.after t.engine t.wire_delay (fun () ->
      Queue.add (frame, len) t.tx_queue;
      t.tx_completed <- t.tx_completed + 1;
      t.tx_bytes <- t.tx_bytes + len;
      Irq.raise_line t.irq_ctrl t.irq_line)

let tx_done t = Queue.take_opt t.tx_queue
let rx_injected t = t.rx_injected
let rx_faulted t = t.rx_faulted
let rx_delivered t = t.rx_delivered
let rx_dropped t = t.rx_dropped
let rx_bytes t = t.rx_bytes
let tx_submitted t = t.tx_submitted
let tx_completed t = t.tx_completed
let tx_bytes t = t.tx_bytes
