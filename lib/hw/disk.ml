type op = Read | Write

type request = {
  id : int;
  op : op;
  sector : int;
  frame : Frame.frame;
  bytes : int;
  ok : bool;
}

type fault_mode = Fail | Drop

type fault = {
  f_start : int64;
  f_stop : int64;
  f_mode : fault_mode;
  f_pct : int;
  f_rng : Vmk_sim.Rng.t;
  f_sectors : (int * int) option;
}

type t = {
  engine : Vmk_sim.Engine.t;
  irq_ctrl : Irq.t;
  irq_line : int;
  base_latency : int64;
  per_byte_c100 : int;
  store : (int, int) Hashtbl.t;
  done_queue : request Queue.t;
  mutable faults : fault list;
  mutable next_id : int;
  mutable in_flight : int;
  mutable reads : int;
  mutable writes : int;
  mutable bytes : int;
  mutable faulted : int;
  mutable dropped : int;
}

let create engine irq_ctrl ~irq_line ?(base_latency = 40_000L)
    ?(per_byte_c100 = 800) () =
  {
    engine;
    irq_ctrl;
    irq_line;
    base_latency;
    per_byte_c100;
    store = Hashtbl.create 256;
    done_queue = Queue.create ();
    faults = [];
    next_id = 0;
    in_flight = 0;
    reads = 0;
    writes = 0;
    bytes = 0;
    faulted = 0;
    dropped = 0;
  }

let irq_line t = t.irq_line
let set_faults t faults = t.faults <- faults

let fault_sector_hit fault sector =
  match fault.f_sectors with
  | None -> true
  | Some (lo, hi) -> sector >= lo && sector <= hi

(* A request is judged once, at submission time, against the window that
   will be active at submission; the per-request coin flip comes from the
   window's own seeded stream so runs replay bit-for-bit. *)
let fault_verdict t ~sector =
  let now = Vmk_sim.Engine.now t.engine in
  let active fault =
    now >= fault.f_start && now < fault.f_stop && fault_sector_hit fault sector
  in
  match List.find_opt active t.faults with
  | Some fault when Vmk_sim.Rng.int fault.f_rng 100 < fault.f_pct ->
      Some fault.f_mode
  | Some _ | None -> None

let submit t op ~sector ~frame ~bytes =
  if sector < 0 then invalid_arg "Disk.submit: negative sector";
  if bytes < 0 || bytes > Addr.page_size then
    invalid_arg "Disk.submit: size out of range";
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  let verdict = fault_verdict t ~sector in
  t.in_flight <- t.in_flight + 1;
  let latency =
    Int64.add t.base_latency (Int64.of_int (bytes * t.per_byte_c100 / 100))
  in
  (match verdict with
  | Some Drop ->
      (* The controller loses the request: no completion, no interrupt.
         Clients discover it only through their own timeouts. *)
      t.dropped <- t.dropped + 1;
      Vmk_sim.Engine.after t.engine latency (fun () ->
          t.in_flight <- t.in_flight - 1)
  | Some Fail ->
      t.faulted <- t.faulted + 1;
      Vmk_sim.Engine.after t.engine latency (fun () ->
          t.in_flight <- t.in_flight - 1;
          Queue.add { id; op; sector; frame; bytes; ok = false } t.done_queue;
          Irq.raise_line t.irq_ctrl t.irq_line)
  | None ->
      Vmk_sim.Engine.after t.engine latency (fun () ->
          begin
            match op with
            | Read ->
                let tag =
                  match Hashtbl.find_opt t.store sector with
                  | Some v -> v
                  | None -> 0
                in
                Frame.set_tag frame tag;
                t.reads <- t.reads + 1
            | Write ->
                Hashtbl.replace t.store sector frame.Frame.tag;
                t.writes <- t.writes + 1
          end;
          t.bytes <- t.bytes + bytes;
          t.in_flight <- t.in_flight - 1;
          Queue.add { id; op; sector; frame; bytes; ok = true } t.done_queue;
          Irq.raise_line t.irq_ctrl t.irq_line));
  id

let completed t = Queue.take_opt t.done_queue
let completions_pending t = Queue.length t.done_queue
let in_flight t = t.in_flight

let sector_tag t sector =
  match Hashtbl.find_opt t.store sector with Some v -> v | None -> 0

let preload t ~sector ~tag = Hashtbl.replace t.store sector tag
let reads_total t = t.reads
let writes_total t = t.writes
let bytes_total t = t.bytes
let faulted_total t = t.faulted
let dropped_total t = t.dropped
