(** One virtual CPU of an SMP machine.

    Each vCPU owns the per-core microarchitectural state — its TLB and
    i-cache — plus a local clock tracking the core's position in the
    machine's global virtual time. The frame table, devices and event
    engine stay shared at the {!Machine} level; the SMP executor in
    [lib/smp] interleaves cores against the one engine clock. *)

type t = {
  id : int;  (** Core number, dense from 0. *)
  tlb : Tlb.t;
  icache : Cache.t;
  mutable now : int64;
      (** This core's position in global virtual time. Cores within one
          scheduling round may briefly disagree; the executor re-syncs
          them every quantum. *)
}

val create : id:int -> Arch.profile -> t
(** Fresh core with cold TLB/i-cache and clock at 0.

    @raise Invalid_argument on a negative id. *)

val advance : t -> int -> unit
(** Move this core's local clock forward by [cycles].

    @raise Invalid_argument on a negative count. *)
