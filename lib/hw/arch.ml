type id =
  | X86_32
  | X86_64
  | Arm32
  | Arm64
  | Mips64
  | Ppc32
  | Ppc64
  | Itanium
  | Sparc64

type profile = {
  id : id;
  name : string;
  trap_cost : int;
  fast_syscall_cost : int;
  kernel_exit_cost : int;
  addr_space_switch_cost : int;
  tlb_tagged : bool;
  tlb_entries : int;
  tlb_refill_cost : int;
  pt_levels : int;
  pt_update_cost : int;
  page_map_cost : int;
  cacheline_bytes : int;
  icache_lines : int;
  copy_per_byte_c100 : int;
  copy_base_cost : int;
  has_trap_gates : bool;
  has_segmentation : bool;
  segment_reload_cost : int;
  irq_entry_cost : int;
  irq_eoi_cost : int;
  poll_batch_cost : int;
  world_switch_cost : int;
  ipi_cost : int;
  shootdown_ack_cost : int;
}

let x86_32 =
  {
    id = X86_32;
    name = "x86-32 (Pentium 4 class)";
    trap_cost = 540;
    fast_syscall_cost = 180;
    kernel_exit_cost = 320;
    addr_space_switch_cost = 790; (* CR3 reload + untagged TLB refill wave *)
    tlb_tagged = false;
    tlb_entries = 128;
    tlb_refill_cost = 60;
    pt_levels = 2;
    pt_update_cost = 30;
    page_map_cost = 90;
    cacheline_bytes = 64;
    icache_lines = 512; (* 32 KiB at 64 B lines, trace-cache era proxy *)
    copy_per_byte_c100 = 120; (* cache-cold payload copies *)
    copy_base_cost = 40;
    has_trap_gates = true;
    has_segmentation = true;
    segment_reload_cost = 25;
    irq_entry_cost = 610;
    irq_eoi_cost = 90;
    poll_batch_cost = 140;
    world_switch_cost = 480;
    ipi_cost = 780; (* APIC vector delivery + P4 interrupt entry *)
    shootdown_ack_cost = 500;
  }

let x86_64 =
  {
    x86_32 with
    id = X86_64;
    name = "x86-64 (Opteron class)";
    trap_cost = 420;
    fast_syscall_cost = 120;
    kernel_exit_cost = 240;
    addr_space_switch_cost = 640;
    tlb_entries = 512;
    tlb_refill_cost = 80;
    pt_levels = 4;
    pt_update_cost = 28;
    copy_per_byte_c100 = 90;
    has_trap_gates = false; (* long mode drops the 32-bit trap-gate trick *)
    has_segmentation = false; (* flat segments; limits ignored *)
    irq_entry_cost = 480;
    poll_batch_cost = 110;
    world_switch_cost = 420;
    ipi_cost = 640;
    shootdown_ack_cost = 420;
  }

let arm32 =
  {
    id = Arm32;
    name = "ARMv5 (XScale class)";
    trap_cost = 140;
    fast_syscall_cost = 140; (* swi is the only entry *)
    kernel_exit_cost = 110;
    addr_space_switch_cost = 950; (* VIVT cache + untagged TLB: costly *)
    tlb_tagged = false;
    tlb_entries = 64;
    tlb_refill_cost = 45;
    pt_levels = 2;
    pt_update_cost = 22;
    page_map_cost = 70;
    cacheline_bytes = 32;
    icache_lines = 1024;
    copy_per_byte_c100 = 180;
    copy_base_cost = 30;
    has_trap_gates = false;
    has_segmentation = false;
    segment_reload_cost = 0;
    irq_entry_cost = 160;
    irq_eoi_cost = 40;
    poll_batch_cost = 60;
    world_switch_cost = 380;
    ipi_cost = 260;
    shootdown_ack_cost = 180;
  }

let arm64 =
  {
    arm32 with
    id = Arm64;
    name = "ARMv8 (Cortex-A class)";
    trap_cost = 110;
    fast_syscall_cost = 110;
    kernel_exit_cost = 90;
    addr_space_switch_cost = 60; (* ASID-tagged TLB *)
    tlb_tagged = true;
    tlb_entries = 512;
    tlb_refill_cost = 55;
    pt_levels = 4;
    cacheline_bytes = 64;
    copy_per_byte_c100 = 70;
    irq_entry_cost = 130;
    poll_batch_cost = 45;
    world_switch_cost = 260;
    ipi_cost = 210;
    shootdown_ack_cost = 150;
  }

let mips64 =
  {
    id = Mips64;
    name = "MIPS64 (R4000 lineage)";
    trap_cost = 90;
    fast_syscall_cost = 90;
    kernel_exit_cost = 80;
    addr_space_switch_cost = 40; (* ASID write only *)
    tlb_tagged = true;
    tlb_entries = 48;
    tlb_refill_cost = 35; (* software refill handler *)
    pt_levels = 1; (* software-managed: flat lookup by the handler *)
    pt_update_cost = 18;
    page_map_cost = 60;
    cacheline_bytes = 32;
    icache_lines = 512;
    copy_per_byte_c100 = 160;
    copy_base_cost = 25;
    has_trap_gates = false;
    has_segmentation = false;
    segment_reload_cost = 0;
    irq_entry_cost = 110;
    irq_eoi_cost = 30;
    poll_batch_cost = 40;
    world_switch_cost = 240;
    ipi_cost = 220;
    shootdown_ack_cost = 160;
  }

let ppc32 =
  {
    id = Ppc32;
    name = "PowerPC 32 (G4 class)";
    trap_cost = 170;
    fast_syscall_cost = 170;
    kernel_exit_cost = 130;
    addr_space_switch_cost = 210; (* segment-register reload *)
    tlb_tagged = true;
    tlb_entries = 128;
    tlb_refill_cost = 70; (* hashed page table probe *)
    pt_levels = 1;
    pt_update_cost = 34;
    page_map_cost = 85;
    cacheline_bytes = 32;
    icache_lines = 1024;
    copy_per_byte_c100 = 120;
    copy_base_cost = 35;
    has_trap_gates = false;
    has_segmentation = false;
    segment_reload_cost = 0;
    irq_entry_cost = 190;
    irq_eoi_cost = 45;
    poll_batch_cost = 70;
    world_switch_cost = 320;
    ipi_cost = 300;
    shootdown_ack_cost = 200;
  }

let ppc64 =
  {
    ppc32 with
    id = Ppc64;
    name = "PowerPC 64 (POWER4 class)";
    trap_cost = 150;
    fast_syscall_cost = 150;
    kernel_exit_cost = 120;
    addr_space_switch_cost = 140;
    tlb_entries = 1024;
    tlb_refill_cost = 95;
    cacheline_bytes = 128;
    icache_lines = 512;
    copy_per_byte_c100 = 60;
    poll_batch_cost = 65;
    world_switch_cost = 300;
    ipi_cost = 280;
    shootdown_ack_cost = 190;
  }

let itanium =
  {
    id = Itanium;
    name = "Itanium 2";
    trap_cost = 230;
    fast_syscall_cost = 36; (* epc: enter-privileged-code, famously cheap *)
    kernel_exit_cost = 110;
    addr_space_switch_cost = 70; (* region-ID tagged *)
    tlb_tagged = true;
    tlb_entries = 128;
    tlb_refill_cost = 50;
    pt_levels = 3;
    pt_update_cost = 26;
    page_map_cost = 75;
    cacheline_bytes = 128;
    icache_lines = 128; (* 16 KiB L1I at 128 B lines *)
    copy_per_byte_c100 = 55;
    copy_base_cost = 45;
    has_trap_gates = false;
    has_segmentation = false;
    segment_reload_cost = 0;
    irq_entry_cost = 260;
    irq_eoi_cost = 55;
    poll_batch_cost = 90;
    world_switch_cost = 520;
    ipi_cost = 420;
    shootdown_ack_cost = 260;
  }

let sparc64 =
  {
    id = Sparc64;
    name = "UltraSPARC III";
    trap_cost = 130;
    fast_syscall_cost = 130;
    kernel_exit_cost = 150; (* register-window spill risk *)
    addr_space_switch_cost = 90; (* context-ID tagged *)
    tlb_tagged = true;
    tlb_entries = 512;
    tlb_refill_cost = 65; (* TSB software refill *)
    pt_levels = 1;
    pt_update_cost = 24;
    page_map_cost = 70;
    cacheline_bytes = 64;
    icache_lines = 512;
    copy_per_byte_c100 = 95;
    copy_base_cost = 35;
    has_trap_gates = false;
    has_segmentation = false;
    segment_reload_cost = 0;
    irq_entry_cost = 170;
    irq_eoi_cost = 40;
    poll_batch_cost = 55;
    world_switch_cost = 340;
    ipi_cost = 310;
    shootdown_ack_cost = 210;
  }

let all =
  [ x86_32; x86_64; arm32; arm64; mips64; ppc32; ppc64; itanium; sparc64 ]

let profile = function
  | X86_32 -> x86_32
  | X86_64 -> x86_64
  | Arm32 -> arm32
  | Arm64 -> arm64
  | Mips64 -> mips64
  | Ppc32 -> ppc32
  | Ppc64 -> ppc64
  | Itanium -> itanium
  | Sparc64 -> sparc64

let id_spelling = function
  | X86_32 -> "x86_32"
  | X86_64 -> "x86_64"
  | Arm32 -> "arm32"
  | Arm64 -> "arm64"
  | Mips64 -> "mips64"
  | Ppc32 -> "ppc32"
  | Ppc64 -> "ppc64"
  | Itanium -> "itanium"
  | Sparc64 -> "sparc64"

let by_name name =
  let wanted = String.lowercase_ascii name in
  List.find_opt
    (fun p ->
      String.lowercase_ascii p.name = wanted || id_spelling p.id = wanted)
    all

let default = x86_32

let copy_cost p ~bytes =
  if bytes < 0 then invalid_arg "Arch.copy_cost: negative size";
  if bytes = 0 then 0
  else p.copy_base_cost + (bytes * p.copy_per_byte_c100 / 100)

let walk_cost p = p.pt_levels * p.tlb_refill_cost
let pp_id ppf id = Format.pp_print_string ppf (id_spelling id)

let pp ppf p =
  Format.fprintf ppf
    "%s: trap=%d fast=%d exit=%d as-switch=%d tlb=%s/%d walk=%d copy=%d.%02d/B"
    p.name p.trap_cost p.fast_syscall_cost p.kernel_exit_cost
    p.addr_space_switch_cost
    (if p.tlb_tagged then "tagged" else "untagged")
    p.tlb_entries (walk_cost p) (p.copy_per_byte_c100 / 100)
    (p.copy_per_byte_c100 mod 100)
