(** Interrupt controller (PIC-style, round-robin arbitration).

    Devices raise lines; the hosting kernel polls {!next_pending} at its
    preemption points (the simulator has no true asynchrony) and
    acknowledges lines it services. Arbitration is round-robin starting
    after the last line serviced, so a chatty device cannot starve the
    others.

    The controller also supports the mask-while-pending discipline that
    NAPI-style drivers rely on: a masked line still latches raises (and
    counts how many coalesced onto the latch), it just never surfaces from
    {!next_pending} until unmasked — so a driver can mask, poll the device
    directly, and unmask without losing the edge that arrived meanwhile. *)

type t

val create : lines:int -> t
(** @raise Invalid_argument if [lines < 1]. *)

val lines : t -> int

val raise_line : t -> int -> unit
(** Latch line [n] pending (edge-triggered; re-raising a pending line
    coalesces, which the raised/serviced counters expose).

    @raise Invalid_argument on an out-of-range line. *)

val is_pending : t -> int -> bool
(** The line's pending latch is set (masked or not). *)

val next_pending : t -> int option
(** Next pending unmasked line, scanning round-robin from the line after
    the last one acknowledged, without acknowledging it. *)

val any_pending : t -> bool

val ack : t -> int -> unit
(** Clear the pending latch for line [n] (start of service). *)

val mask : t -> int -> unit
val unmask : t -> int -> unit
val is_masked : t -> int -> bool

val raised_total : t -> int -> int
(** How many times the line was raised (including coalesced raises). *)

val serviced_total : t -> int -> int
(** How many times the line was acknowledged. *)

val coalesced_total : t -> int -> int
(** Raises that landed on an already-pending latch (absorbed edges). *)

val burst : t -> int -> int
(** Raises since the line's latch was last cleared — the number of device
    events one acknowledgement will cover. A kernel can forward this with
    the interrupt message so one wake carries the whole batch. *)
