(** Architecture cost profiles.

    The paper's portability argument (§2.2) rests on L4 components running
    unmodified across nine processor platforms while VMM-level software is
    tied to one architecture's quirks. We model nine platforms as cost
    profiles: every privileged operation the simulator performs is priced by
    the active profile, and architecture-specific *features* (trap gates,
    tagged TLBs, segmentation) gate which code paths are even available.

    Cycle numbers are calibrated to the relative magnitudes reported for
    early-2000s hardware (L4 IPC papers, Xen SOSP'03, lmbench): exact values
    do not matter, orderings and ratios do. *)

type id =
  | X86_32  (** IA-32: trap gates, segmentation, untagged TLB. *)
  | X86_64
  | Arm32
  | Arm64
  | Mips64  (** Software-loaded tagged TLB. *)
  | Ppc32
  | Ppc64
  | Itanium
  | Sparc64

type profile = {
  id : id;
  name : string;  (** Human-readable platform name. *)
  trap_cost : int;
      (** User→kernel transition through an exception/interrupt gate. *)
  fast_syscall_cost : int;
      (** Dedicated syscall instruction (sysenter/syscall/eiem); equals
          [trap_cost] on platforms without one. *)
  kernel_exit_cost : int;  (** Return-to-user (iret/eret/rfi). *)
  addr_space_switch_cost : int;
      (** Switching the active address space, including any TLB flush on
          untagged-TLB platforms. *)
  tlb_tagged : bool;
      (** Tagged TLBs avoid the flush on address-space switch. *)
  tlb_entries : int;
  tlb_refill_cost : int;  (** One page-table walk / software refill. *)
  pt_levels : int;
  pt_update_cost : int;  (** Installing or changing one PTE. *)
  page_map_cost : int;
      (** Kernel bookkeeping to create one mapping beyond the PTE write. *)
  cacheline_bytes : int;
  icache_lines : int;  (** I-cache capacity in lines (footprint model). *)
  copy_per_byte_c100 : int;
      (** Memory-copy cost, hundredths of a cycle per byte. *)
  copy_base_cost : int;  (** Fixed setup cost of any copy. *)
  has_trap_gates : bool;
      (** IA-32 trap gates enable Xen's guest-syscall shortcut (§3.2). *)
  has_segmentation : bool;
      (** Segment-limit protection — prerequisite of the same shortcut. *)
  segment_reload_cost : int;
  irq_entry_cost : int;
      (** Interrupt delivery: vector dispatch + state save on entry. *)
  irq_eoi_cost : int;
  poll_batch_cost : int;
      (** One {!Nic.poll} round: ring-tail read + status-block check +
          prefetch of up to [budget] descriptors. Paid once per batch, not
          per packet — the interrupt-mitigation model's amortization lever
          (contrast with paying [irq_entry_cost] per packet). *)
  world_switch_cost : int;
      (** Extra state save/restore when a VMM switches between domains. *)
  ipi_cost : int;
      (** Delivering one inter-processor interrupt on the target core
          (vector delivery + interrupt entry); also the cross-core
          notification latency in the SMP model. *)
  shootdown_ack_cost : int;
      (** Remote-core TLB-shootdown handler: acknowledge the IPI and
          invalidate the requested entries. *)
}

val profile : id -> profile
val all : profile list
(** The nine platforms, in {!id} declaration order. *)

val by_name : string -> profile option
(** Case-insensitive lookup by {!field-name} or by the [id] spelling
    (e.g. ["x86_32"]). *)

val default : profile
(** {!X86_32} — the platform the paper's Xen discussion targets. *)

val copy_cost : profile -> bytes:int -> int
(** Cycles to copy [bytes] of memory: base + per-byte cost.

    @raise Invalid_argument on negative [bytes]. *)

val walk_cost : profile -> int
(** Full page-table walk: [pt_levels * tlb_refill_cost]. *)

val pp : Format.formatter -> profile -> unit
val pp_id : Format.formatter -> id -> unit
