(** Block device model.

    A simple latency-modelled disk: requests complete after
    [base_latency + bytes·per_byte] cycles and raise the disk's interrupt
    line. Sector contents are content tags (see {!Frame}), persisted in a
    sector store so reads after writes verify data integrity across the
    block stack (native driver, blkfront/blkback, Parallax, L4 driver
    server).

    Fault injection (E13): {!set_faults} installs transient fault windows.
    Inside a window a request may complete with [ok = false] ([Fail]) or
    vanish entirely ([Drop] — a request timeout as seen by the driver).
    Every coin flip draws from the window's own seeded stream, so fault
    runs are bit-for-bit reproducible. *)

type op = Read | Write

type request = {
  id : int;  (** Ticket returned by {!submit}. *)
  op : op;
  sector : int;
  frame : Frame.frame;  (** DMA target/source buffer. *)
  bytes : int;
  ok : bool;  (** [false]: media error — no data was transferred. *)
}

type fault_mode =
  | Fail  (** Complete (with interrupt) but flag a media error. *)
  | Drop  (** Never complete: the request is silently lost. *)

type fault = {
  f_start : int64;  (** Window start (absolute virtual time, inclusive). *)
  f_stop : int64;  (** Window end (exclusive). *)
  f_mode : fault_mode;
  f_pct : int;  (** Per-request fault probability in percent. *)
  f_rng : Vmk_sim.Rng.t;  (** Dedicated stream for the coin flips. *)
  f_sectors : (int * int) option;
      (** Restrict to an inclusive sector range (a bad-sector region);
          [None] faults any sector. *)
}

type t

val create :
  Vmk_sim.Engine.t ->
  Irq.t ->
  irq_line:int ->
  ?base_latency:int64 ->
  ?per_byte_c100:int ->
  unit ->
  t
(** Default latency: 40_000 cycles + 8 c/B (a fast 2005 disk with cache). *)

val irq_line : t -> int

val set_faults : t -> fault list -> unit
(** Install the fault windows (replacing any previous set). A request is
    judged against the first window active at its submission time. *)

val submit : t -> op -> sector:int -> frame:Frame.frame -> bytes:int -> int
(** Queue a request; returns its id. On completion the IRQ line is raised:
    a [Read] deposits the stored sector tag into the frame; a [Write]
    persists the frame's tag into the sector store. A request faulted with
    [Fail] completes with [ok = false] and transfers nothing; one faulted
    with [Drop] never completes.

    @raise Invalid_argument on negative sector or size out of
    [\[0, page_size\]]. *)

val completed : t -> request option
(** Pop the oldest finished request. *)

val completions_pending : t -> int
val in_flight : t -> int

val sector_tag : t -> int -> int
(** Stored tag of a sector; [0] if never written. *)

val preload : t -> sector:int -> tag:int -> unit
(** Seed the sector store (build a test image without I/O). *)

val reads_total : t -> int
val writes_total : t -> int
val bytes_total : t -> int

val faulted_total : t -> int
(** Requests completed with [ok = false]. *)

val dropped_total : t -> int
(** Requests lost to [Drop] windows. *)
