(** The simulated machine: one CPU's worth of hardware.

    Composes the event engine, frame table, interrupt controller, TLB,
    i-cache, NIC, disk and timer under one architecture profile, together
    with the instrumentation every experiment reads (named counters and
    per-domain cycle accounts). Scenarios create one fresh machine per run,
    so no state is shared between experiments. *)

type t = {
  arch : Arch.profile;
  engine : Vmk_sim.Engine.t;
  frames : Frame.t;
  irq : Irq.t;
  nic : Nic.t;
  disk : Disk.t;
  tlb : Tlb.t;  (** Alias of core 0's TLB, for single-CPU callers. *)
  icache : Cache.t;  (** Alias of core 0's i-cache. *)
  cpus : Cpu.t array;
      (** The vCPU bank; [cpus.(0)] owns {!field-tlb}/{!field-icache}.
          Single-CPU machines (the default) have exactly one entry. *)
  counters : Vmk_trace.Counter.set;
  accounts : Vmk_trace.Accounts.t;
  rng : Vmk_sim.Rng.t;
  timer_on : bool ref;  (** Periodic timer enabled (see {!start_timer}). *)
}

val timer_irq : int
(** Line 0. *)

val nic_irq : int
(** Line 1. *)

val disk_irq : int
(** Line 2. *)

val create :
  ?arch:Arch.profile -> ?frames:int -> ?cpus:int -> ?seed:int64 -> unit -> t
(** A machine with the given profile (default {!Arch.default}),
    [frames] physical frames (default 4096 = 16 MiB) and [cpus] vCPUs
    (default 1; values below 1 are clamped to 1). *)

val ncpus : t -> int

val cpu : t -> int -> Cpu.t
(** @raise Invalid_argument when the index is out of range. *)

val now : t -> int64

val burn : t -> int -> unit
(** Spend [cycles]: charged to the current {!Vmk_trace.Accounts} account
    and advanced on the engine (due device events fire).

    @raise Invalid_argument on a negative count. *)

val burn_on : t -> cpu:Cpu.t -> int -> unit
(** SMP variant of {!burn}: charge the current account's per-CPU bucket
    for [cpu] and advance that core's local clock only. The engine clock
    is *not* advanced — the SMP executor owns global time and steps it
    once per scheduling round.

    @raise Invalid_argument on a negative count. *)

val burn_copy : t -> bytes:int -> unit
(** Spend a memory-copy's worth of cycles per the architecture profile. *)

val start_timer : t -> period:int64 -> unit
(** Begin periodic timer interrupts on line {!timer_irq}. The timer stops
    when {!stop_timer} is called. *)

val stop_timer : t -> unit
val timer_running : t -> bool
