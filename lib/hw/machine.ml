type t = {
  arch : Arch.profile;
  engine : Vmk_sim.Engine.t;
  frames : Frame.t;
  irq : Irq.t;
  nic : Nic.t;
  disk : Disk.t;
  tlb : Tlb.t;
  icache : Cache.t;
  cpus : Cpu.t array;
  counters : Vmk_trace.Counter.set;
  accounts : Vmk_trace.Accounts.t;
  rng : Vmk_sim.Rng.t;
  timer_on : bool ref;
}

let timer_irq = 0
let nic_irq = 1
let disk_irq = 2

let create ?(arch = Arch.default) ?(frames = 4096) ?(cpus = 1) ?seed () =
  let engine = Vmk_sim.Engine.create () in
  let irq = Irq.create ~lines:8 in
  let cpus = Array.init (max 1 cpus) (fun id -> Cpu.create ~id arch) in
  let nic = Nic.create engine irq ~irq_line:nic_irq () in
  let counters = Vmk_trace.Counter.create_set () in
  (* Machine-wide itemization of NIC behaviour the drivers never see:
     buffer-exhaustion drops belong to the overload drop budget, absorbed
     interrupt edges to the mitigation ledger. The hooks are bound once
     here with pre-resolved counter ids (E21) — each firing is an array
     store, not a string hash. *)
  let id_nic_drop = Vmk_trace.Counter.id counters "overload.nic_drop" in
  let id_coalesced = Vmk_trace.Counter.id counters "mitig.irq_coalesced" in
  Nic.on_rx_drop nic (fun () ->
      Vmk_trace.Counter.incr_id counters id_nic_drop);
  Nic.on_coalesce nic (fun () ->
      Vmk_trace.Counter.incr_id counters id_coalesced);
  {
    arch;
    engine;
    frames = Frame.create ~frames;
    irq;
    nic;
    disk = Disk.create engine irq ~irq_line:disk_irq ();
    tlb = cpus.(0).Cpu.tlb;
    icache = cpus.(0).Cpu.icache;
    cpus;
    counters;
    accounts = Vmk_trace.Accounts.create ();
    rng = Vmk_sim.Rng.create ?seed ();
    timer_on = ref false;
  }

let ncpus t = Array.length t.cpus

let cpu t i =
  if i < 0 || i >= Array.length t.cpus then invalid_arg "Machine.cpu: bad index";
  t.cpus.(i)

let now t = Vmk_sim.Engine.now t.engine

let burn t cycles =
  if cycles < 0 then invalid_arg "Machine.burn: negative cycles";
  let c = Int64.of_int cycles in
  Vmk_trace.Accounts.charge_current t.accounts c;
  Vmk_sim.Engine.burn t.engine c

let burn_on t ~cpu cycles =
  if cycles < 0 then invalid_arg "Machine.burn_on: negative cycles";
  let c = Int64.of_int cycles in
  Vmk_trace.Accounts.charge_current_on t.accounts ~cpu:cpu.Cpu.id c;
  Cpu.advance cpu cycles

let burn_copy t ~bytes = burn t (Arch.copy_cost t.arch ~bytes)

let start_timer t ~period =
  if not !(t.timer_on) then begin
    t.timer_on := true;
    let flag = t.timer_on in
    Vmk_sim.Engine.every t.engine period (fun () ->
        if !flag then Irq.raise_line t.irq timer_irq;
        !flag)
  end

let stop_timer t = t.timer_on := false
let timer_running t = !(t.timer_on)
