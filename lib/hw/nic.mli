(** Network interface model.

    A DMA-capable NIC with receive and transmit descriptor rings. The
    driver posts receive buffers (frames); arriving packets DMA their
    content tag into the next posted buffer and raise the NIC's interrupt
    line. Transmits complete after a wire delay. DMA itself costs no CPU —
    all CPU cost in the I/O experiments comes from the *drivers* (copies,
    page flips, ring manipulation, interrupt handling), mirroring the
    Cherkasova & Gardner measurement that E3 reproduces.

    Packet arrival is driven through {!inject_rx}, typically from
    engine-scheduled workload generators.

    {b Interrupt mitigation} (E16): with {!set_mitigation} the NIC models a
    hardware hold-off timer, the building block of NAPI-style hybrid
    interrupt/polling. The first rx or tx completion raises the line and
    opens a window of [mitigation] cycles; completions landing inside the
    window coalesce into at most one deferred raise at window end (counted
    by {!irq_coalesced} and reported through {!on_coalesce}). Drivers that
    poll pair this with {!poll}, which drains up to [budget] rx events in
    one call — the driver burns the arch profile's [poll_batch_cost] once
    per batch instead of [irq_entry_cost] per packet. A window of [0L]
    (the default) restores interrupt-per-completion behaviour exactly.

    Fault injection (E13): {!set_faults} installs transient windows in
    which an arriving packet may be dropped, corrupted (its content tag
    scrambled so verifying receivers notice) or duplicated. Coin flips
    draw from each window's own seeded stream, keeping runs
    reproducible. *)

type t

type rx_event = {
  frame : Frame.frame;  (** Buffer the packet landed in. *)
  len : int;  (** Payload bytes. *)
  tag : int;  (** Content identity (propagated into the frame tag). *)
}

type fault_mode =
  | Drop  (** The packet vanishes on the wire. *)
  | Corrupt  (** Delivered, but with a scrambled content tag. *)
  | Duplicate  (** Delivered twice (two buffers consumed). *)

type fault = {
  f_start : int64;  (** Window start (absolute virtual time, inclusive). *)
  f_stop : int64;  (** Window end (exclusive). *)
  f_mode : fault_mode;
  f_pct : int;  (** Per-packet fault probability in percent. *)
  f_rng : Vmk_sim.Rng.t;  (** Dedicated stream for the coin flips. *)
}

val create :
  Vmk_sim.Engine.t -> Irq.t -> irq_line:int -> ?wire_delay:int64 -> unit -> t
(** A NIC raising [irq_line] on the given controller. [wire_delay] is the
    transmit completion latency (default 2000 cycles). *)

val irq_line : t -> int

val set_faults : t -> fault list -> unit
(** Install the fault windows (replacing any previous set). An arriving
    packet is judged against the first window active at arrival time. *)

(** {1 Interrupt mitigation} *)

val set_mitigation : t -> int64 -> unit
(** Set the hold-off window in cycles; [0L] (default) disables mitigation.

    @raise Invalid_argument on a negative window. *)

val mitigation : t -> int64

val irq_coalesced : t -> int
(** Completions absorbed by an open hold-off window (no fresh raise). *)

val on_coalesce : t -> (unit -> unit) -> unit
(** Hook invoked on every absorbed completion (counter wiring). *)

val on_rx_drop : t -> (unit -> unit) -> unit
(** Hook invoked on every buffer-exhaustion rx drop (counter wiring). *)

(** {1 Receive} *)

val post_rx_buffer : t -> Frame.frame -> unit
(** Give the NIC an empty buffer for the next arrival (ring order). *)

val rx_buffers_posted : t -> int

val inject_rx : t -> tag:int -> len:int -> unit
(** A packet arrives now. If a buffer is posted, its frame receives the
    tag, an {!rx_event} is queued and the IRQ line is raised; otherwise the
    packet is dropped.

    @raise Invalid_argument if [len] is negative or exceeds a page. *)

val rx_ready : t -> rx_event option
(** Pop the oldest unserviced arrival. *)

val rx_pending : t -> int

val poll : t -> budget:int -> rx_event list
(** Drain up to [budget] queued arrivals in one device read, oldest first
    (empty list when the rx queue is dry). The caller is expected to burn
    the arch profile's [poll_batch_cost] once per call — that is the whole
    point: a batch costs one ring read, not [budget] interrupt entries.

    @raise Invalid_argument if [budget < 1]. *)

(** {1 Transmit} *)

val submit_tx : t -> Frame.frame -> len:int -> unit
(** Queue a frame for transmission; completes after the wire delay. The
    completion interrupt goes through the same mitigation window as rx, so
    tx completions landing inside an open window coalesce too. *)

val tx_done : t -> (Frame.frame * int) option
(** Pop the oldest completed transmit (frame, bytes). *)

val tx_completions_pending : t -> int
(** Completed transmits not yet reaped — a NAPI loop's "any tx work left"
    re-enable check. *)

(** {1 Statistics} *)

val rx_injected : t -> int
val rx_faulted : t -> int
(** Packets hit by an active fault window (dropped/corrupted/duplicated). *)

val rx_delivered : t -> int
val rx_dropped : t -> int
val rx_bytes : t -> int
val tx_submitted : t -> int
val tx_completed : t -> int
val tx_bytes : t -> int
