type t = {
  pending : bool array;
  masked : bool array;
  raised : int array;
  serviced : int array;
  coalesced : int array;
  burst : int array;
  mutable rr_last : int;
}

let create ~lines =
  if lines < 1 then invalid_arg "Irq.create: lines < 1";
  {
    pending = Array.make lines false;
    masked = Array.make lines false;
    raised = Array.make lines 0;
    serviced = Array.make lines 0;
    coalesced = Array.make lines 0;
    burst = Array.make lines 0;
    rr_last = lines - 1;
  }

let lines t = Array.length t.pending

let check t n =
  if n < 0 || n >= lines t then invalid_arg "Irq: line out of range"

let raise_line t n =
  check t n;
  if t.pending.(n) then t.coalesced.(n) <- t.coalesced.(n) + 1
  else t.pending.(n) <- true;
  t.burst.(n) <- t.burst.(n) + 1;
  t.raised.(n) <- t.raised.(n) + 1

let is_pending t n =
  check t n;
  t.pending.(n)

let next_pending t =
  (* Round-robin from the line after the last one serviced, so a chatty
     low-numbered device cannot starve high-numbered lines. *)
  let n = lines t in
  let start = (t.rr_last + 1) mod n in
  let rec scan k =
    if k >= n then None
    else
      let i = (start + k) mod n in
      if t.pending.(i) && not t.masked.(i) then Some i else scan (k + 1)
  in
  scan 0

let any_pending t = next_pending t <> None

let ack t n =
  check t n;
  if t.pending.(n) then begin
    t.pending.(n) <- false;
    t.burst.(n) <- 0;
    t.serviced.(n) <- t.serviced.(n) + 1;
    t.rr_last <- n
  end

let mask t n =
  check t n;
  t.masked.(n) <- true

let unmask t n =
  check t n;
  t.masked.(n) <- false

let is_masked t n =
  check t n;
  t.masked.(n)

let raised_total t n =
  check t n;
  t.raised.(n)

let serviced_total t n =
  check t n;
  t.serviced.(n)

let coalesced_total t n =
  check t n;
  t.coalesced.(n)

let burst t n =
  check t n;
  t.burst.(n)
