type t = {
  id : int;
  tlb : Tlb.t;
  icache : Cache.t;
  mutable now : int64;
}

let create ~id profile =
  if id < 0 then invalid_arg "Cpu.create: negative id";
  { id; tlb = Tlb.of_profile profile; icache = Cache.of_profile profile; now = 0L }

let advance t cycles =
  if cycles < 0 then invalid_arg "Cpu.advance: negative cycles";
  t.now <- Int64.add t.now (Int64.of_int cycles)
