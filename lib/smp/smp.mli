(** Multi-CPU executor over the deterministic event engine.

    A machine created with [~cpus:n] gains an SMP executor that runs
    threads pinned to cores, interleaving cores round-robin at a fixed
    quantum of global virtual time so every run is bit-for-bit
    reproducible per seed. Each core has its own local clock, credit
    scheduler, TLB and i-cache ({!Vmk_hw.Cpu}); the frame table,
    devices and the one engine clock stay shared.

    Cross-core communication pays hardware-shaped costs:
    - sending to a thread blocked on another core posts an {b IPI}
      (sender pays the post, the target core pays [arch.ipi_cost] in
      its ["smp.ipi"] account before its next dispatch);
    - sending to a busy remote thread costs only a cache-line transfer
      delay before the message is visible;
    - {!shootdown} broadcasts a TLB invalidation: the initiator pays a
      per-remote-core IPI + wait-for-ack bill, every remote core pays
      [arch.shootdown_ack_cost] (["smp.shootdown"]) and loses its TLB;
    - {!locked} models a spinlock by serializing critical sections in
      global time — late arrivals spin, with spin cycles itemized in
      ["smp.spin"] and per lock.

    Threads are OCaml fibers performing one [Invoke] effect, exactly
    like the single-CPU kernels: the ops below ({!burn}, {!recv}, …)
    may only be called from inside a body passed to {!spawn}. *)

type t
type tid = int

type lock
(** A deterministic spinlock (see {!locked}). *)

type stop_reason =
  | Idle  (** No runnable thread, no pending event, no future message. *)
  | Condition  (** The [until] predicate returned true. *)
  | Rounds  (** [max_rounds] exhausted. *)

val create : ?quantum:int -> Vmk_hw.Machine.t -> t
(** Executor over [machine]'s vCPU bank. [quantum] (default 1000
    cycles) is the interleaving granularity: each scheduling round runs
    every core, in core-id order, for one quantum of global time.

    @raise Invalid_argument if [quantum < 1]. *)

val machine : t -> Vmk_hw.Machine.t
val ncpus : t -> int

val spawn :
  t -> name:string -> ?account:string -> cpu:int -> ?weight:int ->
  (unit -> unit) -> tid
(** New thread pinned to core [cpu]. [account] defaults to [name];
    [weight] (default 1) scales its credit refill — the per-core
    scheduler picks the Ready thread with the most credit, ties broken
    by lowest tid.

    @raise Invalid_argument on a bad cpu index or [weight < 1]. *)

val post : t -> ?irq_cost:int -> dst:tid -> int -> unit
(** Device-side injection: deliver tag to [dst]'s mailbox from outside
    any thread (e.g. from an engine event callback). The target core is
    billed [irq_cost] (default the profile's [irq_entry_cost]) in its
    ["smp.irq"] account before its next dispatch. *)

val run :
  ?until:(unit -> bool) -> ?max_rounds:int -> ?tickless:bool -> t -> stop_reason
(** Round-robin the cores until idle, [until ()] turns true, or
    [max_rounds] (default 2_000_000) rounds elapse. Quanta where every
    core is blocked are skipped straight to the next engine event or
    message visibility, so idle virtual time costs no host time and is
    charged to no account. [~tickless:false] crosses those same gaps in
    quantum-sized hops that stop exactly at the target instead — every
    dispatch sees the identical clock, it just costs more rounds; the
    test suite uses it as the reference for the tickless-equivalence
    property (E21). *)

(** {1 Thread operations} — valid only inside a {!spawn} body. *)

val burn : int -> unit
(** Spend user computation, consumed one quantum-slice per dispatch
    (so long burns are preemptible). *)

val yield : unit -> unit
(** Give up the core for this round. *)

val recv : unit -> int
(** Block until a message is visible on this core, return its tag.
    Messages are delivered in (visibility time, global send order). *)

val send : dst:tid -> tag:int -> cycles:int -> unit
(** Send [tag] to [dst], paying [cycles] of send-path work first. Same
    core: visible immediately. Other core: visible after a cache-line
    delay, or after [arch.ipi_cost] when the target sleeps and needs an
    IPI to wake. *)

val locked : lock -> cycles:int -> unit
(** Run a [cycles]-long critical section under [lock]. If the lock's
    previous holder (on any core) is still inside in global time, the
    caller first spins for the remainder — charged to ["smp.spin"]. *)

val shootdown : pages:int -> unit
(** Broadcast TLB invalidation for [pages] pages to every other core. *)

(** {1 Locks} *)

val lock_create : t -> name:string -> lock
val lock_name : lock -> string
val lock_acquisitions : lock -> int
val lock_contended : lock -> int
(** Acquisitions that found the lock held and had to spin. *)

val lock_spin_cycles : lock -> int64

(** {1 Introspection} *)

val is_done : t -> tid -> bool
(** True once the thread's body returned (or crashed). *)
